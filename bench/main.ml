(* Benchmark harness: regenerates every table and figure of the paper
   and runs the ablation studies DESIGN.md calls out, plus bechamel
   micro-benchmarks of the flow's building blocks.

     dune exec bench/main.exe              # everything (several minutes)
     SCANPOWER_BENCH_FAST=1 dune exec bench/main.exe   # small circuits only

   Sections:
     [Figure 2]   calibrated NAND2 leakage table vs the published one
     [Table I]    dynamic (/f) + static scan power, 3 structures,
                  12 circuits, vs the published rows
     [Ablations]  (a) leakage-observability direction on/off
                  (b) AddMUX naive re-STA vs slack test
                  (c) gate input reordering contribution
                  (d) IVC candidate-count sweep
     [Micro]      bechamel timings of the core kernels *)

let fast = Sys.getenv_opt "SCANPOWER_BENCH_FAST" <> None

(* Table I runs through the sweep runner: SCANPOWER_BENCH_JOBS sets
   the worker count (default 4, 1 = in-process sequential) and
   SCANPOWER_BENCH_CACHE the result-cache directory ("off" or "0"
   disables it; default _scanpower_cache). Results are bit-identical
   either way — the runner only changes where and whether the flow
   runs, never what it computes. *)
let bench_jobs =
  match Sys.getenv_opt "SCANPOWER_BENCH_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 4

let bench_cache () =
  match Sys.getenv_opt "SCANPOWER_BENCH_CACHE" with
  | Some "off" | Some "0" -> None
  | Some dir -> Some (Runner.Cache.create ~dir ())
  | None -> Some (Runner.Cache.create ())

(* SCANPOWER_BENCH_JSON=out.json captures per-stage wall-clock timings
   (every stage runs inside a telemetry span, so the flow's own phase
   tree nests below it) plus all hot-kernel counters as one JSON
   metrics snapshot — the same exporter the CLI's --metrics-out uses. *)
let json_out = Sys.getenv_opt "SCANPOWER_BENCH_JSON"
let () = if json_out <> None then Telemetry.enable ()

let section name = Format.printf "@.=== %s ===@." name

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  section "Figure 2: NAND2 leakage per input state (45 nm, 0.9 V)";
  let cell = Techlib.Cell.Nand 2 in
  Format.printf "state | measured (nA) | paper (nA)@.";
  for s = 0 to 3 do
    Format.printf "  %s  | %13.1f | %10.1f@."
      (Techlib.Leakage_table.string_of_state cell s)
      (Techlib.Leakage_table.leakage_na cell ~state:s)
      Techlib.Leakage_table.paper_nand2_na.(s)
  done;
  Format.printf "raw (uncalibrated) model: ";
  for s = 0 to 3 do
    Format.printf "%s=%.1f "
      (Techlib.Leakage_table.string_of_state cell s)
      (Techlib.Leakage_table.raw_leakage_na cell ~state:s)
  done;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let table1_circuits =
  if fast then [ "s344"; "s382"; "s444"; "s510" ]
  else
    [ "s344"; "s382"; "s444"; "s510"; "s641"; "s713"; "s1196"; "s1238";
      "s1423"; "s1494"; "s5378"; "s9234" ]

let table1 () =
  section "Table I: scan power, traditional vs input control [8] vs proposed";
  let t0 = Unix.gettimeofday () in
  let points =
    Scanpower.Sweep.points (List.map Circuits.by_name table1_circuits)
  in
  let on_event = function
    | Runner.Finished
        { job; outcome = Runner.Done { from_cache; duration_s; _ } } ->
      Format.printf "%-16s %s@." job.Runner.id
        (if from_cache then "cached"
         else Printf.sprintf "done in %5.1fs" duration_s);
      Format.pp_print_flush Format.std_formatter ()
    | Runner.Finished { job; outcome = Runner.Failed { attempts; last; _ } } ->
      Format.printf "%-16s FAILED after %d attempt(s): %s@." job.Runner.id
        attempts
        (Runner.failure_to_string last)
    | Runner.Attempt_failed { job; attempt; failure; _ } ->
      Format.printf "%-16s attempt %d %s; retrying@." job.Runner.id attempt
        (Runner.failure_to_string failure)
    | Runner.Started _ -> ()
  in
  let report =
    Scanpower.Sweep.run ~jobs:bench_jobs ?cache:(bench_cache ())
      ~capture_telemetry:(bench_jobs > 1) ~on_event points
  in
  List.iter
    (fun (r : Scanpower.Sweep.job_result) ->
      match r.Scanpower.Sweep.comparison with
      | Ok cmp ->
        Format.printf "%-7s %d vectors, %d/%d cells muxed@."
          r.Scanpower.Sweep.circuit cmp.Scanpower.Flow.n_vectors
          cmp.Scanpower.Flow.n_muxable cmp.Scanpower.Flow.n_dffs
      | Error e ->
        Format.printf "%-7s failed: %s@." r.Scanpower.Sweep.circuit e)
    report.Scanpower.Sweep.results;
  let s = report.Scanpower.Sweep.stats in
  Format.printf
    "pool: %d workers, %d computed, %d cache hits, %d retries, %d crashes \
     (%.1fs wall)@."
    bench_jobs s.Runner.computed s.Runner.cache_hits s.Runner.retries
    s.Runner.crashes
    (Unix.gettimeofday () -. t0);
  let rows = Scanpower.Sweep.rows report in
  Format.printf "@.measured:@.";
  Scanpower.Report.pp_table Format.std_formatter rows;
  Format.printf "@.paper:@.";
  Scanpower.Report.pp_table Format.std_formatter
    (List.filter_map Scanpower.Report.paper_row table1_circuits);
  (* shape check: the qualitative claims of the paper *)
  let static_wins =
    List.length
      (List.filter
         (fun r ->
           r.Scanpower.Report.prop_static < r.Scanpower.Report.trad_static
           && r.Scanpower.Report.prop_static < r.Scanpower.Report.ic_static)
         rows)
  in
  let dyn_wins =
    List.length
      (List.filter
         (fun r -> r.Scanpower.Report.prop_dyn < r.Scanpower.Report.trad_dyn)
         rows)
  in
  Format.printf
    "@.shape: proposed beats both baselines on static power in %d/%d circuits; \
     beats traditional scan on dynamic power in %d/%d.@."
    static_wins (List.length rows) dyn_wins (List.length rows)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_circuits =
  if fast then [ "s344"; "s382" ] else [ "s344"; "s382"; "s444"; "s1196" ]

(* Measure scan static power for the proposed structure built with a
   given pattern-search direction. *)
let proposed_static ~direction ~reorder name =
  let c = Techmap.Mapper.map (Circuits.by_name name) in
  let chain = Scan.Scan_chain.natural c in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:3 ~count:50 c in
  let mux = Scanpower.Mux_insertion.select c in
  let cp =
    Scanpower.Controlled_pattern.find ~direction c
      ~muxable:mux.Scanpower.Mux_insertion.muxable
  in
  let filled =
    Scanpower.Ivc.fill ~seed:11 c ~values:cp.Scanpower.Controlled_pattern.values
      ~controlled:cp.Scanpower.Controlled_pattern.controlled
  in
  let concrete id =
    match filled.Scanpower.Ivc.values.(id) with
    | Netlist.Logic.One -> true
    | Netlist.Logic.Zero | Netlist.Logic.X -> false
  in
  let policy =
    {
      Scan.Scan_sim.pi_during_shift =
        Some (Array.map concrete (Netlist.Circuit.inputs c));
      forced_pseudo =
        List.map (fun id -> (id, concrete id)) mux.Scanpower.Mux_insertion.muxable;
      hold_previous_capture = false;
    }
  in
  let c, permuted =
    if reorder then begin
      let c' = Netlist.Circuit.copy c in
      let ro =
        Scanpower.Input_reorder.optimize c' ~values:filled.Scanpower.Ivc.values
      in
      (c', ro.Scanpower.Input_reorder.gates_reordered)
    end
    else (c, 0)
  in
  ((Scan.Scan_sim.measure c chain policy ~vectors).Scan.Scan_sim.avg_static_uw,
   permuted)

(* (a) does directing the search by leakage observability buy leakage? *)
let ablation_direction () =
  section
    "Ablation (a): leakage-observability direction in FindControlledInputPattern";
  Format.printf "%-8s | %12s | %12s | %s@." "circuit" "directed uW"
    "undirected uW" "gain";
  List.iter
    (fun name ->
      let c = Techmap.Mapper.map (Circuits.by_name name) in
      let directed, _ =
        proposed_static
          ~direction:
            (Scanpower.Justify.Leakage_directed (Power.Observability.compute c))
          ~reorder:false name
      in
      let undirected, _ =
        proposed_static ~direction:Scanpower.Justify.Structural ~reorder:false
          name
      in
      Format.printf "%-8s | %12.2f | %12.2f | %+.2f%%@." name directed
        undirected
        (Scanpower.Flow.improvement undirected directed))
    ablation_circuits

(* (b) AddMUX: one timing analysis + slack test vs per-candidate re-STA *)
let ablation_addmux () =
  section "Ablation (b): AddMUX slack test vs naive re-analysis";
  List.iter
    (fun name ->
      let c = Techmap.Mapper.map (Circuits.by_name name) in
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let naive, t_naive =
        time (fun () ->
            Scanpower.Mux_insertion.select
              ~strategy:Scanpower.Mux_insertion.Naive c)
      in
      let slack, t_slack =
        time (fun () ->
            Scanpower.Mux_insertion.select
              ~strategy:Scanpower.Mux_insertion.Slack_based c)
      in
      let agree =
        List.sort compare naive.Scanpower.Mux_insertion.muxable
        = List.sort compare slack.Scanpower.Mux_insertion.muxable
      in
      Format.printf "%-8s naive %.4fs, slack %.4fs (%.0fx), identical: %b@."
        name t_naive t_slack
        (t_naive /. Float.max 1e-9 t_slack)
        agree)
    ablation_circuits

(* (c) what does gate input reordering contribute on top of the vector? *)
let ablation_reorder () =
  section "Ablation (c): gate input reordering contribution";
  List.iter
    (fun name ->
      let c = Techmap.Mapper.map (Circuits.by_name name) in
      let direction =
        Scanpower.Justify.Leakage_directed (Power.Observability.compute c)
      in
      let without, _ = proposed_static ~direction ~reorder:false name in
      let with_, permuted = proposed_static ~direction ~reorder:true name in
      Format.printf
        "%-8s without %.2f uW, with %.2f uW (%d gates permuted): %+.2f%%@."
        name without with_ permuted
        (Scanpower.Flow.improvement without with_))
    ablation_circuits

(* (d) IVC sample count: diminishing returns of random completions *)
let ablation_ivc () =
  section "Ablation (d): IVC candidate-count sweep (expected scan leakage, uW)";
  let name = "s344" in
  let c = Techmap.Mapper.map (Circuits.by_name name) in
  let mux = Scanpower.Mux_insertion.select c in
  let cp =
    Scanpower.Controlled_pattern.find
      ~direction:
        (Scanpower.Justify.Leakage_directed (Power.Observability.compute c))
      c ~muxable:mux.Scanpower.Mux_insertion.muxable
  in
  Format.printf "%s:" name;
  List.iter
    (fun candidates ->
      let filled =
        Scanpower.Ivc.fill ~candidates ~seed:11 c
          ~values:cp.Scanpower.Controlled_pattern.values
          ~controlled:cp.Scanpower.Controlled_pattern.controlled
      in
      Format.printf " %d->%.3f" candidates
        filled.Scanpower.Ivc.expected_leakage_uw)
    [ 1; 4; 8; 16; 32; 64; 128 ];
  Format.printf "@."

(* (e) the paper's closing remark: vector and scan-cell reordering give
   further improvements on top of the proposed structure *)
let ablation_reordering_ext () =
  section
    "Ablation (e): test-vector / scan-cell reordering on top (paper Section 5)";
  List.iter
    (fun name ->
      let c = Techmap.Mapper.map (Circuits.by_name name) in
      let vectors = Atpg.Pattern_gen.random_vectors ~seed:3 ~count:50 c in
      let natural = Scan.Scan_chain.natural c in
      let base =
        Scan.Scan_sim.measure c natural Scan.Scan_sim.traditional ~vectors
      in
      let v' = Scanpower.Reordering.reorder_vectors vectors in
      let with_vectors =
        Scan.Scan_sim.measure c natural Scan.Scan_sim.traditional ~vectors:v'
      in
      let chain' = Scanpower.Reordering.reorder_chain c vectors in
      let with_both =
        Scan.Scan_sim.measure c chain' Scan.Scan_sim.traditional ~vectors:v'
      in
      let dyn (m : Scan.Scan_sim.result) =
        m.Scan.Scan_sim.dynamic.Power.Switching.dynamic_per_hz_uw
      in
      Format.printf
        "%-8s dyn/f: natural %.3e | +vector reorder %.3e (%+.1f%%) | +chain reorder %.3e (%+.1f%%)@."
        name (dyn base) (dyn with_vectors)
        (Scanpower.Flow.improvement (dyn base) (dyn with_vectors))
        (dyn with_both)
        (Scanpower.Flow.improvement (dyn base) (dyn with_both)))
    ablation_circuits

(* (f) glitch factor: how much does the zero-delay Eq. (1) figure
   under-count once gate delays and hazards are modelled? *)
let ablation_glitch () =
  section "Ablation (f): transport-delay glitch factor on scan shift activity";
  List.iter
    (fun name ->
      let c = Techmap.Mapper.map (Circuits.by_name name) in
      let timing = Sta.analyze c in
      let gsim = Sta.Glitch_sim.create timing in
      let esim = Sim.Event_sim.create c in
      Sta.Glitch_sim.init gsim (fun _ -> false);
      Sim.Event_sim.init esim (fun _ -> false);
      let rng = Util.Rng.create 23 in
      let current = Array.make (Netlist.Circuit.node_count c) false in
      for _ = 1 to 200 do
        let changes = ref [] in
        Array.iter
          (fun id ->
            if Util.Rng.bool rng then begin
              current.(id) <- not current.(id);
              changes := (id, current.(id)) :: !changes
            end)
          (Netlist.Circuit.sources c);
        ignore (Sta.Glitch_sim.apply gsim !changes);
        ignore (Sim.Event_sim.set_sources esim !changes)
      done;
      let glitchy = Sta.Glitch_sim.total_transitions gsim in
      let settled = Sim.Event_sim.total_toggles esim in
      Format.printf "%-8s settled %7d | with glitches %7d | factor %.2fx@."
        name settled glitchy
        (float_of_int glitchy /. float_of_int (max 1 settled)))
    ablation_circuits

(* (g) exact (BDD) vs analytic signal probabilities: the error of the
   independence assumption inside the leakage-observability engine *)
let ablation_exact_probabilities () =
  section "Ablation (g): independence assumption vs exact BDD probabilities";
  List.iter
    (fun name ->
      let c = Techmap.Mapper.map (Circuits.by_name name) in
      match Bdd.Circuit_bdd.build ~node_budget:3_000_000 c with
      | exception Bdd.Circuit_bdd.Too_large ->
        Format.printf "%-8s BDD blow-up (skipped)@." name
      | sym ->
        let exact = Bdd.Circuit_bdd.probabilities sym () in
        let approx = Power.Observability.compute c in
        let worst = ref 0.0 and sum = ref 0.0 and n = ref 0 in
        Array.iter
          (fun nd ->
            if Netlist.Gate.is_logic nd.Netlist.Circuit.kind then begin
              let err =
                Float.abs
                  (exact.(nd.Netlist.Circuit.id)
                  -. Power.Observability.probability approx nd.Netlist.Circuit.id)
              in
              worst := Float.max !worst err;
              sum := !sum +. err;
              incr n
            end)
          (Netlist.Circuit.nodes c);
        let exact_leak = Bdd.Circuit_bdd.exact_expected_leakage_uw sym () in
        let p_one =
          Array.init (Netlist.Circuit.node_count c) (fun id ->
              Power.Observability.probability approx id)
        in
        let approx_leak = Power.Leakage.expected_total_leakage_uw c ~p_one in
        Format.printf
          "%-8s prob error: mean %.4f worst %.4f | E[leakage]: exact %.2f vs analytic %.2f uW (%.1f%% off)@."
          name
          (!sum /. float_of_int (max 1 !n))
          !worst exact_leak approx_leak
          (100.0 *. Float.abs (exact_leak -. approx_leak) /. exact_leak))
    (if fast then [ "s27"; "s344" ] else [ "s27"; "s344"; "s382"; "s444" ])

(* (h) multiple scan chains: shift time vs per-cycle activity *)
let ablation_multi_chain () =
  section "Ablation (h): multi-chain trade-off (traditional scan, s382)";
  let c = Techmap.Mapper.map (Circuits.by_name "s382") in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:3 ~count:50 c in
  List.iter
    (fun k ->
      let mc = Scan.Multi_chain.partition c ~chains:k in
      let m = Scan.Multi_chain.measure mc ~policy:Scan.Scan_sim.traditional ~vectors in
      Format.printf
        "%2d chains: %5d cycles, %7d toggles, dyn/f %.3e uW/Hz, peak static %.2f uW@."
        k m.Scan.Multi_chain.cycles m.Scan.Multi_chain.total_toggles
        m.Scan.Multi_chain.dynamic_per_hz_uw m.Scan.Multi_chain.peak_static_uw)
    [ 1; 2; 4; 7; 21 ]

(* (i) ATPG engines: plain PODEM vs SCOAP-guided PODEM vs D-algorithm *)
let ablation_atpg_engines () =
  section "Ablation (i): ATPG engines on the collapsed fault list";
  List.iter
    (fun name ->
      let c = Techmap.Mapper.map (Circuits.by_name name) in
      let faults = Atpg.Fault.collapsed_faults c in
      let guide = Atpg.Scoap.compute c in
      let tally run =
        let t0 = Unix.gettimeofday () in
        let t = ref 0 and u = ref 0 and a = ref 0 in
        List.iter
          (fun f ->
            match run f with
            | `T -> incr t
            | `U -> incr u
            | `A -> incr a)
          faults;
        (!t, !u, !a, Unix.gettimeofday () -. t0)
      in
      let podem_tag = function
        | Atpg.Podem.Test _ -> `T
        | Atpg.Podem.Untestable -> `U
        | Atpg.Podem.Aborted -> `A
      in
      let dalg_tag = function
        | Atpg.D_algorithm.Test _ -> `T
        | Atpg.D_algorithm.Untestable -> `U
        | Atpg.D_algorithm.Aborted -> `A
      in
      let show tag (t, u, a, secs) =
        Format.printf "  %-14s test %4d | untestable %3d | aborted %3d | %.2fs@."
          tag t u a secs
      in
      Format.printf "%s (%d faults):@." name (List.length faults);
      show "podem" (tally (fun f -> podem_tag (Atpg.Podem.generate c f)));
      show "podem+scoap"
        (tally (fun f -> podem_tag (Atpg.Podem.generate ~guide c f)));
      show "d-algorithm"
        (tally (fun f -> dalg_tag (Atpg.D_algorithm.generate c f))))
    (if fast then [ "s344" ] else [ "s344"; "s382" ])

(* ------------------------------------------------------------------ *)
(* Kernel micro-bench: compiled form + packed scan engine              *)
(* ------------------------------------------------------------------ *)

(* Wall-clock per kernel on the Table I shift loop: circuit compile,
   packed 64-lane shift simulation, scalar event-driven reference, and
   64-way fault simulation with both engines (critical path tracing
   and the full-cone reference). Cross-checks that both scan engines
   return identical toggle counts and both fault-sim engines identical
   per-fault detections, and writes the numbers (plus packed/scalar
   and cpt/cone speedups and stem-event throughput) to
   BENCH_kernels.json. *)

let kernel_circuits =
  if fast then [ "s344"; "s1196" ] else [ "s344"; "s1196"; "s5378"; "s9234" ]

let kernels_json = ref []

let kernels () =
  section "Kernels: compiled circuit + packed scan shift vs scalar reference";
  (* best-of-[reps] wall clock after one untimed warmup run, so cold
     caches and lazy initialisation don't pollute the comparison *)
  let time ?(reps = 1) f =
    let r = ref (f ()) in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      r := f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (!r, !best)
  in
  let shift_reps = if fast then 3 else 1 in
  List.iter
    (fun name ->
      let c = Circuits.by_name name (* generated pre-mapped *) in
      let chain = Scan.Scan_chain.natural c in
      let vectors = Atpg.Pattern_gen.random_vectors ~seed:7 ~count:20 c in
      let n_gates = Netlist.Circuit.node_count c in
      let _, compile_s =
        time ~reps:10 (fun () -> Netlist.Compiled.of_circuit c)
      in
      (* width pinned to 1: this is the historical baseline metric the
         committed BENCH pairs against; the auto-width point below is
         what an unannotated [measure] call actually runs *)
      let packed, packed_s =
        time ~reps:shift_reps (fun () ->
            Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Packed ~width:1 c chain
              Scan.Scan_sim.traditional ~vectors)
      in
      let scalar, scalar_s =
        time ~reps:shift_reps (fun () ->
            Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Scalar c chain
              Scan.Scan_sim.traditional ~vectors)
      in
      (* the engines must agree bit for bit on the activity they count *)
      if packed.Scan.Scan_sim.toggles <> scalar.Scan.Scan_sim.toggles then
        failwith (name ^ ": packed/scalar per-node toggle mismatch");
      if
        packed.Scan.Scan_sim.per_cycle_toggles
        <> scalar.Scan.Scan_sim.per_cycle_toggles
      then failwith (name ^ ": packed/scalar per-cycle toggle mismatch");
      (* W-word batches: same measurement at 256 and 512 patterns per
         pass; each must reproduce the W=1 toggle counts bit for bit
         before its timing is trusted *)
      let wide_shift width =
        let r, s =
          time ~reps:shift_reps (fun () ->
              Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Packed ~width c
                chain Scan.Scan_sim.traditional ~vectors)
        in
        if r.Scan.Scan_sim.toggles <> packed.Scan.Scan_sim.toggles then
          failwith
            (Printf.sprintf "%s: packed W=%d toggle mismatch" name width);
        if
          r.Scan.Scan_sim.per_cycle_toggles
          <> packed.Scan.Scan_sim.per_cycle_toggles
        then
          failwith
            (Printf.sprintf "%s: packed W=%d per-cycle mismatch" name width);
        s
      in
      let packed_w4_s = wide_shift 4 in
      let packed_w8_s = wide_shift 8 in
      (* the width [measure] picks on its own when none is given: one
         scan segment per frame, so short chains stop paying for dead
         lanes (this is the configuration every non-bench caller gets) *)
      let auto_w = Scan.Scan_sim.auto_width chain in
      let packed_auto, packed_auto_s =
        time ~reps:shift_reps (fun () ->
            Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Packed c chain
              Scan.Scan_sim.traditional ~vectors)
      in
      if packed_auto.Scan.Scan_sim.toggles <> packed.Scan.Scan_sim.toggles then
        failwith (name ^ ": packed auto-width toggle mismatch");
      let faults = Atpg.Fault.collapsed_faults c in
      (* both fault-sim engines on persistent machines: the cone
         reference and the critical-path-tracing engine must agree
         fault for fault, and the stem-event throughput is counted via
         telemetry (enabled just for the timed cpt run) *)
      let m_cone = Atpg.Fault_simulation.make ~engine:Atpg.Fault_simulation.Cone c in
      let m_cpt = Atpg.Fault_simulation.make ~engine:Atpg.Fault_simulation.Cpt c in
      let (cone_detected, _), fault_cone_s =
        time (fun () ->
            Atpg.Fault_simulation.split ~machine:m_cone c ~faults ~vectors)
      in
      let was_enabled = Telemetry.enabled () in
      Telemetry.enable ();
      let events0 =
        match Telemetry.Counter.find "atpg.fault_sim.stem_events" with
        | Some v -> v
        | None -> 0
      in
      (* the per-pattern latency histogram accumulates across circuits;
         reset so the percentiles below describe this circuit's timed
         run only *)
      let h_pattern = Telemetry.Histogram.make "atpg.fault_sim.pattern_s" in
      Telemetry.Histogram.reset h_pattern;
      let (cpt_detected, _), fault_cpt_s =
        time (fun () ->
            Atpg.Fault_simulation.split ~machine:m_cpt c ~faults ~vectors)
      in
      let events1 =
        match Telemetry.Counter.find "atpg.fault_sim.stem_events" with
        | Some v -> v
        | None -> 0
      in
      let pattern_p50 = Telemetry.Histogram.percentile h_pattern 0.5 in
      let pattern_p99 = Telemetry.Histogram.percentile h_pattern 0.99 in
      if not was_enabled then Telemetry.disable ();
      if cone_detected <> cpt_detected then
        failwith (name ^ ": cone/cpt fault-sim detection mismatch");
      let detected = cpt_detected in
      let fault_speedup = fault_cone_s /. Float.max 1e-9 fault_cpt_s in
      let fault_events_s =
        float_of_int (events1 - events0) /. Float.max 1e-9 fault_cpt_s
      in
      (* FFR-sharded fault simulation over 2 and 4 domains; the merged
         partition must be bit-identical to the sequential walk (on
         this box the wall-clock gain tracks the core count — a
         single-core runner reports ~1x, which is honest) *)
      let sharded_fault domains =
        Par.Domain_pool.with_pool ~domains (fun pool ->
            (* threshold 0: the metric means "the sharded walk", so the
               min-work bypass must not quietly turn it sequential on
               the small circuits *)
            let (det, _), s =
              time (fun () ->
                  Atpg.Fault_simulation.split ~machine:m_cpt ~pool
                    ~par_threshold:0 c ~faults ~vectors)
            in
            if det <> cpt_detected then
              failwith
                (Printf.sprintf "%s: sharded fault-sim (d=%d) mismatch" name
                   domains);
            s)
      in
      let fault_d2_s = sharded_fault 2 in
      let fault_d4_s = sharded_fault 4 in
      (* PPSFP with fault dropping vs the literal per-pattern walk it
         replaces: one vector at a time through the CPT machine with
         manual dropping — the cost every caller that cannot batch
         (fitness loops, incremental searches) used to pay — and, as
         the honest in-family comparison, one 64-per-word CPT run over
         the same vector list. Both must land on the same partition. *)
      let ppsfp_vectors =
        Atpg.Pattern_gen.random_vectors ~seed:7
          ~count:(if fast then 64 else 256)
          c
      in
      let m_ppsfp =
        Atpg.Fault_simulation.make ~engine:Atpg.Fault_simulation.Ppsfp c
      in
      let (pp_detected, pp_undetected), fault_ppsfp_s =
        time (fun () ->
            Atpg.Fault_simulation.split ~machine:m_ppsfp c ~faults
              ~vectors:ppsfp_vectors)
      in
      let per_pattern_walk () =
        (* the seed's inner loop: every fault resimulated against every
           pattern, one pattern at a time — no batching and no dropping,
           which are exactly the optimisations under measurement *)
        let detected = Hashtbl.create 1024 in
        List.iter
          (fun v ->
            let det, _ =
              Atpg.Fault_simulation.split ~machine:m_cpt c ~faults
                ~vectors:[ v ]
            in
            List.iter (fun f -> Hashtbl.replace detected f ()) det)
          ppsfp_vectors;
        List.filter (fun f -> not (Hashtbl.mem detected f)) faults
      in
      let pp_undet_ref, fault_per_pattern_s = time per_pattern_walk in
      if pp_undet_ref <> pp_undetected then
        failwith (name ^ ": ppsfp/per-pattern undetected mismatch");
      let (cpt_wide_det, _), fault_cpt_wide_s =
        time (fun () ->
            Atpg.Fault_simulation.split ~machine:m_cpt c ~faults
              ~vectors:ppsfp_vectors)
      in
      if cpt_wide_det <> pp_detected then
        failwith (name ^ ": ppsfp/cpt detection mismatch");
      let ppsfp_speedup =
        fault_per_pattern_s /. Float.max 1e-9 fault_ppsfp_s
      in
      let ppsfp_vs_cpt_speedup =
        fault_cpt_wide_s /. Float.max 1e-9 fault_ppsfp_s
      in
      Format.printf
        "%-8s ppsfp %7.3fs vs per-pattern cpt %7.3fs (%5.1fx) vs batched cpt \
         %7.3fs (%5.1fx) over %d vectors@."
        name fault_ppsfp_s fault_per_pattern_s ppsfp_speedup fault_cpt_wide_s
        ppsfp_vs_cpt_speedup (List.length ppsfp_vectors);
      let speedup = scalar_s /. Float.max 1e-9 packed_s in
      Format.printf
        "%-8s compile %7.4fs | shift sim: packed %8.4fs vs scalar %8.4fs \
         (%5.1fx) | W4 %8.4fs W8 %8.4fs | fault sim: cpt %7.3fs vs cone \
         %7.3fs (%5.1fx, %.2e ev/s, %d/%d detected) | d2 %7.3fs d4 %7.3fs@."
        name compile_s packed_s scalar_s speedup packed_w4_s packed_w8_s
        fault_cpt_s fault_cone_s fault_speedup fault_events_s
        (List.length detected) (List.length faults) fault_d2_s fault_d4_s;
      kernels_json :=
        ( name,
          Telemetry.Json.Obj
            [
              ("nodes", Telemetry.Json.Int n_gates);
              ("flip_flops", Telemetry.Json.Int (Scan.Scan_chain.length chain));
              ("vectors", Telemetry.Json.Int (List.length vectors));
              ("cycles", Telemetry.Json.Int packed.Scan.Scan_sim.cycles);
              ( "total_toggles",
                Telemetry.Json.Int packed.Scan.Scan_sim.total_toggles );
              ("compile_s", Telemetry.Json.Float compile_s);
              ("packed_width", Telemetry.Json.Int 8);
              ("domains", Telemetry.Json.Int 4);
              ("packed_shift_s", Telemetry.Json.Float packed_s);
              ("packed_shift_w4_s", Telemetry.Json.Float packed_w4_s);
              ("packed_shift_w8_s", Telemetry.Json.Float packed_w8_s);
              ("scalar_shift_s", Telemetry.Json.Float scalar_s);
              ("packed_speedup", Telemetry.Json.Float speedup);
              ( "packed_w4_speedup",
                Telemetry.Json.Float (packed_s /. Float.max 1e-9 packed_w4_s)
              );
              ( "packed_w8_speedup",
                Telemetry.Json.Float (packed_s /. Float.max 1e-9 packed_w8_s)
              );
              ("packed_auto_width", Telemetry.Json.Int auto_w);
              ("packed_shift_auto_s", Telemetry.Json.Float packed_auto_s);
              ( "packed_auto_speedup",
                Telemetry.Json.Float (packed_s /. Float.max 1e-9 packed_auto_s)
              );
              ("fault_sim_s", Telemetry.Json.Float fault_cpt_s);
              ("fault_sim_cone_s", Telemetry.Json.Float fault_cone_s);
              ("fault_sim_cpt_s", Telemetry.Json.Float fault_cpt_s);
              ("fault_sim_speedup", Telemetry.Json.Float fault_speedup);
              ("fault_sim_events_s", Telemetry.Json.Float fault_events_s);
              ("fault_sim_d2_s", Telemetry.Json.Float fault_d2_s);
              ("fault_sim_d4_s", Telemetry.Json.Float fault_d4_s);
              ( "fault_sim_par_d2_speedup",
                Telemetry.Json.Float (fault_cpt_s /. Float.max 1e-9 fault_d2_s)
              );
              ( "fault_sim_par_d4_speedup",
                Telemetry.Json.Float (fault_cpt_s /. Float.max 1e-9 fault_d4_s)
              );
              ("fault_sim_pattern_p50_s", Telemetry.Json.Float pattern_p50);
              ("fault_sim_pattern_p99_s", Telemetry.Json.Float pattern_p99);
              ("faults", Telemetry.Json.Int (List.length faults));
              ("faults_detected", Telemetry.Json.Int (List.length detected));
              ( "ppsfp_vectors",
                Telemetry.Json.Int (List.length ppsfp_vectors) );
              ( "fault_sim_per_pattern_s",
                Telemetry.Json.Float fault_per_pattern_s );
              ("fault_sim_ppsfp_s", Telemetry.Json.Float fault_ppsfp_s);
              ("fault_sim_cpt_wide_s", Telemetry.Json.Float fault_cpt_wide_s);
              ("fault_sim_ppsfp_speedup", Telemetry.Json.Float ppsfp_speedup);
              ( "fault_sim_ppsfp_vs_cpt_speedup",
                Telemetry.Json.Float ppsfp_vs_cpt_speedup );
              ( "ppsfp_faults_detected",
                Telemetry.Json.Int (List.length pp_detected) );
            ] )
        :: !kernels_json)
    kernel_circuits;
  (* per-fault detection equality over the rest of Table I too, not
     just the timed subset (untimed, so kept out of the JSON) *)
  List.iter
    (fun name ->
      let c = Circuits.by_name name in
      let vectors = Atpg.Pattern_gen.random_vectors ~seed:7 ~count:20 c in
      let faults = Atpg.Fault.collapsed_faults c in
      let check engine =
        fst
          (Atpg.Fault_simulation.split
             ~machine:(Atpg.Fault_simulation.make ~engine c)
             c ~faults ~vectors)
      in
      let cone = check Atpg.Fault_simulation.Cone in
      let cpt = check Atpg.Fault_simulation.Cpt in
      if cone <> cpt then
        failwith (name ^ ": cone/cpt fault-sim detection mismatch");
      Format.printf "%-8s engines agree (%d/%d detected)@." name
        (List.length cpt) (List.length faults))
    (List.filter (fun n -> not (List.mem n kernel_circuits)) table1_circuits);
  (* the acceptance matrix: PPSFP per-(fault, pattern) detection must
     be bit-identical to the Cone golden reference on every Table I
     circuit of this run, for every machine width, every domain count,
     and with fault dropping both on and off *)
  section "Kernels: PPSFP golden matrix (width x domains x drop vs Cone)";
  List.iter
    (fun name ->
      let module Fs = Atpg.Fault_simulation in
      let c = Circuits.by_name name in
      let vectors = Atpg.Pattern_gen.random_vectors ~seed:7 ~count:20 c in
      let faults = Atpg.Fault.collapsed_faults c in
      let m_cone = Fs.make ~engine:Fs.Cone c in
      let mx_cone = Fs.detection_matrix ~machine:m_cone c ~faults ~vectors in
      let ref_split = Fs.split ~machine:m_cone c ~faults ~vectors in
      List.iter
        (fun w ->
          let m = Fs.make ~engine:Fs.Ppsfp ~width:w c in
          List.iter
            (fun domains ->
              let mx =
                if domains = 1 then
                  Fs.detection_matrix ~machine:m c ~faults ~vectors
                else
                  Par.Domain_pool.with_pool ~domains (fun pool ->
                      Fs.detection_matrix ~machine:m ~pool ~par_threshold:0 c
                        ~faults ~vectors)
              in
              if mx <> mx_cone then
                failwith
                  (Printf.sprintf "%s: ppsfp matrix mismatch (w=%d d=%d)" name
                     w domains))
            [ 1; 2; 4 ];
          List.iter
            (fun drop ->
              if Fs.split ~machine:m ~drop c ~faults ~vectors <> ref_split then
                failwith
                  (Printf.sprintf "%s: ppsfp split mismatch (w=%d drop=%b)"
                     name w drop))
            [ true; false ])
        [ 1; 4; 8 ];
      Format.printf "%-8s ppsfp = cone, %d faults x %d patterns@." name
        (List.length faults) (List.length vectors))
    table1_circuits;
  (* scale tier (non-fast): seeded generated profiles an order of
     magnitude past Table I, where the PPSFP batch amortisation is the
     difference between usable and not. CPT runs the same vectors as
     the reference partition (and the honest in-family baseline). *)
  if not fast then begin
    section "Kernels: scale tier (seeded 50k/100k-gate profiles)";
    List.iter
      (fun prof ->
        let module Fs = Atpg.Fault_simulation in
        let name = prof.Circuits.name in
        let c, generate_s = time (fun () -> Circuits.generate prof) in
        let _, compile_s = time (fun () -> Netlist.Compiled.of_circuit c) in
        let vectors =
          Atpg.Pattern_gen.random_vectors ~seed:7 ~count:256 c
        in
        let faults = Atpg.Fault.collapsed_faults c in
        let m_ppsfp = Fs.make ~engine:Fs.Ppsfp c in
        let (pp_det, pp_undet), ppsfp_s =
          time (fun () -> Fs.split ~machine:m_ppsfp c ~faults ~vectors)
        in
        let m_cpt = Fs.make ~engine:Fs.Cpt c in
        let (cpt_det, cpt_undet), cpt_s =
          time (fun () -> Fs.split ~machine:m_cpt c ~faults ~vectors)
        in
        if cpt_det <> pp_det || cpt_undet <> pp_undet then
          failwith (name ^ ": scale-tier ppsfp/cpt partition mismatch");
        let vs_cpt = cpt_s /. Float.max 1e-9 ppsfp_s in
        Format.printf
          "%-8s %d nodes, %d faults, %d vectors | generate %6.2fs compile \
           %6.2fs | ppsfp %7.3fs vs cpt %7.3fs (%5.1fx) | %d detected@."
          name
          (Netlist.Circuit.node_count c)
          (List.length faults) (List.length vectors) generate_s compile_s
          ppsfp_s cpt_s vs_cpt (List.length pp_det);
        kernels_json :=
          ( name,
            Telemetry.Json.Obj
              [
                ("nodes", Telemetry.Json.Int (Netlist.Circuit.node_count c));
                ( "flip_flops",
                  Telemetry.Json.Int
                    (Array.length (Netlist.Circuit.dffs c)) );
                ("vectors", Telemetry.Json.Int (List.length vectors));
                ("faults", Telemetry.Json.Int (List.length faults));
                ( "faults_detected",
                  Telemetry.Json.Int (List.length pp_det) );
                ("generate_s", Telemetry.Json.Float generate_s);
                ("compile_s", Telemetry.Json.Float compile_s);
                ("fault_sim_ppsfp_s", Telemetry.Json.Float ppsfp_s);
                ("fault_sim_cpt_wide_s", Telemetry.Json.Float cpt_s);
                ( "fault_sim_ppsfp_vs_cpt_speedup",
                  Telemetry.Json.Float vs_cpt );
              ] )
          :: !kernels_json)
      Circuits.scale_profiles
  end;
  Format.printf "kernel timings collected for BENCH_kernels.json@."

(* ------------------------------------------------------------------ *)
(* Serve: warm machine-registry latency over the daemon socket         *)
(* ------------------------------------------------------------------ *)

(* The daemon's reason to exist is amortisation: the first flow request
   for a circuit pays the full prepare (ATPG + compile), every repeat
   only re-evaluates against the resident machine. Measured end-to-end
   through the real socket + client + JSON stack, so protocol overhead
   counts against the win. The warm tail must come in at or under 20%
   of the cold request, and [serve_warm_speedup] is gated as a rate by
   bench-diff so the amortisation cannot silently rot. *)

let serve_bench () =
  section "Serve: warm machine-registry latency over the daemon socket";
  let module D = Scanpower_server.Daemon in
  let module C = Scanpower_server.Client in
  let module P = Scanpower_server.Protocol in
  let module J = Telemetry.Json in
  (* s1196 in both modes: this stage pins registry *amortisation* —
     warm requests must elide the prepare — which is only a meaningful
     contract where prepare dominates the request. On an
     eval-dominated circuit (s5378: ~5s of measurement per request vs
     ~14s of prepare) the warm floor is the measurement itself and the
     20%-of-cold assertion below is structurally unsatisfiable. *)
  let circuit = "s1196" in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scanpower-bench-%d.sock" (Unix.getpid ()))
  in
  let config = { D.default_config with D.socket; log = None } in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try ignore (D.run ~config ()) with _ -> ());
    Unix._exit 0
  end;
  let stop () =
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid)
  in
  Fun.protect ~finally:stop (fun () ->
      let client = C.connect ~retry_for_s:10.0 socket in
      Fun.protect
        ~finally:(fun () -> C.close client)
        (fun () ->
          let rpc req =
            let t0 = Unix.gettimeofday () in
            match C.rpc client req with
            | Ok v -> (v, Unix.gettimeofday () -. t0)
            | Error e ->
              failwith
                ("serve bench request failed: " ^ Scanpower_errors.to_string e)
          in
          let flow i =
            rpc
              (P.make
                 ~id:(Printf.sprintf "bench-%d" i)
                 ~circuit ~seed:7 P.Flow)
          in
          let warm_reps = 12 in
          let v0, cold_s = flow 0 in
          (match J.member "registry_hit" v0 with
          | Some (J.Bool false) -> ()
          | _ -> failwith "serve bench: first request must miss the registry");
          let warm = List.init warm_reps (fun i -> snd (flow (i + 1))) in
          let sorted = List.sort compare warm in
          let warm_p50 = List.nth sorted (warm_reps / 2) in
          let warm_p99 = List.nth sorted (warm_reps - 1) in
          let stats, _ = rpc (P.make ~id:"bench-stats" P.Stats) in
          let hits =
            match J.member "registry" stats with
            | Some reg -> (
              match J.member "hits" reg with Some (J.Int n) -> n | _ -> -1)
            | None -> -1
          in
          if hits <> warm_reps then
            failwith
              (Printf.sprintf
                 "serve bench: expected %d registry hits, daemon reports %d"
                 warm_reps hits);
          let speedup = cold_s /. Float.max 1e-9 warm_p99 in
          Format.printf
            "%-8s cold %.4fs | warm p50 %.4fs p99 %.4fs (%5.1fx) | %d/%d \
             registry hits@."
            circuit cold_s warm_p50 warm_p99 speedup hits warm_reps;
          (* the acceptance bar: amortisation must actually amortise *)
          if warm_p99 > 0.2 *. cold_s then
            failwith
              (Printf.sprintf
                 "serve bench: warm p99 %.4fs exceeds 20%% of cold %.4fs"
                 warm_p99 cold_s);
          kernels_json :=
            ( "serve",
              (* numbers only: bench-diff refuses string metrics; the
                 benched circuit differs between fast and full mode,
                 which the top-level [fast] flag already records *)
              J.Obj
                [
                  ("requests", J.Int (warm_reps + 1));
                  ("registry_hits", J.Int hits);
                  ("serve_cold_s", J.Float cold_s);
                  ("serve_warm_p50_s", J.Float warm_p50);
                  ("serve_warm_p99_s", J.Float warm_p99);
                  ("serve_warm_speedup", J.Float speedup);
                ] )
            :: !kernels_json))

(* ------------------------------------------------------------------ *)
(* Serve recovery: crash mid-request, restart warm, replay             *)
(* ------------------------------------------------------------------ *)

(* The self-healing claim, measured: a supervised daemon is SIGKILLed
   mid-request, the supervisor restarts it, the restarted generation
   restores the registry snapshot, and the resilient client replays.
   [serve_recovery_s] is the client-observed time from firing the
   doomed request to its first successful answer — crash detection +
   restart + snapshot restore + replay, end to end — and the replay
   must be a registry hit (a cold re-prepare would hide behind a
   correct answer and rot the snapshot path silently). *)

let serve_recovery_bench () =
  section "Serve recovery: crash mid-request, warm restart, replay";
  let module D = Scanpower_server.Daemon in
  let module S = Scanpower_server.Supervisor in
  let module C = Scanpower_server.Client in
  let module P = Scanpower_server.Protocol in
  let module FI = Runner.Fault_inject in
  let module J = Telemetry.Json in
  let circuit = "s1196" in
  (* deterministic chaos: find a seed where generation 1 dies on the
     doomed id and every other (id, generation) we use is spared *)
  let seed =
    let ok seed =
      let spec = { FI.seed; rates = [ (FI.Worker_kill, 0.5) ] } in
      FI.with_spec (Some spec) (fun () ->
          FI.fires FI.Worker_kill ~key:"kill-me#gen1"
          && List.for_all
               (fun key -> not (FI.fires FI.Worker_kill ~key))
               [ "warm#gen1"; "kill-me#gen2"; "st#gen2" ])
    in
    let rec go s = if ok s then s else go (s + 1) in
    go 0
  in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scanpower-bench-rec-%d.sock" (Unix.getpid ()))
  in
  let snap =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scanpower-bench-rec-%d.snap" (Unix.getpid ()))
  in
  let daemon =
    {
      D.default_config with
      D.socket;
      log = None;
      snapshot_path = Some snap;
      snapshot_every_s = 0.05;
    }
  in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    FI.set (Some { FI.seed; rates = [ (FI.Worker_kill, 0.5) ] });
    (try
       S.run
         ~config:{ S.daemon; restart_budget = 5; restart_refill_s = 30.0 }
         ()
     with _ -> ());
    Unix._exit 0
  end;
  let stop () =
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
    if Sys.file_exists snap then Sys.remove snap
  in
  Fun.protect ~finally:stop (fun () ->
      let session = C.session ~retry_for_s:60.0 socket in
      Fun.protect
        ~finally:(fun () -> C.close_session session)
        (fun () ->
          let call req =
            match C.call session req with
            | Ok v -> v
            | Error e ->
              failwith
                ("serve recovery request failed: "
                ^ Scanpower_errors.to_string e)
          in
          ignore (call (P.make ~id:"warm" ~circuit ~seed:7 P.Flow));
          (* let a snapshot tick capture the warm entry *)
          Unix.sleepf 0.6;
          let t0 = Unix.gettimeofday () in
          let v = call (P.make ~id:"kill-me" ~circuit ~seed:7 P.Flow) in
          let recovery_s = Unix.gettimeofday () -. t0 in
          let warm_hit = J.member "registry_hit" v = Some (J.Bool true) in
          let stats = call (P.make ~id:"st" P.Stats) in
          let int_field obj k =
            match J.member k obj with Some (J.Int n) -> n | _ -> -1
          in
          let generation = int_field stats "generation" in
          let warm_restored = int_field stats "warm_restored" in
          Format.printf
            "%-8s recovery %.4fs | generation %d | %d restored | replay %s@."
            circuit recovery_s generation warm_restored
            (if warm_hit then "warm" else "COLD");
          if C.session_replays session < 1 then
            failwith "serve recovery: the client never replayed";
          if generation <> 2 then
            failwith
              (Printf.sprintf
                 "serve recovery: expected generation 2, daemon reports %d"
                 generation);
          if warm_restored < 1 then
            failwith "serve recovery: restarted daemon restored nothing";
          if not warm_hit then
            failwith
              "serve recovery: replay re-prepared instead of hitting the \
               restored registry";
          kernels_json :=
            ( "serve_recovery",
              J.Obj
                [
                  ("serve_recovery_s", J.Float recovery_s);
                  ("recovery_generation", J.Int generation);
                  ("recovery_warm_restored", J.Int warm_restored);
                  ("recovery_warm_hit", J.Int (if warm_hit then 1 else 0));
                  ("client_replays", J.Int (C.session_replays session));
                ] )
            :: !kernels_json))

let write_bench_json () =
  if !kernels_json <> [] then begin
    let doc =
      Telemetry.Json.Obj
        [
          ("schema", Telemetry.Json.String "scanpower.bench_kernels/3");
          ("fast", Telemetry.Json.Bool fast);
          ("circuits", Telemetry.Json.Obj (List.rev !kernels_json));
        ]
    in
    let oc = open_out "BENCH_kernels.json" in
    output_string oc (Telemetry.Json.to_string doc);
    output_string oc "\n";
    close_out oc;
    Format.printf "kernel timings written to BENCH_kernels.json@."
  end

(* ------------------------------------------------------------------ *)
(* bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let s27 = Techmap.Mapper.map (Circuits.s27 ()) in
  let s344 = Circuits.by_name "s344" (* generated pre-mapped *) in
  let s344_timing = Sta.analyze s344 in
  let s27_vectors = Atpg.Pattern_gen.random_vectors ~seed:1 ~count:20 s27 in
  let s27_chain = Scan.Scan_chain.natural s27 in
  let some_gate =
    let nodes = Netlist.Circuit.nodes s344 in
    let rec pick i =
      if Netlist.Gate.is_logic nodes.(i).Netlist.Circuit.kind then i
      else pick (i + 1)
    in
    pick (Netlist.Circuit.node_count s344 / 2)
  in
  let fault =
    { Atpg.Fault.site = Atpg.Fault.Output_line some_gate; stuck = true }
  in
  let obs344 = Power.Observability.compute s344 in
  let tests =
    [
      (* Table I building blocks *)
      Test.make ~name:"table1/scan-sim-s27"
        (Staged.stage (fun () ->
             Scan.Scan_sim.measure s27 s27_chain Scan.Scan_sim.traditional
               ~vectors:s27_vectors));
      Test.make ~name:"table1/podem-one-fault-s344"
        (Staged.stage (fun () -> Atpg.Podem.generate s344 fault));
      Test.make ~name:"table1/controlled-pattern-s344"
        (Staged.stage (fun () ->
             Scanpower.Controlled_pattern.find
               ~direction:(Scanpower.Justify.Leakage_directed obs344)
               s344
               ~muxable:(Array.to_list (Netlist.Circuit.dffs s344))));
      (* Figure 2 building block *)
      Test.make ~name:"figure2/leakage-tables"
        (Staged.stage (fun () ->
             List.map
               (fun cell ->
                 Techlib.Leakage_table.leakage_na cell
                   ~state:(Techlib.Leakage_table.n_states cell - 1))
               Techlib.Cell.all));
      (* ablation (b) kernels *)
      Test.make ~name:"addmux/naive-s344"
        (Staged.stage (fun () ->
             Scanpower.Mux_insertion.select
               ~strategy:Scanpower.Mux_insertion.Naive s344));
      Test.make ~name:"addmux/slack-s344"
        (Staged.stage (fun () ->
             Scanpower.Mux_insertion.select
               ~strategy:Scanpower.Mux_insertion.Slack_based s344));
      Test.make ~name:"substrate/sta-s344"
        (Staged.stage (fun () -> Sta.analyze s344));
      Test.make ~name:"substrate/observability-s344"
        (Staged.stage (fun () -> Power.Observability.compute s344));
      Test.make ~name:"substrate/slack-query"
        (Staged.stage (fun () ->
             Sta.fits_without_slowdown s344_timing
               ~source:(Netlist.Circuit.dffs s344).(0)
               ~penalty:24.0));
    ]
  in
  let grouped = Test.make_grouped ~name:"scanpower" ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ x ] -> x
          | Some _ | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  let print_row (name, ns) =
    if ns > 1e6 then Format.printf "  %-38s %10.3f ms/run@." name (ns /. 1e6)
    else Format.printf "  %-38s %10.1f ns/run@." name ns
  in
  List.iter print_row rows

(* SCANPOWER_BENCH_ONLY=<name>[,<name>...] runs the named stages only
   (e.g. the CI bench steps run "kernels,serve"); unset runs the full
   sequence. *)
let only =
  match Sys.getenv_opt "SCANPOWER_BENCH_ONLY" with
  | None -> None
  | Some s -> (
    match
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun x -> x <> "")
    with
    | [] -> None
    | names -> Some names)

let stage name f =
  match only with
  | Some names when not (List.mem name names) -> ()
  | _ -> Telemetry.Span.with_ ~name:("bench." ^ name) f

let () =
  Format.printf "scanpower bench harness%s@."
    (if fast then " (fast mode: small circuits only)" else "");
  stage "figure2" figure2;
  stage "table1" table1;
  stage "ablation_direction" ablation_direction;
  stage "ablation_addmux" ablation_addmux;
  stage "ablation_reorder" ablation_reorder;
  stage "ablation_ivc" ablation_ivc;
  stage "ablation_reordering_ext" ablation_reordering_ext;
  stage "ablation_glitch" ablation_glitch;
  stage "ablation_exact_probabilities" ablation_exact_probabilities;
  stage "ablation_multi_chain" ablation_multi_chain;
  stage "ablation_atpg_engines" ablation_atpg_engines;
  (* serve before kernels, deliberately: the serve stage forks a
     daemon, the kernels stage spawns pool domains, and OCaml 5
     permanently refuses Unix.fork once a domain has ever been created
     in the process. Fork-based stages must run first. *)
  stage "serve" serve_bench;
  stage "serve_recovery" serve_recovery_bench;
  stage "kernels" kernels;
  stage "micro" micro;
  write_bench_json ();
  (match json_out with
  | None -> ()
  | Some path ->
    Telemetry.write_metrics path;
    Format.printf "@.per-stage telemetry snapshot written to %s@." path);
  Format.printf "@.done.@."
