(* Command-line front end.

   Circuits are named either by a built-in benchmark name (see
   [scanpower list]) or by a path to an ISCAS89 .bench file.

   Every pipeline command accepts the telemetry flags --log-level,
   --trace and --metrics-out; `scanpower profile` runs the whole flow
   with telemetry forced on and prints the phase tree. *)

open Cmdliner
module E = Scanpower_errors

let ( let* ) = Result.bind

(* Parse/validation/IO failures propagate as [E.Error] and are mapped
   to their documented exit codes at the bottom of this file; only an
   unknown circuit name is raised here (a usage error, exit 2). *)
let load_circuit spec =
  if List.mem spec Circuits.names then Ok (Circuits.by_name spec)
  else if Sys.file_exists spec then Ok (Netlist.Bench_parser.parse_file spec)
  else
    match Circuits.find spec with
    | Ok c -> Ok c
    | Error msg ->
      E.raise_error ~code:E.Usage ~stage:"cli"
        (msg ^ "; or pass a path to a .bench file")

let mapped spec =
  let* c = load_circuit spec in
  Ok (if Techmap.Mapper.is_mapped c then c else Techmap.Mapper.map c)

let circuit_arg =
  let doc = "Benchmark name (e.g. s344) or path to a .bench file." in
  Arg.(value & pos 0 string "s27" & info [] ~docv:"CIRCUIT" ~doc)

let seed_arg =
  let doc = "Random seed for every stochastic component." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

(* ---- telemetry flags ---- *)

type tele_opts = {
  metrics_out : string option;
  chrome_out : string option;
      (* --trace FILE with --trace-format=chrome: written at the end,
         once worker snapshots have been collected *)
}

(* Evaluates to the output paths after applying the side effects
   (enable + level + streaming trace file); commands call
   [finish_telemetry] on the result when their work is done. *)
let telemetry_term =
  let log_level =
    let doc =
      "Enable telemetry and log at $(docv) (debug, info, warn or error) on \
       stderr."
    in
    Arg.(
      value & opt (some string) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)
  in
  let trace =
    let doc =
      "Enable telemetry and write a trace to $(docv); the format is chosen \
       by $(b,--trace-format)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let trace_format =
    let doc =
      "Trace format: $(b,jsonl) (streaming JSON lines: one object per log \
       record, span start and span end, default) or $(b,chrome) (Trace \
       Event JSON written when the command finishes, loadable in \
       ui.perfetto.dev or chrome://tracing; sweep worker processes appear \
       as their own tracks)."
    in
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
      & info [ "trace-format" ] ~docv:"FORMAT" ~doc)
  in
  let metrics =
    let doc =
      "Enable telemetry and write a single-shot JSON metrics snapshot \
       (counters, gauges, histograms, span tree) to $(docv) when the command \
       finishes."
    in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let setup lvl trace trace_format metrics =
    let* () =
      match lvl with
      | None -> Ok ()
      | Some s ->
        let* l = Telemetry.level_of_string s |> Result.map_error (fun e -> `Msg e) in
        Telemetry.enable ();
        Telemetry.set_level l;
        Ok ()
    in
    let chrome_out =
      match (trace, trace_format) with
      | None, _ -> None
      | Some path, `Jsonl ->
        Telemetry.enable ();
        Telemetry.set_trace_file path;
        None
      | Some path, `Chrome ->
        Telemetry.enable ();
        Some path
    in
    if metrics <> None then Telemetry.enable ();
    Ok { metrics_out = metrics; chrome_out }
  in
  Term.(const setup $ log_level $ trace $ trace_format $ metrics)

let finish_telemetry { metrics_out; chrome_out } =
  let write what path write_fn =
    try
      write_fn path;
      Format.eprintf "telemetry %s written to %s@." what path;
      Ok ()
    with Sys_error e ->
      Error (`Msg (Printf.sprintf "cannot write %s: %s" what e))
  in
  let written =
    let* () =
      match metrics_out with
      | None -> Ok ()
      | Some path -> write "metrics" path Telemetry.write_metrics
    in
    match chrome_out with
    | None -> Ok ()
    | Some path -> write "chrome trace" path Telemetry.write_chrome
  in
  Telemetry.close_trace ();
  written

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun name ->
        let c = Circuits.by_name name in
        Format.printf "%-8s %a@." name Netlist.Circuit.pp_stats
          (Netlist.Circuit.stats c))
      Circuits.names
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in benchmark circuits.")
    Term.(const run $ const ())

(* ---- stats ---- *)

let stats_cmd =
  let run spec tele =
    let* metrics_out = tele in
    let* c = load_circuit spec in
    Format.printf "%s: %a@." (Netlist.Circuit.name c) Netlist.Circuit.pp_stats
      (Netlist.Circuit.stats c);
    let m = if Techmap.Mapper.is_mapped c then c else Techmap.Mapper.map c in
    if not (Techmap.Mapper.is_mapped c) then
      Format.printf "mapped:  %a@." Netlist.Circuit.pp_stats
        (Netlist.Circuit.stats m);
    let t = Sta.analyze m in
    Format.printf "critical path delay: %.1f ps@." (Sta.critical_delay t);
    let mux = Scanpower.Mux_insertion.select m in
    Format.printf "AddMUX: %d of %d scan cells accept a multiplexer@."
      (Scanpower.Mux_insertion.muxable_count mux)
      (Array.length (Netlist.Circuit.dffs m));
    finish_telemetry metrics_out
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Circuit statistics, critical path and AddMUX feasibility.")
    Term.(term_result (const run $ circuit_arg $ telemetry_term))

(* ---- figure2 ---- *)

let figure2_cmd =
  let run () =
    Format.printf
      "Figure 2 reproduction: NAND2 leakage per input state (45 nm, 0.9 V)@.";
    Format.printf "%a" Techlib.Leakage_table.pp_table (Techlib.Cell.Nand 2);
    Format.printf "paper: 00=78, 01=73, 10=264, 11=408 nA@.@.";
    Format.printf "full calibrated library:@.";
    List.iter
      (fun cell -> Format.printf "%a" Techlib.Leakage_table.pp_table cell)
      Techlib.Cell.all
  in
  Cmd.v
    (Cmd.info "figure2"
       ~doc:"Print the calibrated leakage tables (reproduces Figure 2).")
    Term.(const run $ const ())

(* ---- observability ---- *)

let observability_cmd =
  let run spec count =
    let* c = mapped spec in
    let obs = Power.Observability.compute c in
    let scored =
      Array.to_list (Netlist.Circuit.nodes c)
      |> List.filter (fun nd ->
             not (Netlist.Gate.equal_kind nd.Netlist.Circuit.kind Netlist.Gate.Output))
      |> List.map (fun nd ->
             ( nd.Netlist.Circuit.name,
               Power.Observability.observability_na obs nd.Netlist.Circuit.id ))
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    Format.printf "top-%d leakage-observable lines of %s:@." count spec;
    List.iter (fun (nm, v) -> Format.printf "  %-14s %+9.1f nA@." nm v) (take count scored);
    Ok ()
  in
  let count =
    Arg.(value & opt int 10 & info [ "n"; "count" ] ~doc:"Lines to print.")
  in
  Cmd.v
    (Cmd.info "observability"
       ~doc:"Rank circuit lines by leakage observability (Eq. (6)).")
    Term.(term_result (const run $ circuit_arg $ count))

(* ---- atpg ---- *)

let atpg_cmd =
  let run spec seed fault_engine out tele =
    let* metrics_out = tele in
    let* c = mapped spec in
    let config = { Atpg.Pattern_gen.default_config with seed; fault_engine } in
    let outcome = Atpg.Pattern_gen.generate ~config c in
    Format.printf "%a@." Atpg.Pattern_gen.pp_outcome outcome;
    (match out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      List.iter
        (fun v ->
          Array.iter (fun b -> output_char oc (if b then '1' else '0')) v;
          output_char oc '\n')
        outcome.Atpg.Pattern_gen.vectors;
      close_out oc;
      Format.printf "vectors written to %s (PIs then scan cells per line)@." path);
    finish_telemetry metrics_out
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the test vectors to a file.")
  in
  let fault_engine =
    Arg.(
      value
      & opt
          (enum
             [
               ("cpt", Atpg.Fault_simulation.Cpt);
               ("cone", Atpg.Fault_simulation.Cone);
               ("ppsfp", Atpg.Fault_simulation.Ppsfp);
             ])
          Atpg.Fault_simulation.Cpt
      & info [ "fault-engine" ]
          ~doc:
            "Fault-simulation engine: $(b,cpt) (critical path tracing, \
             default), $(b,ppsfp) (512-pattern parallel single-fault \
             propagation with fault dropping) or $(b,cone) (full-cone \
             reference). All three are bit-identical; cone is the slow \
             golden reference.")
  in
  Cmd.v
    (Cmd.info "atpg" ~doc:"Generate a compacted stuck-at test set (PODEM).")
    Term.(
      term_result
        (const run $ circuit_arg $ seed_arg $ fault_engine $ out $ telemetry_term))

(* ---- power ---- *)

let power_cmd =
  let run spec seed tele =
    let* metrics_out = tele in
    let* c = load_circuit spec in
    let cmp = Scanpower.Flow.run_benchmark ~seed c in
    Format.printf
      "%s: %d vectors, %d/%d cells muxed, %d gates blocked, %d reordered@."
      cmp.Scanpower.Flow.name cmp.Scanpower.Flow.n_vectors
      cmp.Scanpower.Flow.n_muxable cmp.Scanpower.Flow.n_dffs
      cmp.Scanpower.Flow.blocked_gates cmp.Scanpower.Flow.reordered_gates;
    Scanpower.Report.pp_vs_paper Format.std_formatter
      (Scanpower.Report.of_comparison cmp);
    let enh = cmp.Scanpower.Flow.enhanced_scan in
    Format.printf
      "enhanced-scan reference: dyn/f %.3e uW/Hz, static %.2f uW (full        isolation, but a hold latch per cell and a functional speed penalty)@."
      enh.Scanpower.Flow.dynamic_per_hz_uw enh.Scanpower.Flow.static_uw;
    finish_telemetry metrics_out
  in
  Cmd.v
    (Cmd.info "power"
       ~doc:
         "Full flow on one circuit: scan power of traditional, \
          input-control and the proposed structure.")
    Term.(term_result (const run $ circuit_arg $ seed_arg $ telemetry_term))

(* ---- profile ---- *)

let profile_cmd =
  let run spec seed top tele =
    let* metrics_out = tele in
    let* c = load_circuit spec in
    (* telemetry is the whole point of this command *)
    Telemetry.enable ();
    Telemetry.reset ();
    let t0 = Unix.gettimeofday () in
    let cmp = Scanpower.Flow.run_benchmark ~seed c in
    let elapsed = Unix.gettimeofday () -. t0 in
    Format.printf "%s: %d vectors, %d dffs, flow completed in %.2f s@.@."
      cmp.Scanpower.Flow.name cmp.Scanpower.Flow.n_vectors
      cmp.Scanpower.Flow.n_dffs elapsed;
    (match Telemetry.Span.find "flow.run_benchmark" with
    | Some root ->
      Telemetry.Span.pp_tree Format.std_formatter root;
      Format.printf "@.";
      Telemetry.Span.pp_profile ?top Format.std_formatter root
    | None -> Format.printf "(no span tree recorded)@.");
    Format.printf "@.counters:@.";
    List.iter
      (fun (k, v) -> Format.printf "  %-42s %10d@." k v)
      (Telemetry.Counter.all ());
    (match Telemetry.Gauge.all () with
    | [] -> ()
    | gauges ->
      Format.printf "@.gauges:@.";
      List.iter (fun (k, v) -> Format.printf "  %-42s %10.1f@." k v) gauges);
    finish_telemetry metrics_out
  in
  let top =
    Arg.(
      value
      & opt (some int) None
      & info [ "top" ] ~docv:"N"
          ~doc:
            "Limit the aggregated per-stage table to its $(docv) most \
             expensive rows (the table is sorted by time, descending).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the full flow with telemetry on and print the span tree (wall \
          time and per-phase percentage), an aggregated per-stage table with \
          GC/allocation columns, and every counter; use --metrics-out to \
          capture the same data as JSON.")
    Term.(term_result (const run $ circuit_arg $ seed_arg $ top $ telemetry_term))

(* ---- paths ---- *)

let paths_cmd =
  let run spec count =
    let* c = mapped spec in
    let t = Sta.analyze c in
    Sta.Path_report.pp_report ~count c Format.std_formatter t;
    Ok ()
  in
  let count =
    Arg.(value & opt int 5 & info [ "n"; "count" ] ~doc:"Paths to report.")
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Timing report: top critical paths and slack histogram.")
    Term.(term_result (const run $ circuit_arg $ count))

(* ---- export ---- *)

let export_cmd =
  let run spec fmt out =
    let* c = load_circuit spec in
    let text =
      match fmt with
      | "dot" ->
        let m = if Techmap.Mapper.is_mapped c then c else Techmap.Mapper.map c in
        let t = Sta.analyze m in
        Netlist.Dot_writer.to_string ~highlight:(Sta.critical_path t) m
      | "verilog" -> Netlist.Verilog_writer.to_string c
      | "bench" -> Netlist.Bench_writer.to_string c
      | other ->
        (* unreachable through the enum converter, but keeps the error
           in-band if another caller ever bypasses it *)
        E.errorf ~code:E.Usage ~stage:"cli.export" "unknown format %S" other
    in
    (match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Format.printf "written to %s@." path);
    Ok ()
  in
  let fmt =
    Arg.(
      value
      & opt (enum [ ("dot", "dot"); ("verilog", "verilog"); ("bench", "bench") ]) "dot"
      & info [ "f"; "format" ]
          ~doc:"Output format: dot (critical path highlighted), verilog, bench.")
  in
  let out =
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export the netlist (Graphviz / Verilog / .bench).")
    Term.(term_result (const run $ circuit_arg $ fmt $ out))

(* ---- peak ---- *)

let peak_cmd =
  let run spec seed window engine tele =
    let* metrics_out = tele in
    let* c = mapped spec in
    let chain = Scan.Scan_chain.natural c in
    let vectors = Atpg.Pattern_gen.random_vectors ~seed ~count:50 c in
    List.iter
      (fun (tag, policy) ->
        let m = Scan.Scan_sim.measure ~engine c chain policy ~vectors in
        let p =
          Power.Peak.of_toggle_series ~window m.Scan.Scan_sim.per_cycle_toggles
        in
        Format.printf "%-12s %a | peak static %.2f uW@." tag Power.Peak.pp p
          m.Scan.Scan_sim.peak_static_uw)
      [
        ("traditional", Scan.Scan_sim.traditional);
        ("enhanced", Scan.Scan_sim.enhanced_scan);
      ];
    finish_telemetry metrics_out
  in
  let window =
    Arg.(value & opt int 16 & info [ "window" ] ~doc:"Thermal window, cycles.")
  in
  let engine =
    Arg.(
      value
      & opt
          (enum
             [
               ("packed", Scan.Scan_sim.Packed); ("scalar", Scan.Scan_sim.Scalar);
             ])
          Scan.Scan_sim.Packed
      & info [ "engine" ]
          ~doc:
            "Scan simulation kernel: packed (64 cycles per word, default) or \
             scalar (event-driven reference).")
  in
  Cmd.v
    (Cmd.info "peak"
       ~doc:"Per-cycle activity profile and peak power during scan.")
    Term.(
      term_result
        (const run $ circuit_arg $ seed_arg $ window $ engine $ telemetry_term))

(* ---- table1 ---- *)

let table1_cmd =
  let run names seed tele =
    let* metrics_out = tele in
    let names = if names = [] then [ "s344"; "s382"; "s444"; "s510" ] else names in
    let* rows =
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          let* c = load_circuit name in
          let cmp = Scanpower.Flow.run_benchmark ~seed c in
          Ok (Scanpower.Report.of_comparison cmp :: acc))
        (Ok []) names
    in
    let rows = List.rev rows in
    Format.printf "measured:@.";
    Scanpower.Report.pp_table Format.std_formatter rows;
    Format.printf "@.paper (Table I):@.";
    Scanpower.Report.pp_table Format.std_formatter
      (List.filter_map Scanpower.Report.paper_row names);
    finish_telemetry metrics_out
  in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"CIRCUIT"
          ~doc:"Circuits to include (default: the four smallest).")
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce rows of the paper's Table I.")
    Term.(term_result (const run $ names $ seed_arg $ telemetry_term))

(* ---- validate ---- *)

let validate_cmd =
  let run specs =
    let specs = if specs = [] then Circuits.names else specs in
    let total_errors = ref 0 in
    List.iter
      (fun spec ->
        let text, file =
          if List.mem spec Circuits.names then
            (Netlist.Bench_writer.to_string (Circuits.by_name spec), None)
          else if Sys.file_exists spec then (
            ( (try In_channel.with_open_bin spec In_channel.input_all
               with Sys_error msg ->
                 E.raise_error ~code:E.Io ~stage:"cli.validate" msg),
              Some spec ))
          else
            E.raise_error ~code:E.Usage ~stage:"cli.validate"
              (Printf.sprintf
                 "unknown circuit %S: not a built-in benchmark or a file" spec)
        in
        match Netlist.Bench_parser.lint ?file text with
        | [] -> Format.printf "%-20s ok@." spec
        | diags ->
          let errs = Netlist.Validate.errors diags in
          total_errors := !total_errors + List.length errs;
          List.iter
            (fun d ->
              Format.printf "%-20s %s@." spec (Netlist.Validate.to_string d))
            diags)
      specs;
    if !total_errors > 0 then
      E.errorf ~code:E.Validation ~stage:"cli.validate"
        "%d lint error(s) across %d circuit(s)" !total_errors
        (List.length specs)
    else Ok ()
  in
  let specs =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"CIRCUIT"
          ~doc:
            "Circuits to lint: built-in benchmark names or .bench files \
             (default: every built-in benchmark).")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Lint a netlist: syntax, undriven/multiply-driven nets, \
          combinational loops, dangling fanout, arity. Prints every \
          diagnostic (not just the first) and exits 3 if any are errors.")
    Term.(term_result (const run $ specs))

(* ---- parallel execution mode (sweep + serve) ---- *)

let parallel_arg =
  let mode_conv =
    let parse s =
      match Runner.strategy_of_string s with
      | Some st -> Ok st
      | None ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid parallel mode %S (expected domains, processes or auto)"
               s))
    in
    let print fmt st =
      Format.pp_print_string fmt (Runner.strategy_to_string st)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt mode_conv Runner.Auto
    & info [ "parallel" ] ~docv:"MODE"
        ~env:(Cmd.Env.info "SCANPOWER_PARALLEL")
        ~doc:
          "How parallel work executes: $(b,processes) forks one killable \
           worker per job (crash/timeout isolation, per-worker telemetry); \
           $(b,domains) fans jobs over in-process worker domains (no fork \
           cost, shared warm caches, but no per-job timeout and no \
           per-worker telemetry capture); $(b,auto) picks domains only when \
           no process-only capability (timeout, telemetry capture, signal \
           handling, fault injection) is in play. Also honoured from the \
           environment.")

(* ---- sweep ---- *)

let sweep_cmd =
  let run names jobs parallel seeds timeout retries backoff deadline no_cache
      cache_dir journal resume out csv progress tele =
    let* metrics_out = tele in
    let names = if names = [] then Circuits.names else names in
    let* circuits =
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          let* c = load_circuit name in
          Ok (c :: acc))
        (Ok []) names
    in
    let circuits = List.rev circuits in
    let points = Scanpower.Sweep.points ~seeds circuits in
    let cache =
      if no_cache then None else Some (Runner.Cache.create ?dir:cache_dir ())
    in
    let total = List.length points in
    Format.printf "sweep: %d point%s over %d circuit%s, %d worker%s, cache %s@."
      total
      (if total = 1 then "" else "s")
      (List.length circuits)
      (if List.length circuits = 1 then "" else "s")
      jobs
      (if jobs = 1 then "" else "s")
      (match cache with
      | None -> "off"
      | Some c -> Runner.Cache.dir c);
    let finished = ref 0 in
    let on_event = function
      | Runner.Started _ -> ()
      | Runner.Attempt_failed { job; attempt; failure; will_retry } ->
        Format.printf "        %-20s attempt %d %s%s@." job.Runner.id attempt
          (Runner.failure_to_string failure)
          (if will_retry then "; retrying" else "")
      | Runner.Finished { job; outcome } ->
        incr finished;
        (match outcome with
        | Runner.Done { from_cache; duration_s; attempts; _ } ->
          Format.printf "[%2d/%d] %-20s %s@." !finished total job.Runner.id
            (if from_cache then "cached"
             else
               Printf.sprintf "done in %.2fs%s" duration_s
                 (if attempts > 1 then
                    Printf.sprintf " (attempt %d)" attempts
                  else ""))
        | Runner.Failed { attempts; last; quarantined } ->
          Format.printf "[%2d/%d] %-20s %s after %d attempt%s: %s@."
            !finished total job.Runner.id
            (if quarantined then "QUARANTINED" else "FAILED")
            attempts
            (if attempts = 1 then "" else "s")
            (Runner.failure_to_string last));
        Format.pp_print_flush Format.std_formatter ()
    in
    (* the subscription lives exactly as long as the run: a later
       command in the same process must not inherit it *)
    let stop_progress =
      match progress with
      | None -> fun () -> ()
      | Some path ->
        (* the ETA comes from the job-latency histogram, which only
           records while telemetry is on *)
        Telemetry.enable ();
        let oc = if path = "-" then stderr else open_out path in
        let sub = Telemetry.Events.subscribe (Telemetry.Events.line_writer oc) in
        fun () ->
          Telemetry.Events.unsubscribe sub;
          flush oc;
          if path <> "-" then close_out oc
    in
    let t0 = Unix.gettimeofday () in
    let report =
      Fun.protect ~finally:stop_progress (fun () ->
          Scanpower.Sweep.run ~jobs ~parallel ~timeout_s:timeout ~retries
            ~backoff_s:backoff ~deadline_s:deadline ~handle_signals:true ?cache
            ?journal_path:journal ~resume ~on_event points)
    in
    let wall = Unix.gettimeofday () -. t0 in
    Format.printf "@.";
    Scanpower.Report.pp_table Format.std_formatter
      (Scanpower.Sweep.rows report);
    let s = report.Scanpower.Sweep.stats in
    Format.printf
      "@.pool: %d scheduled, %d computed, %d cache hit%s, %d journal hit%s, \
       %d crash%s, %d timeout%s, %d retr%s, %d quarantined, %d failed%s — \
       %.1fs wall@."
      s.Runner.scheduled s.Runner.computed s.Runner.cache_hits
      (if s.Runner.cache_hits = 1 then "" else "s")
      s.Runner.journal_hits
      (if s.Runner.journal_hits = 1 then "" else "s")
      s.Runner.crashes
      (if s.Runner.crashes = 1 then "" else "es")
      s.Runner.timeouts
      (if s.Runner.timeouts = 1 then "" else "s")
      s.Runner.retries
      (if s.Runner.retries = 1 then "y" else "ies")
      s.Runner.quarantined s.Runner.failed
      (if s.Runner.interrupted then " (interrupted)" else "")
      wall;
    (* reports are written even for a partial batch — that is the point
       of a partial batch — before the Partial error sets exit code 5 *)
    (match out with
    | None -> ()
    | Some path ->
      Scanpower.Sweep.write_json path report;
      Format.printf "JSON report written to %s@." path);
    (match csv with
    | None -> ()
    | Some path ->
      Scanpower.Sweep.write_csv path report;
      Format.printf "CSV report written to %s@." path);
    let* finished = finish_telemetry metrics_out in
    if Scanpower.Sweep.all_ok report && not s.Runner.interrupted then
      Ok finished
    else
      E.errorf ~code:E.Partial ~stage:"sweep" "%d of %d job(s) failed%s"
        s.Runner.failed s.Runner.scheduled
        (if s.Runner.interrupted then " (batch interrupted)" else "")
  in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"CIRCUIT"
          ~doc:
            "Circuits to sweep: built-in benchmark names or .bench files \
             (default: every built-in benchmark).")
  in
  let jobs =
    Arg.(
      value & opt int 4
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Parallel workers. 1 runs everything sequentially in-process; \
             larger values fan jobs out over forked workers or domains \
             (see $(b,--parallel)).")
  in
  let seeds =
    Arg.(
      value
      & opt (list int) [ 42 ]
      & info [ "seeds" ] ~docv:"S1,S2,..."
          ~doc:"Flow seeds: every circuit is evaluated at every seed.")
  in
  let timeout =
    Arg.(
      value & opt float 0.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Kill and retry a job running longer than this (0 = no timeout; \
             only enforced with --jobs > 1).")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:"Extra attempts after a crash, timeout or job error.")
  in
  let backoff =
    Arg.(
      value & opt float 0.0
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:
            "Base delay before a retry, doubled per attempt with \
             deterministic jitter (0 = retry immediately).")
  in
  let deadline =
    Arg.(
      value & opt float 0.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Whole-batch wall-clock budget: jobs still unfinished when it \
             expires are marked failed and the sweep returns a partial \
             report (0 = no deadline).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Recompute everything; touch no cache.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Checkpoint journal: every finished job is appended (and \
             flushed) as it completes, so an interrupted sweep can be \
             finished with $(b,--resume).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the $(b,--journal) left by an interrupted run of the \
             same sweep and recompute only the unfinished jobs.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Result cache location (default: \\$SCANPOWER_CACHE_DIR or \
             _scanpower_cache).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the aggregate JSON report here.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the per-job CSV report here.")
  in
  let progress =
    Arg.(
      value
      & opt (some string) None
      & info [ "progress" ] ~docv:"FILE"
          ~doc:
            "Stream line-delimited JSON progress events (job \
             started/finished/retried, cache hits, completed/total counts \
             and a latency-histogram ETA) to $(docv); $(b,-) streams to \
             stderr.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run the full flow over many circuits and seeds in parallel, with a \
          content-addressed result cache and an optional checkpoint journal: \
          a re-run recomputes only changed points, a crashed worker is \
          retried without failing the sweep, and $(b,--resume) finishes an \
          interrupted batch without redoing completed jobs.")
    Term.(
      term_result
        (const run $ names $ jobs $ parallel_arg $ seeds $ timeout $ retries
       $ backoff $ deadline $ no_cache $ cache_dir $ journal $ resume $ out
       $ csv $ progress $ telemetry_term))

(* ---- bench-diff ---- *)

let bench_diff_cmd =
  let module D = Scanpower.Bench_diff in
  let run old_path new_path time_threshold rate_threshold json_out =
    let baseline = D.load old_path in
    let current = D.load new_path in
    let r = D.diff ~time_threshold ~rate_threshold baseline current in
    D.pp_report Format.std_formatter r;
    (match json_out with
    | None -> ()
    | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          output_string oc (Telemetry.Json.to_string (D.report_to_json r));
          output_char oc '\n');
      Format.printf "JSON diff written to %s@." path);
    if D.has_regression r then
      E.errorf ~code:E.Regression ~stage:"bench-diff"
        "%d regression(s) against %s"
        (List.length r.D.regressions + List.length r.D.only_old_metrics)
        old_path
    else Ok ()
  in
  let old_path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline BENCH_kernels.json.")
  in
  let new_path =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Candidate BENCH_kernels.json to gate.")
  in
  let time_threshold =
    Arg.(
      value & opt float 0.5
      & info [ "time-threshold" ] ~docv:"FRACTION"
          ~doc:
            "Allowed fractional slowdown for $(b,_s) time metrics before \
             they count as a regression (default 0.5 = +50%). CI across \
             machine generations passes a wider value.")
  in
  let rate_threshold =
    Arg.(
      value & opt float 0.5
      & info [ "rate-threshold" ] ~docv:"FRACTION"
          ~doc:
            "Allowed fractional drop for $(b,_speedup)/$(b,_events_s) rate \
             metrics (default 0.5 = -50%).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the diff as JSON here.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two BENCH_kernels.json files as a regression gate: counts \
          must match exactly, times and rates get per-class noise \
          thresholds. Exits 6 when anything regressed (or a baseline metric \
          disappeared), 0 when clean.")
    Term.(
      term_result
        (const run $ old_path $ new_path $ time_threshold $ rate_threshold
       $ json_out))

(* ---- serve ---- *)

let socket_arg =
  let doc = "Unix-domain socket path for the daemon protocol." in
  Arg.(
    value
    & opt string (Scanpower_server.Protocol.default_socket ())
    & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let module Daemon = Scanpower_server.Daemon in
  let module Supervisor = Scanpower_server.Supervisor in
  let run socket registry_capacity max_queue max_request_bytes
      default_deadline parallel quiet snapshot snapshot_every max_heap_mw
      supervise restart_budget restart_refill tele =
    let* metrics_out = tele in
    let config =
      {
        Daemon.socket;
        registry_capacity;
        max_queue;
        max_request_bytes;
        default_deadline_s = default_deadline;
        parallel;
        log = (if quiet then None else Some stdout);
        snapshot_path = snapshot;
        snapshot_every_s = snapshot_every;
        max_heap_mw;
        generation = 0;
      }
    in
    if supervise then
      Supervisor.run
        ~config:
          {
            Supervisor.daemon = config;
            restart_budget;
            restart_refill_s = restart_refill;
          }
        ()
    else
      ignore (Daemon.run ~config () : Telemetry.Json.t);
    finish_telemetry metrics_out
  in
  let registry_capacity =
    Arg.(
      value & opt int 32
      & info [ "registry-capacity" ] ~docv:"N"
          ~doc:
            "Warm prepared circuits (compiled netlist + ATPG machine) kept \
             resident, LRU-evicted beyond $(docv).")
  in
  let max_queue =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission bound: requests beyond $(docv) queued are refused \
             with a structured $(b,overloaded) error (exit code 7 at the \
             client).")
  in
  let max_request_bytes =
    Arg.(
      value
      & opt int Scanpower_server.Protocol.max_line_default
      & info
          [ "max-request-bytes"; "max-line" ]
          ~docv:"BYTES"
          ~doc:
            "Cap on one request frame (inline netlists included); past it \
             the request is answered with a $(b,validation) error and the \
             connection is dropped.")
  in
  let default_deadline =
    Arg.(
      value & opt float 0.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Default per-request deadline applied to requests that carry \
             none; 0 disables.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ]
          ~doc:"Suppress the operational NDJSON log lines on stdout.")
  in
  let snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"PATH"
          ~doc:
            "Warm-registry snapshot file: restored at startup (a corrupt or \
             missing file is a cold start) and written atomically on the \
             SIGTERM drain and every $(b,--snapshot-every) seconds, so a \
             restarted daemon comes back warm.")
  in
  let snapshot_every =
    Arg.(
      value & opt float 0.0
      & info [ "snapshot-every" ] ~docv:"SECONDS"
          ~doc:"Periodic snapshot interval; 0 snapshots only on drain.")
  in
  let max_heap_mw =
    Arg.(
      value & opt float 0.0
      & info [ "max-heap-mw" ] ~docv:"MEGAWORDS"
          ~doc:
            "Heap budget for the memory-pressure watchdog, in millions of \
             OCaml words (8 MB per megaword on 64-bit). Over budget the \
             daemon first shrinks the warm registry and compacts; if \
             pressure persists it sheds flow/atpg/sweep-point requests \
             with a retryable $(b,degraded) error (exit code 9) while \
             health/stats/validate keep being served. 0 disables.")
  in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Run the daemon as a monitored child: a crash restarts it (re-\
             binding the socket, restoring the snapshot) under a token-\
             bucket restart budget; budget exhausted exits 4 instead of \
             restart-storming.")
  in
  let restart_budget =
    Arg.(
      value & opt int 5
      & info [ "restart-budget" ] ~docv:"N"
          ~doc:"Supervisor token-bucket capacity: crashes absorbed before \
                giving up.")
  in
  let restart_refill =
    Arg.(
      value & opt float 30.0
      & info [ "restart-refill" ] ~docv:"SECONDS"
          ~doc:"Uptime that earns one restart token back; 0 disables refill.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scan-power daemon: line-delimited JSON requests (flow, \
          atpg, validate, sweep-point, health, stats) over a Unix-domain \
          socket, served from a warm machine registry with LRU eviction, \
          bounded-queue admission control and per-request deadlines. \
          $(b,--supervise) adds crash-only self-healing: a monitored child \
          restarted under a token-bucket budget, coming back warm from the \
          $(b,--snapshot) file. SIGTERM drains in-flight work, writes the \
          final snapshot, emits a final stats line and unlinks the socket.")
    Term.(
      term_result
        (const run $ socket_arg $ registry_capacity $ max_queue
       $ max_request_bytes $ default_deadline $ parallel_arg $ quiet
       $ snapshot $ snapshot_every $ max_heap_mw $ supervise
       $ restart_budget $ restart_refill $ telemetry_term))

(* ---- client ---- *)

let client_cmd =
  let module P = Scanpower_server.Protocol in
  let module C = Scanpower_server.Client in
  let run socket kind_s spec seed engine deadline stream isolation repeat
      connect_timeout retry_for hedge tele =
    let* metrics_out = tele in
    let* kind =
      match P.kind_of_string kind_s with
      | Some k -> Ok k
      | None ->
        E.raise_error ~code:E.Usage ~stage:"client" ~token:kind_s
          "unknown request kind (expected flow, atpg, validate, \
           sweep-point, health or stats)"
    in
    (* a .bench path is shipped inline so the daemon never needs our
       filesystem; a known name is resolved server-side *)
    let circuit, bench, name =
      match spec with
      | None -> (None, None, None)
      | Some spec ->
        if List.mem spec Circuits.names then (Some spec, None, None)
        else if Sys.file_exists spec then
          let text = In_channel.with_open_bin spec In_channel.input_all in
          let base = Filename.remove_extension (Filename.basename spec) in
          (None, Some text, Some base)
        else (Some spec, None, None)
    in
    if P.needs_circuit kind && circuit = None && bench = None then
      E.raise_error ~code:E.Usage ~stage:"client"
        (P.kind_to_string kind ^ " needs a circuit name or a .bench path");
    (* the resilient session reconnects and replays through daemon
       restarts; --connect-timeout is folded into its retry window *)
    let session =
      C.session
        ~retry_for_s:(Float.max retry_for connect_timeout)
        ?hedge_after_s:hedge socket
    in
    Fun.protect
      ~finally:(fun () -> C.close_session session)
      (fun () ->
        let last_error = ref None in
        for i = 1 to repeat do
          let req =
            P.make ?circuit ?bench ?name:(Option.map Fun.id name) ~seed
              ?engine ?deadline_s:deadline ~stream
              ~isolation:
                (if isolation = "fork" then P.Fork_isolation
                 else P.Inline_isolation)
              ~id:(Printf.sprintf "cli-%d-%d" (Unix.getpid ()) i)
              kind
          in
          match
            C.call
              ~on_event:(Telemetry.Events.write_json_line stdout)
              session req
          with
          | Ok value -> Telemetry.Events.write_json_line stdout value
          | Error err -> last_error := Some err
        done;
        match !last_error with
        | None -> finish_telemetry metrics_out
        | Some err -> raise (E.Error err))
  in
  let kind_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KIND"
          ~doc:
            "Request kind: flow, atpg, validate, sweep-point, health or \
             stats.")
  in
  let spec_arg =
    let doc = "Benchmark name (resolved by the daemon) or .bench path \
               (shipped inline)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"CIRCUIT" ~doc)
  in
  let engine =
    Arg.(
      value
      & opt (some (enum [ ("packed", "packed"); ("scalar", "scalar") ])) None
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Scan-simulation kernel for flow requests.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-request deadline; expiry yields the structured \
             $(b,deadline) error (exit code 8).")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Print the daemon's progress events for this request as JSON \
             lines as they arrive.")
  in
  let isolation =
    Arg.(
      value
      & opt (enum [ ("inline", "inline"); ("fork", "fork") ]) "inline"
      & info [ "isolation" ] ~docv:"MODE"
          ~doc:
            "$(b,inline) runs in the daemon (fastest, warms the shared \
             registry); $(b,fork) runs in a crash-isolated worker with the \
             deadline enforced as a hard timeout.")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Send the request $(docv) times sequentially (warm-registry \
             measurements); the exit code reflects the last failure, if \
             any.")
  in
  let connect_timeout =
    Arg.(
      value & opt float 10.0
      & info [ "connect-timeout" ] ~docv:"SECONDS"
          ~doc:"Keep retrying the connect for this long (daemon startup).")
  in
  let retry_for =
    Arg.(
      value & opt float 10.0
      & info [ "retry-for" ] ~docv:"SECONDS"
          ~doc:
            "Total resilience window per request: reconnect + replay on a \
             torn or reset connection (a daemon restarting under \
             supervision), and backoff + re-send on retryable \
             $(b,overloaded)/$(b,degraded) errors. Idempotency keys \
             guarantee a replay never double-executes.")
  in
  let hedge =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge" ] ~docv:"SECONDS"
          ~doc:
            "Hedged sends for read-only kinds (health, stats, validate): a \
             request unanswered after $(docv) is fired again on a second \
             connection and the first answer wins.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running $(b,scanpower serve) daemon and \
          print the response value as one JSON line. Transport failures \
          are replayed under $(b,--retry-for) with idempotent dedup \
          server-side. Structured daemon errors map to the documented \
          exit codes (7 overloaded, 8 deadline, 9 degraded, ...).")
    Term.(
      term_result
        (const run $ socket_arg $ kind_arg $ spec_arg $ seed_arg $ engine
       $ deadline $ stream $ isolation $ repeat $ connect_timeout
       $ retry_for $ hedge $ telemetry_term))

let main_cmd =
  let doc =
    "Simultaneous reduction of dynamic and static power in scan structures \
     (DATE 2005 reproduction)."
  in
  Cmd.group
    (Cmd.info "scanpower" ~version:"1.0.0" ~doc)
    [ list_cmd; stats_cmd; figure2_cmd; observability_cmd; atpg_cmd; power_cmd;
      profile_cmd; paths_cmd; export_cmd; peak_cmd; table1_cmd; validate_cmd;
      sweep_cmd; bench_diff_cmd; serve_cmd; client_cmd ]

(* Exit codes (also documented in the README): 0 success, 2 usage,
   3 parse/validation, 4 io/runtime, 5 partial batch, 6 bench-diff
   regression, 7 daemon overloaded, 8 request deadline expired,
   9 daemon degraded under memory pressure; cmdliner itself keeps 124
   for command-line syntax it rejects before we run. *)
let () =
  Runner.Fault_inject.activate_from_env ();
  match Cmd.eval ~catch:false main_cmd with
  | code -> exit code
  | exception E.Error err ->
    prerr_endline ("scanpower: " ^ E.to_string err);
    exit (E.exit_code err.E.code)
  | exception e ->
    let err = E.of_exn ~stage:"cli" e in
    prerr_endline ("scanpower: " ^ E.to_string err);
    exit (E.exit_code err.E.code)
