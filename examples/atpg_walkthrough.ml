(* ATPG substrate walkthrough: fault universe, PODEM on a single
   fault, fault simulation and compaction — the machinery that stands
   in for the paper's ATOM test sets.

     dune exec examples/atpg_walkthrough.exe -- [circuit]
*)

open Netlist

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s27" in
  let circuit = Techmap.Mapper.map (Circuits.by_name name) in
  let all = Atpg.Fault.all_faults circuit in
  let collapsed = Atpg.Fault.collapsed_faults circuit in
  Format.printf "== %s: %d faults, %d after equivalence collapsing@." name
    (List.length all) (List.length collapsed);

  (* run PODEM on the first few faults and show the cubes *)
  Format.printf "@.PODEM cubes (x = don't care, sources = PIs then scan cells):@.";
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  List.iter
    (fun fault ->
      let cube =
        match Atpg.Podem.generate circuit fault with
        | Atpg.Podem.Test cube ->
          String.init (Array.length cube) (fun i -> Logic.to_char cube.(i))
        | Atpg.Podem.Untestable -> "(untestable)"
        | Atpg.Podem.Aborted -> "(aborted)"
      in
      Format.printf "  %-16s %s@." (Atpg.Fault.to_string circuit fault) cube)
    (take 8 collapsed);

  (* full generation flow *)
  let outcome = Atpg.Pattern_gen.generate circuit in
  Format.printf "@.full flow: %a@." Atpg.Pattern_gen.pp_outcome outcome;

  (* show what compaction is worth *)
  let no_compact =
    Atpg.Pattern_gen.generate
      ~config:
        { Atpg.Pattern_gen.default_config with merge = false; reverse_compact = false }
      circuit
  in
  Format.printf "without compaction: %d vectors; with: %d vectors@."
    (List.length no_compact.Atpg.Pattern_gen.vectors)
    (List.length outcome.Atpg.Pattern_gen.vectors);

  (* verify the announced coverage with the independent fault simulator *)
  let cov =
    Atpg.Fault_simulation.coverage circuit ~faults:collapsed
      ~vectors:outcome.Atpg.Pattern_gen.vectors
  in
  Format.printf "independent fault-simulation coverage: %.2f%%@." (100.0 *. cov)
