(* Formal back-ends: BDD equivalence checking of every netlist
   transformation in the flow, exact signal probabilities vs the
   analytic propagation, and the glitch factor of the zero-delay power
   model.

     dune exec examples/formal_check.exe -- [circuit]
*)

open Netlist

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s27" in
  let original = Circuits.by_name name in
  let circuit = Techmap.Mapper.map original in

  Format.printf "== formal equivalence checks on %s@." name;
  Format.printf "technology mapping preserves the functions: %b@."
    (Bdd.Circuit_bdd.equivalent original circuit);

  (* the full proposed transformation chain: map + input reorder *)
  let mux = Scanpower.Mux_insertion.select circuit in
  let cp =
    Scanpower.Controlled_pattern.find
      ~direction:
        (Scanpower.Justify.Leakage_directed (Power.Observability.compute circuit))
      circuit ~muxable:mux.Scanpower.Mux_insertion.muxable
  in
  let filled =
    Scanpower.Ivc.fill ~seed:7 circuit ~values:cp.Scanpower.Controlled_pattern.values
      ~controlled:cp.Scanpower.Controlled_pattern.controlled
  in
  let reordered = Circuit.copy circuit in
  let ro =
    Scanpower.Input_reorder.optimize reordered ~values:filled.Scanpower.Ivc.values
  in
  Format.printf
    "gate input reordering (%d gates permuted) preserves the functions: %b@."
    ro.Scanpower.Input_reorder.gates_reordered
    (Bdd.Circuit_bdd.equivalent circuit reordered);

  (* exact vs analytic probabilities *)
  Format.printf "@.== independence assumption vs exact BDD probabilities@.";
  let sym = Bdd.Circuit_bdd.build circuit in
  let exact = Bdd.Circuit_bdd.probabilities sym () in
  let approx = Power.Observability.compute circuit in
  let worst = ref (0.0, "") in
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then begin
        let err =
          Float.abs
            (exact.(nd.Circuit.id)
            -. Power.Observability.probability approx nd.Circuit.id)
        in
        if err > fst !worst then worst := (err, nd.Circuit.name)
      end)
    (Circuit.nodes circuit);
  let err, where = !worst in
  Format.printf "worst one-probability error: %.4f (at %s)@." err where;
  Format.printf "exact expected leakage under random inputs: %.3f uW@."
    (Bdd.Circuit_bdd.exact_expected_leakage_uw sym ());

  (* glitch factor *)
  Format.printf "@.== zero-delay vs transport-delay activity@.";
  let timing = Sta.analyze circuit in
  let gsim = Sta.Glitch_sim.create timing in
  let esim = Sim.Event_sim.create circuit in
  Sta.Glitch_sim.init gsim (fun _ -> false);
  Sim.Event_sim.init esim (fun _ -> false);
  let rng = Util.Rng.create 2 in
  let current = Array.make (Circuit.node_count circuit) false in
  for _ = 1 to 300 do
    let changes = ref [] in
    Array.iter
      (fun id ->
        if Util.Rng.bool rng then begin
          current.(id) <- not current.(id);
          changes := (id, current.(id)) :: !changes
        end)
      (Circuit.sources circuit);
    ignore (Sta.Glitch_sim.apply gsim !changes);
    ignore (Sim.Event_sim.set_sources esim !changes)
  done;
  let glitchy = Sta.Glitch_sim.total_transitions gsim in
  let settled = Sim.Event_sim.total_toggles esim in
  Format.printf
    "300 random input changes: %d settled transitions, %d with glitches (factor %.2fx)@."
    settled glitchy
    (float_of_int glitchy /. float_of_int (max 1 settled))
