(* Leakage model exploration: dump the calibrated cell tables
   (including the paper's Figure 2 NAND2 row), show the stack effect
   from the transistor-level solver, and rank a benchmark's lines by
   leakage observability.

     dune exec examples/leakage_explorer.exe -- [circuit]
*)

open Netlist

let dump_tables () =
  Format.printf "== Calibrated 45 nm leakage tables (nA per input state)@.";
  List.iter
    (fun cell -> Format.printf "%a" Techlib.Leakage_table.pp_table cell)
    Techlib.Cell.all;
  Format.printf
    "NAND2 reproduces the paper's Figure 2: 00=78, 01=73, 10=264, 11=408.@.@."

let dump_stack_effect () =
  Format.printf "== Subthreshold stack effect (solver of Eq. (2)/(3))@.";
  let mk on = { Techlib.Transistor.dev = Techlib.Transistor.default_nmos; gate_on = on } in
  List.iter
    (fun n ->
      let stack = List.init n (fun _ -> mk false) in
      let i = Techlib.Transistor.stack_current stack ~v_rail:0.9 in
      Format.printf "  %d series off-transistors: %.2f nA@." n (i *. 1e9))
    [ 1; 2; 3; 4 ];
  Format.printf "@."

let dump_observability name =
  let circuit = Techmap.Mapper.map (Circuits.by_name name) in
  let obs = Power.Observability.compute circuit in
  Format.printf "== Leakage observability on %s (Eq. (6), extended to all lines)@." name;
  let scored =
    Array.to_list (Circuit.nodes circuit)
    |> List.filter (fun nd -> not (Gate.equal_kind nd.Circuit.kind Gate.Output))
    |> List.map (fun nd ->
           (nd.Circuit.name, Power.Observability.observability_na obs nd.Circuit.id))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let show (nm, v) = Format.printf "  %-12s %+9.1f nA@." nm v in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Format.printf "most leakage-observable lines (drive these to 0):@.";
  List.iter show (take 5 scored);
  Format.printf "least observable lines (cheap to drive to 1):@.";
  List.iter show (take 5 (List.rev scored));
  (* cross-check against the Monte-Carlo estimator on the inputs *)
  let mc = Power.Observability.monte_carlo_na ~samples:3000 ~seed:1 circuit in
  Format.printf "@.analytic vs Monte-Carlo on the primary inputs:@.";
  Array.iter
    (fun id ->
      let nd = Circuit.node circuit id in
      Format.printf "  %-12s analytic %+8.1f | sampled %+8.1f nA@." nd.Circuit.name
        (Power.Observability.observability_na obs id)
        mc.(id))
    (Circuit.inputs circuit)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s27" in
  dump_tables ();
  dump_stack_effect ();
  dump_observability name
