(* AddMUX trade-off study: how many scan cells can take a blocking
   multiplexer as the mux gets slower, what that costs in area, and
   that the slack-based selection matches the paper's naive
   re-analysis.

     dune exec examples/mux_tradeoff.exe -- [circuit]
*)

open Netlist

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s641" in
  let circuit = Techmap.Mapper.map (Circuits.by_name name) in
  let timing = Sta.analyze circuit in
  let n_ff = Array.length (Circuit.dffs circuit) in
  Format.printf "== %s: critical path %.1f ps, %d scan cells@." name
    (Sta.critical_delay timing) n_ff;
  let path = Sta.critical_path timing in
  Format.printf "critical path (%d stages): %s@.@." (List.length path)
    (String.concat " -> "
       (List.map (fun id -> (Circuit.node circuit id).Circuit.name) path));

  Format.printf "mux penalty sweep (slack test, one timing analysis total):@.";
  List.iter
    (fun penalty ->
      let muxable =
        Array.to_list (Circuit.dffs circuit)
        |> List.filter (fun dff ->
               Sta.fits_without_slowdown timing ~source:dff ~penalty)
      in
      Format.printf "  penalty %5.1f ps -> %3d/%d cells muxable (area +%.1f um^2)@."
        penalty (List.length muxable) n_ff
        (float_of_int (List.length muxable) *. Techlib.Cell.mux2_area))
    [ 5.0; 10.0; 20.0; Techlib.Cell.mux2_delay_penalty; 40.0; 80.0; 160.0 ];

  (* cross-check the library default against the naive per-candidate
     re-analysis the paper describes *)
  let naive =
    Scanpower.Mux_insertion.select ~strategy:Scanpower.Mux_insertion.Naive circuit
  in
  let slack =
    Scanpower.Mux_insertion.select ~strategy:Scanpower.Mux_insertion.Slack_based
      circuit
  in
  Format.printf
    "@.AddMUX at the default %.1f ps penalty: naive re-STA %d muxable, slack-based %d muxable, agree: %b@."
    Techlib.Cell.mux2_delay_penalty
    (Scanpower.Mux_insertion.muxable_count naive)
    (Scanpower.Mux_insertion.muxable_count slack)
    (List.sort compare naive.Scanpower.Mux_insertion.muxable
    = List.sort compare slack.Scanpower.Mux_insertion.muxable);

  (* what the muxes buy: dynamic power with/without the muxed cells *)
  let chain = Scan.Scan_chain.natural circuit in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:5 ~count:50 circuit in
  let trad = Scan.Scan_sim.measure circuit chain Scan.Scan_sim.traditional ~vectors in
  let forced =
    List.map (fun id -> (id, false)) slack.Scanpower.Mux_insertion.muxable
  in
  let muxed =
    Scan.Scan_sim.measure circuit chain
      { Scan.Scan_sim.pi_during_shift = None; forced_pseudo = forced; hold_previous_capture = false }
      ~vectors
  in
  Format.printf
    "with all %d muxes pinned low during shift: %d toggles vs %d traditional (%.1f%% fewer)@."
    (List.length forced) muxed.Scan.Scan_sim.total_toggles
    trad.Scan.Scan_sim.total_toggles
    (Scanpower.Flow.improvement
       (float_of_int trad.Scan.Scan_sim.total_toggles)
       (float_of_int muxed.Scan.Scan_sim.total_toggles))
