(* Quickstart: run the whole pipeline of the paper on the embedded s27
   benchmark and print a Table I-style row.

     dune exec examples/quickstart.exe
*)

let () =
  (* 1. Load a benchmark circuit (drop in any ISCAS89 .bench file with
     Netlist.Bench_parser.parse_file). *)
  let circuit = Circuits.s27 () in
  Format.printf "circuit %s: %a@." (Netlist.Circuit.name circuit)
    Netlist.Circuit.pp_stats
    (Netlist.Circuit.stats circuit);

  (* 2. One call runs: technology mapping -> ATPG test set -> AddMUX ->
     FindControlledInputPattern -> IVC fill -> input reordering ->
     scan-mode power measurement of the three structures. *)
  let cmp = Scanpower.Flow.run_benchmark circuit in
  Format.printf
    "test set: %d vectors; %d of %d scan cells accept a mux; %d gates blocked@."
    cmp.Scanpower.Flow.n_vectors cmp.Scanpower.Flow.n_muxable
    cmp.Scanpower.Flow.n_dffs cmp.Scanpower.Flow.blocked_gates;

  (* 3. Report. *)
  let row = Scanpower.Report.of_comparison cmp in
  Scanpower.Report.pp_table Format.std_formatter [ row ];
  Format.printf
    "@.The proposed structure cuts dynamic scan power by %.1f%% and leakage by %.1f%% versus traditional scan.@."
    (Scanpower.Report.dyn_improvement_vs_traditional row)
    (Scanpower.Report.static_improvement_vs_traditional row)
