(* Scan power deep-dive for one benchmark: per-structure dynamic and
   static figures, peak leakage, toggle counts, plus verification that
   the power-saving structures leave test responses untouched.

     dune exec examples/scan_power_report.exe -- [circuit]

   [circuit] is any of Circuits.names (default s344). *)

open Netlist

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s344" in
  let circuit = Techmap.Mapper.map (Circuits.by_name name) in
  let chain = Scan.Scan_chain.natural circuit in
  Format.printf "== %s: %a@." name Circuit.pp_stats (Circuit.stats circuit);

  let atpg = Atpg.Pattern_gen.generate circuit in
  Format.printf "ATPG: %a@." Atpg.Pattern_gen.pp_outcome atpg;
  let vectors = atpg.Atpg.Pattern_gen.vectors in

  (* traditional scan *)
  let trad = Scan.Scan_sim.measure circuit chain Scan.Scan_sim.traditional ~vectors in

  (* input control [8] *)
  let ic = Scanpower.C_algorithm.find circuit in
  let ic_policy =
    { Scan.Scan_sim.pi_during_shift = Some ic.Scanpower.C_algorithm.pi_pattern;
      forced_pseudo = []; hold_previous_capture = false }
  in
  let icm = Scan.Scan_sim.measure circuit chain ic_policy ~vectors in

  (* proposed structure, step by step *)
  let mux = Scanpower.Mux_insertion.select circuit in
  Format.printf "AddMUX: %a@." (Scanpower.Mux_insertion.pp circuit) mux;
  let obs = Power.Observability.compute circuit in
  let cp =
    Scanpower.Controlled_pattern.find
      ~direction:(Scanpower.Justify.Leakage_directed obs) circuit
      ~muxable:mux.Scanpower.Mux_insertion.muxable
  in
  Format.printf
    "FindControlledInputPattern: %d gates blocked, %d unblockable, %d lines still toggling@."
    cp.Scanpower.Controlled_pattern.blocked_gates
    cp.Scanpower.Controlled_pattern.failed_gates
    cp.Scanpower.Controlled_pattern.residual_transition_nodes;
  let filled =
    Scanpower.Ivc.fill ~seed:7 circuit ~values:cp.Scanpower.Controlled_pattern.values
      ~controlled:cp.Scanpower.Controlled_pattern.controlled
  in
  Format.printf "IVC: %d candidates tried, expected scan leakage %.2f uW@."
    filled.Scanpower.Ivc.candidates_tried filled.Scanpower.Ivc.expected_leakage_uw;
  let concrete id =
    match filled.Scanpower.Ivc.values.(id) with
    | Logic.One -> true
    | Logic.Zero | Logic.X -> false
  in
  let reordered = Circuit.copy circuit in
  let ro = Scanpower.Input_reorder.optimize reordered ~values:filled.Scanpower.Ivc.values in
  Format.printf "input reordering: %d gates permuted, expected gain %.1f nA@."
    ro.Scanpower.Input_reorder.gates_reordered ro.Scanpower.Input_reorder.expected_gain_na;
  let policy =
    {
      Scan.Scan_sim.pi_during_shift =
        Some (Array.map concrete (Circuit.inputs circuit));
      forced_pseudo =
        List.map (fun id -> (id, concrete id)) mux.Scanpower.Mux_insertion.muxable;
      hold_previous_capture = false;
    }
  in
  let prop = Scan.Scan_sim.measure reordered chain policy ~vectors in

  let line tag (m : Scan.Scan_sim.result) =
    Format.printf
      "%-14s dyn/f %.3e uW/Hz | static avg %.2f peak %.2f uW | %d toggles over %d cycles@."
      tag m.Scan.Scan_sim.dynamic.Power.Switching.dynamic_per_hz_uw
      m.Scan.Scan_sim.avg_static_uw m.Scan.Scan_sim.peak_static_uw
      m.Scan.Scan_sim.total_toggles m.Scan.Scan_sim.cycles
  in
  Format.printf "@.";
  line "traditional" trad;
  line "input-control" icm;
  line "proposed" prop;

  (* functional safety: all three structures capture identical responses *)
  let r_trad = Scan.Scan_sim.responses circuit chain Scan.Scan_sim.traditional ~vectors in
  let r_prop = Scan.Scan_sim.responses reordered chain policy ~vectors in
  Format.printf "@.responses identical to traditional scan: %b@." (r_trad = r_prop)
