open Netlist

let compatible a b =
  let n = Array.length a in
  Array.length b = n
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    match a.(i), b.(i) with
    | Logic.Zero, Logic.One | Logic.One, Logic.Zero -> ok := false
    | (Logic.Zero | Logic.One | Logic.X), _ -> ()
  done;
  !ok

let merge a b =
  if not (compatible a b) then invalid_arg "Compaction.merge: incompatible";
  Array.mapi
    (fun i va -> match va with Logic.X -> b.(i) | Logic.Zero | Logic.One -> va)
    a

let merge_cubes cubes =
  let merged : Logic.t array list ref = ref [] in
  let place cube =
    let rec try_merge acc = function
      | [] -> List.rev (cube :: acc)
      | existing :: rest ->
        if compatible existing cube then
          List.rev_append acc (merge existing cube :: rest)
        else try_merge (existing :: acc) rest
    in
    merged := try_merge [] !merged
  in
  List.iter place cubes;
  !merged

let fill_random rng cube =
  Array.map
    (fun v ->
      match v with
      | Logic.Zero -> false
      | Logic.One -> true
      | Logic.X -> Util.Rng.bool rng)
    cube

let fill_constant b cube =
  Array.map
    (fun v ->
      match v with
      | Logic.Zero -> false
      | Logic.One -> true
      | Logic.X -> b)
    cube
