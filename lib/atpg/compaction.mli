(** Static test-set compaction: merging of compatible test cubes (two
    cubes merge when no position carries opposite cares) and
    deterministic random X-fill. *)

open Netlist

val compatible : Logic.t array -> Logic.t array -> bool

val merge : Logic.t array -> Logic.t array -> Logic.t array
(** Positionwise intersection of cares.
    @raise Invalid_argument if the cubes are incompatible. *)

val merge_cubes : Logic.t array list -> Logic.t array list
(** Greedy first-fit merging; never increases the cube count and
    preserves every care bit. *)

val fill_random : Util.Rng.t -> Logic.t array -> bool array
(** Replace every X by a coin flip. *)

val fill_constant : bool -> Logic.t array -> bool array
