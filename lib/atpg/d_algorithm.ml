open Netlist
module F = Logic.Five

type result =
  | Test of Logic.t array
  | Untestable
  | Aborted

exception Conflict
exception Out_of_budget

type engine = {
  circuit : Circuit.t;
  fault : Fault.t;
  assigned : F.five option array; (* decisions / requirements per node *)
  values : F.five array; (* implied values *)
  observables : int list;
  mutable budget : int;
}

(* Value of node [id] from its fanins' implied values, with the
   engine's fault injected (same injection as the PODEM engine). *)
let eval_node e id =
  let c = e.circuit in
  let { Fault.site; stuck } = e.fault in
  let stuck_l = Logic.of_bool stuck in
  let nd = Circuit.node c id in
  let v =
    if Gate.is_source nd.kind then (
      match e.assigned.(id) with
      | Some v -> v
      | None -> F.FX)
    else begin
      let vs = Array.map (fun f -> e.values.(f)) nd.fanins in
      (match site with
      | Fault.Input_pin (gid, pin) when gid = id ->
        vs.(pin) <- F.make ~good:(F.good vs.(pin)) ~faulty:stuck_l
      | Fault.Input_pin _ | Fault.Output_line _ -> ());
      Gate.eval_five nd.kind vs
    end
  in
  match site with
  | Fault.Output_line fid when fid = id ->
    F.make ~good:(F.good v) ~faulty:stuck_l
  | Fault.Output_line _ | Fault.Input_pin _ -> v

(* Recompute every implied value; an assigned node keeps its assignment
   but a definite forward evaluation that disagrees is a conflict. *)
let imply e =
  Array.iter
    (fun id ->
      let computed = eval_node e id in
      match e.assigned.(id) with
      | None -> e.values.(id) <- computed
      | Some req ->
        if F.equal computed F.FX then e.values.(id) <- req
        else if F.equal computed req then e.values.(id) <- req
        else raise Conflict)
    (Circuit.topo_order e.circuit)

let detected e =
  List.exists (fun id -> F.is_d_or_dbar e.values.(id)) e.observables

(* Gates whose required value is not yet produced by their inputs. *)
let j_frontier e =
  let c = e.circuit in
  let pending = ref [] in
  Array.iter
    (fun id ->
      match e.assigned.(id) with
      | Some _ when Gate.is_logic (Circuit.node c id).Circuit.kind ->
        if F.equal (eval_node e id) F.FX then pending := id :: !pending
      | Some _ | None -> ())
    (Circuit.topo_order c);
  List.rev !pending

(* As in the PODEM engine, the faulted branch's D is invisible on the
   stem for input-pin faults and must be reconstructed. *)
let sees_d e id =
  let nd = Circuit.node e.circuit id in
  Array.exists (fun f -> F.is_d_or_dbar e.values.(f)) nd.Circuit.fanins
  ||
  match e.fault.Fault.site with
  | Fault.Input_pin (gid, pin) when gid = id ->
    let driver = nd.Circuit.fanins.(pin) in
    F.is_d_or_dbar
      (F.make
         ~good:(F.good e.values.(driver))
         ~faulty:(Logic.of_bool e.fault.Fault.stuck))
  | Fault.Input_pin _ | Fault.Output_line _ -> false

let m_faults = Telemetry.Counter.make "atpg.d_algorithm.faults"
let m_frontier = Telemetry.Counter.make "atpg.d_algorithm.frontier_gates"
let g_frontier_max = Telemetry.Gauge.make "atpg.d_algorithm.max_frontier"

let d_frontier e =
  let c = e.circuit in
  let frontier = ref [] in
  Array.iter
    (fun nd ->
      if
        Gate.is_logic nd.Circuit.kind
        && F.equal e.values.(nd.Circuit.id) F.FX
        && e.assigned.(nd.Circuit.id) = None
        && sees_d e nd.Circuit.id
      then frontier := nd.Circuit.id :: !frontier)
    (Circuit.nodes c);
  let result = List.rev !frontier in
  if Telemetry.enabled () then begin
    let size = List.length result in
    Telemetry.Counter.add m_frontier size;
    Telemetry.Gauge.observe_max g_frontier_max (float_of_int size)
  end;
  result

(* Trail-based undo: [assign] records what it touched. *)
let assign e trail id v =
  (match e.assigned.(id) with
  | Some old when not (F.equal old v) -> raise Conflict
  | Some _ -> ()
  | None ->
    e.assigned.(id) <- Some v;
    trail := id :: !trail)

let undo e trail mark =
  let rec go () =
    match !trail with
    | id :: rest when List.length !trail > mark ->
      e.assigned.(id) <- None;
      trail := rest;
      go ()
    | _ -> ()
  in
  go ()

(* Alternative input assignments that justify required good value [v]
   at gate [g]: a list of assignment lists. *)
let justification_choices e g v_good =
  let c = e.circuit in
  let nd = Circuit.node c g in
  let v_inner = if Gate.inversion nd.kind then not v_good else v_good in
  let x_inputs =
    Array.to_list nd.fanins
    |> List.filter (fun f -> Logic.equal (F.good e.values.(f)) Logic.X)
  in
  match nd.kind with
  | Gate.Buf | Gate.Not ->
    [ [ (nd.fanins.(0), F.of_ternary (Logic.of_bool v_inner)) ] ]
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
    let cv =
      match Gate.controlling_value nd.kind with
      | Some Logic.Zero -> false
      | Some Logic.One -> true
      | Some Logic.X | None -> assert false
    in
    (* inner value for AND family is the conjunction polarity: output
       inner equals cv iff some input carries cv *)
    let inner_when_controlled =
      match nd.kind with
      | Gate.And | Gate.Nand -> false (* a 0 input makes the AND part 0 *)
      | Gate.Or | Gate.Nor -> true
      | Gate.Input | Gate.Dff | Gate.Output | Gate.Buf | Gate.Not
      | Gate.Xor | Gate.Xnor ->
        assert false
    in
    if v_inner = inner_when_controlled then
      (* one controlling input suffices: one alternative per X input *)
      List.map (fun f -> [ (f, F.of_ternary (Logic.of_bool cv)) ]) x_inputs
    else
      (* every input must be non-controlling: a single forced choice *)
      [ List.map (fun f -> (f, F.of_ternary (Logic.of_bool (not cv)))) x_inputs ]
  | Gate.Xor | Gate.Xnor ->
    (* fix one X input each way; the requirement stays pending until
       the parity resolves *)
    (match x_inputs with
    | [] -> []
    | f :: _ -> [ [ (f, F.F0) ]; [ (f, F.F1) ] ])
  | Gate.Input | Gate.Dff | Gate.Output -> []

let run ?(backtrack_limit = 2000) c fault =
  Telemetry.Counter.inc m_faults;
  let observables =
    Array.to_list (Circuit.outputs c)
    @ (Array.to_list (Circuit.dffs c)
      |> List.map (fun id -> (Circuit.node c id).Circuit.fanins.(0)))
  in
  let e =
    {
      circuit = c;
      fault;
      assigned = Array.make (Circuit.node_count c) None;
      values = Array.make (Circuit.node_count c) F.FX;
      observables;
      budget = backtrack_limit;
    }
  in
  let trail = ref [] in
  (* Fault activation: the line at the fault site must carry the
     opposite of the stuck value in the good machine. *)
  let activation_node =
    match fault.Fault.site with
    | Fault.Output_line id -> id
    | Fault.Input_pin (gid, pin) -> (Circuit.node c gid).Circuit.fanins.(pin)
  in
  let activation_good = not fault.Fault.stuck in
  let site_value =
    match fault.Fault.site with
    | Fault.Output_line _ ->
      (* the node itself shows D/D' once its good rail is justified *)
      F.make
        ~good:(Logic.of_bool activation_good)
        ~faulty:(Logic.of_bool fault.Fault.stuck)
    | Fault.Input_pin _ ->
      (* the driver line is healthy; only the branch sees the fault *)
      F.of_ternary (Logic.of_bool activation_good)
  in
  let spend () =
    e.budget <- e.budget - 1;
    if e.budget < 0 then raise Out_of_budget
  in
  let rec try_alternatives alternatives =
    match alternatives with
    | [] -> false
    | assignments :: rest ->
      spend ();
      let mark = List.length !trail in
      (try
         List.iter (fun (id, v) -> assign e trail id v) assignments;
         imply e;
         if search () then true
         else begin
           undo e trail mark;
           try_alternatives rest
         end
       with Conflict ->
         undo e trail mark;
         try_alternatives rest)
  and search () =
    (* imply already ran without conflict when we get here *)
    let j = j_frontier e in
    if detected e then
      match j with
      | [] -> true
      | g :: _ ->
        let v_good =
          match e.assigned.(g) with
          | Some v ->
            (match Logic.to_bool (F.good v) with
            | Some b -> b
            | None -> true)
          | None -> assert false
        in
        try_alternatives (justification_choices e g v_good)
    else begin
      (* propagate: for each D-frontier gate, set its X side inputs to
         the non-controlling value *)
      match d_frontier e with
      | [] ->
        (* not detected, nothing to drive: if justification work
           remains it may still unblock propagation *)
        (match j with
        | [] -> false
        | g :: _ ->
          let v_good =
            match e.assigned.(g) with
            | Some v ->
              (match Logic.to_bool (F.good v) with
              | Some b -> b
              | None -> true)
            | None -> assert false
          in
          try_alternatives (justification_choices e g v_good))
      | frontier ->
        let drive g =
          let nd = Circuit.node c g in
          let ncv =
            match Gate.controlling_value nd.kind with
            | Some cv -> F.of_ternary (Logic.lnot cv)
            | None -> F.F1 (* XOR-type: any definite side value works *)
          in
          Array.to_list nd.fanins
          |> List.filter_map (fun f ->
                 if Logic.equal (F.good e.values.(f)) Logic.X then
                   Some (f, ncv)
                 else None)
        in
        try_alternatives (List.map drive frontier)
    end
  in
  let outcome =
    try
      assign e trail activation_node site_value;
      imply e;
      if search () then `Found else `Exhausted
    with
    | Conflict -> `Exhausted
    | Out_of_budget -> `Aborted
  in
  match outcome with
  | `Found ->
    (* the test cube is the good-rail value of every source *)
    let cube =
      Array.map (fun id -> F.good e.values.(id)) (Circuit.sources c)
    in
    Test cube
  | `Exhausted -> Untestable
  | `Aborted -> Aborted

let generate ?backtrack_limit c fault = run ?backtrack_limit c fault
