(** The classic D-algorithm (Roth): structural test generation that, in
    contrast to {!Podem}'s input-space search, assigns internal lines
    directly and maintains a J-frontier of assignments still to be
    justified alongside the D-frontier of fault effects still to be
    propagated.

    Kept as an independent engine: the test suite cross-validates it
    against PODEM fault by fault (both must agree on testability up to
    aborts), and the paper itself describes its baseline's search as
    "D-algorithm-like". *)

open Netlist

type result =
  | Test of Logic.t array
      (** Source cube (positional over [Circuit.sources]); X positions
          are free. *)
  | Untestable
  | Aborted

val generate : ?backtrack_limit:int -> Circuit.t -> Fault.t -> result
(** Default backtrack limit: 2000 explored decision alternatives. *)
