open Netlist

type site =
  | Output_line of int
  | Input_pin of int * int

type t = {
  site : site;
  stuck : bool;
}

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let site_node f =
  match f.site with
  | Output_line id -> id
  | Input_pin (id, _) -> id

let to_string c f =
  let polarity = if f.stuck then "s-a-1" else "s-a-0" in
  match f.site with
  | Output_line id -> Printf.sprintf "%s %s" (Circuit.node c id).name polarity
  | Input_pin (id, pin) ->
    Printf.sprintf "%s.in%d %s" (Circuit.node c id).name pin polarity

let all_faults c =
  let faults = ref [] in
  let add site = faults := { site; stuck = true } :: { site; stuck = false } :: !faults in
  Array.iter
    (fun nd ->
      (match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> add (Output_line nd.id)
      | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        add (Output_line nd.id)
      | Gate.Output -> ());
      if Gate.is_logic nd.Circuit.kind then
        Array.iteri
          (fun pin f ->
            let driver = Circuit.node c f in
            if Array.length driver.Circuit.fanouts > 1 then
              add (Input_pin (nd.Circuit.id, pin)))
          nd.Circuit.fanins)
    (Circuit.nodes c);
  List.rev !faults

let collapse c faults =
  let keep f =
    match f.site with
    | Output_line _ -> true
    | Input_pin (id, _) ->
      let nd = Circuit.node c id in
      (match nd.Circuit.kind with
      | Gate.Buf | Gate.Not -> false (* equivalent to the output fault *)
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
        (* pin stuck at the controlling value == output stuck at the
           controlled response: keep only the non-controlling pin fault *)
        (match Gate.controlling_value nd.Circuit.kind with
        | Some Logic.Zero -> f.stuck
        | Some Logic.One -> not f.stuck
        | Some Logic.X | None -> true)
      | Gate.Xor | Gate.Xnor -> true
      | Gate.Input | Gate.Dff | Gate.Output -> true)
  in
  List.filter keep faults

let collapsed_faults c = collapse c (all_faults c)
