(** Single stuck-at fault model over the combinational core of a
    full-scan circuit, with classic equivalence collapsing. *)

open Netlist

type site =
  | Output_line of int  (** stem: the output line of node [id] *)
  | Input_pin of int * int  (** branch: pin [pin] of gate [id] *)

type t = {
  site : site;
  stuck : bool;  (** stuck-at-1 when true *)
}

val equal : t -> t -> bool

val compare : t -> t -> int

val to_string : Circuit.t -> t -> string
(** e.g. ["G10 s-a-0"] or ["G22.in1 s-a-1"]. *)

val site_node : t -> int
(** The node whose evaluation the fault perturbs. *)

val all_faults : Circuit.t -> t list
(** Uncollapsed fault universe: both polarities on every stem (gate,
    input and flip-flop output lines) and on every gate input pin whose
    driver has more than one fanout (fanout-free pins are structurally
    the same line as the stem). *)

val collapse : Circuit.t -> t list -> t list
(** Equivalence collapsing: a branch pin stuck at the gate's
    controlling value is equivalent to the gate output stuck at its
    controlled response (and an inverter/buffer pin fault to the
    corresponding output fault), so only the representative output
    fault is kept. *)

val collapsed_faults : Circuit.t -> t list
(** [collapse c (all_faults c)]. *)
