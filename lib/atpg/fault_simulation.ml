open Netlist

let word_bits = 64

let m_batches = Telemetry.Counter.make "atpg.fault_sim.batches"
let m_words = Telemetry.Counter.make "atpg.fault_sim.detection_words"
let m_ffr_traces = Telemetry.Counter.make "atpg.fault_sim.ffr_traces"
let m_stem_events = Telemetry.Counter.make "atpg.fault_sim.stem_events"
let m_early_exits = Telemetry.Counter.make "atpg.fault_sim.early_exits"
let m_dominator_hits = Telemetry.Counter.make "atpg.fault_sim.dominator_hits"

type engine =
  | Cone  (** full-cone resimulation per fault: the golden reference *)
  | Cpt  (** FFR critical-path tracing + event-driven stem propagation *)

type machine = {
  engine : engine;
  comp : Compiled.t;
  good : int64 array; (* node id -> packed good values *)
  observables : int array;
  cones : int array option array; (* site node -> topo-sorted cone *)
  (* stamped per-fault scratch: faulty value of a node is valid only
     when its stamp matches the machine's current stamp *)
  faulty : int64 array;
  faulty_stamp : int array;
  mutable stamp : int;
  (* stamped scratch for cone construction (no per-site allocation
     until the cone is interned) *)
  cone_mark : int array;
  mutable cone_stamp : int;
  cone_buf : int array;
  (* Cpt engine state, all validated against [batch] (bumped by every
     [load_good]) so nothing is cleared between batches *)
  mutable batch : int;
  obs_w : int64 array; (* stem/dominator -> patterns where a flip is observed *)
  obs_stamp : int array;
  sens : int64 array; (* in-FFR line -> patterns sensitized to the stem *)
  sens_stamp : int array;
  sched : int array; (* per-propagation scheduled marker *)
  buckets : int array array; (* per-level event queues *)
  bucket_len : int array;
  path_buf : int array; (* FFR climb scratch *)
}

let observables c =
  let dpins =
    Array.to_list (Circuit.dffs c)
    |> List.map (fun id -> (Circuit.node c id).Circuit.fanins.(0))
  in
  Array.of_list (Array.to_list (Circuit.outputs c) @ dpins)

let make ?(engine = Cpt) c =
  let n = Circuit.node_count c in
  let comp = Compiled.of_circuit c in
  {
    engine;
    comp;
    good = Array.make n 0L;
    observables = observables c;
    cones = Array.make n None;
    faulty = Array.make n 0L;
    faulty_stamp = Array.make n 0;
    stamp = 0;
    cone_mark = Array.make n 0;
    cone_stamp = 0;
    cone_buf = Array.make n 0;
    batch = 0;
    obs_w = Array.make n 0L;
    obs_stamp = Array.make n 0;
    sens = Array.make n 0L;
    sens_stamp = Array.make n 0;
    sched = Array.make n 0;
    buckets = Array.map (fun p -> Array.make p 0) (Compiled.level_population comp);
    bucket_len = Array.make (Compiled.max_level comp + 1) 0;
    path_buf = Array.make n 0;
  }

(* A worker-domain replica: shares the immutable compiled form, the
   packed good words and the observables of [m]; every stamped scratch
   and per-batch memo is private. Workers only ever read [good] — it
   is written by [load_good] on the parent machine before work is
   published to the pool, whose job handoff orders that write before
   any worker read. *)
let fork_machine m =
  let n = Compiled.node_count m.comp in
  {
    engine = m.engine;
    comp = m.comp;
    good = m.good;
    observables = m.observables;
    cones = Array.make n None;
    faulty = Array.make n 0L;
    faulty_stamp = Array.make n 0;
    stamp = 0;
    cone_mark = Array.make n 0;
    cone_stamp = 0;
    cone_buf = Array.make n 0;
    batch = m.batch;
    obs_w = Array.make n 0L;
    obs_stamp = Array.make n 0;
    sens = Array.make n 0L;
    sens_stamp = Array.make n 0;
    sched = Array.make n 0;
    buckets =
      Array.map (fun p -> Array.make p 0) (Compiled.level_population m.comp);
    bucket_len = Array.make (Compiled.max_level m.comp + 1) 0;
    path_buf = Array.make n 0;
  }

let with_machine ?engine c f = f (make ?engine c)
let engine m = m.engine
let circuit m = Compiled.circuit m.comp

(* Pack up to 64 vectors (positional over sources) into the good
   machine and simulate; returns the valid-pattern mask. *)
let load_good m vectors =
  Telemetry.Counter.inc m_batches;
  m.batch <- m.batch + 1;
  let c = Compiled.circuit m.comp in
  let srcs = Circuit.sources c in
  let count = List.length vectors in
  assert (count > 0 && count <= word_bits);
  Array.iteri
    (fun pos id ->
      let w = ref 0L in
      List.iteri
        (fun vi vec ->
          if vec.(pos) then w := Int64.logor !w (Int64.shift_left 1L vi))
        vectors;
      m.good.(id) <- !w)
    srcs;
  Compiled.eval_words m.comp m.good;
  if count = word_bits then Int64.minus_one
  else Int64.sub (Int64.shift_left 1L count) 1L

(* Structural fanout cone of a node, in topological order. Cones are
   interned per site in a dense array (the former per-site Hashtbl);
   construction reuses machine-level stamped scratch. *)
let cone m site =
  match m.cones.(site) with
  | Some arr -> arr
  | None ->
    m.cone_stamp <- m.cone_stamp + 1;
    let stamp = m.cone_stamp in
    let mark = m.cone_mark in
    let opcode = Compiled.opcode m.comp in
    let fanout_off = Compiled.fanout_off m.comp in
    let fanout = Compiled.fanout m.comp in
    mark.(site) <- stamp;
    let len = ref 0 in
    Array.iter
      (fun id ->
        if mark.(id) = stamp then begin
          m.cone_buf.(!len) <- id;
          incr len;
          for i = fanout_off.(id) to fanout_off.(id + 1) - 1 do
            let succ = fanout.(i) in
            if opcode.(succ) <> Compiled.op_dff then mark.(succ) <- stamp
          done
        end)
      (Compiled.topo m.comp);
    let arr = Array.sub m.cone_buf 0 !len in
    m.cones.(site) <- Some arr;
    arr

(* Faulty-machine value of a fanin: the per-fault scratch when the
   node sits inside the cone already visited this stamp, the good
   machine otherwise. *)
let[@inline] sel m stamp f =
  if m.faulty_stamp.(f) = stamp then m.faulty.(f) else m.good.(f)

let rec fold_and_sel m stamp (fa : int array) i hi ov_pin ov_word acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else sel m stamp fa.(i) in
    fold_and_sel m stamp fa (i + 1) hi ov_pin ov_word (Int64.logand acc v)

let rec fold_or_sel m stamp (fa : int array) i hi ov_pin ov_word acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else sel m stamp fa.(i) in
    fold_or_sel m stamp fa (i + 1) hi ov_pin ov_word (Int64.logor acc v)

let rec fold_xor_sel m stamp (fa : int array) i hi ov_pin ov_word acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else sel m stamp fa.(i) in
    fold_xor_sel m stamp fa (i + 1) hi ov_pin ov_word (Int64.logxor acc v)

(* Bitwise evaluation of one cone node against the stamped faulty
   scratch, with pin [ov_pin] (absolute index into the CSR fanin
   array, or -1) forced to [ov_word]. Allocation-free: no fanin-value
   array is materialised. *)
let eval_faulty m stamp id ov_pin ov_word =
  let fanin_off = Compiled.fanin_off m.comp in
  let fa = Compiled.fanin m.comp in
  let lo = fanin_off.(id) and hi = fanin_off.(id + 1) in
  let op = (Compiled.opcode m.comp).(id) in
  if op = Compiled.op_and then
    fold_and_sel m stamp fa lo hi ov_pin ov_word Int64.minus_one
  else if op = Compiled.op_nand then
    Int64.lognot (fold_and_sel m stamp fa lo hi ov_pin ov_word Int64.minus_one)
  else if op = Compiled.op_or then fold_or_sel m stamp fa lo hi ov_pin ov_word 0L
  else if op = Compiled.op_nor then
    Int64.lognot (fold_or_sel m stamp fa lo hi ov_pin ov_word 0L)
  else if op = Compiled.op_not then
    Int64.lognot (if lo = ov_pin then ov_word else sel m stamp fa.(lo))
  else if op = Compiled.op_buf || op = Compiled.op_output then
    if lo = ov_pin then ov_word else sel m stamp fa.(lo)
  else if op = Compiled.op_xor then
    fold_xor_sel m stamp fa lo hi ov_pin ov_word 0L
  else if op = Compiled.op_xnor then
    Int64.lognot (fold_xor_sel m stamp fa lo hi ov_pin ov_word 0L)
  else invalid_arg "Fault_simulation: source eval"

(* Full-cone reference: resimulate the fault's entire output cone and
   XOR at the observables. Bit i of the result is set iff valid
   pattern i detects the fault. *)
let fault_detection_word_cone m mask (f : Fault.t) =
  let site = Fault.site_node f in
  let cone_nodes = cone m site in
  let stuck_word = if f.Fault.stuck then Int64.minus_one else 0L in
  m.stamp <- m.stamp + 1;
  let stamp = m.stamp in
  let fanin_off = Compiled.fanin_off m.comp in
  let det = ref 0L in
  (match f.Fault.site with
  | Fault.Output_line fid ->
    Array.iter
      (fun id ->
        let w =
          if fid = id then stuck_word
          else if Compiled.is_source m.comp id then m.good.(id)
          else eval_faulty m stamp id (-1) 0L
        in
        m.faulty.(id) <- w;
        m.faulty_stamp.(id) <- stamp)
      cone_nodes
  | Fault.Input_pin (gid, pin) ->
    Array.iter
      (fun id ->
        let w =
          if Compiled.is_source m.comp id then m.good.(id)
          else
            let ov_pin = if gid = id then fanin_off.(id) + pin else -1 in
            eval_faulty m stamp id ov_pin stuck_word
        in
        m.faulty.(id) <- w;
        m.faulty_stamp.(id) <- stamp)
      cone_nodes);
  Array.iter
    (fun ob ->
      if m.faulty_stamp.(ob) = stamp then
        det := Int64.logor !det (Int64.logxor m.faulty.(ob) m.good.(ob)))
    m.observables;
  Int64.logand !det mask

(* Evaluate gate [g] with the single node [nnode] flipped against the
   good machine: a fresh stamp means [sel] reads good values for every
   other fanin, so no scratch needs clearing. *)
let[@inline] eval_flip m g nnode =
  m.stamp <- m.stamp + 1;
  m.faulty.(nnode) <- Int64.lognot m.good.(nnode);
  m.faulty_stamp.(nnode) <- m.stamp;
  eval_faulty m m.stamp g (-1) 0L

(* Patterns on which a value flip at [site] reaches the stem of its
   fanout-free region. Inside an FFR every node has exactly one path
   to the stem, so lane-wise single-path sensitization composes
   exactly: sens(site) = sens(fanout) AND (flipping [site] flips the
   fanout's output). One climb memoizes the whole chain for the rest
   of the batch, which is what makes critical path tracing cheaper
   than cone resimulation — faults on the same FFR chain share it. *)
let sensitivity m site =
  let ffr_stem = Compiled.ffr_stem m.comp in
  let stem = ffr_stem.(site) in
  if site = stem then Int64.minus_one
  else if m.sens_stamp.(site) = m.batch then m.sens.(site)
  else begin
    Telemetry.Counter.inc m_ffr_traces;
    let fanout_off = Compiled.fanout_off m.comp in
    let fanout = Compiled.fanout m.comp in
    let buf = m.path_buf in
    let len = ref 0 in
    let cur = ref site in
    while !cur <> stem && m.sens_stamp.(!cur) <> m.batch do
      buf.(!len) <- !cur;
      incr len;
      cur := fanout.(fanout_off.(!cur))
    done;
    let acc = ref (if !cur = stem then Int64.minus_one else m.sens.(!cur)) in
    for i = !len - 1 downto 0 do
      let nd = buf.(i) in
      let g = fanout.(fanout_off.(nd)) in
      let local = Int64.logxor (eval_flip m g nd) m.good.(g) in
      acc := Int64.logand !acc local;
      m.sens.(nd) <- !acc;
      m.sens_stamp.(nd) <- m.batch
    done;
    m.sens.(site)
  end

exception Resolved

(* Patterns on which a value flip at [start] (a stem or dominator) is
   observed: event-driven forward propagation of the 64-pattern
   difference word through level-ordered buckets. Early exits: when
   every pending difference word has gone to zero, and when the event
   frontier collapses to a single node — necessarily a propagation
   dominator of [start] — whose own observability word finishes the
   job (recursively; per-batch memoized, so deep dominator chains are
   resolved once and shared by every stem behind them). Events on
   nodes that cannot reach an observable are never scheduled, which
   both prunes work and keeps the frontier-collapse test sound. *)
let rec obs_of m start =
  if m.obs_stamp.(start) = m.batch then m.obs_w.(start)
  else begin
    let levels = Compiled.levels m.comp in
    let fanout_off = Compiled.fanout_off m.comp in
    let fanout = Compiled.fanout m.comp in
    let opcode = Compiled.opcode m.comp in
    let observable = Compiled.observable m.comp in
    let reaches = Compiled.reaches_observable m.comp in
    let max_level = Compiled.max_level m.comp in
    m.stamp <- m.stamp + 1;
    let stamp = m.stamp in
    for l = 0 to max_level do
      m.bucket_len.(l) <- 0
    done;
    m.faulty.(start) <- Int64.lognot m.good.(start);
    m.faulty_stamp.(start) <- stamp;
    let det = ref (if observable.(start) then Int64.minus_one else 0L) in
    let pending = ref 0 in
    let schedule id =
      if m.sched.(id) <> stamp then begin
        m.sched.(id) <- stamp;
        let l = levels.(id) in
        m.buckets.(l).(m.bucket_len.(l)) <- id;
        m.bucket_len.(l) <- m.bucket_len.(l) + 1;
        incr pending
      end
    in
    for i = fanout_off.(start) to fanout_off.(start + 1) - 1 do
      let succ = fanout.(i) in
      if opcode.(succ) <> Compiled.op_dff && reaches.(succ) then schedule succ
    done;
    (try
       for l = levels.(start) + 1 to max_level do
         let bucket = m.buckets.(l) in
         for k = 0 to m.bucket_len.(l) - 1 do
           let id = bucket.(k) in
           decr pending;
           Telemetry.Counter.inc m_stem_events;
           let w = eval_faulty m stamp id (-1) 0L in
           m.faulty.(id) <- w;
           m.faulty_stamp.(id) <- stamp;
           let d = Int64.logxor w m.good.(id) in
           if d = 0L then begin
             if !pending = 0 then begin
               Telemetry.Counter.inc m_early_exits;
               raise_notrace Resolved
             end
           end
           else begin
             if observable.(id) then det := Int64.logor !det d;
             let lo = fanout_off.(id) and hi = fanout_off.(id + 1) in
             let has_succ = ref false in
             for i = lo to hi - 1 do
               let succ = fanout.(i) in
               if opcode.(succ) <> Compiled.op_dff && reaches.(succ) then
                 has_succ := true
             done;
             if !has_succ then
               if !pending = 0 then begin
                 (* the frontier collapsed onto [id]: every live lane's
                    difference is exactly [d], so [id]'s own (memoized)
                    observability finishes the propagation *)
                 if m.obs_stamp.(id) = m.batch then
                   Telemetry.Counter.inc m_dominator_hits;
                 det := Int64.logor !det (Int64.logand d (obs_of m id));
                 raise_notrace Resolved
               end
               else
                 for i = lo to hi - 1 do
                   let succ = fanout.(i) in
                   if opcode.(succ) <> Compiled.op_dff && reaches.(succ) then
                     schedule succ
                 done
           end
         done
       done
     with Resolved -> ());
    m.obs_w.(start) <- !det;
    m.obs_stamp.(start) <- m.batch;
    !det
  end

(* Critical-path-tracing detection: activation at the site, times
   sensitization to the FFR stem, times the stem's observability. For
   a pin fault the activation and pin-local sensitization collapse
   into one overridden evaluation of the gate (its output differs from
   good exactly on patterns where the stuck pin both differs from the
   driver and flips the gate). *)
let fault_detection_word_cpt m mask (f : Fault.t) =
  let ffr_stem = Compiled.ffr_stem m.comp in
  let reaches = Compiled.reaches_observable m.comp in
  let stuck_word = if f.Fault.stuck then Int64.minus_one else 0L in
  let det =
    match f.Fault.site with
    | Fault.Output_line id ->
      if not reaches.(id) then 0L
      else
        let act = Int64.logxor m.good.(id) stuck_word in
        if act = 0L then 0L
        else
          let s = Int64.logand act (sensitivity m id) in
          if s = 0L then 0L else Int64.logand s (obs_of m ffr_stem.(id))
    | Fault.Input_pin (gid, pin) ->
      if not reaches.(gid) then 0L
      else begin
        let fanin_off = Compiled.fanin_off m.comp in
        m.stamp <- m.stamp + 1;
        let w = eval_faulty m m.stamp gid (fanin_off.(gid) + pin) stuck_word in
        let d = Int64.logxor w m.good.(gid) in
        if d = 0L then 0L
        else
          let s = Int64.logand d (sensitivity m gid) in
          if s = 0L then 0L else Int64.logand s (obs_of m ffr_stem.(gid))
      end
  in
  Int64.logand det mask

let fault_detection_word m mask f =
  Telemetry.Counter.inc m_words;
  match m.engine with
  | Cone -> fault_detection_word_cone m mask f
  | Cpt -> fault_detection_word_cpt m mask f

let fault_detected m mask f = fault_detection_word m mask f <> 0L

let rec batches n = function
  | [] -> []
  | vectors ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | v :: rest -> take (k - 1) (v :: acc) rest
    in
    let batch, rest = take n [] vectors in
    batch :: batches n rest

(* Callers that already hold a machine pass it through; the circuit
   must be the very value the machine was compiled from (the compiled
   form is a snapshot, so a physically different circuit — even a
   structurally equal one — would silently desynchronise). *)
let resolve_machine ?machine c =
  match machine with
  | None -> make c
  | Some m ->
    if Compiled.circuit m.comp != c then
      invalid_arg "Fault_simulation: machine compiled from a different circuit";
    m

let h_pattern = Telemetry.Histogram.make "atpg.fault_sim.pattern_s"
let h_par_batch = Telemetry.Histogram.make "atpg.fault_sim.par_batch_s"

(* ---- domain-sharded detection ---- *)

(* Fault indices grouped by the FFR stem of their site (ties broken by
   original position). Faults behind one stem share the per-batch
   sensitization climb and the stem's observability word, so keeping a
   stem's faults in consecutive chunks makes those memos hit inside
   one domain instead of being recomputed by several. *)
let stem_order m fault_arr =
  let ffr_stem = Compiled.ffr_stem m.comp in
  let nf = Array.length fault_arr in
  let order = Array.init nf (fun i -> i) in
  let stem_of i = ffr_stem.(Fault.site_node fault_arr.(i)) in
  Array.sort
    (fun a b ->
      let c = compare (stem_of a) (stem_of b) in
      if c <> 0 then c else compare a b)
    order;
  order

(* Detection words for every fault of [fault_arr] against the batch
   currently loaded in [m], fanned out over [pool]. Participant 0 (the
   caller) evaluates on [m] itself; participant [p] on [workers.(p-1)],
   a {!fork_machine} replica whose scratch is domain-private. Each
   word lands in [det] at the fault's original index, so the caller's
   in-order partition is bit-identical to the sequential walk no
   matter how chunks were scheduled or stolen. *)
let detection_words_sharded pool m ~workers ~order mask fault_arr det =
  Array.iter (fun wm -> wm.batch <- m.batch) workers;
  Par.Domain_pool.parallel_for_p pool ~n:(Array.length fault_arr)
    (fun ~participant i ->
      let mm = if participant = 0 then m else workers.(participant - 1) in
      let fi = order.(i) in
      det.(fi) <- fault_detection_word mm mask fault_arr.(fi))

let make_workers ?pool m =
  match pool with
  | Some p when Par.Domain_pool.size p > 1 ->
    Array.init (Par.Domain_pool.size p - 1) (fun _ -> fork_machine m)
  | _ -> [||]

let split ?machine ?pool c ~faults ~vectors =
  if vectors = [] then ([], faults)
  else begin
    let m = resolve_machine ?machine c in
    let workers = make_workers ?pool m in
    let remaining = ref faults in
    let detected = ref [] in
    List.iter
      (fun batch ->
        if !remaining <> [] then begin
          let t0 = if Telemetry.enabled () then Telemetry.now () else 0.0 in
          let mask = load_good m batch in
          let det, undet =
            match pool with
            | Some p when Array.length workers > 0 ->
              let fault_arr = Array.of_list !remaining in
              let nf = Array.length fault_arr in
              let det_w = Array.make nf 0L in
              let order = stem_order m fault_arr in
              detection_words_sharded p m ~workers ~order mask fault_arr
                det_w;
              let d = ref [] and u = ref [] in
              for fi = nf - 1 downto 0 do
                if det_w.(fi) <> 0L then d := fault_arr.(fi) :: !d
                else u := fault_arr.(fi) :: !u
              done;
              (!d, !u)
            | _ ->
              List.partition (fun f -> fault_detected m mask f) !remaining
          in
          (* a batch is up to 64 patterns simulated in one pass; report
             the amortised per-pattern cost, which is the unit the
             paper's tables are normalised to *)
          if Telemetry.enabled () then begin
            let dt = Telemetry.now () -. t0 in
            Telemetry.Histogram.observe h_pattern
              (dt /. float_of_int (max 1 (List.length batch)));
            if Array.length workers > 0 then
              Telemetry.Histogram.observe h_par_batch dt
          end;
          detected := List.rev_append det !detected;
          remaining := undet
        end)
      (batches word_bits vectors);
    (List.rev !detected, !remaining)
  end

let coverage ?machine ?pool c ~faults ~vectors =
  match faults with
  | [] -> 1.0
  | _ ->
    let detected, _ = split ?machine ?pool c ~faults ~vectors in
    float_of_int (List.length detected) /. float_of_int (List.length faults)

let effective_subset ?machine ?pool c ~faults ~vectors =
  (* Reverse-order static compaction. The serial walk (simulate one
     vector, drop detected faults, repeat) is quadratic; instead the
     full fault x vector detection matrix is computed with 64-way
     pattern parallelism, then the reverse greedy selection runs on
     bitmaps: keep a vector iff it detects a fault no later-kept vector
     detects. *)
  let vec_arr = Array.of_list vectors in
  let n_vec = Array.length vec_arr in
  if n_vec = 0 then []
  else begin
    let m = resolve_machine ?machine c in
    let workers = make_workers ?pool m in
    let n_words = (n_vec + word_bits - 1) / word_bits in
    let flist = Array.of_list faults in
    let order =
      if Array.length workers > 0 then stem_order m flist else [||]
    in
    let detection = Array.make_matrix (Array.length flist) n_words 0L in
    let col = Array.make (Array.length flist) 0L in
    for w = 0 to n_words - 1 do
      let batch =
        Array.to_list
          (Array.sub vec_arr (w * word_bits)
             (min word_bits (n_vec - (w * word_bits))))
      in
      let mask = load_good m batch in
      match pool with
      | Some p when Array.length workers > 0 ->
        detection_words_sharded p m ~workers ~order mask flist col;
        Array.iteri (fun fi d -> detection.(fi).(w) <- d) col
      | _ ->
        Array.iteri
          (fun fi f -> detection.(fi).(w) <- fault_detection_word m mask f)
          flist
    done;
    let covered = Array.make (Array.length flist) false in
    let keep = ref [] in
    for v = n_vec - 1 downto 0 do
      let word = v / word_bits and bit = v mod word_bits in
      let test = Int64.shift_left 1L bit in
      let newly = ref false in
      Array.iteri
        (fun fi det ->
          if (not covered.(fi)) && Int64.logand det.(word) test <> 0L then begin
            covered.(fi) <- true;
            newly := true
          end)
        detection;
      if !newly then keep := vec_arr.(v) :: !keep
    done;
    !keep
  end
