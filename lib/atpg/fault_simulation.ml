open Netlist

let word_bits = 64

(* Widest PPSFP batch: 8 words = 512 patterns per pass, matching the
   W-word interleaved layout of [Compiled.eval_words_wide] (and the
   cap Sim.Packed_sim uses for the same cache-blocking reason). *)
let max_batch_words = 8

let m_batches = Telemetry.Counter.make "atpg.fault_sim.batches"
let m_words = Telemetry.Counter.make "atpg.fault_sim.detection_words"
let m_ffr_traces = Telemetry.Counter.make "atpg.fault_sim.ffr_traces"
let m_stem_events = Telemetry.Counter.make "atpg.fault_sim.stem_events"
let m_early_exits = Telemetry.Counter.make "atpg.fault_sim.early_exits"
let m_dominator_hits = Telemetry.Counter.make "atpg.fault_sim.dominator_hits"
let m_ppsfp_events = Telemetry.Counter.make "atpg.fault_sim.ppsfp_events"
let m_dropped = Telemetry.Counter.make "atpg.fault_sim.dropped_faults"
let m_par_bypass = Telemetry.Counter.make "atpg.fault_sim.par_bypass"

type engine =
  | Cone  (** full-cone resimulation per fault: the golden reference *)
  | Cpt  (** FFR critical-path tracing + event-driven stem propagation *)
  | Ppsfp  (** W-word parallel-pattern single-fault propagation *)

type machine = {
  engine : engine;
  comp : Compiled.t;
  (* words per batch this machine can carry: 1 for Cone/Cpt, 1..8 for
     Ppsfp. [good]/[faulty] are sized [node_count * width]; a batch of
     [bw <= width] words is stored with stride [bw] (node [id] word [w]
     at [id*bw + w]), so a width-1 machine indexes exactly as before. *)
  width : int;
  mutable bw : int; (* words in the currently loaded batch *)
  valid : int64 array; (* per-word valid-pattern masks, length [width] *)
  good : int64 array; (* node id -> packed good values *)
  observables : int array;
  cones : int array option array; (* site node -> topo-sorted cone *)
  (* stamped per-fault scratch: faulty value of a node is valid only
     when its stamp matches the machine's current stamp *)
  faulty : int64 array;
  faulty_stamp : int array;
  mutable stamp : int;
  (* stamped scratch for cone construction (no per-site allocation
     until the cone is interned) *)
  cone_mark : int array;
  mutable cone_stamp : int;
  cone_buf : int array;
  (* Cpt engine state, all validated against [batch] (bumped by every
     batch load) so nothing is cleared between batches *)
  mutable batch : int;
  (* [obs_w]/[sens] are sized [node_count * width] and indexed with the
     same stride-[bw] layout as [good]/[faulty]: word [w] of node [id]
     lives at [id*bw + w]. Width-1 engines index exactly as before. *)
  obs_w : int64 array; (* stem/dominator -> patterns where a flip is observed *)
  obs_stamp : int array;
  sens : int64 array; (* in-FFR line -> patterns sensitized to the stem *)
  sens_stamp : int array;
  sched : int array; (* per-propagation scheduled marker *)
  buckets : int array array; (* per-level event queues *)
  bucket_len : int array;
  path_buf : int array; (* FFR climb scratch *)
}

let observables c =
  let dpins =
    Array.to_list (Circuit.dffs c)
    |> List.map (fun id -> (Circuit.node c id).Circuit.fanins.(0))
  in
  Array.of_list (Array.to_list (Circuit.outputs c) @ dpins)

let resolve_width engine width =
  match (engine, width) with
  | (Cone | Cpt), None -> 1
  | (Cone | Cpt), Some 1 -> 1
  | (Cone | Cpt), Some _ ->
    invalid_arg "Fault_simulation: width > 1 requires the Ppsfp engine"
  | Ppsfp, None -> max_batch_words
  | Ppsfp, Some w ->
    if w < 1 || w > max_batch_words then
      invalid_arg "Fault_simulation: width must be within 1..8"
    else w

let make ?(engine = Cpt) ?width c =
  let width = resolve_width engine width in
  let n = Circuit.node_count c in
  let comp = Compiled.of_circuit c in
  {
    engine;
    comp;
    width;
    bw = 1;
    valid = Array.make width Int64.minus_one;
    good = Array.make (n * width) 0L;
    observables = observables c;
    cones = Array.make n None;
    faulty = Array.make (n * width) 0L;
    faulty_stamp = Array.make n 0;
    stamp = 0;
    cone_mark = Array.make n 0;
    cone_stamp = 0;
    cone_buf = Array.make n 0;
    batch = 0;
    obs_w = Array.make (n * width) 0L;
    obs_stamp = Array.make n 0;
    sens = Array.make (n * width) 0L;
    sens_stamp = Array.make n 0;
    sched = Array.make n 0;
    buckets = Array.map (fun p -> Array.make p 0) (Compiled.level_population comp);
    bucket_len = Array.make (Compiled.max_level comp + 1) 0;
    path_buf = Array.make n 0;
  }

(* A worker-domain replica: shares the immutable compiled form, the
   packed good words, the valid masks and the observables of [m]; every
   stamped scratch and per-batch memo is private. Workers only ever
   read [good]/[valid] — they are written by the batch load on the
   parent machine before work is published to the pool, whose job
   handoff orders those writes before any worker read. *)
let fork_machine m =
  let n = Compiled.node_count m.comp in
  {
    engine = m.engine;
    comp = m.comp;
    width = m.width;
    bw = m.bw;
    valid = m.valid;
    good = m.good;
    observables = m.observables;
    cones = Array.make n None;
    faulty = Array.make (n * m.width) 0L;
    faulty_stamp = Array.make n 0;
    stamp = 0;
    cone_mark = Array.make n 0;
    cone_stamp = 0;
    cone_buf = Array.make n 0;
    batch = m.batch;
    obs_w = Array.make (n * m.width) 0L;
    obs_stamp = Array.make n 0;
    sens = Array.make (n * m.width) 0L;
    sens_stamp = Array.make n 0;
    sched = Array.make n 0;
    buckets =
      Array.map (fun p -> Array.make p 0) (Compiled.level_population m.comp);
    bucket_len = Array.make (Compiled.max_level m.comp + 1) 0;
    path_buf = Array.make n 0;
  }

let with_machine ?engine ?width c f = f (make ?engine ?width c)
let engine m = m.engine
let circuit m = Compiled.circuit m.comp
let width m = m.width

(* Pack up to 64 vectors (positional over sources) into the good
   machine and simulate; returns the valid-pattern mask. Width-1
   engines only. *)
let load_good m vectors =
  Telemetry.Counter.inc m_batches;
  m.batch <- m.batch + 1;
  m.bw <- 1;
  let c = Compiled.circuit m.comp in
  let srcs = Circuit.sources c in
  let count = List.length vectors in
  assert (count > 0 && count <= word_bits);
  Array.iteri
    (fun pos id ->
      let w = ref 0L in
      List.iteri
        (fun vi vec ->
          if vec.(pos) then w := Int64.logor !w (Int64.shift_left 1L vi))
        vectors;
      m.good.(id) <- !w)
    srcs;
  Compiled.eval_words m.comp m.good;
  let mask =
    if count = word_bits then Int64.minus_one
    else Int64.sub (Int64.shift_left 1L count) 1L
  in
  m.valid.(0) <- mask;
  mask

(* Pack up to [64 * width] vectors into [bw = ceil(count/64)] words per
   node (stride [bw], matching [Compiled.eval_words_wide]) and
   simulate. Only as many words as the batch actually fills are
   evaluated, so a short final batch costs no more than on a narrower
   machine. *)
let load_good_wide m vectors =
  Telemetry.Counter.inc m_batches;
  m.batch <- m.batch + 1;
  let c = Compiled.circuit m.comp in
  let srcs = Circuit.sources c in
  let count = List.length vectors in
  assert (count > 0 && count <= word_bits * m.width);
  let bw = (count + word_bits - 1) / word_bits in
  m.bw <- bw;
  Array.iter
    (fun id ->
      for w = 0 to bw - 1 do
        m.good.((id * bw) + w) <- 0L
      done)
    srcs;
  List.iteri
    (fun vi vec ->
      let w = vi lsr 6 and b = vi land 63 in
      Array.iteri
        (fun pos id ->
          if vec.(pos) then
            m.good.((id * bw) + w) <-
              Int64.logor m.good.((id * bw) + w) (Int64.shift_left 1L b))
        srcs)
    vectors;
  Compiled.eval_words_wide m.comp ~width:bw m.good;
  for w = 0 to bw - 1 do
    let filled = min word_bits (count - (w * word_bits)) in
    m.valid.(w) <-
      (if filled = word_bits then Int64.minus_one
       else Int64.sub (Int64.shift_left 1L filled) 1L)
  done

let load_batch m vectors =
  match m.engine with
  | Cone | Cpt -> ignore (load_good m vectors : int64)
  | Ppsfp -> load_good_wide m vectors

(* Structural fanout cone of a node, in topological order. Cones are
   interned per site in a dense array (the former per-site Hashtbl);
   construction reuses machine-level stamped scratch. *)
let cone m site =
  match m.cones.(site) with
  | Some arr -> arr
  | None ->
    m.cone_stamp <- m.cone_stamp + 1;
    let stamp = m.cone_stamp in
    let mark = m.cone_mark in
    let opcode = Compiled.opcode m.comp in
    let fanout_off = Compiled.fanout_off m.comp in
    let fanout = Compiled.fanout m.comp in
    mark.(site) <- stamp;
    let len = ref 0 in
    Array.iter
      (fun id ->
        if mark.(id) = stamp then begin
          m.cone_buf.(!len) <- id;
          incr len;
          for i = fanout_off.(id) to fanout_off.(id + 1) - 1 do
            let succ = fanout.(i) in
            if opcode.(succ) <> Compiled.op_dff then mark.(succ) <- stamp
          done
        end)
      (Compiled.topo m.comp);
    let arr = Array.sub m.cone_buf 0 !len in
    m.cones.(site) <- Some arr;
    arr

(* Faulty-machine value of a fanin: the per-fault scratch when the
   node sits inside the cone already visited this stamp, the good
   machine otherwise. *)
let[@inline] sel m stamp f =
  if m.faulty_stamp.(f) = stamp then m.faulty.(f) else m.good.(f)

let rec fold_and_sel m stamp (fa : int array) i hi ov_pin ov_word acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else sel m stamp fa.(i) in
    fold_and_sel m stamp fa (i + 1) hi ov_pin ov_word (Int64.logand acc v)

let rec fold_or_sel m stamp (fa : int array) i hi ov_pin ov_word acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else sel m stamp fa.(i) in
    fold_or_sel m stamp fa (i + 1) hi ov_pin ov_word (Int64.logor acc v)

let rec fold_xor_sel m stamp (fa : int array) i hi ov_pin ov_word acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else sel m stamp fa.(i) in
    fold_xor_sel m stamp fa (i + 1) hi ov_pin ov_word (Int64.logxor acc v)

(* Bitwise evaluation of one cone node against the stamped faulty
   scratch, with pin [ov_pin] (absolute index into the CSR fanin
   array, or -1) forced to [ov_word]. Allocation-free: no fanin-value
   array is materialised. *)
let eval_faulty m stamp id ov_pin ov_word =
  let fanin_off = Compiled.fanin_off m.comp in
  let fa = Compiled.fanin m.comp in
  let lo = fanin_off.(id) and hi = fanin_off.(id + 1) in
  let op = (Compiled.opcode m.comp).(id) in
  if op = Compiled.op_and then
    fold_and_sel m stamp fa lo hi ov_pin ov_word Int64.minus_one
  else if op = Compiled.op_nand then
    Int64.lognot (fold_and_sel m stamp fa lo hi ov_pin ov_word Int64.minus_one)
  else if op = Compiled.op_or then fold_or_sel m stamp fa lo hi ov_pin ov_word 0L
  else if op = Compiled.op_nor then
    Int64.lognot (fold_or_sel m stamp fa lo hi ov_pin ov_word 0L)
  else if op = Compiled.op_not then
    Int64.lognot (if lo = ov_pin then ov_word else sel m stamp fa.(lo))
  else if op = Compiled.op_buf || op = Compiled.op_output then
    if lo = ov_pin then ov_word else sel m stamp fa.(lo)
  else if op = Compiled.op_xor then
    fold_xor_sel m stamp fa lo hi ov_pin ov_word 0L
  else if op = Compiled.op_xnor then
    Int64.lognot (fold_xor_sel m stamp fa lo hi ov_pin ov_word 0L)
  else invalid_arg "Fault_simulation: source eval"

(* ---- wide (stride-bw) faulty evaluation for the Ppsfp engine ---- *)

let[@inline] selw m stamp bw f w =
  if m.faulty_stamp.(f) = stamp then m.faulty.((f * bw) + w)
  else m.good.((f * bw) + w)

let rec fold_and_selw m stamp bw (fa : int array) i hi ov_pin ov_word w acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else selw m stamp bw fa.(i) w in
    fold_and_selw m stamp bw fa (i + 1) hi ov_pin ov_word w (Int64.logand acc v)

let rec fold_or_selw m stamp bw (fa : int array) i hi ov_pin ov_word w acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else selw m stamp bw fa.(i) w in
    fold_or_selw m stamp bw fa (i + 1) hi ov_pin ov_word w (Int64.logor acc v)

let rec fold_xor_selw m stamp bw (fa : int array) i hi ov_pin ov_word w acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else selw m stamp bw fa.(i) w in
    fold_xor_selw m stamp bw fa (i + 1) hi ov_pin ov_word w (Int64.logxor acc v)

(* Word [w] of node [id] under the current batch stride, with the same
   pin-override convention as {!eval_faulty}. *)
let eval_faulty_word m stamp bw id ov_pin ov_word w =
  let fanin_off = Compiled.fanin_off m.comp in
  let fa = Compiled.fanin m.comp in
  let lo = fanin_off.(id) and hi = fanin_off.(id + 1) in
  let op = (Compiled.opcode m.comp).(id) in
  if op = Compiled.op_and then
    fold_and_selw m stamp bw fa lo hi ov_pin ov_word w Int64.minus_one
  else if op = Compiled.op_nand then
    Int64.lognot
      (fold_and_selw m stamp bw fa lo hi ov_pin ov_word w Int64.minus_one)
  else if op = Compiled.op_or then
    fold_or_selw m stamp bw fa lo hi ov_pin ov_word w 0L
  else if op = Compiled.op_nor then
    Int64.lognot (fold_or_selw m stamp bw fa lo hi ov_pin ov_word w 0L)
  else if op = Compiled.op_not then
    Int64.lognot
      (if lo = ov_pin then ov_word else selw m stamp bw fa.(lo) w)
  else if op = Compiled.op_buf || op = Compiled.op_output then
    if lo = ov_pin then ov_word else selw m stamp bw fa.(lo) w
  else if op = Compiled.op_xor then
    fold_xor_selw m stamp bw fa lo hi ov_pin ov_word w 0L
  else if op = Compiled.op_xnor then
    Int64.lognot (fold_xor_selw m stamp bw fa lo hi ov_pin ov_word w 0L)
  else invalid_arg "Fault_simulation: source eval"

(* Full-cone reference: resimulate the fault's entire output cone and
   XOR at the observables. Bit i of the result is set iff valid
   pattern i detects the fault. *)
let fault_detection_word_cone m mask (f : Fault.t) =
  let site = Fault.site_node f in
  let cone_nodes = cone m site in
  let stuck_word = if f.Fault.stuck then Int64.minus_one else 0L in
  m.stamp <- m.stamp + 1;
  let stamp = m.stamp in
  let fanin_off = Compiled.fanin_off m.comp in
  let det = ref 0L in
  (match f.Fault.site with
  | Fault.Output_line fid ->
    Array.iter
      (fun id ->
        let w =
          if fid = id then stuck_word
          else if Compiled.is_source m.comp id then m.good.(id)
          else eval_faulty m stamp id (-1) 0L
        in
        m.faulty.(id) <- w;
        m.faulty_stamp.(id) <- stamp)
      cone_nodes
  | Fault.Input_pin (gid, pin) ->
    Array.iter
      (fun id ->
        let w =
          if Compiled.is_source m.comp id then m.good.(id)
          else
            let ov_pin = if gid = id then fanin_off.(id) + pin else -1 in
            eval_faulty m stamp id ov_pin stuck_word
        in
        m.faulty.(id) <- w;
        m.faulty_stamp.(id) <- stamp)
      cone_nodes);
  Array.iter
    (fun ob ->
      if m.faulty_stamp.(ob) = stamp then
        det := Int64.logor !det (Int64.logxor m.faulty.(ob) m.good.(ob)))
    m.observables;
  Int64.logand !det mask

(* Evaluate gate [g] with the single node [nnode] flipped against the
   good machine: a fresh stamp means [sel] reads good values for every
   other fanin, so no scratch needs clearing. *)
let[@inline] eval_flip m g nnode =
  m.stamp <- m.stamp + 1;
  m.faulty.(nnode) <- Int64.lognot m.good.(nnode);
  m.faulty_stamp.(nnode) <- m.stamp;
  eval_faulty m m.stamp g (-1) 0L

(* Patterns on which a value flip at [site] reaches the stem of its
   fanout-free region. Inside an FFR every node has exactly one path
   to the stem, so lane-wise single-path sensitization composes
   exactly: sens(site) = sens(fanout) AND (flipping [site] flips the
   fanout's output). One climb memoizes the whole chain for the rest
   of the batch, which is what makes critical path tracing cheaper
   than cone resimulation — faults on the same FFR chain share it. *)
let sensitivity m site =
  let ffr_stem = Compiled.ffr_stem m.comp in
  let stem = ffr_stem.(site) in
  if site = stem then Int64.minus_one
  else if m.sens_stamp.(site) = m.batch then m.sens.(site)
  else begin
    Telemetry.Counter.inc m_ffr_traces;
    let fanout_off = Compiled.fanout_off m.comp in
    let fanout = Compiled.fanout m.comp in
    let buf = m.path_buf in
    let len = ref 0 in
    let cur = ref site in
    while !cur <> stem && m.sens_stamp.(!cur) <> m.batch do
      buf.(!len) <- !cur;
      incr len;
      cur := fanout.(fanout_off.(!cur))
    done;
    let acc = ref (if !cur = stem then Int64.minus_one else m.sens.(!cur)) in
    for i = !len - 1 downto 0 do
      let nd = buf.(i) in
      let g = fanout.(fanout_off.(nd)) in
      let local = Int64.logxor (eval_flip m g nd) m.good.(g) in
      acc := Int64.logand !acc local;
      m.sens.(nd) <- !acc;
      m.sens_stamp.(nd) <- m.batch
    done;
    m.sens.(site)
  end

exception Resolved

(* Patterns on which a value flip at [start] (a stem or dominator) is
   observed: event-driven forward propagation of the 64-pattern
   difference word through level-ordered buckets. Early exits: when
   every pending difference word has gone to zero, and when the event
   frontier collapses to a single node — necessarily a propagation
   dominator of [start] — whose own observability word finishes the
   job (recursively; per-batch memoized, so deep dominator chains are
   resolved once and shared by every stem behind them). Events on
   nodes that cannot reach an observable are never scheduled, which
   both prunes work and keeps the frontier-collapse test sound. *)
let rec obs_of m start =
  if m.obs_stamp.(start) = m.batch then m.obs_w.(start)
  else begin
    let levels = Compiled.levels m.comp in
    let fanout_off = Compiled.fanout_off m.comp in
    let fanout = Compiled.fanout m.comp in
    let opcode = Compiled.opcode m.comp in
    let observable = Compiled.observable m.comp in
    let reaches = Compiled.reaches_observable m.comp in
    let max_level = Compiled.max_level m.comp in
    m.stamp <- m.stamp + 1;
    let stamp = m.stamp in
    for l = 0 to max_level do
      m.bucket_len.(l) <- 0
    done;
    m.faulty.(start) <- Int64.lognot m.good.(start);
    m.faulty_stamp.(start) <- stamp;
    let det = ref (if observable.(start) then Int64.minus_one else 0L) in
    let pending = ref 0 in
    let schedule id =
      if m.sched.(id) <> stamp then begin
        m.sched.(id) <- stamp;
        let l = levels.(id) in
        m.buckets.(l).(m.bucket_len.(l)) <- id;
        m.bucket_len.(l) <- m.bucket_len.(l) + 1;
        incr pending
      end
    in
    for i = fanout_off.(start) to fanout_off.(start + 1) - 1 do
      let succ = fanout.(i) in
      if opcode.(succ) <> Compiled.op_dff && reaches.(succ) then schedule succ
    done;
    (try
       for l = levels.(start) + 1 to max_level do
         let bucket = m.buckets.(l) in
         for k = 0 to m.bucket_len.(l) - 1 do
           let id = bucket.(k) in
           decr pending;
           Telemetry.Counter.inc m_stem_events;
           let w = eval_faulty m stamp id (-1) 0L in
           m.faulty.(id) <- w;
           m.faulty_stamp.(id) <- stamp;
           let d = Int64.logxor w m.good.(id) in
           if d = 0L then begin
             if !pending = 0 then begin
               Telemetry.Counter.inc m_early_exits;
               raise_notrace Resolved
             end
           end
           else begin
             if observable.(id) then det := Int64.logor !det d;
             let lo = fanout_off.(id) and hi = fanout_off.(id + 1) in
             let has_succ = ref false in
             for i = lo to hi - 1 do
               let succ = fanout.(i) in
               if opcode.(succ) <> Compiled.op_dff && reaches.(succ) then
                 has_succ := true
             done;
             if !has_succ then
               if !pending = 0 then begin
                 (* the frontier collapsed onto [id]: every live lane's
                    difference is exactly [d], so [id]'s own (memoized)
                    observability finishes the propagation *)
                 if m.obs_stamp.(id) = m.batch then
                   Telemetry.Counter.inc m_dominator_hits;
                 det := Int64.logor !det (Int64.logand d (obs_of m id));
                 raise_notrace Resolved
               end
               else
                 for i = lo to hi - 1 do
                   let succ = fanout.(i) in
                   if opcode.(succ) <> Compiled.op_dff && reaches.(succ) then
                     schedule succ
                 done
           end
         done
       done
     with Resolved -> ());
    m.obs_w.(start) <- !det;
    m.obs_stamp.(start) <- m.batch;
    !det
  end

(* Critical-path-tracing detection: activation at the site, times
   sensitization to the FFR stem, times the stem's observability. For
   a pin fault the activation and pin-local sensitization collapse
   into one overridden evaluation of the gate (its output differs from
   good exactly on patterns where the stuck pin both differs from the
   driver and flips the gate). *)
let fault_detection_word_cpt m mask (f : Fault.t) =
  let ffr_stem = Compiled.ffr_stem m.comp in
  let reaches = Compiled.reaches_observable m.comp in
  let stuck_word = if f.Fault.stuck then Int64.minus_one else 0L in
  let det =
    match f.Fault.site with
    | Fault.Output_line id ->
      if not reaches.(id) then 0L
      else
        let act = Int64.logxor m.good.(id) stuck_word in
        if act = 0L then 0L
        else
          let s = Int64.logand act (sensitivity m id) in
          if s = 0L then 0L else Int64.logand s (obs_of m ffr_stem.(id))
    | Fault.Input_pin (gid, pin) ->
      if not reaches.(gid) then 0L
      else begin
        let fanin_off = Compiled.fanin_off m.comp in
        m.stamp <- m.stamp + 1;
        let w = eval_faulty m m.stamp gid (fanin_off.(gid) + pin) stuck_word in
        let d = Int64.logxor w m.good.(gid) in
        if d = 0L then 0L
        else
          let s = Int64.logand d (sensitivity m gid) in
          if s = 0L then 0L else Int64.logand s (obs_of m ffr_stem.(gid))
      end
  in
  Int64.logand det mask

(* Wide FFR sensitization: patterns (over all [bw] words) on which a
   value flip at [site] reaches the stem of its fanout-free region.
   Same exact single-path composition as {!sensitivity} — inside an
   FFR every node has exactly one fanout, so flipping [site] flips the
   stem exactly on the lane-wise AND of the per-gate flip words — but
   computed over [bw] words at once, memoized per batch in the wide
   [sens] array. Caller guarantees [site <> stem]. *)
let sensitivity_w m site stem =
  if m.sens_stamp.(site) <> m.batch then begin
    Telemetry.Counter.inc m_ffr_traces;
    let bw = m.bw in
    let fanout_off = Compiled.fanout_off m.comp in
    let fanout = Compiled.fanout m.comp in
    let buf = m.path_buf in
    let len = ref 0 in
    let cur = ref site in
    while !cur <> stem && m.sens_stamp.(!cur) <> m.batch do
      buf.(!len) <- !cur;
      incr len;
      cur := fanout.(fanout_off.(!cur))
    done;
    for i = !len - 1 downto 0 do
      let nd = buf.(i) in
      let g = fanout.(fanout_off.(nd)) in
      m.stamp <- m.stamp + 1;
      for w = 0 to bw - 1 do
        m.faulty.((nd * bw) + w) <- Int64.lognot m.good.((nd * bw) + w)
      done;
      m.faulty_stamp.(nd) <- m.stamp;
      for w = 0 to bw - 1 do
        let local =
          Int64.logxor
            (eval_faulty_word m m.stamp bw g (-1) 0L w)
            m.good.((g * bw) + w)
        in
        let up =
          if g = stem then Int64.minus_one else m.sens.((g * bw) + w)
        in
        m.sens.((nd * bw) + w) <- Int64.logand up local
      done;
      m.sens_stamp.(nd) <- m.batch
    done
  end

(* Word-loop evaluation of one propagation event against the stamped
   faulty scratch, specialised like [Compiled.eval_words_wide]: the
   faulty-or-good source test per fanin cannot change mid-node, so it
   is hoisted out of the word loop, and the dominant 1- and 2-fanin
   shapes skip the generic per-word fold. Writes the node's [bw]
   faulty words (the caller stamps it) and returns whether any word
   differs from the good machine. *)
let eval_event_words m stamp bw id =
  let fanin_off = Compiled.fanin_off m.comp in
  let fa = Compiled.fanin m.comp in
  let lo = fanin_off.(id) and hi = fanin_off.(id + 1) in
  let op = (Compiled.opcode m.comp).(id) in
  let faulty = m.faulty and good = m.good in
  let dst = id * bw in
  (if hi - lo = 2 && op >= Compiled.op_and then begin
     let a = fa.(lo) and b = fa.(lo + 1) in
     let sa = if m.faulty_stamp.(a) = stamp then faulty else good in
     let sb = if m.faulty_stamp.(b) = stamp then faulty else good in
     let ab = a * bw and bb = b * bw in
     if op = Compiled.op_nand then
       for w = 0 to bw - 1 do
         faulty.(dst + w) <-
           Int64.lognot (Int64.logand sa.(ab + w) sb.(bb + w))
       done
     else if op = Compiled.op_nor then
       for w = 0 to bw - 1 do
         faulty.(dst + w) <-
           Int64.lognot (Int64.logor sa.(ab + w) sb.(bb + w))
       done
     else if op = Compiled.op_and then
       for w = 0 to bw - 1 do
         faulty.(dst + w) <- Int64.logand sa.(ab + w) sb.(bb + w)
       done
     else if op = Compiled.op_or then
       for w = 0 to bw - 1 do
         faulty.(dst + w) <- Int64.logor sa.(ab + w) sb.(bb + w)
       done
     else if op = Compiled.op_xor then
       for w = 0 to bw - 1 do
         faulty.(dst + w) <- Int64.logxor sa.(ab + w) sb.(bb + w)
       done
     else
       for w = 0 to bw - 1 do
         faulty.(dst + w) <-
           Int64.lognot (Int64.logxor sa.(ab + w) sb.(bb + w))
       done
   end
   else if hi - lo = 1 && op <> Compiled.op_dff then begin
     let a = fa.(lo) in
     let sa = if m.faulty_stamp.(a) = stamp then faulty else good in
     let ab = a * bw in
     if op = Compiled.op_not then
       for w = 0 to bw - 1 do
         faulty.(dst + w) <- Int64.lognot sa.(ab + w)
       done
     else if op = Compiled.op_buf || op = Compiled.op_output then
       for w = 0 to bw - 1 do
         faulty.(dst + w) <- sa.(ab + w)
       done
     else
       for w = 0 to bw - 1 do
         faulty.(dst + w) <- eval_faulty_word m stamp bw id (-1) 0L w
       done
   end
   else
     for w = 0 to bw - 1 do
       faulty.(dst + w) <- eval_faulty_word m stamp bw id (-1) 0L w
     done);
  let d_any = ref false in
  for w = 0 to bw - 1 do
    if faulty.(dst + w) <> good.(dst + w) then d_any := true
  done;
  !d_any

(* Wide stem observability: patterns (over all [bw] words) on which a
   value flip at [start] is observed. The same event-driven level
   propagation, zero-difference early exit, reachability pruning and
   frontier-collapse dominator recursion as {!obs_of}, over [bw] words
   at once; memoized per batch in the wide [obs_w] array, so every
   fault behind [start] — and, through the dominator recursion, every
   stem behind a shared reconvergence point — pays for the propagation
   once. *)
let rec obs_words m start =
  if m.obs_stamp.(start) <> m.batch then begin
    let bw = m.bw in
    let levels = Compiled.levels m.comp in
    let fanout_off = Compiled.fanout_off m.comp in
    let fanout = Compiled.fanout m.comp in
    let opcode = Compiled.opcode m.comp in
    let observable = Compiled.observable m.comp in
    let reaches = Compiled.reaches_observable m.comp in
    let max_level = Compiled.max_level m.comp in
    m.stamp <- m.stamp + 1;
    let stamp = m.stamp in
    for l = 0 to max_level do
      m.bucket_len.(l) <- 0
    done;
    for w = 0 to bw - 1 do
      m.faulty.((start * bw) + w) <- Int64.lognot m.good.((start * bw) + w);
      m.obs_w.((start * bw) + w) <-
        (if observable.(start) then Int64.minus_one else 0L)
    done;
    m.faulty_stamp.(start) <- stamp;
    let pending = ref 0 in
    let schedule id =
      if m.sched.(id) <> stamp then begin
        m.sched.(id) <- stamp;
        let l = levels.(id) in
        m.buckets.(l).(m.bucket_len.(l)) <- id;
        m.bucket_len.(l) <- m.bucket_len.(l) + 1;
        incr pending
      end
    in
    for i = fanout_off.(start) to fanout_off.(start + 1) - 1 do
      let succ = fanout.(i) in
      if opcode.(succ) <> Compiled.op_dff && reaches.(succ) then schedule succ
    done;
    (try
       for l = levels.(start) + 1 to max_level do
         let bucket = m.buckets.(l) in
         for k = 0 to m.bucket_len.(l) - 1 do
           let id = bucket.(k) in
           decr pending;
           Telemetry.Counter.inc m_ppsfp_events;
           let d_any = eval_event_words m stamp bw id in
           m.faulty_stamp.(id) <- stamp;
           if not d_any then begin
             if !pending = 0 then begin
               Telemetry.Counter.inc m_early_exits;
               raise_notrace Resolved
             end
           end
           else begin
             if observable.(id) then
               for w = 0 to bw - 1 do
                 m.obs_w.((start * bw) + w) <-
                   Int64.logor
                     m.obs_w.((start * bw) + w)
                     (Int64.logxor
                        m.faulty.((id * bw) + w)
                        m.good.((id * bw) + w))
               done;
             let lo = fanout_off.(id) and hi = fanout_off.(id + 1) in
             if !pending = 0 then begin
               let has_succ = ref false in
               for i = lo to hi - 1 do
                 let succ = fanout.(i) in
                 if opcode.(succ) <> Compiled.op_dff && reaches.(succ) then
                   has_succ := true
               done;
               if !has_succ then begin
                 (* frontier collapsed onto [id]: each lane's difference
                    is exactly its bit of [d], so [id]'s own memoized
                    observability finishes the propagation *)
                 if m.obs_stamp.(id) = m.batch then
                   Telemetry.Counter.inc m_dominator_hits;
                 let d =
                   Array.init bw (fun w ->
                       Int64.logxor
                         m.faulty.((id * bw) + w)
                         m.good.((id * bw) + w))
                 in
                 obs_words m id;
                 for w = 0 to bw - 1 do
                   m.obs_w.((start * bw) + w) <-
                     Int64.logor
                       m.obs_w.((start * bw) + w)
                       (Int64.logand d.(w) m.obs_w.((id * bw) + w))
                 done;
                 raise_notrace Resolved
               end
             end
             else
               for i = lo to hi - 1 do
                 let succ = fanout.(i) in
                 if opcode.(succ) <> Compiled.op_dff && reaches.(succ) then
                   schedule succ
               done
           end
         done
       done
     with Resolved -> ());
    m.obs_stamp.(start) <- m.batch
  end

(* PPSFP detection: the Cpt factorization — activation at the site,
   times single-path sensitization to the FFR stem, times the stem's
   observability — evaluated over all [bw] words of the batch at once.
   Each factor is exact per lane (an FFR has a unique site-to-stem
   path; the stem flip's Boolean difference is fault-independent), so
   the product is bit-identical to the Cone reference, while the
   expensive event-driven propagation runs once per *stem* per batch
   instead of once per fault. Writes the [bw] detection words (bit [v]
   of word [w] = pattern [w*64+v] detects) at [det.(off ..)]. *)
let fault_detection_words_ppsfp m (f : Fault.t) (det : int64 array) off =
  let bw = m.bw in
  for w = 0 to bw - 1 do
    det.(off + w) <- 0L
  done;
  let reaches = Compiled.reaches_observable m.comp in
  let site = Fault.site_node f in
  if reaches.(site) then begin
    let stuck_word = if f.Fault.stuck then Int64.minus_one else 0L in
    (* activation: patterns where the site's value differs from good *)
    let any = ref false in
    (match f.Fault.site with
    | Fault.Output_line id ->
      for w = 0 to bw - 1 do
        let d = Int64.logxor stuck_word m.good.((id * bw) + w) in
        det.(off + w) <- d;
        if d <> 0L then any := true
      done
    | Fault.Input_pin (gid, pin) ->
      let ov = (Compiled.fanin_off m.comp).(gid) + pin in
      m.stamp <- m.stamp + 1;
      for w = 0 to bw - 1 do
        let v = eval_faulty_word m m.stamp bw gid ov stuck_word w in
        let d = Int64.logxor v m.good.((gid * bw) + w) in
        det.(off + w) <- d;
        if d <> 0L then any := true
      done);
    if !any then begin
      let stem = (Compiled.ffr_stem m.comp).(site) in
      if site <> stem then begin
        sensitivity_w m site stem;
        any := false;
        for w = 0 to bw - 1 do
          let d = Int64.logand det.(off + w) m.sens.((site * bw) + w) in
          det.(off + w) <- d;
          if d <> 0L then any := true
        done
      end;
      if !any then begin
        obs_words m stem;
        for w = 0 to bw - 1 do
          det.(off + w) <-
            Int64.logand det.(off + w) m.obs_w.((stem * bw) + w)
        done
      end
    end;
    for w = 0 to bw - 1 do
      det.(off + w) <- Int64.logand det.(off + w) m.valid.(w)
    done
  end

(* Detection words of [f] against the currently loaded batch, written
   at [det.(off .. off + bw - 1)]. *)
let fault_detection_into m (f : Fault.t) det off =
  Telemetry.Counter.add m_words m.bw;
  match m.engine with
  | Cone -> det.(off) <- fault_detection_word_cone m m.valid.(0) f
  | Cpt -> det.(off) <- fault_detection_word_cpt m m.valid.(0) f
  | Ppsfp -> fault_detection_words_ppsfp m f det off

let rec batches n = function
  | [] -> []
  | vectors ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | v :: rest -> take (k - 1) (v :: acc) rest
    in
    let batch, rest = take n [] vectors in
    batch :: batches n rest

(* Callers that already hold a machine pass it through; the circuit
   must be the very value the machine was compiled from (the compiled
   form is a snapshot, so a physically different circuit — even a
   structurally equal one — would silently desynchronise). *)
let resolve_machine ?machine c =
  match machine with
  | None -> make c
  | Some m ->
    if Compiled.circuit m.comp != c then
      invalid_arg "Fault_simulation: machine compiled from a different circuit";
    m

let h_pattern = Telemetry.Histogram.make "atpg.fault_sim.pattern_s"
let h_par_batch = Telemetry.Histogram.make "atpg.fault_sim.par_batch_s"

(* ---- domain-sharded detection ---- *)

(* Fault indices grouped by the FFR stem of their site (ties broken by
   original position). Faults behind one stem share the per-batch
   sensitization climb and the stem's observability word (Cpt) or
   overlapping propagation cones (Ppsfp), so keeping a stem's faults
   in consecutive chunks makes that locality land inside one domain
   instead of being recomputed by several. *)
let stem_order m fault_arr =
  let ffr_stem = Compiled.ffr_stem m.comp in
  let nf = Array.length fault_arr in
  let order = Array.init nf (fun i -> i) in
  let stem_of i = ffr_stem.(Fault.site_node fault_arr.(i)) in
  Array.sort
    (fun a b ->
      let c = compare (stem_of a) (stem_of b) in
      if c <> 0 then c else compare a b)
    order;
  order

(* Detection words for every fault of [fault_arr] against the batch
   currently loaded in [m], fanned out over [pool]. Participant 0 (the
   caller) evaluates on [m] itself; participant [p] on [workers.(p-1)],
   a {!fork_machine} replica whose scratch is domain-private. Each
   fault's [bw] words land in [det] at [bw] times the fault's original
   index, so the caller's in-order merge is bit-identical to the
   sequential walk no matter how chunks were scheduled or stolen. *)
let detection_words_sharded pool m ~workers ~order fault_arr det =
  let bw = m.bw in
  Array.iter
    (fun wm ->
      wm.batch <- m.batch;
      wm.bw <- bw)
    workers;
  Par.Domain_pool.parallel_for_p pool ~n:(Array.length fault_arr)
    (fun ~participant i ->
      let mm = if participant = 0 then m else workers.(participant - 1) in
      let fi = order.(i) in
      fault_detection_into mm fault_arr.(fi) det (fi * bw))

(* Below this node count a sharded batch loses more to fork-machine
   setup and chunk handoff than the per-fault work is worth (BENCH
   showed d2/d4 speedups < 1 on s344/s1196); the decision is recorded
   in the [atpg.fault_sim.par_bypass] counter. [~par_threshold:0]
   forces sharding (tests, calibration). *)
let default_par_threshold = 1024

let make_workers ?pool ?(par_threshold = default_par_threshold) m =
  match pool with
  | Some p when Par.Domain_pool.size p > 1 ->
    if Compiled.node_count m.comp >= par_threshold then
      Array.init (Par.Domain_pool.size p - 1) (fun _ -> fork_machine m)
    else begin
      Telemetry.Counter.inc m_par_bypass;
      [||]
    end
  | _ -> [||]

(* Indices of the faults still worth simulating. With [drop] this
   shrinks batch over batch (the batch-scoped dropped-fault set);
   without it every batch sees the full list. *)
let live_indices ~drop det_flags nf =
  if not drop then Array.init nf (fun i -> i)
  else begin
    let l = ref [] in
    for i = nf - 1 downto 0 do
      if not det_flags.(i) then l := i :: !l
    done;
    Array.of_list !l
  end

let split ?machine ?pool ?par_threshold ?(drop = true) c ~faults ~vectors =
  if vectors = [] then ([], faults)
  else begin
    let m = resolve_machine ?machine c in
    let workers = make_workers ?pool ?par_threshold m in
    let fault_all = Array.of_list faults in
    let nf_all = Array.length fault_all in
    let det_flags = Array.make nf_all false in
    List.iter
      (fun batch ->
        let live = live_indices ~drop det_flags nf_all in
        if drop then
          Telemetry.Counter.add m_dropped (nf_all - Array.length live);
        let nl = Array.length live in
        if nl > 0 then begin
          let t0 = if Telemetry.enabled () then Telemetry.now () else 0.0 in
          load_batch m batch;
          let bw = m.bw in
          let fault_arr = Array.map (fun i -> fault_all.(i)) live in
          let det_w = Array.make (nl * bw) 0L in
          (match pool with
          | Some p when Array.length workers > 0 ->
            let order = stem_order m fault_arr in
            detection_words_sharded p m ~workers ~order fault_arr det_w
          | _ ->
            Array.iteri
              (fun k f -> fault_detection_into m f det_w (k * bw))
              fault_arr);
          Array.iteri
            (fun k i ->
              let any = ref false in
              for w = 0 to bw - 1 do
                if det_w.((k * bw) + w) <> 0L then any := true
              done;
              if !any then det_flags.(i) <- true)
            live;
          (* a batch is up to 64*W patterns simulated in one pass;
             report the amortised per-pattern cost, which is the unit
             the paper's tables are normalised to *)
          if Telemetry.enabled () then begin
            let dt = Telemetry.now () -. t0 in
            Telemetry.Histogram.observe h_pattern
              (dt /. float_of_int (max 1 (List.length batch)));
            if Array.length workers > 0 then
              Telemetry.Histogram.observe h_par_batch dt
          end
        end)
      (batches (word_bits * m.width) vectors);
    let det = ref [] and undet = ref [] in
    for i = nf_all - 1 downto 0 do
      if det_flags.(i) then det := fault_all.(i) :: !det
      else undet := fault_all.(i) :: !undet
    done;
    (!det, !undet)
  end

let coverage ?machine ?pool ?par_threshold ?drop c ~faults ~vectors =
  match faults with
  | [] -> 1.0
  | _ ->
    let detected, _ =
      split ?machine ?pool ?par_threshold ?drop c ~faults ~vectors
    in
    float_of_int (List.length detected) /. float_of_int (List.length faults)

let effective_subset ?machine ?pool ?par_threshold c ~faults ~vectors =
  (* Reverse-order static compaction. The serial walk (simulate one
     vector, drop detected faults, repeat) is quadratic; instead the
     batches are walked from last to first with 64*W-way pattern
     parallelism and the greedy selection runs on bitmaps: keep a
     vector iff it detects a fault no later-kept vector detects.
     Walking batches in reverse lets covered faults drop out of every
     earlier batch's simulation (the keep decision only ever consults
     still-uncovered faults, so the result is identical to the full
     fault x vector matrix). *)
  let vec_arr = Array.of_list vectors in
  let n_vec = Array.length vec_arr in
  if n_vec = 0 then []
  else begin
    let m = resolve_machine ?machine c in
    let workers = make_workers ?pool ?par_threshold m in
    let fault_all = Array.of_list faults in
    let nf_all = Array.length fault_all in
    let covered = Array.make nf_all false in
    let bsize = word_bits * m.width in
    let n_batches = (n_vec + bsize - 1) / bsize in
    let keep = ref [] in
    for b = n_batches - 1 downto 0 do
      let lo = b * bsize in
      let cnt = min bsize (n_vec - lo) in
      let live = live_indices ~drop:true covered nf_all in
      Telemetry.Counter.add m_dropped (nf_all - Array.length live);
      let nl = Array.length live in
      if nl > 0 then begin
        load_batch m (Array.to_list (Array.sub vec_arr lo cnt));
        let bw = m.bw in
        let fault_arr = Array.map (fun i -> fault_all.(i)) live in
        let det_w = Array.make (nl * bw) 0L in
        (match pool with
        | Some p when Array.length workers > 0 ->
          let order = stem_order m fault_arr in
          detection_words_sharded p m ~workers ~order fault_arr det_w
        | _ ->
          Array.iteri
            (fun k f -> fault_detection_into m f det_w (k * bw))
            fault_arr);
        for v = cnt - 1 downto 0 do
          let w = v lsr 6 and bit = v land 63 in
          let test = Int64.shift_left 1L bit in
          let newly = ref false in
          for k = 0 to nl - 1 do
            let i = live.(k) in
            if
              (not covered.(i))
              && Int64.logand det_w.((k * bw) + w) test <> 0L
            then begin
              covered.(i) <- true;
              newly := true
            end
          done;
          if !newly then keep := vec_arr.(lo + v) :: !keep
        done
      end
    done;
    !keep
  end

let detection_matrix ?machine ?pool ?par_threshold c ~faults ~vectors =
  let vec_arr = Array.of_list vectors in
  let n_vec = Array.length vec_arr in
  let fault_arr = Array.of_list faults in
  let nf = Array.length fault_arr in
  let n_words = (n_vec + word_bits - 1) / word_bits in
  let out = Array.make_matrix nf (max n_words 1) 0L in
  if n_vec = 0 || nf = 0 then out
  else begin
    let m = resolve_machine ?machine c in
    let workers = make_workers ?pool ?par_threshold m in
    let order =
      match pool with
      | Some _ when Array.length workers > 0 -> stem_order m fault_arr
      | _ -> [||]
    in
    let bsize = word_bits * m.width in
    let n_batches = (n_vec + bsize - 1) / bsize in
    for b = 0 to n_batches - 1 do
      let lo = b * bsize in
      let cnt = min bsize (n_vec - lo) in
      load_batch m (Array.to_list (Array.sub vec_arr lo cnt));
      let bw = m.bw in
      let det_w = Array.make (nf * bw) 0L in
      (match pool with
      | Some p when Array.length workers > 0 ->
        detection_words_sharded p m ~workers ~order fault_arr det_w
      | _ ->
        Array.iteri
          (fun k f -> fault_detection_into m f det_w (k * bw))
          fault_arr);
      (* batch sizes are multiples of 64, so [lo] is word-aligned *)
      let w0 = lo lsr 6 in
      for k = 0 to nf - 1 do
        for w = 0 to bw - 1 do
          out.(k).(w0 + w) <- det_w.((k * bw) + w)
        done
      done
    done;
    out
  end
