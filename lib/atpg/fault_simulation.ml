open Netlist

let word_bits = 64

let m_batches = Telemetry.Counter.make "atpg.fault_sim.batches"
let m_words = Telemetry.Counter.make "atpg.fault_sim.detection_words"

(* Bitwise gate evaluation over packed patterns. *)
let eval_word kind (vs : int64 array) =
  let fold op seed =
    let acc = ref seed in
    Array.iter (fun v -> acc := op !acc v) vs;
    !acc
  in
  match kind with
  | Gate.Input | Gate.Dff -> invalid_arg "Fault_simulation: source eval"
  | Gate.Output | Gate.Buf -> vs.(0)
  | Gate.Not -> Int64.lognot vs.(0)
  | Gate.And -> fold Int64.logand Int64.minus_one
  | Gate.Nand -> Int64.lognot (fold Int64.logand Int64.minus_one)
  | Gate.Or -> fold Int64.logor 0L
  | Gate.Nor -> Int64.lognot (fold Int64.logor 0L)
  | Gate.Xor -> fold Int64.logxor 0L
  | Gate.Xnor -> Int64.lognot (fold Int64.logxor 0L)

type machine = {
  circuit : Circuit.t;
  good : int64 array; (* node id -> packed good values *)
  observables : int array;
  cones : (int, int array) Hashtbl.t; (* site node -> topo-sorted cone *)
  (* stamped per-fault scratch: faulty value of a node is valid only
     when its stamp matches the machine's current stamp *)
  faulty : int64 array;
  faulty_stamp : int array;
  mutable stamp : int;
}

let observables c =
  let dpins =
    Array.to_list (Circuit.dffs c)
    |> List.map (fun id -> (Circuit.node c id).Circuit.fanins.(0))
  in
  Array.of_list (Array.to_list (Circuit.outputs c) @ dpins)

let make c =
  let n = Circuit.node_count c in
  {
    circuit = c;
    good = Array.make n 0L;
    observables = observables c;
    cones = Hashtbl.create 256;
    faulty = Array.make n 0L;
    faulty_stamp = Array.make n 0;
    stamp = 0;
  }

(* Pack up to 64 vectors (positional over sources) into the good
   machine and simulate; returns the valid-pattern mask. *)
let load_good m vectors =
  Telemetry.Counter.inc m_batches;
  let c = m.circuit in
  let srcs = Circuit.sources c in
  let count = List.length vectors in
  assert (count > 0 && count <= word_bits);
  Array.iteri
    (fun pos id ->
      let w = ref 0L in
      List.iteri
        (fun vi vec ->
          if vec.(pos) then w := Int64.logor !w (Int64.shift_left 1L vi))
        vectors;
      m.good.(id) <- !w)
    srcs;
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      if not (Gate.is_source nd.kind) then
        m.good.(id) <- eval_word nd.kind (Array.map (fun f -> m.good.(f)) nd.fanins))
    (Circuit.topo_order c);
  if count = word_bits then Int64.minus_one
  else Int64.sub (Int64.shift_left 1L count) 1L

(* Structural fanout cone of a node, in topological order. *)
let cone m site =
  match Hashtbl.find_opt m.cones site with
  | Some arr -> arr
  | None ->
    let c = m.circuit in
    let in_cone = Array.make (Circuit.node_count c) false in
    in_cone.(site) <- true;
    let members = ref [] in
    Array.iter
      (fun id ->
        if in_cone.(id) then begin
          members := id :: !members;
          Array.iter
            (fun succ ->
              if not (Gate.equal_kind (Circuit.node c succ).Circuit.kind Gate.Dff)
              then in_cone.(succ) <- true)
            (Circuit.node c id).Circuit.fanouts
        end)
      (Circuit.topo_order c);
    let arr = Array.of_list (List.rev !members) in
    Hashtbl.replace m.cones site arr;
    arr

(* Detection word of one fault against the loaded good machine: bit i
   set iff valid pattern i detects the fault. *)
let fault_detection_word m mask (f : Fault.t) =
  Telemetry.Counter.inc m_words;
  let c = m.circuit in
  let site = Fault.site_node f in
  let cone_nodes = cone m site in
  let stuck_word = if f.Fault.stuck then Int64.minus_one else 0L in
  m.stamp <- m.stamp + 1;
  let stamp = m.stamp in
  let value id =
    if m.faulty_stamp.(id) = stamp then m.faulty.(id) else m.good.(id)
  in
  let det = ref 0L in
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      let w =
        match f.Fault.site with
        | Fault.Output_line fid when fid = id -> stuck_word
        | Fault.Output_line _ | Fault.Input_pin _ ->
          if Gate.is_source nd.kind then m.good.(id)
          else begin
            let vs = Array.map (fun fanin -> value fanin) nd.fanins in
            (match f.Fault.site with
            | Fault.Input_pin (gid, pin) when gid = id -> vs.(pin) <- stuck_word
            | Fault.Input_pin _ | Fault.Output_line _ -> ());
            eval_word nd.kind vs
          end
      in
      m.faulty.(id) <- w;
      m.faulty_stamp.(id) <- stamp)
    cone_nodes;
  Array.iter
    (fun ob ->
      if m.faulty_stamp.(ob) = stamp then
        det := Int64.logor !det (Int64.logxor m.faulty.(ob) m.good.(ob)))
    m.observables;
  Int64.logand !det mask

let fault_detected m mask f = fault_detection_word m mask f <> 0L

let rec batches n = function
  | [] -> []
  | vectors ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | v :: rest -> take (k - 1) (v :: acc) rest
    in
    let batch, rest = take n [] vectors in
    batch :: batches n rest

let split c ~faults ~vectors =
  if vectors = [] then ([], faults)
  else begin
    let m = make c in
    let remaining = ref faults in
    let detected = ref [] in
    List.iter
      (fun batch ->
        if !remaining <> [] then begin
          let mask = load_good m batch in
          let det, undet =
            List.partition (fun f -> fault_detected m mask f) !remaining
          in
          detected := List.rev_append det !detected;
          remaining := undet
        end)
      (batches word_bits vectors);
    (List.rev !detected, !remaining)
  end

let coverage c ~faults ~vectors =
  match faults with
  | [] -> 1.0
  | _ ->
    let detected, _ = split c ~faults ~vectors in
    float_of_int (List.length detected) /. float_of_int (List.length faults)

let effective_subset c ~faults ~vectors =
  (* Reverse-order static compaction. The serial walk (simulate one
     vector, drop detected faults, repeat) is quadratic; instead the
     full fault x vector detection matrix is computed with 64-way
     pattern parallelism, then the reverse greedy selection runs on
     bitmaps: keep a vector iff it detects a fault no later-kept vector
     detects. *)
  let vec_arr = Array.of_list vectors in
  let n_vec = Array.length vec_arr in
  if n_vec = 0 then []
  else begin
    let m = make c in
    let n_words = (n_vec + word_bits - 1) / word_bits in
    let flist = Array.of_list faults in
    let detection = Array.make_matrix (Array.length flist) n_words 0L in
    for w = 0 to n_words - 1 do
      let batch =
        Array.to_list
          (Array.sub vec_arr (w * word_bits)
             (min word_bits (n_vec - (w * word_bits))))
      in
      let mask = load_good m batch in
      Array.iteri
        (fun fi f -> detection.(fi).(w) <- fault_detection_word m mask f)
        flist
    done;
    let covered = Array.make (Array.length flist) false in
    let keep = ref [] in
    for v = n_vec - 1 downto 0 do
      let word = v / word_bits and bit = v mod word_bits in
      let test = Int64.shift_left 1L bit in
      let newly = ref false in
      Array.iteri
        (fun fi det ->
          if (not covered.(fi)) && Int64.logand det.(word) test <> 0L then begin
            covered.(fi) <- true;
            newly := true
          end)
        detection;
      if !newly then keep := vec_arr.(v) :: !keep
    done;
    !keep
  end
