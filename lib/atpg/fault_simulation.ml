open Netlist

let word_bits = 64

let m_batches = Telemetry.Counter.make "atpg.fault_sim.batches"
let m_words = Telemetry.Counter.make "atpg.fault_sim.detection_words"

type machine = {
  comp : Compiled.t;
  good : int64 array; (* node id -> packed good values *)
  observables : int array;
  cones : int array option array; (* site node -> topo-sorted cone *)
  (* stamped per-fault scratch: faulty value of a node is valid only
     when its stamp matches the machine's current stamp *)
  faulty : int64 array;
  faulty_stamp : int array;
  mutable stamp : int;
  (* stamped scratch for cone construction (no per-site allocation
     until the cone is interned) *)
  cone_mark : int array;
  mutable cone_stamp : int;
  cone_buf : int array;
}

let observables c =
  let dpins =
    Array.to_list (Circuit.dffs c)
    |> List.map (fun id -> (Circuit.node c id).Circuit.fanins.(0))
  in
  Array.of_list (Array.to_list (Circuit.outputs c) @ dpins)

let make c =
  let n = Circuit.node_count c in
  {
    comp = Compiled.of_circuit c;
    good = Array.make n 0L;
    observables = observables c;
    cones = Array.make n None;
    faulty = Array.make n 0L;
    faulty_stamp = Array.make n 0;
    stamp = 0;
    cone_mark = Array.make n 0;
    cone_stamp = 0;
    cone_buf = Array.make n 0;
  }

(* Pack up to 64 vectors (positional over sources) into the good
   machine and simulate; returns the valid-pattern mask. *)
let load_good m vectors =
  Telemetry.Counter.inc m_batches;
  let c = Compiled.circuit m.comp in
  let srcs = Circuit.sources c in
  let count = List.length vectors in
  assert (count > 0 && count <= word_bits);
  Array.iteri
    (fun pos id ->
      let w = ref 0L in
      List.iteri
        (fun vi vec ->
          if vec.(pos) then w := Int64.logor !w (Int64.shift_left 1L vi))
        vectors;
      m.good.(id) <- !w)
    srcs;
  Compiled.eval_words m.comp m.good;
  if count = word_bits then Int64.minus_one
  else Int64.sub (Int64.shift_left 1L count) 1L

(* Structural fanout cone of a node, in topological order. Cones are
   interned per site in a dense array (the former per-site Hashtbl);
   construction reuses machine-level stamped scratch. *)
let cone m site =
  match m.cones.(site) with
  | Some arr -> arr
  | None ->
    m.cone_stamp <- m.cone_stamp + 1;
    let stamp = m.cone_stamp in
    let mark = m.cone_mark in
    let opcode = Compiled.opcode m.comp in
    let fanout_off = Compiled.fanout_off m.comp in
    let fanout = Compiled.fanout m.comp in
    mark.(site) <- stamp;
    let len = ref 0 in
    Array.iter
      (fun id ->
        if mark.(id) = stamp then begin
          m.cone_buf.(!len) <- id;
          incr len;
          for i = fanout_off.(id) to fanout_off.(id + 1) - 1 do
            let succ = fanout.(i) in
            if opcode.(succ) <> Compiled.op_dff then mark.(succ) <- stamp
          done
        end)
      (Compiled.topo m.comp);
    let arr = Array.sub m.cone_buf 0 !len in
    m.cones.(site) <- Some arr;
    arr

(* Faulty-machine value of a fanin: the per-fault scratch when the
   node sits inside the cone already visited this stamp, the good
   machine otherwise. *)
let[@inline] sel m stamp f =
  if m.faulty_stamp.(f) = stamp then m.faulty.(f) else m.good.(f)

let rec fold_and_sel m stamp (fa : int array) i hi ov_pin ov_word acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else sel m stamp fa.(i) in
    fold_and_sel m stamp fa (i + 1) hi ov_pin ov_word (Int64.logand acc v)

let rec fold_or_sel m stamp (fa : int array) i hi ov_pin ov_word acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else sel m stamp fa.(i) in
    fold_or_sel m stamp fa (i + 1) hi ov_pin ov_word (Int64.logor acc v)

let rec fold_xor_sel m stamp (fa : int array) i hi ov_pin ov_word acc =
  if i >= hi then acc
  else
    let v = if i = ov_pin then ov_word else sel m stamp fa.(i) in
    fold_xor_sel m stamp fa (i + 1) hi ov_pin ov_word (Int64.logxor acc v)

(* Bitwise evaluation of one cone node against the stamped faulty
   scratch, with pin [ov_pin] (absolute index into the CSR fanin
   array, or -1) forced to [ov_word]. Allocation-free: no fanin-value
   array is materialised. *)
let eval_faulty m stamp id ov_pin ov_word =
  let fanin_off = Compiled.fanin_off m.comp in
  let fa = Compiled.fanin m.comp in
  let lo = fanin_off.(id) and hi = fanin_off.(id + 1) in
  let op = (Compiled.opcode m.comp).(id) in
  if op = Compiled.op_and then
    fold_and_sel m stamp fa lo hi ov_pin ov_word Int64.minus_one
  else if op = Compiled.op_nand then
    Int64.lognot (fold_and_sel m stamp fa lo hi ov_pin ov_word Int64.minus_one)
  else if op = Compiled.op_or then fold_or_sel m stamp fa lo hi ov_pin ov_word 0L
  else if op = Compiled.op_nor then
    Int64.lognot (fold_or_sel m stamp fa lo hi ov_pin ov_word 0L)
  else if op = Compiled.op_not then
    Int64.lognot (if lo = ov_pin then ov_word else sel m stamp fa.(lo))
  else if op = Compiled.op_buf || op = Compiled.op_output then
    if lo = ov_pin then ov_word else sel m stamp fa.(lo)
  else if op = Compiled.op_xor then
    fold_xor_sel m stamp fa lo hi ov_pin ov_word 0L
  else if op = Compiled.op_xnor then
    Int64.lognot (fold_xor_sel m stamp fa lo hi ov_pin ov_word 0L)
  else invalid_arg "Fault_simulation: source eval"

(* Detection word of one fault against the loaded good machine: bit i
   set iff valid pattern i detects the fault. *)
let fault_detection_word m mask (f : Fault.t) =
  Telemetry.Counter.inc m_words;
  let site = Fault.site_node f in
  let cone_nodes = cone m site in
  let stuck_word = if f.Fault.stuck then Int64.minus_one else 0L in
  m.stamp <- m.stamp + 1;
  let stamp = m.stamp in
  let fanin_off = Compiled.fanin_off m.comp in
  let det = ref 0L in
  (match f.Fault.site with
  | Fault.Output_line fid ->
    Array.iter
      (fun id ->
        let w =
          if fid = id then stuck_word
          else if Compiled.is_source m.comp id then m.good.(id)
          else eval_faulty m stamp id (-1) 0L
        in
        m.faulty.(id) <- w;
        m.faulty_stamp.(id) <- stamp)
      cone_nodes
  | Fault.Input_pin (gid, pin) ->
    Array.iter
      (fun id ->
        let w =
          if Compiled.is_source m.comp id then m.good.(id)
          else
            let ov_pin = if gid = id then fanin_off.(id) + pin else -1 in
            eval_faulty m stamp id ov_pin stuck_word
        in
        m.faulty.(id) <- w;
        m.faulty_stamp.(id) <- stamp)
      cone_nodes);
  Array.iter
    (fun ob ->
      if m.faulty_stamp.(ob) = stamp then
        det := Int64.logor !det (Int64.logxor m.faulty.(ob) m.good.(ob)))
    m.observables;
  Int64.logand !det mask

let fault_detected m mask f = fault_detection_word m mask f <> 0L

let rec batches n = function
  | [] -> []
  | vectors ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | v :: rest -> take (k - 1) (v :: acc) rest
    in
    let batch, rest = take n [] vectors in
    batch :: batches n rest

let split c ~faults ~vectors =
  if vectors = [] then ([], faults)
  else begin
    let m = make c in
    let remaining = ref faults in
    let detected = ref [] in
    List.iter
      (fun batch ->
        if !remaining <> [] then begin
          let mask = load_good m batch in
          let det, undet =
            List.partition (fun f -> fault_detected m mask f) !remaining
          in
          detected := List.rev_append det !detected;
          remaining := undet
        end)
      (batches word_bits vectors);
    (List.rev !detected, !remaining)
  end

let coverage c ~faults ~vectors =
  match faults with
  | [] -> 1.0
  | _ ->
    let detected, _ = split c ~faults ~vectors in
    float_of_int (List.length detected) /. float_of_int (List.length faults)

let effective_subset c ~faults ~vectors =
  (* Reverse-order static compaction. The serial walk (simulate one
     vector, drop detected faults, repeat) is quadratic; instead the
     full fault x vector detection matrix is computed with 64-way
     pattern parallelism, then the reverse greedy selection runs on
     bitmaps: keep a vector iff it detects a fault no later-kept vector
     detects. *)
  let vec_arr = Array.of_list vectors in
  let n_vec = Array.length vec_arr in
  if n_vec = 0 then []
  else begin
    let m = make c in
    let n_words = (n_vec + word_bits - 1) / word_bits in
    let flist = Array.of_list faults in
    let detection = Array.make_matrix (Array.length flist) n_words 0L in
    for w = 0 to n_words - 1 do
      let batch =
        Array.to_list
          (Array.sub vec_arr (w * word_bits)
             (min word_bits (n_vec - (w * word_bits))))
      in
      let mask = load_good m batch in
      Array.iteri
        (fun fi f -> detection.(fi).(w) <- fault_detection_word m mask f)
        flist
    done;
    let covered = Array.make (Array.length flist) false in
    let keep = ref [] in
    for v = n_vec - 1 downto 0 do
      let word = v / word_bits and bit = v mod word_bits in
      let test = Int64.shift_left 1L bit in
      let newly = ref false in
      Array.iteri
        (fun fi det ->
          if (not covered.(fi)) && Int64.logand det.(word) test <> 0L then begin
            covered.(fi) <- true;
            newly := true
          end)
        detection;
      if !newly then keep := vec_arr.(v) :: !keep
    done;
    !keep
  end
