(** Pattern-parallel stuck-at fault simulation.

    Patterns are packed into 64-bit words and compared against the
    good machine at the observable lines (primary outputs and
    flip-flop D pins). Three engines share the machine:

    - {!Cpt} (default): critical path tracing inside each fanout-free
      region composes activation and sensitization up to the FFR stem
      lane-wise, then propagates the stem's 64-pattern difference word
      event-driven through per-level buckets, exiting as soon as the
      difference dies or the event frontier collapses onto a
      propagation dominator whose observability is already memoized
      for the batch. Exact: bit-identical to the reference.
    - {!Cone}: the full-cone-per-fault reference — re-simulate the
      fault's entire structural output cone and XOR at observables.
    - {!Ppsfp}: W-word parallel-pattern single-fault propagation —
      batches of up to [64*W] (W ≤ 8, default 8) patterns share one
      good-machine evaluation, and each fault's W-word difference is
      propagated event-driven through its reachable cone with
      word-wide XOR early exit. Exact, and the engine the fault-drop
      entry points amortise best on.

    All entry points accept an optional persistent {!machine} so a
    caller running many rounds over one circuit (ATPG phases, sweeps)
    pays for compilation, cone interning, and FFR/dominator tables
    once. *)

open Netlist

type engine =
  | Cone  (** full-cone resimulation per fault: the golden reference *)
  | Cpt  (** FFR critical-path tracing + event-driven stem propagation *)
  | Ppsfp  (** W-word parallel-pattern single-fault propagation *)

type machine
(** Persistent per-circuit simulation state: the compiled CSR form,
    packed good values, interned fanout cones, and the stamped scratch
    the engines evaluate against. Reusable across any number of
    vector batches; not thread-safe. *)

val make : ?engine:engine -> ?width:int -> Circuit.t -> machine
(** Compile [c] and allocate all scratch. [engine] defaults to
    {!Cpt}. [width] is the number of 64-pattern words per batch:
    it must be 1 (the default) for {!Cone}/{!Cpt} and may be 1..8 for
    {!Ppsfp} (default 8, i.e. 512 patterns per pass).
    @raise Invalid_argument on an engine/width mismatch. *)

val with_machine :
  ?engine:engine -> ?width:int -> Circuit.t -> (machine -> 'a) -> 'a
(** [with_machine c f] applies [f] to a fresh machine for [c]. *)

val fork_machine : machine -> machine
(** A worker-domain replica: shares the parent's immutable compiled
    form and its packed good words (read-only in the replica), with
    private stamped scratch and per-batch memos. The parallel entry
    points fork one replica per pool participant; exposed for tests
    and custom drivers. The replica must only be used between the
    parent's batch loads as the sharded drivers do — it never loads
    batches itself. *)

val engine : machine -> engine
val circuit : machine -> Circuit.t

val width : machine -> int
(** Words per batch: 1 for {!Cone}/{!Cpt} machines. *)

val default_par_threshold : int
(** Minimum compiled node count before [~pool] sharding engages (the
    min-work cutoff below which fork-machine setup and chunk handoff
    outweigh the per-fault work). *)

val split :
  ?machine:machine ->
  ?pool:Par.Domain_pool.t ->
  ?par_threshold:int ->
  ?drop:bool ->
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  Fault.t list * Fault.t list
(** [(detected, undetected)] partition of the fault list under the
    fully-specified source vectors (positional over
    [Circuit.sources]); both halves preserve original fault order.
    When [machine] is given it must have been made from this very
    [Circuit.t] value (physical equality — the compiled form is a
    snapshot); otherwise a fresh machine is built.

    [drop] (default [true]) enables batch-scoped fault dropping:
    faults detected by an earlier batch are not re-simulated by later
    ones (the partition is identical either way; dropped counts land
    in the [atpg.fault_sim.dropped_faults] counter).

    With [pool], each batch's per-fault detection words are sharded
    over the pool's domains grouped by FFR stem (each domain owns a
    disjoint contiguous run of stems and evaluates on its own forked
    machine), then merged in original fault order — the partition is
    bit-identical to the sequential walk for any domain count. Pools
    are bypassed (and [atpg.fault_sim.par_bypass] incremented) below
    [par_threshold] compiled nodes, default
    {!default_par_threshold}; pass [~par_threshold:0] to force
    sharding.
    @raise Invalid_argument on a machine/circuit mismatch. *)

val coverage :
  ?machine:machine ->
  ?pool:Par.Domain_pool.t ->
  ?par_threshold:int ->
  ?drop:bool ->
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  float
(** Fraction of the fault list detected. *)

val effective_subset :
  ?machine:machine ->
  ?pool:Par.Domain_pool.t ->
  ?par_threshold:int ->
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  bool array list
(** Reverse-order static compaction: walk the vector batches from last
    to first with cross-batch fault dropping and keep only vectors
    that detect at least one fault no later-kept vector detects; the
    result (in original order) detects the same fault set as the full
    list. *)

val detection_matrix :
  ?machine:machine ->
  ?pool:Par.Domain_pool.t ->
  ?par_threshold:int ->
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  int64 array array
(** The full detection matrix, [nf] rows of [ceil(n_vectors/64)]
    words: bit [v mod 64] of word [v/64] in row [k] is set iff vector
    [v] detects fault [k]. Computed without fault dropping, and
    independent of engine, machine width and domain count — the
    golden-equality vehicle for the engine cross-checks. *)
