(** 64-way pattern-parallel stuck-at fault simulation.

    Patterns are packed into 64-bit words and compared against the
    good machine at the observable lines (primary outputs and
    flip-flop D pins). Two engines share the machine:

    - {!Cpt} (default): critical path tracing inside each fanout-free
      region composes activation and sensitization up to the FFR stem
      lane-wise, then propagates the stem's 64-pattern difference word
      event-driven through per-level buckets, exiting as soon as the
      difference dies or the event frontier collapses onto a
      propagation dominator whose observability is already memoized
      for the batch. Exact: bit-identical to the reference.
    - {!Cone}: the full-cone-per-fault reference — re-simulate the
      fault's entire structural output cone and XOR at observables.

    All entry points accept an optional persistent {!machine} so a
    caller running many rounds over one circuit (ATPG phases, sweeps)
    pays for compilation, cone interning, and FFR/dominator tables
    once. *)

open Netlist

type engine =
  | Cone  (** full-cone resimulation per fault: the golden reference *)
  | Cpt  (** FFR critical-path tracing + event-driven stem propagation *)

type machine
(** Persistent per-circuit simulation state: the compiled CSR form,
    packed good values, interned fanout cones, and the stamped scratch
    both engines evaluate against. Reusable across any number of
    vector batches; not thread-safe. *)

val make : ?engine:engine -> Circuit.t -> machine
(** Compile [c] and allocate all scratch. [engine] defaults to
    {!Cpt}. *)

val with_machine : ?engine:engine -> Circuit.t -> (machine -> 'a) -> 'a
(** [with_machine c f] applies [f] to a fresh machine for [c]. *)

val fork_machine : machine -> machine
(** A worker-domain replica: shares the parent's immutable compiled
    form and its packed good words (read-only in the replica), with
    private stamped scratch and per-batch memos. The parallel entry
    points fork one replica per pool participant; exposed for tests
    and custom drivers. The replica must only be used between the
    parent's [load_good] rounds as the sharded drivers do — it never
    loads batches itself. *)

val engine : machine -> engine
val circuit : machine -> Circuit.t

val split :
  ?machine:machine ->
  ?pool:Par.Domain_pool.t ->
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  Fault.t list * Fault.t list
(** [(detected, undetected)] partition of the fault list under the
    fully-specified source vectors (positional over
    [Circuit.sources]). When [machine] is given it must have been made
    from this very [Circuit.t] value (physical equality — the compiled
    form is a snapshot); otherwise a fresh machine is built.

    With [pool], each batch's per-fault detection words are sharded
    over the pool's domains grouped by FFR stem (each domain owns a
    disjoint contiguous run of stems and evaluates on its own forked
    machine), then merged in original fault order — the partition is
    bit-identical to the sequential walk for any domain count.
    @raise Invalid_argument on a machine/circuit mismatch. *)

val coverage :
  ?machine:machine ->
  ?pool:Par.Domain_pool.t ->
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  float
(** Fraction of the fault list detected. *)

val effective_subset :
  ?machine:machine ->
  ?pool:Par.Domain_pool.t ->
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  bool array list
(** Reverse-order static compaction: walk the vectors from last to
    first with fault dropping and keep only those that detect at least
    one not-yet-detected fault; the result (in original order) detects
    the same fault set. *)
