(** 64-way pattern-parallel stuck-at fault simulation.

    Patterns are packed into 64-bit words; each fault is re-simulated
    only inside its structural fanout cone and compared against the
    good machine at the observable lines (primary outputs and
    flip-flop D pins). *)

open Netlist

val split :
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  Fault.t list * Fault.t list
(** [(detected, undetected)] partition of the fault list under the
    fully-specified source vectors (positional over
    [Circuit.sources]). *)

val coverage :
  Circuit.t -> faults:Fault.t list -> vectors:bool array list -> float
(** Fraction of the fault list detected. *)

val effective_subset :
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  bool array list
(** Reverse-order static compaction: walk the vectors from last to
    first with fault dropping and keep only those that detect at least
    one not-yet-detected fault; the result (in original order) detects
    the same fault set. *)
