(** 64-way pattern-parallel stuck-at fault simulation.

    Patterns are packed into 64-bit words and compared against the
    good machine at the observable lines (primary outputs and
    flip-flop D pins). Two engines share the machine:

    - {!Cpt} (default): critical path tracing inside each fanout-free
      region composes activation and sensitization up to the FFR stem
      lane-wise, then propagates the stem's 64-pattern difference word
      event-driven through per-level buckets, exiting as soon as the
      difference dies or the event frontier collapses onto a
      propagation dominator whose observability is already memoized
      for the batch. Exact: bit-identical to the reference.
    - {!Cone}: the full-cone-per-fault reference — re-simulate the
      fault's entire structural output cone and XOR at observables.

    All entry points accept an optional persistent {!machine} so a
    caller running many rounds over one circuit (ATPG phases, sweeps)
    pays for compilation, cone interning, and FFR/dominator tables
    once. *)

open Netlist

type engine =
  | Cone  (** full-cone resimulation per fault: the golden reference *)
  | Cpt  (** FFR critical-path tracing + event-driven stem propagation *)

type machine
(** Persistent per-circuit simulation state: the compiled CSR form,
    packed good values, interned fanout cones, and the stamped scratch
    both engines evaluate against. Reusable across any number of
    vector batches; not thread-safe. *)

val make : ?engine:engine -> Circuit.t -> machine
(** Compile [c] and allocate all scratch. [engine] defaults to
    {!Cpt}. *)

val with_machine : ?engine:engine -> Circuit.t -> (machine -> 'a) -> 'a
(** [with_machine c f] applies [f] to a fresh machine for [c]. *)

val engine : machine -> engine
val circuit : machine -> Circuit.t

val split :
  ?machine:machine ->
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  Fault.t list * Fault.t list
(** [(detected, undetected)] partition of the fault list under the
    fully-specified source vectors (positional over
    [Circuit.sources]). When [machine] is given it must have been made
    from this very [Circuit.t] value (physical equality — the compiled
    form is a snapshot); otherwise a fresh machine is built.
    @raise Invalid_argument on a machine/circuit mismatch. *)

val coverage :
  ?machine:machine ->
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  float
(** Fraction of the fault list detected. *)

val effective_subset :
  ?machine:machine ->
  Circuit.t ->
  faults:Fault.t list ->
  vectors:bool array list ->
  bool array list
(** Reverse-order static compaction: walk the vectors from last to
    first with fault dropping and keep only those that detect at least
    one not-yet-detected fault; the result (in original order) detects
    the same fault set. *)
