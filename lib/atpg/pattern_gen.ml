open Netlist

type config = {
  seed : int;
  random_batches : int;
  stale_batches : int;
  backtrack_limit : int;
  podem_budget : int;
  scoap_guide : bool;
  merge : bool;
  reverse_compact : bool;
  fault_engine : Fault_simulation.engine;
}

let default_config =
  {
    seed = 1;
    random_batches = 32;
    stale_batches = 5;
    backtrack_limit = 25;
    podem_budget = 4000;
    scoap_guide = true;
    merge = true;
    reverse_compact = true;
    fault_engine = Fault_simulation.Cpt;
  }

let m_vectors = Telemetry.Counter.make "atpg.pattern_gen.vectors"
let m_detected = Telemetry.Counter.make "atpg.faults.detected"
let m_untestable = Telemetry.Counter.make "atpg.faults.untestable"
let m_aborted = Telemetry.Counter.make "atpg.faults.aborted"
let m_skipped = Telemetry.Counter.make "atpg.faults.skipped"

(* PODEM keeps one process-wide backtrack counter; sampling it around
   each [generate] call turns the aggregate into a per-fault
   distribution (a fat p99 here is the signature of a redundant-logic
   cluster eating the backtrack budget) *)
let m_backtracks = Telemetry.Counter.make "atpg.podem.backtracks"
let h_backtracks = Telemetry.Histogram.make "atpg.podem.backtracks_per_fault"

type outcome = {
  vectors : bool array list;
  total_faults : int;
  detected : int;
  untestable : int;
  aborted : int;
  skipped : int;
  coverage : float;
}

let random_vectors ~seed ~count c =
  let rng = Util.Rng.create seed in
  let n = Array.length (Circuit.sources c) in
  List.init count (fun _ -> Util.Rng.bool_array rng n)

let generate ?(config = default_config) c =
  let faults = Fault.collapsed_faults c in
  let total_faults = List.length faults in
  let rng = Util.Rng.create config.seed in
  let n_sources = Array.length (Circuit.sources c) in
  (* one machine for all three phases: compiled arrays, cones, and
     FFR/dominator tables are built once per circuit *)
  let machine = Fault_simulation.make ~engine:config.fault_engine c in
  (* reverse accumulation: appending each batch with [@] walks the
     whole prefix again (quadratic over the run); prepend reversed and
     un-reverse once at the end, preserving the exact order *)
  let kept_rev = ref [] in
  let remaining = ref faults in
  (* Phase 1: random vectors with fault dropping; a batch only survives
     if it detects something new. *)
  let stale = ref 0 in
  let batch_no = ref 0 in
  Telemetry.Span.with_ ~name:"atpg.random_phase" (fun () ->
      while
        !remaining <> []
        && !batch_no < config.random_batches
        && !stale < config.stale_batches
      do
        incr batch_no;
        let batch = List.init 64 (fun _ -> Util.Rng.bool_array rng n_sources) in
        let detected, undet =
          Fault_simulation.split ~machine c ~faults:!remaining ~vectors:batch
        in
        if detected = [] then incr stale
        else begin
          stale := 0;
          remaining := undet;
          (* keep only the vectors of the batch that matter *)
          let useful =
            Fault_simulation.effective_subset ~machine c ~faults:detected
              ~vectors:batch
          in
          kept_rev := List.rev_append useful !kept_rev
        end
      done);
  (* Phase 2: PODEM per remaining fault, processed in chunks so that
     each chunk's vectors drop later faults before their turn. *)
  let untestable = ref 0 and aborted = ref 0 in
  let budget = ref config.podem_budget in
  let guide = if config.scoap_guide then Some (Scoap.compute c) else None in
  let rec deterministic () =
    match !remaining with
    | [] -> ()
    | _ when !budget <= 0 -> ()
    | _ ->
      (* build one chunk of up to 64 cubes; collect always consumes the
         faults it visits, so every iteration makes progress *)
      let cubes = ref [] and processed = ref [] in
      let rec collect n = function
        | [] -> []
        | rest when n = 0 -> rest
        | _ when !budget <= 0 -> []
        | f :: rest ->
          decr budget;
          let bt0 =
            if Telemetry.enabled () then Telemetry.Counter.get m_backtracks
            else 0
          in
          let outcome =
            Podem.generate ?guide ~backtrack_limit:config.backtrack_limit c f
          in
          if Telemetry.enabled () then
            Telemetry.Histogram.observe h_backtracks
              (float_of_int (Telemetry.Counter.get m_backtracks - bt0));
          (match outcome with
          | Podem.Test cube ->
            cubes := cube :: !cubes;
            processed := f :: !processed;
            collect (n - 1) rest
          | Podem.Untestable ->
            incr untestable;
            collect n rest
          | Podem.Aborted ->
            incr aborted;
            collect n rest)
      in
      let rest = collect 64 !remaining in
      let cubes = if config.merge then Compaction.merge_cubes !cubes else !cubes in
      let vectors = List.map (Compaction.fill_random rng) cubes in
      (* the generated vectors also drop faults queued behind them *)
      let _, undet =
        Fault_simulation.split ~machine c ~faults:(rest @ !processed) ~vectors
      in
      (* faults whose cube was generated but that escaped detection
         after filling are counted as aborted rather than retried.
         Collapsed faults are structurally distinct values, so a
         hashtable keyed on the fault itself matches [List.memq]
         membership without the quadratic rescans. *)
      let processed_tbl = Hashtbl.create 97 in
      List.iter (fun f -> Hashtbl.replace processed_tbl f ()) !processed;
      let n_escaped = ref 0 in
      remaining :=
        List.filter
          (fun f ->
            if Hashtbl.mem processed_tbl f then begin
              incr n_escaped;
              false
            end
            else true)
          undet;
      aborted := !aborted + !n_escaped;
      kept_rev := List.rev_append vectors !kept_rev;
      deterministic ()
  in
  Telemetry.Span.with_ ~name:"atpg.podem_phase" deterministic;
  (* Phase 3: reverse-order static compaction over the whole set. *)
  let kept = List.rev !kept_rev in
  let vectors =
    Telemetry.Span.with_ ~name:"atpg.compact_phase" (fun () ->
        if config.reverse_compact then
          Fault_simulation.effective_subset ~machine c ~faults ~vectors:kept
        else kept)
  in
  let skipped = List.length !remaining in
  let detected_total =
    total_faults - skipped - !untestable - !aborted
  in
  let testable = total_faults - !untestable in
  Telemetry.Counter.add m_vectors (List.length vectors);
  Telemetry.Counter.add m_detected detected_total;
  Telemetry.Counter.add m_untestable !untestable;
  (* aborted faults are the explicit "ATPG gave up" classification:
     the flow proceeds, but reports and chaos tests key off this *)
  Telemetry.Counter.add m_aborted !aborted;
  Telemetry.Counter.add m_skipped skipped;
  Telemetry.Log.debug "atpg.generate done"
    ~fields:
      [
        ("circuit", Telemetry.Json.String (Circuit.name c));
        ("vectors", Telemetry.Json.Int (List.length vectors));
        ("faults", Telemetry.Json.Int total_faults);
        ("untestable", Telemetry.Json.Int !untestable);
        ("aborted", Telemetry.Json.Int !aborted);
      ];
  {
    vectors;
    total_faults;
    detected = detected_total;
    untestable = !untestable;
    aborted = !aborted;
    skipped;
    coverage =
      (if testable = 0 then 1.0
       else float_of_int detected_total /. float_of_int testable);
  }

let pp_outcome fmt o =
  Format.fprintf fmt
    "vectors=%d faults=%d detected=%d untestable=%d aborted=%d skipped=%d coverage=%.2f%%"
    (List.length o.vectors) o.total_faults o.detected o.untestable o.aborted
    o.skipped
    (100.0 *. o.coverage)
