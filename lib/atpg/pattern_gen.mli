(** Complete test-generation flow (the stand-in for the ATOM test sets
    the paper uses [18]): random phase with fault dropping, PODEM for
    the remaining faults, cube merging and reverse-order compaction.

    Vectors are fully-specified source assignments (positional over
    [Circuit.sources]); the scan machinery later splits them into the
    primary-input part and the state part to be shifted in. *)

open Netlist

type config = {
  seed : int;
  random_batches : int;  (** max 64-vector random batches *)
  stale_batches : int;  (** stop the random phase after this many
                            consecutive batches without new detections *)
  backtrack_limit : int;
  podem_budget : int;
      (** max deterministic PODEM attempts; bounds the runtime on large
          circuits with many redundant faults (remaining faults are
          reported as [skipped]) *)
  scoap_guide : bool;
      (** drive PODEM backtrace with SCOAP controllabilities *)
  merge : bool;  (** merge deterministic cubes before filling *)
  reverse_compact : bool;
  fault_engine : Fault_simulation.engine;
      (** fault-simulation engine for all three phases (default
          {!Fault_simulation.Cpt}); both engines are bit-identical, so
          this only trades speed *)
}

val default_config : config

type outcome = {
  vectors : bool array list;
  total_faults : int;
  detected : int;
  untestable : int;
  aborted : int;
  skipped : int;  (** faults never attempted (budget exhausted) *)
  coverage : float;  (** detected / (total - untestable) *)
}

val generate : ?config:config -> Circuit.t -> outcome

val random_vectors : seed:int -> count:int -> Circuit.t -> bool array list

val pp_outcome : Format.formatter -> outcome -> unit
