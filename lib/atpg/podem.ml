open Netlist
module F = Logic.Five

(* hot-path instrumentation: plain int bumps behind the global
   telemetry switch, so the search itself is never perturbed *)
let m_faults = Telemetry.Counter.make "atpg.podem.faults"
let m_decisions = Telemetry.Counter.make "atpg.podem.decisions"
let m_backtracks = Telemetry.Counter.make "atpg.podem.backtracks"
let m_aborted = Telemetry.Counter.make "atpg.podem.aborted"

type result =
  | Test of Logic.t array
  | Untestable
  | Aborted

type engine = {
  circuit : Circuit.t;
  fault : Fault.t;
  guide : Scoap.t option; (* SCOAP-guided backtrace when present *)
  values : F.five array; (* node id -> five-valued value *)
  assigned : Logic.t array; (* source position -> assigned value *)
  source_pos : (int, int) Hashtbl.t; (* node id -> source position *)
  observables : int list; (* node ids whose value is observed *)
  is_observable : bool array;
  cone : int array; (* fault fanout cone, topologically ordered *)
  (* level-bucketed propagation queue *)
  buckets : int list array;
  pending : bool array;
  visited : int array; (* stamped scratch for the X-path check *)
  mutable stamp : int;
}

let make_engine ?guide c fault =
  let source_pos = Hashtbl.create 64 in
  Array.iteri (fun pos id -> Hashtbl.add source_pos id pos) (Circuit.sources c);
  let observables =
    Array.to_list (Circuit.outputs c)
    @ (Array.to_list (Circuit.dffs c)
      |> List.map (fun id -> (Circuit.node c id).Circuit.fanins.(0)))
  in
  let n = Circuit.node_count c in
  let is_observable = Array.make n false in
  List.iter (fun id -> is_observable.(id) <- true) observables;
  (* structural fanout cone of the fault site: the only region where a
     D can live, hence where the frontier and X-path scans look *)
  let in_cone = Array.make n false in
  in_cone.(Fault.site_node fault) <- true;
  let members = ref [] in
  Array.iter
    (fun id ->
      if in_cone.(id) then begin
        members := id :: !members;
        Array.iter
          (fun succ ->
            if not (Gate.equal_kind (Circuit.node c succ).Circuit.kind Gate.Dff)
            then in_cone.(succ) <- true)
          (Circuit.node c id).Circuit.fanouts
      end)
    (Circuit.topo_order c);
  {
    circuit = c;
    fault;
    guide;
    values = Array.make n F.FX;
    assigned = Array.make (Array.length (Circuit.sources c)) Logic.X;
    source_pos;
    observables;
    is_observable;
    cone = Array.of_list (List.rev !members);
    buckets = Array.make (Circuit.depth c + 1) [];
    pending = Array.make n false;
    visited = Array.make n 0;
    stamp = 0;
  }

(* Value of one node under the engine's fault. *)
let eval_node e id =
  let c = e.circuit in
  let { Fault.site; stuck } = e.fault in
  let stuck_l = Logic.of_bool stuck in
  let nd = Circuit.node c id in
  let v =
    if Gate.is_source nd.kind then
      F.of_ternary e.assigned.(Hashtbl.find e.source_pos id)
    else begin
      let vs = Array.map (fun f -> e.values.(f)) nd.fanins in
      (match site with
      | Fault.Input_pin (gid, pin) when gid = id ->
        vs.(pin) <- F.make ~good:(F.good vs.(pin)) ~faulty:stuck_l
      | Fault.Input_pin _ | Fault.Output_line _ -> ());
      Gate.eval_five nd.kind vs
    end
  in
  match site with
  | Fault.Output_line fid when fid = id ->
    F.make ~good:(F.good v) ~faulty:stuck_l
  | Fault.Output_line _ | Fault.Input_pin _ -> v

let imply_full e =
  Array.iter
    (fun id -> e.values.(id) <- eval_node e id)
    (Circuit.topo_order e.circuit)

let schedule e id =
  if
    (not e.pending.(id))
    && not (Gate.is_source (Circuit.node e.circuit id).Circuit.kind)
  then begin
    e.pending.(id) <- true;
    e.buckets.(Circuit.level e.circuit id) <- id :: e.buckets.(Circuit.level e.circuit id)
  end

(* Incremental implication after one source changed. *)
let imply_from e source =
  let c = e.circuit in
  let v = eval_node e source in
  if not (F.equal v e.values.(source)) then begin
    e.values.(source) <- v;
    Array.iter (fun succ -> schedule e succ) (Circuit.node c source).Circuit.fanouts;
    for lvl = 1 to Array.length e.buckets - 1 do
      let ids = e.buckets.(lvl) in
      e.buckets.(lvl) <- [];
      List.iter
        (fun id ->
          e.pending.(id) <- false;
          let v = eval_node e id in
          if not (F.equal v e.values.(id)) then begin
            e.values.(id) <- v;
            Array.iter (fun succ -> schedule e succ) (Circuit.node c id).Circuit.fanouts
          end)
        ids
    done
  end

let detected e =
  Array.exists
    (fun id -> e.is_observable.(id) && F.is_d_or_dbar e.values.(id))
    e.cone

(* The line whose good value must reach the opposite of the stuck value
   for the fault to be activated. *)
let activation_node e =
  match e.fault.Fault.site with
  | Fault.Output_line id -> id
  | Fault.Input_pin (gid, pin) -> (Circuit.node e.circuit gid).Circuit.fanins.(pin)

let activation_value e = Logic.lnot (Logic.of_bool e.fault.Fault.stuck)

let activated e =
  Logic.equal (F.good e.values.(activation_node e)) (activation_value e)

let activation_impossible e =
  Logic.equal
    (F.good e.values.(activation_node e))
    (Logic.of_bool e.fault.Fault.stuck)

(* Whether gate [id] sees a D on some input. For an input-pin fault the
   D lives on the faulted branch only: the driver line itself stays
   healthy, so the stem value never shows it — the injected pin has to
   be reconstructed here, otherwise the faulted gate never enters the
   frontier and the search wrongly declares such faults untestable. *)
let sees_d e id =
  let nd = Circuit.node e.circuit id in
  Array.exists (fun f -> F.is_d_or_dbar e.values.(f)) nd.Circuit.fanins
  ||
  match e.fault.Fault.site with
  | Fault.Input_pin (gid, pin) when gid = id ->
    let driver = nd.Circuit.fanins.(pin) in
    F.is_d_or_dbar
      (F.make
         ~good:(F.good e.values.(driver))
         ~faulty:(Logic.of_bool e.fault.Fault.stuck))
  | Fault.Input_pin _ | Fault.Output_line _ -> false

(* D-frontier: only gates inside the fault cone can see a D. *)
let d_frontier e =
  let c = e.circuit in
  let frontier = ref [] in
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      if Gate.is_logic nd.Circuit.kind && F.equal e.values.(id) F.FX && sees_d e id
      then frontier := id :: !frontier)
    e.cone;
  List.rev !frontier

(* X-path check: can a D reach an observable through X-valued nodes? *)
let x_path_exists e frontier =
  let c = e.circuit in
  e.stamp <- e.stamp + 1;
  let stamp = e.stamp in
  let rec reachable id =
    if e.is_observable.(id) then true
    else if e.visited.(id) = stamp then false
    else begin
      e.visited.(id) <- stamp;
      Array.exists
        (fun succ ->
          let snd_ = Circuit.node c succ in
          (not (Gate.equal_kind snd_.Circuit.kind Gate.Dff))
          && (e.is_observable.(succ)
             || (F.equal e.values.(succ) F.FX && reachable succ)))
        (Circuit.node c id).Circuit.fanouts
    end
  in
  List.exists reachable frontier

(* Backtrace an objective to an unassigned source, following X inputs
   and accounting for gate inversions; level-based easiest/hardest pick. *)
let backtrace e (node, value) =
  let c = e.circuit in
  let rec walk id v =
    let nd = Circuit.node c id in
    if Gate.is_source nd.kind then Some (id, v)
    else begin
      let v_inner = if Gate.inversion nd.kind then Logic.lnot v else v in
      let x_fanins =
        Array.to_list nd.fanins
        |> List.filter (fun f -> F.equal e.values.(f) F.FX)
      in
      match x_fanins with
      | [] -> None
      | f :: _ as fs ->
        (* cost of driving a candidate toward the value it will receive:
           SCOAP controllability when a guide is present, circuit depth
           otherwise *)
        let cost g =
          match e.guide with
          | Some scoap ->
            (match v_inner with
            | Logic.Zero | Logic.One -> Scoap.cc scoap g v_inner
            | Logic.X -> Circuit.level c g)
          | None -> Circuit.level c g
        in
        let by_cost cmp =
          List.fold_left (fun acc g -> if cmp (cost g) (cost acc) then g else acc) f fs
        in
        let pick =
          match Gate.controlling_value nd.kind with
          | Some cv when Logic.equal v_inner cv ->
            by_cost ( < ) (* one controlling input suffices: easiest *)
          | Some _ -> by_cost ( > ) (* all inputs needed: hardest first *)
          | None -> by_cost ( < )
        in
        walk pick v_inner
    end
  in
  walk node value

let run ?guide ?(backtrack_limit = 100) ?(iteration_limit = 400) c fault =
  let e = make_engine ?guide c fault in
  Telemetry.Counter.inc m_faults;
  imply_full e;
  let iterations = ref 0 in
  (* decision stack: (source node, source position, value, flipped) *)
  let stack = ref [] in
  let backtracks = ref 0 in
  let aborted = ref false in
  let rec backtrack () =
    match !stack with
    | [] -> false
    | (src, pos, v, flipped) :: rest ->
      if flipped then begin
        e.assigned.(pos) <- Logic.X;
        imply_from e src;
        stack := rest;
        backtrack ()
      end
      else begin
        incr backtracks;
        Telemetry.Counter.inc m_backtracks;
        if !backtracks > backtrack_limit then begin
          aborted := true;
          false
        end
        else begin
          let v' = Logic.lnot v in
          e.assigned.(pos) <- v';
          stack := (src, pos, v', true) :: rest;
          imply_from e src;
          true
        end
      end
  in
  (* One frontier scan per iteration serves both the dead-end check
     and the objective; a global iteration cap bounds the work spent on
     hard (usually redundant) faults. *)
  let rec search () =
    incr iterations;
    if !iterations > iteration_limit then begin
      aborted := true;
      None
    end
    else if detected e then Some (Array.copy e.assigned)
    else if activation_impossible e then
      if backtrack () then search () else None
    else begin
      let obj =
        if not (activated e) then Some (activation_node e, activation_value e)
        else begin
          match d_frontier e with
          | [] -> None
          | frontier when not (x_path_exists e frontier) -> None
          | g :: _ ->
            let nd = Circuit.node e.circuit g in
            (match
               Array.find_opt
                 (fun f -> F.equal e.values.(f) F.FX)
                 nd.Circuit.fanins
             with
            | None -> None
            | Some f ->
              let v =
                match Gate.controlling_value nd.Circuit.kind with
                | Some cv -> Logic.lnot cv
                | None -> Logic.One
              in
              Some (f, v))
        end
      in
      match obj with
      | None -> if backtrack () then search () else None
      | Some obj ->
        (match backtrace e obj with
        | None -> if backtrack () then search () else None
        | Some (source, v) ->
          Telemetry.Counter.inc m_decisions;
          let pos = Hashtbl.find e.source_pos source in
          e.assigned.(pos) <- v;
          stack := (source, pos, v, false) :: !stack;
          imply_from e source;
          search ())
    end
  in
  match search () with
  | Some cube -> Test cube
  | None ->
    if !aborted then begin
      Telemetry.Counter.inc m_aborted;
      Aborted
    end
    else Untestable

let generate ?guide ?backtrack_limit ?iteration_limit c fault =
  run ?guide ?backtrack_limit ?iteration_limit c fault

let detects c fault vector =
  let e = make_engine c fault in
  Array.iteri (fun pos b -> e.assigned.(pos) <- Logic.of_bool b) vector;
  imply_full e;
  detected e
