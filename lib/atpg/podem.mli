(** PODEM test-pattern generation for single stuck-at faults on the
    combinational core of a full-scan circuit (controllable lines:
    primary inputs and flip-flop outputs; observable lines: primary
    outputs and flip-flop D pins).

    The same objective / backtrace / imply machinery — without the
    D-algebra — is reused by the paper's justification engine
    ({!Scanpower.Justify}), which is why decision hooks are exposed. *)

open Netlist

type result =
  | Test of Logic.t array
      (** Test cube over [Circuit.sources c] (positional); unassigned
          positions are [X] and may be filled freely. *)
  | Untestable  (** Proven redundant within the search space. *)
  | Aborted  (** Backtrack limit exceeded. *)

val generate :
  ?guide:Scoap.t ->
  ?backtrack_limit:int ->
  ?iteration_limit:int ->
  Circuit.t ->
  Fault.t ->
  result
(** Defaults: 100 backtracks, 400 search iterations. The iteration
    limit bounds the total work per fault (hard-to-prove redundant
    faults otherwise dominate the runtime on large circuits). With
    [guide], backtrace decisions follow SCOAP controllabilities
    instead of circuit depth. *)

val detects : Circuit.t -> Fault.t -> bool array -> bool
(** [detects c f vector] checks by five-valued simulation whether the
    fully-specified source vector (positional over [Circuit.sources])
    detects the fault: used by the test suite to validate generated
    tests independently of the fault simulator. *)
