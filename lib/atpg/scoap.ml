open Netlist

type t = {
  cc0 : int array;
  cc1 : int array;
  co : int array;
}

(* Saturating addition keeps redundant-logic measures from wrapping. *)
let cap = 1_000_000
let ( +! ) a b = min cap (a + b)

let sum_all xs = Array.fold_left ( +! ) 0 xs
let min_all xs = Array.fold_left min cap xs

let compute c =
  let n = Circuit.node_count c in
  let cc0 = Array.make n cap and cc1 = Array.make n cap in
  (* forward pass: controllabilities in topological order *)
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      match nd.kind with
      | Gate.Input | Gate.Dff ->
        cc0.(id) <- 1;
        cc1.(id) <- 1
      | Gate.Output | Gate.Buf ->
        cc0.(id) <- cc0.(nd.fanins.(0)) +! 1;
        cc1.(id) <- cc1.(nd.fanins.(0)) +! 1
      | Gate.Not ->
        cc0.(id) <- cc1.(nd.fanins.(0)) +! 1;
        cc1.(id) <- cc0.(nd.fanins.(0)) +! 1
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
        let zeros = Array.map (fun f -> cc0.(f)) nd.fanins in
        let ones = Array.map (fun f -> cc1.(f)) nd.fanins in
        let all1 = sum_all ones +! 1 in
        let all0 = sum_all zeros +! 1 in
        let any0 = min_all zeros +! 1 in
        let any1 = min_all ones +! 1 in
        (* parity gates: cheapest input combination with the right
           parity; approximated by the standard two-input formulas
           folded over the fanins *)
        let xor_cc =
          let c0 = ref zeros.(0) and c1 = ref ones.(0) in
          for i = 1 to Array.length zeros - 1 do
            let n0 = min (!c0 +! zeros.(i)) (!c1 +! ones.(i)) +! 1 in
            let n1 = min (!c1 +! zeros.(i)) (!c0 +! ones.(i)) +! 1 in
            c0 := n0;
            c1 := n1
          done;
          (!c0, !c1)
        in
        (match nd.kind with
        | Gate.And ->
          cc1.(id) <- all1;
          cc0.(id) <- any0
        | Gate.Nand ->
          cc0.(id) <- all1;
          cc1.(id) <- any0
        | Gate.Or ->
          cc0.(id) <- all0;
          cc1.(id) <- any1
        | Gate.Nor ->
          cc1.(id) <- all0;
          cc0.(id) <- any1
        | Gate.Xor ->
          let c0, c1 = xor_cc in
          cc0.(id) <- c0;
          cc1.(id) <- c1
        | Gate.Xnor ->
          let c0, c1 = xor_cc in
          cc0.(id) <- c1;
          cc1.(id) <- c0
        | Gate.Input | Gate.Dff | Gate.Output | Gate.Buf | Gate.Not ->
          assert false))
    (Circuit.topo_order c);
  (* backward pass: observabilities *)
  let co = Array.make n cap in
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Output | Gate.Dff -> co.(nd.Circuit.id) <- 0
      | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
      | Gate.Nor | Gate.Xor | Gate.Xnor ->
        ())
    (Circuit.nodes c);
  let topo = Circuit.topo_order c in
  for i = Array.length topo - 1 downto 0 do
    let id = topo.(i) in
    let nd = Circuit.node c id in
    if not (Gate.equal_kind nd.kind Gate.Output) then
      Array.iter
        (fun succ ->
          let snd_ = Circuit.node c succ in
          let through =
            match snd_.Circuit.kind with
            | Gate.Output | Gate.Dff -> 0
            | Gate.Buf | Gate.Not -> co.(succ) +! 1
            | Gate.And | Gate.Nand ->
              (* the other inputs must be non-controlling (1) *)
              let others = ref 0 in
              Array.iter
                (fun f -> if f <> id then others := !others +! cc1.(f))
                snd_.Circuit.fanins;
              co.(succ) +! !others +! 1
            | Gate.Or | Gate.Nor ->
              let others = ref 0 in
              Array.iter
                (fun f -> if f <> id then others := !others +! cc0.(f))
                snd_.Circuit.fanins;
              co.(succ) +! !others +! 1
            | Gate.Xor | Gate.Xnor ->
              let others = ref 0 in
              Array.iter
                (fun f ->
                  if f <> id then others := !others +! min cc0.(f) cc1.(f))
                snd_.Circuit.fanins;
              co.(succ) +! !others +! 1
            | Gate.Input -> cap
          in
          if through < co.(id) then co.(id) <- through)
        nd.Circuit.fanouts
  done;
  { cc0; cc1; co }

let cc0 t id = t.cc0.(id)
let cc1 t id = t.cc1.(id)

let cc t id = function
  | Logic.Zero -> t.cc0.(id)
  | Logic.One -> t.cc1.(id)
  | Logic.X -> invalid_arg "Scoap.cc: X has no controllability"

let observability t id = t.co.(id)

let pick cmp t c id v =
  let nd = Circuit.node c id in
  if Array.length nd.Circuit.fanins = 0 then None
  else begin
    let best = ref nd.Circuit.fanins.(0) in
    Array.iter
      (fun f -> if cmp (cc t f v) (cc t !best v) then best := f)
      nd.Circuit.fanins;
    Some !best
  end

let hardest_input t c id v = pick ( > ) t c id v
let easiest_input t c id v = pick ( < ) t c id v
