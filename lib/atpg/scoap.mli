(** SCOAP testability measures (Goldstein 1979).

    Combinational 0/1-controllability (CC0/CC1: how many assignments it
    takes to drive a line to a value, >= 1) and observability (CO: how
    much surrounding circuitry must cooperate to propagate the line to
    an output). The PODEM engine can use these instead of the naive
    level-depth heuristic when choosing which input a backtrace
    descends into; the ATPG bench compares both. *)

open Netlist

type t

val compute : Circuit.t -> t

val cc0 : t -> int -> int
(** Effort to set node [id] to 0; sources cost 1. *)

val cc1 : t -> int -> int

val cc : t -> int -> Logic.t -> int
(** [cc t id v]: controllability of the given definite value.
    @raise Invalid_argument for [X]. *)

val observability : t -> int -> int
(** Effort to propagate node [id] to a primary output or flip-flop D
    pin; endpoints cost 0. *)

val hardest_input : t -> Circuit.t -> int -> Logic.t -> int option
(** Among the fanins of gate [id], the one whose controllability toward
    [v] is largest ([None] if the gate has no fanins). *)

val easiest_input : t -> Circuit.t -> int -> Logic.t -> int option
