open Netlist

exception Parse_error of int * string

let to_string vectors =
  let buf = Buffer.create 1024 in
  List.iter
    (fun v ->
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) v;
      Buffer.add_char buf '\n')
    vectors;
  Buffer.contents buf

let to_file vectors path =
  let oc = open_out path in
  output_string oc (to_string vectors);
  close_out oc

let of_string c text =
  let width = Array.length (Circuit.sources c) in
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let line = String.trim line in
    if line = "" then None
    else begin
      if String.length line <> width then
        raise
          (Parse_error
             ( lineno,
               Printf.sprintf "expected %d bits, found %d" width
                 (String.length line) ));
      let v =
        Array.init width (fun i ->
            match line.[i] with
            | '0' -> false
            | '1' -> true
            | ch ->
              raise
                (Parse_error (lineno, Printf.sprintf "invalid character %C" ch)))
      in
      Some v
    end
  in
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> parse_line (i + 1) line)
  |> List.filter_map (fun x -> x)

let of_file c path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string c text
