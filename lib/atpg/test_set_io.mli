(** Plain-text test-vector files: one '0'/'1' line per vector,
    positional over [Circuit.sources] (primary inputs first, then the
    flip-flops in declaration order), '#' comments. The format the CLI
    writes and reads. *)

open Netlist

exception Parse_error of int * string

val to_string : bool array list -> string

val to_file : bool array list -> string -> unit

val of_string : Circuit.t -> string -> bool array list
(** @raise Parse_error on a malformed or wrong-width line. *)

val of_file : Circuit.t -> string -> bool array list
(** @raise Parse_error on malformed input
    @raise Sys_error if the file cannot be read. *)
