(* Umbrella module of the [bdd] library. *)

include Robdd
module Circuit_bdd = Circuit_bdd
