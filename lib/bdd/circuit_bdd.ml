open Netlist

exception Too_large

type t = {
  circuit : Circuit.t;
  mgr : Robdd.manager;
  funcs : Robdd.t array; (* per node id *)
  budget : int;
}

let check_budget mgr budget =
  if Robdd.node_count mgr > budget then raise Too_large

let gate_apply mgr kind (inputs : Robdd.t list) =
  let fold2 op seed rest =
    List.fold_left (fun acc x -> op mgr acc x) seed rest
  in
  match kind, inputs with
  | Gate.Buf, [ a ] | Gate.Output, [ a ] -> a
  | Gate.Not, [ a ] -> Robdd.bnot mgr a
  | Gate.And, a :: rest -> fold2 Robdd.band a rest
  | Gate.Nand, a :: rest -> Robdd.bnot mgr (fold2 Robdd.band a rest)
  | Gate.Or, a :: rest -> fold2 Robdd.bor a rest
  | Gate.Nor, a :: rest -> Robdd.bnot mgr (fold2 Robdd.bor a rest)
  | Gate.Xor, a :: rest -> fold2 Robdd.bxor a rest
  | Gate.Xnor, a :: rest -> Robdd.bnot mgr (fold2 Robdd.bxor a rest)
  | (Gate.Input | Gate.Dff), _
  | Gate.Buf, _ | Gate.Output, _ | Gate.Not, _
  | Gate.And, [] | Gate.Nand, [] | Gate.Or, [] | Gate.Nor, []
  | Gate.Xor, [] | Gate.Xnor, [] ->
    invalid_arg "Circuit_bdd: malformed gate"

let build ?(node_budget = 2_000_000) c =
  let mgr = Robdd.manager () in
  let funcs = Array.make (Circuit.node_count c) (Robdd.zero mgr) in
  Array.iteri
    (fun pos id -> funcs.(id) <- Robdd.var mgr pos)
    (Circuit.sources c);
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      if not (Gate.is_source nd.kind) then begin
        let inputs = Array.to_list (Array.map (fun f -> funcs.(f)) nd.fanins) in
        funcs.(id) <- gate_apply mgr nd.kind inputs;
        check_budget mgr node_budget
      end)
    (Circuit.topo_order c);
  { circuit = c; mgr; funcs; budget = node_budget }

let circuit t = t.circuit
let manager t = t.mgr
let node_function t id = t.funcs.(id)

let probabilities t ?(p_source = 0.5) () =
  let p _ = p_source in
  Array.map (fun f -> Robdd.probability t.mgr f ~p) t.funcs

let exact_expected_leakage_uw t ?(p_source = 0.5) () =
  let c = t.circuit in
  let p _ = p_source in
  let total_na = ref 0.0 in
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then
        match
          Techlib.Cell.of_gate nd.Circuit.kind
            ~fanin:(Array.length nd.Circuit.fanins)
        with
        | None -> invalid_arg "Circuit_bdd: circuit is not mapped"
        | Some cell ->
          let k = Array.length nd.Circuit.fanins in
          (* probability of each joint fanin state from the product of
             the (correlated) fanin functions *)
          for state = 0 to (1 lsl k) - 1 do
            let conj = ref (Robdd.one t.mgr) in
            for i = 0 to k - 1 do
              let f = t.funcs.(nd.Circuit.fanins.(i)) in
              let lit =
                if state land (1 lsl i) <> 0 then f else Robdd.bnot t.mgr f
              in
              conj := Robdd.band t.mgr !conj lit
            done;
            check_budget t.mgr t.budget;
            let pr = Robdd.probability t.mgr !conj ~p in
            if pr > 0.0 then
              total_na :=
                !total_na +. (pr *. Techlib.Leakage_table.leakage_na cell ~state)
          done)
    (Circuit.nodes c);
  !total_na *. Techlib.Leakage_table.vdd /. 1000.0

let equivalent c1 c2 =
  let names_of f c = Array.map (fun id -> (Circuit.node c id).Circuit.name) (f c) in
  if names_of Circuit.sources c1 <> names_of Circuit.sources c2 then
    invalid_arg "Circuit_bdd.equivalent: source interfaces differ";
  if
    Array.length (Circuit.outputs c1) <> Array.length (Circuit.outputs c2)
    || Array.length (Circuit.dffs c1) <> Array.length (Circuit.dffs c2)
  then invalid_arg "Circuit_bdd.equivalent: sink interfaces differ";
  let mgr = Robdd.manager () in
  let build_into c =
    let funcs = Array.make (Circuit.node_count c) (Robdd.zero mgr) in
    Array.iteri
      (fun pos id -> funcs.(id) <- Robdd.var mgr pos)
      (Circuit.sources c);
    Array.iter
      (fun id ->
        let nd = Circuit.node c id in
        if not (Gate.is_source nd.kind) then
          funcs.(id) <-
            gate_apply mgr nd.kind
              (Array.to_list (Array.map (fun f -> funcs.(f)) nd.fanins));
        if Robdd.node_count mgr > 2_000_000 then raise Too_large)
      (Circuit.topo_order c);
    funcs
  in
  let f1 = build_into c1 and f2 = build_into c2 in
  let sink_funcs funcs c =
    let po =
      Array.to_list (Circuit.outputs c)
      |> List.map (fun id -> funcs.((Circuit.node c id).Circuit.fanins.(0)))
    in
    let ns =
      Array.to_list (Circuit.dffs c)
      |> List.map (fun id -> funcs.((Circuit.node c id).Circuit.fanins.(0)))
    in
    po @ ns
  in
  List.for_all2 Robdd.equal (sink_funcs f1 c1) (sink_funcs f2 c2)
