(** Symbolic analysis of a combinational core with BDDs.

    Builds one BDD per node over the circuit's sources (variable [i] =
    position [i] in [Circuit.sources]). Intended for the small and
    mid-size benchmarks — BDD sizes are checked against a node budget
    so callers can fall back to sampling on blow-up. *)

open Netlist

type t

exception Too_large
(** Raised by [build] when the manager exceeds the node budget. *)

val build : ?node_budget:int -> Circuit.t -> t
(** Default budget: 2_000_000 live nodes.
    @raise Too_large on blow-up. *)

val circuit : t -> Circuit.t

val manager : t -> Robdd.manager

val node_function : t -> int -> Robdd.t
(** The BDD of a node's output over the source variables. *)

val probabilities : t -> ?p_source:float -> unit -> float array
(** Exact one-probability of every node under independent source
    probabilities (default 0.5) — no independence assumption between
    internal lines, unlike {!Power.Observability}. *)

val exact_expected_leakage_uw : t -> ?p_source:float -> unit -> float
(** Exact expected static power under random sources: per-gate state
    probabilities are computed from the (possibly correlated) fanin
    functions by BDD products. *)

val equivalent : Circuit.t -> Circuit.t -> bool
(** Formal combinational equivalence: same primary outputs and
    next-state functions over the same source names. Circuits must
    have matching source/output/flip-flop names.
    @raise Invalid_argument if the interfaces differ.
    @raise Too_large on blow-up. *)
