(* Classic hash-consed ROBDD with an if-then-else apply core.

   Node representation: ids 0 and 1 are the terminals; every other
   node is (var, low, high) with low = cofactor at var=0. Reduction
   invariants: low <> high, and children only mention larger variable
   indices. Handles carry their manager, so structural equality of
   handles is physical equality of node ids. *)

type node = {
  id : int;
  var : int; (* max_int for terminals *)
  low : int;
  high : int;
}

type manager = {
  mutable nodes : node array; (* indexed by id *)
  mutable count : int;
  unique : (int * int * int, int) Hashtbl.t; (* (var, low, high) -> id *)
  ite_cache : (int * int * int, int) Hashtbl.t;
  restrict_cache : (int * int * int, int) Hashtbl.t;
  quant_cache : (int * int, int) Hashtbl.t;
}

type t = {
  mgr : manager;
  node_id : int;
}

let terminal0 = { id = 0; var = max_int; low = 0; high = 0 }
let terminal1 = { id = 1; var = max_int; low = 1; high = 1 }

let manager ?(cache_size = 4096) () =
  let nodes = Array.make 1024 terminal0 in
  nodes.(0) <- terminal0;
  nodes.(1) <- terminal1;
  {
    nodes;
    count = 2;
    unique = Hashtbl.create cache_size;
    ite_cache = Hashtbl.create cache_size;
    restrict_cache = Hashtbl.create 512;
    quant_cache = Hashtbl.create 512;
  }

let handle m id = { mgr = m; node_id = id }

let node m id = m.nodes.(id)

let mk m var low high =
  if low = high then low
  else begin
    let key = (var, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      if m.count = Array.length m.nodes then begin
        let bigger = Array.make (2 * m.count) terminal0 in
        Array.blit m.nodes 0 bigger 0 m.count;
        m.nodes <- bigger
      end;
      let id = m.count in
      m.nodes.(id) <- { id; var; low; high };
      m.count <- m.count + 1;
      Hashtbl.add m.unique key id;
      id
  end

let zero m = handle m 0
let one m = handle m 1

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative index";
  handle m (mk m i 0 1)

let equal a b = a.node_id = b.node_id

let is_const t =
  if t.node_id = 0 then Some false
  else if t.node_id = 1 then Some true
  else None

(* Shannon-expansion ITE with standard terminal cases. *)
let rec ite_ids m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
      let nf = node m f and ng = node m g and nh = node m h in
      let v = min nf.var (min ng.var nh.var) in
      let cof n nn = if nn.var = v then (nn.low, nn.high) else (n, n) in
      let f0, f1 = cof f nf in
      let g0, g1 = cof g ng in
      let h0, h1 = cof h nh in
      let low = ite_ids m f0 g0 h0 in
      let high = ite_ids m f1 g1 h1 in
      let r = mk m v low high in
      Hashtbl.replace m.ite_cache key r;
      r
  end

let ite m f g h = handle m (ite_ids m f.node_id g.node_id h.node_id)

let bnot m a = handle m (ite_ids m a.node_id 0 1)
let band m a b = handle m (ite_ids m a.node_id b.node_id 0)
let bor m a b = handle m (ite_ids m a.node_id 1 b.node_id)

let bxor m a b =
  let nb = ite_ids m b.node_id 0 1 in
  handle m (ite_ids m a.node_id nb b.node_id)

let bnand m a b = bnot m (band m a b)
let bnor m a b = bnot m (bor m a b)
let bxnor m a b = bnot m (bxor m a b)

let rec restrict_ids m f v value =
  if f < 2 then f
  else begin
    let nf = node m f in
    if nf.var > v then f
    else if nf.var = v then if value then nf.high else nf.low
    else begin
      let key = (f, v, if value then 1 else 0) in
      match Hashtbl.find_opt m.restrict_cache key with
      | Some r -> r
      | None ->
        let r =
          mk m nf.var
            (restrict_ids m nf.low v value)
            (restrict_ids m nf.high v value)
        in
        Hashtbl.replace m.restrict_cache key r;
        r
    end
  end

let restrict m f v value = handle m (restrict_ids m f.node_id v value)

let rec exists_ids m f v =
  if f < 2 then f
  else begin
    let nf = node m f in
    if nf.var > v then f
    else if nf.var = v then ite_ids m nf.low 1 nf.high
    else begin
      let key = (f, v) in
      match Hashtbl.find_opt m.quant_cache key with
      | Some r -> r
      | None ->
        let r = mk m nf.var (exists_ids m nf.low v) (exists_ids m nf.high v) in
        Hashtbl.replace m.quant_cache key r;
        r
    end
  end

let exists m f v = handle m (exists_ids m f.node_id v)

let eval t assignment =
  let m = t.mgr in
  let rec go id =
    if id = 0 then false
    else if id = 1 then true
    else begin
      let n = node m id in
      go (if assignment n.var then n.high else n.low)
    end
  in
  go t.node_id

let size t =
  let m = t.mgr in
  let seen = Hashtbl.create 64 in
  let rec go id =
    if id >= 2 && not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      let n = node m id in
      go n.low;
      go n.high
    end
  in
  go t.node_id;
  Hashtbl.length seen

let node_count m = m.count

(* Probability of the function being 1 under independent per-variable
   one-probabilities; linear in the BDD size with memoisation. *)
let probability _m t ~p =
  let m = t.mgr in
  let cache = Hashtbl.create 64 in
  let rec go id =
    if id = 0 then 0.0
    else if id = 1 then 1.0
    else begin
      match Hashtbl.find_opt cache id with
      | Some x -> x
      | None ->
        let n = node m id in
        let pv = p n.var in
        let x = ((1.0 -. pv) *. go n.low) +. (pv *. go n.high) in
        Hashtbl.replace cache id x;
        x
    end
  in
  go t.node_id

let sat_count m t ~n_vars =
  probability m t ~p:(fun _ -> 0.5) *. (2.0 ** float_of_int n_vars)

let any_sat t =
  let m = t.mgr in
  if t.node_id = 0 then None
  else begin
    let rec go id acc =
      if id = 1 then acc
      else begin
        let n = node m id in
        if n.high <> 0 then go n.high ((n.var, true) :: acc)
        else go n.low ((n.var, false) :: acc)
      end
    in
    Some (List.rev (go t.node_id []))
  end
