(** Reduced ordered binary decision diagrams.

    A small classic ROBDD package (hash-consed nodes, memoised apply /
    restrict / exists, model counting and probability weighting) used
    for the exact analyses that back up the heuristic ones:

    - exact signal probabilities ({!Circuit_bdd.probabilities}) to
      quantify the independence assumption in
      {!Power.Observability};
    - formal equivalence checking of the technology mapper and the
      gate-input reordering ({!Circuit_bdd.equivalent});
    - exact best-vector searches on small blocks.

    Variables are dense non-negative integers ordered by their index
    (smaller index nearer the root). *)

type manager

type t
(** A BDD handle, valid for the manager that created it. *)

val manager : ?cache_size:int -> unit -> manager

val zero : manager -> t
val one : manager -> t

val var : manager -> int -> t
(** The function of a single variable.
    @raise Invalid_argument on a negative index. *)

val equal : t -> t -> bool
(** Constant-time: hash-consing makes structural equality physical. *)

val is_const : t -> bool option
(** [Some b] for the constant [b], [None] otherwise. *)

val bnot : manager -> t -> t
val band : manager -> t -> t -> t
val bor : manager -> t -> t -> t
val bxor : manager -> t -> t -> t
val bnand : manager -> t -> t -> t
val bnor : manager -> t -> t -> t
val bxnor : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t

val restrict : manager -> t -> int -> bool -> t
(** Cofactor with respect to one variable. *)

val exists : manager -> t -> int -> t
(** Existential quantification of one variable. *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under a full assignment. *)

val size : t -> int
(** Number of distinct internal nodes. *)

val node_count : manager -> int
(** Total live nodes in the manager (monotone; no GC). *)

val sat_count : manager -> t -> n_vars:int -> float
(** Number of satisfying assignments over [n_vars] variables (every
    used variable index must be < [n_vars]). *)

val probability : manager -> t -> p:(int -> float) -> float
(** Probability that the function is 1 when variable [i] is 1
    independently with probability [p i]. *)

val any_sat : t -> (int * bool) list option
(** Some satisfying partial assignment (unmentioned variables free), or
    [None] for the zero function. *)
