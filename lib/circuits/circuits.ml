open Netlist

let s27_bench_text =
  "# s27 (ISCAS89)\n\
   INPUT(G0)\n\
   INPUT(G1)\n\
   INPUT(G2)\n\
   INPUT(G3)\n\
   OUTPUT(G17)\n\
   G5 = DFF(G10)\n\
   G6 = DFF(G11)\n\
   G7 = DFF(G13)\n\
   G14 = NOT(G0)\n\
   G17 = NOT(G11)\n\
   G8 = AND(G14, G6)\n\
   G15 = OR(G12, G8)\n\
   G16 = OR(G3, G8)\n\
   G9 = NAND(G16, G15)\n\
   G10 = NOR(G14, G11)\n\
   G11 = NOR(G5, G9)\n\
   G12 = NOR(G1, G7)\n\
   G13 = NAND(G2, G12)\n"

let s27 () = Bench_parser.parse_string ~name:"s27" s27_bench_text

type profile = {
  name : string;
  n_pi : int;
  n_po : int;
  n_ff : int;
  n_gates : int;
  seed : int;
}

(* Published ISCAS89 interface statistics for the paper's Table I. *)
let table1_profiles =
  [
    { name = "s344"; n_pi = 9; n_po = 11; n_ff = 15; n_gates = 160; seed = 344 };
    { name = "s382"; n_pi = 3; n_po = 6; n_ff = 21; n_gates = 158; seed = 382 };
    { name = "s444"; n_pi = 3; n_po = 6; n_ff = 21; n_gates = 181; seed = 444 };
    { name = "s510"; n_pi = 19; n_po = 7; n_ff = 6; n_gates = 211; seed = 510 };
    { name = "s641"; n_pi = 35; n_po = 24; n_ff = 19; n_gates = 379; seed = 641 };
    { name = "s713"; n_pi = 35; n_po = 23; n_ff = 19; n_gates = 393; seed = 713 };
    { name = "s1196"; n_pi = 14; n_po = 14; n_ff = 18; n_gates = 529; seed = 1196 };
    { name = "s1238"; n_pi = 14; n_po = 14; n_ff = 18; n_gates = 508; seed = 1238 };
    { name = "s1423"; n_pi = 17; n_po = 5; n_ff = 74; n_gates = 657; seed = 1423 };
    { name = "s1494"; n_pi = 8; n_po = 19; n_ff = 6; n_gates = 647; seed = 1494 };
    { name = "s5378"; n_pi = 35; n_po = 49; n_ff = 179; n_gates = 2779; seed = 5378 };
    { name = "s9234"; n_pi = 36; n_po = 39; n_ff = 211; n_gates = 5597; seed = 9234 };
  ]

(* Deterministic scale tier: seeded profiles an order of magnitude
   beyond Table I, for exercising the pattern-parallel kernels where
   per-batch setup has fully amortised. Interface ratios follow the
   larger ISCAS89 entries (FFs ~1% of gates, wide PI/PO belts). *)
let scale_profiles =
  [
    {
      name = "g50k";
      n_pi = 64;
      n_po = 64;
      n_ff = 512;
      n_gates = 50_000;
      seed = 50_000;
    };
    {
      name = "g100k";
      n_pi = 96;
      n_po = 96;
      n_ff = 1024;
      n_gates = 100_000;
      seed = 100_000;
    };
  ]

(* Gate-kind distribution matching typical mapped ISCAS89 content:
   mostly 2-input NAND/NOR, a tail of wider gates, plenty of
   inverters. *)
let pick_kind rng =
  let r = Util.Rng.int rng 100 in
  if r < 30 then (Gate.Not, 1)
  else if r < 58 then (Gate.Nand, 2)
  else if r < 76 then (Gate.Nor, 2)
  else if r < 85 then (Gate.Nand, 3)
  else if r < 92 then (Gate.Nor, 3)
  else if r < 97 then (Gate.Nand, 4)
  else (Gate.Nor, 4)

(* Signals are created level by level (sources at level 0), so the
   signals eligible as fanins of a level-l gate are exactly a prefix of
   the creation order. A queue of not-yet-driving signals lets each new
   gate drain one, so no logic dangles; stale entries are skipped
   lazily, keeping picks O(1) amortised. *)
type pool = {
  mutable signals : int array;
  mutable count : int;
  mutable used : bool array;
  mutable level_of : int array;
  pending : int Queue.t;
  rng : Util.Rng.t;
}

let pool_create rng cap =
  {
    signals = Array.make (max cap 16) (-1);
    count = 0;
    used = Array.make (max cap 16) false;
    level_of = Array.make (max cap 16) 0;
    pending = Queue.create ();
    rng;
  }

let pool_add p id ~level =
  assert (p.count < Array.length p.signals && id < Array.length p.used);
  p.signals.(p.count) <- id;
  p.count <- p.count + 1;
  p.used.(id) <- false;
  p.level_of.(id) <- level;
  Queue.add id p.pending

let pool_mark_used p id = p.used.(id) <- true

(* Uniform pick among the first [limit] created signals, preferring the
   [prev_lo, prev_hi) slice (the previous level) for locality. *)
let pool_pick p ~limit ~prev_lo ~prev_hi ~exclude =
  let candidate () =
    if prev_hi > prev_lo && Util.Rng.int p.rng 100 < 60 then
      p.signals.(prev_lo + Util.Rng.int p.rng (prev_hi - prev_lo))
    else p.signals.(Util.Rng.int p.rng limit)
  in
  let rec go attempts =
    let cand = candidate () in
    if attempts > 0 && List.mem cand exclude then go (attempts - 1) else cand
  in
  go 8

(* Pop a signal that still drives nothing and sits below [max_level]. *)
let pool_take_unused p ~max_level ~exclude =
  let parked = ref [] in
  let rec go () =
    if Queue.is_empty p.pending then None
    else begin
      let cand = Queue.take p.pending in
      if p.used.(cand) then go ()
      else if p.level_of.(cand) >= max_level || List.mem cand exclude then begin
        parked := cand :: !parked;
        go ()
      end
      else Some cand
    end
  in
  let result = go () in
  List.iter (fun id -> Queue.add id p.pending) !parked;
  result

let target_depth n_gates =
  let log2 = log (float_of_int (max n_gates 2)) /. log 2.0 in
  max 8 (int_of_float (4.0 +. (3.5 *. log2)))

let generate prof =
  if prof.n_pi <= 0 || prof.n_po <= 0 || prof.n_ff < 0 || prof.n_gates <= 0 then
    invalid_arg "Circuits.generate: malformed profile";
  let rng = Util.Rng.create prof.seed in
  let b = Circuit.Builder.create ~name:prof.name () in
  let cap = prof.n_pi + prof.n_ff + prof.n_gates in
  let pool = pool_create rng cap in
  for i = 0 to prof.n_pi - 1 do
    pool_add pool (Circuit.Builder.add_input b (Printf.sprintf "pi%d" i)) ~level:0
  done;
  let ffs =
    Array.init prof.n_ff (fun i ->
        let id = Circuit.Builder.declare_dff b (Printf.sprintf "ff%d" i) in
        pool_add pool id ~level:0;
        id)
  in
  let depth = target_depth prof.n_gates in
  let per_level = max 1 (prof.n_gates / depth) in
  let gate_no = ref 0 in
  let level = ref 1 in
  let prev_lo = ref 0 and prev_hi = ref pool.count in
  while !gate_no < prof.n_gates do
    let level_start = pool.count in
    let remaining = prof.n_gates - !gate_no in
    let this_level = min remaining per_level in
    for _ = 1 to this_level do
      let kind, fanin = pick_kind rng in
      let limit = level_start in
      (* the first pin drains a yet-unused lower-level signal *)
      let first =
        match pool_take_unused pool ~max_level:!level ~exclude:[] with
        | Some id -> id
        | None ->
          pool_pick pool ~limit ~prev_lo:!prev_lo ~prev_hi:!prev_hi ~exclude:[]
      in
      let fanins = ref [ first ] in
      while List.length !fanins < fanin do
        let f =
          pool_pick pool ~limit ~prev_lo:!prev_lo ~prev_hi:!prev_hi
            ~exclude:!fanins
        in
        fanins := f :: !fanins
      done;
      List.iter (pool_mark_used pool) !fanins;
      let id =
        Circuit.Builder.add_gate b kind
          (Printf.sprintf "g%d" !gate_no)
          (List.rev !fanins)
      in
      incr gate_no;
      pool_add pool id ~level:!level
    done;
    prev_lo := level_start;
    prev_hi := pool.count;
    incr level
  done;
  (* Flip-flop D inputs and primary outputs drain the remaining unused
     signals first. *)
  let next_sink ~exclude =
    let id =
      match pool_take_unused pool ~max_level:max_int ~exclude with
      | Some id -> id
      | None ->
        pool_pick pool ~limit:pool.count ~prev_lo:!prev_lo ~prev_hi:!prev_hi
          ~exclude
    in
    pool_mark_used pool id;
    id
  in
  Array.iter
    (fun ff -> Circuit.Builder.connect_dff b ff ~d:(next_sink ~exclude:[ ff ]))
    ffs;
  for i = 0 to prof.n_po - 1 do
    ignore
      (Circuit.Builder.add_output b (Printf.sprintf "po%d" i)
         (next_sink ~exclude:[]))
  done;
  Circuit.Builder.build b

let by_name name =
  if name = "s27" then s27 ()
  else
    match
      List.find_opt
        (fun p -> p.name = name)
        (table1_profiles @ scale_profiles)
    with
    | Some p -> generate p
    | None -> raise Not_found

let names =
  "s27"
  :: List.map (fun p -> p.name) table1_profiles
  @ List.map (fun p -> p.name) scale_profiles

let find name =
  match by_name name with
  | c -> Ok c
  | exception Not_found ->
    Error
      (Printf.sprintf "unknown circuit %S; valid benchmark names: %s" name
         (String.concat ", " names))
