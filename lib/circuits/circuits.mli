(** Benchmark circuits for the experiments.

    The paper evaluates on ISCAS89 netlists, which are not shipped in
    this sealed environment. The genuine s27 is embedded below; for
    the twelve Table I circuits a deterministic generator synthesises
    netlists with each benchmark's published interface and size
    statistics (PI/PO/FF/gate counts) and a realistic structure
    (fanin distribution over the NAND/NOR/INV library, locality-biased
    wiring, sequential feedback through the flip-flops, no dangling
    logic). Real [.bench] files drop in through
    {!Netlist.Bench_parser} at any time. See DESIGN.md §2 for why the
    substitution preserves the experiment's shape. *)

open Netlist

val s27 : unit -> Circuit.t
(** The genuine ISCAS89 s27 (4 PI / 1 PO / 3 FF / 10 gates), unmapped
    (contains AND/OR gates; run {!Techmap.Mapper.map} before power
    analysis). *)

val s27_bench_text : string

(** Size profile of a benchmark to synthesise. *)
type profile = {
  name : string;
  n_pi : int;
  n_po : int;
  n_ff : int;
  n_gates : int;
  seed : int;
}

val table1_profiles : profile list
(** The twelve circuits of the paper's Table I (s344 … s9234) with
    their published interface statistics. *)

val scale_profiles : profile list
(** Deterministic scale tier beyond Table I: [g50k] (50k gates /
    512 FFs) and [g100k] (100k gates / 1024 FFs), for benchmarking the
    pattern-parallel kernels at sizes where per-batch setup has fully
    amortised. *)

val generate : profile -> Circuit.t
(** Deterministic: equal profiles give identical netlists. The result
    uses only NAND2-4 / NOR2-4 / INV, so it is already mapped. *)

val by_name : string -> Circuit.t
(** ["s27"] gives the embedded netlist, any profile name its generated
    circuit.
    @raise Not_found for unknown names. *)

val names : string list
(** All available benchmark names, s27 first. *)

val find : string -> (Circuit.t, string) result
(** Like {!by_name} but an unknown name yields a human-usable error
    listing every valid benchmark name instead of raising. *)
