module Json = Telemetry.Json
module Errors = Scanpower_errors

(* /2 added the W-word and domain-sharded kernel metrics as new fields
   beside the /1 ones, and /3 the PPSFP fault-sim and scale-tier
   fields beside those, so an older baseline pairs metric-for-metric
   with a newer file: both load, and a bump never manufactures a
   regression. *)
let accepted_schemas =
  [
    "scanpower.bench_kernels/1";
    "scanpower.bench_kernels/2";
    "scanpower.bench_kernels/3";
  ]

type value = I of int | F of float

type file = {
  fast : bool;
  circuits : (string * (string * value) list) list;
}

let value_to_float = function I i -> float_of_int i | F f -> f

let value_to_string = function
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.6g" f

(* ------------------------------------------------------------------ *)
(* loading                                                             *)
(* ------------------------------------------------------------------ *)

let fail path msg =
  Errors.raise_error ~code:Errors.Parse ~stage:"bench-diff"
    (Printf.sprintf "%s: %s" path msg)

let metrics_of_json path obj =
  match obj with
  | Json.Obj fields ->
    List.filter_map
      (fun (k, v) ->
        match v with
        | Json.Int i -> Some (k, I i)
        | Json.Float f -> Some (k, F f)
        | Json.Null -> None (* a non-finite measurement: not comparable *)
        | _ -> fail path (Printf.sprintf "metric %S is not a number" k))
      fields
  | _ -> fail path "circuit entry is not an object"

let load path =
  let raw =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg ->
      Errors.raise_error ~code:Errors.Io ~stage:"bench-diff" msg
  in
  match Json.of_string (String.trim raw) with
  | Error msg -> fail path msg
  | Ok obj -> (
    (match Json.member "schema" obj with
    | Some (Json.String s) when List.mem s accepted_schemas -> ()
    | Some (Json.String s) ->
      fail path
        (Printf.sprintf "schema %S, expected one of %s" s
           (String.concat ", "
              (List.map (Printf.sprintf "%S") accepted_schemas)))
    | _ -> fail path "missing schema field");
    let fast =
      match Json.member "fast" obj with Some (Json.Bool b) -> b | _ -> false
    in
    match Json.member "circuits" obj with
    | Some (Json.Obj circuits) ->
      {
        fast;
        circuits =
          List.map (fun (name, m) -> (name, metrics_of_json path m)) circuits;
      }
    | _ -> fail path "missing circuits object")

(* ------------------------------------------------------------------ *)
(* comparison                                                          *)
(* ------------------------------------------------------------------ *)

type kind = Count | Time | Rate | Config

(* Classified by naming convention, which the bench writer keeps
   deliberately strict: [_speedup] and [_events_s] are
   higher-is-better rates, any other [_s] suffix is a lower-is-better
   wall-clock time, and everything else is an exact count (a structural
   property of the circuit or the algorithm, where any drift means the
   two runs did not compute the same thing). [packed_width] and
   [domains] are run {e configuration} — how wide the W-word batch and
   the sharding fan-out were — so a change between files is deliberate,
   reported but never a regression.

   Gate-bearing rates are additionally pinned by name: the serve
   stage's warm-up amortisation contract ([serve_warm_speedup]) rides
   the [_speedup] suffix today, but it is the one metric whose
   misclassification would silently un-gate a whole subsystem, so it
   must never depend on the naming convention alone (a test pins
   both). *)
let rate_metrics = [ "serve_warm_speedup" ]

let kind_of_metric name =
  if name = "packed_width" || name = "domains" || name = "packed_auto_width"
  then Config
  else if List.mem name rate_metrics then Rate
  else if
    String.ends_with ~suffix:"_speedup" name
    || String.ends_with ~suffix:"_events_s" name
  then Rate
  else if String.ends_with ~suffix:"_s" name then Time
  else Count

let kind_to_string = function
  | Count -> "count"
  | Time -> "time"
  | Rate -> "rate"
  | Config -> "config"

type finding = {
  f_circuit : string;
  f_metric : string;
  f_kind : kind;
  f_old : value;
  f_new : value;
  f_delta_pct : float option;  (** [None] when the baseline is zero *)
  f_regressed : bool;
}

type report = {
  findings : finding list;  (** every compared metric, regressed first *)
  compared : int;
  regressions : finding list;
  fast_mismatch : bool;
  only_old_circuits : string list;
  only_new_circuits : string list;
  only_old_metrics : (string * string) list;  (** (circuit, metric) *)
}

let delta_pct ov nv =
  if ov = 0.0 then None else Some (100.0 *. (nv -. ov) /. ov)

let compare_metric ~time_threshold ~rate_threshold circuit metric old_v new_v =
  let kind = kind_of_metric metric in
  let ov = value_to_float old_v and nv = value_to_float new_v in
  let regressed =
    match kind with
    | Count -> ov <> nv
    | Time ->
      (* a zero baseline admits no ratio; only flag it when the new
         value is decidedly nonzero *)
      if ov <= 0.0 then nv > 1e-9 else nv > ov *. (1.0 +. time_threshold)
    | Rate -> if ov <= 0.0 then false else nv < ov *. (1.0 -. rate_threshold)
    | Config -> false
  in
  {
    f_circuit = circuit;
    f_metric = metric;
    f_kind = kind;
    f_old = old_v;
    f_new = new_v;
    f_delta_pct = delta_pct ov nv;
    f_regressed = regressed;
  }

let diff ?(time_threshold = 0.5) ?(rate_threshold = 0.5) old_f new_f =
  let findings = ref [] in
  let only_old_metrics = ref [] in
  let only_new_circuits =
    List.filter
      (fun (name, _) -> not (List.mem_assoc name old_f.circuits))
      new_f.circuits
    |> List.map fst
  in
  let only_old_circuits = ref [] in
  List.iter
    (fun (name, old_metrics) ->
      match List.assoc_opt name new_f.circuits with
      | None -> only_old_circuits := name :: !only_old_circuits
      | Some new_metrics ->
        List.iter
          (fun (metric, old_v) ->
            match List.assoc_opt metric new_metrics with
            | None -> only_old_metrics := (name, metric) :: !only_old_metrics
            | Some new_v ->
              findings :=
                compare_metric ~time_threshold ~rate_threshold name metric
                  old_v new_v
                :: !findings)
          old_metrics)
    old_f.circuits;
  let findings =
    List.stable_sort
      (fun a b -> compare b.f_regressed a.f_regressed)
      (List.rev !findings)
  in
  let regressions = List.filter (fun f -> f.f_regressed) findings in
  {
    findings;
    compared = List.length findings;
    regressions;
    fast_mismatch = old_f.fast <> new_f.fast;
    only_old_circuits = List.rev !only_old_circuits;
    only_new_circuits;
    only_old_metrics = List.rev !only_old_metrics;
  }

(* A metric present in the baseline but absent from the new file is a
   coverage loss and counts against the gate; metrics or circuits that
   only exist in the new file are additions and pass (that is what
   lets a baseline predate newly added bench fields). *)
let has_regression r = r.regressions <> [] || r.only_old_metrics <> []

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_finding fmt f =
  let delta =
    match f.f_delta_pct with
    | Some d -> Printf.sprintf "%+.1f%%" d
    | None -> "n/a"
  in
  Format.fprintf fmt "%-12s %-10s %-26s %12s -> %-12s %8s  %s" f.f_circuit
    (kind_to_string f.f_kind) f.f_metric (value_to_string f.f_old)
    (value_to_string f.f_new) delta
    (if f.f_regressed then "REGRESSED" else "ok")

let pp_report fmt r =
  Format.fprintf fmt "%-12s %-10s %-26s %12s    %-12s %8s@." "circuit" "kind"
    "metric" "old" "new" "delta";
  List.iter (fun f -> Format.fprintf fmt "%a@." pp_finding f) r.findings;
  if r.fast_mismatch then
    Format.fprintf fmt
      "note: fast flags differ between the two files; timings were taken \
       under different rep counts@.";
  List.iter
    (Format.fprintf fmt "note: circuit %s only in baseline (not compared)@.")
    r.only_old_circuits;
  List.iter
    (Format.fprintf fmt "note: circuit %s only in new file (not compared)@.")
    r.only_new_circuits;
  List.iter
    (fun (c, m) ->
      Format.fprintf fmt "REGRESSED: %s.%s present in baseline, missing from \
                          new file@." c m)
    r.only_old_metrics;
  Format.fprintf fmt "%d metrics compared, %d regression(s)@." r.compared
    (List.length r.regressions + List.length r.only_old_metrics)

let report_to_json r =
  let finding_json f =
    Json.Obj
      ([
         ("circuit", Json.String f.f_circuit);
         ("metric", Json.String f.f_metric);
         ("kind", Json.String (kind_to_string f.f_kind));
         ("old", (match f.f_old with I i -> Json.Int i | F x -> Json.Float x));
         ("new", (match f.f_new with I i -> Json.Int i | F x -> Json.Float x));
         ("regressed", Json.Bool f.f_regressed);
       ]
      @
      match f.f_delta_pct with
      | Some d -> [ ("delta_pct", Json.Float d) ]
      | None -> [])
  in
  Json.Obj
    [
      ("schema", Json.String "scanpower.bench_diff/1");
      ("compared", Json.Int r.compared);
      ( "regressions",
        Json.Int (List.length r.regressions + List.length r.only_old_metrics)
      );
      ("fast_mismatch", Json.Bool r.fast_mismatch);
      ("findings", Json.List (List.map finding_json r.findings));
      ( "missing_metrics",
        Json.List
          (List.map
             (fun (c, m) -> Json.String (c ^ "." ^ m))
             r.only_old_metrics) );
    ]
