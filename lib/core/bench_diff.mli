(** Regression gate over two [BENCH_kernels.json] files.

    Compares every metric the baseline and the new file share, circuit
    by circuit, with per-class noise thresholds:

    - {e counts} (no recognised suffix — nodes, faults, toggles, ...)
      must match exactly: any drift means the two runs did not compute
      the same thing;
    - {e times} ([_s] suffix) regress when
      [new > old * (1 + time_threshold)];
    - {e rates} ([_speedup] / [_events_s] suffixes, higher is better)
      regress when [new < old * (1 - rate_threshold)];
    - {e config} ([packed_width], [domains]) records how the run was
      set up and never regresses — a change is visible in the table
      but deliberate by definition.

    Accepts the [scanpower.bench_kernels/1], [/2] and [/3] schemas and
    pairs their shared metrics, so an older baseline gates a newer run
    — the /2 additions (W-word and domain-sharded timings) and /3
    additions (PPSFP fault-sim and scale-tier fields) simply pass as
    new metrics.

    Both thresholds default to [0.5] (±50%), loose enough to absorb
    run-to-run noise on one machine while still catching a 2x
    slowdown; CI across machines passes an explicitly wider
    [time_threshold]. A metric present only in the baseline counts as
    a regression (coverage loss); circuits or metrics present only in
    the new file are additions and pass. *)

type value = I of int | F of float

type file = {
  fast : bool;  (** the writer's reduced-reps flag *)
  circuits : (string * (string * value) list) list;
}

val load : string -> file
(** Parse a [BENCH_kernels.json]; raises {!Scanpower_errors.Error}
    ([Io] / [Parse]) on unreadable or malformed input, including a
    schema mismatch. *)

type kind = Count | Time | Rate | Config

val kind_of_metric : string -> kind
(** Suffix convention: [_speedup]/[_events_s] → [Rate], other [_s] →
    [Time], the literal names
    [packed_width]/[domains]/[packed_auto_width] → [Config] (deliberate
    run configuration, never a regression), everything else → [Count].
    Gate-bearing rates are additionally pinned by literal name
    ([serve_warm_speedup]) so the serve stage's amortisation contract
    is gated even if the suffix convention drifts. *)

type finding = {
  f_circuit : string;
  f_metric : string;
  f_kind : kind;
  f_old : value;
  f_new : value;
  f_delta_pct : float option;  (** [None] when the baseline is zero *)
  f_regressed : bool;
}

type report = {
  findings : finding list;  (** every compared metric, regressed first *)
  compared : int;
  regressions : finding list;
  fast_mismatch : bool;
  only_old_circuits : string list;
  only_new_circuits : string list;
  only_old_metrics : (string * string) list;  (** (circuit, metric) *)
}

val diff : ?time_threshold:float -> ?rate_threshold:float -> file -> file -> report
(** [diff baseline current]. *)

val has_regression : report -> bool
(** True when any shared metric regressed or a baseline metric is
    missing from the new file — the condition under which the CLI
    exits with code 6. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable table, one line per compared metric (regressions
    first), followed by notes and a summary line. *)

val report_to_json : report -> Telemetry.Json.t
