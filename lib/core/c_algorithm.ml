open Netlist

type outcome = {
  pi_pattern : bool array;
  blocked_gates : int;
  failed_gates : int;
  residual_transition_nodes : int;
}

let find ?backtrack_limit ?(seed = 8) c =
  let res =
    Controlled_pattern.find ?backtrack_limit ~direction:Justify.Structural c
      ~muxable:[]
  in
  let rng = Util.Rng.create seed in
  let pis = Circuit.inputs c in
  let pi_pattern =
    Array.map
      (fun id ->
        match res.Controlled_pattern.values.(id) with
        | Logic.Zero -> false
        | Logic.One -> true
        | Logic.X -> Util.Rng.bool rng)
      pis
  in
  {
    pi_pattern;
    blocked_gates = res.Controlled_pattern.blocked_gates;
    failed_gates = res.Controlled_pattern.failed_gates;
    residual_transition_nodes = res.Controlled_pattern.residual_transition_nodes;
  }
