(** The input-control baseline of Huang & Lee [8]: find a primary-input
    pattern that blocks scan-chain transitions inside the combinational
    logic during shifting. Same transition-blocking search as the
    proposed method but restricted to the primary inputs (no
    multiplexed pseudo-inputs) and undirected by leakage — exactly the
    comparison the paper's Table I makes. Leftover don't-care primary
    inputs are filled pseudo-randomly (the baseline has no leakage
    objective). *)

open Netlist

type outcome = {
  pi_pattern : bool array;  (** fully-specified, positional over PIs *)
  blocked_gates : int;
  failed_gates : int;
  residual_transition_nodes : int;
}

val find : ?backtrack_limit:int -> ?seed:int -> Circuit.t -> outcome
