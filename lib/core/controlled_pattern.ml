open Netlist

let m_blocked = Telemetry.Counter.make "core.controlled_pattern.blocked_gates"
let m_failed = Telemetry.Counter.make "core.controlled_pattern.failed_gates"
let m_tns_rounds = Telemetry.Counter.make "core.controlled_pattern.tns_rounds"

type config = {
  direction : Justify.direction;
  backtrack_limit : int;
}

type outcome = {
  values : Logic.t array;
  controlled : int list;
  assignment : (int * Logic.t) list;
  blocked_gates : int;
  failed_gates : int;
  residual_transition_nodes : int;
}

let find ?(backtrack_limit = 50) ~direction c ~muxable =
  let controlled = Array.to_list (Circuit.inputs c) @ muxable in
  let muxed = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace muxed id ()) muxable;
  let seeds =
    Array.to_list (Circuit.dffs c)
    |> List.filter (fun id -> not (Hashtbl.mem muxed id))
  in
  let engine =
    Justify.create ~backtrack_limit c ~controllable:controlled ~direction
  in
  let values = Sim.Ternary_sim.make_values c Logic.X in
  Sim.Ternary_sim.propagate c values;
  let failed = Array.make (Circuit.node_count c) false in
  let blocked_gates = ref 0 and failed_gates = ref 0 in
  let values = ref values in
  let continue_ = ref true in
  while !continue_ do
    Telemetry.Counter.inc m_tns_rounds;
    let state = Tns.compute c ~values:!values ~seeds ~failed in
    match Tns.pick_largest_load c state.Tns.tgs with
    | None -> continue_ := false
    | Some mc_tg ->
      let nd = Circuit.node c mc_tg in
      let cv =
        match Gate.controlling_value nd.kind with
        | Some v -> v
        | None -> assert false (* TGS only holds AND/NAND/OR/NOR gates *)
      in
      (* don't-care inputs other than the transition nodes themselves *)
      let candidates =
        Array.to_list nd.fanins
        |> List.filter (fun f ->
               (not state.Tns.tns.(f)) && Logic.equal !values.(f) Logic.X)
        |> Justify.order_candidates engine ~value:cv
      in
      let rec try_inputs = function
        | [] -> false
        | input :: rest ->
          (match Justify.justify engine ~values:!values input cv with
          | Some assigned ->
            values := assigned;
            true
          | None -> try_inputs rest)
      in
      if try_inputs candidates then incr blocked_gates
      else begin
        incr failed_gates;
        failed.(mc_tg) <- true
      end
  done;
  let final = Tns.compute c ~values:!values ~seeds ~failed in
  Telemetry.Counter.add m_blocked !blocked_gates;
  Telemetry.Counter.add m_failed !failed_gates;
  {
    values = !values;
    controlled;
    assignment = List.map (fun id -> (id, !values.(id))) controlled;
    blocked_gates = !blocked_gates;
    failed_gates = !failed_gates;
    residual_transition_nodes = Tns.transition_count final;
  }
