(** FindControlledInputPattern (Section 4, step 2): compute one vector
    for the controlled inputs (primary inputs + multiplexed
    pseudo-inputs) that suppresses the transitions propagating from the
    non-multiplexed pseudo-inputs as close to their origin as possible,
    choosing among blocking vectors by leakage observability.

    Loop: take the transition gate with the largest output capacitance
    (mc_tg), try to justify its controlling value onto one of its
    don't-care inputs (candidate order and the justification itself
    directed by leakage observability); on failure expose the gate's
    fanout to the transition set; repeat until the TGS empties. *)

open Netlist

type config = {
  direction : Justify.direction;
  backtrack_limit : int;
}

type outcome = {
  values : Logic.t array;
      (** final three-valued assignment, fully propagated *)
  controlled : int list;  (** the controlled input node ids *)
  assignment : (int * Logic.t) list;
      (** value chosen per controlled input ([X] = still free) *)
  blocked_gates : int;  (** transition gates successfully blocked *)
  failed_gates : int;  (** gates whose transitions could not be blocked *)
  residual_transition_nodes : int;
      (** lines still toggling under the final assignment *)
}

val find :
  ?backtrack_limit:int ->
  direction:Justify.direction ->
  Circuit.t ->
  muxable:int list ->
  outcome
(** [muxable] comes from {!Mux_insertion.select}; pass [[]] together
    with [~direction:Structural] to reproduce the input-control
    baseline's search space ([8]). *)
