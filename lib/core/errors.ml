(* Re-export so the structured error type is reachable both from the
   bottom of the stack (netlist/techmap/atpg link against
   [Scanpower_errors] directly — they cannot depend on this library)
   and under the natural name [Scanpower.Errors] for flow/CLI code. *)
include Scanpower_errors
