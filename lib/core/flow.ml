open Netlist

type prepared = {
  circuit : Circuit.t;
  chain : Scan.Scan_chain.t;
  vectors : bool array list;
  atpg : Atpg.Pattern_gen.outcome;
}

(* Lint the incoming netlist before spending ATPG time on it: errors
   become one structured Validation failure carrying every diagnostic;
   warnings (dangling gates, unused inputs) only reach the telemetry
   log. Parsed netlists were already validated harder by
   [Bench_parser]; this is the safety net for programmatically built
   circuits entering the flow. *)
let validate_input c =
  let diags = Validate.circuit c in
  List.iter
    (fun d ->
      if d.Validate.severity = Validate.Warning then
        Telemetry.Log.warn (Validate.to_string d)
          ~fields:[ ("circuit", Telemetry.Json.String (Circuit.name c)) ])
    diags;
  match Validate.errors diags with
  | [] -> ()
  | errs ->
    raise
      (Errors.Error
         (Errors.make ~circuit:(Circuit.name c) ~code:Errors.Validation
            ~stage:"flow.prepare" (Validate.summary errs)))

let prepare ?atpg_config c =
  Telemetry.Span.with_ ~name:"flow.prepare" (fun () ->
      validate_input c;
      let c =
        Telemetry.Span.with_ ~name:"techmap" (fun () ->
            (* an unmappable gate is an input problem, not a bug: the
               library's Invalid_argument becomes a structured
               Validation error naming the circuit *)
            try if Techmap.Mapper.is_mapped c then c else Techmap.Mapper.map c
            with Invalid_argument msg ->
              raise
                (Errors.Error
                   (Errors.make ~circuit:(Circuit.name c)
                      ~code:Errors.Validation ~stage:"flow.techmap" msg)))
      in
      let atpg =
        Telemetry.Span.with_ ~name:"atpg" (fun () ->
            Atpg.Pattern_gen.generate ?config:atpg_config c)
      in
      {
        circuit = c;
        chain = Scan.Scan_chain.natural c;
        vectors = atpg.Atpg.Pattern_gen.vectors;
        atpg;
      })

(* [prepare] is deterministic in the netlist content and the ATPG
   configuration, and [evaluate] never mutates a [prepared] (the
   reorder step works on a copy), so prepared results are safe to
   share across [evaluate] calls — sweeping parameter points on one
   circuit should pay for techmap + ATPG once. The memo key is the
   content digest, not physical identity, so re-parsing the same
   netlist still hits.

   The registry is LRU-bounded when a capacity is set (the serving
   daemon must not grow without bound across tenants); the default
   capacity 0 means unbounded, preserving one-shot CLI behaviour.
   Recency is a monotonic tick per entry; eviction scans for the
   minimum — O(entries), fine at registry scale. *)
let prepare_memo : (string, prepared * int ref) Hashtbl.t = Hashtbl.create 16
let prepare_hits = Telemetry.Counter.make "flow.prepare_memo.hit"
let prepare_misses = Telemetry.Counter.make "flow.prepare_memo.miss"
let prepare_evictions = Telemetry.Counter.make "flow.prepare_memo.eviction"

(* gauges mirror the running totals so one metrics snapshot shows
   warm-vs-cold behaviour without diffing counter streams *)
let g_entries = Telemetry.Gauge.make "flow.prepare_registry.entries"
let g_hits = Telemetry.Gauge.make "flow.prepare_registry.hits"
let g_misses = Telemetry.Gauge.make "flow.prepare_registry.misses"
let g_evictions = Telemetry.Gauge.make "flow.prepare_registry.evictions"

type prepare_stats = {
  p_entries : int;
  p_hits : int;
  p_misses : int;
  p_evictions : int;
}

let stat_hits = ref 0
let stat_misses = ref 0
let stat_evictions = ref 0
let prepare_tick = ref 0
let prepare_capacity = ref 0

(* The memo is process-global and the Domains runner strategy calls
   [prepare_cached] from worker domains, so every table access takes
   this lock (a concurrent Hashtbl resize during a read is memory-safe
   in OCaml 5 but not value-safe). The expensive [prepare] itself runs
   outside the lock: two domains racing on the same cold key both
   compute, and the second insert wins — wasted work, never a wrong
   result, and no domain ever blocks behind another circuit's ATPG. *)
let prepare_mutex = Mutex.create ()

let with_memo_lock f =
  Mutex.lock prepare_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock prepare_mutex) f

let publish_prepare_gauges () =
  if Telemetry.enabled () then begin
    Telemetry.Gauge.set g_entries (float_of_int (Hashtbl.length prepare_memo));
    Telemetry.Gauge.set g_hits (float_of_int !stat_hits);
    Telemetry.Gauge.set g_misses (float_of_int !stat_misses);
    Telemetry.Gauge.set g_evictions (float_of_int !stat_evictions)
  end

let prepare_stats () =
  with_memo_lock (fun () ->
      {
        p_entries = Hashtbl.length prepare_memo;
        p_hits = !stat_hits;
        p_misses = !stat_misses;
        p_evictions = !stat_evictions;
      })

let evict_lru () =
  let victim =
    Hashtbl.fold
      (fun key (_, tick) acc ->
        match acc with
        | Some (_, best) when best <= !tick -> acc
        | _ -> Some (key, !tick))
      prepare_memo None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove prepare_memo key;
    incr stat_evictions;
    Telemetry.Counter.inc prepare_evictions

let enforce_prepare_capacity () =
  if !prepare_capacity > 0 then
    while Hashtbl.length prepare_memo > !prepare_capacity do
      evict_lru ()
    done

let set_prepare_capacity n =
  with_memo_lock (fun () ->
      prepare_capacity := n;
      enforce_prepare_capacity ();
      publish_prepare_gauges ())

let clear_prepared () =
  with_memo_lock (fun () ->
      Hashtbl.reset prepare_memo;
      stat_hits := 0;
      stat_misses := 0;
      stat_evictions := 0;
      prepare_tick := 0;
      publish_prepare_gauges ())

let prepare_key ?atpg_config c =
  let cfg =
    match atpg_config with
    | Some cfg -> cfg
    | None -> Atpg.Pattern_gen.default_config
  in
  let cfg_text =
    Printf.sprintf "%d/%d/%d/%d/%d/%b/%b/%b/%s" cfg.Atpg.Pattern_gen.seed
      cfg.Atpg.Pattern_gen.random_batches cfg.Atpg.Pattern_gen.stale_batches
      cfg.Atpg.Pattern_gen.backtrack_limit cfg.Atpg.Pattern_gen.podem_budget
      cfg.Atpg.Pattern_gen.scoap_guide cfg.Atpg.Pattern_gen.merge
      cfg.Atpg.Pattern_gen.reverse_compact
      (match cfg.Atpg.Pattern_gen.fault_engine with
      | Atpg.Fault_simulation.Cone -> "cone"
      | Atpg.Fault_simulation.Cpt -> "cpt"
      | Atpg.Fault_simulation.Ppsfp -> "ppsfp")
  in
  Digest.to_hex
    (Digest.string (Bench_writer.to_string c ^ "\x00" ^ cfg_text))

let prepare_cached ?atpg_config c =
  let key = prepare_key ?atpg_config c in
  let cached =
    with_memo_lock (fun () ->
        incr prepare_tick;
        match Hashtbl.find_opt prepare_memo key with
        | Some (p, tick) ->
          tick := !prepare_tick;
          incr stat_hits;
          Telemetry.Counter.inc prepare_hits;
          Some p
        | None ->
          incr stat_misses;
          Telemetry.Counter.inc prepare_misses;
          None)
  in
  let result =
    match cached with
    | Some p -> p
    | None ->
      let p = prepare ?atpg_config c in
      with_memo_lock (fun () ->
          Hashtbl.replace prepare_memo key (p, ref !prepare_tick);
          enforce_prepare_capacity ());
      p
  in
  with_memo_lock publish_prepare_gauges;
  result

type technique_result = {
  dynamic_per_hz_uw : float;
  static_uw : float;
  peak_static_uw : float;
  total_toggles : int;
}

type atpg_summary = {
  total_faults : int;
  detected : int;
  untestable : int;
  aborted : int;
  skipped : int;
  coverage : float;
}

let atpg_summary_of (o : Atpg.Pattern_gen.outcome) =
  {
    total_faults = o.Atpg.Pattern_gen.total_faults;
    detected = o.Atpg.Pattern_gen.detected;
    untestable = o.Atpg.Pattern_gen.untestable;
    aborted = o.Atpg.Pattern_gen.aborted;
    skipped = o.Atpg.Pattern_gen.skipped;
    coverage = o.Atpg.Pattern_gen.coverage;
  }

(* an abort (backtrack exhaustion) degrades coverage but must not fail
   the flow; reports surface it as an explicit status instead *)
let atpg_status s =
  if s.aborted > 0 then "aborted_faults"
  else if s.skipped > 0 then "budget_exhausted"
  else "complete"

type comparison = {
  name : string;
  n_vectors : int;
  n_dffs : int;
  n_muxable : int;
  blocked_gates : int;
  failed_gates : int;
  reordered_gates : int;
  atpg : atpg_summary;
  traditional : technique_result;
  input_control : technique_result;
  proposed : technique_result;
  enhanced_scan : technique_result;
      (** the hold-latch structure of the related work, for reference *)
}

let result_of (m : Scan.Scan_sim.result) =
  {
    dynamic_per_hz_uw = m.Scan.Scan_sim.dynamic.Power.Switching.dynamic_per_hz_uw;
    static_uw = m.Scan.Scan_sim.avg_static_uw;
    peak_static_uw = m.Scan.Scan_sim.peak_static_uw;
    total_toggles = m.Scan.Scan_sim.total_toggles;
  }

let evaluate ?(engine = Scan.Scan_sim.Packed) ?(seed = 42) p =
  Telemetry.Span.with_ ~name:"flow.evaluate" (fun () ->
  let span name fn = Telemetry.Span.with_ ~name fn in
  let c = p.circuit in
  let chain = p.chain in
  let vectors = p.vectors in
  (* 1. traditional scan *)
  let trad =
    span "scan_sim.traditional" (fun () ->
        Scan.Scan_sim.measure ~engine c chain Scan.Scan_sim.traditional
          ~vectors)
  in
  (* enhanced scan ([5]/hold latches): full isolation, but at a latch
     per cell and a speed penalty the paper's structure avoids *)
  let enh =
    span "scan_sim.enhanced" (fun () ->
        Scan.Scan_sim.measure ~engine c chain Scan.Scan_sim.enhanced_scan
          ~vectors)
  in
  (* 2. input control baseline [8] *)
  let ic = span "c_algorithm" (fun () -> C_algorithm.find ~seed:(seed + 1) c) in
  let ic_policy =
    {
      Scan.Scan_sim.pi_during_shift = Some ic.C_algorithm.pi_pattern;
      forced_pseudo = [];
      hold_previous_capture = false;
    }
  in
  let ic_m =
    span "scan_sim.input_control" (fun () ->
        Scan.Scan_sim.measure ~engine c chain ic_policy ~vectors)
  in
  (* 3. proposed structure *)
  let mux = span "mux_select" (fun () -> Mux_insertion.select c) in
  let obs = span "observability" (fun () -> Power.Observability.compute c) in
  let cp =
    span "controlled_pattern" (fun () ->
        Controlled_pattern.find ~direction:(Justify.Leakage_directed obs) c
          ~muxable:mux.Mux_insertion.muxable)
  in
  let filled =
    span "ivc" (fun () ->
        Ivc.fill ~seed:(seed + 2) c ~values:cp.Controlled_pattern.values
          ~controlled:cp.Controlled_pattern.controlled)
  in
  let values = filled.Ivc.values in
  let concrete id =
    match values.(id) with
    | Logic.One -> true
    | Logic.Zero -> false
    | Logic.X -> false (* IVC leaves no controlled input free *)
  in
  let pi_pattern = Array.map concrete (Circuit.inputs c) in
  let forced_pseudo =
    List.map (fun id -> (id, concrete id)) mux.Mux_insertion.muxable
  in
  (* reorder gate inputs on a copy so the baselines above stay intact *)
  let c' = Circuit.copy c in
  let reorder = span "reorder" (fun () -> Input_reorder.optimize c' ~values) in
  let prop_policy =
    { Scan.Scan_sim.pi_during_shift = Some pi_pattern;
      forced_pseudo;
      hold_previous_capture = false;
    }
  in
  let prop_m =
    span "scan_sim.proposed" (fun () ->
        Scan.Scan_sim.measure ~engine c' chain prop_policy ~vectors)
  in
  Telemetry.Log.debug "flow.evaluate done"
    ~fields:
      [
        ("circuit", Telemetry.Json.String (Circuit.name c));
        ("vectors", Telemetry.Json.Int (List.length vectors));
        ("muxable", Telemetry.Json.Int (List.length mux.Mux_insertion.muxable));
        ("blocked_gates", Telemetry.Json.Int cp.Controlled_pattern.blocked_gates);
        ("reordered_gates", Telemetry.Json.Int reorder.Input_reorder.gates_reordered);
      ];
  {
    name = Circuit.name c;
    n_vectors = List.length vectors;
    n_dffs = Array.length (Circuit.dffs c);
    n_muxable = List.length mux.Mux_insertion.muxable;
    blocked_gates = cp.Controlled_pattern.blocked_gates;
    failed_gates = cp.Controlled_pattern.failed_gates;
    reordered_gates = reorder.Input_reorder.gates_reordered;
    atpg = atpg_summary_of p.atpg;
    traditional = result_of trad;
    input_control = result_of ic_m;
    proposed = result_of prop_m;
    enhanced_scan = result_of enh;
  })

let g_peak_heap = Telemetry.Gauge.make "flow.peak_heap_words"

let record_peak_heap () =
  if Telemetry.enabled () then
    Telemetry.Gauge.observe_max g_peak_heap
      (float_of_int (Gc.quick_stat ()).Gc.top_heap_words)

let run_benchmark ?atpg_config ?engine ?seed c =
  Telemetry.Span.with_ ~name:"flow.run_benchmark"
    ~fields:[ ("circuit", Telemetry.Json.String (Netlist.Circuit.name c)) ]
    (fun () ->
      Fun.protect
        ~finally:record_peak_heap
        (fun () -> evaluate ?engine ?seed (prepare ?atpg_config c)))

let run_benchmark_cached ?atpg_config ?engine ?seed c =
  Telemetry.Span.with_ ~name:"flow.run_benchmark"
    ~fields:[ ("circuit", Telemetry.Json.String (Netlist.Circuit.name c)) ]
    (fun () ->
      Fun.protect
        ~finally:record_peak_heap
        (fun () -> evaluate ?engine ?seed (prepare_cached ?atpg_config c)))

(* [base = 0] admits no percentage: returning 0.0 there made a
   regression from a zero baseline read as "no change", so it now
   yields [nan] (rendered as "nan" by the report printers) unless [x]
   is also zero, which genuinely is no change. *)
let improvement base x =
  if base = 0.0 then (if x = 0.0 then 0.0 else Float.nan)
  else 100.0 *. (base -. x) /. base

(* The JSON layer degrades non-finite floats to null, which readers
   then cannot tell apart from "0% change"; reports therefore carry an
   explicit status beside (or instead of) the percentage. *)
let improvement_json ~base x =
  let module Json = Telemetry.Json in
  if Float.is_nan base || Float.is_nan x then
    Json.Obj [ ("status", Json.String "undefined") ]
  else if base = 0.0 then
    if x = 0.0 then Json.Obj [ ("status", Json.String "no_change") ]
    else Json.Obj [ ("status", Json.String "zero_baseline") ]
  else
    Json.Obj
      [
        ("status", Json.String "ok");
        ("pct", Json.Float (100.0 *. (base -. x) /. base));
      ]
