(** End-to-end experiment pipeline: map the circuit to the library,
    build the scan chain, generate a compacted test set, then measure
    scan-mode dynamic and static power for the three structures the
    paper compares — traditional scan, the input-control baseline [8],
    and the proposed multiplexed structure (AddMUX +
    FindControlledInputPattern + IVC don't-care fill + gate input
    reordering). *)

open Netlist

type prepared = {
  circuit : Circuit.t;  (** mapped *)
  chain : Scan.Scan_chain.t;
  vectors : bool array list;
  atpg : Atpg.Pattern_gen.outcome;
}

val prepare : ?atpg_config:Atpg.Pattern_gen.config -> Circuit.t -> prepared
(** Maps the circuit if needed and generates its test set. Runs
    {!Netlist.Validate.circuit} first: lint errors raise one
    {!Errors.Error} (code [Validation], stage ["flow.prepare"])
    carrying {e all} diagnostics; warnings only reach the telemetry
    log. *)

val prepare_cached : ?atpg_config:Atpg.Pattern_gen.config -> Circuit.t -> prepared
(** Like {!prepare} but memoized (process-wide) on the netlist content
    and the ATPG configuration, so sweeping flow-parameter points on
    the same circuit runs techmap + ATPG once. Safe because
    {!evaluate} never mutates a [prepared] — the reorder step works on
    a copy. Telemetry counters [flow.prepare_memo.hit]/[.miss]/
    [.eviction] track its effectiveness, and the gauges
    [flow.prepare_registry.{entries,hits,misses,evictions}] mirror the
    running totals so one metrics snapshot shows warm-vs-cold
    behaviour. *)

val prepare_key : ?atpg_config:Atpg.Pattern_gen.config -> Circuit.t -> string
(** The content digest {!prepare_cached} memoizes on: netlist text
    plus the full ATPG configuration. Two circuits with the same key
    produce the same [prepared] — the serving daemon keys its warm
    machine registry on this. *)

type prepare_stats = {
  p_entries : int;  (** prepared circuits currently resident *)
  p_hits : int;
  p_misses : int;
  p_evictions : int;
}

val prepare_stats : unit -> prepare_stats
(** Running totals for the {!prepare_cached} registry since process
    start (or the last {!clear_prepared}). *)

val set_prepare_capacity : int -> unit
(** Bound the registry to [n] prepared circuits, evicting
    least-recently-used entries beyond it. [n <= 0] (the default)
    means unbounded, the right choice for one-shot CLI runs; the
    serving daemon sets its registry capacity here so a stream of
    distinct tenant circuits cannot grow the heap without bound. *)

val clear_prepared : unit -> unit
(** Drop every resident entry and zero the statistics. For tests. *)

type technique_result = {
  dynamic_per_hz_uw : float;
  static_uw : float;  (** average leakage over shift cycles *)
  peak_static_uw : float;
  total_toggles : int;
}

type atpg_summary = {
  total_faults : int;
  detected : int;
  untestable : int;
  aborted : int;  (** faults the PODEM backtrack limit gave up on *)
  skipped : int;  (** faults the phase-2 budget never reached *)
  coverage : float;
}

val atpg_summary_of : Atpg.Pattern_gen.outcome -> atpg_summary

val atpg_status : atpg_summary -> string
(** ["complete"] when every fault was resolved, ["aborted_faults"]
    when the backtrack limit cut some off, ["budget_exhausted"] when
    only the budget did. An abort degrades coverage but never fails
    the flow — reports carry this status instead. *)

type comparison = {
  name : string;
  n_vectors : int;
  n_dffs : int;
  n_muxable : int;
  blocked_gates : int;
  failed_gates : int;
  reordered_gates : int;
  atpg : atpg_summary;
  traditional : technique_result;
  input_control : technique_result;
  proposed : technique_result;
  enhanced_scan : technique_result;
      (** the hold-latch full-isolation structure ([5], enhanced scan)
          measured for reference: it also silences the shift phase but
          costs a latch per scan cell and degrades functional timing,
          which is exactly what the paper's method avoids *)
}

val evaluate : ?engine:Scan.Scan_sim.engine -> ?seed:int -> prepared -> comparison
(** [engine] selects the scan-simulation kernel (default
    {!Scan.Scan_sim.Packed}); [Scalar] replays the event-driven
    reference. Toggle counts, dynamic power and responses are identical
    between the two; the static averages agree to float accumulation
    order. *)

val run_benchmark :
  ?atpg_config:Atpg.Pattern_gen.config ->
  ?engine:Scan.Scan_sim.engine ->
  ?seed:int ->
  Circuit.t ->
  comparison
(** [prepare] followed by [evaluate]. *)

val run_benchmark_cached :
  ?atpg_config:Atpg.Pattern_gen.config ->
  ?engine:Scan.Scan_sim.engine ->
  ?seed:int ->
  Circuit.t ->
  comparison
(** [prepare_cached] followed by [evaluate]: identical results to
    {!run_benchmark} (the preparation is deterministic), minus the
    repeated ATPG when the same circuit is evaluated at several
    parameter points in one process. *)

val improvement : float -> float -> float
(** [improvement base x] = percentage reduction of [x] versus [base]
    (positive = better), as reported in Table I. When [base] is zero no
    percentage exists: the result is [nan] (unless [x] is also zero, in
    which case it is [0.0]) so a regression from a zero baseline can
    never masquerade as "no change". *)

val improvement_json : base:float -> float -> Telemetry.Json.t
(** {!improvement} with the edge cases made explicit instead of
    smuggled through [nan] (which the JSON layer can only render as
    [null]): [{"status":"ok","pct":…}], [{"status":"no_change"}]
    (both zero), [{"status":"zero_baseline"}] (regression from a zero
    baseline) or [{"status":"undefined"}] (a [nan] input). *)
