open Netlist

type outcome = {
  gates_reordered : int;
  expected_gain_na : float;
}

let expected_cell_leakage_na cell pin_values =
  let k = Array.length pin_values in
  let total = ref 0.0 in
  for state = 0 to (1 lsl k) - 1 do
    let p = ref 1.0 in
    for i = 0 to k - 1 do
      let bit = state land (1 lsl i) <> 0 in
      let pi =
        match pin_values.(i) with
        | Logic.One -> 1.0
        | Logic.Zero -> 0.0
        | Logic.X -> 0.5
      in
      p := !p *. (if bit then pi else 1.0 -. pi)
    done;
    if !p > 0.0 then
      total := !total +. (!p *. Techlib.Leakage_table.leakage_na cell ~state)
  done;
  !total

(* All permutations of [0 .. n-1]; n <= 4 so at most 24. *)
let permutations n =
  let rec perms = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) xs in
          List.map (fun p -> x :: p) (perms rest))
        xs
  in
  perms (List.init n (fun i -> i)) |> List.map Array.of_list

let symmetric nd =
  match nd.Circuit.kind with
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> true
  | Gate.Input | Gate.Dff | Gate.Output | Gate.Buf | Gate.Not | Gate.Xor
  | Gate.Xnor ->
    false
(* XOR/XNOR are symmetric too, but their cells are not in the library *)

let optimize c ~values =
  let reordered = ref 0 and gain = ref 0.0 in
  Array.iter
    (fun nd ->
      let k = Array.length nd.Circuit.fanins in
      if symmetric nd && k >= 2 then
        match
          Techlib.Cell.of_gate nd.Circuit.kind ~fanin:k
        with
        | None -> ()
        | Some cell ->
          let pin_values = Array.map (fun f -> values.(f)) nd.Circuit.fanins in
          let current = expected_cell_leakage_na cell pin_values in
          let best = ref None in
          List.iter
            (fun perm ->
              let permuted = Array.map (fun j -> pin_values.(j)) perm in
              let cost = expected_cell_leakage_na cell permuted in
              match !best with
              | Some (_, best_cost) when best_cost <= cost -> ()
              | Some _ | None -> best := Some (perm, cost))
            (permutations k);
          (match !best with
          | Some (perm, cost) when cost +. 1e-9 < current ->
            Circuit.permute_fanins c nd.Circuit.id perm;
            incr reordered;
            gain := !gain +. (current -. cost)
          | Some _ | None -> ()))
    (Circuit.nodes c);
  { gates_reordered = !reordered; expected_gain_na = !gain }
