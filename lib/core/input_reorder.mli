(** Gate input reordering for leakage (end of Section 4): the leakage
    of a NAND/NOR cell depends on *which* pin carries which value
    (e.g. NAND2 "01" = 73 nA vs "10" = 264 nA, Figure 2), while the
    logic function of those cells is symmetric in their inputs. Given
    the scan-mode assignment, permute each symmetric gate's pins to the
    minimum-expected-leakage order; lines still toggling count as
    one-half probability.

    The permutation is applied in place ({!Netlist.Circuit.permute_fanins});
    callers measure baselines on a {!Netlist.Circuit.copy} first. *)

open Netlist

type outcome = {
  gates_reordered : int;
  expected_gain_na : float;
      (** summed expected per-gate leakage reduction in the scan state *)
}

val optimize : Circuit.t -> values:Logic.t array -> outcome
(** [values] is the final propagated scan-mode assignment (three
    valued). Only NAND/NOR/AND/OR gates with at least two fanins are
    touched. *)

val expected_cell_leakage_na :
  Techlib.Cell.t -> Logic.t array -> float
(** Expected table leakage of one cell under per-pin ternary values
    ([X] = probability one-half); exposed for tests and the ablation
    bench. *)
