open Netlist

let m_trials = Telemetry.Counter.make "core.ivc.trials"
let m_samples = Telemetry.Counter.make "core.ivc.leakage_samples"

type outcome = {
  values : Logic.t array;
  candidates_tried : int;
  expected_leakage_uw : float;
}

(* Expected scan-mode leakage of a fully propagated ternary assignment:
   lines still X toggle with the chain, so they are sampled; the same
   pre-drawn sample set scores every candidate. *)
let expected_leakage c values samples =
  let free =
    Array.to_list (Circuit.sources c)
    |> List.filter (fun id -> Logic.equal values.(id) Logic.X)
  in
  let n = Circuit.node_count c in
  let bools = Array.make n false in
  let score sample_rng =
    for id = 0 to n - 1 do
      bools.(id) <-
        (match values.(id) with
        | Logic.One -> true
        | Logic.Zero | Logic.X -> false)
    done;
    List.iter (fun id -> bools.(id) <- Util.Rng.bool sample_rng) free;
    Array.iter
      (fun id ->
        let nd = Circuit.node c id in
        if not (Gate.is_source nd.kind) then
          bools.(id) <-
            Gate.eval_bool nd.kind (Array.map (fun f -> bools.(f)) nd.fanins))
      (Circuit.topo_order c);
    Power.Leakage.total_leakage_uw c bools
  in
  let total = ref 0.0 in
  Telemetry.Counter.add m_samples (List.length samples);
  List.iter (fun seed -> total := !total +. score (Util.Rng.create seed)) samples;
  !total /. float_of_int (List.length samples)

let fill ?(candidates = 32) ?(inner_samples = 16) ~seed c ~values ~controlled =
  let rng = Util.Rng.create seed in
  let free_controlled =
    List.filter (fun id -> Logic.equal values.(id) Logic.X) controlled
  in
  let inner_seeds = List.init (max 1 inner_samples) (fun i -> (seed * 7919) + i) in
  let n_cands = if free_controlled = [] then 1 else max 1 candidates in
  let best = ref None in
  for _ = 1 to n_cands do
    Telemetry.Counter.inc m_trials;
    let trial = Array.copy values in
    List.iter
      (fun id -> trial.(id) <- Logic.of_bool (Util.Rng.bool rng))
      free_controlled;
    Sim.Ternary_sim.propagate c trial;
    let cost = expected_leakage c trial inner_seeds in
    match !best with
    | Some (_, best_cost) when best_cost <= cost -> ()
    | Some _ | None -> best := Some (trial, cost)
  done;
  match !best with
  | None -> assert false
  | Some (winner, cost) ->
    {
      values = winner;
      candidates_tried = n_cands;
      expected_leakage_uw = cost;
    }
