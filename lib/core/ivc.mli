(** Input vector control for the remaining don't-cares ([14], end of
    Section 4): the controlled inputs FindControlledInputPattern left
    unassigned are filled by trying a modest number of random
    completions and keeping the one with the lowest expected scan-mode
    leakage. The expectation is taken over the non-controlled
    pseudo-inputs (which keep toggling during shift) with a fixed
    inner sample set, so candidate scores are comparable. *)

open Netlist

type outcome = {
  values : Logic.t array;
      (** the input assignment with every controlled input definite *)
  candidates_tried : int;
  expected_leakage_uw : float;  (** score of the winning completion *)
}

val fill :
  ?candidates:int ->
  ?inner_samples:int ->
  seed:int ->
  Circuit.t ->
  values:Logic.t array ->
  controlled:int list ->
  outcome
(** Defaults: 32 candidate completions, 16 inner samples. Controlled
    inputs already definite in [values] are preserved. *)
