open Netlist

let m_attempts = Telemetry.Counter.make "core.justify.attempts"
let m_backtracks = Telemetry.Counter.make "core.justify.backtracks"

type direction =
  | Leakage_directed of Power.Observability.t
  | Structural

type t = {
  circuit : Circuit.t;
  controllable : bool array;
  direction : direction;
  backtrack_limit : int;
}

let create ?(backtrack_limit = 50) c ~controllable ~direction =
  let flags = Array.make (Circuit.node_count c) false in
  List.iter
    (fun id ->
      if not (Gate.is_source (Circuit.node c id).Circuit.kind) then
        invalid_arg "Justify.create: controllable node is not a source";
      flags.(id) <- true)
    controllable;
  { circuit = c; controllable = flags; direction; backtrack_limit }

(* Section 4's directive: to set a line to 1 prefer small (most
   negative) leakage observability, to set it to 0 prefer large. *)
let order_candidates t ~value candidates =
  match t.direction with
  | Structural ->
    List.sort
      (fun a b ->
        compare (Circuit.level t.circuit a) (Circuit.level t.circuit b))
      candidates
  | Leakage_directed obs ->
    let key id = Power.Observability.observability_na obs id in
    let cmp a b =
      match value with
      | Logic.One | Logic.X -> compare (key a) (key b)
      | Logic.Zero -> compare (key b) (key a)
    in
    List.sort cmp candidates

(* Backtrace: find a controllable, still-unassigned source that can
   contribute to driving [node] toward [v], descending only through
   X-valued lines; candidate fanins at each gate are tried in the
   direction-given order. *)
let backtrace t work node v =
  let c = t.circuit in
  let visited = Hashtbl.create 32 in
  let rec walk id v =
    if Hashtbl.mem visited (id, v) then None
    else begin
      Hashtbl.replace visited (id, v) ();
      let nd = Circuit.node c id in
      if Gate.is_source nd.kind then
        if t.controllable.(id) && Logic.equal work.(id) Logic.X then
          Some (id, v)
        else None
      else begin
        let v_inner = if Gate.inversion nd.kind then Logic.lnot v else v in
        let xs =
          Array.to_list nd.fanins
          |> List.filter (fun f -> Logic.equal work.(f) Logic.X)
        in
        let ordered = order_candidates t ~value:v_inner xs in
        let rec first_ok = function
          | [] -> None
          | f :: rest ->
            (match walk f v_inner with
            | Some hit -> Some hit
            | None -> first_ok rest)
        in
        first_ok ordered
      end
    end
  in
  walk node v

let justify t ~values node v =
  Telemetry.Counter.inc m_attempts;
  let c = t.circuit in
  let work = Array.copy values in
  Sim.Ternary_sim.propagate c work;
  if Logic.equal work.(node) v then Some work
  else if not (Logic.equal work.(node) Logic.X) then None
  else begin
    let stack = ref [] in
    let backtracks = ref 0 in
    let rec unwind () =
      match !stack with
      | [] -> false
      | (src, value, flipped) :: rest ->
        if flipped then begin
          work.(src) <- Logic.X;
          stack := rest;
          unwind ()
        end
        else begin
          incr backtracks;
          Telemetry.Counter.inc m_backtracks;
          if !backtracks > t.backtrack_limit then false
          else begin
            let value' = Logic.lnot value in
            work.(src) <- value';
            stack := (src, value', true) :: rest;
            Sim.Ternary_sim.propagate c work;
            true
          end
        end
    in
    let rec search () =
      if Logic.equal work.(node) v then Some work
      else if not (Logic.equal work.(node) Logic.X) then
        if unwind () then search () else None
      else
        match backtrace t work node v with
        | None -> if unwind () then search () else None
        | Some (src, value) ->
          work.(src) <- value;
          stack := (src, value, false) :: !stack;
          Sim.Ternary_sim.propagate c work;
          search ()
    in
    search ()
  end
