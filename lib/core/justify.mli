(** PODEM-style justification of an internal objective from the
    controlled inputs only (Section 4): objective -> backtrace ->
    assign -> imply -> check, with backtracking over the decisions.

    Both decision points the paper identifies are steered by the
    chosen direction: which candidate input of a transition gate to
    set to the controlling value, and which don't-care fanin Backtrace
    descends into. With [Leakage_directed], justifying a 1 prefers the
    minimum-leakage-observability line and justifying a 0 the maximum
    (Section 4); [Structural] reproduces the undirected C-algorithm
    baseline (level-based easiest-first). *)

open Netlist

type direction =
  | Leakage_directed of Power.Observability.t
  | Structural

type t

val create :
  ?backtrack_limit:int ->
  Circuit.t ->
  controllable:int list ->
  direction:direction ->
  t
(** [controllable] lists the source node ids the engine may assign
    (primary inputs and multiplexed pseudo-inputs). Default backtrack
    limit: 50. *)

val order_candidates : t -> value:Logic.t -> int list -> int list
(** Sort candidate lines for receiving [value] according to the
    engine's direction (used for the mc_tg input choice). *)

val justify : t -> values:Logic.t array -> int -> Logic.t -> Logic.t array option
(** [justify t ~values node v] attempts to drive [node] to [v] by
    assigning controlled inputs only, starting from the given
    three-valued assignment. On success returns the new fully
    propagated assignment (a fresh array; the input is not mutated);
    on failure returns [None]. Never un-assigns a value already
    definite in [values]. *)
