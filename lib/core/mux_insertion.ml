open Netlist

type strategy =
  | Naive
  | Slack_based

type t = {
  muxable : int list;
  blocked : int list;
  critical_delay_ps : float;
  mux_penalty_ps : float;
}

let m_muxable = Telemetry.Counter.make "core.mux_insertion.muxable_cells"
let m_blocked = Telemetry.Counter.make "core.mux_insertion.blocked_cells"

let select ?(strategy = Slack_based) c =
  let timing = Sta.analyze c in
  let base = Sta.critical_delay timing in
  let penalty = Techlib.Cell.mux2_delay_penalty in
  let eps = 1e-6 in
  let fits dff =
    match strategy with
    | Slack_based -> Sta.fits_without_slowdown timing ~source:dff ~penalty
    | Naive ->
      Sta.delay_with_penalty c ~penalties:[ (dff, penalty) ] <= base +. eps
  in
  let muxable, blocked =
    Array.to_list (Circuit.dffs c) |> List.partition fits
  in
  Telemetry.Counter.add m_muxable (List.length muxable);
  Telemetry.Counter.add m_blocked (List.length blocked);
  { muxable; blocked; critical_delay_ps = base; mux_penalty_ps = penalty }

let muxable_count t = List.length t.muxable

let pp c fmt t =
  let names ids =
    ids |> List.map (fun id -> (Circuit.node c id).Circuit.name)
    |> String.concat " "
  in
  Format.fprintf fmt
    "critical=%.1f ps, mux penalty=%.1f ps, muxable %d of %d [%s], blocked [%s]"
    t.critical_delay_ps t.mux_penalty_ps (List.length t.muxable)
    (List.length t.muxable + List.length t.blocked)
    (names t.muxable) (names t.blocked)
