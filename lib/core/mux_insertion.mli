(** AddMUX (Section 4, step 1): select the scan-cell outputs that can
    take a blocking multiplexer without stretching the circuit's
    critical path.

    The paper's procedure inserts a MUX after each pseudo-input in turn
    and re-extracts the critical path delay, removing the MUX when the
    delay grows. [Naive] reproduces that; [Slack_based] answers the
    same question from one timing analysis (penalty <= slack at the
    scan-cell output), which the test suite proves equivalent and the
    ablation bench compares. *)

open Netlist

type strategy =
  | Naive
  | Slack_based

type t = {
  muxable : int list;  (** dff node ids accepting a mux, chain order *)
  blocked : int list;  (** dff node ids on critical path(s) *)
  critical_delay_ps : float;
  mux_penalty_ps : float;
}

val select : ?strategy:strategy -> Circuit.t -> t
(** Default strategy: [Slack_based].
    @raise Invalid_argument on an unmapped circuit. *)

val muxable_count : t -> int

val pp : Circuit.t -> Format.formatter -> t -> unit
