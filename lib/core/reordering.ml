open Netlist

let hamming a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Reordering.hamming: length mismatch";
  let d = ref 0 in
  for i = 0 to n - 1 do
    if a.(i) <> b.(i) then incr d
  done;
  !d

let weight v =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v

let reorder_vectors vectors =
  match vectors with
  | [] | [ _ ] -> vectors
  | _ ->
    let arr = Array.of_list vectors in
    let n = Array.length arr in
    let used = Array.make n false in
    (* start from the lightest vector (closest to the all-zero reset
       chain state) *)
    let start = ref 0 in
    for i = 1 to n - 1 do
      if weight arr.(i) < weight arr.(!start) then start := i
    done;
    used.(!start) <- true;
    let order = ref [ !start ] in
    let current = ref !start in
    for _ = 2 to n do
      let best = ref (-1) and best_d = ref max_int in
      for i = 0 to n - 1 do
        if not used.(i) then begin
          let d = hamming arr.(!current) arr.(i) in
          if d < !best_d then begin
            best := i;
            best_d := d
          end
        end
      done;
      used.(!best) <- true;
      order := !best :: !order;
      current := !best
    done;
    List.rev_map (fun i -> arr.(i)) !order

let total_adjacent_distance vectors =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (acc + hamming a b) rest
    | [ _ ] | [] -> acc
  in
  go 0 vectors

(* Column of flip-flop [k] (dffs order) across the test set. *)
let state_columns c vectors =
  let n_pi = Array.length (Circuit.inputs c) in
  let n_ff = Array.length (Circuit.dffs c) in
  Array.init n_ff (fun k ->
      Array.of_list (List.map (fun v -> v.(n_pi + k)) vectors))

let reorder_chain c vectors =
  let dffs = Circuit.dffs c in
  let n_ff = Array.length dffs in
  if n_ff < 2 || vectors = [] then Scan.Scan_chain.natural c
  else begin
    let cols = state_columns c vectors in
    let disagree i j = hamming cols.(i) cols.(j) in
    (* greedy chaining: start from the column pair with the fewest
       disagreements, then repeatedly extend the nearer end *)
    let used = Array.make n_ff false in
    let best_i = ref 0 and best_j = ref 1 and best_d = ref max_int in
    for i = 0 to n_ff - 1 do
      for j = i + 1 to n_ff - 1 do
        let d = disagree i j in
        if d < !best_d then begin
          best_i := i;
          best_j := j;
          best_d := d
        end
      done
    done;
    used.(!best_i) <- true;
    used.(!best_j) <- true;
    (* the chain as a deque of column indices *)
    let front = ref [ !best_i ] and back = ref [ !best_j ] in
    for _ = 3 to n_ff do
      let head = List.hd !front and tail = List.hd !back in
      let best = ref (-1) and best_d = ref max_int and at_front = ref true in
      for i = 0 to n_ff - 1 do
        if not used.(i) then begin
          let df = disagree head i and db = disagree tail i in
          if df < !best_d then begin
            best := i;
            best_d := df;
            at_front := true
          end;
          if db < !best_d then begin
            best := i;
            best_d := db;
            at_front := false
          end
        end
      done;
      used.(!best) <- true;
      if !at_front then front := !best :: !front else back := !best :: !back
    done;
    let order = List.rev_append !back (List.rev !front) in
    Scan.Scan_chain.of_order c (Array.of_list (List.map (fun k -> dffs.(k)) order))
  end

let chain_column_conflicts c ~chain vectors =
  let cols = state_columns c vectors in
  let dffs = Circuit.dffs c in
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun k id -> Hashtbl.replace index_of id k) dffs;
  let cells = Scan.Scan_chain.cells chain in
  let total = ref 0 in
  for p = 0 to Array.length cells - 2 do
    let a = Hashtbl.find index_of cells.(p)
    and b = Hashtbl.find index_of cells.(p + 1) in
    total := !total + hamming cols.(a) cols.(b)
  done;
  !total
