(** Test-vector and scan-cell reordering.

    Section 5 of the paper notes that no vector or scan-cell reordering
    was applied and that "by applying reordering techniques, further
    improvements can be achieved". This module implements both classic
    techniques so the bench harness can quantify that claim:

    - {!reorder_vectors}: greedy nearest-neighbour ordering of the test
      set that minimises the Hamming distance between consecutive
      vectors (fewer differing bits shifted in means fewer chain
      transitions);
    - {!reorder_chain}: greedy scan-cell ordering that places cells
      whose test-set columns are most correlated next to each other,
      minimising the number of adjacent-bit differences travelling down
      the chain.

    Both are test-behaviour-neutral: the same vectors are applied and
    the same responses captured, only the order (of vectors,
    respectively of cells along the chain) changes. *)

open Netlist

val hamming : bool array -> bool array -> int
(** @raise Invalid_argument on length mismatch. *)

val reorder_vectors : bool array list -> bool array list
(** Greedy nearest-neighbour chaining, starting from the vector with
    the lowest weight; O(n^2 k). The result is a permutation of the
    input. *)

val total_adjacent_distance : bool array list -> int
(** Sum of Hamming distances between consecutive vectors — the
    quantity {!reorder_vectors} greedily minimises. *)

val reorder_chain : Circuit.t -> bool array list -> Scan.Scan_chain.t
(** [reorder_chain c vectors] builds a scan chain whose adjacent cells
    disagree on as few test-set state bits as possible (greedy
    chaining on the column-correlation matrix). [vectors] are
    positional over [Circuit.sources]. Falls back to the natural chain
    when the circuit has fewer than two flip-flops. *)

val chain_column_conflicts :
  Circuit.t -> chain:Scan.Scan_chain.t -> bool array list -> int
(** Number of adjacent-cell disagreements summed over the test set for
    a given chain order (the quantity {!reorder_chain} minimises). *)
