type row = {
  name : string;
  trad_dyn : float;
  trad_static : float;
  ic_dyn : float;
  ic_static : float;
  prop_dyn : float;
  prop_static : float;
}

let of_comparison (c : Flow.comparison) =
  {
    name = c.Flow.name;
    trad_dyn = c.Flow.traditional.Flow.dynamic_per_hz_uw;
    trad_static = c.Flow.traditional.Flow.static_uw;
    ic_dyn = c.Flow.input_control.Flow.dynamic_per_hz_uw;
    ic_static = c.Flow.input_control.Flow.static_uw;
    prop_dyn = c.Flow.proposed.Flow.dynamic_per_hz_uw;
    prop_static = c.Flow.proposed.Flow.static_uw;
  }

let dyn_improvement_vs_traditional r = Flow.improvement r.trad_dyn r.prop_dyn
let static_improvement_vs_traditional r =
  Flow.improvement r.trad_static r.prop_static

let dyn_improvement_vs_input_control r = Flow.improvement r.ic_dyn r.prop_dyn
let static_improvement_vs_input_control r =
  Flow.improvement r.ic_static r.prop_static

(* Published Table I (DATE 2005): dynamic /f in uW/Hz, static in uW. *)
let paper_table1 =
  [
    { name = "s344"; trad_dyn = 5.88e-8; trad_static = 27.99;
      ic_dyn = 5.72e-8; ic_static = 27.50; prop_dyn = 3.24e-8;
      prop_static = 23.89 };
    { name = "s382"; trad_dyn = 6.43e-8; trad_static = 27.58;
      ic_dyn = 5.51e-8; ic_static = 26.69; prop_dyn = 2.38e-8;
      prop_static = 24.42 };
    { name = "s444"; trad_dyn = 8.00e-8; trad_static = 33.72;
      ic_dyn = 6.92e-8; ic_static = 33.30; prop_dyn = 2.44e-8;
      prop_static = 27.99 };
    { name = "s510"; trad_dyn = 8.46e-8; trad_static = 47.93;
      ic_dyn = 8.18e-8; ic_static = 47.50; prop_dyn = 8.22e-8;
      prop_static = 45.96 };
    { name = "s641"; trad_dyn = 5.69e-8; trad_static = 59.07;
      ic_dyn = 1.77e-8; ic_static = 56.97; prop_dyn = 1.78e-8;
      prop_static = 48.97 };
    { name = "s713"; trad_dyn = 6.30e-8; trad_static = 66.15;
      ic_dyn = 1.85e-8; ic_static = 64.90; prop_dyn = 1.82e-8;
      prop_static = 52.10 };
    { name = "s1196"; trad_dyn = 3.10e-8; trad_static = 115.54;
      ic_dyn = 3.06e-8; ic_static = 117.75; prop_dyn = 2.52e-8;
      prop_static = 95.78 };
    { name = "s1238"; trad_dyn = 3.19e-8; trad_static = 121.56;
      ic_dyn = 3.39e-8; ic_static = 124.75; prop_dyn = 2.59e-8;
      prop_static = 96.38 };
    { name = "s1423"; trad_dyn = 2.24e-7; trad_static = 128.22;
      ic_dyn = 1.93e-7; ic_static = 130.23; prop_dyn = 5.43e-8;
      prop_static = 117.0 };
    { name = "s1494"; trad_dyn = 3.56e-7; trad_static = 177.52;
      ic_dyn = 3.48e-7; ic_static = 179.86; prop_dyn = 3.52e-7;
      prop_static = 164.87 };
    { name = "s5378"; trad_dyn = 8.90e-7; trad_static = 327.52;
      ic_dyn = 1.29e-8; ic_static = 332.02; prop_dyn = 1.17e-8;
      prop_static = 315.0 };
    { name = "s9234"; trad_dyn = 1.50e-6; trad_static = 819.98;
      ic_dyn = 1.68e-8; ic_static = 854.52; prop_dyn = 1.57e-8;
      prop_static = 772.36 };
  ]

let paper_row name = List.find_opt (fun r -> r.name = name) paper_table1

let pp_header fmt () =
  Format.fprintf fmt
    "%-8s | %12s %10s | %12s %10s | %12s %10s | %8s %8s | %8s %8s@."
    "circuit" "trad dyn/f" "trad stat" "IC dyn/f" "IC stat" "prop dyn/f"
    "prop stat" "dyn%" "stat%" "dynIC%" "statIC%"

(* Improvement columns print "nan" when the baseline is zero: a
   percentage against a zero base is undefined, and rendering it as
   0.00 would disguise a regression as "no change" (see
   [Flow.improvement]). *)
let pp_row fmt r =
  Format.fprintf fmt
    "%-8s | %12.3e %10.2f | %12.3e %10.2f | %12.3e %10.2f | %8.2f %8.2f | %8.2f %8.2f@."
    r.name r.trad_dyn r.trad_static r.ic_dyn r.ic_static r.prop_dyn
    r.prop_static
    (dyn_improvement_vs_traditional r)
    (static_improvement_vs_traditional r)
    (dyn_improvement_vs_input_control r)
    (static_improvement_vs_input_control r)

let pp_table fmt rows =
  pp_header fmt ();
  List.iter (pp_row fmt) rows

let pp_vs_paper fmt r =
  Format.fprintf fmt "measured: ";
  pp_row fmt r;
  match paper_row r.name with
  | Some p ->
    Format.fprintf fmt "paper:    ";
    pp_row fmt p
  | None -> Format.fprintf fmt "paper:    (not in Table I)@."
