(** Table I-style reporting: one row per circuit with dynamic (/f) and
    static power for the three structures plus the improvement
    percentages, and the paper's published numbers for side-by-side
    shape comparison. *)

type row = {
  name : string;
  trad_dyn : float;  (** uW/Hz *)
  trad_static : float;  (** uW *)
  ic_dyn : float;
  ic_static : float;
  prop_dyn : float;
  prop_static : float;
}

val of_comparison : Flow.comparison -> row

val dyn_improvement_vs_traditional : row -> float

val static_improvement_vs_traditional : row -> float

val dyn_improvement_vs_input_control : row -> float

val static_improvement_vs_input_control : row -> float

val paper_table1 : row list
(** The twelve published rows of the paper's Table I. *)

val paper_row : string -> row option

val pp_header : Format.formatter -> unit -> unit

val pp_row : Format.formatter -> row -> unit

val pp_table : Format.formatter -> row list -> unit

val pp_vs_paper : Format.formatter -> row -> unit
(** Measured row followed by the published row (when the circuit is in
    Table I) with both improvement columns. *)
