open Netlist
module Json = Telemetry.Json

(* /2: comparisons now embed the ATPG summary. Bumping this changes
   every cache key, which is exactly the clean invalidation story: /1
   entries become stale misses (deleted on sight), never mis-decodes. *)
let schema_version = "scanpower.sweep/2"

type params = { seed : int }
type point = { circuit : Circuit.t; params : params }

let points ?(seeds = [ 42 ]) circuits =
  List.concat_map
    (fun circuit -> List.map (fun seed -> { circuit; params = { seed } }) seeds)
    circuits

let cache_key point =
  Runner.Cache.key ~schema:schema_version
    ~parts:
      [
        Bench_writer.to_string point.circuit;
        Printf.sprintf "seed=%d" point.params.seed;
      ]

(* ------------------------------------------------------------------ *)
(* comparison <-> JSON                                                 *)
(* ------------------------------------------------------------------ *)

let technique_to_json (t : Flow.technique_result) =
  Json.Obj
    [
      ("dynamic_per_hz_uw", Json.Float t.Flow.dynamic_per_hz_uw);
      ("static_uw", Json.Float t.Flow.static_uw);
      ("peak_static_uw", Json.Float t.Flow.peak_static_uw);
      ("total_toggles", Json.Int t.Flow.total_toggles);
    ]

let atpg_to_json (a : Flow.atpg_summary) =
  Json.Obj
    [
      ("status", Json.String (Flow.atpg_status a));
      ("total_faults", Json.Int a.Flow.total_faults);
      ("detected", Json.Int a.Flow.detected);
      ("untestable", Json.Int a.Flow.untestable);
      ("aborted", Json.Int a.Flow.aborted);
      ("skipped", Json.Int a.Flow.skipped);
      ("coverage", Json.Float a.Flow.coverage);
    ]

let comparison_to_json (c : Flow.comparison) =
  Json.Obj
    [
      ("name", Json.String c.Flow.name);
      ("n_vectors", Json.Int c.Flow.n_vectors);
      ("n_dffs", Json.Int c.Flow.n_dffs);
      ("n_muxable", Json.Int c.Flow.n_muxable);
      ("blocked_gates", Json.Int c.Flow.blocked_gates);
      ("failed_gates", Json.Int c.Flow.failed_gates);
      ("reordered_gates", Json.Int c.Flow.reordered_gates);
      ("atpg", atpg_to_json c.Flow.atpg);
      ("traditional", technique_to_json c.Flow.traditional);
      ("input_control", technique_to_json c.Flow.input_control);
      ("proposed", technique_to_json c.Flow.proposed);
      ("enhanced_scan", technique_to_json c.Flow.enhanced_scan);
    ]

let ( let* ) = Result.bind

let string_field obj key =
  match Json.member key obj with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" key)

let int_field obj key =
  match Json.member key obj with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing int field %S" key)

let float_field obj key =
  match Json.member key obj with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | Some Json.Null -> Ok Float.nan (* JSON cannot carry nan/inf *)
  | _ -> Error (Printf.sprintf "missing float field %S" key)

let technique_of_json obj key =
  match Json.member key obj with
  | Some (Json.Obj _ as t) ->
    let* dynamic_per_hz_uw = float_field t "dynamic_per_hz_uw" in
    let* static_uw = float_field t "static_uw" in
    let* peak_static_uw = float_field t "peak_static_uw" in
    let* total_toggles = int_field t "total_toggles" in
    Ok { Flow.dynamic_per_hz_uw; static_uw; peak_static_uw; total_toggles }
  | _ -> Error (Printf.sprintf "missing technique field %S" key)

(* "status" is derived from the counts by [Flow.atpg_status], so the
   decoder ignores it rather than trusting the serialized copy. *)
let atpg_of_json obj =
  match Json.member "atpg" obj with
  | Some (Json.Obj _ as a) ->
    let* total_faults = int_field a "total_faults" in
    let* detected = int_field a "detected" in
    let* untestable = int_field a "untestable" in
    let* aborted = int_field a "aborted" in
    let* skipped = int_field a "skipped" in
    let* coverage = float_field a "coverage" in
    Ok { Flow.total_faults; detected; untestable; aborted; skipped; coverage }
  | _ -> Error "missing atpg field"

let comparison_of_json obj =
  let* name = string_field obj "name" in
  let* n_vectors = int_field obj "n_vectors" in
  let* n_dffs = int_field obj "n_dffs" in
  let* n_muxable = int_field obj "n_muxable" in
  let* blocked_gates = int_field obj "blocked_gates" in
  let* failed_gates = int_field obj "failed_gates" in
  let* reordered_gates = int_field obj "reordered_gates" in
  let* atpg = atpg_of_json obj in
  let* traditional = technique_of_json obj "traditional" in
  let* input_control = technique_of_json obj "input_control" in
  let* proposed = technique_of_json obj "proposed" in
  let* enhanced_scan = technique_of_json obj "enhanced_scan" in
  Ok
    {
      Flow.name; n_vectors; n_dffs; n_muxable; blocked_gates; failed_gates;
      reordered_gates; atpg; traditional; input_control; proposed;
      enhanced_scan;
    }

(* ------------------------------------------------------------------ *)
(* running                                                             *)
(* ------------------------------------------------------------------ *)

type job_result = {
  circuit : string;
  seed : int;
  comparison : (Flow.comparison, string) result;
  from_cache : bool;
  attempts : int;
  duration_s : float;
  telemetry : Json.t option;
}

type report = { results : job_result list; stats : Runner.stats }

let job_of (point : point) =
  let id =
    Printf.sprintf "%s seed=%d" (Circuit.name point.circuit) point.params.seed
  in
  (* A forced-abort injection legitimately changes the result (coverage
     drops, vectors differ), so the job must bypass the shared cache:
     an injected entry stored under the content address would outlive
     the chaos run and poison clean sweeps. *)
  let abort_atpg =
    Runner.Fault_inject.(fires Atpg_abort ~key:(id ^ "#atpg"))
  in
  let atpg_config =
    if abort_atpg then
      Some { Atpg.Pattern_gen.default_config with backtrack_limit = 0 }
    else None
  in
  {
    Runner.id;
    cache_key = (if abort_atpg then None else Some (cache_key point));
    run =
      (fun ~attempt:_ ->
        comparison_to_json
          (Flow.run_benchmark_cached ?atpg_config ~seed:point.params.seed
             point.circuit));
  }

(* The journal header binds a checkpoint file to one batch: the result
   schema plus a digest of the (sorted) job identities. A resume
   against a different point set or schema refuses to reuse the file
   rather than serving answers for the wrong question. *)
let journal_meta points =
  let keys = List.sort String.compare (List.map cache_key points) in
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("points", Json.Int (List.length points));
      ("keys_digest",
       Json.String (Digest.to_hex (Digest.string (String.concat "\n" keys))));
    ]

(* ETA from the pool's observed job-latency distribution: the p50 is
   robust to one straggler circuit, and dividing by the worker count
   assumes the remaining jobs keep all lanes busy — optimistic near the
   tail, but it converges as the batch drains. *)
let eta_s ~jobs ~remaining =
  match Telemetry.Histogram.find "runner.job_s" with
  | Some s when s.Telemetry.Histogram.s_count > 0 ->
    [
      ( "eta_s",
        Json.Float
          (s.Telemetry.Histogram.p50 *. float_of_int remaining
          /. float_of_int (max 1 jobs)) );
    ]
  | _ -> []

let progress_events ~jobs ~total inner =
  let completed = ref 0 in
  let emit name (job : Runner.job) extra =
    if Telemetry.Events.has_subscribers () then
      Telemetry.Events.emit name
        ([
           ("job", Json.String job.Runner.id);
           ("completed", Json.Int !completed);
           ("total", Json.Int total);
         ]
        @ eta_s ~jobs ~remaining:(total - !completed)
        @ extra)
  in
  fun (ev : Runner.event) ->
    (match ev with
    | Runner.Started { job; attempt } ->
      emit "sweep.job_started" job [ ("attempt", Json.Int attempt) ]
    | Runner.Attempt_failed { job; attempt; failure; will_retry } ->
      emit
        (if will_retry then "sweep.job_retried" else "sweep.job_attempt_failed")
        job
        [
          ("attempt", Json.Int attempt);
          ("failure", Json.String (Runner.failure_to_string failure));
        ]
    | Runner.Finished { job; outcome } ->
      incr completed;
      let name, extra =
        match outcome with
        | Runner.Done { from_cache = true; _ } ->
          ("sweep.cache_hit", [ ("status", Json.String "ok") ])
        | Runner.Done { duration_s; attempts; _ } ->
          ( "sweep.job_finished",
            [
              ("status", Json.String "ok");
              ("attempts", Json.Int attempts);
              ("duration_s", Json.Float duration_s);
            ] )
        | Runner.Failed { last; attempts; quarantined } ->
          ( "sweep.job_finished",
            [
              ("status", Json.String "failed");
              ("attempts", Json.Int attempts);
              ("quarantined", Json.Bool quarantined);
              ("failure", Json.String (Runner.failure_to_string last));
            ] )
      in
      emit name job extra);
    inner ev

let run ?(jobs = 1) ?(parallel = Runner.Auto) ?(timeout_s = 0.0)
    ?(retries = 1) ?(backoff_s = 0.0) ?(deadline_s = 0.0)
    ?(poison_threshold = 3) ?(handle_signals = false) ?cache ?journal_path
    ?(resume = false) ?(capture_telemetry = true)
    ?(on_event = fun (_ : Runner.event) -> ()) points =
  (* Telemetry capture resets process-global state per worker — only a
     forked child can do that safely, so an explicit domains request
     turns capture off rather than silently forking. *)
  let capture_telemetry =
    capture_telemetry && parallel <> Runner.Domains
  in
  let on_event = progress_events ~jobs ~total:(List.length points) on_event in
  let journal =
    match journal_path with
    | None -> None
    | Some path -> (
      try
        Some (Runner.Journal.open_ ~path ~meta:(journal_meta points) ~resume)
      with Sys_error msg ->
        raise
          (Errors.Error
             (Errors.make ~code:Errors.Io ~stage:"sweep.journal" msg)))
  in
  let config =
    {
      Runner.default_config with
      jobs; strategy = parallel; timeout_s; retries; backoff_s; deadline_s;
      poison_threshold; handle_signals; cache; journal; capture_telemetry;
      on_event;
    }
  in
  let finally () = Option.iter Runner.Journal.close journal in
  let results, stats =
    Fun.protect ~finally (fun () -> Runner.run ~config (List.map job_of points))
  in
  let results =
    List.map2
      (fun (point : point) (r : Runner.result) ->
        let circuit = Circuit.name point.circuit in
        let seed = point.params.seed in
        match r.Runner.outcome with
        | Runner.Done { value; telemetry; from_cache; attempts; duration_s } ->
          {
            circuit; seed;
            comparison = comparison_of_json value;
            from_cache; attempts; duration_s; telemetry;
          }
        | Runner.Failed { attempts; last; quarantined } ->
          let msg = Runner.failure_to_string last in
          let msg = if quarantined then "quarantined: " ^ msg else msg in
          {
            circuit; seed;
            comparison = Error msg;
            from_cache = false; attempts; duration_s = 0.0; telemetry = None;
          })
      points results
  in
  { results; stats }

let rows t =
  List.filter_map
    (fun r ->
      match r.comparison with
      | Ok c -> Some (Report.of_comparison c)
      | Error _ -> None)
    t.results

let all_ok t =
  List.for_all (fun r -> Result.is_ok r.comparison) t.results

(* ------------------------------------------------------------------ *)
(* aggregate report                                                    *)
(* ------------------------------------------------------------------ *)

let job_to_json r =
  Json.Obj
    ([
       ("circuit", Json.String r.circuit);
       ("seed", Json.Int r.seed);
       ( "status",
         Json.String (match r.comparison with Ok _ -> "ok" | Error _ -> "failed")
       );
       ("from_cache", Json.Bool r.from_cache);
       ("attempts", Json.Int r.attempts);
       ("duration_s", Json.Float r.duration_s);
     ]
    @ (match r.comparison with
      | Ok c ->
        let t = c.Flow.traditional and p = c.Flow.proposed in
        [
          ("comparison", comparison_to_json c);
          ( "improvements",
            Json.Obj
              [
                ( "dynamic_vs_traditional",
                  Flow.improvement_json ~base:t.Flow.dynamic_per_hz_uw
                    p.Flow.dynamic_per_hz_uw );
                ( "static_vs_traditional",
                  Flow.improvement_json ~base:t.Flow.static_uw p.Flow.static_uw
                );
                ( "peak_static_vs_traditional",
                  Flow.improvement_json ~base:t.Flow.peak_static_uw
                    p.Flow.peak_static_uw );
              ] );
        ]
      | Error e -> [ ("error", Json.String e) ])
    @
    match r.telemetry with
    | None -> []
    | Some t -> [ ("telemetry", t) ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("pool", Runner.stats_to_json t.stats);
      ("jobs", Json.List (List.map job_to_json t.results));
    ]

let csv_header =
  "circuit,seed,status,from_cache,attempts,duration_s,n_vectors,n_dffs,\
   n_muxable,trad_dyn_per_hz_uw,trad_static_uw,ic_dyn_per_hz_uw,\
   ic_static_uw,prop_dyn_per_hz_uw,prop_static_uw,enh_dyn_per_hz_uw,\
   enh_static_uw,dyn_impr_vs_trad_pct,static_impr_vs_trad_pct,\
   atpg_coverage,atpg_aborted,atpg_status"

(* "undefined" instead of "nan": spreadsheet tools parse "nan" as a
   string in some locales and as a number in others, so an explicit
   marker is the only rendering that survives round-trips. *)
let csv_pct base x =
  let v = Flow.improvement base x in
  if Float.is_nan v then "undefined" else Printf.sprintf "%.3f" v

let csv_line r =
  let common =
    Printf.sprintf "%s,%d,%s,%b,%d,%.3f" r.circuit r.seed
      (match r.comparison with Ok _ -> "ok" | Error _ -> "failed")
      r.from_cache r.attempts r.duration_s
  in
  match r.comparison with
  | Error _ -> common ^ ",,,,,,,,,,,,,,,,"
  | Ok c ->
    let t = c.Flow.traditional
    and ic = c.Flow.input_control
    and p = c.Flow.proposed
    and e = c.Flow.enhanced_scan in
    Printf.sprintf
      "%s,%d,%d,%d,%.9e,%.6f,%.9e,%.6f,%.9e,%.6f,%.9e,%.6f,%s,%s,%.4f,%d,%s"
      common c.Flow.n_vectors c.Flow.n_dffs c.Flow.n_muxable
      t.Flow.dynamic_per_hz_uw t.Flow.static_uw ic.Flow.dynamic_per_hz_uw
      ic.Flow.static_uw p.Flow.dynamic_per_hz_uw p.Flow.static_uw
      e.Flow.dynamic_per_hz_uw e.Flow.static_uw
      (csv_pct t.Flow.dynamic_per_hz_uw p.Flow.dynamic_per_hz_uw)
      (csv_pct t.Flow.static_uw p.Flow.static_uw)
      c.Flow.atpg.Flow.coverage c.Flow.atpg.Flow.aborted
      (Flow.atpg_status c.Flow.atpg)

let to_csv t =
  String.concat "\n" (csv_header :: List.map csv_line t.results) ^ "\n"

let write_text path text =
  Out_channel.with_open_bin path (fun oc -> output_string oc text)

let write_json path t = write_text path (Json.to_string (to_json t) ^ "\n")
let write_csv path t = write_text path (to_csv t)
