open Netlist
module Json = Telemetry.Json

let schema_version = "scanpower.sweep/1"

type params = { seed : int }
type point = { circuit : Circuit.t; params : params }

let points ?(seeds = [ 42 ]) circuits =
  List.concat_map
    (fun circuit -> List.map (fun seed -> { circuit; params = { seed } }) seeds)
    circuits

let cache_key point =
  Runner.Cache.key ~schema:schema_version
    ~parts:
      [
        Bench_writer.to_string point.circuit;
        Printf.sprintf "seed=%d" point.params.seed;
      ]

(* ------------------------------------------------------------------ *)
(* comparison <-> JSON                                                 *)
(* ------------------------------------------------------------------ *)

let technique_to_json (t : Flow.technique_result) =
  Json.Obj
    [
      ("dynamic_per_hz_uw", Json.Float t.Flow.dynamic_per_hz_uw);
      ("static_uw", Json.Float t.Flow.static_uw);
      ("peak_static_uw", Json.Float t.Flow.peak_static_uw);
      ("total_toggles", Json.Int t.Flow.total_toggles);
    ]

let comparison_to_json (c : Flow.comparison) =
  Json.Obj
    [
      ("name", Json.String c.Flow.name);
      ("n_vectors", Json.Int c.Flow.n_vectors);
      ("n_dffs", Json.Int c.Flow.n_dffs);
      ("n_muxable", Json.Int c.Flow.n_muxable);
      ("blocked_gates", Json.Int c.Flow.blocked_gates);
      ("failed_gates", Json.Int c.Flow.failed_gates);
      ("reordered_gates", Json.Int c.Flow.reordered_gates);
      ("traditional", technique_to_json c.Flow.traditional);
      ("input_control", technique_to_json c.Flow.input_control);
      ("proposed", technique_to_json c.Flow.proposed);
      ("enhanced_scan", technique_to_json c.Flow.enhanced_scan);
    ]

let ( let* ) = Result.bind

let string_field obj key =
  match Json.member key obj with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" key)

let int_field obj key =
  match Json.member key obj with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing int field %S" key)

let float_field obj key =
  match Json.member key obj with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | Some Json.Null -> Ok Float.nan (* JSON cannot carry nan/inf *)
  | _ -> Error (Printf.sprintf "missing float field %S" key)

let technique_of_json obj key =
  match Json.member key obj with
  | Some (Json.Obj _ as t) ->
    let* dynamic_per_hz_uw = float_field t "dynamic_per_hz_uw" in
    let* static_uw = float_field t "static_uw" in
    let* peak_static_uw = float_field t "peak_static_uw" in
    let* total_toggles = int_field t "total_toggles" in
    Ok { Flow.dynamic_per_hz_uw; static_uw; peak_static_uw; total_toggles }
  | _ -> Error (Printf.sprintf "missing technique field %S" key)

let comparison_of_json obj =
  let* name = string_field obj "name" in
  let* n_vectors = int_field obj "n_vectors" in
  let* n_dffs = int_field obj "n_dffs" in
  let* n_muxable = int_field obj "n_muxable" in
  let* blocked_gates = int_field obj "blocked_gates" in
  let* failed_gates = int_field obj "failed_gates" in
  let* reordered_gates = int_field obj "reordered_gates" in
  let* traditional = technique_of_json obj "traditional" in
  let* input_control = technique_of_json obj "input_control" in
  let* proposed = technique_of_json obj "proposed" in
  let* enhanced_scan = technique_of_json obj "enhanced_scan" in
  Ok
    {
      Flow.name; n_vectors; n_dffs; n_muxable; blocked_gates; failed_gates;
      reordered_gates; traditional; input_control; proposed; enhanced_scan;
    }

(* ------------------------------------------------------------------ *)
(* running                                                             *)
(* ------------------------------------------------------------------ *)

type job_result = {
  circuit : string;
  seed : int;
  comparison : (Flow.comparison, string) result;
  from_cache : bool;
  attempts : int;
  duration_s : float;
  telemetry : Json.t option;
}

type report = { results : job_result list; stats : Runner.stats }

let job_of (point : point) =
  {
    Runner.id =
      Printf.sprintf "%s seed=%d" (Circuit.name point.circuit)
        point.params.seed;
    cache_key = Some (cache_key point);
    run =
      (fun ~attempt:_ ->
        comparison_to_json
          (Flow.run_benchmark_cached ~seed:point.params.seed point.circuit));
  }

let run ?(jobs = 1) ?(timeout_s = 0.0) ?(retries = 1) ?cache
    ?(capture_telemetry = true) ?(on_event = fun (_ : Runner.event) -> ())
    points =
  let config =
    {
      Runner.jobs; timeout_s; retries; cache; capture_telemetry;
      on_event;
    }
  in
  let results, stats = Runner.run ~config (List.map job_of points) in
  let results =
    List.map2
      (fun (point : point) (r : Runner.result) ->
        let circuit = Circuit.name point.circuit in
        let seed = point.params.seed in
        match r.Runner.outcome with
        | Runner.Done { value; telemetry; from_cache; attempts; duration_s } ->
          {
            circuit; seed;
            comparison = comparison_of_json value;
            from_cache; attempts; duration_s; telemetry;
          }
        | Runner.Failed { attempts; last } ->
          {
            circuit; seed;
            comparison = Error (Runner.failure_to_string last);
            from_cache = false; attempts; duration_s = 0.0; telemetry = None;
          })
      points results
  in
  { results; stats }

let rows t =
  List.filter_map
    (fun r ->
      match r.comparison with
      | Ok c -> Some (Report.of_comparison c)
      | Error _ -> None)
    t.results

let all_ok t =
  List.for_all (fun r -> Result.is_ok r.comparison) t.results

(* ------------------------------------------------------------------ *)
(* aggregate report                                                    *)
(* ------------------------------------------------------------------ *)

let job_to_json r =
  Json.Obj
    ([
       ("circuit", Json.String r.circuit);
       ("seed", Json.Int r.seed);
       ( "status",
         Json.String (match r.comparison with Ok _ -> "ok" | Error _ -> "failed")
       );
       ("from_cache", Json.Bool r.from_cache);
       ("attempts", Json.Int r.attempts);
       ("duration_s", Json.Float r.duration_s);
     ]
    @ (match r.comparison with
      | Ok c -> [ ("comparison", comparison_to_json c) ]
      | Error e -> [ ("error", Json.String e) ])
    @
    match r.telemetry with
    | None -> []
    | Some t -> [ ("telemetry", t) ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("pool", Runner.stats_to_json t.stats);
      ("jobs", Json.List (List.map job_to_json t.results));
    ]

let csv_header =
  "circuit,seed,status,from_cache,attempts,duration_s,n_vectors,n_dffs,\
   n_muxable,trad_dyn_per_hz_uw,trad_static_uw,ic_dyn_per_hz_uw,\
   ic_static_uw,prop_dyn_per_hz_uw,prop_static_uw,enh_dyn_per_hz_uw,\
   enh_static_uw,dyn_impr_vs_trad_pct,static_impr_vs_trad_pct"

let csv_line r =
  let common =
    Printf.sprintf "%s,%d,%s,%b,%d,%.3f" r.circuit r.seed
      (match r.comparison with Ok _ -> "ok" | Error _ -> "failed")
      r.from_cache r.attempts r.duration_s
  in
  match r.comparison with
  | Error _ -> common ^ ",,,,,,,,,,,,,"
  | Ok c ->
    let t = c.Flow.traditional
    and ic = c.Flow.input_control
    and p = c.Flow.proposed
    and e = c.Flow.enhanced_scan in
    Printf.sprintf
      "%s,%d,%d,%d,%.9e,%.6f,%.9e,%.6f,%.9e,%.6f,%.9e,%.6f,%.3f,%.3f" common
      c.Flow.n_vectors c.Flow.n_dffs c.Flow.n_muxable t.Flow.dynamic_per_hz_uw
      t.Flow.static_uw ic.Flow.dynamic_per_hz_uw ic.Flow.static_uw
      p.Flow.dynamic_per_hz_uw p.Flow.static_uw e.Flow.dynamic_per_hz_uw
      e.Flow.static_uw
      (Flow.improvement t.Flow.dynamic_per_hz_uw p.Flow.dynamic_per_hz_uw)
      (Flow.improvement t.Flow.static_uw p.Flow.static_uw)

let to_csv t =
  String.concat "\n" (csv_header :: List.map csv_line t.results) ^ "\n"

let write_text path text =
  Out_channel.with_open_bin path (fun oc -> output_string oc text)

let write_json path t = write_text path (Json.to_string (to_json t) ^ "\n")
let write_csv path t = write_text path (to_csv t)
