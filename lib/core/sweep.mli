(** Batch evaluation of the full Table I flow over (circuit ×
    flow-parameter) points, on top of {!Runner}: forked workers,
    per-job timeout/retry, crash isolation, and a content-addressed
    result cache keyed by the netlist text, the parameter point and
    {!schema_version} — so a re-run recomputes only points whose
    inputs (or the result schema) changed, and results are
    bit-identical to running {!Flow.run_benchmark} per circuit. *)

open Netlist

val schema_version : string
(** Versions both the serialized {!Flow.comparison} layout and the
    cache key; bump it whenever the flow's semantics change so stale
    cache entries can never be mistaken for fresh results. *)

type params = { seed : int }

type point = { circuit : Circuit.t; params : params }

val points : ?seeds:int list -> Circuit.t list -> point list
(** Cross product, grouped per circuit (all seeds of a circuit are
    adjacent so the in-process ATPG memo helps in sequential mode).
    [seeds] defaults to [[42]], the flow's default seed. *)

val cache_key : point -> string
(** Content address: digest of the netlist ([Bench_writer.to_string]),
    the parameter point and {!schema_version}. *)

val comparison_to_json : Flow.comparison -> Telemetry.Json.t
(** Embeds the ATPG summary (with its derived ["status"]) beside the
    four technique results. *)

val comparison_of_json :
  Telemetry.Json.t -> (Flow.comparison, string) result
(** Exact inverse of {!comparison_to_json} (floats round-trip
    bit-identically through the JSON layer's 17-digit rendering;
    non-finite values degrade to [nan], which JSON cannot carry). *)

type job_result = {
  circuit : string;
  seed : int;
  comparison : (Flow.comparison, string) result;
  from_cache : bool;
  attempts : int;  (** 0 when served from cache *)
  duration_s : float;
  telemetry : Telemetry.Json.t option;
      (** the worker's span tree + counters for this job *)
}

type report = { results : job_result list; stats : Runner.stats }

val journal_meta : point list -> Telemetry.Json.t
(** The checkpoint-journal header for a batch: {!schema_version} plus
    a digest of the sorted cache keys, so a [--resume] against a
    different point set (or schema) starts the journal over instead of
    serving answers for the wrong batch. *)

val run :
  ?jobs:int ->
  ?parallel:Runner.strategy ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?deadline_s:float ->
  ?poison_threshold:int ->
  ?handle_signals:bool ->
  ?cache:Runner.Cache.t ->
  ?journal_path:string ->
  ?resume:bool ->
  ?capture_telemetry:bool ->
  ?on_event:(Runner.event -> unit) ->
  point list ->
  report
(** Evaluate every point; [results] is in point order. Defaults:
    [jobs = 1], [parallel = Auto], no timeout, [retries = 1], no
    backoff, no deadline, [poison_threshold = 3], signals not handled,
    no cache, no journal, [capture_telemetry = true].

    [parallel] picks how [jobs > 1] points execute: [Processes] forks
    one child per attempt (crash/timeout isolation, per-worker
    telemetry); [Domains] fans points over an in-process
    {!Par.Domain_pool} — cheaper per job, shares the flow's prepare
    memo, but no per-point timeout, and [capture_telemetry] is forced
    off; [Auto] resolves per {!Runner.effective_strategy} (with this
    function's defaults — capture on — that is [Processes]).

    [journal_path] opens a JSON-lines checkpoint journal (header =
    {!journal_meta}) that records every finished job as it completes;
    with [resume = true] a journal left by an interrupted run of the
    {e same} batch is replayed first and only unfinished jobs are
    recomputed (composing with, and consulted before, the
    content-addressed [cache]). The journal is closed (flushed) even
    if the run raises. Raises {!Errors.Error} (code [Io]) when the
    journal file cannot be opened. *)

val rows : report -> Report.row list
(** Table I rows of the successful results, in point order. *)

val all_ok : report -> bool

val to_json : report -> Telemetry.Json.t
(** Aggregate report (schema {!schema_version}): pool counters plus
    one object per job with its parameters, status, cache provenance,
    timing, comparison and telemetry snapshot. *)

val to_csv : report -> string
(** One line per job: parameters, provenance, the raw power numbers of
    all four structures, the improvement percentages of the proposed
    structure versus traditional scan (["undefined"] when no
    percentage exists, never ["nan"]), and the ATPG
    coverage/aborted/status columns. *)

val write_json : string -> report -> unit

val write_csv : string -> report -> unit
