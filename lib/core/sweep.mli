(** Batch evaluation of the full Table I flow over (circuit ×
    flow-parameter) points, on top of {!Runner}: forked workers,
    per-job timeout/retry, crash isolation, and a content-addressed
    result cache keyed by the netlist text, the parameter point and
    {!schema_version} — so a re-run recomputes only points whose
    inputs (or the result schema) changed, and results are
    bit-identical to running {!Flow.run_benchmark} per circuit. *)

open Netlist

val schema_version : string
(** Versions both the serialized {!Flow.comparison} layout and the
    cache key; bump it whenever the flow's semantics change so stale
    cache entries can never be mistaken for fresh results. *)

type params = { seed : int }

type point = { circuit : Circuit.t; params : params }

val points : ?seeds:int list -> Circuit.t list -> point list
(** Cross product, grouped per circuit (all seeds of a circuit are
    adjacent so the in-process ATPG memo helps in sequential mode).
    [seeds] defaults to [[42]], the flow's default seed. *)

val cache_key : point -> string
(** Content address: digest of the netlist ([Bench_writer.to_string]),
    the parameter point and {!schema_version}. *)

val comparison_to_json : Flow.comparison -> Telemetry.Json.t

val comparison_of_json :
  Telemetry.Json.t -> (Flow.comparison, string) result
(** Exact inverse of {!comparison_to_json} (floats round-trip
    bit-identically through the JSON layer's 17-digit rendering;
    non-finite values degrade to [nan], which JSON cannot carry). *)

type job_result = {
  circuit : string;
  seed : int;
  comparison : (Flow.comparison, string) result;
  from_cache : bool;
  attempts : int;  (** 0 when served from cache *)
  duration_s : float;
  telemetry : Telemetry.Json.t option;
      (** the worker's span tree + counters for this job *)
}

type report = { results : job_result list; stats : Runner.stats }

val run :
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?cache:Runner.Cache.t ->
  ?capture_telemetry:bool ->
  ?on_event:(Runner.event -> unit) ->
  point list ->
  report
(** Evaluate every point; [results] is in point order. Defaults:
    [jobs = 1], no timeout, [retries = 1], no cache,
    [capture_telemetry = true]. *)

val rows : report -> Report.row list
(** Table I rows of the successful results, in point order. *)

val all_ok : report -> bool

val to_json : report -> Telemetry.Json.t
(** Aggregate report (schema {!schema_version}): pool counters plus
    one object per job with its parameters, status, cache provenance,
    timing, comparison and telemetry snapshot. *)

val to_csv : report -> string
(** One line per job: parameters, provenance, the raw power numbers of
    all four structures and the improvement percentages of the
    proposed structure versus traditional scan. *)

val write_json : string -> report -> unit

val write_csv : string -> report -> unit
