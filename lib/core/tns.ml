open Netlist

type t = {
  tns : bool array;
  tgs : int list;
}

let compute c ~values ~seeds ~failed =
  let n = Circuit.node_count c in
  let tns = Array.make n false in
  List.iter (fun id -> tns.(id) <- true) seeds;
  let tgs = ref [] in
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      if failed.(id) then tns.(id) <- true
      else if
        Gate.is_logic nd.kind && not (Logic.equal values.(id) Logic.X)
      then
        (* a definite value is pinned by the controlled inputs alone:
           the line cannot toggle whatever the chain does *)
        ()
      else
        match nd.kind with
        | Gate.Input | Gate.Dff -> ()
        | Gate.Output | Gate.Buf | Gate.Not | Gate.Xor | Gate.Xnor ->
          (* single-input and parity gates always pass transitions *)
          if Array.exists (fun f -> tns.(f)) nd.fanins then tns.(id) <- true
        | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
          if Array.exists (fun f -> tns.(f)) nd.fanins then begin
            let cv =
              match Gate.controlling_value nd.kind with
              | Some v -> v
              | None -> assert false
            in
            let blocked = ref false and all_noncontrolling = ref true in
            Array.iter
              (fun f ->
                if not tns.(f) then begin
                  if Logic.equal values.(f) cv then blocked := true;
                  if not (Logic.equal values.(f) (Logic.lnot cv)) then
                    all_noncontrolling := false
                end)
              nd.fanins;
            if !blocked then ()
            else if !all_noncontrolling then tns.(id) <- true
            else if Gate.is_logic nd.kind then tgs := id :: !tgs
          end)
    (Circuit.topo_order c);
  { tns; tgs = List.rev !tgs }

let pick_largest_load c tgs =
  match tgs with
  | [] -> None
  | first :: _ ->
    let best = ref first and best_load = ref (Techmap.Loads.node_load c first) in
    List.iter
      (fun id ->
        let l = Techmap.Loads.node_load c id in
        if l > !best_load then begin
          best := id;
          best_load := l
        end)
      tgs;
    Some !best

let transition_count t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.tns
