(** Transition Node Set / Transition Gate Set bookkeeping (Section 4).

    A {e transition node} (tn) is a line that still toggles while the
    scan chain shifts under the current partial assignment of the
    controlled inputs; the gates fed by transition nodes form the
    {e transition gate set} (TGS) — the candidates the algorithm still
    has to block. Following the paper's update rules:

    - the non-multiplexed pseudo-inputs seed the TNS;
    - NOT / BUF / XOR / XNOR targets always propagate a transition;
    - a target with some other input at its controlling value is
      blocked;
    - a target whose other inputs all carry definite non-controlling
      values propagates;
    - otherwise the target has usable don't-care inputs and stays in
      the TGS;
    - a gate the search failed to block is forced into the TNS so its
      fanout cone is examined ([~failed]). *)

open Netlist

type t = {
  tns : bool array;  (** per node id: carries scan-shift transitions *)
  tgs : int list;  (** blockable transition gates *)
}

val compute :
  Circuit.t -> values:Logic.t array -> seeds:int list -> failed:bool array -> t
(** [values] is the current three-valued assignment (propagated);
    [seeds] the transition sources (non-muxed pseudo-inputs). *)

val pick_largest_load : Circuit.t -> int list -> int option
(** The paper's mc_tg choice: the TGS gate with the largest output
    capacitance. *)

val transition_count : t -> int
