type code =
  | Usage
  | Parse
  | Validation
  | Io
  | Runtime
  | Partial
  | Regression
  | Overloaded
  | Deadline
  | Degraded

let code_to_string = function
  | Usage -> "usage"
  | Parse -> "parse"
  | Validation -> "validation"
  | Io -> "io"
  | Runtime -> "runtime"
  | Partial -> "partial"
  | Regression -> "regression"
  | Overloaded -> "overloaded"
  | Deadline -> "deadline"
  | Degraded -> "degraded"

let all_codes =
  [ Usage; Parse; Validation; Io; Runtime; Partial; Regression;
    Overloaded; Deadline; Degraded ]

let code_of_string s =
  List.find_opt (fun c -> code_to_string c = s) all_codes

(* Keep these in sync with the README troubleshooting table: 2 = bad
   invocation, 3 = bad input, 4 = the flow itself failed, 5 = a batch
   finished with failures, 6 = a benchmark comparison found a
   regression, 7 = the daemon refused the request under load, 8 = a
   per-request deadline expired, 9 = the daemon is shedding load under
   memory pressure (retryable). Cmdliner owns 124 for flag-syntax
   errors. *)
let exit_code = function
  | Usage -> 2
  | Parse | Validation -> 3
  | Io | Runtime -> 4
  | Partial -> 5
  | Regression -> 6
  | Overloaded -> 7
  | Deadline -> 8
  | Degraded -> 9

type location = { file : string option; line : int; column : int }

type t = {
  code : code;
  stage : string;
  circuit : string option;
  loc : location option;
  token : string option;
  message : string;
}

exception Error of t

let make ?circuit ?loc ?token ~code ~stage message =
  { code; stage; circuit; loc; token; message }

let raise_error ?circuit ?loc ?token ~code ~stage message =
  raise (Error (make ?circuit ?loc ?token ~code ~stage message))

let errorf ?circuit ?loc ?token ~code ~stage fmt =
  Printf.ksprintf (raise_error ?circuit ?loc ?token ~code ~stage) fmt

let to_string e =
  let b = Buffer.create 128 in
  Buffer.add_string b (code_to_string e.code);
  Buffer.add_string b " error in ";
  Buffer.add_string b e.stage;
  (match e.circuit with
  | Some c ->
    Buffer.add_string b " [";
    Buffer.add_string b c;
    Buffer.add_char b ']'
  | None -> ());
  (match e.loc with
  | Some l ->
    Buffer.add_string b " at ";
    (match l.file with
    | Some f ->
      Buffer.add_string b f;
      Buffer.add_char b ':'
    | None -> ());
    Buffer.add_string b (string_of_int l.line);
    if l.column > 0 then begin
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int l.column)
    end
  | None -> ());
  (match e.token with
  | Some t -> Buffer.add_string b (Printf.sprintf " near %S" t)
  | None -> ());
  Buffer.add_string b ": ";
  Buffer.add_string b e.message;
  Buffer.contents b

let to_json e =
  let module Json = Telemetry.Json in
  let opt k v rest =
    match v with Some s -> (k, Json.String s) :: rest | None -> rest
  in
  let loc_fields rest =
    match e.loc with
    | None -> rest
    | Some l ->
      opt "file" l.file
        (("line", Json.Int l.line) :: ("column", Json.Int l.column) :: rest)
  in
  Json.Obj
    (("code", Json.String (code_to_string e.code))
    :: ("stage", Json.String e.stage)
    :: opt "circuit" e.circuit
         (loc_fields (opt "token" e.token [ ("message", Json.String e.message) ])))

(* The exact inverse of [to_json]. Strictness is deliberate: a daemon
   client re-materializing an error must never silently downgrade a
   code it does not know into [Runtime], because exit-code mapping and
   retry policy hang off the code. *)
let of_json json =
  let module Json = Telemetry.Json in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let str_field obj k =
    match Json.member k obj with
    | Some (Json.String s) -> Ok s
    | Some _ -> Error (Printf.sprintf "field %S is not a string" k)
    | None -> Error (Printf.sprintf "missing field %S" k)
  in
  let opt_str obj k =
    match Json.member k obj with
    | Some (Json.String s) -> Ok (Some s)
    | Some _ -> Error (Printf.sprintf "field %S is not a string" k)
    | None -> Ok None
  in
  let opt_int obj k =
    match Json.member k obj with
    | Some (Json.Int n) -> Ok (Some n)
    | Some _ -> Error (Printf.sprintf "field %S is not an integer" k)
    | None -> Ok None
  in
  match json with
  | Json.Obj _ as obj ->
    let* code_s = str_field obj "code" in
    let* code =
      match code_of_string code_s with
      | Some c -> Ok c
      | None -> Error (Printf.sprintf "unknown error code %S" code_s)
    in
    let* stage = str_field obj "stage" in
    let* message = str_field obj "message" in
    let* circuit = opt_str obj "circuit" in
    let* token = opt_str obj "token" in
    let* file = opt_str obj "file" in
    let* line = opt_int obj "line" in
    let* column = opt_int obj "column" in
    let* loc =
      match (line, column, file) with
      | None, None, None -> Ok None
      | Some line, Some column, file -> Ok (Some { file; line; column })
      | _ -> Error "location needs both \"line\" and \"column\""
    in
    Ok { code; stage; circuit; loc; token; message }
  | _ -> Error "error payload is not a JSON object"

let of_exn ~stage ?circuit exn =
  match exn with
  | Error e ->
    (match (e.circuit, circuit) with
    | None, Some _ -> { e with circuit }
    | _ -> e)
  | Sys_error msg -> make ?circuit ~code:Io ~stage msg
  | Failure msg -> make ?circuit ~code:Runtime ~stage msg
  | Invalid_argument msg -> make ?circuit ~code:Runtime ~stage msg
  | e -> make ?circuit ~code:Runtime ~stage (Printexc.to_string e)
