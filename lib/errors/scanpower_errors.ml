type code = Usage | Parse | Validation | Io | Runtime | Partial | Regression

let code_to_string = function
  | Usage -> "usage"
  | Parse -> "parse"
  | Validation -> "validation"
  | Io -> "io"
  | Runtime -> "runtime"
  | Partial -> "partial"
  | Regression -> "regression"

(* Keep these in sync with the README troubleshooting table: 2 = bad
   invocation, 3 = bad input, 4 = the flow itself failed, 5 = a batch
   finished with failures, 6 = a benchmark comparison found a
   regression. Cmdliner owns 124 for flag-syntax errors. *)
let exit_code = function
  | Usage -> 2
  | Parse | Validation -> 3
  | Io | Runtime -> 4
  | Partial -> 5
  | Regression -> 6

type location = { file : string option; line : int; column : int }

type t = {
  code : code;
  stage : string;
  circuit : string option;
  loc : location option;
  token : string option;
  message : string;
}

exception Error of t

let make ?circuit ?loc ?token ~code ~stage message =
  { code; stage; circuit; loc; token; message }

let raise_error ?circuit ?loc ?token ~code ~stage message =
  raise (Error (make ?circuit ?loc ?token ~code ~stage message))

let errorf ?circuit ?loc ?token ~code ~stage fmt =
  Printf.ksprintf (raise_error ?circuit ?loc ?token ~code ~stage) fmt

let to_string e =
  let b = Buffer.create 128 in
  Buffer.add_string b (code_to_string e.code);
  Buffer.add_string b " error in ";
  Buffer.add_string b e.stage;
  (match e.circuit with
  | Some c ->
    Buffer.add_string b " [";
    Buffer.add_string b c;
    Buffer.add_char b ']'
  | None -> ());
  (match e.loc with
  | Some l ->
    Buffer.add_string b " at ";
    (match l.file with
    | Some f ->
      Buffer.add_string b f;
      Buffer.add_char b ':'
    | None -> ());
    Buffer.add_string b (string_of_int l.line);
    if l.column > 0 then begin
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int l.column)
    end
  | None -> ());
  (match e.token with
  | Some t -> Buffer.add_string b (Printf.sprintf " near %S" t)
  | None -> ());
  Buffer.add_string b ": ";
  Buffer.add_string b e.message;
  Buffer.contents b

let to_json e =
  let module Json = Telemetry.Json in
  let opt k v rest =
    match v with Some s -> (k, Json.String s) :: rest | None -> rest
  in
  let loc_fields rest =
    match e.loc with
    | None -> rest
    | Some l ->
      opt "file" l.file
        (("line", Json.Int l.line) :: ("column", Json.Int l.column) :: rest)
  in
  Json.Obj
    (("code", Json.String (code_to_string e.code))
    :: ("stage", Json.String e.stage)
    :: opt "circuit" e.circuit
         (loc_fields (opt "token" e.token [ ("message", Json.String e.message) ])))

let of_exn ~stage ?circuit exn =
  match exn with
  | Error e ->
    (match (e.circuit, circuit) with
    | None, Some _ -> { e with circuit }
    | _ -> e)
  | Sys_error msg -> make ?circuit ~code:Io ~stage msg
  | Failure msg -> make ?circuit ~code:Runtime ~stage msg
  | Invalid_argument msg -> make ?circuit ~code:Runtime ~stage msg
  | e -> make ?circuit ~code:Runtime ~stage (Printexc.to_string e)
