(** Structured errors for the whole scan-power flow.

    Every user-facing failure — a malformed [.bench] file, an invalid
    netlist, an unmappable gate, a failed sweep — is raised as the
    single exception {!Error} carrying one {!t}: an error {!code} (the
    class that decides the process exit code), the pipeline stage that
    detected it, the circuit involved when known, an optional source
    location and offending token, and a human message. Internal
    invariant violations keep raising [Invalid_argument]/[Failure];
    those indicate bugs, not bad input, and are wrapped at the CLI
    boundary via {!of_exn}. *)

type code =
  | Usage  (** bad command line: unknown circuit name, bad flag value *)
  | Parse  (** input text could not be read as a netlist at all *)
  | Validation  (** input parsed but the netlist is ill-formed *)
  | Io  (** file system / OS error around an input or output *)
  | Runtime  (** the flow itself failed (ATPG, simulation, pool misuse) *)
  | Partial  (** the batch finished but some jobs failed or were cut short *)
  | Regression  (** [bench-diff] found a metric past its threshold *)
  | Overloaded
      (** the serving daemon's admission queue was full and the request
          was refused; safe to retry after backing off *)
  | Deadline
      (** the request's deadline expired before it could be served *)
  | Degraded
      (** the serving daemon is shedding compute-heavy requests under
          memory pressure; safe to retry after backing off — cheap
          requests (health, stats, validate) keep being served *)

val code_to_string : code -> string
(** Lowercase tag: ["usage"], ["parse"], ... *)

val code_of_string : string -> code option
(** Inverse of {!code_to_string}; [None] for unknown tags. *)

val exit_code : code -> int
(** The documented process exit code for each class:
    [Usage] → 2, [Parse]/[Validation] → 3, [Io]/[Runtime] → 4,
    [Partial] → 5, [Regression] → 6, [Overloaded] → 7, [Deadline] → 8,
    [Degraded] → 9. (0 is success; Cmdliner's own 124 covers
    command-line syntax it rejects before we run.) *)

type location = {
  file : string option;  (** [None] for in-memory text *)
  line : int;  (** 1-based; 0 when unknown *)
  column : int;  (** 1-based; 0 when unknown *)
}

type t = {
  code : code;
  stage : string;  (** e.g. ["bench_parser"], ["flow.prepare"], ["sweep"] *)
  circuit : string option;
  loc : location option;
  token : string option;  (** the offending token, when one exists *)
  message : string;
}

exception Error of t

val make :
  ?circuit:string ->
  ?loc:location ->
  ?token:string ->
  code:code ->
  stage:string ->
  string ->
  t

val raise_error :
  ?circuit:string ->
  ?loc:location ->
  ?token:string ->
  code:code ->
  stage:string ->
  string ->
  'a
(** [make] then [raise (Error _)]. *)

val errorf :
  ?circuit:string ->
  ?loc:location ->
  ?token:string ->
  code:code ->
  stage:string ->
  ('a, unit, string, 'b) format4 ->
  'a
(** Printf-style {!raise_error}. *)

val to_string : t -> string
(** One line: class, stage, circuit, location, token, message. *)

val to_json : t -> Telemetry.Json.t
(** Object with ["code"], ["stage"], ["message"] and, when present,
    ["circuit"], ["file"], ["line"], ["column"], ["token"]. *)

val of_json : Telemetry.Json.t -> (t, string) result
(** Exact inverse of {!to_json}, so a daemon client can re-materialize
    the structured error instead of string-matching. Strict: unknown
    codes, missing required fields ([code], [stage], [message]) and
    wrongly-typed fields are an [Error], never a silent downgrade —
    exit-code mapping and retry policy hang off the code. *)

val of_exn : stage:string -> ?circuit:string -> exn -> t
(** Wrap a legacy exception: {!Error} passes through unchanged
    (augmented with [circuit] if it had none), [Sys_error] becomes
    [Io], everything else [Runtime]. *)
