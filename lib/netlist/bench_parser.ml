module E = Scanpower_errors

type statement =
  | St_input of string
  | St_output of string
  | St_assign of string * string * string list (* lhs, kind, args *)

(* 1-based column of [token] in [line]; 0 when it cannot be located *)
let column_of line token =
  if token = "" then 0
  else begin
    let n = String.length line and m = String.length token in
    let rec go i =
      if i + m > n then 0
      else if String.sub line i m = token then i + 1
      else go (i + 1)
    in
    go 0
  end

let syntax_error ?file ~line ?(col = 0) ?token fmt =
  Printf.ksprintf
    (fun message ->
      raise
        (E.Error
           (E.make ?token
              ~loc:{ E.file; line; column = col }
              ~code:E.Parse ~stage:"bench_parser" message)))
    fmt

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '[' | ']' | '$' | '-' ->
    true
  | _ -> false

let strip s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\r') do incr i done;
  let j = ref (n - 1) in
  while !j >= !i && (s.[!j] = ' ' || s.[!j] = '\t' || s.[!j] = '\r') do decr j done;
  String.sub s !i (!j - !i + 1)

(* "KIND(a, b, c)" -> (KIND, [a; b; c]); [orig] is the whole source
   line, used only to locate offending tokens for diagnostics *)
let parse_call ?file lineno ~orig s =
  match String.index_opt s '(' with
  | None ->
    syntax_error ?file ~line:lineno ~col:(column_of orig s) ~token:s
      "expected '(' in %S" s
  | Some lp ->
    if s.[String.length s - 1] <> ')' then
      syntax_error ?file ~line:lineno
        ~col:(String.length orig)
        ~token:s "expected ')' in %S (truncated line?)" s;
    let kind = strip (String.sub s 0 lp) in
    let args_str = String.sub s (lp + 1) (String.length s - lp - 2) in
    let args =
      String.split_on_char ',' args_str
      |> List.map strip
      |> List.filter (fun a -> a <> "")
    in
    List.iter
      (fun a ->
        String.iter
          (fun c ->
            if not (is_ident_char c) then
              syntax_error ?file ~line:lineno ~col:(column_of orig a) ~token:a
                "invalid character %C in signal name %S" c a)
          a)
      args;
    (kind, args)

let parse_line ?file lineno line =
  let orig = line in
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  if line = "" then None
  else
    match String.index_opt line '=' with
    | Some eq ->
      let lhs = strip (String.sub line 0 eq) in
      let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
      if lhs = "" then
        syntax_error ?file ~line:lineno ~col:1 ~token:line
          "empty left-hand side";
      let kind, args = parse_call ?file lineno ~orig rhs in
      Some (St_assign (lhs, kind, args))
    | None ->
      let kind, args = parse_call ?file lineno ~orig line in
      let arg =
        match args with
        | [ a ] -> a
        | _ ->
          syntax_error ?file ~line:lineno ~col:(column_of orig kind) ~token:kind
            "%s takes exactly one signal" kind
      in
      (match String.uppercase_ascii kind with
      | "INPUT" -> Some (St_input arg)
      | "OUTPUT" -> Some (St_output arg)
      | other ->
        syntax_error ?file ~line:lineno ~col:(column_of orig kind) ~token:kind
          "unknown directive %S (expected INPUT or OUTPUT)" other)

(* Parse every line, turning per-line syntax failures into [syntax]
   diagnostics instead of stopping at the first one. *)
let statements_and_syntax ?file text =
  let statements = ref [] and diags = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match parse_line ?file lineno line with
      | Some st -> statements := (lineno, st) :: !statements
      | None -> ()
      | exception E.Error e ->
        diags :=
          {
            Validate.severity = Validate.Error;
            check = "syntax";
            net = (match e.E.token with Some t -> t | None -> "");
            line = lineno;
            message = e.E.message;
          }
          :: !diags)
    (String.split_on_char '\n' text);
  (List.rev !statements, List.rev !diags)

let decls_of_statements stmts =
  List.map
    (fun (line, st) ->
      match st with
      | St_input name -> Validate.D_input { line; name }
      | St_output name -> Validate.D_output { line; name }
      | St_assign (name, kind, args) -> Validate.D_gate { line; name; kind; args })
    stmts

let lint ?file text =
  let stmts, syntax = statements_and_syntax ?file text in
  syntax @ Validate.decls (decls_of_statements stmts)

let build ?(name = "bench") ?file statements =
  let fail lineno fmt =
    Printf.ksprintf
      (fun message ->
        raise
          (E.Error
             (E.make ~circuit:name
                ~loc:{ E.file; line = lineno; column = 0 }
                ~code:E.Validation ~stage:"bench_parser" message)))
      fmt
  in
  let b = Circuit.Builder.create ~name () in
  let ids = Hashtbl.create 256 in
  (* Pass 1: allocate an id for every defined signal, in file order, so
     that forward references in pass 2 resolve to the right node. *)
  let predicted = Hashtbl.create 256 in
  let next = ref 0 in
  let predict lineno nm =
    if Hashtbl.mem predicted nm then fail lineno "signal %S defined twice" nm;
    Hashtbl.add predicted nm !next;
    incr next
  in
  List.iter
    (fun (lineno, st) ->
      match st with
      | St_input nm -> predict lineno nm
      | St_assign (lhs, _, _) -> predict lineno lhs
      | St_output _ -> ())
    statements;
  let resolve lineno nm =
    match Hashtbl.find_opt predicted nm with
    | Some id -> id
    | None -> fail lineno "undefined signal %S" nm
  in
  (* Pass 2: create the nodes. Builder ids follow creation order, which
     matches the prediction because outputs are deferred to pass 3. *)
  let dff_pending = ref [] in
  List.iter
    (fun (lineno, st) ->
      match st with
      | St_input nm ->
        let id = Circuit.Builder.add_input b nm in
        Hashtbl.add ids nm id
      | St_assign (lhs, kind_str, args) ->
        let kind =
          try Gate.of_string kind_str
          with Invalid_argument _ -> fail lineno "unknown gate kind %S" kind_str
        in
        (match kind with
        | Gate.Dff ->
          let d =
            match args with
            | [ d ] -> d
            | _ -> fail lineno "DFF %S takes exactly one input" lhs
          in
          let id = Circuit.Builder.declare_dff b lhs in
          Hashtbl.add ids lhs id;
          dff_pending := (lineno, id, d) :: !dff_pending
        | Gate.Input | Gate.Output ->
          fail lineno "%s is not valid on the right-hand side" kind_str
        | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
        | Gate.Xor | Gate.Xnor ->
          let fanins = List.map (resolve lineno) args in
          let id =
            try Circuit.Builder.add_gate b kind lhs fanins
            with Invalid_argument msg -> fail lineno "%s" msg
          in
          Hashtbl.add ids lhs id)
      | St_output _ -> ())
    statements;
  List.iter
    (fun (lineno, id, d) -> Circuit.Builder.connect_dff b id ~d:(resolve lineno d))
    !dff_pending;
  (* Pass 3: primary-output markers; a signal may legitimately drive
     several outputs, so marker names are uniquified. *)
  let po_seen = Hashtbl.create 16 in
  List.iter
    (fun (lineno, st) ->
      match st with
      | St_output nm ->
        let k =
          match Hashtbl.find_opt po_seen nm with
          | Some k -> k + 1
          | None -> 0
        in
        Hashtbl.replace po_seen nm k;
        let marker = if k = 0 then nm ^ "$po" else Printf.sprintf "%s$po%d" nm k in
        ignore (Circuit.Builder.add_output b marker (resolve lineno nm))
      | St_input _ | St_assign _ -> ())
    statements;
  try Circuit.Builder.build b
  with Invalid_argument msg -> fail 0 "%s" msg

let raise_all ?name ?file ~code diags =
  let first =
    match diags with d :: _ -> d | [] -> invalid_arg "Bench_parser.raise_all"
  in
  let token = if first.Validate.net = "" then None else Some first.Validate.net in
  raise
    (E.Error
       (E.make ?circuit:name ?token
          ~loc:{ E.file; line = first.Validate.line; column = 0 }
          ~code ~stage:"bench_parser" (Validate.summary diags)))

let parse_string ?name ?file text =
  let stmts, syntax = statements_and_syntax ?file text in
  if syntax <> [] then raise_all ?name ?file ~code:E.Parse syntax;
  let diags = Validate.errors (Validate.decls (decls_of_statements stmts)) in
  if diags <> [] then raise_all ?name ?file ~code:E.Validation diags;
  build ?name ?file stmts

let parse_file path =
  let text =
    try
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      text
    with Sys_error msg ->
      E.raise_error ~code:E.Io ~stage:"bench_parser" msg
  in
  let base = Filename.remove_extension (Filename.basename path) in
  parse_string ~name:base ~file:path text
