(** Parser for the ISCAS89 [.bench] netlist format.

    Accepted syntax (case-insensitive keywords, [#] comments):
    {v
    INPUT(G0)
    OUTPUT(G17)
    G5  = DFF(G10)
    G10 = NAND(G0, G5)
    v} *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_string : ?name:string -> string -> Circuit.t
(** @raise Parse_error on malformed input. *)

val parse_file : string -> Circuit.t
(** Circuit name defaults to the file basename without extension.
    @raise Parse_error on malformed input
    @raise Sys_error if the file cannot be read. *)
