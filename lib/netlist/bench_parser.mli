(** Parser for the ISCAS89 [.bench] netlist format.

    Accepted syntax (case-insensitive keywords, [#] comments):
    {v
    INPUT(G0)
    OUTPUT(G17)
    G5  = DFF(G10)
    G10 = NAND(G0, G5)
    v}

    Malformed input raises {!Scanpower_errors.Error} with stage
    ["bench_parser"], carrying the file (when parsing from disk), the
    1-based line and column, and the offending token. Syntax errors
    (code [Parse]) and semantic errors (code [Validation] — see
    {!Validate}) each report {e every} problem found, newline-joined in
    the message, not just the first. *)

val parse_string : ?name:string -> ?file:string -> string -> Circuit.t
(** [file] is only used to label error locations.
    @raise Scanpower_errors.Error on malformed input. *)

val parse_file : string -> Circuit.t
(** Circuit name defaults to the file basename without extension.
    @raise Scanpower_errors.Error on malformed input (code [Parse] or
    [Validation]) or an unreadable file (code [Io]). *)

val lint : ?file:string -> string -> Validate.diagnostic list
(** Non-raising: every syntax and semantic diagnostic for the text, in
    source order ([check = "syntax"] entries first). Empty means the
    text parses into a well-formed circuit. *)
