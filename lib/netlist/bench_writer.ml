let to_string c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Circuit.name c));
  let node_name i = (Circuit.node c i).name in
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (node_name i)))
    (Circuit.inputs c);
  Array.iter
    (fun i ->
      let nd = Circuit.node c i in
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (node_name nd.fanins.(0))))
    (Circuit.outputs c);
  Array.iter
    (fun i ->
      let nd = Circuit.node c i in
      match nd.kind with
      | Gate.Input | Gate.Output -> ()
      | Gate.Dff | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
      | Gate.Nor | Gate.Xor | Gate.Xnor ->
        let args =
          nd.fanins |> Array.to_list |> List.map node_name
          |> String.concat ", "
        in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" nd.name (Gate.to_string nd.kind) args))
    (Circuit.topo_order c);
  Buffer.contents buf

let to_file c path =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
