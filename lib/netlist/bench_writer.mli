(** Emitter for the ISCAS89 [.bench] netlist format; inverse of
    {!Bench_parser} up to formatting. *)

val to_string : Circuit.t -> string

val to_file : Circuit.t -> string -> unit
