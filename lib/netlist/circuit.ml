type node = {
  id : int;
  name : string;
  kind : Gate.kind;
  mutable fanins : int array;
  mutable fanouts : int array;
}

type t = {
  name : string;
  nodes : node array;
  inputs : int array;
  outputs : int array;
  dffs : int array;
  sources : int array;
  topo : int array;
  levels : int array;
  by_name : (string, int) Hashtbl.t;
}

let name c = c.name
let node_count c = Array.length c.nodes
let node c i = c.nodes.(i)
let nodes c = c.nodes
let inputs c = c.inputs
let outputs c = c.outputs
let dffs c = c.dffs
let sources c = c.sources
let topo_order c = c.topo
let level c i = c.levels.(i)

let depth c = Array.fold_left max 0 c.levels

let gate_count c =
  let n = ref 0 in
  Array.iter (fun nd -> if Gate.is_logic nd.kind then incr n) c.nodes;
  !n

let find c nm = Hashtbl.find c.by_name nm
let find_opt c nm = Hashtbl.find_opt c.by_name nm

let symmetric_kind = function
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor -> true
  | Gate.Input | Gate.Dff | Gate.Output | Gate.Buf | Gate.Not -> false

let permute_fanins c id perm =
  let nd = c.nodes.(id) in
  if not (symmetric_kind nd.kind) then
    invalid_arg "Circuit.permute_fanins: gate is not symmetric";
  let n = Array.length nd.fanins in
  if Array.length perm <> n then
    invalid_arg "Circuit.permute_fanins: wrong permutation length";
  let seen = Array.make n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= n || seen.(j) then
        invalid_arg "Circuit.permute_fanins: not a permutation";
      seen.(j) <- true)
    perm;
  nd.fanins <- Array.map (fun j -> nd.fanins.(j)) perm

let copy c =
  {
    c with
    nodes =
      Array.map
        (fun nd ->
          { nd with fanins = Array.copy nd.fanins; fanouts = Array.copy nd.fanouts })
        c.nodes;
  }

type stats = {
  n_inputs : int;
  n_outputs : int;
  n_dffs : int;
  n_gates : int;
  n_nodes : int;
  max_level : int;
  total_fanin : int;
}

let stats c =
  let total_fanin =
    Array.fold_left (fun acc nd -> acc + Array.length nd.fanins) 0 c.nodes
  in
  {
    n_inputs = Array.length c.inputs;
    n_outputs = Array.length c.outputs;
    n_dffs = Array.length c.dffs;
    n_gates = gate_count c;
    n_nodes = node_count c;
    max_level = depth c;
    total_fanin;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "inputs=%d outputs=%d dffs=%d gates=%d nodes=%d depth=%d fanin=%d"
    s.n_inputs s.n_outputs s.n_dffs s.n_gates s.n_nodes s.max_level
    s.total_fanin

module Builder = struct
  type proto = {
    p_name : string;
    p_kind : Gate.kind;
    mutable p_fanins : int list;
    mutable p_connected : bool;
  }

  type builder = {
    b_name : string;
    mutable protos : proto list; (* reversed *)
    by_id : (int, proto) Hashtbl.t;
    mutable count : int;
    names : (string, int) Hashtbl.t;
  }

  let create ?(name = "circuit") () =
    {
      b_name = name;
      protos = [];
      by_id = Hashtbl.create 64;
      count = 0;
      names = Hashtbl.create 64;
    }

  let push b proto =
    if Hashtbl.mem b.names proto.p_name then
      invalid_arg
        (Printf.sprintf "Circuit.Builder: duplicate name %S" proto.p_name);
    let id = b.count in
    Hashtbl.add b.names proto.p_name id;
    Hashtbl.add b.by_id id proto;
    b.protos <- proto :: b.protos;
    b.count <- b.count + 1;
    id

  let add_input b nm =
    push b
      { p_name = nm; p_kind = Gate.Input; p_fanins = []; p_connected = true }

  let add_gate b kind nm fanins =
    if not (Gate.is_logic kind) then
      invalid_arg "Circuit.Builder.add_gate: not a logic gate";
    let n = List.length fanins in
    if n < Gate.min_fanin kind then
      invalid_arg
        (Printf.sprintf "Circuit.Builder.add_gate: %s %S with %d fanins"
           (Gate.to_string kind) nm n);
    (match Gate.max_fanin kind with
    | Some m when n > m ->
      invalid_arg
        (Printf.sprintf "Circuit.Builder.add_gate: %s %S with %d fanins"
           (Gate.to_string kind) nm n)
    | Some _ | None -> ());
    push b { p_name = nm; p_kind = kind; p_fanins = fanins; p_connected = true }

  let add_output b nm src =
    push b
      {
        p_name = nm;
        p_kind = Gate.Output;
        p_fanins = [ src ];
        p_connected = true;
      }

  let declare_dff b nm =
    push b { p_name = nm; p_kind = Gate.Dff; p_fanins = []; p_connected = false }

  let connect_dff b id ~d =
    let proto =
      match Hashtbl.find_opt b.by_id id with
      | Some p -> p
      | None -> invalid_arg "Circuit.Builder.connect_dff: unknown id"
    in
    if not (Gate.equal_kind proto.p_kind Gate.Dff) then
      invalid_arg "Circuit.Builder.connect_dff: not a flip-flop";
    if proto.p_connected then
      invalid_arg "Circuit.Builder.connect_dff: already connected";
    proto.p_fanins <- [ d ];
    proto.p_connected <- true

  (* Combinational topological sort by Kahn's algorithm. Input and Dff
     nodes are sources; the Dff D edge is sequential and ignored. *)
  let topo_sort nodes =
    let n = Array.length nodes in
    let indeg = Array.make n 0 in
    Array.iter
      (fun nd ->
        if not (Gate.is_source nd.kind) then
          indeg.(nd.id) <- Array.length nd.fanins)
      nodes;
    let order = Array.make n (-1) in
    let pos = ref 0 in
    let queue = Queue.create () in
    Array.iter (fun nd -> if indeg.(nd.id) = 0 then Queue.add nd.id queue) nodes;
    while not (Queue.is_empty queue) do
      let id = Queue.take queue in
      order.(!pos) <- id;
      incr pos;
      Array.iter
        (fun succ ->
          if not (Gate.is_source nodes.(succ).kind) then begin
            indeg.(succ) <- indeg.(succ) - 1;
            if indeg.(succ) = 0 then Queue.add succ queue
          end)
        nodes.(id).fanouts
    done;
    if !pos <> n then invalid_arg "Circuit.Builder.build: combinational cycle";
    order

  let build b =
    let protos = Array.of_list (List.rev b.protos) in
    let n = Array.length protos in
    let nodes =
      Array.init n (fun i ->
          let p = protos.(i) in
          if not p.p_connected then
            invalid_arg
              (Printf.sprintf "Circuit.Builder.build: dangling DFF %S" p.p_name);
          List.iter
            (fun f ->
              if f < 0 || f >= n then
                invalid_arg "Circuit.Builder.build: fanin out of range")
            p.p_fanins;
          {
            id = i;
            name = p.p_name;
            kind = p.p_kind;
            fanins = Array.of_list p.p_fanins;
            fanouts = [||];
          })
    in
    let fanout_lists = Array.make n [] in
    Array.iter
      (fun nd ->
        Array.iter (fun f -> fanout_lists.(f) <- nd.id :: fanout_lists.(f))
        nd.fanins)
      nodes;
    Array.iter
      (fun nd -> nd.fanouts <- Array.of_list (List.rev fanout_lists.(nd.id)))
      nodes;
    let topo = topo_sort nodes in
    let levels = Array.make n 0 in
    Array.iter
      (fun id ->
        let nd = nodes.(id) in
        if not (Gate.is_source nd.kind) then begin
          let m = ref 0 in
          Array.iter (fun f -> m := max !m levels.(f)) nd.fanins;
          levels.(id) <- !m + 1
        end)
      topo;
    let collect kind =
      let acc = ref [] in
      for i = n - 1 downto 0 do
        if Gate.equal_kind nodes.(i).kind kind then acc := i :: !acc
      done;
      Array.of_list !acc
    in
    let inputs = collect Gate.Input in
    let dffs = collect Gate.Dff in
    {
      name = b.b_name;
      nodes;
      inputs;
      outputs = collect Gate.Output;
      dffs;
      sources = Array.append inputs dffs;
      topo;
      levels;
      by_name = Hashtbl.copy b.names;
    }
end
