(** Gate-level netlist IR.

    A circuit is an arena of nodes indexed by dense integer ids. D
    flip-flop outputs act as pseudo-inputs of the combinational core:
    the topological order treats [Input] and [Dff] nodes as sources and
    never traverses the sequential D edge, so all combinational
    algorithms (simulation, STA, ATPG, the transition-blocking search)
    can walk [topo_order] directly. *)

type node = private {
  id : int;
  name : string;
  kind : Gate.kind;
  mutable fanins : int array;
  mutable fanouts : int array;
}

type t

val name : t -> string

val node_count : t -> int

val node : t -> int -> node

val nodes : t -> node array

val inputs : t -> int array
(** Primary-input node ids. *)

val outputs : t -> int array
(** Primary-output marker node ids (each has exactly one fanin). *)

val dffs : t -> int array
(** Flip-flop node ids; their outputs are the pseudo-inputs. *)

val sources : t -> int array
(** [inputs] followed by [dffs]: every free value of the combinational
    core, in a stable order. *)

val gate_count : t -> int
(** Number of combinational logic gates (excludes Input/Dff/Output). *)

val topo_order : t -> int array
(** Every node id in combinational topological order: sources first,
    then logic gates and output markers, each after all its fanins. *)

val level : t -> int -> int
(** Combinational level: 0 for sources, [1 + max fanin level] otherwise. *)

val depth : t -> int
(** Maximum level over all nodes. *)

val find : t -> string -> int
(** Node id by name.
    @raise Not_found if absent. *)

val find_opt : t -> string -> int option

val permute_fanins : t -> int -> int array -> unit
(** [permute_fanins c id perm] reorders the fanins of gate [id] so that
    new position [i] holds the previous fanin [perm.(i)]. Only allowed
    on symmetric gates (AND/NAND/OR/NOR/XOR/XNOR) since it must not
    change the logic function.
    @raise Invalid_argument if [perm] is not a permutation or the gate
    is not symmetric. *)

val copy : t -> t
(** Independent copy: [permute_fanins] on the copy leaves the original
    untouched. *)

type stats = {
  n_inputs : int;
  n_outputs : int;
  n_dffs : int;
  n_gates : int;
  n_nodes : int;
  max_level : int;
  total_fanin : int;
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit

(** Imperative construction API. Flip-flops may be declared before
    their D input exists (sequential feedback) and connected later;
    {!Builder.build} checks that every flip-flop was connected, that
    arities are respected, that names are unique and that the
    combinational core is acyclic. *)
module Builder : sig
  type builder

  val create : ?name:string -> unit -> builder

  val add_input : builder -> string -> int

  val add_gate : builder -> Gate.kind -> string -> int list -> int
  (** @raise Invalid_argument on arity violation or non-logic kind. *)

  val add_output : builder -> string -> int -> int
  (** [add_output b name src] marks [src] as driving primary output
      [name]; returns the id of the output marker node. *)

  val declare_dff : builder -> string -> int
  (** Returns the flip-flop node id; its output may be used as a fanin
      immediately. *)

  val connect_dff : builder -> int -> d:int -> unit

  val build : builder -> t
  (** @raise Invalid_argument on dangling flip-flops, duplicate names
      or a combinational cycle. *)
end
