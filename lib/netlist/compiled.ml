let op_input = 0
let op_dff = 1
let op_output = 2
let op_buf = 3
let op_not = 4
let op_and = 5
let op_nand = 6
let op_or = 7
let op_nor = 8
let op_xor = 9
let op_xnor = 10

let opcode_of_kind = function
  | Gate.Input -> op_input
  | Gate.Dff -> op_dff
  | Gate.Output -> op_output
  | Gate.Buf -> op_buf
  | Gate.Not -> op_not
  | Gate.And -> op_and
  | Gate.Nand -> op_nand
  | Gate.Or -> op_or
  | Gate.Nor -> op_nor
  | Gate.Xor -> op_xor
  | Gate.Xnor -> op_xnor

let kind_of_opcode op =
  if op = op_input then Gate.Input
  else if op = op_dff then Gate.Dff
  else if op = op_output then Gate.Output
  else if op = op_buf then Gate.Buf
  else if op = op_not then Gate.Not
  else if op = op_and then Gate.And
  else if op = op_nand then Gate.Nand
  else if op = op_or then Gate.Or
  else if op = op_nor then Gate.Nor
  else if op = op_xor then Gate.Xor
  else if op = op_xnor then Gate.Xnor
  else invalid_arg "Compiled.kind_of_opcode"

type t = {
  circuit : Circuit.t;
  n : int;
  opcode : int array;
  fanin_off : int array;
  fanin : int array;
  fanout_off : int array;
  fanout : int array;
  topo : int array;
  eval_order : int array;
  levels : int array;
  max_level : int;
  level_population : int array;
  (* structural preprocessing for fault propagation: observables,
     fanout-free regions and propagation dominators (all with respect
     to the combinational core — DFF nodes never propagate) *)
  observable : bool array;
  reaches_observable : bool array;
  ffr_stem : int array;
  stems : int array;
  idom : int array;
  idom_depth : int array;
}

(* A fault effect is observed at primary-output marker nodes and at
   flip-flop D pins (the fanin of every DFF node). *)
let compute_observable n opcode fanin_off fanin =
  let observable = Array.make n false in
  for id = 0 to n - 1 do
    if opcode.(id) = op_output then observable.(id) <- true
    else if opcode.(id) = op_dff then observable.(fanin.(fanin_off.(id))) <- true
  done;
  observable

(* Fanout-free regions: walk single-fanout chains to the first node
   with zero or several fanout edges (the fanout array carries one
   entry per fanin edge, so a node feeding two pins of one gate counts
   as two edges and is a stem), or whose unique consumer is a DFF (the
   effect is observed at the D pin and never propagates through it).
   Processing in reverse topological order sees every consumer before
   its producers. *)
let compute_ffr n opcode fanout_off fanout topo =
  let ffr_stem = Array.make n (-1) in
  for k = n - 1 downto 0 do
    let id = topo.(k) in
    let lo = fanout_off.(id) and hi = fanout_off.(id + 1) in
    if hi - lo <> 1 then ffr_stem.(id) <- id
    else begin
      let succ = fanout.(lo) in
      if opcode.(succ) = op_dff then ffr_stem.(id) <- id
      else ffr_stem.(id) <- ffr_stem.(succ)
    end
  done;
  let n_stems = ref 0 in
  Array.iteri (fun id s -> if s = id then incr n_stems) ffr_stem;
  let stems = Array.make !n_stems 0 in
  let pos = ref 0 in
  for id = 0 to n - 1 do
    if ffr_stem.(id) = id then begin
      stems.(!pos) <- id;
      incr pos
    end
  done;
  (ffr_stem, stems)

(* Immediate dominators of the propagation DAG: [idom.(id)] is the one
   node every path from [id] to an observable passes through first
   (beyond [id] itself). Observation itself is modelled as a virtual
   exit node with id [n]: [idom.(id) = n] means the effect fans out
   irreconvergently (or [id] is itself observable), [-1] means no
   observable is reachable at all. Computed in reverse topological
   order as the nearest common ancestor, in the growing dominator
   tree, of all propagating successors. *)
let compute_idom n opcode fanout_off fanout topo observable =
  let exit_id = n in
  let reaches = Array.make n false in
  let idom = Array.make (n + 1) (-1) in
  let depth = Array.make (n + 1) 0 in
  idom.(exit_id) <- exit_id;
  let rec nca a b =
    if a = b then a
    else if depth.(a) >= depth.(b) then nca idom.(a) b
    else nca a idom.(b)
  in
  for k = n - 1 downto 0 do
    let id = topo.(k) in
    if observable.(id) then begin
      reaches.(id) <- true;
      idom.(id) <- exit_id;
      depth.(id) <- 1
    end
    else begin
      let d = ref (-1) in
      for i = fanout_off.(id) to fanout_off.(id + 1) - 1 do
        let succ = fanout.(i) in
        if opcode.(succ) <> op_dff && reaches.(succ) then
          d := if !d = -1 then succ else nca !d succ
      done;
      if !d >= 0 then begin
        reaches.(id) <- true;
        idom.(id) <- !d;
        depth.(id) <- depth.(!d) + 1
      end
    end
  done;
  (reaches, idom, depth)

let of_circuit c =
  let nodes = Circuit.nodes c in
  let n = Array.length nodes in
  let opcode = Array.make n 0 in
  let fanin_off = Array.make (n + 1) 0 in
  let fanout_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let nd = nodes.(i) in
    opcode.(i) <- opcode_of_kind nd.Circuit.kind;
    fanin_off.(i + 1) <- fanin_off.(i) + Array.length nd.Circuit.fanins;
    fanout_off.(i + 1) <- fanout_off.(i) + Array.length nd.Circuit.fanouts
  done;
  let fanin = Array.make fanin_off.(n) 0 in
  let fanout = Array.make fanout_off.(n) 0 in
  for i = 0 to n - 1 do
    let nd = nodes.(i) in
    Array.iteri (fun p f -> fanin.(fanin_off.(i) + p) <- f) nd.Circuit.fanins;
    Array.iteri (fun p s -> fanout.(fanout_off.(i) + p) <- s) nd.Circuit.fanouts
  done;
  let topo = Array.copy (Circuit.topo_order c) in
  let levels = Array.init n (Circuit.level c) in
  let max_level = Array.fold_left max 0 levels in
  let level_population = Array.make (max_level + 1) 0 in
  let n_eval = ref 0 in
  Array.iter
    (fun id ->
      if opcode.(id) > op_dff then begin
        incr n_eval;
        level_population.(levels.(id)) <- level_population.(levels.(id)) + 1
      end)
    topo;
  let eval_order = Array.make !n_eval 0 in
  let pos = ref 0 in
  Array.iter
    (fun id ->
      if opcode.(id) > op_dff then begin
        eval_order.(!pos) <- id;
        incr pos
      end)
    topo;
  let observable = compute_observable n opcode fanin_off fanin in
  let ffr_stem, stems = compute_ffr n opcode fanout_off fanout topo in
  let reaches_observable, idom, idom_depth =
    compute_idom n opcode fanout_off fanout topo observable
  in
  {
    circuit = c;
    n;
    opcode;
    fanin_off;
    fanin;
    fanout_off;
    fanout;
    topo;
    eval_order;
    levels;
    max_level;
    level_population;
    observable;
    reaches_observable;
    ffr_stem;
    stems;
    idom;
    idom_depth;
  }

let circuit t = t.circuit
let node_count t = t.n
let opcode t = t.opcode
let fanin_off t = t.fanin_off
let fanin t = t.fanin
let fanout_off t = t.fanout_off
let fanout t = t.fanout
let topo t = t.topo
let eval_order t = t.eval_order
let levels t = t.levels
let max_level t = t.max_level
let level_population t = t.level_population
let is_source t id = t.opcode.(id) <= op_dff
let is_logic t id = t.opcode.(id) >= op_buf
let observable t = t.observable
let reaches_observable t = t.reaches_observable
let ffr_stem t = t.ffr_stem
let stems t = t.stems
let idom t = t.idom
let idom_depth t = t.idom_depth
let exit_id t = t.n

(* Tail-recursive folds over a CSR fanin slice: no closures, no
   intermediate arrays. *)

let rec all_true (v : bool array) (fa : int array) i hi =
  i >= hi || (v.(fa.(i)) && all_true v fa (i + 1) hi)

let rec any_true (v : bool array) (fa : int array) i hi =
  i < hi && (v.(fa.(i)) || any_true v fa (i + 1) hi)

let rec parity (v : bool array) (fa : int array) i hi acc =
  if i >= hi then acc else parity v fa (i + 1) hi (acc <> v.(fa.(i)))

let eval_bool t (values : bool array) id =
  let lo = t.fanin_off.(id) and hi = t.fanin_off.(id + 1) in
  let fa = t.fanin in
  let op = t.opcode.(id) in
  if op = op_and then all_true values fa lo hi
  else if op = op_nand then not (all_true values fa lo hi)
  else if op = op_or then any_true values fa lo hi
  else if op = op_nor then not (any_true values fa lo hi)
  else if op = op_not then not values.(fa.(lo))
  else if op = op_buf || op = op_output then values.(fa.(lo))
  else if op = op_xor then parity values fa lo hi false
  else if op = op_xnor then not (parity values fa lo hi false)
  else invalid_arg "Compiled.eval_bool: source node"

let rec fold_and64 (w : int64 array) (fa : int array) i hi acc =
  if i >= hi then acc
  else fold_and64 w fa (i + 1) hi (Int64.logand acc w.(fa.(i)))

let rec fold_or64 (w : int64 array) (fa : int array) i hi acc =
  if i >= hi then acc
  else fold_or64 w fa (i + 1) hi (Int64.logor acc w.(fa.(i)))

let rec fold_xor64 (w : int64 array) (fa : int array) i hi acc =
  if i >= hi then acc
  else fold_xor64 w fa (i + 1) hi (Int64.logxor acc w.(fa.(i)))

let eval_word t (words : int64 array) id =
  let lo = t.fanin_off.(id) and hi = t.fanin_off.(id + 1) in
  let fa = t.fanin in
  let op = t.opcode.(id) in
  (* 2-input gates dominate a mapped netlist; evaluating them
     straight-line keeps the int64s unboxed (the recursive folds box
     their accumulator argument on every call) *)
  if hi - lo = 2 && op >= op_and then begin
    if op = op_and then Int64.logand words.(fa.(lo)) words.(fa.(lo + 1))
    else if op = op_nand then
      Int64.lognot (Int64.logand words.(fa.(lo)) words.(fa.(lo + 1)))
    else if op = op_or then Int64.logor words.(fa.(lo)) words.(fa.(lo + 1))
    else if op = op_nor then
      Int64.lognot (Int64.logor words.(fa.(lo)) words.(fa.(lo + 1)))
    else if op = op_xor then Int64.logxor words.(fa.(lo)) words.(fa.(lo + 1))
    else Int64.lognot (Int64.logxor words.(fa.(lo)) words.(fa.(lo + 1)))
  end
  else if op = op_and then fold_and64 words fa lo hi Int64.minus_one
  else if op = op_nand then Int64.lognot (fold_and64 words fa lo hi Int64.minus_one)
  else if op = op_or then fold_or64 words fa lo hi 0L
  else if op = op_nor then Int64.lognot (fold_or64 words fa lo hi 0L)
  else if op = op_not then Int64.lognot words.(fa.(lo))
  else if op = op_buf || op = op_output then words.(fa.(lo))
  else if op = op_xor then fold_xor64 words fa lo hi 0L
  else if op = op_xnor then Int64.lognot (fold_xor64 words fa lo hi 0L)
  else invalid_arg "Compiled.eval_word: source node"

let eval_words t (words : int64 array) =
  let eo = t.eval_order in
  for k = 0 to Array.length eo - 1 do
    let id = eo.(k) in
    words.(id) <- eval_word t words id
  done

(* ---- W-word batches ---- *)

(* Strided folds for the rare >2-input gate: node [id] word [w] lives
   at [id*width + w]. *)
let rec fold_and64w (ws : int64 array) (fa : int array) i hi w width acc =
  if i >= hi then acc
  else
    fold_and64w ws fa (i + 1) hi w width
      (Int64.logand acc ws.((fa.(i) * width) + w))

let rec fold_or64w (ws : int64 array) (fa : int array) i hi w width acc =
  if i >= hi then acc
  else
    fold_or64w ws fa (i + 1) hi w width
      (Int64.logor acc ws.((fa.(i) * width) + w))

let rec fold_xor64w (ws : int64 array) (fa : int array) i hi w width acc =
  if i >= hi then acc
  else
    fold_xor64w ws fa (i + 1) hi w width
      (Int64.logxor acc ws.((fa.(i) * width) + w))

let eval_words_wide t ~width (words : int64 array) =
  if width = 1 then eval_words t words
  else begin
    let eo = t.eval_order in
    let fa = t.fanin in
    for k = 0 to Array.length eo - 1 do
      let id = eo.(k) in
      let lo = t.fanin_off.(id) and hi = t.fanin_off.(id + 1) in
      let op = t.opcode.(id) in
      let dst = id * width in
      (* 2-input gates dominate a mapped netlist; the W inner words
         reuse the two fanin base offsets, so the CSR indices are
         fetched once per gate, not once per word *)
      if hi - lo = 2 && op >= op_and then begin
        let a = fa.(lo) * width and b = fa.(lo + 1) * width in
        if op = op_and then
          for w = 0 to width - 1 do
            words.(dst + w) <- Int64.logand words.(a + w) words.(b + w)
          done
        else if op = op_nand then
          for w = 0 to width - 1 do
            words.(dst + w) <-
              Int64.lognot (Int64.logand words.(a + w) words.(b + w))
          done
        else if op = op_or then
          for w = 0 to width - 1 do
            words.(dst + w) <- Int64.logor words.(a + w) words.(b + w)
          done
        else if op = op_nor then
          for w = 0 to width - 1 do
            words.(dst + w) <-
              Int64.lognot (Int64.logor words.(a + w) words.(b + w))
          done
        else if op = op_xor then
          for w = 0 to width - 1 do
            words.(dst + w) <- Int64.logxor words.(a + w) words.(b + w)
          done
        else
          for w = 0 to width - 1 do
            words.(dst + w) <-
              Int64.lognot (Int64.logxor words.(a + w) words.(b + w))
          done
      end
      else if op = op_not then begin
        let a = fa.(lo) * width in
        for w = 0 to width - 1 do
          words.(dst + w) <- Int64.lognot words.(a + w)
        done
      end
      else if op = op_buf || op = op_output then
        Array.blit words (fa.(lo) * width) words dst width
      else if op = op_and then
        for w = 0 to width - 1 do
          words.(dst + w) <- fold_and64w words fa lo hi w width Int64.minus_one
        done
      else if op = op_nand then
        for w = 0 to width - 1 do
          words.(dst + w) <-
            Int64.lognot (fold_and64w words fa lo hi w width Int64.minus_one)
        done
      else if op = op_or then
        for w = 0 to width - 1 do
          words.(dst + w) <- fold_or64w words fa lo hi w width 0L
        done
      else if op = op_nor then
        for w = 0 to width - 1 do
          words.(dst + w) <-
            Int64.lognot (fold_or64w words fa lo hi w width 0L)
        done
      else if op = op_xor then
        for w = 0 to width - 1 do
          words.(dst + w) <- fold_xor64w words fa lo hi w width 0L
        done
      else if op = op_xnor then
        for w = 0 to width - 1 do
          words.(dst + w) <-
            Int64.lognot (fold_xor64w words fa lo hi w width 0L)
        done
      else invalid_arg "Compiled.eval_words_wide: source node"
    done
  end
