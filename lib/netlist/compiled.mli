(** Flat compiled form of a circuit for hot simulation loops.

    {!Circuit.t} stores one heap object per node with its own fanin and
    fanout arrays — convenient for construction and transformation, but
    every simulator inner loop then chases two pointers per edge and is
    tempted into per-evaluation allocation ([Array.map] over fanins).
    [Compiled.t] is the read-only answer: one shared CSR fanin array
    (plus per-node offsets), the same for fanouts, integer gate opcodes,
    and the precomputed topological order and levels, all in flat [int]
    arrays. Simulators index, never allocate.

    The compiled form is a snapshot: {!Circuit.permute_fanins} on the
    source circuit is not reflected — recompile after structural edits
    (every simulation session compiles its own snapshot, so the normal
    flow never observes staleness). *)

type t

val of_circuit : Circuit.t -> t
(** One pass over the nodes; O(nodes + edges). *)

val circuit : t -> Circuit.t
val node_count : t -> int

(** {1 Opcodes}

    Dense integer encoding of {!Gate.kind} so inner loops can match on
    an immediate instead of a constructor load. Sources are the two
    smallest opcodes, so [opcode <= op_dff] is the source test. *)

val op_input : int
val op_dff : int
val op_output : int
val op_buf : int
val op_not : int
val op_and : int
val op_nand : int
val op_or : int
val op_nor : int
val op_xor : int
val op_xnor : int

val opcode_of_kind : Gate.kind -> int
val kind_of_opcode : int -> Gate.kind

val is_source : t -> int -> bool
val is_logic : t -> int -> bool

(** {1 Flat arrays}

    All accessors return the internal arrays — aliased, do not mutate.
    Hot loops should hoist them out of the loop once. *)

val opcode : t -> int array
(** Per node id. *)

val fanin_off : t -> int array
(** Length [node_count + 1]; fanins of node [i] are
    [fanin.(fanin_off.(i)) .. fanin.(fanin_off.(i+1) - 1)], in the same
    pin order as [Circuit.node.fanins]. *)

val fanin : t -> int array

val fanout_off : t -> int array
val fanout : t -> int array

val topo : t -> int array
(** Combinational topological order (sources first), as
    {!Circuit.topo_order}. *)

val eval_order : t -> int array
(** [topo] restricted to non-source nodes: exactly the nodes a
    combinational sweep must evaluate, in evaluation order. *)

val levels : t -> int array
val max_level : t -> int

val level_population : t -> int array
(** [level_population.(l)] = number of non-source nodes at level [l]
    (index 0 .. [max_level]); sizes exact per-level event buckets. *)

(** {1 Structural fault-propagation preprocessing}

    All with respect to the combinational core: a DFF node never
    propagates (its D pin is where an effect is observed), so the
    propagation DAG is the fanout graph minus edges into DFFs. *)

val observable : t -> bool array
(** [observable.(id)] iff a value change on node [id] is directly
    observed: primary-output marker nodes and flip-flop D-pin
    drivers. *)

val reaches_observable : t -> bool array
(** [reaches_observable.(id)] iff [id] is observable or some
    propagation path from [id] ends at an observable; events on other
    nodes can never contribute to detection. *)

val ffr_stem : t -> int array
(** [ffr_stem.(id)] is the stem of the fanout-free region containing
    [id]: the first node on the single-fanout chain from [id] with
    zero or several fanout edges, or whose unique consumer is a DFF.
    Stems map to themselves. Inside an FFR every node has exactly one
    path to the stem, so single-fault sensitization composes exactly
    (critical path tracing is exact within an FFR). *)

val stems : t -> int array
(** The stem nodes (fixpoints of [ffr_stem]), in id order. *)

val idom : t -> int array
(** Immediate propagation dominator: [idom.(id)] is the unique first
    node beyond [id] that every propagation path from [id] to an
    observable passes through. [exit_id t] (a virtual exit) means the
    paths reconverge only at observation (or [id] is itself
    observable); [-1] means no observable is reachable. Length
    [node_count + 1]: the exit maps to itself. *)

val idom_depth : t -> int array
(** Depth of each node in the dominator tree (exit = 0); exposes the
    nearest-common-ancestor order for tests and diagnostics. *)

val exit_id : t -> int
(** The virtual exit node id used by [idom] (= [node_count]). *)

(** {1 Allocation-free evaluation} *)

val eval_bool : t -> bool array -> int -> bool
(** Two-valued evaluation of one non-source node from a node-indexed
    value array. No heap allocation.
    @raise Invalid_argument on a source node. *)

val eval_word : t -> int64 array -> int -> int64
(** Bit-parallel evaluation of one non-source node over 64 lanes
    (lane [l] of a node is bit [l] of its word).
    @raise Invalid_argument on a source node. *)

val eval_words : t -> int64 array -> unit
(** [eval_word] over every node of [eval_order], in place: one full
    64-lane combinational sweep. *)

val eval_words_wide : t -> width:int -> int64 array -> unit
(** W-word batch sweep over an interleaved array of [node_count *
    width] words: node [id] word [w] at [id*width + w], i.e. one
    node's whole batch is contiguous. Each gate's fanin offsets are
    fetched once and applied to all [width] words (cache-blocked over
    the CSR arrays). [width = 1] is exactly {!eval_words}. *)
