let shape nd =
  match nd.Circuit.kind with
  | Gate.Input -> "triangle"
  | Gate.Dff -> "box"
  | Gate.Output -> "invhouse"
  | Gate.Buf | Gate.Not -> "circle"
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
    "ellipse"

let to_string ?(highlight = []) c =
  let buf = Buffer.create 4096 in
  let hi = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace hi id ()) highlight;
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" (Circuit.name c));
  Buffer.add_string buf "  rankdir=LR;\n  node [fontsize=10];\n";
  Array.iter
    (fun nd ->
      let color =
        if Hashtbl.mem hi nd.Circuit.id then ", color=red, fontcolor=red"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n%s\", shape=%s%s];\n"
           nd.Circuit.id nd.Circuit.name
           (Gate.to_string nd.Circuit.kind)
           (shape nd) color))
    (Circuit.nodes c);
  Array.iter
    (fun nd ->
      Array.iter
        (fun f ->
          let style =
            if Hashtbl.mem hi f && Hashtbl.mem hi nd.Circuit.id then
              " [color=red]"
            else ""
          in
          (* sequential D edges dashed to show where the combinational
             core is cut *)
          let style =
            if Gate.equal_kind nd.Circuit.kind Gate.Dff then
              if style = "" then " [style=dashed]"
              else " [color=red, style=dashed]"
            else style
          in
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d%s;\n" f nd.Circuit.id style))
        nd.Circuit.fanins)
    (Circuit.nodes c);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?highlight c path =
  let oc = open_out path in
  output_string oc (to_string ?highlight c);
  close_out oc
