(** Graphviz export of a netlist, for inspection and documentation.

    Inputs render as triangles, flip-flops as boxes, outputs as
    inverted house shapes; an optional highlight set (e.g. a critical
    path or the transition-node set) is drawn in red. *)



val to_string : ?highlight:int list -> Circuit.t -> string

val to_file : ?highlight:int list -> Circuit.t -> string -> unit
