type kind =
  | Input
  | Dff
  | Output
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor

let equal_kind (a : kind) (b : kind) = a = b

let to_string = function
  | Input -> "INPUT"
  | Dff -> "DFF"
  | Output -> "OUTPUT"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"

let of_string s =
  match String.uppercase_ascii s with
  | "INPUT" -> Input
  | "DFF" -> Dff
  | "OUTPUT" -> Output
  | "BUF" | "BUFF" -> Buf
  | "NOT" | "INV" -> Not
  | "AND" -> And
  | "NAND" -> Nand
  | "OR" -> Or
  | "NOR" -> Nor
  | "XOR" -> Xor
  | "XNOR" -> Xnor
  | other -> invalid_arg (Printf.sprintf "Gate.of_string: %S" other)

let is_logic = function
  | Buf | Not | And | Nand | Or | Nor | Xor | Xnor -> true
  | Input | Dff | Output -> false

let is_source = function
  | Input | Dff -> true
  | Output | Buf | Not | And | Nand | Or | Nor | Xor | Xnor -> false

let min_fanin = function
  | Input -> 0
  | Dff | Output | Buf | Not -> 1
  | And | Nand | Or | Nor | Xor | Xnor -> 2

let max_fanin = function
  | Input -> Some 0
  | Dff | Output | Buf | Not -> Some 1
  | And | Nand | Or | Nor | Xor | Xnor -> None

let controlling_value = function
  | And | Nand -> Some Logic.Zero
  | Or | Nor -> Some Logic.One
  | Input | Dff | Output | Buf | Not | Xor | Xnor -> None

let controlled_response = function
  | And -> Some Logic.Zero
  | Nand -> Some Logic.One
  | Or -> Some Logic.One
  | Nor -> Some Logic.Zero
  | Input | Dff | Output | Buf | Not | Xor | Xnor -> None

let inversion = function
  | Not | Nand | Nor | Xnor -> true
  | Input | Dff | Output | Buf | And | Or | Xor -> false

let check_arity kind n =
  if n < min_fanin kind then
    invalid_arg
      (Printf.sprintf "Gate.eval: %s with %d inputs" (to_string kind) n);
  match max_fanin kind with
  | Some m when n > m ->
    invalid_arg
      (Printf.sprintf "Gate.eval: %s with %d inputs" (to_string kind) n)
  | Some _ | None -> ()

let fold_logic op seed vs =
  let acc = ref seed in
  for i = 0 to Array.length vs - 1 do
    acc := op !acc vs.(i)
  done;
  !acc

let eval kind vs =
  check_arity kind (Array.length vs);
  match kind with
  | Input | Dff -> invalid_arg "Gate.eval: source node has no logic function"
  | Output | Buf -> vs.(0)
  | Not -> Logic.lnot vs.(0)
  | And -> fold_logic Logic.( &&& ) Logic.One vs
  | Nand -> Logic.lnot (fold_logic Logic.( &&& ) Logic.One vs)
  | Or -> fold_logic Logic.( ||| ) Logic.Zero vs
  | Nor -> Logic.lnot (fold_logic Logic.( ||| ) Logic.Zero vs)
  | Xor -> fold_logic Logic.xor Logic.Zero vs
  | Xnor -> Logic.lnot (fold_logic Logic.xor Logic.Zero vs)

let eval_bool kind vs =
  check_arity kind (Array.length vs);
  let forall p =
    let ok = ref true in
    Array.iter (fun v -> if not (p v) then ok := false) vs;
    !ok
  in
  let parity () =
    let acc = ref false in
    Array.iter (fun v -> acc := !acc <> v) vs;
    !acc
  in
  match kind with
  | Input | Dff -> invalid_arg "Gate.eval_bool: source node"
  | Output | Buf -> vs.(0)
  | Not -> not vs.(0)
  | And -> forall (fun v -> v)
  | Nand -> not (forall (fun v -> v))
  | Or -> not (forall (fun v -> not v))
  | Nor -> forall (fun v -> not v)
  | Xor -> parity ()
  | Xnor -> not (parity ())

let eval_five kind vs =
  check_arity kind (Array.length vs);
  let module F = Logic.Five in
  match kind with
  | Input | Dff -> invalid_arg "Gate.eval_five: source node"
  | Output | Buf -> vs.(0)
  | Not -> F.lnot vs.(0)
  | And -> fold_logic F.land_ F.F1 vs
  | Nand -> F.lnot (fold_logic F.land_ F.F1 vs)
  | Or -> fold_logic F.lor_ F.F0 vs
  | Nor -> F.lnot (fold_logic F.lor_ F.F0 vs)
  | Xor -> fold_logic F.lxor_ F.F0 vs
  | Xnor -> F.lnot (fold_logic F.lxor_ F.F0 vs)

let pp fmt k = Format.pp_print_string fmt (to_string k)
