(** Gate kinds of the netlist IR and their boolean semantics. *)

type kind =
  | Input  (** Primary input; no fanin. *)
  | Dff    (** D flip-flop; one fanin (D); its output is a pseudo-input. *)
  | Output (** Primary-output marker; one fanin. *)
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor

val equal_kind : kind -> kind -> bool

val to_string : kind -> string

val of_string : string -> kind
(** Case-insensitive; accepts the ISCAS89 spellings ([DFF], [NAND], ...).
    @raise Invalid_argument on unknown names. *)

val is_logic : kind -> bool
(** True for combinational gates ([Buf] through [Xnor]). *)

val is_source : kind -> bool
(** True for [Input] and [Dff]: nodes whose value is free in the
    combinational core. *)

val min_fanin : kind -> int

val max_fanin : kind -> int option
(** [None] means unbounded. *)

val controlling_value : kind -> Logic.t option
(** The input value that forces the gate output regardless of the other
    inputs: [Zero] for AND/NAND, [One] for OR/NOR, [None] for gates
    without a controlling value (XOR, XNOR, BUF, NOT, ...). *)

val controlled_response : kind -> Logic.t option
(** Output produced when some input carries the controlling value. *)

val inversion : kind -> bool
(** Whether the gate output inverts the "natural" (AND/OR) polarity:
    true for NOT, NAND, NOR, XNOR. *)

val eval : kind -> Logic.t array -> Logic.t
(** Three-valued evaluation. [Dff] and [Input] evaluate to their single
    stored value (fanin 0 is invalid for them here); [Output] and [Buf]
    forward their input.
    @raise Invalid_argument on arity violations. *)

val eval_bool : kind -> bool array -> bool
(** Two-valued evaluation, used by the fast simulators. *)

val eval_five : kind -> Logic.Five.five array -> Logic.Five.five
(** Five-valued evaluation for the ATPG. *)

val pp : Format.formatter -> kind -> unit
