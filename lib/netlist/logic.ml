type t =
  | Zero
  | One
  | X

let equal a b =
  match a, b with
  | Zero, Zero | One, One | X, X -> true
  | (Zero | One | X), _ -> false

let to_char = function
  | Zero -> '0'
  | One -> '1'
  | X -> 'x'

let of_char = function
  | '0' -> Zero
  | '1' -> One
  | 'x' | 'X' -> X
  | c -> invalid_arg (Printf.sprintf "Logic.of_char: %C" c)

let of_bool b = if b then One else Zero

let to_bool = function
  | Zero -> Some false
  | One -> Some true
  | X -> None

let lnot = function
  | Zero -> One
  | One -> Zero
  | X -> X

let ( &&& ) a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | X, (One | X) | One, X -> X

let ( ||| ) a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | X, (Zero | X) | Zero, X -> X

let xor a b =
  match a, b with
  | X, _ | _, X -> X
  | Zero, Zero | One, One -> Zero
  | Zero, One | One, Zero -> One

let pp fmt v = Format.pp_print_char fmt (to_char v)

module Five = struct
  type five =
    | F0
    | F1
    | FX
    | D
    | Dbar

  let equal a b =
    match a, b with
    | F0, F0 | F1, F1 | FX, FX | D, D | Dbar, Dbar -> true
    | (F0 | F1 | FX | D | Dbar), _ -> false

  let of_ternary = function
    | Zero -> F0
    | One -> F1
    | X -> FX

  let good = function
    | F0 -> Zero
    | F1 -> One
    | FX -> X
    | D -> One
    | Dbar -> Zero

  let faulty = function
    | F0 -> Zero
    | F1 -> One
    | FX -> X
    | D -> Zero
    | Dbar -> One

  let of_pair g f =
    match g, f with
    | Zero, Zero -> F0
    | One, One -> F1
    | One, Zero -> D
    | Zero, One -> Dbar
    | X, _ | _, X -> FX

  let lnot v = of_pair (lnot (good v)) (lnot (faulty v))

  let land_ a b = of_pair (good a &&& good b) (faulty a &&& faulty b)

  let lor_ a b = of_pair (good a ||| good b) (faulty a ||| faulty b)

  let lxor_ a b = of_pair (xor (good a) (good b)) (xor (faulty a) (faulty b))

  let make ~good ~faulty = of_pair good faulty

  let is_d_or_dbar = function
    | D | Dbar -> true
    | F0 | F1 | FX -> false

  let to_string = function
    | F0 -> "0"
    | F1 -> "1"
    | FX -> "x"
    | D -> "D"
    | Dbar -> "D'"

  let pp fmt v = Format.pp_print_string fmt (to_string v)
end
