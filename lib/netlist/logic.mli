(** Logic value domains used throughout the tool.

    Two domains are provided: the three-valued domain {0, 1, X} used by
    plain simulation and by the transition-blocking search, and the
    five-valued PODEM domain {0, 1, X, D, D'} used by the ATPG. *)

(** Three-valued logic: [Zero], [One], and the unknown / don't-care [X]. *)
type t =
  | Zero
  | One
  | X

val equal : t -> t -> bool

val to_char : t -> char
(** ['0'], ['1'] or ['x']. *)

val of_char : char -> t
(** Inverse of {!to_char}; accepts ['0'], ['1'], ['x'], ['X'].
    @raise Invalid_argument on any other character. *)

val of_bool : bool -> t

val to_bool : t -> bool option
(** [None] when the value is [X]. *)

val lnot : t -> t
(** Three-valued negation; [X] stays [X]. *)

val ( &&& ) : t -> t -> t
(** Three-valued conjunction: [Zero] dominates, [X &&& One = X]. *)

val ( ||| ) : t -> t -> t
(** Three-valued disjunction: [One] dominates, [X ||| Zero = X]. *)

val xor : t -> t -> t
(** Three-valued exclusive or; any [X] operand yields [X]. *)

val pp : Format.formatter -> t -> unit

(** Five-valued D-algebra for path-oriented test generation.

    [D] stands for 1 in the good circuit / 0 in the faulty circuit and
    [Dbar] for the opposite, following Roth's notation. *)
module Five : sig
  type five =
    | F0
    | F1
    | FX
    | D
    | Dbar

  val equal : five -> five -> bool

  val of_ternary : t -> five

  val good : five -> t
  (** Value in the fault-free circuit. *)

  val faulty : five -> t
  (** Value in the faulty circuit. *)

  val lnot : five -> five

  val land_ : five -> five -> five

  val lor_ : five -> five -> five

  val lxor_ : five -> five -> five

  val make : good:t -> faulty:t -> five
  (** Compose a five-valued literal from its good/faulty pair. *)

  val is_d_or_dbar : five -> bool

  val to_string : five -> string

  val pp : Format.formatter -> five -> unit
end
