type severity = Error | Warning

type diagnostic = {
  severity : severity;
  check : string;
  net : string;
  line : int;
  message : string;
}

type decl =
  | D_input of { line : int; name : string }
  | D_output of { line : int; name : string }
  | D_gate of { line : int; name : string; kind : string; args : string list }

let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string d =
  let line = if d.line > 0 then Printf.sprintf "line %d: " d.line else "" in
  let net = if d.net = "" then "" else Printf.sprintf " net %S" d.net in
  Printf.sprintf "%s%s [%s]%s: %s" line
    (severity_to_string d.severity)
    d.check net d.message

let errors ds = List.filter (fun d -> d.severity = Error) ds

let summary ds =
  let warnings = List.filter (fun d -> d.severity = Warning) ds in
  String.concat "\n" (List.map to_string (errors ds @ warnings))

let arity_ok k n =
  n >= Gate.min_fanin k
  && match Gate.max_fanin k with None -> true | Some m -> n <= m

let expected_arity k =
  let mn = Gate.min_fanin k in
  match Gate.max_fanin k with
  | Some m when m = mn -> Printf.sprintf "exactly %d" mn
  | Some m -> Printf.sprintf "%d to %d" mn m
  | None -> Printf.sprintf "at least %d" mn

let decls ds =
  let diags = ref [] in
  let add severity check net line fmt =
    Printf.ksprintf
      (fun message -> diags := { severity; check; net; line; message } :: !diags)
      fmt
  in
  let def = function
    | D_input { line; name } | D_gate { line; name; _ } -> Some (line, name)
    | D_output _ -> None
  in
  (* duplicate definitions: a net may only be driven once *)
  let def_line = Hashtbl.create 64 in
  List.iter
    (fun d ->
      match def d with
      | Some (line, name) -> (
        match Hashtbl.find_opt def_line name with
        | Some l0 ->
          add Error "multiply-driven" name line
            "signal %S is driven again here (first driven at line %d)" name l0
        | None -> Hashtbl.add def_line name line)
      | None -> ())
    ds;
  (* opcode and arity, per gate declaration *)
  List.iter
    (function
      | D_gate { line; name; kind; args } -> (
        match Gate.of_string kind with
        | exception Invalid_argument _ ->
          add Error "opcode" name line "unknown gate kind %S driving %S" kind
            name
        | Gate.Input | Gate.Output ->
          add Error "opcode" name line
            "%s is not valid on the right-hand side" kind
        | k ->
          let n = List.length args in
          if not (arity_ok k n) then
            add Error "arity" name line "%s %S takes %s input(s), got %d"
              (Gate.to_string k) name (expected_arity k) n)
      | D_input _ | D_output _ -> ())
    ds;
  (* references to nets nothing drives *)
  let reported = Hashtbl.create 16 in
  let check_ref line name =
    if not (Hashtbl.mem def_line name) && not (Hashtbl.mem reported name) then begin
      Hashtbl.add reported name ();
      add Error "undriven" name line
        "undefined signal %S: referenced but never driven" name
    end
  in
  List.iter
    (function
      | D_gate { line; args; _ } -> List.iter (check_ref line) args
      | D_output { line; name } -> check_ref line name
      | D_input _ -> ())
    ds;
  (* defined but feeding nothing *)
  let used = Hashtbl.create 64 in
  List.iter
    (function
      | D_gate { args; _ } -> List.iter (fun a -> Hashtbl.replace used a ()) args
      | D_output { name; _ } -> Hashtbl.replace used name ()
      | D_input _ -> ())
    ds;
  List.iter
    (fun d ->
      match def d with
      | Some (line, name) when not (Hashtbl.mem used name) ->
        add Warning "dangling" name line
          "signal %S drives nothing (dangling fanout)" name
      | _ -> ())
    ds;
  if ds <> [] && not (List.exists (function D_output _ -> true | _ -> false) ds)
  then add Warning "no-output" "" 0 "netlist declares no primary outputs";
  (* combinational loops: DFS over the combinational gates only (a DFF
     legitimately closes sequential feedback), reporting each back edge
     as one diagnostic naming the full cycle *)
  let comb = Hashtbl.create 64 in
  let comb_order = ref [] in
  List.iter
    (function
      | D_gate { line; name; kind; args } -> (
        match Gate.of_string kind with
        | exception Invalid_argument _ -> ()
        | k when Gate.is_logic k ->
          if not (Hashtbl.mem comb name) then begin
            Hashtbl.add comb name (line, args);
            comb_order := name :: !comb_order
          end
        | _ -> ())
      | D_input _ | D_output _ -> ())
    ds;
  let color = Hashtbl.create 64 in
  (* path: grey ancestors, most recent first *)
  let rec dfs path name =
    match Hashtbl.find_opt color name with
    | Some 2 -> ()
    | Some 1 ->
      let rec cut = function
        | [] -> []
        | x :: rest -> if x = name then [ x ] else x :: cut rest
      in
      let cycle = List.rev (cut path) in
      let line =
        match Hashtbl.find_opt comb name with Some (l, _) -> l | None -> 0
      in
      add Error "combinational-loop" name line "combinational loop: %s"
        (String.concat " -> " (cycle @ [ name ]))
    | Some _ | None ->
      Hashtbl.replace color name 1;
      (match Hashtbl.find_opt comb name with
      | Some (_, args) ->
        List.iter
          (fun a -> if Hashtbl.mem comb a then dfs (name :: path) a)
          args
      | None -> ());
      Hashtbl.replace color name 2
  in
  List.iter (dfs []) (List.rev !comb_order);
  List.rev !diags

let circuit c =
  let diags = ref [] in
  let add severity check net fmt =
    Printf.ksprintf
      (fun message ->
        diags := { severity; check; net; line = 0; message } :: !diags)
      fmt
  in
  Array.iter
    (fun nd ->
      let k = nd.Circuit.kind in
      let n = Array.length nd.Circuit.fanins in
      if not (arity_ok k n) then
        add Error "arity" nd.Circuit.name "%s %S takes %s input(s), got %d"
          (Gate.to_string k) nd.Circuit.name (expected_arity k) n;
      if Array.length nd.Circuit.fanouts = 0 then
        if Gate.is_logic k then
          add Warning "dangling" nd.Circuit.name
            "gate %S drives nothing (dangling fanout)" nd.Circuit.name
        else if k = Gate.Input then
          add Warning "unused-input" nd.Circuit.name
            "primary input %S drives nothing" nd.Circuit.name)
    (Circuit.nodes c);
  List.rev !diags
