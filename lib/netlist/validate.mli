(** Netlist lint: collect {e every} problem in a netlist instead of
    failing on the first one.

    Two entry points. {!decls} checks the declaration-level view a
    parser produces {e before} building a {!Circuit.t} — this is where
    ill-formed input (multiply-driven nets, undriven references,
    combinational loops, bad arity, unknown opcodes) must be caught,
    because the strict {!Circuit.Builder} rejects such netlists on the
    first violation. {!circuit} checks an already-built circuit, as a
    safety net for programmatically constructed netlists entering the
    flow.

    Diagnostics never raise; callers decide whether errors are fatal
    (see [Bench_parser] and [Flow.prepare]). *)

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  check : string;
      (** stable machine tag: ["multiply-driven"], ["undriven"],
          ["combinational-loop"], ["dangling"], ["unused-input"],
          ["arity"], ["opcode"], ["no-output"], ["syntax"] *)
  net : string;  (** the offending net; [""] when none applies *)
  line : int;  (** 1-based source line; 0 when unknown *)
  message : string;
}

(** Declaration-level view of a [.bench]-style netlist, in file order. *)
type decl =
  | D_input of { line : int; name : string }
  | D_output of { line : int; name : string }
  | D_gate of { line : int; name : string; kind : string; args : string list }

val decls : decl list -> diagnostic list
(** All diagnostics, in a stable order (per-declaration checks in file
    order, then graph-level checks). Checks: duplicate definitions
    (multiply-driven), references to undefined nets (undriven),
    unknown gate opcodes, fanin arity violations, combinational loops
    (each reported once with the full cycle named, self-loops
    included), defined-but-unused nets (dangling fanout, warning), and
    a missing-outputs warning. *)

val circuit : Circuit.t -> diagnostic list
(** Post-build checks: arity violations (defensive — the builder
    enforces them), logic gates whose output goes nowhere (dangling,
    warning) and primary inputs that drive nothing (warning). Loops
    and duplicate names cannot exist in a built circuit. *)

val errors : diagnostic list -> diagnostic list
(** Just the [Error]-severity entries. *)

val to_string : diagnostic -> string
(** ["line 4: error [multiply-driven] net \"G7\": ..."] *)

val summary : diagnostic list -> string
(** All diagnostics joined with newlines, errors first. *)
