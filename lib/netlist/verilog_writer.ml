(* Verilog identifiers cannot contain '$'; netlist names may (output
   markers, mapper-generated gates), so names are sanitised with an
   escape that stays injective. *)
let sanitize name =
  String.concat "_S_" (String.split_on_char '$' name)

let primitive = function
  | Gate.Buf -> Some "buf"
  | Gate.Not -> Some "not"
  | Gate.And -> Some "and"
  | Gate.Nand -> Some "nand"
  | Gate.Or -> Some "or"
  | Gate.Nor -> Some "nor"
  | Gate.Xor -> Some "xor"
  | Gate.Xnor -> Some "xnor"
  | Gate.Input | Gate.Dff | Gate.Output -> None

let to_string c =
  let buf = Buffer.create 4096 in
  let name id = sanitize (Circuit.node c id).Circuit.name in
  let pis = Array.to_list (Circuit.inputs c) |> List.map name in
  let pos = Array.to_list (Circuit.outputs c) |> List.map name in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n"
       (sanitize (Circuit.name c))
       (String.concat ", " ("clk" :: (pis @ pos))));
  Buffer.add_string buf "  input clk;\n";
  List.iter (fun nm -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" nm)) pis;
  List.iter (fun nm -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" nm)) pos;
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input | Gate.Output -> ()
      | Gate.Dff ->
        Buffer.add_string buf
          (Printf.sprintf "  reg %s;\n" (sanitize nd.Circuit.name))
      | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        Buffer.add_string buf
          (Printf.sprintf "  wire %s;\n" (sanitize nd.Circuit.name)))
    (Circuit.nodes c);
  Array.iter
    (fun nd ->
      match primitive nd.Circuit.kind with
      | Some prim ->
        let args =
          sanitize nd.Circuit.name
          :: (Array.to_list nd.Circuit.fanins |> List.map name)
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s g%d (%s);\n" prim nd.Circuit.id
             (String.concat ", " args))
      | None -> ())
    (Circuit.nodes c);
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      Buffer.add_string buf
        (Printf.sprintf "  always @(posedge clk) %s <= %s;\n"
           (sanitize nd.Circuit.name)
           (name nd.Circuit.fanins.(0))))
    (Circuit.dffs c);
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" (sanitize nd.Circuit.name)
           (name nd.Circuit.fanins.(0))))
    (Circuit.outputs c);
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let to_file c path =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
