(** Structural Verilog export of a netlist (one module, gate
    primitives, DFFs as always-blocks). Useful for feeding the mapped
    circuits to third-party tools. *)

val to_string : Circuit.t -> string

val to_file : Circuit.t -> string -> unit
