(* Chunked self-scheduling over persistent worker domains.

   One mutex/condition pair publishes jobs to the workers; the hot
   path — claiming the next index chunk — is a single
   [Atomic.fetch_and_add], so contention is one cache line per chunk
   regardless of pool size. The calling domain participates in every
   job, which is what lets a pool of size 1 degenerate to a plain
   [for] loop with no cross-domain traffic at all. *)

type job = {
  n : int;
  chunk : int;
  body : participant:int -> int -> unit;
  cursor : int Atomic.t; (* next unclaimed index *)
  fair : int; (* chunks per participant under a perfect static split *)
  steals : int Atomic.t;
  first_exn : exn option Atomic.t;
  mutable active : int; (* workers still draining; guarded by the pool mutex *)
}

type t = {
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int; (* bumped per published job *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  n_participants : int;
  total_steals : int Atomic.t;
}

let c_steals = Telemetry.Counter.make "par.steal_count"
let g_domains = Telemetry.Gauge.make "par.domains"

(* OCaml 5's [Unix.fork] refuses to run in any process in which a
   domain has ever been spawned — even after every domain has been
   joined. Fork-based strategies therefore have to know whether this
   process is still fork-clean, and anything that spawns a domain
   (the pool here, or a bare [Domain.spawn] elsewhere) must leave a
   permanent mark. *)
let domains_created = Atomic.make false
let note_domain_spawn () = Atomic.set domains_created true
let fork_unavailable () = Atomic.get domains_created

(* Drain chunks off [job.cursor] until it runs past [job.n]. A body
   exception is parked in [first_exn] and claiming stops — remaining
   indices of an aborted job are simply never run. *)
let drain job ~participant =
  let claimed = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let start = Atomic.fetch_and_add job.cursor job.chunk in
    if start >= job.n then continue_ := false
    else begin
      incr claimed;
      if !claimed > job.fair then ignore (Atomic.fetch_and_add job.steals 1);
      let stop = min job.n (start + job.chunk) in
      (try
         for i = start to stop - 1 do
           job.body ~participant i
         done
       with e ->
         ignore (Atomic.compare_and_set job.first_exn None (Some e));
         continue_ := false)
    end
  done

let worker_loop t ~participant =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while (not t.stop) && t.generation = !last_gen do
      Condition.wait t.work_ready t.m
    done;
    if t.stop then begin
      Mutex.unlock t.m;
      running := false
    end
    else begin
      last_gen := t.generation;
      let job = t.job in
      Mutex.unlock t.m;
      (match job with
      | Some j ->
        drain j ~participant;
        Mutex.lock t.m;
        j.active <- j.active - 1;
        if j.active = 0 then Condition.broadcast t.work_done;
        Mutex.unlock t.m
      | None -> ())
    end
  done

let create ?domains () =
  let n =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
      workers = [];
      n_participants = n;
      total_steals = Atomic.make 0;
    }
  in
  if n > 1 then note_domain_spawn ();
  t.workers <-
    List.init (n - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~participant:(i + 1)));
  Telemetry.Gauge.set g_domains (float_of_int n);
  t

let size t = t.n_participants
let steal_count t = Atomic.get t.total_steals

let parallel_for_p t ?chunk ~n body =
  if n <= 0 then ()
  else begin
    let n_chunks_target = t.n_participants * 4 in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 ((n + n_chunks_target - 1) / n_chunks_target)
    in
    if t.n_participants = 1 || n <= chunk then
      for i = 0 to n - 1 do
        body ~participant:0 i
      done
    else begin
      let n_chunks = (n + chunk - 1) / chunk in
      let job =
        {
          n;
          chunk;
          body;
          cursor = Atomic.make 0;
          fair = max 1 (n_chunks / t.n_participants);
          steals = Atomic.make 0;
          first_exn = Atomic.make None;
          active = t.n_participants - 1;
        }
      in
      Mutex.lock t.m;
      t.job <- Some job;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.m;
      (* the caller is a participant too *)
      drain job ~participant:0;
      Mutex.lock t.m;
      while job.active > 0 do
        Condition.wait t.work_done t.m
      done;
      t.job <- None;
      Mutex.unlock t.m;
      let s = Atomic.get job.steals in
      if s > 0 then begin
        ignore (Atomic.fetch_and_add t.total_steals s);
        Telemetry.Counter.add c_steals s
      end;
      match Atomic.get job.first_exn with
      | Some e -> raise e
      | None -> ()
    end
  end

let parallel_for t ?chunk ~n body =
  parallel_for_p t ?chunk ~n (fun ~participant:_ i -> body i)

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
