(** Reusable pool of worker domains for data-parallel kernels.

    A pool owns [size - 1] worker domains; the calling domain is the
    remaining participant, so a pool of size 1 runs everything inline
    with zero synchronisation. Work is distributed by chunked
    self-scheduling: an atomic cursor hands out fixed-size index
    chunks, so a fast participant that exhausts its fair share simply
    keeps claiming ("stealing") chunks a slower one would otherwise
    serialise on. Chunks may therefore execute in any order and on any
    domain — the body must only write state owned by its own indices.

    The pool is reusable ([parallel_for] any number of times) and
    drainable ([shutdown] joins every worker). Nested [parallel_for]
    from inside a body is not supported. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains
    (clamped to at least 1 participant). Default:
    [Domain.recommended_domain_count ()]. Sets the [par.domains]
    telemetry gauge. *)

val size : t -> int
(** Total participants (worker domains + the calling domain). *)

val parallel_for : t -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n body] runs [body i] for every [i] in
    [0 .. n-1], fanned out over the pool. [chunk] (default: a fair
    static split, at least 1) is the number of consecutive indices a
    participant claims per cursor bump. The first exception raised by
    any body is re-raised in the caller after every participant has
    drained. With [size t = 1] or [n] below the chunk size this is a
    plain sequential loop. *)

val parallel_for_p :
  t -> ?chunk:int -> n:int -> (participant:int -> int -> unit) -> unit
(** Like {!parallel_for}, but the body also receives the stable
    participant index running it: [0] is always the calling domain,
    [1 .. size t - 1] the worker domains. This is how callers give
    each domain a private machine/scratch without thread-local
    storage: index an array of [size t] per-participant states. *)

val steal_count : t -> int
(** Chunks executed by a participant beyond its static fair share,
    accumulated over the pool's lifetime; mirrored to the
    [par.steal_count] telemetry counter by the coordinator. *)

val shutdown : t -> unit
(** Join every worker domain. Idempotent; the pool must not be used
    afterwards (except for [steal_count]). *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] = create, run [f], always shutdown. *)

val fork_unavailable : unit -> bool
(** True once any domain has ever been spawned in this process — by a
    pool here or recorded via {!note_domain_spawn}. OCaml 5's
    [Unix.fork] permanently refuses to run after the first
    [Domain.spawn], even once every domain is joined, so fork-based
    execution strategies must consult this and fall back. The rule of
    thumb for mixed processes: fork first, spawn domains after. *)

val note_domain_spawn : unit -> unit
(** Record a [Domain.spawn] performed outside this module, so
    {!fork_unavailable} stays truthful. Call it immediately before any
    bare spawn. *)
