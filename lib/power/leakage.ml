open Netlist

let cell_of c id = Techmap.Mapper.cell_of_node c id

let gate_state c values id =
  let nd = Circuit.node c id in
  let s = ref 0 in
  Array.iteri (fun i f -> if values.(f) then s := !s lor (1 lsl i)) nd.fanins;
  !s

let gate_leakage_na c values id =
  match cell_of c id with
  | None -> 0.0
  | Some cell ->
    Techlib.Leakage_table.leakage_na cell ~state:(gate_state c values id)

let total_leakage_uw c values =
  if Array.length values <> Circuit.node_count c then
    invalid_arg "Leakage.total_leakage_uw: value array length mismatch";
  let na = ref 0.0 in
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then
        na := !na +. gate_leakage_na c values nd.Circuit.id)
    (Circuit.nodes c);
  (* nA x V = nW; convert to uW *)
  !na *. Techlib.Leakage_table.vdd /. 1000.0

let average_leakage_uw c snapshots =
  match snapshots with
  | [] -> invalid_arg "Leakage.average_leakage_uw: no snapshots"
  | _ ->
    let sum = List.fold_left (fun acc v -> acc +. total_leakage_uw c v) 0.0 in
    sum snapshots /. float_of_int (List.length snapshots)

(* Probability of a packed fanin state under independent per-node
   one-probabilities. *)
let state_probability nd p_one state =
  let p = ref 1.0 in
  Array.iteri
    (fun i f ->
      let p1 = p_one.(f) in
      p := !p *. (if state land (1 lsl i) <> 0 then p1 else 1.0 -. p1))
    nd.Circuit.fanins;
  !p

let expected_gate_leakage_na c ~p_one id =
  match cell_of c id with
  | None -> 0.0
  | Some cell ->
    let nd = Circuit.node c id in
    let n = Techlib.Leakage_table.n_states cell in
    let e = ref 0.0 in
    for state = 0 to n - 1 do
      e :=
        !e
        +. state_probability nd p_one state
           *. Techlib.Leakage_table.leakage_na cell ~state
    done;
    !e

let expected_total_leakage_uw c ~p_one =
  let na = ref 0.0 in
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then
        na := !na +. expected_gate_leakage_na c ~p_one nd.Circuit.id)
    (Circuit.nodes c);
  !na *. Techlib.Leakage_table.vdd /. 1000.0
