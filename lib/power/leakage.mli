(** Static power of a mapped circuit (Eq. (5)): the sum over gates of
    the table leakage for the gate's current input state, times Vdd.

    The per-gate input state is the tuple of fanin logic values; pin
    order matters (see {!Techlib.Leakage_table}), which is what the
    paper's gate input reordering step optimises. *)

open Netlist

val gate_state : Circuit.t -> bool array -> int -> int
(** Packed input state of gate [id] under node values [values]. *)

val gate_leakage_na : Circuit.t -> bool array -> int -> float
(** Leakage of one gate (nA); 0 for non-logic nodes. *)

val total_leakage_uw : Circuit.t -> bool array -> float
(** Static power of the whole combinational part, uW.
    @raise Invalid_argument if the circuit is not mapped or the value
    array has the wrong length. *)

val average_leakage_uw : Circuit.t -> bool array list -> float
(** Mean of [total_leakage_uw] over a list of node-value snapshots
    (e.g. one per scan cycle).
    @raise Invalid_argument on an empty list. *)

val expected_gate_leakage_na : Circuit.t -> p_one:float array -> int -> float
(** Expected leakage of gate [id] when each node [n] is 1 with
    independent probability [p_one.(n)]; the building block of the
    leakage-observability propagation. *)

val expected_total_leakage_uw : Circuit.t -> p_one:float array -> float
