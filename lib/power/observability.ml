open Netlist

type t = {
  p_one : float array;
  obs : float array;
}

(* Enumerate a gate's input states: probability-weighted output value
   and per-pin derivatives. *)
let gate_output_bool kind vs = Gate.eval_bool kind vs

let compute ?(p_source = 0.5) c =
  let n = Circuit.node_count c in
  let p_one = Array.make n 0.0 in
  (* forward: signal probabilities *)
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      match nd.kind with
      | Gate.Input | Gate.Dff -> p_one.(id) <- p_source
      | Gate.Output -> p_one.(id) <- p_one.(nd.fanins.(0))
      | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        let k = Array.length nd.fanins in
        let p = ref 0.0 in
        let vs = Array.make k false in
        for state = 0 to (1 lsl k) - 1 do
          let prob = ref 1.0 in
          for i = 0 to k - 1 do
            let b = state land (1 lsl i) <> 0 in
            vs.(i) <- b;
            let pi = p_one.(nd.fanins.(i)) in
            prob := !prob *. (if b then pi else 1.0 -. pi)
          done;
          if gate_output_bool nd.kind vs then p := !p +. !prob
        done;
        p_one.(id) <- !p)
    (Circuit.topo_order c);
  (* Per-gate sensitivities: for gate g and pin j,
     dleak_j = dE[leak_g]/dp1(fanin_j) and dout_j = dp1(out_g)/dp1(fanin_j),
     both by conditioning the state enumeration on pin j. *)
  let sensitivities id =
    let nd = Circuit.node c id in
    let k = Array.length nd.fanins in
    let cell = Techmap.Mapper.cell_of_node c id in
    let dleak = Array.make k 0.0 in
    let dout = Array.make k 0.0 in
    let vs = Array.make k false in
    for state = 0 to (1 lsl k) - 1 do
      (* probability of the *other* pins' part of the state *)
      for i = 0 to k - 1 do
        vs.(i) <- state land (1 lsl i) <> 0
      done;
      let out = if gate_output_bool nd.kind vs then 1.0 else 0.0 in
      let leak =
        match cell with
        | Some cl -> Techlib.Leakage_table.leakage_na cl ~state
        | None -> 0.0
      in
      for j = 0 to k - 1 do
        let others = ref 1.0 in
        for i = 0 to k - 1 do
          if i <> j then begin
            let pi = p_one.(nd.fanins.(i)) in
            others := !others *. (if vs.(i) then pi else 1.0 -. pi)
          end
        done;
        let sign = if vs.(j) then 1.0 else -1.0 in
        dleak.(j) <- dleak.(j) +. (sign *. leak *. !others);
        dout.(j) <- dout.(j) +. (sign *. out *. !others)
      done
    done;
    (dleak, dout)
  in
  (* reverse: accumulate dE[total leakage]/dp1(node) *)
  let obs = Array.make n 0.0 in
  let topo = Circuit.topo_order c in
  for idx = Array.length topo - 1 downto 0 do
    let id = topo.(idx) in
    let nd = Circuit.node c id in
    match nd.kind with
    | Gate.Output | Gate.Dff -> () (* not leakage consumers in scan mode *)
    | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
    | Gate.Nor | Gate.Xor | Gate.Xnor ->
      let acc = ref 0.0 in
      Array.iter
        (fun succ ->
          let snd_ = Circuit.node c succ in
          if Gate.is_logic snd_.kind then begin
            let dleak, dout = sensitivities succ in
            Array.iteri
              (fun j f ->
                if f = id then
                  acc := !acc +. dleak.(j) +. (dout.(j) *. obs.(succ)))
              snd_.fanins
          end)
        nd.fanouts;
      obs.(id) <- !acc
  done;
  { p_one; obs }

let probability t id = t.p_one.(id)
let observability_na t id = t.obs.(id)
let observabilities t = Array.copy t.obs

let monte_carlo_na ?(samples = 2000) ~seed c =
  let n = Circuit.node_count c in
  let sum1 = Array.make n 0.0 and cnt1 = Array.make n 0 in
  let sum0 = Array.make n 0.0 and cnt0 = Array.make n 0 in
  let rng = Util.Rng.create seed in
  let values = Array.make n false in
  for _ = 1 to samples do
    Array.iter
      (fun id -> values.(id) <- Util.Rng.bool rng)
      (Circuit.sources c);
    Array.iter
      (fun id ->
        let nd = Circuit.node c id in
        if not (Gate.is_source nd.kind) then
          values.(id) <-
            Gate.eval_bool nd.kind (Array.map (fun f -> values.(f)) nd.fanins))
      (Circuit.topo_order c);
    let leak_uw = Leakage.total_leakage_uw c values in
    let leak_na = leak_uw /. Techlib.Leakage_table.vdd *. 1000.0 in
    for id = 0 to n - 1 do
      if values.(id) then begin
        sum1.(id) <- sum1.(id) +. leak_na;
        cnt1.(id) <- cnt1.(id) + 1
      end
      else begin
        sum0.(id) <- sum0.(id) +. leak_na;
        cnt0.(id) <- cnt0.(id) + 1
      end
    done
  done;
  Array.init n (fun id ->
      if cnt1.(id) = 0 || cnt0.(id) = 0 then Float.nan
      else
        (sum1.(id) /. float_of_int cnt1.(id))
        -. (sum0.(id) /. float_of_int cnt0.(id)))
