(** Leakage observability (Eq. (6)), extended from primary inputs
    ([15]) to every internal line — the paper's key directive for
    choosing among transition-blocking vectors.

    The signed observability of a line is the sensitivity of the
    expected total leakage to the line's one-probability,
    d E\[leakage\] / d p1(line), computed in reverse topological order
    with an independence assumption (the chain rule through each
    fanout gate: the gate's own state-leakage sensitivity plus the
    propagated sensitivity through its output probability). A large
    positive value means driving the line to 1 costs leakage; the
    paper picks the minimum-observability input when justifying a 1
    and the maximum when justifying a 0.

    A Monte-Carlo estimator over random source vectors is provided as
    an independent cross-check (used by the test suite). *)

open Netlist

type t

val compute : ?p_source:float -> Circuit.t -> t
(** Analytic propagation; [p_source] (default 0.5) is the assumed
    one-probability of every primary input and flip-flop output.
    @raise Invalid_argument on unmapped logic gates. *)

val probability : t -> int -> float
(** Propagated one-probability of a node. *)

val observability_na : t -> int -> float
(** Signed leakage observability of the node's output line, nA. *)

val observabilities : t -> float array

val monte_carlo_na :
  ?samples:int -> seed:int -> Circuit.t -> float array
(** Conditional-difference estimate E\[leak | line=1\] -
    E\[leak | line=0\] per node, nA (NaN for lines stuck at a value
    across all samples); default 2000 samples. *)
