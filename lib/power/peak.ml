type profile = {
  cycles : int;
  total : float;
  mean : float;
  maximum : float;
  max_cycle : int;
  p95 : float;
  window_mean_max : float;
  window : int;
}

let of_series ?(window = 16) series =
  let n = Array.length series in
  if n = 0 then invalid_arg "Peak.of_series: empty series";
  let window = max 1 (min window n) in
  let total = Array.fold_left ( +. ) 0.0 series in
  let maximum = ref series.(0) and max_cycle = ref 0 in
  Array.iteri
    (fun i v ->
      if v > !maximum then begin
        maximum := v;
        max_cycle := i
      end)
    series;
  let sorted = Array.copy series in
  Array.sort compare sorted;
  let p95 = sorted.(min (n - 1) (int_of_float (0.95 *. float_of_int n))) in
  (* sliding-window mean by prefix sums *)
  let prefix = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. series.(i)
  done;
  let wmax = ref neg_infinity in
  for i = 0 to n - window do
    let m = (prefix.(i + window) -. prefix.(i)) /. float_of_int window in
    if m > !wmax then wmax := m
  done;
  {
    cycles = n;
    total;
    mean = total /. float_of_int n;
    maximum = !maximum;
    max_cycle = !max_cycle;
    p95;
    window_mean_max = !wmax;
    window;
  }

let of_toggle_series ?window series =
  of_series ?window (Array.map float_of_int series)

let pp fmt p =
  Format.fprintf fmt
    "cycles=%d mean=%.2f max=%.2f@@cycle %d p95=%.2f window(%d)max=%.2f"
    p.cycles p.mean p.maximum p.max_cycle p.p95 p.window p.window_mean_max
