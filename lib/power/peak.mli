(** Peak-power analysis over a per-cycle activity series.

    Test-power constraints are usually set by the worst cycle (or a
    short thermal window), not the average — the concern behind the
    test-point insertion work the paper cites ([6]). This module folds
    the per-cycle series produced by {!Scan.Scan_sim} into the numbers
    a signoff would look at. *)

type profile = {
  cycles : int;
  total : float;
  mean : float;
  maximum : float;
  max_cycle : int;  (** index of the worst cycle *)
  p95 : float;  (** 95th percentile of the per-cycle values *)
  window_mean_max : float;
      (** largest mean over any [window] consecutive cycles: a proxy
          for local heating *)
  window : int;
}

val of_series : ?window:int -> float array -> profile
(** Default window: 16 cycles (clamped to the series length).
    @raise Invalid_argument on an empty series. *)

val of_toggle_series : ?window:int -> int array -> profile

val pp : Format.formatter -> profile -> unit
