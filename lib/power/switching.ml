open Netlist

type report = {
  cycles : int;
  total_toggles : int;
  weighted_cap_ff : float;
  dynamic_per_hz_uw : float;
}

let switched_cap c id =
  let nd = Circuit.node c id in
  match nd.Circuit.kind with
  | Gate.Output -> 0.0
  | Gate.Input | Gate.Dff -> Techmap.Loads.node_load c id
  | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
  | Gate.Xor | Gate.Xnor ->
    let internal =
      match Techmap.Mapper.cell_of_node c id with
      | Some cell -> Techlib.Cell.internal_cap cell
      | None -> 0.0
    in
    Techmap.Loads.node_load c id +. internal

let of_toggles c ~toggles ~cycles =
  if cycles <= 0 then invalid_arg "Switching.of_toggles: cycles <= 0";
  if Array.length toggles <> Circuit.node_count c then
    invalid_arg "Switching.of_toggles: toggle array length mismatch";
  let weighted = ref 0.0 in
  let total = ref 0 in
  Array.iteri
    (fun id n ->
      if n > 0 then begin
        total := !total + n;
        weighted := !weighted +. (float_of_int n *. switched_cap c id)
      end)
    toggles;
  let vdd = Techlib.Leakage_table.vdd in
  (* alpha_i = toggles_i / cycles; C in fF = 1e-15 F; result in uW/Hz
     = 1e6 x W/Hz. *)
  let dynamic_per_hz_uw =
    0.5 *. vdd *. vdd *. (!weighted /. float_of_int cycles) *. 1e-15 *. 1e6
  in
  {
    cycles;
    total_toggles = !total;
    weighted_cap_ff = !weighted;
    dynamic_per_hz_uw;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "cycles=%d toggles=%d weighted-cap=%.1f fF dynamic/f=%.3e uW/Hz" r.cycles
    r.total_toggles r.weighted_cap_ff r.dynamic_per_hz_uw
