(** Dynamic power from switching activity (Eq. (1) of the paper).

    P_dyn = 1/2 f Vdd^2 (sum_i alpha_i C_i), where alpha_i is the node's
    toggle rate and C_i its switched capacitance (output load plus the
    cell's internal nodes). The paper reports the frequency-independent
    quantity P_dyn / f in uW/Hz; so do we. *)

open Netlist

type report = {
  cycles : int;  (** cycles the toggle counts were accumulated over *)
  total_toggles : int;
  weighted_cap_ff : float;
      (** sum over nodes of toggles x switched capacitance, fF *)
  dynamic_per_hz_uw : float;  (** P_dyn / f, uW/Hz *)
}

val switched_cap : Circuit.t -> int -> float
(** Capacitance switched when node [id] toggles: its load plus its
    cell's internal capacitance, fF. Output markers contribute 0 (the
    pad load is already in the driver's load). *)

val of_toggles : Circuit.t -> toggles:int array -> cycles:int -> report
(** Fold per-node toggle counts (as produced by {!Sim.Event_sim}) into
    the Eq. (1) figure.
    @raise Invalid_argument if [cycles <= 0] or array length mismatch. *)

val pp_report : Format.formatter -> report -> unit
