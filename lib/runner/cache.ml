module Json = Telemetry.Json

let file_schema = "scanpower.cache/1"

type t = { dir : string }

let default_dir () =
  match Sys.getenv_opt "SCANPOWER_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> "_scanpower_cache"

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  mkdir_p dir;
  { dir }

let dir t = t.dir

(* Length-prefixing every part keeps the key injective in the parts
   (no concatenation aliasing); MD5 (stdlib [Digest]) is plenty as a
   content address — this is a cache, not a security boundary. *)
let key ~schema ~parts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d:%s" (String.length schema) schema);
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "|%d:" (String.length p));
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let entry_path t k =
  let prefix = if String.length k >= 2 then String.sub k 0 2 else "xx" in
  Filename.concat (Filename.concat t.dir prefix) (k ^ ".json")

let discard path = try Sys.remove path with Sys_error _ -> ()

let corrupt_path path = Filename.remove_extension path ^ ".corrupt"

let m_stale = Telemetry.Counter.make "runner.cache.stale"
let m_quarantined = Telemetry.Counter.make "runner.cache.quarantined"

(* A garbled entry is kept for postmortem under [<key>.corrupt] rather
   than silently deleted; it still reads as a miss, and the rename
   makes room for a fresh store under the same key. *)
let quarantine path =
  Telemetry.Counter.inc m_quarantined;
  try Sys.rename path (corrupt_path path) with Sys_error _ -> discard path

let h_lookup = Telemetry.Histogram.make "runner.cache.lookup_s"

let find_untimed t k =
  let path = entry_path t k in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | raw -> (
    match Json.of_string (String.trim raw) with
    | Ok (Json.Obj _ as obj) -> (
      match
        (Json.member "schema" obj, Json.member "key" obj, Json.member "value" obj)
      with
      | Some (Json.String s), Some (Json.String k'), Some v
        when s = file_schema && k' = k ->
        Some v
      | Some (Json.String s), _, _ when s <> file_schema ->
        (* well-formed entry from another cache format version: a
           clean invalidation, not corruption *)
        Telemetry.Counter.inc m_stale;
        discard path;
        None
      | _ ->
        quarantine path;
        None)
    | Ok _ | Error _ ->
      (* truncated or garbled entry *)
      quarantine path;
      None)

let find t k =
  if not (Telemetry.enabled ()) then find_untimed t k
  else begin
    let t0 = Telemetry.now () in
    let result = find_untimed t k in
    Telemetry.Histogram.observe h_lookup (Telemetry.now () -. t0);
    result
  end

let store t k v =
  let path = entry_path t k in
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  Out_channel.with_open_bin tmp (fun oc ->
      output_string oc
        (Json.to_string
           (Json.Obj
              [
                ("schema", Json.String file_schema);
                ("key", Json.String k);
                ("value", v);
              ]));
      output_char oc '\n');
  Sys.rename tmp path;
  if Fault_inject.fires Fault_inject.Corrupt_cache ~key:k then begin
    (* chaos hook: truncate the freshly written entry to half its size.
       A strict prefix of a JSON object never parses, so the next
       [find] must take the quarantine path (clobbering bytes instead
       could accidentally leave valid JSON). *)
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    let size = (Unix.fstat fd).Unix.st_size in
    Unix.ftruncate fd (size / 2);
    Unix.close fd
  end
