(** Content-addressed on-disk result cache.

    A cache maps a key — the hex digest of the inputs that fully
    determine a result (netlist text, flow parameters, result-schema
    version) — to a JSON blob. Entries are immutable: a key either
    holds exactly the value computed from its inputs or is absent, so
    re-running a sweep recomputes only the points whose inputs
    changed.

    Robustness over cleverness: every entry is one self-describing
    JSON file written atomically (temp file + [rename]), tagged with
    the cache format version and its own key. A missing entry reads as
    a miss. An entry written by a {e different} format version is
    deleted (clean invalidation, counted as [runner.cache.stale]). A
    truncated or otherwise garbled entry also reads as a miss but is
    quarantined to [<key>.corrupt] for postmortem instead of silently
    deleted (counted as [runner.cache.quarantined]), so a crashed
    writer can never poison later runs and never destroys the evidence
    either. *)

type t

val default_dir : unit -> string
(** [$SCANPOWER_CACHE_DIR] when set and non-empty, else
    ["_scanpower_cache"] in the current directory. *)

val create : ?dir:string -> unit -> t
(** Open (and create if needed) the cache rooted at [dir] (default
    {!default_dir}). *)

val dir : t -> string

val key : schema:string -> parts:string list -> string
(** Digest of [schema] plus every part, length-prefixed so that part
    boundaries cannot alias (["ab";"c"] and ["a";"bc"] give different
    keys). The result is a fixed-width lowercase hex string. *)

val entry_path : t -> string -> string
(** Where the entry for a key lives (two-level fan-out by key prefix).
    Exposed for tests and debugging; the file may not exist. *)

val corrupt_path : string -> string
(** Where {!find} quarantines a garbled entry file: the entry path
    with its extension replaced by [.corrupt]. *)

val find : t -> string -> Telemetry.Json.t option
(** The stored value, or [None] on a miss. A well-formed entry with a
    foreign schema version is deleted (stale); a corrupt entry (bad
    JSON, key mismatch, truncation) is renamed to {!corrupt_path} and
    reported as a miss. *)

val store : t -> string -> Telemetry.Json.t -> unit
(** Atomically persist a value under a key, overwriting any previous
    entry. Honours the [Corrupt_cache] {!Fault_inject} site. *)
