type site =
  | Child_crash
  | Child_exit
  | Child_hang
  | Truncated_write
  | Corrupt_cache
  | Atpg_abort
  | Torn_write
  | Worker_kill
  | Stall_read
  | Heap_spike

let all_sites =
  [ Child_crash; Child_exit; Child_hang; Truncated_write; Corrupt_cache;
    Atpg_abort; Torn_write; Worker_kill; Stall_read; Heap_spike ]

let site_to_string = function
  | Child_crash -> "crash"
  | Child_exit -> "exit"
  | Child_hang -> "hang"
  | Truncated_write -> "truncate"
  | Corrupt_cache -> "corrupt"
  | Atpg_abort -> "atpg_abort"
  | Torn_write -> "torn_write"
  | Worker_kill -> "worker_kill"
  | Stall_read -> "stall_read"
  | Heap_spike -> "heap_spike"

let site_of_string = function
  | "crash" -> Some Child_crash
  | "exit" -> Some Child_exit
  | "hang" -> Some Child_hang
  | "truncate" -> Some Truncated_write
  | "corrupt" -> Some Corrupt_cache
  | "atpg_abort" -> Some Atpg_abort
  | "torn_write" -> Some Torn_write
  | "worker_kill" -> Some Worker_kill
  | "stall_read" -> Some Stall_read
  | "heap_spike" -> Some Heap_spike
  | _ -> None

type t = { seed : int; rates : (site * float) list }

let none = { seed = 0; rates = [] }

let rate t site =
  match List.assoc_opt site t.rates with Some r -> r | None -> 0.0

let of_spec s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rec go acc = function
    | [] -> Ok { acc with rates = List.rev acc.rates }
    | p :: rest -> (
      match String.index_opt p '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" p)
      | Some eq -> (
        let k = String.trim (String.sub p 0 eq) in
        let v = String.trim (String.sub p (eq + 1) (String.length p - eq - 1)) in
        if k = "seed" then
          match int_of_string_opt v with
          | Some seed -> go { acc with seed } rest
          | None -> Error (Printf.sprintf "invalid seed %S" v)
        else
          match site_of_string k with
          | None -> Error (Printf.sprintf "unknown fault site %S" k)
          | Some site -> (
            match float_of_string_opt v with
            | Some r when r >= 0.0 && r <= 1.0 ->
              go { acc with rates = (site, r) :: acc.rates } rest
            | _ -> Error (Printf.sprintf "rate for %s must be in [0,1], got %S" k v)
            )))
  in
  go none parts

let to_spec t =
  String.concat ","
    (Printf.sprintf "seed=%d" t.seed
    :: List.filter_map
         (fun (site, r) ->
           if r = 0.0 then None
           else Some (Printf.sprintf "%s=%g" (site_to_string site) r))
         t.rates)

let installed : t option ref = ref None
let env_warned = ref false

let set spec = installed := spec

let with_spec spec f =
  let prev = !installed in
  installed := spec;
  Fun.protect ~finally:(fun () -> installed := prev) f

let activate_from_env () =
  match Sys.getenv_opt "SCANPOWER_FAULT_INJECT" with
  | None | Some "" -> ()
  | Some s -> (
    match of_spec s with
    | Ok t -> installed := Some t
    | Error e ->
      if not !env_warned then begin
        env_warned := true;
        Printf.eprintf "scanpower: ignoring invalid SCANPOWER_FAULT_INJECT: %s\n%!" e
      end)

let current () = !installed

let active () = !installed <> None

(* first 13 hex digits of the MD5 → uniform-ish float in [0,1) *)
let roll01 s =
  let hex = Digest.to_hex (Digest.string s) in
  let v = Int64.of_string ("0x" ^ String.sub hex 0 13) in
  Int64.to_float v /. 4503599627370496.0 (* 16^13 *)

let fired_counter site =
  Telemetry.Counter.make ("fault_inject.fired." ^ site_to_string site)

let fires site ~key =
  match !installed with
  | None -> false
  | Some t ->
    let r = rate t site in
    r > 0.0
    && roll01 (Printf.sprintf "%d|%s|%s" t.seed (site_to_string site) key) < r
    && begin
         Telemetry.Counter.inc (fired_counter site);
         true
       end
