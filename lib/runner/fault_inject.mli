(** Deterministic, seedable fault injection for the runner stack.

    Each {!site} names one failure the pool must recover from. Whether
    a given site fires for a given key is a pure function of the spec
    seed, the site and the key (an MD5 roll compared against the
    site's rate), so a chaos run is exactly reproducible — and because
    callers put the attempt number into the key, a fault with rate
    [< 1.0] eventually lets a retry through.

    Injection is off unless a spec is installed: programmatically with
    {!set} / {!with_spec} (tests), or from the
    [SCANPOWER_FAULT_INJECT] environment variable once {!activate_from_env}
    is called (the CLI does; an invalid env spec is reported once on
    stderr and ignored). Sites that fire increment
    [fault_inject.fired.<site>] telemetry counters in the process where
    they fire (child-side sites count in the child, so parent-side
    metrics only reflect the {e recoveries}: retries, crashes,
    timeouts). *)

type site =
  | Child_crash  (** worker SIGKILLs itself before running the job *)
  | Child_exit  (** worker exits 3 before running the job *)
  | Child_hang  (** worker sleeps past any timeout *)
  | Truncated_write  (** worker writes only half its reply, then exits 0 *)
  | Corrupt_cache  (** cache entry bytes are clobbered after the store *)
  | Atpg_abort  (** the flow runs ATPG with backtrack limit 0 *)
  | Torn_write
      (** the daemon writes only a prefix of a response line, then
          drops the connection — the client sees a torn frame *)
  | Worker_kill
      (** the serving process SIGKILLs itself mid-request — the
          supervisor must restart it and the client must replay *)
  | Stall_read
      (** the daemon stalls briefly before reading ready socket
          bytes — a slow-loris-shaped delay on the read path *)
  | Heap_spike
      (** the daemon pins a large allocation for a few seconds, driving
          the memory-pressure watchdog *)

val all_sites : site list
val site_to_string : site -> string

type t = { seed : int; rates : (site * float) list }

val none : t
(** Seed 0, every rate 0. *)

val rate : t -> site -> float

val of_spec : string -> (t, string) result
(** Parse ["seed=7,crash=0.3,exit=0.1,hang=0.1,truncate=0.2,corrupt=0.5,atpg_abort=0"].
    Every field optional; unknown keys and out-of-range rates are
    errors. *)

val to_spec : t -> string
(** Inverse of {!of_spec} (omits zero rates). *)

val set : t option -> unit
(** Install ([Some]) or remove ([None]) the process-global spec. *)

val with_spec : t option -> (unit -> 'a) -> 'a
(** Scoped {!set}, restoring the previous spec afterwards. *)

val activate_from_env : unit -> unit
(** Install the spec from [SCANPOWER_FAULT_INJECT] if the variable is
    set, non-empty and valid; otherwise leave the current spec alone. *)

val current : unit -> t option

val active : unit -> bool

val fires : site -> key:string -> bool
(** Deterministic roll for this site and key under the current spec;
    always [false] when no spec is installed. *)
