module Json = Telemetry.Json

let file_schema = "scanpower.journal/1"

type t = {
  path : string;
  oc : out_channel;
  entries : (string, Json.t option) Hashtbl.t;
      (* key -> Some blob (ok) | None (failed) *)
}

let header meta =
  Json.Obj [ ("schema", Json.String file_schema); ("meta", meta) ]

(* Existing entries when the file belongs to the same batch; None when
   there is no usable journal to resume. A torn final line (SIGKILL
   mid-append) just ends the scan. *)
let load path meta =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | raw -> (
    match String.split_on_char '\n' raw with
    | [] -> None
    | first :: rest -> (
      match Json.of_string (String.trim first) with
      | Ok hdr when Json.to_string hdr = Json.to_string (header meta) ->
        let entries = Hashtbl.create 64 in
        let rec go = function
          | [] -> ()
          | line :: rest -> (
            match Json.of_string (String.trim line) with
            | Ok obj -> (
              match (Json.member "key" obj, Json.member "status" obj) with
              | Some (Json.String key), Some (Json.String "ok") ->
                Hashtbl.replace entries key (Json.member "blob" obj);
                go rest
              | Some (Json.String key), Some (Json.String "failed") ->
                Hashtbl.replace entries key None;
                go rest
              | _ -> () (* malformed record: stop trusting the tail *))
            | Error _ when String.trim line = "" -> go rest
            | Error _ -> () (* torn trailing line *))
        in
        go rest;
        (* [None] markers for failed-only keys stay: find treats them
           as absent, but they document the failure in the file *)
        Some entries
      | _ -> None))

let open_ ~path ~meta ~resume =
  let loaded = if resume then load path meta else None in
  match loaded with
  | Some entries ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    { path; oc; entries }
  | None ->
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
    output_string oc (Json.to_string (header meta) ^ "\n");
    flush oc;
    { path; oc; entries = Hashtbl.create 64 }

let path t = t.path

let find t key =
  match Hashtbl.find_opt t.entries key with
  | Some (Some blob) -> Some blob
  | Some None | None -> None

let completed t =
  Hashtbl.fold (fun _ v n -> match v with Some _ -> n + 1 | None -> n) t.entries 0

let append t obj =
  output_string t.oc (Json.to_string obj ^ "\n");
  flush t.oc

let record_done t ~key blob =
  Hashtbl.replace t.entries key (Some blob);
  append t
    (Json.Obj
       [ ("key", Json.String key); ("status", Json.String "ok");
         ("blob", blob) ])

let record_failed t ~key error =
  Hashtbl.replace t.entries key None;
  append t
    (Json.Obj
       [ ("key", Json.String key); ("status", Json.String "failed");
         ("error", Json.String error) ])

let close t = try close_out t.oc with Sys_error _ -> ()
