(** Checkpoint journal: a JSON-lines file recording the outcome of
    every finished job so a killed batch can resume without recomputing
    completed work.

    The first line is a header carrying a schema tag and the caller's
    [meta] value (which must fully identify the batch — e.g. a digest
    of all job keys plus the result schema version). Each subsequent
    line records one job: [{"key":…,"status":"ok","blob":…}] or
    [{"key":…,"status":"failed","error":…}]. Lines are flushed as they
    are written, so after a SIGKILL the file is intact up to possibly
    one torn final line, which {!open_} silently ignores.

    On {!open_} with [resume = true], an existing file whose header
    meta matches is loaded (completed entries become {!find} hits and
    appends continue at the end); a missing file, foreign meta or
    unreadable header starts a fresh journal. With [resume = false]
    any existing file is truncated. *)

type t

val open_ : path:string -> meta:Telemetry.Json.t -> resume:bool -> t
(** @raise Sys_error if the file cannot be created or read. *)

val path : t -> string

val find : t -> string -> Telemetry.Json.t option
(** The blob of a key recorded as [ok] in the loaded (resumed) portion
    or appended since. A key whose latest record is [failed] is absent. *)

val completed : t -> int
(** Number of distinct keys currently recorded as [ok]. *)

val record_done : t -> key:string -> Telemetry.Json.t -> unit

val record_failed : t -> key:string -> string -> unit
(** Recorded so a resume knows the job still needs work (and why it
    failed last time). *)

val close : t -> unit
