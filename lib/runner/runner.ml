module Cache = Cache
module Json = Telemetry.Json

type job = {
  id : string;
  cache_key : string option;
  run : attempt:int -> Json.t;
}

type failure = Crashed of string | Timed_out | Job_error of string

let failure_to_string = function
  | Crashed msg -> Printf.sprintf "worker crashed (%s)" msg
  | Timed_out -> "timed out"
  | Job_error msg -> Printf.sprintf "job error: %s" msg

type outcome =
  | Done of {
      value : Json.t;
      telemetry : Json.t option;
      from_cache : bool;
      attempts : int;
      duration_s : float;
    }
  | Failed of { attempts : int; last : failure }

type result = { job : job; outcome : outcome }

type event =
  | Started of { job : job; attempt : int }
  | Attempt_failed of {
      job : job;
      attempt : int;
      failure : failure;
      will_retry : bool;
    }
  | Finished of { job : job; outcome : outcome }

type stats = {
  scheduled : int;
  cache_hits : int;
  cache_misses : int;
  computed : int;
  crashes : int;
  timeouts : int;
  retries : int;
  failed : int;
}

let stats_to_json s =
  Json.Obj
    [
      ("scheduled", Json.Int s.scheduled);
      ("cache_hits", Json.Int s.cache_hits);
      ("cache_misses", Json.Int s.cache_misses);
      ("computed", Json.Int s.computed);
      ("crashes", Json.Int s.crashes);
      ("timeouts", Json.Int s.timeouts);
      ("retries", Json.Int s.retries);
      ("failed", Json.Int s.failed);
    ]

type config = {
  jobs : int;
  timeout_s : float;
  retries : int;
  cache : Cache.t option;
  capture_telemetry : bool;
  on_event : event -> unit;
}

let default_config =
  {
    jobs = 1;
    timeout_s = 0.0;
    retries = 1;
    cache = None;
    capture_telemetry = false;
    on_event = ignore;
  }

(* ------------------------------------------------------------------ *)
(* executing one attempt (shared by child and in-process paths)        *)
(* ------------------------------------------------------------------ *)

let execute cfg job ~attempt =
  if cfg.capture_telemetry then begin
    let was_enabled = Telemetry.enabled () in
    Telemetry.reset ();
    Telemetry.enable ();
    let capture () =
      let snapshot = Telemetry.metrics_snapshot () in
      if not was_enabled then Telemetry.disable ();
      snapshot
    in
    match job.run ~attempt with
    | value -> (value, Some (capture ()))
    | exception e ->
      ignore (capture ());
      raise e
  end
  else (job.run ~attempt, None)

(* ------------------------------------------------------------------ *)
(* wire protocol: the worker writes one JSON line and _exits           *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let child_main cfg job ~attempt wfd =
  let payload =
    match execute cfg job ~attempt with
    | value, telemetry ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("value", value);
          ( "telemetry",
            match telemetry with Some t -> t | None -> Json.Null );
        ]
    | exception e ->
      Json.Obj
        [ ("ok", Json.Bool false); ("error", Json.String (Printexc.to_string e)) ]
  in
  (try write_all wfd (Json.to_string payload ^ "\n") with _ -> ());
  (try Unix.close wfd with _ -> ());
  (* _exit, not exit: the child inherited the parent's buffered
     channels and must not flush them a second time *)
  Unix._exit 0

let parse_reply raw =
  match Json.of_string (String.trim raw) with
  | Error e -> Error (Crashed (Printf.sprintf "unparseable reply: %s" e))
  | Ok obj -> (
    match Json.member "ok" obj with
    | Some (Json.Bool true) ->
      let value = Option.value ~default:Json.Null (Json.member "value" obj) in
      let telemetry =
        match Json.member "telemetry" obj with
        | None | Some Json.Null -> None
        | Some t -> Some t
      in
      Ok (value, telemetry)
    | Some (Json.Bool false) ->
      let msg =
        match Json.member "error" obj with
        | Some (Json.String m) -> m
        | _ -> "unknown error"
      in
      Error (Job_error msg)
    | _ -> Error (Crashed "malformed reply"))

(* ------------------------------------------------------------------ *)
(* the pool                                                            *)
(* ------------------------------------------------------------------ *)

type worker = {
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  idx : int;
  attempt : int;
  started : float;
  deadline : float;
  mutable eof : bool;
}

(* mutable mirror of [stats] while the pool runs *)
type acc = {
  mutable a_scheduled : int;
  mutable a_cache_hits : int;
  mutable a_cache_misses : int;
  mutable a_computed : int;
  mutable a_crashes : int;
  mutable a_timeouts : int;
  mutable a_retries : int;
  mutable a_failed : int;
}

let freeze a =
  {
    scheduled = a.a_scheduled;
    cache_hits = a.a_cache_hits;
    cache_misses = a.a_cache_misses;
    computed = a.a_computed;
    crashes = a.a_crashes;
    timeouts = a.a_timeouts;
    retries = a.a_retries;
    failed = a.a_failed;
  }

let mirror_to_telemetry s =
  let add name v = Telemetry.Counter.add (Telemetry.Counter.make name) v in
  add "runner.jobs.scheduled" s.scheduled;
  add "runner.jobs.computed" s.computed;
  add "runner.jobs.failed" s.failed;
  add "runner.cache.hit" s.cache_hits;
  add "runner.cache.miss" s.cache_misses;
  add "runner.worker.crash" s.crashes;
  add "runner.worker.timeout" s.timeouts;
  add "runner.retry" s.retries

let cache_blob value telemetry =
  Json.Obj
    [
      ("value", value);
      ("telemetry", match telemetry with Some t -> t | None -> Json.Null);
    ]

let run ?(config = default_config) job_list =
  let cfg = config in
  let jobs = Array.of_list job_list in
  let n = Array.length jobs in
  let results : outcome option array = Array.make n None in
  let acc =
    {
      a_scheduled = n;
      a_cache_hits = 0;
      a_cache_misses = 0;
      a_computed = 0;
      a_crashes = 0;
      a_timeouts = 0;
      a_retries = 0;
      a_failed = 0;
    }
  in
  let pending = Queue.create () in

  let finished i outcome =
    results.(i) <- Some outcome;
    cfg.on_event (Finished { job = jobs.(i); outcome })
  in

  (* cache pass: answer what we can without running anything *)
  Array.iteri
    (fun i job ->
      match (cfg.cache, job.cache_key) with
      | Some cache, Some key -> (
        match Cache.find cache key with
        | Some blob ->
          acc.a_cache_hits <- acc.a_cache_hits + 1;
          let value =
            Option.value ~default:Json.Null (Json.member "value" blob)
          in
          let telemetry =
            match Json.member "telemetry" blob with
            | None | Some Json.Null -> None
            | Some t -> Some t
          in
          finished i
            (Done
               { value; telemetry; from_cache = true; attempts = 0;
                 duration_s = 0.0 })
        | None ->
          acc.a_cache_misses <- acc.a_cache_misses + 1;
          Queue.add (i, 1) pending)
      | _ -> Queue.add (i, 1) pending)
    jobs;

  let succeed i ~attempt ~started value telemetry =
    acc.a_computed <- acc.a_computed + 1;
    (match (cfg.cache, jobs.(i).cache_key) with
    | Some cache, Some key -> Cache.store cache key (cache_blob value telemetry)
    | _ -> ());
    finished i
      (Done
         { value; telemetry; from_cache = false; attempts = attempt;
           duration_s = Unix.gettimeofday () -. started })
  in
  let fail i ~attempt failure =
    (match failure with
    | Crashed _ -> acc.a_crashes <- acc.a_crashes + 1
    | Timed_out -> acc.a_timeouts <- acc.a_timeouts + 1
    | Job_error _ -> ());
    let will_retry = attempt <= cfg.retries in
    cfg.on_event
      (Attempt_failed { job = jobs.(i); attempt; failure; will_retry });
    if will_retry then begin
      acc.a_retries <- acc.a_retries + 1;
      Queue.add (i, attempt + 1) pending
    end
    else begin
      acc.a_failed <- acc.a_failed + 1;
      finished i (Failed { attempts = attempt; last = failure })
    end
  in

  let sequential () =
    let rec drain () =
      match Queue.take_opt pending with
      | None -> ()
      | Some (i, attempt) ->
        cfg.on_event (Started { job = jobs.(i); attempt });
        let started = Unix.gettimeofday () in
        (match execute cfg jobs.(i) ~attempt with
        | value, telemetry -> succeed i ~attempt ~started value telemetry
        | exception e -> fail i ~attempt (Job_error (Printexc.to_string e)));
        drain ()
    in
    drain ()
  in

  let forked () =
    let running : worker list ref = ref [] in
    let chunk = Bytes.create 65536 in
    let read_some w =
      if not w.eof then
        match Unix.read w.fd chunk 0 (Bytes.length chunk) with
        | 0 ->
          w.eof <- true;
          (try Unix.close w.fd with Unix.Unix_error _ -> ())
        | k -> Buffer.add_subbytes w.buf chunk 0 k
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    let drain w = while not w.eof do read_some w done in
    let spawn i attempt =
      (* anything buffered would otherwise be flushed twice once the
         child exits *)
      Format.pp_print_flush Format.std_formatter ();
      Format.pp_print_flush Format.err_formatter ();
      flush stdout;
      flush stderr;
      let rfd, wfd = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        (try Unix.close rfd with Unix.Unix_error _ -> ());
        (* drop the read ends of sibling pipes so a sibling's EOF is
           seen as soon as that sibling exits *)
        List.iter
          (fun w -> try Unix.close w.fd with Unix.Unix_error _ -> ())
          !running;
        child_main cfg jobs.(i) ~attempt wfd
      | pid ->
        Unix.close wfd;
        cfg.on_event (Started { job = jobs.(i); attempt });
        let now = Unix.gettimeofday () in
        let deadline =
          if cfg.timeout_s > 0.0 then now +. cfg.timeout_s else infinity
        in
        running :=
          { pid; fd = rfd; buf = Buffer.create 4096; idx = i; attempt;
            started = now; deadline; eof = false }
          :: !running
    in
    let remove w = running := List.filter (fun x -> x.pid <> w.pid) !running in
    let complete w status =
      drain w;
      remove w;
      match status with
      | Unix.WEXITED 0 -> (
        match parse_reply (Buffer.contents w.buf) with
        | Ok (value, telemetry) ->
          succeed w.idx ~attempt:w.attempt ~started:w.started value telemetry
        | Error failure -> fail w.idx ~attempt:w.attempt failure)
      | Unix.WEXITED code ->
        fail w.idx ~attempt:w.attempt
          (Crashed (Printf.sprintf "exit %d" code))
      | Unix.WSIGNALED sg ->
        fail w.idx ~attempt:w.attempt (Crashed (Printf.sprintf "signal %d" sg))
      | Unix.WSTOPPED _ ->
        fail w.idx ~attempt:w.attempt (Crashed "stopped")
    in
    let expire w =
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] w.pid);
      if not w.eof then begin
        w.eof <- true;
        try Unix.close w.fd with Unix.Unix_error _ -> ()
      end;
      remove w;
      fail w.idx ~attempt:w.attempt Timed_out
    in
    let kill_everything () =
      List.iter
        (fun w ->
          (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
          if not w.eof then
            try Unix.close w.fd with Unix.Unix_error _ -> ())
        !running;
      running := []
    in
    try
      while (not (Queue.is_empty pending)) || !running <> [] do
        while
          List.length !running < cfg.jobs && not (Queue.is_empty pending)
        do
          let i, attempt = Queue.take pending in
          spawn i attempt
        done;
        let now = Unix.gettimeofday () in
        List.iter expire (List.filter (fun w -> now > w.deadline) !running);
        if !running <> [] then begin
          let fds =
            List.filter_map
              (fun w -> if w.eof then None else Some w.fd)
              !running
          in
          (if fds = [] then Unix.sleepf 0.002
           else
             let timeout =
               let next =
                 List.fold_left
                   (fun t w -> Float.min t w.deadline)
                   infinity !running
               in
               if next = infinity then 0.2
               else Float.max 0.005 (Float.min 0.2 (next -. now))
             in
             match Unix.select fds [] [] timeout with
             | readable, _, _ ->
               List.iter
                 (fun w -> if List.mem w.fd readable then read_some w)
                 !running
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          List.iter
            (fun w ->
              match Unix.waitpid [ Unix.WNOHANG ] w.pid with
              | 0, _ -> ()
              | _, status -> complete w status
              | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                complete w (Unix.WEXITED 0))
            !running
        end
      done
    with e ->
      kill_everything ();
      raise e
  in

  if Queue.is_empty pending then ()
  else if cfg.jobs <= 1 || not Sys.unix then sequential ()
  else forked ();

  let stats = freeze acc in
  mirror_to_telemetry stats;
  ( Array.to_list
      (Array.mapi
         (fun i job ->
           match results.(i) with
           | Some outcome -> { job; outcome }
           | None ->
             (* unreachable: every scheduled job ends in [finished] *)
             { job; outcome = Failed { attempts = 0; last = Crashed "lost" } })
         jobs),
    stats )
