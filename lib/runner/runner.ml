module Cache = Cache
module Fault_inject = Fault_inject
module Journal = Journal
module Json = Telemetry.Json

type job = {
  id : string;
  cache_key : string option;
  run : attempt:int -> Json.t;
}

type failure =
  | Crashed of string
  | Timed_out
  | Job_error of string
  | Interrupted
  | Deadline_exceeded

let failure_to_string = function
  | Crashed msg -> Printf.sprintf "worker crashed (%s)" msg
  | Timed_out -> "timed out"
  | Job_error msg -> Printf.sprintf "job error: %s" msg
  | Interrupted -> "interrupted (SIGINT/SIGTERM)"
  | Deadline_exceeded -> "batch deadline exceeded"

type outcome =
  | Done of {
      value : Json.t;
      telemetry : Json.t option;
      from_cache : bool;
      attempts : int;
      duration_s : float;
    }
  | Failed of { attempts : int; last : failure; quarantined : bool }

type result = { job : job; outcome : outcome }

type event =
  | Started of { job : job; attempt : int }
  | Attempt_failed of {
      job : job;
      attempt : int;
      failure : failure;
      will_retry : bool;
    }
  | Finished of { job : job; outcome : outcome }

type stats = {
  scheduled : int;
  cache_hits : int;
  cache_misses : int;
  journal_hits : int;
  computed : int;
  crashes : int;
  timeouts : int;
  retries : int;
  quarantined : int;
  failed : int;
  interrupted : bool;
}

let stats_to_json s =
  Json.Obj
    [
      ("scheduled", Json.Int s.scheduled);
      ("cache_hits", Json.Int s.cache_hits);
      ("cache_misses", Json.Int s.cache_misses);
      ("journal_hits", Json.Int s.journal_hits);
      ("computed", Json.Int s.computed);
      ("crashes", Json.Int s.crashes);
      ("timeouts", Json.Int s.timeouts);
      ("retries", Json.Int s.retries);
      ("quarantined", Json.Int s.quarantined);
      ("failed", Json.Int s.failed);
      ("interrupted", Json.Bool s.interrupted);
    ]

type strategy = Processes | Domains | Auto

let strategy_to_string = function
  | Processes -> "processes"
  | Domains -> "domains"
  | Auto -> "auto"

let strategy_of_string = function
  | "processes" | "process" | "fork" -> Some Processes
  | "domains" | "domain" -> Some Domains
  | "auto" -> Some Auto
  | _ -> None

type config = {
  jobs : int;
  strategy : strategy;
  min_domain_jobs : int;
  timeout_s : float;
  retries : int;
  backoff_s : float;
  backoff_max_s : float;
  deadline_s : float;
  poison_threshold : int;
  handle_signals : bool;
  cache : Cache.t option;
  journal : Journal.t option;
  capture_telemetry : bool;
  on_event : event -> unit;
}

let default_config =
  {
    jobs = 1;
    (* [Processes] and not [Auto]: a bare config promises the same
       crash isolation it always had — jobs that abort or corrupt the
       process die in a forked child. Auto is an explicit opt-in. *)
    strategy = Processes;
    (* below this many jobs an [Auto] batch is not worth a domain
       pool: spawn + teardown dominate (fault_sim_par_d2/d4 < 1x on
       the small circuits). Explicit [Domains] is always honoured. *)
    min_domain_jobs = 4;
    timeout_s = 0.0;
    retries = 1;
    backoff_s = 0.0;
    backoff_max_s = 30.0;
    deadline_s = 0.0;
    poison_threshold = 3;
    handle_signals = false;
    cache = None;
    journal = None;
    capture_telemetry = false;
    on_event = ignore;
  }

(* [Auto] keeps every capability the process pool uniquely provides:
   a per-attempt timeout and chaos injection need a killable child,
   telemetry capture resets process-global state, and signal handling
   promises that SIGINT reaps in-flight attempts rather than waiting
   them out. Only a plain batch — no timeout, no capture, no signals,
   no chaos — runs on shared-memory domains. *)
let effective_strategy cfg =
  match cfg.strategy with
  | Processes -> Processes
  | Domains -> Domains
  | Auto ->
    if
      cfg.timeout_s > 0.0 || cfg.capture_telemetry || cfg.handle_signals
      || Fault_inject.active ()
    then Processes
    else Domains

(* first 13 hex digits of the MD5 -> uniform-ish float in [0,1) *)
let hash01 s =
  let hex = Digest.to_hex (Digest.string s) in
  Int64.to_float (Int64.of_string ("0x" ^ String.sub hex 0 13))
  /. 4503599627370496.0 (* 16^13 *)

(* Exponential backoff with deterministic jitter: the delay after a
   given attempt of a given job is always the same number, so a chaos
   run replays exactly, yet two jobs failing together do not retry in
   lockstep. *)
let retry_delay_s cfg ~id ~attempt =
  if cfg.backoff_s <= 0.0 then 0.0
  else begin
    let base = cfg.backoff_s *. (2.0 ** float_of_int (max 0 (attempt - 1))) in
    let capped = Float.min cfg.backoff_max_s base in
    capped *. (0.5 +. (0.5 *. hash01 (Printf.sprintf "backoff|%s|%d" id attempt)))
  end

(* ------------------------------------------------------------------ *)
(* executing one attempt (shared by child and in-process paths)        *)
(* ------------------------------------------------------------------ *)

let execute cfg job ~attempt =
  if cfg.capture_telemetry then begin
    let was_enabled = Telemetry.enabled () in
    Telemetry.reset ();
    Telemetry.enable ();
    let capture () =
      let snapshot = Telemetry.metrics_snapshot () in
      if not was_enabled then Telemetry.disable ();
      snapshot
    in
    match job.run ~attempt with
    | value -> (value, Some (capture ()))
    | exception e ->
      ignore (capture ());
      raise e
  end
  else (job.run ~attempt, None)

(* ------------------------------------------------------------------ *)
(* wire protocol: the worker writes one JSON line and _exits           *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let child_main cfg job ~attempt wfd =
  (* chaos hooks: the key carries the attempt number so a fault with
     rate < 1 deterministically lets some retry through *)
  let fkey = Printf.sprintf "%s#%d" job.id attempt in
  if Fault_inject.fires Fault_inject.Child_crash ~key:fkey then
    Unix.kill (Unix.getpid ()) Sys.sigkill;
  if Fault_inject.fires Fault_inject.Child_exit ~key:fkey then Unix._exit 3;
  if Fault_inject.fires Fault_inject.Child_hang ~key:fkey then
    Unix.sleepf 3600.0;
  let payload =
    match execute cfg job ~attempt with
    | value, telemetry ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("value", value);
          ( "telemetry",
            match telemetry with Some t -> t | None -> Json.Null );
        ]
    | exception e ->
      Json.Obj
        [ ("ok", Json.Bool false); ("error", Json.String (Printexc.to_string e)) ]
  in
  let line = Json.to_string payload ^ "\n" in
  let line =
    if Fault_inject.fires Fault_inject.Truncated_write ~key:fkey then
      String.sub line 0 (String.length line / 2)
    else line
  in
  (try write_all wfd line with _ -> ());
  (try Unix.close wfd with _ -> ());
  (* _exit, not exit: the child inherited the parent's buffered
     channels and must not flush them a second time *)
  Unix._exit 0

let parse_reply raw =
  match Json.of_string (String.trim raw) with
  | Error e -> Error (Crashed (Printf.sprintf "unparseable reply: %s" e))
  | Ok obj -> (
    match Json.member "ok" obj with
    | Some (Json.Bool true) ->
      let value = Option.value ~default:Json.Null (Json.member "value" obj) in
      let telemetry =
        match Json.member "telemetry" obj with
        | None | Some Json.Null -> None
        | Some t -> Some t
      in
      Ok (value, telemetry)
    | Some (Json.Bool false) ->
      let msg =
        match Json.member "error" obj with
        | Some (Json.String m) -> m
        | _ -> "unknown error"
      in
      Error (Job_error msg)
    | _ -> Error (Crashed "malformed reply"))

(* ------------------------------------------------------------------ *)
(* the pool                                                            *)
(* ------------------------------------------------------------------ *)

type worker = {
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  idx : int;
  attempt : int;
  started : float;
  deadline : float;
  mutable eof : bool;
}

(* mutable mirror of [stats] while the pool runs *)
type acc = {
  mutable a_scheduled : int;
  mutable a_cache_hits : int;
  mutable a_cache_misses : int;
  mutable a_journal_hits : int;
  mutable a_computed : int;
  mutable a_crashes : int;
  mutable a_timeouts : int;
  mutable a_retries : int;
  mutable a_quarantined : int;
  mutable a_failed : int;
  mutable a_interrupted : bool;
}

let freeze a =
  {
    scheduled = a.a_scheduled;
    cache_hits = a.a_cache_hits;
    cache_misses = a.a_cache_misses;
    journal_hits = a.a_journal_hits;
    computed = a.a_computed;
    crashes = a.a_crashes;
    timeouts = a.a_timeouts;
    retries = a.a_retries;
    quarantined = a.a_quarantined;
    failed = a.a_failed;
    interrupted = a.a_interrupted;
  }

let mirror_to_telemetry s =
  let add name v = Telemetry.Counter.add (Telemetry.Counter.make name) v in
  add "runner.jobs.scheduled" s.scheduled;
  add "runner.jobs.computed" s.computed;
  add "runner.jobs.failed" s.failed;
  add "runner.cache.hit" s.cache_hits;
  add "runner.cache.miss" s.cache_misses;
  add "runner.journal.hit" s.journal_hits;
  add "runner.worker.crash" s.crashes;
  add "runner.worker.timeout" s.timeouts;
  add "runner.worker.quarantined" s.quarantined;
  add "runner.retry" s.retries;
  if s.interrupted then
    add "runner.interrupted" 1

let h_job = Telemetry.Histogram.make "runner.job_s"
let m_min_work_seq = Telemetry.Counter.make "runner.min_work_seq"

let cache_blob value telemetry =
  Json.Obj
    [
      ("value", value);
      ("telemetry", match telemetry with Some t -> t | None -> Json.Null);
    ]

let run ?(config = default_config) job_list =
  let cfg = config in
  let jobs = Array.of_list job_list in
  let n = Array.length jobs in
  let results : outcome option array = Array.make n None in
  let acc =
    {
      a_scheduled = n;
      a_cache_hits = 0;
      a_cache_misses = 0;
      a_journal_hits = 0;
      a_computed = 0;
      a_crashes = 0;
      a_timeouts = 0;
      a_retries = 0;
      a_quarantined = 0;
      a_failed = 0;
      a_interrupted = false;
    }
  in
  let start = Unix.gettimeofday () in
  let batch_deadline =
    if cfg.deadline_s > 0.0 then start +. cfg.deadline_s else infinity
  in

  (* pending attempts: (job index, attempt, earliest start time), kept
     in FIFO order; backoff only delays an entry, never reorders it *)
  let pending : (int * int * float) list ref = ref [] in
  let push_pending entry = pending := !pending @ [ entry ] in
  let pending_empty () = !pending = [] in
  let take_ready now =
    let rec go skipped = function
      | [] -> None
      | ((i, attempt, not_before) :: rest : (int * int * float) list) ->
        if not_before <= now then begin
          pending := List.rev_append skipped rest;
          Some (i, attempt)
        end
        else go ((i, attempt, not_before) :: skipped) rest
    in
    go [] !pending
  in
  let next_wake () =
    List.fold_left (fun t (_, _, nb) -> Float.min t nb) infinity !pending
  in

  (* SIGINT/SIGTERM: set a flag, let the drain loop reap children and
     flush what finished as a partial result *)
  let interrupted = ref false in
  let restore_signals =
    if cfg.handle_signals && Sys.unix then begin
      let saved =
        List.map
          (fun s ->
            (s, Sys.signal s (Sys.Signal_handle (fun _ -> interrupted := true))))
          [ Sys.sigint; Sys.sigterm ]
      in
      fun () -> List.iter (fun (s, b) -> Sys.set_signal s b) saved
    end
    else fun () -> ()
  in

  let journal_key job =
    match job.cache_key with Some k -> k | None -> job.id
  in

  let finished i outcome =
    results.(i) <- Some outcome;
    cfg.on_event (Finished { job = jobs.(i); outcome })
  in

  (* checkpoint/cache pass: answer what we can without running anything.
     The journal wins over the cache so a --resume works even with the
     cache disabled; cache hits are copied into the journal so the
     checkpoint stays complete on its own. *)
  Array.iteri
    (fun i job ->
      let jkey = journal_key job in
      let serve blob ~journal_hit =
        if journal_hit then acc.a_journal_hits <- acc.a_journal_hits + 1
        else begin
          acc.a_cache_hits <- acc.a_cache_hits + 1;
          match cfg.journal with
          | Some j -> Journal.record_done j ~key:jkey blob
          | None -> ()
        end;
        let value =
          Option.value ~default:Json.Null (Json.member "value" blob)
        in
        let telemetry =
          match Json.member "telemetry" blob with
          | None | Some Json.Null -> None
          | Some t -> Some t
        in
        finished i
          (Done
             { value; telemetry; from_cache = true; attempts = 0;
               duration_s = 0.0 })
      in
      match
        match cfg.journal with
        | Some j -> Journal.find j jkey
        | None -> None
      with
      | Some blob -> serve blob ~journal_hit:true
      | None -> (
        match (cfg.cache, job.cache_key) with
        | Some cache, Some key -> (
          match Cache.find cache key with
          | Some blob -> serve blob ~journal_hit:false
          | None ->
            acc.a_cache_misses <- acc.a_cache_misses + 1;
            push_pending (i, 1, 0.0))
        | _ -> push_pending (i, 1, 0.0)))
    jobs;

  let succeed i ~attempt ~started value telemetry =
    acc.a_computed <- acc.a_computed + 1;
    let blob = cache_blob value telemetry in
    (match (cfg.cache, jobs.(i).cache_key) with
    | Some cache, Some key -> Cache.store cache key blob
    | _ -> ());
    (match cfg.journal with
    | Some j -> Journal.record_done j ~key:(journal_key jobs.(i)) blob
    | None -> ());
    let duration_s = Unix.gettimeofday () -. started in
    Telemetry.Histogram.observe h_job duration_s;
    (* a freshly computed worker snapshot (shipped back over the result
       pipe, pid included) joins the parent's Chrome trace as its own
       process track; cache-served snapshots carry timestamps from an
       earlier run and stay out *)
    (match telemetry with
    | Some snapshot when Telemetry.enabled () ->
      Telemetry.Trace_export.register ~label:jobs.(i).id snapshot
    | _ -> ());
    finished i
      (Done
         { value; telemetry; from_cache = false; attempts = attempt;
           duration_s })
  in
  (* consecutive identical-failure streaks, for poison detection *)
  let streaks : (int, string * int) Hashtbl.t = Hashtbl.create 16 in
  let fail i ~attempt failure =
    (match failure with
    | Crashed _ -> acc.a_crashes <- acc.a_crashes + 1
    | Timed_out -> acc.a_timeouts <- acc.a_timeouts + 1
    | Job_error _ | Interrupted | Deadline_exceeded -> ());
    let signature = failure_to_string failure in
    let streak =
      match Hashtbl.find_opt streaks i with
      | Some (s, k) when s = signature -> k + 1
      | _ -> 1
    in
    Hashtbl.replace streaks i (signature, streak);
    let poisoned =
      cfg.poison_threshold > 0 && streak >= cfg.poison_threshold
    in
    let will_retry = attempt <= cfg.retries && not poisoned in
    cfg.on_event
      (Attempt_failed { job = jobs.(i); attempt; failure; will_retry });
    if will_retry then begin
      acc.a_retries <- acc.a_retries + 1;
      let delay = retry_delay_s cfg ~id:jobs.(i).id ~attempt in
      push_pending (i, attempt + 1, Unix.gettimeofday () +. delay)
    end
    else begin
      acc.a_failed <- acc.a_failed + 1;
      if poisoned then acc.a_quarantined <- acc.a_quarantined + 1;
      (match cfg.journal with
      | Some j -> Journal.record_failed j ~key:(journal_key jobs.(i)) signature
      | None -> ());
      finished i (Failed { attempts = attempt; last = failure; quarantined = poisoned })
    end
  in
  (* batch cut short (signal or deadline): everything unfinished —
     still-pending attempts plus [reaped] just-killed workers — fails
     with [failure] and is journalled as unfinished work *)
  let flush_unfinished failure reaped =
    if failure = Interrupted then acc.a_interrupted <- true;
    let cut (i, attempts) =
      acc.a_failed <- acc.a_failed + 1;
      (match cfg.journal with
      | Some j ->
        Journal.record_failed j ~key:(journal_key jobs.(i))
          (failure_to_string failure)
      | None -> ());
      finished i (Failed { attempts; last = failure; quarantined = false })
    in
    List.iter (fun (i, attempt, _) -> cut (i, attempt - 1)) !pending;
    pending := [];
    List.iter cut reaped
  in

  let sequential () =
    let rec drain () =
      if pending_empty () then ()
      else if !interrupted then flush_unfinished Interrupted []
      else begin
        let now = Unix.gettimeofday () in
        if now > batch_deadline then flush_unfinished Deadline_exceeded []
        else
          match take_ready now with
          | None ->
            Unix.sleepf
              (Float.max 0.001 (Float.min 0.05 (next_wake () -. now)));
            drain ()
          | Some (i, attempt) ->
            cfg.on_event (Started { job = jobs.(i); attempt });
            let started = now in
            (match execute cfg jobs.(i) ~attempt with
            | value, telemetry -> succeed i ~attempt ~started value telemetry
            | exception e -> fail i ~attempt (Job_error (Printexc.to_string e)));
            drain ()
      end
    in
    drain ()
  in

  (* In-process shared-memory execution: rounds of ready attempts fan
     out over a domain pool; the coordinator alone touches the cache,
     the journal, events and the retry queue, so those stay
     single-domain exactly as in [sequential]. No per-attempt timeout
     (a domain cannot be killed) and no telemetry capture (it resets
     process-global state); [Auto] never picks this path when either
     is requested. *)
  let domains () =
    Par.Domain_pool.with_pool ~domains:cfg.jobs @@ fun pool ->
    let rec round () =
      if pending_empty () then ()
      else if !interrupted then flush_unfinished Interrupted []
      else begin
        let now = Unix.gettimeofday () in
        if now > batch_deadline then flush_unfinished Deadline_exceeded []
        else begin
          let ready = ref [] in
          let rec take () =
            match take_ready now with
            | Some entry ->
              ready := entry :: !ready;
              take ()
            | None -> ()
          in
          take ();
          match List.rev !ready with
          | [] ->
            Unix.sleepf
              (Float.max 0.001 (Float.min 0.05 (next_wake () -. now)));
            round ()
          | ready ->
            let arr = Array.of_list ready in
            let nb = Array.length arr in
            let out = Array.make nb None in
            Array.iter
              (fun (i, attempt) ->
                cfg.on_event (Started { job = jobs.(i); attempt }))
              arr;
            (* chunk 1: jobs are coarse, so self-scheduling per job
               keeps a slow attempt from serialising its chunk-mates *)
            Par.Domain_pool.parallel_for pool ~chunk:1 ~n:nb (fun k ->
                let i, attempt = arr.(k) in
                let t0 = Unix.gettimeofday () in
                let r =
                  match jobs.(i).run ~attempt with
                  | v -> Ok v
                  | exception e -> Error (Printexc.to_string e)
                in
                out.(k) <- Some (Unix.gettimeofday () -. t0, r));
            Array.iteri
              (fun k (i, attempt) ->
                match out.(k) with
                | Some (dur, Ok value) ->
                  (* [succeed] times against [started]; reconstruct it
                     from the worker-measured duration so the barrier
                     wait is not billed to the job *)
                  succeed i ~attempt
                    ~started:(Unix.gettimeofday () -. dur)
                    value None
                | Some (_, Error msg) -> fail i ~attempt (Job_error msg)
                | None -> fail i ~attempt (Job_error "lost attempt"))
              arr;
            round ()
        end
      end
    in
    round ()
  in

  let forked () =
    let running : worker list ref = ref [] in
    let chunk = Bytes.create 65536 in
    let read_some w =
      if not w.eof then
        match Unix.read w.fd chunk 0 (Bytes.length chunk) with
        | 0 ->
          w.eof <- true;
          (try Unix.close w.fd with Unix.Unix_error _ -> ())
        | k -> Buffer.add_subbytes w.buf chunk 0 k
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    let drain w = while not w.eof do read_some w done in
    let spawn i attempt =
      (* anything buffered would otherwise be flushed twice once the
         child exits *)
      Format.pp_print_flush Format.std_formatter ();
      Format.pp_print_flush Format.err_formatter ();
      flush stdout;
      flush stderr;
      let rfd, wfd = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        (try Unix.close rfd with Unix.Unix_error _ -> ());
        (* drop the read ends of sibling pipes so a sibling's EOF is
           seen as soon as that sibling exits *)
        List.iter
          (fun w -> try Unix.close w.fd with Unix.Unix_error _ -> ())
          !running;
        child_main cfg jobs.(i) ~attempt wfd
      | pid ->
        Unix.close wfd;
        cfg.on_event (Started { job = jobs.(i); attempt });
        let now = Unix.gettimeofday () in
        let deadline =
          if cfg.timeout_s > 0.0 then now +. cfg.timeout_s else infinity
        in
        running :=
          { pid; fd = rfd; buf = Buffer.create 4096; idx = i; attempt;
            started = now; deadline; eof = false }
          :: !running
    in
    let remove w = running := List.filter (fun x -> x.pid <> w.pid) !running in
    let complete w status =
      drain w;
      remove w;
      match status with
      | Unix.WEXITED 0 -> (
        match parse_reply (Buffer.contents w.buf) with
        | Ok (value, telemetry) ->
          succeed w.idx ~attempt:w.attempt ~started:w.started value telemetry
        | Error failure -> fail w.idx ~attempt:w.attempt failure)
      | Unix.WEXITED code ->
        fail w.idx ~attempt:w.attempt
          (Crashed (Printf.sprintf "exit %d" code))
      | Unix.WSIGNALED sg ->
        fail w.idx ~attempt:w.attempt (Crashed (Printf.sprintf "signal %d" sg))
      | Unix.WSTOPPED _ ->
        fail w.idx ~attempt:w.attempt (Crashed "stopped")
    in
    let expire w =
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] w.pid);
      if not w.eof then begin
        w.eof <- true;
        try Unix.close w.fd with Unix.Unix_error _ -> ()
      end;
      remove w;
      fail w.idx ~attempt:w.attempt Timed_out
    in
    let kill_everything () =
      List.iter
        (fun w ->
          (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
          if not w.eof then
            try Unix.close w.fd with Unix.Unix_error _ -> ())
        !running;
      running := []
    in
    let abort_with : failure option ref = ref None in
    try
      while
        !abort_with = None
        && ((not (pending_empty ())) || !running <> [])
      do
        if !interrupted then abort_with := Some Interrupted
        else if Unix.gettimeofday () > batch_deadline then
          abort_with := Some Deadline_exceeded
        else begin
          let now = Unix.gettimeofday () in
          let rec spawn_ready () =
            if List.length !running < cfg.jobs then
              match take_ready now with
              | Some (i, attempt) ->
                spawn i attempt;
                spawn_ready ()
              | None -> ()
          in
          spawn_ready ();
          let now = Unix.gettimeofday () in
          List.iter expire (List.filter (fun w -> now > w.deadline) !running);
          if !running = [] then begin
            (* every pending attempt is backing off *)
            if not (pending_empty ()) then
              Unix.sleepf
                (Float.max 0.001 (Float.min 0.05 (next_wake () -. now)))
          end
          else begin
            let fds =
              List.filter_map
                (fun w -> if w.eof then None else Some w.fd)
                !running
            in
            (if fds = [] then Unix.sleepf 0.002
             else
               let timeout =
                 let next =
                   List.fold_left
                     (fun t w -> Float.min t w.deadline)
                     infinity !running
                 in
                 let next = Float.min next batch_deadline in
                 let next = Float.min next (next_wake ()) in
                 if next = infinity then 0.2
                 else Float.max 0.005 (Float.min 0.2 (next -. now))
               in
               match Unix.select fds [] [] timeout with
               | readable, _, _ ->
                 List.iter
                   (fun w -> if List.mem w.fd readable then read_some w)
                   !running
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            List.iter
              (fun w ->
                match Unix.waitpid [ Unix.WNOHANG ] w.pid with
                | 0, _ -> ()
                | _, status -> complete w status
                | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                  complete w (Unix.WEXITED 0))
              !running
          end
        end
      done;
      match !abort_with with
      | None -> ()
      | Some failure ->
        let reaped = List.map (fun w -> (w.idx, w.attempt)) !running in
        kill_everything ();
        flush_unfinished failure reaped
    with e ->
      kill_everything ();
      raise e
  in

  Fun.protect ~finally:restore_signals (fun () ->
      if pending_empty () then ()
      else if cfg.jobs <= 1 then sequential ()
      else
        match (cfg.strategy, effective_strategy cfg) with
        | Auto, Domains when n < cfg.min_domain_jobs ->
          (* min-work cutoff: Auto resolved to domains, but the batch
             is too small to amortise the pool *)
          Telemetry.Counter.inc m_min_work_seq;
          sequential ()
        | _, Domains -> domains ()
        | _, (Processes | Auto) ->
          (* OCaml 5 refuses [Unix.fork] once any domain has ever been
             spawned in the process, so a fork strategy after a domain
             run degrades to the sequential path (which honours
             timeouts-at-completion, capture and signals) rather than
             dying on the first fork. *)
          if Sys.unix && not (Par.Domain_pool.fork_unavailable ()) then
            forked ()
          else sequential ());

  let stats = freeze acc in
  mirror_to_telemetry stats;
  ( Array.to_list
      (Array.mapi
         (fun i job ->
           match results.(i) with
           | Some outcome -> { job; outcome }
           | None ->
             (* unreachable: every scheduled job ends in [finished] *)
             { job;
               outcome =
                 Failed
                   { attempts = 0; last = Crashed "lost"; quarantined = false }
             })
         jobs),
    stats )
