(** Parallel job runner: fan a batch of independent jobs out over a
    pool of forked worker processes, with a content-addressed result
    cache, per-job timeout and retry, and crash isolation — a worker
    dying on one job never takes the batch down.

    The unit of work is a {!job}: an id, an optional cache key, and a
    closure producing a JSON value. With [jobs > 1] each attempt runs
    in a freshly forked child ([Unix.fork] + a pipe), so a segfault,
    [exit], OOM kill or runaway loop in one job is contained and
    simply retried; [jobs = 1] (or a non-Unix host) degrades to
    in-process sequential execution where only exceptions are
    containable. Results come back over the pipe as one JSON line per
    worker, length-unbounded (the parent drains pipes with [select]
    while workers run, so a large result cannot deadlock the pool).

    When a {!Cache.t} is supplied, jobs whose key hits are answered
    without spawning anything, and freshly computed values are stored
    on completion — so an identical re-run does zero recomputation.

    Telemetry: with [capture_telemetry] each worker resets + enables
    telemetry around its job and ships the resulting metrics snapshot
    (span tree, counters) back beside the value; pool-level counts are
    mirrored into the process-wide telemetry counters
    ([runner.jobs.scheduled], [runner.jobs.computed],
    [runner.cache.hit], [runner.cache.miss], [runner.worker.crash],
    [runner.worker.timeout], [runner.retry], [runner.jobs.failed])
    when telemetry is enabled. In sequential mode the capture
    necessarily resets the {e global} telemetry state around every
    job; callers that interleave their own spans with a sequential
    captured run should expect them to be cleared. *)

module Cache : module type of Cache

type job = {
  id : string;  (** for events and reports; need not be unique *)
  cache_key : string option;  (** [None] = never cached *)
  run : attempt:int -> Telemetry.Json.t;
      (** The work. [attempt] is 1-based and increments on retry.
          Runs in a forked child when [jobs > 1]. *)
}

type failure =
  | Crashed of string  (** worker died: signal, nonzero exit, garbled reply *)
  | Timed_out
  | Job_error of string  (** the closure raised *)

val failure_to_string : failure -> string

type outcome =
  | Done of {
      value : Telemetry.Json.t;
      telemetry : Telemetry.Json.t option;
          (** the worker's metrics snapshot (or the one stored beside
              a cached value) when capture is on *)
      from_cache : bool;
      attempts : int;  (** 0 when served from cache *)
      duration_s : float;  (** wall clock of the successful attempt *)
    }
  | Failed of { attempts : int; last : failure }

type result = { job : job; outcome : outcome }

type event =
  | Started of { job : job; attempt : int }
  | Attempt_failed of {
      job : job;
      attempt : int;
      failure : failure;
      will_retry : bool;
    }
  | Finished of { job : job; outcome : outcome }
      (** exactly once per job, cache hits included *)

type stats = {
  scheduled : int;  (** total jobs submitted *)
  cache_hits : int;
  cache_misses : int;  (** jobs that had a key but no entry *)
  computed : int;  (** attempts that produced a value *)
  crashes : int;
  timeouts : int;
  retries : int;
  failed : int;  (** jobs with no value after all attempts *)
}

val stats_to_json : stats -> Telemetry.Json.t

type config = {
  jobs : int;  (** max concurrent workers; [<= 1] = in-process *)
  timeout_s : float;  (** per attempt; [<= 0] = none (forked mode only) *)
  retries : int;  (** extra attempts after the first *)
  cache : Cache.t option;
  capture_telemetry : bool;
  on_event : event -> unit;  (** called in the parent, in scheduling order *)
}

val default_config : config
(** [jobs = 1], no timeout, [retries = 1], no cache, no capture,
    events ignored. *)

val run : ?config:config -> job list -> result list * stats
(** Run every job; results come back in submission order regardless of
    completion order. Never raises for a job-level failure — those are
    [Failed] outcomes; [run] itself only raises on pool-level misuse
    (and then reaps every live worker first). *)
