(** Parallel job runner: fan a batch of independent jobs out over a
    pool of forked worker processes, with a content-addressed result
    cache, a checkpoint journal, per-job timeout and retry, and crash
    isolation — a worker dying on one job never takes the batch down.

    The unit of work is a {!job}: an id, an optional cache key, and a
    closure producing a JSON value. With [jobs > 1] each attempt runs
    in a freshly forked child ([Unix.fork] + a pipe), so a segfault,
    [exit], OOM kill or runaway loop in one job is contained and
    simply retried; [jobs = 1] (or a non-Unix host) degrades to
    in-process sequential execution where only exceptions are
    containable. Results come back over the pipe as one JSON line per
    worker, length-unbounded (the parent drains pipes with [select]
    while workers run, so a large result cannot deadlock the pool).

    Resilience knobs, all defaulting to the forgiving PR-2 behaviour:
    retries wait [backoff_s * 2^(attempt-1)] (capped at
    [backoff_max_s]) scaled by a deterministic per-(job, attempt)
    jitter in [0.5, 1.0); [deadline_s > 0] bounds the {e whole batch}
    — when it expires, live workers are reaped and every unfinished
    job fails with [Deadline_exceeded]; a job failing with the {e same}
    failure string [poison_threshold] times in a row is quarantined
    (failed with [quarantined = true], no further retries) instead of
    burning the retry budget on a deterministic crasher; with
    [handle_signals], SIGINT/SIGTERM reap all children and return the
    partial results ([Interrupted] failures) instead of killing the
    process, so callers can still flush a report.

    When a {!Cache.t} is supplied, jobs whose key hits are answered
    without spawning anything, and freshly computed values are stored
    on completion — so an identical re-run does zero recomputation.
    A {!Journal.t} additionally records every finished job as a
    flushed JSON line; on a resumed journal, recorded jobs are served
    from it ({!stats}[.journal_hits]) before the cache is even
    consulted, which is what gives [sweep --resume] restart-from-kill.

    Chaos engineering: the worker paths honour the {!Fault_inject}
    sites ([Child_crash], [Child_exit], [Child_hang],
    [Truncated_write]; the cache honours [Corrupt_cache]) so every
    recovery path above can be exercised deterministically in tests.

    Telemetry: with [capture_telemetry] each worker resets + enables
    telemetry around its job and ships the resulting metrics snapshot
    (span tree, counters) back beside the value; pool-level counts are
    mirrored into the process-wide telemetry counters
    ([runner.jobs.scheduled], [runner.jobs.computed],
    [runner.cache.hit], [runner.cache.miss], [runner.journal.hit],
    [runner.worker.crash], [runner.worker.timeout],
    [runner.worker.quarantined], [runner.retry], [runner.jobs.failed],
    [runner.interrupted]) when telemetry is enabled. In sequential
    mode the capture necessarily resets the {e global} telemetry state
    around every job; callers that interleave their own spans with a
    sequential captured run should expect them to be cleared. *)

module Cache : module type of Cache
module Fault_inject : module type of Fault_inject
module Journal : module type of Journal

type job = {
  id : string;  (** for events and reports; need not be unique *)
  cache_key : string option;  (** [None] = never cached *)
  run : attempt:int -> Telemetry.Json.t;
      (** The work. [attempt] is 1-based and increments on retry.
          Runs in a forked child when [jobs > 1]. *)
}

type failure =
  | Crashed of string  (** worker died: signal, nonzero exit, garbled reply *)
  | Timed_out
  | Job_error of string  (** the closure raised *)
  | Interrupted  (** batch stopped by SIGINT/SIGTERM before this job finished *)
  | Deadline_exceeded  (** batch deadline expired before this job finished *)

val failure_to_string : failure -> string

type outcome =
  | Done of {
      value : Telemetry.Json.t;
      telemetry : Telemetry.Json.t option;
          (** the worker's metrics snapshot (or the one stored beside
              a cached value) when capture is on *)
      from_cache : bool;  (** served by the cache or the journal *)
      attempts : int;  (** 0 when served from cache/journal *)
      duration_s : float;  (** wall clock of the successful attempt *)
    }
  | Failed of {
      attempts : int;
      last : failure;
      quarantined : bool;
          (** stopped by poison detection rather than retry exhaustion *)
    }

type result = { job : job; outcome : outcome }

type event =
  | Started of { job : job; attempt : int }
  | Attempt_failed of {
      job : job;
      attempt : int;
      failure : failure;
      will_retry : bool;
    }
  | Finished of { job : job; outcome : outcome }
      (** exactly once per job, cache hits included *)

type stats = {
  scheduled : int;  (** total jobs submitted *)
  cache_hits : int;
  cache_misses : int;  (** jobs that had a key but no entry *)
  journal_hits : int;  (** jobs served from a resumed checkpoint journal *)
  computed : int;  (** attempts that produced a value *)
  crashes : int;
  timeouts : int;
  retries : int;
  quarantined : int;  (** jobs stopped by poison detection *)
  failed : int;  (** jobs with no value after all attempts *)
  interrupted : bool;  (** the batch was cut short by SIGINT/SIGTERM *)
}

val stats_to_json : stats -> Telemetry.Json.t

type strategy =
  | Processes
      (** every attempt in a freshly forked child: full crash/timeout
          isolation, per-worker telemetry capture, chaos injection *)
  | Domains
      (** attempts fan out over an in-process {!Par.Domain_pool}: no
          fork/pipe/serialisation cost, shared page cache — but no
          per-attempt timeout (a domain cannot be killed), no telemetry
          capture, and {e no crash isolation}: a job that aborts the
          process takes the whole run with it. Exceptions are still
          contained per job. Spawning a domain also permanently
          disables [Unix.fork] in the process (an OCaml 5 rule), so
          any fork-based work must happen first. *)
  | Auto
      (** {!Processes} whenever a process-only capability is requested
          ([timeout_s > 0], [capture_telemetry], [handle_signals], or
          active fault injection); plain batches run on {!Domains}. *)

val strategy_to_string : strategy -> string

val strategy_of_string : string -> strategy option
(** Accepts ["processes"]/["process"]/["fork"], ["domains"]/["domain"],
    ["auto"]. *)

type config = {
  jobs : int;  (** max concurrent workers; [<= 1] = in-process *)
  strategy : strategy;
      (** how [jobs > 1] attempts execute. If forking is impossible
          (non-Unix, or a domain was already spawned in this process),
          a {!Processes} choice degrades to the sequential in-process
          path rather than failing. *)
  min_domain_jobs : int;
      (** min-work cutoff for [Auto] only: when [Auto] resolves to
          {!Domains} but the batch has fewer jobs than this, run
          sequentially instead (pool spawn/teardown would dominate)
          and count the decision in [runner.min_work_seq]. An explicit
          {!Domains} strategy is always honoured. *)
  timeout_s : float;  (** per attempt; [<= 0] = none (forked mode only) *)
  retries : int;  (** extra attempts after the first *)
  backoff_s : float;
      (** base retry delay; [<= 0] = retry immediately (the default) *)
  backoff_max_s : float;  (** cap on the exponential backoff *)
  deadline_s : float;  (** whole-batch budget; [<= 0] = none *)
  poison_threshold : int;
      (** consecutive identical failures before quarantine; [<= 0] = off *)
  handle_signals : bool;
      (** catch SIGINT/SIGTERM, reap children, return partial results *)
  cache : Cache.t option;
  journal : Journal.t option;
  capture_telemetry : bool;
  on_event : event -> unit;  (** called in the parent, in scheduling order *)
}

val default_config : config
(** [jobs = 1], [strategy = Processes] (a bare config keeps the crash
    isolation it always had — [Auto]/[Domains] are explicit opt-ins),
    [min_domain_jobs = 4], no timeout, [retries = 1], no backoff, no deadline,
    [poison_threshold = 3], signals not handled, no cache, no journal,
    no capture, events ignored. *)

val effective_strategy : config -> strategy
(** The strategy [run] will actually use for [jobs > 1]: resolves
    [Auto] per the heuristic above (never returns [Auto]). Exposed for
    the CLI/daemon to report their choice and for tests. *)

val retry_delay_s : config -> id:string -> attempt:int -> float
(** The exact delay inserted before the retry that follows failed
    [attempt] of job [id] — deterministic, exposed for tests. *)

val run : ?config:config -> job list -> result list * stats
(** Run every job; results come back in submission order regardless of
    completion order. Never raises for a job-level failure — those are
    [Failed] outcomes; [run] itself only raises on pool-level misuse
    (and then reaps every live worker first). *)
