open Netlist

type t = {
  circuit : Circuit.t;
  chains : int array array; (* chains.(k).(pos) = dff node id, pos 0 at scan-in *)
}

let validate_partition c chains =
  let dffs = Circuit.dffs c in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun chain ->
      Array.iter
        (fun id ->
          if not (Gate.equal_kind (Circuit.node c id).Circuit.kind Gate.Dff) then
            invalid_arg "Multi_chain: not a flip-flop";
          if Hashtbl.mem seen id then
            invalid_arg "Multi_chain: flip-flop in two chains";
          Hashtbl.replace seen id ())
        chain)
    chains;
  if Hashtbl.length seen <> Array.length dffs then
    invalid_arg "Multi_chain: chains do not cover every flip-flop"

let of_orders c chains =
  validate_partition c chains;
  { circuit = c; chains = Array.of_list (List.map Array.copy chains) }

let partition c ~chains =
  if chains < 1 then invalid_arg "Multi_chain.partition: chains < 1";
  let dffs = Circuit.dffs c in
  let k = max 1 (min chains (max 1 (Array.length dffs))) in
  let buckets = Array.make k [] in
  Array.iteri (fun i id -> buckets.(i mod k) <- id :: buckets.(i mod k)) dffs;
  {
    circuit = c;
    chains = Array.map (fun l -> Array.of_list (List.rev l)) buckets;
  }

let chain_count t = Array.length t.chains
let chain_lengths t = Array.to_list (Array.map Array.length t.chains)

let shift_cycles_per_vector t =
  Array.fold_left (fun acc ch -> max acc (Array.length ch)) 0 t.chains

type result = {
  cycles : int;
  shift_cycles : int;
  total_toggles : int;
  dynamic_per_hz_uw : float;
  avg_static_uw : float;
  peak_static_uw : float;
}

type session = {
  mc : t;
  sim : Sim.Event_sim.t;
  forced : (int, bool) Hashtbl.t;
  hold : bool;
  states : bool array array; (* per chain, by position *)
  mutable static_sum_shift : float;
  mutable static_sum_capture : float;
  mutable static_peak : float;
  mutable n_shift : int;
  mutable n_capture : int;
}

let pseudo_value s k pos =
  let id = s.mc.chains.(k).(pos) in
  match Hashtbl.find_opt s.forced id with
  | Some v -> v
  | None -> s.states.(k).(pos)

let leakage_now s =
  Power.Leakage.total_leakage_uw s.mc.circuit (Sim.Event_sim.values s.sim)

let after_cycle s ~shift =
  let leak = leakage_now s in
  if shift then begin
    s.static_sum_shift <- s.static_sum_shift +. leak;
    s.n_shift <- s.n_shift + 1
  end
  else begin
    s.static_sum_capture <- s.static_sum_capture +. leak;
    s.n_capture <- s.n_capture + 1
  end;
  if leak > s.static_peak then s.static_peak <- leak

let all_pseudo_changes s =
  let changes = ref [] in
  Array.iteri
    (fun k chain ->
      Array.iteri (fun pos id -> changes := (id, pseudo_value s k pos) :: !changes)
      chain)
    s.mc.chains;
  !changes

(* One global shift cycle: every chain moves by one. [bits.(k)] feeds
   chain k's scan-in; shorter chains that are already fully loaded keep
   shifting their own data around the captured tail (standard padding). *)
let shift_cycle s bits =
  Array.iteri
    (fun k chain ->
      let n = Array.length chain in
      if n > 0 then begin
        for j = n - 1 downto 1 do
          s.states.(k).(j) <- s.states.(k).(j - 1)
        done;
        s.states.(k).(0) <- bits.(k)
      end)
    s.mc.chains;
  if not s.hold then ignore (Sim.Event_sim.set_sources s.sim (all_pseudo_changes s));
  after_cycle s ~shift:true

let split_vector c vec =
  let n_pi = Array.length (Circuit.inputs c) in
  let n_ff = Array.length (Circuit.dffs c) in
  if Array.length vec <> n_pi + n_ff then
    invalid_arg "Multi_chain: vector length mismatch";
  (Array.sub vec 0 n_pi, Array.sub vec n_pi n_ff)

let run ?init_state mc ~(policy : Scan_sim.policy) ~vectors ~on_response =
  let c = mc.circuit in
  let dffs = Circuit.dffs c in
  let dff_index = Hashtbl.create 16 in
  Array.iteri (fun i id -> Hashtbl.replace dff_index id i) dffs;
  let forced = Hashtbl.create 8 in
  List.iter
    (fun (id, v) ->
      if not (Hashtbl.mem dff_index id) then
        invalid_arg "Multi_chain: forced node is not a flip-flop";
      Hashtbl.replace forced id v)
    policy.Scan_sim.forced_pseudo;
  let init =
    match init_state with
    | None -> Array.make (Array.length dffs) false
    | Some st ->
      if Array.length st <> Array.length dffs then
        invalid_arg "Multi_chain: init state length mismatch";
      st
  in
  let states =
    Array.map
      (fun chain -> Array.map (fun id -> init.(Hashtbl.find dff_index id)) chain)
      mc.chains
  in
  let s =
    {
      mc;
      sim = Sim.Event_sim.create c;
      forced;
      hold = policy.Scan_sim.hold_previous_capture;
      states;
      static_sum_shift = 0.0;
      static_sum_capture = 0.0;
      static_peak = 0.0;
      n_shift = 0;
      n_capture = 0;
    }
  in
  let pis = Circuit.inputs c in
  (match policy.Scan_sim.pi_during_shift with
  | Some p when Array.length p <> Array.length pis ->
    invalid_arg "Multi_chain: shift PI pattern length mismatch"
  | Some _ | None -> ());
  let shift_pi test_pi =
    match policy.Scan_sim.pi_during_shift with
    | Some p -> p
    | None -> test_pi
  in
  let first_pi =
    match vectors with
    | [] -> Array.make (Array.length pis) false
    | v :: _ -> fst (split_vector c v)
  in
  let pi_pos = Hashtbl.create 16 in
  Array.iteri (fun i id -> Hashtbl.replace pi_pos id i) pis;
  let init_pi = shift_pi first_pi in
  Sim.Event_sim.init s.sim (fun id ->
      match Hashtbl.find_opt pi_pos id with
      | Some i -> init_pi.(i)
      | None ->
        let chain_pos = ref (false, 0, 0) in
        Array.iteri
          (fun k chain ->
            Array.iteri (fun pos cell -> if cell = id then chain_pos := (true, k, pos)) chain)
          mc.chains;
        let found, k, pos = !chain_pos in
        assert found;
        pseudo_value s k pos);
  let pi_changes values =
    Array.to_list (Array.mapi (fun i id -> (id, values.(i))) pis)
  in
  let n_shifts = shift_cycles_per_vector mc in
  List.iter
    (fun vec ->
      let pi, target = split_vector c vec in
      ignore (Sim.Event_sim.set_sources s.sim (pi_changes (shift_pi pi)));
      (* serialise each chain's target state; short chains get their
         bits during the last cycles so they land aligned at capture *)
      for cycle = 0 to n_shifts - 1 do
        let bits =
          Array.map
            (fun chain ->
              let n = Array.length chain in
              let k = cycle - (n_shifts - n) in
              (* bit entering at relative cycle k lands at position n-1-k *)
              if k < 0 || n = 0 then false
              else target.(Hashtbl.find dff_index chain.(n - 1 - k)))
            mc.chains
        in
        shift_cycle s bits
      done;
      (* capture: connect every pseudo-input to its cell and apply pi *)
      let changes = ref (pi_changes pi) in
      Array.iteri
        (fun k chain ->
          Array.iteri
            (fun pos _ ->
              changes := (mc.chains.(k).(pos), s.states.(k).(pos)) :: !changes)
            chain)
        mc.chains;
      ignore (Sim.Event_sim.set_sources s.sim !changes);
      after_cycle s ~shift:false;
      let values = Sim.Event_sim.values s.sim in
      let response =
        Array.map (fun id -> values.((Circuit.node c id).Circuit.fanins.(0))) dffs
      in
      (* write the response back into the chains *)
      Array.iteri
        (fun k chain ->
          Array.iteri
            (fun pos id ->
              s.states.(k).(pos) <- response.(Hashtbl.find dff_index id))
            chain)
        mc.chains;
      on_response response)
    vectors;
  if vectors <> [] then begin
    ignore (Sim.Event_sim.set_sources s.sim (pi_changes (shift_pi first_pi)));
    for _ = 1 to n_shifts do
      shift_cycle s (Array.make (chain_count mc) false)
    done
  end;
  s

let measure ?init_state mc ~policy ~vectors =
  let s = run ?init_state mc ~policy ~vectors ~on_response:(fun _ -> ()) in
  let cycles = max 1 (s.n_shift + s.n_capture) in
  let dynamic =
    Power.Switching.of_toggles mc.circuit
      ~toggles:(Sim.Event_sim.toggle_counts s.sim)
      ~cycles
  in
  {
    cycles;
    shift_cycles = s.n_shift;
    total_toggles = Sim.Event_sim.total_toggles s.sim;
    dynamic_per_hz_uw = dynamic.Power.Switching.dynamic_per_hz_uw;
    avg_static_uw =
      (if s.n_shift = 0 then 0.0
       else s.static_sum_shift /. float_of_int s.n_shift);
    peak_static_uw = s.static_peak;
  }

let responses ?init_state mc ~policy ~vectors =
  let acc = ref [] in
  let _ =
    run ?init_state mc ~policy ~vectors ~on_response:(fun r ->
        acc := Array.copy r :: !acc)
  in
  List.rev !acc
