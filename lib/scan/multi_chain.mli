(** Multiple parallel scan chains.

    Production designs split the flip-flops over several chains fed by
    parallel scan-in pins, dividing shift time by the chain count. The
    paper evaluates a single chain; this module generalises the power
    measurement so the trade-off (shorter shift phases concentrate the
    same data into fewer, busier cycles) can be studied.

    Semantics per test vector: [ceil(max chain length)] shift cycles
    move every chain simultaneously, then one capture cycle applies the
    test's PI part — a direct generalisation of {!Scan_sim}, and
    identical to it for a single chain. *)

open Netlist

type t

val partition : Circuit.t -> chains:int -> t
(** Round-robin partition of [Circuit.dffs] into [chains] chains
    (clamped to [1 .. n_ff]); chain 0 gets cells 0, k, 2k, ...
    @raise Invalid_argument if the circuit has no flip-flops and
    [chains > 0] is requested with [chains < 1]. *)

val of_orders : Circuit.t -> int array list -> t
(** Explicit chains; together they must form a partition of the
    flip-flops.
    @raise Invalid_argument otherwise. *)

val chain_count : t -> int

val chain_lengths : t -> int list

val shift_cycles_per_vector : t -> int
(** Length of the longest chain. *)

type result = {
  cycles : int;
  shift_cycles : int;
  total_toggles : int;
  dynamic_per_hz_uw : float;
  avg_static_uw : float;  (** mean leakage over shift cycles *)
  peak_static_uw : float;
}

val measure :
  ?init_state:bool array ->
  t ->
  policy:Scan_sim.policy ->
  vectors:bool array list ->
  result
(** [init_state] is indexed in [Circuit.dffs] order. Vectors are
    positional over [Circuit.sources] as everywhere else. *)

val responses :
  ?init_state:bool array ->
  t ->
  policy:Scan_sim.policy ->
  vectors:bool array list ->
  bool array list
(** Captured next-state per vector, in [Circuit.dffs] order. *)
