open Netlist

type t = {
  circuit : Circuit.t;
  order : int array;
  positions : (int, int) Hashtbl.t;
}

let build c order =
  let positions = Hashtbl.create (Array.length order) in
  Array.iteri (fun pos id -> Hashtbl.replace positions id pos) order;
  { circuit = c; order = Array.copy order; positions }

let natural c = build c (Circuit.dffs c)

let of_order c order =
  let dffs = Circuit.dffs c in
  if Array.length order <> Array.length dffs then
    invalid_arg "Scan_chain.of_order: wrong length";
  let expected = Hashtbl.create 16 in
  Array.iter (fun id -> Hashtbl.replace expected id ()) dffs;
  Array.iter
    (fun id ->
      if not (Hashtbl.mem expected id) then
        invalid_arg "Scan_chain.of_order: not a permutation of the flip-flops";
      Hashtbl.remove expected id)
    order;
  build c order

let circuit t = t.circuit
let length t = Array.length t.order
let cells t = Array.copy t.order
let cell_at t i = t.order.(i)
let position_of t id = Hashtbl.find t.positions id

(* After n shifts (cell.(j) <- cell.(j-1), cell.(0) <- input), the bit
   entering at cycle k lands in chain position n-1-k. *)
let shift_in_sequence t target =
  let n = length t in
  if Array.length target <> n then
    invalid_arg "Scan_chain.shift_in_sequence: wrong target length";
  List.init n (fun k -> target.(n - 1 - k))
