(** Full-scan chain over a circuit's flip-flops.

    The paper performs no scan-cell reordering, so the default chain
    follows declaration order; alternative orders are supported for
    experiments. *)

open Netlist

type t

val natural : Circuit.t -> t
(** Chain in [Circuit.dffs] order; index 0 is nearest scan-in. *)

val of_order : Circuit.t -> int array -> t
(** @raise Invalid_argument unless the array is a permutation of
    [Circuit.dffs]. *)

val circuit : t -> Circuit.t

val length : t -> int

val cells : t -> int array
(** Flip-flop node ids, scan-in end first (copy). *)

val cell_at : t -> int -> int

val position_of : t -> int -> int
(** Chain position of a flip-flop node id.
    @raise Not_found if the node is not in the chain. *)

val shift_in_sequence : t -> bool array -> bool list
(** The serial bit sequence (first bit first) that loads the given
    target state (indexed by chain position) after [length] shifts. *)
