open Netlist

let m_sessions = Telemetry.Counter.make "scan.sim.sessions"
let m_cycles = Telemetry.Counter.make "scan.sim.cycles"
let m_toggles = Telemetry.Counter.make "scan.sim.toggles"

type policy = {
  pi_during_shift : bool array option;
  forced_pseudo : (int * bool) list;
  hold_previous_capture : bool;
}

let traditional =
  { pi_during_shift = None; forced_pseudo = []; hold_previous_capture = false }

let enhanced_scan =
  { pi_during_shift = None; forced_pseudo = []; hold_previous_capture = true }

type engine = Scalar | Packed

type result = {
  cycles : int;
  shift_cycles : int;
  toggles : int array;
  total_toggles : int;
  per_cycle_toggles : int array;
  dynamic : Power.Switching.report;
  avg_static_uw : float;
  peak_static_uw : float;
  avg_capture_static_uw : float;
}

(* Split a source vector into its PI part and its chain-position-indexed
   state part. *)
let split_vector c chain vec =
  let n_pi = Array.length (Circuit.inputs c) in
  let n_ff = Array.length (Circuit.dffs c) in
  if Array.length vec <> n_pi + n_ff then
    invalid_arg "Scan_sim: vector length mismatch";
  let pi = Array.sub vec 0 n_pi in
  let dffs = Circuit.dffs c in
  (* vec's state part is in Circuit.dffs order; re-index by chain position *)
  let by_pos = Array.make n_ff false in
  Array.iteri
    (fun i id -> by_pos.(Scan_chain.position_of chain id) <- vec.(n_pi + i))
    dffs;
  (pi, by_pos)

type session = {
  circuit : Circuit.t;
  chain : Scan_chain.t;
  policy : policy;
  sim : Sim.Event_sim.t;
  forced : (int, bool) Hashtbl.t;
  mutable chain_state : bool array; (* by chain position *)
  mutable static_sum_shift : float;
  mutable static_sum_capture : float;
  mutable static_peak : float;
  mutable n_shift : int;
  mutable n_capture : int;
  (* incremental leakage bookkeeping: per-gate current leakage and the
     running total, updated only for gates whose fanins toggled *)
  gate_leak_na : float array;
  mutable total_leak_na : float;
  touched_stamp : int array;
  mutable stamp : int;
  mutable toggles_at_last_cycle : int;
  mutable cycle_toggles_rev : int list;
}

(* Recompute every gate's leakage from the simulator's values. *)
let rebuild_leakage s =
  let values = Sim.Event_sim.values s.sim in
  s.total_leak_na <- 0.0;
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then begin
        let l = Power.Leakage.gate_leakage_na s.circuit values nd.Circuit.id in
        s.gate_leak_na.(nd.Circuit.id) <- l;
        s.total_leak_na <- s.total_leak_na +. l
      end)
    (Circuit.nodes s.circuit)

(* Refresh only the gates reading a node that toggled this cycle. *)
let refresh_leakage s =
  let values = Sim.Event_sim.values s.sim in
  s.stamp <- s.stamp + 1;
  let stamp = s.stamp in
  Sim.Event_sim.iter_last_changes s.sim (fun id ->
      Array.iter
        (fun succ ->
          if s.touched_stamp.(succ) <> stamp then begin
            s.touched_stamp.(succ) <- stamp;
            let nd = Circuit.node s.circuit succ in
            if Gate.is_logic nd.Circuit.kind then begin
              let l = Power.Leakage.gate_leakage_na s.circuit values succ in
              s.total_leak_na <-
                s.total_leak_na -. s.gate_leak_na.(succ) +. l;
              s.gate_leak_na.(succ) <- l
            end
          end)
        (Circuit.node s.circuit id).Circuit.fanouts)

let leakage_now s = s.total_leak_na *. Techlib.Leakage_table.vdd /. 1000.0

let after_cycle s ~capture =
  let total = Sim.Event_sim.total_toggles s.sim in
  s.cycle_toggles_rev <- (total - s.toggles_at_last_cycle) :: s.cycle_toggles_rev;
  s.toggles_at_last_cycle <- total;
  let leak = leakage_now s in
  if capture then begin
    s.static_sum_capture <- s.static_sum_capture +. leak;
    s.n_capture <- s.n_capture + 1
  end
  else begin
    s.static_sum_shift <- s.static_sum_shift +. leak;
    s.n_shift <- s.n_shift + 1
  end;
  if leak > s.static_peak then s.static_peak <- leak

(* Pseudo-input value presented to the logic for the flip-flop at chain
   position [pos] while Shift Enable is high. *)
let shift_value s pos =
  let id = Scan_chain.cell_at s.chain pos in
  match Hashtbl.find_opt s.forced id with
  | Some v -> v
  | None -> s.chain_state.(pos)

(* every source application immediately folds its toggles into the
   leakage bookkeeping, so consecutive change sets are never lost *)
let apply_sources s changes =
  ignore (Sim.Event_sim.set_sources s.sim changes);
  refresh_leakage s

let pi_changes c pi_values =
  Array.to_list
    (Array.mapi (fun i id -> (id, pi_values.(i))) (Circuit.inputs c))

(* One shift cycle: the chain moves by one, scan-in receives [bit].
   With [hold_previous_capture] (enhanced scan: hold latches at every
   scan-cell output) the pseudo-inputs keep their captured values while
   the chain ripples internally, so the logic sees no shift activity at
   all. *)
let shift_cycle s bit =
  let n = Array.length s.chain_state in
  let next = Array.make n false in
  next.(0) <- bit;
  for j = 1 to n - 1 do
    next.(j) <- s.chain_state.(j - 1)
  done;
  s.chain_state <- next;
  if not s.policy.hold_previous_capture then begin
    let changes = ref [] in
    for pos = 0 to n - 1 do
      let id = Scan_chain.cell_at s.chain pos in
      changes := (id, shift_value s pos) :: !changes
    done;
    apply_sources s !changes
  end;
  after_cycle s ~capture:false

(* Capture cycle: multiplexers select the scan cells again, the test's
   PI part is applied, the logic settles and the response is captured
   back into the chain. *)
let capture_cycle s pi_values =
  let c = s.circuit in
  let n = Array.length s.chain_state in
  let changes = ref (pi_changes c pi_values) in
  for pos = 0 to n - 1 do
    let id = Scan_chain.cell_at s.chain pos in
    changes := (id, s.chain_state.(pos)) :: !changes
  done;
  apply_sources s !changes;
  after_cycle s ~capture:true;
  (* capture: chain now holds the combinational response *)
  let values = Sim.Event_sim.values s.sim in
  let response = Array.make n false in
  Array.iter
    (fun id ->
      let d = (Circuit.node c id).Circuit.fanins.(0) in
      response.(Scan_chain.position_of s.chain id) <- values.(d))
    (Circuit.dffs c);
  s.chain_state <- response;
  response

let make_session ?init_state c chain policy =
  let n_ff = Scan_chain.length chain in
  let forced = Hashtbl.create 8 in
  List.iter
    (fun (id, v) ->
      if not (Gate.equal_kind (Circuit.node c id).Circuit.kind Gate.Dff) then
        invalid_arg "Scan_sim: forced node is not a flip-flop";
      Hashtbl.replace forced id v)
    policy.forced_pseudo;
  (match policy.pi_during_shift with
  | Some p when Array.length p <> Array.length (Circuit.inputs c) ->
    invalid_arg "Scan_sim: shift PI pattern length mismatch"
  | Some _ | None -> ());
  let chain_state =
    match init_state with
    | None -> Array.make n_ff false
    | Some st ->
      if Array.length st <> n_ff then
        invalid_arg "Scan_sim: init state length mismatch";
      Array.copy st
  in
  let sim = Sim.Event_sim.create c in
  {
    circuit = c;
    chain;
    policy;
    sim;
    forced;
    chain_state;
    static_sum_shift = 0.0;
    static_sum_capture = 0.0;
    static_peak = 0.0;
    n_shift = 0;
    n_capture = 0;
    gate_leak_na = Array.make (Circuit.node_count c) 0.0;
    total_leak_na = 0.0;
    touched_stamp = Array.make (Circuit.node_count c) 0;
    stamp = 0;
    toggles_at_last_cycle = 0;
    cycle_toggles_rev = [];
  }

let run ?init_state c chain policy ~vectors ~on_response =
  let s = make_session ?init_state c chain policy in
  let shift_pi current_test_pi =
    match s.policy.pi_during_shift with
    | Some p -> p
    | None -> current_test_pi
  in
  let first_pi =
    match vectors with
    | [] -> Array.make (Array.length (Circuit.inputs c)) false
    | v :: _ -> fst (split_vector c chain v)
  in
  (* initial settle (not counted): shift mode, chain at init state *)
  let init_pi = shift_pi first_pi in
  let pi_ids = Circuit.inputs c in
  let pi_pos = Hashtbl.create 16 in
  Array.iteri (fun i id -> Hashtbl.replace pi_pos id i) pi_ids;
  Sim.Event_sim.init s.sim (fun id ->
      match Hashtbl.find_opt pi_pos id with
      | Some i -> init_pi.(i)
      | None ->
        (* a flip-flop *)
        shift_value s (Scan_chain.position_of chain id));
  rebuild_leakage s;
  List.iter
    (fun vec ->
      let pi, target_state = split_vector c chain vec in
      (* drive the shift-mode PI pattern (counted: it is a real change
         after the previous capture) *)
      apply_sources s (pi_changes c (shift_pi pi));
      List.iter (shift_cycle s) (Scan_chain.shift_in_sequence chain target_state);
      let response = capture_cycle s pi in
      on_response response)
    vectors;
  (* final shift-out of the last response (scan-in pumped with zeros) *)
  if vectors <> [] then begin
    apply_sources s (pi_changes c (shift_pi first_pi));
    for _ = 1 to Scan_chain.length chain do
      shift_cycle s false
    done
  end;
  (* invariant: the incremental leakage total equals a full recompute *)
  let accumulated = s.total_leak_na in
  rebuild_leakage s;
  assert (
    Float.abs (accumulated -. s.total_leak_na)
    < 1e-6 *. Float.max 1.0 s.total_leak_na);
  Telemetry.Counter.inc m_sessions;
  Telemetry.Counter.add m_cycles (s.n_shift + s.n_capture);
  Telemetry.Counter.add m_toggles (Sim.Event_sim.total_toggles s.sim);
  s

(* ------------------------------------------------------------------ *)
(* Packed engine: 64 cycles per 64-bit word.                           *)
(*                                                                     *)
(* The scalar protocol is a sequence of settled states: an uncounted   *)
(* initial settle, then per vector a silent source pre-application     *)
(* (the shift-mode PI pattern), [n_ff] shift cycles and one capture,   *)
(* and a final shift-out segment.  Because the event simulator          *)
(* evaluates every node at most once per change set, the toggles of a  *)
(* cycle equal the Hamming distance between consecutive settled        *)
(* states — so packing 64 consecutive settled states per word and      *)
(* popcounting lane-to-lane XORs reproduces the scalar counts bit for  *)
(* bit.                                                                *)
(*                                                                     *)
(* The one wrinkle is the silent pre-application: the scalar run       *)
(* settles it as its own state (a node may toggle there and toggle     *)
(* back in shift cycle 1, counting twice) but snapshots no leakage and *)
(* appends no per-cycle entry for it.  It is therefore modelled as a   *)
(* distinct lane whose toggles merge into the next counted cycle.      *)
(*                                                                     *)
(* During shift, the flip-flop pseudo-input at chain position [j]      *)
(* after [k] shifts is a pure function of the pre-shift chain contents *)
(* S0 and the scan-in bits b: it equals A.(n-1-j+k) of the stream      *)
(* A = [S0.(n-1); ...; S0.(0); b1; ...; bn].  Each flip-flop's shift   *)
(* lanes are thus a 64-bit window into the packed stream — no          *)
(* per-cycle chain array is materialised.                              *)
(* ------------------------------------------------------------------ *)

type packed_stats = {
  p_toggles : int array;
  p_total : int;
  p_per_cycle : int array;
  p_n_shift : int;
  p_n_capture : int;
  p_sum_shift : float;
  p_sum_capture : float;
  p_peak : float;
}

(* Lanes [lo..hi] inclusive (within 0..63); 0L when empty. *)
let mask_bits lo hi =
  if lo > hi then 0L
  else begin
    let width = hi - lo + 1 in
    let m =
      if width = 64 then Int64.minus_one
      else Int64.sub (Int64.shift_left 1L width) 1L
    in
    Int64.shift_left m lo
  end

(* 64-bit window of a packed bit stream starting at bit [off]. *)
let window (a : int64 array) off =
  let w = off lsr 6 and b = off land 63 in
  if b = 0 then a.(w)
  else
    Int64.logor
      (Int64.shift_right_logical a.(w) b)
      (Int64.shift_left a.(w + 1) (64 - b))

(* Native-int 32-lane halves of a word, for hot scan loops where boxed
   int64 refs would allocate on every assignment. *)
let lo32 (w : int64) = Int64.to_int (Int64.logand w 0xFFFFFFFFL)
let hi32 (w : int64) = Int64.to_int (Int64.shift_right_logical w 32)

let run_packed ?(width = 1) ?init_state c chain policy ~vectors ~on_response =
  let n_ff = Scan_chain.length chain in
  let n_nodes = Circuit.node_count c in
  (* same validations (and failure messages) as the scalar session *)
  let forced_by_pos = Array.make (max n_ff 1) None in
  List.iter
    (fun (id, v) ->
      if not (Gate.equal_kind (Circuit.node c id).Circuit.kind Gate.Dff) then
        invalid_arg "Scan_sim: forced node is not a flip-flop";
      forced_by_pos.(Scan_chain.position_of chain id) <- Some v)
    policy.forced_pseudo;
  (match policy.pi_during_shift with
  | Some p when Array.length p <> Array.length (Circuit.inputs c) ->
    invalid_arg "Scan_sim: shift PI pattern length mismatch"
  | Some _ | None -> ());
  let chain_state =
    match init_state with
    | None -> Array.make n_ff false
    | Some st ->
      if Array.length st <> n_ff then
        invalid_arg "Scan_sim: init state length mismatch";
      Array.copy st
  in
  let comp = Compiled.of_circuit c in
  let ps = Sim.Packed_sim.create ~width comp in
  let frame_lanes = Sim.Packed_sim.lanes ps in
  let words = Sim.Packed_sim.words ps in
  let lane_toggles = Sim.Packed_sim.lane_toggles ps in
  let fanin_off = Compiled.fanin_off comp in
  let fanin = Compiled.fanin comp in
  let pi_ids = Circuit.inputs c in
  let ff_by_pos = Array.init n_ff (Scan_chain.cell_at chain) in
  (* per-gate leakage tables (input state -> nA); building them performs
     the same mapped-circuit check as the scalar path *)
  let leak_tbl = Array.make n_nodes [||] in
  let n_leak = ref 0 in
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then
        match Techmap.Mapper.cell_of_node c nd.Circuit.id with
        | None -> ()
        | Some cell ->
          leak_tbl.(nd.Circuit.id) <-
            Array.init (Techlib.Leakage_table.n_states cell) (fun state ->
                Techlib.Leakage_table.leakage_na cell ~state);
          incr n_leak)
    (Circuit.nodes c);
  let leak_gates = Array.make !n_leak 0 in
  let k = ref 0 in
  Array.iter
    (fun nd ->
      if Array.length leak_tbl.(nd.Circuit.id) > 0 then begin
        leak_gates.(!k) <- nd.Circuit.id;
        incr k
      end)
    (Circuit.nodes c);
  let total_na = ref 0.0 in
  let per_cycle_rev = ref [] in
  let silent_acc = ref 0 in
  let n_shift = ref 0 and n_capture = ref 0 in
  let sum_shift = ref 0.0 and sum_capture = ref 0.0 and peak = ref 0.0 in
  (* words are interleaved per node (word [w] of node [id] at
     [id*width + w]); [l] is a lane within word 0 here *)
  let state_at id l =
    let lo = fanin_off.(id) and hi = fanin_off.(id + 1) in
    let s = ref 0 in
    for i = lo to hi - 1 do
      if
        Int64.logand
          (Int64.shift_right_logical words.(fanin.(i) * width) l)
          1L
        <> 0L
      then s := !s lor (1 lsl (i - lo))
    done;
    !s
  in
  (* Bit-sliced leakage counting: gates sharing a leakage table and
     arity form a group; per frame, for every input state, carry-save
     counters over the lane words count how many of the group's gates
     sit in that state at each lane.  Static accounting is then
     O(gates * states) per frame instead of O(gates * lanes), and each
     lane's total is recomputed from scratch (the scalar path
     integrates the same quantity incrementally; they agree to float
     tolerance). *)
  let groups =
    let raw = ref [] in
    Array.iter
      (fun id ->
        let arity = fanin_off.(id + 1) - fanin_off.(id) in
        let tbl = leak_tbl.(id) in
        match List.find_opt (fun (a, t, _) -> a = arity && t = tbl) !raw with
        | Some (_, _, gids) -> gids := id :: !gids
        | None -> raw := (arity, tbl, ref [ id ]) :: !raw)
      leak_gates;
    List.rev_map
      (fun (arity, tbl, gids) ->
        let gs = Array.of_list (List.rev !gids) in
        let n_g = Array.length gs in
        let nbits =
          let b = ref 1 in
          while 1 lsl !b <= n_g do
            incr b
          done;
          !b
        in
        let pins = Array.make (n_g * arity) 0 in
        Array.iteri
          (fun g id ->
            let lo = fanin_off.(id) in
            for p = 0 to arity - 1 do
              pins.((g * arity) + p) <- fanin.(lo + p)
            done)
          gs;
        (arity, tbl, n_g, nbits, pins))
      !raw
    |> Array.of_list
  in
  let max_states =
    Array.fold_left (fun m (_, t, _, _, _) -> max m (Array.length t)) 1 groups
  in
  let max_bits =
    Array.fold_left (fun m (_, _, _, b, _) -> max m b) 1 groups
  in
  let max_arity =
    Array.fold_left (fun m (a, _, _, _, _) -> max m a) 1 groups
  in
  let planes_lo = Array.init max_states (fun _ -> Array.make max_bits 0) in
  let planes_hi = Array.init max_states (fun _ -> Array.make max_bits 0) in
  let pv_lo = Array.make max_arity 0 and pv_hi = Array.make max_arity 0 in
  let na_lane = Array.make frame_lanes 0.0 in
  (* add a 32-lane presence mask into a carry-save counter; everything
     is a native int, so nothing boxes *)
  let cs_add (planes : int array) m =
    let c = ref m and b = ref 0 in
    while !c <> 0 do
      let t = planes.(!b) in
      planes.(!b) <- t lxor !c;
      c := t land !c;
      incr b
    done
  in
  (* Account one stepped frame: merge per-lane toggle counts into the
     per-cycle series and rebuild the per-lane leakage totals.  [base]
     is the segment lane of frame lane 0 (segment lane 0 = the silent
     pre-application), [cap_s] the capture lane (-1 when the segment
     has none). *)
  let account ~base ~count ~cap_s =
    Array.fill na_lane 0 count 0.0;
    (* one pass per frame word: lane [fw*64 + l] of the frame is bit
       [l] of each node's word [fw] *)
    let n_fw = (count + 63) / 64 in
    for fw = 0 to n_fw - 1 do
      let lane0 = fw * 64 in
      let cw = min 64 (count - lane0) in
      let lim_lo = if cw < 32 then cw else 32 in
      let lim_hi = cw - 32 in
      Array.iter
        (fun (arity, tbl, n_g, nbits, pins) ->
          let n_states = Array.length tbl in
          for s = 0 to n_states - 1 do
            Array.fill planes_lo.(s) 0 nbits 0;
            Array.fill planes_hi.(s) 0 nbits 0
          done;
          if arity = 2 then
            for g = 0 to n_g - 1 do
              let w0 = words.((pins.(2 * g) * width) + fw)
              and w1 = words.((pins.((2 * g) + 1) * width) + fw) in
              let v0 = lo32 w0 and v1 = lo32 w1 in
              let n0 = v0 lxor 0xFFFFFFFF and n1 = v1 lxor 0xFFFFFFFF in
              cs_add planes_lo.(0) (n0 land n1);
              cs_add planes_lo.(1) (v0 land n1);
              cs_add planes_lo.(2) (n0 land v1);
              cs_add planes_lo.(3) (v0 land v1);
              let v0 = hi32 w0 and v1 = hi32 w1 in
              let n0 = v0 lxor 0xFFFFFFFF and n1 = v1 lxor 0xFFFFFFFF in
              cs_add planes_hi.(0) (n0 land n1);
              cs_add planes_hi.(1) (v0 land n1);
              cs_add planes_hi.(2) (n0 land v1);
              cs_add planes_hi.(3) (v0 land v1)
            done
          else if arity = 1 then
            for g = 0 to n_g - 1 do
              let w0 = words.((pins.(g) * width) + fw) in
              let v0 = lo32 w0 in
              cs_add planes_lo.(0) (v0 lxor 0xFFFFFFFF);
              cs_add planes_lo.(1) v0;
              let v0 = hi32 w0 in
              cs_add planes_hi.(0) (v0 lxor 0xFFFFFFFF);
              cs_add planes_hi.(1) v0
            done
          else
            for g = 0 to n_g - 1 do
              for p = 0 to arity - 1 do
                let w = words.((pins.((g * arity) + p) * width) + fw) in
                pv_lo.(p) <- lo32 w;
                pv_hi.(p) <- hi32 w
              done;
              for s = 0 to n_states - 1 do
                let m_lo = ref 0xFFFFFFFF and m_hi = ref 0xFFFFFFFF in
                for p = 0 to arity - 1 do
                  if (s lsr p) land 1 = 1 then begin
                    m_lo := !m_lo land pv_lo.(p);
                    m_hi := !m_hi land pv_hi.(p)
                  end
                  else begin
                    m_lo := !m_lo land (pv_lo.(p) lxor 0xFFFFFFFF);
                    m_hi := !m_hi land (pv_hi.(p) lxor 0xFFFFFFFF)
                  end
                done;
                cs_add planes_lo.(s) !m_lo;
                cs_add planes_hi.(s) !m_hi
              done
            done;
          for s = 0 to n_states - 1 do
            let coef = tbl.(s) in
            let pl = planes_lo.(s) in
            for l = 0 to lim_lo - 1 do
              let cnt = ref 0 in
              for b = 0 to nbits - 1 do
                cnt := !cnt lor (((pl.(b) lsr l) land 1) lsl b)
              done;
              if !cnt > 0 then
                na_lane.(lane0 + l) <-
                  na_lane.(lane0 + l) +. (float_of_int !cnt *. coef)
            done;
            let ph = planes_hi.(s) in
            for l = 0 to lim_hi - 1 do
              let cnt = ref 0 in
              for b = 0 to nbits - 1 do
                cnt := !cnt lor (((ph.(b) lsr l) land 1) lsl b)
              done;
              if !cnt > 0 then
                na_lane.(lane0 + 32 + l) <-
                  na_lane.(lane0 + 32 + l) +. (float_of_int !cnt *. coef)
            done
          done)
        groups
    done;
    total_na := na_lane.(count - 1);
    for l = 0 to count - 1 do
      let s = base + l in
      if s = 0 then silent_acc := !silent_acc + lane_toggles.(l)
      else begin
        per_cycle_rev := (lane_toggles.(l) + !silent_acc) :: !per_cycle_rev;
        silent_acc := 0;
        let uw = na_lane.(l) *. Techlib.Leakage_table.vdd /. 1000.0 in
        if s = cap_s then begin
          sum_capture := !sum_capture +. uw;
          incr n_capture
        end
        else begin
          sum_shift := !sum_shift +. uw;
          incr n_shift
        end;
        if uw > !peak then peak := uw
      end
    done
  in
  let shift_pi current =
    match policy.pi_during_shift with Some p -> p | None -> current
  in
  let first_pi =
    match vectors with
    | [] -> Array.make (Array.length pi_ids) false
    | v :: _ -> fst (split_vector c chain v)
  in
  (* currently-applied flip-flop source values, by chain position *)
  let ff_prev =
    Array.init n_ff (fun j ->
        match forced_by_pos.(j) with
        | Some v -> v
        | None -> chain_state.(j))
  in
  (* initial settle (uncounted), in shift mode at the init chain state *)
  let init_pi = shift_pi first_pi in
  Array.iteri
    (fun i id -> words.(id * width) <- (if init_pi.(i) then 1L else 0L))
    pi_ids;
  Array.iteri
    (fun j id -> words.(id * width) <- (if ff_prev.(j) then 1L else 0L))
    ff_by_pos;
  Sim.Packed_sim.step ps ~count:1 ~record:false;
  Array.iter
    (fun id -> total_na := !total_na +. leak_tbl.(id).(state_at id 0))
    leak_gates;
  (* reusable packed shift stream A (see the header comment) *)
  let stream = Array.make (((2 * n_ff) + 63) / 64 + 2) 0L in
  let seg_words = Array.length stream in
  let set_stream i v =
    if v then begin
      let w = i lsr 6 and b = i land 63 in
      stream.(w) <- Int64.logor stream.(w) (Int64.shift_left 1L b)
    end
  in
  (* One segment: lane 0 = silent pre-application of [spi], lanes
     1..n_ff the shift cycles, then (for a test segment, [cap = Some
     (capture_pi, target)]) the capture lane.  [s0] is the chain before
     the first shift, [bits] the scan-in sequence. *)
  let m_ps_a = Array.make width 0L in
  let m_shift_a = Array.make width 0L in
  let m_cap_a = Array.make width 0L in
  let run_segment ~spi ~cap ~s0 ~bits =
    Array.fill stream 0 seg_words 0L;
    for i = 0 to n_ff - 1 do
      set_stream i s0.(n_ff - 1 - i)
    done;
    for m = 1 to n_ff do
      set_stream (n_ff - 1 + m) bits.(m - 1)
    done;
    let has_cap = cap <> None in
    let seg_len = 1 + n_ff + if has_cap then 1 else 0 in
    let cap_s = if has_cap then n_ff + 1 else -1 in
    let base = ref 0 in
    while !base < seg_len do
      let b = !base in
      let count = min frame_lanes (seg_len - b) in
      let n_fw = (count + 63) / 64 in
      (* per-word masks: frame word [fw] carries segment lanes
         [b + fw*64 ..]; [m_ps] = pre-application + shift lanes
         (segment lane <= n_ff), [m_shift] = real shift cycles only
         (segment lanes 1..n_ff), [m_cap] = the capture lane bit *)
      for fw = 0 to n_fw - 1 do
        let bw = b + (fw * 64) in
        let cw = min 64 (count - (fw * 64)) in
        m_ps_a.(fw) <- mask_bits 0 (min (cw - 1) (n_ff - bw));
        m_shift_a.(fw) <- mask_bits (max 0 (1 - bw)) (min (cw - 1) (n_ff - bw));
        let cap_l = cap_s - bw in
        m_cap_a.(fw) <-
          (if has_cap && cap_l >= 0 && cap_l < cw then
             Int64.shift_left 1L cap_l
           else 0L)
      done;
      (match cap with
      | Some (cap_pi, _) ->
        Array.iteri
          (fun i id ->
            let bw0 = id * width in
            for fw = 0 to n_fw - 1 do
              let w = if spi.(i) then m_ps_a.(fw) else 0L in
              words.(bw0 + fw) <-
                (if m_cap_a.(fw) <> 0L && cap_pi.(i) then
                   Int64.logor w m_cap_a.(fw)
                 else w)
            done)
          pi_ids
      | None ->
        Array.iteri
          (fun i id ->
            let bw0 = id * width in
            for fw = 0 to n_fw - 1 do
              words.(bw0 + fw) <- (if spi.(i) then m_ps_a.(fw) else 0L)
            done)
          pi_ids);
      for j = 0 to n_ff - 1 do
        let id = ff_by_pos.(j) in
        let bw0 = id * width in
        for fw = 0 to n_fw - 1 do
          let bw = b + (fw * 64) in
          let w =
            if policy.hold_previous_capture then
              if ff_prev.(j) then m_ps_a.(fw) else 0L
            else begin
              let shifts =
                match forced_by_pos.(j) with
                | Some v -> if v then m_shift_a.(fw) else 0L
                | None ->
                  Int64.logand
                    (window stream (n_ff - 1 - j + bw))
                    m_shift_a.(fw)
              in
              if bw = 0 && ff_prev.(j) then Int64.logor shifts 1L else shifts
            end
          in
          words.(bw0 + fw) <-
            (match cap with
            | Some (_, target) when m_cap_a.(fw) <> 0L && target.(j) ->
              Int64.logor w m_cap_a.(fw)
            | _ -> w)
        done
      done;
      Sim.Packed_sim.step ps ~count ~record:true;
      account ~base:b ~count ~cap_s;
      base := b + count
    done
  in
  List.iter
    (fun vec ->
      let pi, target = split_vector c chain vec in
      let bits = Array.of_list (Scan_chain.shift_in_sequence chain target) in
      run_segment ~spi:(shift_pi pi) ~cap:(Some (pi, target)) ~s0:chain_state
        ~bits;
      (* the capture is the final stepped lane: read the response off the
         D pins *)
      let response = Array.make n_ff false in
      Array.iter
        (fun id ->
          let d = fanin.(fanin_off.(id)) in
          response.(Scan_chain.position_of chain id) <-
            Sim.Packed_sim.final_value ps d)
        (Circuit.dffs c);
      Array.blit target 0 ff_prev 0 n_ff;
      Array.blit response 0 chain_state 0 n_ff;
      on_response response)
    vectors;
  (* final shift-out of the last response (scan-in pumped with zeros) *)
  if vectors <> [] then
    run_segment ~spi:(shift_pi first_pi) ~cap:None ~s0:chain_state
      ~bits:(Array.make n_ff false);
  (* invariant: the incremental leakage total equals a full recompute *)
  let full = ref 0.0 in
  Array.iter
    (fun id ->
      let lo = fanin_off.(id) and hi = fanin_off.(id + 1) in
      let s = ref 0 in
      for i = lo to hi - 1 do
        if Sim.Packed_sim.final_value ps fanin.(i) then
          s := !s lor (1 lsl (i - lo))
      done;
      full := !full +. leak_tbl.(id).(!s))
    leak_gates;
  assert (Float.abs (!total_na -. !full) < 1e-6 *. Float.max 1.0 !full);
  Telemetry.Counter.inc m_sessions;
  Telemetry.Counter.add m_cycles (!n_shift + !n_capture);
  Telemetry.Counter.add m_toggles (Sim.Packed_sim.total_toggles ps);
  {
    p_toggles = Array.copy (Sim.Packed_sim.toggles ps);
    p_total = Sim.Packed_sim.total_toggles ps;
    p_per_cycle = Array.of_list (List.rev !per_cycle_rev);
    p_n_shift = !n_shift;
    p_n_capture = !n_capture;
    p_sum_shift = !sum_shift;
    p_sum_capture = !sum_capture;
    p_peak = !peak;
  }

let measure_scalar ?init_state c chain policy ~vectors =
  let s = run ?init_state c chain policy ~vectors ~on_response:(fun _ -> ()) in
  let toggles = Array.copy (Sim.Event_sim.toggle_counts s.sim) in
  let cycles = s.n_shift + s.n_capture in
  let cycles = max cycles 1 in
  let dynamic = Power.Switching.of_toggles c ~toggles ~cycles in
  {
    cycles;
    shift_cycles = s.n_shift;
    toggles;
    total_toggles = Sim.Event_sim.total_toggles s.sim;
    per_cycle_toggles = Array.of_list (List.rev s.cycle_toggles_rev);
    dynamic;
    avg_static_uw =
      (if s.n_shift = 0 then 0.0
       else s.static_sum_shift /. float_of_int s.n_shift);
    peak_static_uw = s.static_peak;
    avg_capture_static_uw =
      (if s.n_capture = 0 then 0.0
       else s.static_sum_capture /. float_of_int s.n_capture);
  }

(* A packed frame replays one scan segment: load + [n_ff] shifts
   (+ capture), and [Packed_sim.step] evaluates all [width] words of a
   frame no matter how few lanes the segment fills — on a short chain
   a wide machine burns whole words on dead lanes (BENCH: s344 at w8
   ran 0.62x). So the ideal width is just enough words to hold one
   segment, capped at {!Sim.Packed_sim.max_width}. *)
let auto_width chain =
  let seg_lanes = 1 + Scan_chain.length chain + 1 in
  min Sim.Packed_sim.max_width (max 1 ((seg_lanes + 63) / 64))

let resolve_width ?width chain =
  match width with Some w -> w | None -> auto_width chain

let measure_packed ?width ?init_state c chain policy ~vectors =
  let width = resolve_width ?width chain in
  let st =
    run_packed ~width ?init_state c chain policy ~vectors
      ~on_response:(fun _ -> ())
  in
  let cycles = max (st.p_n_shift + st.p_n_capture) 1 in
  let dynamic = Power.Switching.of_toggles c ~toggles:st.p_toggles ~cycles in
  {
    cycles;
    shift_cycles = st.p_n_shift;
    toggles = st.p_toggles;
    total_toggles = st.p_total;
    per_cycle_toggles = st.p_per_cycle;
    dynamic;
    avg_static_uw =
      (if st.p_n_shift = 0 then 0.0
       else st.p_sum_shift /. float_of_int st.p_n_shift);
    peak_static_uw = st.p_peak;
    avg_capture_static_uw =
      (if st.p_n_capture = 0 then 0.0
       else st.p_sum_capture /. float_of_int st.p_n_capture);
  }

let measure ?(engine = Packed) ?width ?init_state c chain policy ~vectors =
  match engine with
  | Scalar -> measure_scalar ?init_state c chain policy ~vectors
  | Packed -> measure_packed ?width ?init_state c chain policy ~vectors

let responses ?(engine = Packed) ?width ?init_state c chain policy ~vectors =
  let acc = ref [] in
  (match engine with
  | Scalar ->
    let (_ : session) =
      run ?init_state c chain policy ~vectors ~on_response:(fun r ->
          acc := Array.copy r :: !acc)
    in
    ()
  | Packed ->
    let width = resolve_width ?width chain in
    let (_ : packed_stats) =
      run_packed ~width ?init_state c chain policy ~vectors
        ~on_response:(fun r -> acc := Array.copy r :: !acc)
    in
    ());
  List.rev !acc
