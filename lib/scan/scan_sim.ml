open Netlist

let m_sessions = Telemetry.Counter.make "scan.sim.sessions"
let m_cycles = Telemetry.Counter.make "scan.sim.cycles"
let m_toggles = Telemetry.Counter.make "scan.sim.toggles"

type policy = {
  pi_during_shift : bool array option;
  forced_pseudo : (int * bool) list;
  hold_previous_capture : bool;
}

let traditional =
  { pi_during_shift = None; forced_pseudo = []; hold_previous_capture = false }

let enhanced_scan =
  { pi_during_shift = None; forced_pseudo = []; hold_previous_capture = true }

type result = {
  cycles : int;
  shift_cycles : int;
  toggles : int array;
  total_toggles : int;
  per_cycle_toggles : int array;
  dynamic : Power.Switching.report;
  avg_static_uw : float;
  peak_static_uw : float;
  avg_capture_static_uw : float;
}

(* Split a source vector into its PI part and its chain-position-indexed
   state part. *)
let split_vector c chain vec =
  let n_pi = Array.length (Circuit.inputs c) in
  let n_ff = Array.length (Circuit.dffs c) in
  if Array.length vec <> n_pi + n_ff then
    invalid_arg "Scan_sim: vector length mismatch";
  let pi = Array.sub vec 0 n_pi in
  let dffs = Circuit.dffs c in
  (* vec's state part is in Circuit.dffs order; re-index by chain position *)
  let by_pos = Array.make n_ff false in
  Array.iteri
    (fun i id -> by_pos.(Scan_chain.position_of chain id) <- vec.(n_pi + i))
    dffs;
  (pi, by_pos)

type session = {
  circuit : Circuit.t;
  chain : Scan_chain.t;
  policy : policy;
  sim : Sim.Event_sim.t;
  forced : (int, bool) Hashtbl.t;
  mutable chain_state : bool array; (* by chain position *)
  mutable static_sum_shift : float;
  mutable static_sum_capture : float;
  mutable static_peak : float;
  mutable n_shift : int;
  mutable n_capture : int;
  (* incremental leakage bookkeeping: per-gate current leakage and the
     running total, updated only for gates whose fanins toggled *)
  gate_leak_na : float array;
  mutable total_leak_na : float;
  touched_stamp : int array;
  mutable stamp : int;
  mutable toggles_at_last_cycle : int;
  mutable cycle_toggles_rev : int list;
}

(* Recompute every gate's leakage from the simulator's values. *)
let rebuild_leakage s =
  let values = Sim.Event_sim.values s.sim in
  s.total_leak_na <- 0.0;
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then begin
        let l = Power.Leakage.gate_leakage_na s.circuit values nd.Circuit.id in
        s.gate_leak_na.(nd.Circuit.id) <- l;
        s.total_leak_na <- s.total_leak_na +. l
      end)
    (Circuit.nodes s.circuit)

(* Refresh only the gates reading a node that toggled this cycle. *)
let refresh_leakage s =
  let values = Sim.Event_sim.values s.sim in
  s.stamp <- s.stamp + 1;
  let stamp = s.stamp in
  List.iter
    (fun id ->
      Array.iter
        (fun succ ->
          if s.touched_stamp.(succ) <> stamp then begin
            s.touched_stamp.(succ) <- stamp;
            let nd = Circuit.node s.circuit succ in
            if Gate.is_logic nd.Circuit.kind then begin
              let l = Power.Leakage.gate_leakage_na s.circuit values succ in
              s.total_leak_na <-
                s.total_leak_na -. s.gate_leak_na.(succ) +. l;
              s.gate_leak_na.(succ) <- l
            end
          end)
        (Circuit.node s.circuit id).Circuit.fanouts)
    (Sim.Event_sim.last_changes s.sim)

let leakage_now s = s.total_leak_na *. Techlib.Leakage_table.vdd /. 1000.0

let after_cycle s ~capture =
  let total = Sim.Event_sim.total_toggles s.sim in
  s.cycle_toggles_rev <- (total - s.toggles_at_last_cycle) :: s.cycle_toggles_rev;
  s.toggles_at_last_cycle <- total;
  let leak = leakage_now s in
  if capture then begin
    s.static_sum_capture <- s.static_sum_capture +. leak;
    s.n_capture <- s.n_capture + 1
  end
  else begin
    s.static_sum_shift <- s.static_sum_shift +. leak;
    s.n_shift <- s.n_shift + 1
  end;
  if leak > s.static_peak then s.static_peak <- leak

(* Pseudo-input value presented to the logic for the flip-flop at chain
   position [pos] while Shift Enable is high. *)
let shift_value s pos =
  let id = Scan_chain.cell_at s.chain pos in
  match Hashtbl.find_opt s.forced id with
  | Some v -> v
  | None -> s.chain_state.(pos)

(* every source application immediately folds its toggles into the
   leakage bookkeeping, so consecutive change sets are never lost *)
let apply_sources s changes =
  ignore (Sim.Event_sim.set_sources s.sim changes);
  refresh_leakage s

let pi_changes c pi_values =
  Array.to_list
    (Array.mapi (fun i id -> (id, pi_values.(i))) (Circuit.inputs c))

(* One shift cycle: the chain moves by one, scan-in receives [bit].
   With [hold_previous_capture] (enhanced scan: hold latches at every
   scan-cell output) the pseudo-inputs keep their captured values while
   the chain ripples internally, so the logic sees no shift activity at
   all. *)
let shift_cycle s bit =
  let n = Array.length s.chain_state in
  let next = Array.make n false in
  next.(0) <- bit;
  for j = 1 to n - 1 do
    next.(j) <- s.chain_state.(j - 1)
  done;
  s.chain_state <- next;
  if not s.policy.hold_previous_capture then begin
    let changes = ref [] in
    for pos = 0 to n - 1 do
      let id = Scan_chain.cell_at s.chain pos in
      changes := (id, shift_value s pos) :: !changes
    done;
    apply_sources s !changes
  end;
  after_cycle s ~capture:false

(* Capture cycle: multiplexers select the scan cells again, the test's
   PI part is applied, the logic settles and the response is captured
   back into the chain. *)
let capture_cycle s pi_values =
  let c = s.circuit in
  let n = Array.length s.chain_state in
  let changes = ref (pi_changes c pi_values) in
  for pos = 0 to n - 1 do
    let id = Scan_chain.cell_at s.chain pos in
    changes := (id, s.chain_state.(pos)) :: !changes
  done;
  apply_sources s !changes;
  after_cycle s ~capture:true;
  (* capture: chain now holds the combinational response *)
  let values = Sim.Event_sim.values s.sim in
  let response = Array.make n false in
  Array.iter
    (fun id ->
      let d = (Circuit.node c id).Circuit.fanins.(0) in
      response.(Scan_chain.position_of s.chain id) <- values.(d))
    (Circuit.dffs c);
  s.chain_state <- response;
  response

let make_session ?init_state c chain policy =
  let n_ff = Scan_chain.length chain in
  let forced = Hashtbl.create 8 in
  List.iter
    (fun (id, v) ->
      if not (Gate.equal_kind (Circuit.node c id).Circuit.kind Gate.Dff) then
        invalid_arg "Scan_sim: forced node is not a flip-flop";
      Hashtbl.replace forced id v)
    policy.forced_pseudo;
  (match policy.pi_during_shift with
  | Some p when Array.length p <> Array.length (Circuit.inputs c) ->
    invalid_arg "Scan_sim: shift PI pattern length mismatch"
  | Some _ | None -> ());
  let chain_state =
    match init_state with
    | None -> Array.make n_ff false
    | Some st ->
      if Array.length st <> n_ff then
        invalid_arg "Scan_sim: init state length mismatch";
      Array.copy st
  in
  let sim = Sim.Event_sim.create c in
  {
    circuit = c;
    chain;
    policy;
    sim;
    forced;
    chain_state;
    static_sum_shift = 0.0;
    static_sum_capture = 0.0;
    static_peak = 0.0;
    n_shift = 0;
    n_capture = 0;
    gate_leak_na = Array.make (Circuit.node_count c) 0.0;
    total_leak_na = 0.0;
    touched_stamp = Array.make (Circuit.node_count c) 0;
    stamp = 0;
    toggles_at_last_cycle = 0;
    cycle_toggles_rev = [];
  }

let run ?init_state c chain policy ~vectors ~on_response =
  let s = make_session ?init_state c chain policy in
  let shift_pi current_test_pi =
    match s.policy.pi_during_shift with
    | Some p -> p
    | None -> current_test_pi
  in
  let first_pi =
    match vectors with
    | [] -> Array.make (Array.length (Circuit.inputs c)) false
    | v :: _ -> fst (split_vector c chain v)
  in
  (* initial settle (not counted): shift mode, chain at init state *)
  let init_pi = shift_pi first_pi in
  let pi_ids = Circuit.inputs c in
  let pi_pos = Hashtbl.create 16 in
  Array.iteri (fun i id -> Hashtbl.replace pi_pos id i) pi_ids;
  Sim.Event_sim.init s.sim (fun id ->
      match Hashtbl.find_opt pi_pos id with
      | Some i -> init_pi.(i)
      | None ->
        (* a flip-flop *)
        shift_value s (Scan_chain.position_of chain id));
  rebuild_leakage s;
  List.iter
    (fun vec ->
      let pi, target_state = split_vector c chain vec in
      (* drive the shift-mode PI pattern (counted: it is a real change
         after the previous capture) *)
      apply_sources s (pi_changes c (shift_pi pi));
      List.iter (shift_cycle s) (Scan_chain.shift_in_sequence chain target_state);
      let response = capture_cycle s pi in
      on_response response)
    vectors;
  (* final shift-out of the last response (scan-in pumped with zeros) *)
  if vectors <> [] then begin
    apply_sources s (pi_changes c (shift_pi first_pi));
    for _ = 1 to Scan_chain.length chain do
      shift_cycle s false
    done
  end;
  (* invariant: the incremental leakage total equals a full recompute *)
  let accumulated = s.total_leak_na in
  rebuild_leakage s;
  assert (
    Float.abs (accumulated -. s.total_leak_na)
    < 1e-6 *. Float.max 1.0 s.total_leak_na);
  Telemetry.Counter.inc m_sessions;
  Telemetry.Counter.add m_cycles (s.n_shift + s.n_capture);
  Telemetry.Counter.add m_toggles (Sim.Event_sim.total_toggles s.sim);
  s

let measure ?init_state c chain policy ~vectors =
  let s = run ?init_state c chain policy ~vectors ~on_response:(fun _ -> ()) in
  let toggles = Array.copy (Sim.Event_sim.toggle_counts s.sim) in
  let cycles = s.n_shift + s.n_capture in
  let cycles = max cycles 1 in
  let dynamic = Power.Switching.of_toggles c ~toggles ~cycles in
  {
    cycles;
    shift_cycles = s.n_shift;
    toggles;
    total_toggles = Sim.Event_sim.total_toggles s.sim;
    per_cycle_toggles = Array.of_list (List.rev s.cycle_toggles_rev);
    dynamic;
    avg_static_uw =
      (if s.n_shift = 0 then 0.0
       else s.static_sum_shift /. float_of_int s.n_shift);
    peak_static_uw = s.static_peak;
    avg_capture_static_uw =
      (if s.n_capture = 0 then 0.0
       else s.static_sum_capture /. float_of_int s.n_capture);
  }

let responses ?init_state c chain policy ~vectors =
  let acc = ref [] in
  let _ =
    run ?init_state c chain policy ~vectors ~on_response:(fun r ->
        acc := Array.copy r :: !acc)
  in
  List.rev !acc
