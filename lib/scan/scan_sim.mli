(** Cycle-accurate scan-shift power measurement.

    For every test vector the simulator replays the full test-per-scan
    protocol: [length] shift cycles (simultaneously shifting the
    previous response out and the next state in), then one capture
    cycle with the test's primary-input part applied, with a final
    shift-out after the last capture. Per-cycle node toggles accumulate
    into the Eq. (1) dynamic figure; per-cycle leakage snapshots give
    the average and peak static power during scan.

    The [policy] describes what the paper's hardware does during shift:

    - traditional scan: primary inputs simply hold the current test's
      PI part, every pseudo-input follows the rippling chain;
    - input control [8]: primary inputs hold a computed blocking
      pattern (restored to the test values for each capture cycle);
    - the proposed structure: additionally, multiplexed scan-cell
      outputs are forced to chosen constants while Shift Enable is
      high. *)

open Netlist

type policy = {
  pi_during_shift : bool array option;
      (** [None]: hold the current test's PI values (traditional).
          [Some pattern]: drive this pattern during every shift cycle. *)
  forced_pseudo : (int * bool) list;
      (** Muxed flip-flops, as (dff node id, forced value): their
          pseudo-input is pinned during shift and reconnected to the
          scan cell for capture. *)
  hold_previous_capture : bool;
      (** Enhanced scan ([5] and the hold-latch structures of the
          related work): every scan-cell output is latched at its last
          captured value for the whole shift phase, so no chain ripple
          reaches the logic — at the cost of a latch per cell and the
          performance impact the paper's method avoids. *)
}

val traditional : policy

val enhanced_scan : policy

type engine =
  | Scalar
      (** Event-driven replay of every cycle ({!Sim.Event_sim}): the
          golden reference implementation. *)
  | Packed
      (** 64 consecutive scan cycles per 64-bit word
          ({!Sim.Packed_sim}): per-cycle toggles are recovered by
          popcounting lane-to-lane XORs and leakage is updated only at
          the lanes where a gate's input state changed.  Produces
          bit-identical toggle counts, per-cycle series, dynamic power
          and responses; the static-power figures agree up to float
          accumulation order. *)

type result = {
  cycles : int;  (** total clock cycles simulated *)
  shift_cycles : int;
  toggles : int array;  (** per-node toggle counts over all cycles *)
  total_toggles : int;
  per_cycle_toggles : int array;
      (** toggles caused by each simulated cycle, in order — feeds the
          peak-power analysis ({!Power.Peak}) *)
  dynamic : Power.Switching.report;
  avg_static_uw : float;  (** mean leakage over shift cycles *)
  peak_static_uw : float;
  avg_capture_static_uw : float;  (** mean leakage at capture cycles *)
}

val auto_width : Scan_chain.t -> int
(** The packed width {!measure}/{!responses} pick when [?width] is
    omitted: [ceil((chain length + 2) / 64)] words — one scan segment
    (load + shifts + capture) per frame — capped at
    {!Sim.Packed_sim.max_width}. *)

val measure :
  ?engine:engine ->
  ?width:int ->
  ?init_state:bool array ->
  Circuit.t ->
  Scan_chain.t ->
  policy ->
  vectors:bool array list ->
  result
(** [vectors] are fully-specified source assignments (positional over
    [Circuit.sources]): the PI part is applied at capture, the state
    part is shifted in.  [engine] defaults to [Packed]; [width]
    (1..8) selects the packed engine's word batch — W words carry
    [64*W] scan cycles per combinational sweep ({!Sim.Packed_sim})
    and every width produces bit-identical toggle counts. When
    omitted, the width is chosen automatically ({!auto_width}): just
    enough words to hold one scan segment, so short chains are not
    charged for dead lanes. Ignored by [Scalar].
    @raise Invalid_argument on malformed vectors, forced non-dff nodes
    or an unmapped circuit. *)

val responses :
  ?engine:engine ->
  ?width:int ->
  ?init_state:bool array ->
  Circuit.t ->
  Scan_chain.t ->
  policy ->
  vectors:bool array list ->
  bool array list
(** Captured response (chain contents after each capture, by chain
    position) per vector — used to check that the power-reduction
    policies leave test behaviour untouched. *)
