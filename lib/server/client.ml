module Json = Telemetry.Json
module E = Scanpower_errors

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* connect/replay pacing: the runner's exponential backoff with
   deterministic jitter, so a fleet of clients reconnecting to a
   restarted daemon does not arrive in lockstep yet every chaos run
   replays exactly *)
let backoff_config =
  { Runner.default_config with Runner.backoff_s = 0.05; backoff_max_s = 2.0 }

let connect ?(retry_for_s = 0.0) path =
  let deadline = Unix.gettimeofday () +. retry_for_s in
  let rec attempt n =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with _ -> ());
      let now = Unix.gettimeofday () in
      if now < deadline then begin
        (* daemon still starting (or restarting under supervision):
           back off until the bind lands *)
        let delay = Runner.retry_delay_s backoff_config ~id:path ~attempt:n in
        Unix.sleepf (Float.min (Float.max delay 0.01) (deadline -. now));
        attempt (n + 1)
      end
      else
        E.raise_error ~code:E.Io ~stage:"client.connect"
          (Printf.sprintf "cannot connect to %S: %s" path
             (Unix.error_message e))
  in
  attempt 1

let close t =
  (try flush t.oc with _ -> ());
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
  try Unix.close t.fd with _ -> ()

let send t req =
  Telemetry.Events.write_json_line t.oc (Protocol.request_to_json req)

let send_raw t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

(* Read response lines until the result or error belonging to [id].
   Event lines are forwarded to [on_event]; responses for other ids
   (pipelined requests) are forwarded to [on_other]. A protocol-level
   error line carries a null id and terminates the wait too: it is the
   daemon's answer to the line we just sent. *)
let read_response ?(on_event = fun _ -> ()) ?(on_other = fun _ -> ()) t ~id =
  let rec loop () =
    match input_line t.ic with
    | exception End_of_file ->
      Error
        (E.make ~code:E.Io ~stage:"client.read"
           "connection closed before a response arrived")
    | line -> (
      match Json.of_string line with
      | Error msg ->
        Error
          (E.make ~code:E.Parse ~stage:"client.read"
             ("malformed response line: " ^ msg))
      | Ok json -> (
        let line_id =
          match Json.member "id" json with
          | Some (Json.String s) -> Some s
          | _ -> None
        in
        match Json.member "type" json with
        | Some (Json.String "event") ->
          if line_id = Some id then on_event json else on_other json;
          loop ()
        | Some (Json.String "result") when line_id = Some id ->
          (match Json.member "value" json with
          | Some v -> Ok v
          | None ->
            Error
              (E.make ~code:E.Parse ~stage:"client.read"
                 "result line without a value"))
        | Some (Json.String "error") when line_id = Some id || line_id = None
          -> (
          match Json.member "error" json with
          | Some err -> (
            match E.of_json err with
            | Ok e -> Error e
            | Error msg ->
              Error
                (E.make ~code:E.Parse ~stage:"client.read"
                   ("malformed error payload: " ^ msg)))
          | None ->
            Error
              (E.make ~code:E.Parse ~stage:"client.read"
                 "error line without an error payload"))
        | _ ->
          on_other json;
          loop ()))
  in
  loop ()

let rpc ?on_event t req =
  send t req;
  read_response ?on_event t ~id:req.Protocol.id

(* ---- resilient session: reconnect + replay ---- *)

type session = {
  path : string;
  retry_for_s : float;
  hedge_after_s : float option;
  mutable conn : t option;
  mutable calls : int;
  mutable replays : int;
}

let session ?(retry_for_s = 10.0) ?hedge_after_s path =
  { path; retry_for_s; hedge_after_s; conn = None; calls = 0; replays = 0 }

let session_replays s = s.replays

let drop_conn s =
  match s.conn with
  | Some c ->
    s.conn <- None;
    close c
  | None -> ()

let close_session s = drop_conn s

let conn_of s ~deadline =
  match s.conn with
  | Some c -> c
  | None ->
    let c =
      connect ~retry_for_s:(Float.max 0.0 (deadline -. Unix.gettimeofday ()))
        s.path
    in
    s.conn <- Some c;
    c

(* Failures that mean "the transport broke, not the request": a torn
   or reset connection on send, EOF or a malformed (torn) line on
   read. These are safe to replay — the idempotency key guarantees at
   most one execution even if the daemon had already answered into the
   void. *)
let transport_error (e : E.t) =
  (match e.E.code with E.Io | E.Parse -> true | _ -> false)
  && (e.E.stage = "client.read" || e.E.stage = "client.connect")

let retryable (e : E.t) =
  match e.E.code with E.Overloaded | E.Degraded -> true | _ -> false

let read_only (req : Protocol.request) =
  match req.Protocol.kind with
  | Protocol.Health | Protocol.Stats | Protocol.Validate -> true
  | Protocol.Flow | Protocol.Atpg | Protocol.Sweep_point -> false

(* Hedged send for read-only kinds: after [hedge_after_s] with no
   bytes from the primary, fire the same request on a second fresh
   connection and take whichever answers first. Both connections are
   private to this call (never the session's), so a late loser can be
   closed without desynchronizing the session stream. *)
let hedged_once ?on_event s ~deadline req =
  let remaining () = Float.max 0.0 (deadline -. Unix.gettimeofday ()) in
  let hedge_after =
    match s.hedge_after_s with Some h -> h | None -> assert false
  in
  let primary = connect ~retry_for_s:(remaining ()) s.path in
  let opened = ref [ primary ] in
  Fun.protect
    ~finally:(fun () -> List.iter close !opened)
    (fun () ->
      send primary req;
      match Unix.select [ primary.fd ] [] [] hedge_after with
      | _ :: _, _, _ -> read_response ?on_event primary ~id:req.Protocol.id
      | _ -> (
        let hedge = connect ~retry_for_s:(remaining ()) s.path in
        opened := hedge :: !opened;
        send hedge req;
        match Unix.select [ primary.fd; hedge.fd ] [] [] (remaining ()) with
        | [], _, _ ->
          Error
            (E.make ~code:E.Deadline ~stage:"client.read"
               "hedged request: no response before the deadline")
        | ready, _, _ ->
          let winner =
            if List.memq primary.fd ready then primary else hedge
          in
          read_response ?on_event winner ~id:req.Protocol.id))

(* One request, survived to completion: reconnect and replay on
   transport failure, back off and re-send on retryable daemon errors
   (overloaded / degraded), propagate the shrinking deadline, and
   auto-attach an idempotency key so no replay double-executes. *)
let call ?on_event s req =
  s.calls <- s.calls + 1;
  let req =
    match req.Protocol.idem with
    | Some _ -> req
    | None ->
      { req with
        Protocol.idem =
          Some
            (Printf.sprintf "%d-%d-%s" (Unix.getpid ()) s.calls
               req.Protocol.id);
      }
  in
  let window =
    match req.Protocol.deadline_s with
    | Some d -> Float.min d s.retry_for_s
    | None -> s.retry_for_s
  in
  let deadline = Unix.gettimeofday () +. window in
  let rec attempt n =
    let remaining = deadline -. Unix.gettimeofday () in
    if n > 1 && remaining <= 0.0 then
      Error
        (E.make ~code:E.Deadline ~stage:"client.call"
           (Printf.sprintf "request not served within %.3fs (%d attempts)"
              window (n - 1)))
    else begin
      let req =
        match req.Protocol.deadline_s with
        | Some _ -> { req with Protocol.deadline_s = Some (Float.max 0.001 remaining) }
        | None -> req
      in
      let result =
        if s.hedge_after_s <> None && read_only req then
          try hedged_once ?on_event s ~deadline req
          with
          | E.Error e -> Error e
          | Sys_error msg ->
            Error (E.make ~code:E.Io ~stage:"client.read" msg)
          | End_of_file ->
            Error
              (E.make ~code:E.Io ~stage:"client.read"
                 "connection closed before a response arrived")
          | Unix.Unix_error (e, _, _) ->
            Error
              (E.make ~code:E.Io ~stage:"client.read" (Unix.error_message e))
        else
          try
            let c = conn_of s ~deadline in
            rpc ?on_event c req
          with
          | E.Error e -> Error e
          | Sys_error msg ->
            Error (E.make ~code:E.Io ~stage:"client.read" msg)
          | End_of_file ->
            Error
              (E.make ~code:E.Io ~stage:"client.read"
                 "connection closed before a response arrived")
          | Unix.Unix_error (e, _, _) ->
            Error
              (E.make ~code:E.Io ~stage:"client.read" (Unix.error_message e))
      in
      match result with
      | Ok v -> Ok v
      | Error e when transport_error e ->
        drop_conn s;
        s.replays <- s.replays + 1;
        let delay =
          Runner.retry_delay_s backoff_config ~id:req.Protocol.id ~attempt:n
        in
        Unix.sleepf (Float.min (Float.max delay 0.01) (Float.max 0.0 (deadline -. Unix.gettimeofday ())));
        attempt (n + 1)
      | Error e when retryable e ->
        s.replays <- s.replays + 1;
        let delay =
          Runner.retry_delay_s backoff_config ~id:req.Protocol.id ~attempt:n
        in
        Unix.sleepf (Float.min (Float.max delay 0.01) (Float.max 0.0 (deadline -. Unix.gettimeofday ())));
        attempt (n + 1)
      | Error _ as err -> err
    end
  in
  attempt 1
