module Json = Telemetry.Json
module E = Scanpower_errors

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?(retry_for_s = 0.0) path =
  let deadline = Unix.gettimeofday () +. retry_for_s in
  let rec attempt () =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with _ -> ());
      if Unix.gettimeofday () < deadline then begin
        (* daemon still starting up: poll until the bind lands *)
        Unix.sleepf 0.05;
        attempt ()
      end
      else
        E.raise_error ~code:E.Io ~stage:"client.connect"
          (Printf.sprintf "cannot connect to %S: %s" path
             (Unix.error_message e))
  in
  attempt ()

let close t =
  (try flush t.oc with _ -> ());
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
  try Unix.close t.fd with _ -> ()

let send t req =
  Telemetry.Events.write_json_line t.oc (Protocol.request_to_json req)

let send_raw t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

(* Read response lines until the result or error belonging to [id].
   Event lines are forwarded to [on_event]; responses for other ids
   (pipelined requests) are forwarded to [on_other]. A protocol-level
   error line carries a null id and terminates the wait too: it is the
   daemon's answer to the line we just sent. *)
let read_response ?(on_event = fun _ -> ()) ?(on_other = fun _ -> ()) t ~id =
  let rec loop () =
    match input_line t.ic with
    | exception End_of_file ->
      Error
        (E.make ~code:E.Io ~stage:"client.read"
           "connection closed before a response arrived")
    | line -> (
      match Json.of_string line with
      | Error msg ->
        Error
          (E.make ~code:E.Parse ~stage:"client.read"
             ("malformed response line: " ^ msg))
      | Ok json -> (
        let line_id =
          match Json.member "id" json with
          | Some (Json.String s) -> Some s
          | _ -> None
        in
        match Json.member "type" json with
        | Some (Json.String "event") ->
          if line_id = Some id then on_event json else on_other json;
          loop ()
        | Some (Json.String "result") when line_id = Some id ->
          (match Json.member "value" json with
          | Some v -> Ok v
          | None ->
            Error
              (E.make ~code:E.Parse ~stage:"client.read"
                 "result line without a value"))
        | Some (Json.String "error") when line_id = Some id || line_id = None
          -> (
          match Json.member "error" json with
          | Some err -> (
            match E.of_json err with
            | Ok e -> Error e
            | Error msg ->
              Error
                (E.make ~code:E.Parse ~stage:"client.read"
                   ("malformed error payload: " ^ msg)))
          | None ->
            Error
              (E.make ~code:E.Parse ~stage:"client.read"
                 "error line without an error payload"))
        | _ ->
          on_other json;
          loop ()))
  in
  loop ()

let rpc ?on_event t req =
  send t req;
  read_response ?on_event t ~id:req.Protocol.id
