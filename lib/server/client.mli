(** Blocking client for the daemon {!Protocol} — the [scanpower
    client] subcommand, the tests and the warm-registry benchmark all
    drive the daemon through this. *)

type t

val connect : ?retry_for_s:float -> string -> t
(** Connect to a daemon socket path. [retry_for_s] keeps retrying a
    not-yet-bound path for that many seconds — the daemon-startup race
    in scripts and tests, and the restart window under supervision —
    paced by the runner's exponential backoff with deterministic
    jitter. Raises {!Scanpower_errors.Error} (code [Io]) on
    failure. *)

val close : t -> unit

val send : t -> Protocol.request -> unit
(** One request line, flushed; does not wait. *)

val send_raw : t -> string -> unit
(** An arbitrary line, flushed — for protocol-robustness tests. *)

val read_response :
  ?on_event:(Telemetry.Json.t -> unit) ->
  ?on_other:(Telemetry.Json.t -> unit) ->
  t ->
  id:string ->
  (Telemetry.Json.t, Scanpower_errors.t) result
(** Read lines until the ["result"] (its ["value"] is returned) or
    ["error"] (re-materialized via {!Scanpower_errors.of_json}) for
    [id]. Event lines for [id] go to [on_event]; anything else —
    pipelined responses for other ids — to [on_other]. A daemon error
    line with a null id (a protocol-level rejection) also terminates
    the wait. EOF before a response is an [Io] error. *)

val rpc :
  ?on_event:(Telemetry.Json.t -> unit) ->
  t ->
  Protocol.request ->
  (Telemetry.Json.t, Scanpower_errors.t) result
(** {!send} then {!read_response}. *)

(** {1 Resilient sessions}

    A {!session} survives what a bare {!t} cannot: a torn write, a
    reset connection, a daemon restarting under its supervisor, a
    degraded daemon shedding load. {!call} reconnects and replays on
    transport failure and backs off and re-sends on [overloaded] /
    [degraded] — all under one deadline window — and attaches an
    idempotency key so the dispatcher never executes a replay
    twice. *)

type session

val session : ?retry_for_s:float -> ?hedge_after_s:float -> string -> session
(** A lazily-connected resilient handle to a daemon socket path.
    [retry_for_s] (default 10) bounds each {!call}'s total
    retry window — connects, replays and backoff included.
    [hedge_after_s] opts into hedged sends: a read-only request
    ([health], [stats], [validate]) unanswered after that many seconds
    is fired again on a second fresh connection and the first answer
    wins. Compute requests are never hedged. *)

val call :
  ?on_event:(Telemetry.Json.t -> unit) ->
  session ->
  Protocol.request ->
  (Telemetry.Json.t, Scanpower_errors.t) result
(** One request to completion. A request carrying [deadline_s]
    propagates its shrinking remainder on every replay and the window
    is capped by it; a request without [idem] gets a fresh key
    auto-attached. Returns the first non-retryable outcome, or a
    [deadline] error when the window closes. *)

val session_replays : session -> int
(** How many reconnect-replays and retryable-error re-sends this
    session has performed (chaos-test observability). *)

val close_session : session -> unit
(** Drop the session's connection, if any. *)
