(** Blocking client for the daemon {!Protocol} — the [scanpower
    client] subcommand, the tests and the warm-registry benchmark all
    drive the daemon through this. *)

type t

val connect : ?retry_for_s:float -> string -> t
(** Connect to a daemon socket path. [retry_for_s] keeps polling a
    not-yet-bound path for that many seconds (the daemon-startup
    race in scripts and tests). Raises {!Scanpower_errors.Error}
    (code [Io]) on failure. *)

val close : t -> unit

val send : t -> Protocol.request -> unit
(** One request line, flushed; does not wait. *)

val send_raw : t -> string -> unit
(** An arbitrary line, flushed — for protocol-robustness tests. *)

val read_response :
  ?on_event:(Telemetry.Json.t -> unit) ->
  ?on_other:(Telemetry.Json.t -> unit) ->
  t ->
  id:string ->
  (Telemetry.Json.t, Scanpower_errors.t) result
(** Read lines until the ["result"] (its ["value"] is returned) or
    ["error"] (re-materialized via {!Scanpower_errors.of_json}) for
    [id]. Event lines for [id] go to [on_event]; anything else —
    pipelined responses for other ids — to [on_other]. A daemon error
    line with a null id (a protocol-level rejection) also terminates
    the wait. EOF before a response is an [Io] error. *)

val rpc :
  ?on_event:(Telemetry.Json.t -> unit) ->
  t ->
  Protocol.request ->
  (Telemetry.Json.t, Scanpower_errors.t) result
(** {!send} then {!read_response}. *)
