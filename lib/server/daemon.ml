module Json = Telemetry.Json
module E = Scanpower_errors
module Events = Telemetry.Events
module Flow = Scanpower.Flow

(* request lifecycle counters; the gauge tracks instantaneous depth *)
let c_received = Telemetry.Counter.make "server.requests.received"
let c_ok = Telemetry.Counter.make "server.requests.ok"
let c_error = Telemetry.Counter.make "server.requests.error"
let c_overloaded = Telemetry.Counter.make "server.requests.overloaded"
let c_deadline = Telemetry.Counter.make "server.requests.deadline"
let c_abandoned = Telemetry.Counter.make "server.requests.abandoned"
let c_degraded = Telemetry.Counter.make "server.requests.degraded"
let c_disconnects = Telemetry.Counter.make "server.client_disconnects"
let c_protocol_errors = Telemetry.Counter.make "server.protocol_errors"
let g_queue_depth = Telemetry.Gauge.make "server.queue_depth"
let g_heap_words = Telemetry.Gauge.make "server.heap_words"
let g_degraded = Telemetry.Gauge.make "server.degraded"
let h_request_s = Telemetry.Histogram.make "server.request_s"
let h_queue_wait_s = Telemetry.Histogram.make "server.queue_wait_s"

type config = {
  socket : string;
  registry_capacity : int;
  max_queue : int;
  max_request_bytes : int;
  default_deadline_s : float;
  parallel : Runner.strategy;
  log : out_channel option;
  snapshot_path : string option;
  snapshot_every_s : float;
  max_heap_mw : float;
  generation : int;
}

let default_config =
  {
    socket = Protocol.default_socket ();
    registry_capacity = 32;
    max_queue = 64;
    max_request_bytes = Protocol.max_line_default;
    default_deadline_s = 0.0;
    parallel = Runner.Auto;
    log = None;
    snapshot_path = None;
    snapshot_every_s = 0.0;
    max_heap_mw = 0.0;
    generation = 0;
  }

type conn = {
  fd : Unix.file_descr;
  oc : out_channel;  (** same descriptor; closing [oc] closes [fd] *)
  mutable pending : string;  (** bytes read but not yet newline-framed *)
  mutable closed : bool;
}

(* memory-pressure state machine: Normal → Trimmed (registry LRU cut
   and heap compacted) → Degraded (shedding compute) and back down
   through hysteresis *)
type pressure = Normal | Trimmed | Degraded

type queued = {
  q_conn : conn;
  q_req : Protocol.request;
  q_enqueued_at : float;
}

type t = {
  config : config;
  dispatcher : Dispatcher.t;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  queue : queued Queue.t;
  mutable stop : bool;
  started_at : float;
  mutable received : int;
  mutable ok : int;
  mutable errors : int;
  mutable overloaded : int;
  mutable deadlines : int;
  mutable shed : int;
  mutable pressure : pressure;
  mutable warm_restored : int;
  mutable last_snapshot : float;
  mutable writes : int;  (** torn-write roll sequence *)
  mutable reads : int;  (** stall-read roll sequence *)
  mutable ballast : (float * float array) list;
      (** injected heap spikes: (expiry, pinned allocation) *)
}

let log t json =
  match t.config.log with
  | Some oc -> (try Events.write_json_line oc json with _ -> ())
  | None -> ()

let close_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    try close_out_noerr conn.oc with _ -> ()
  end

(* every byte to a client goes through the shared NDJSON writer; a
   dead peer (EPIPE with SIGPIPE ignored, reset, ...) is a clean
   close, never a daemon failure *)
let write_line t conn json =
  if not conn.closed then begin
    t.writes <- t.writes + 1;
    let torn_key =
      Printf.sprintf "%s#w%d"
        (match Json.member "id" json with
        | Some (Json.String id) -> id
        | _ -> "-")
        t.writes
    in
    if Runner.Fault_inject.fires Runner.Fault_inject.Torn_write ~key:torn_key
    then begin
      (* emit a prefix of the frame, then hang up: the client sees a
         torn line and must reconnect + replay *)
      let s = Json.to_string json in
      (try
         output_string conn.oc (String.sub s 0 (String.length s / 2));
         flush conn.oc
       with _ -> ());
      close_conn t conn
    end
    else
      try Events.write_json_line conn.oc json
      with _ ->
        Telemetry.Counter.inc c_disconnects;
        close_conn t conn
  end

let protocol_error t conn ?id err =
  Telemetry.Counter.inc c_protocol_errors;
  write_line t conn (Protocol.error_line ?id err)

let set_queue_gauge t =
  if Telemetry.enabled () then
    Telemetry.Gauge.set g_queue_depth (float_of_int (Queue.length t.queue))

(* ---- admission ---- *)

let admit t conn line =
  match Json.of_string line with
  | Error msg ->
    protocol_error t conn
      (E.make ~code:E.Parse ~stage:"server.protocol"
         ("request is not valid JSON: " ^ msg))
  | Ok json -> (
    let id = Protocol.request_id json in
    match Protocol.parse_request json with
    | Error err -> protocol_error t conn ?id err
    | Ok req ->
      t.received <- t.received + 1;
      Telemetry.Counter.inc c_received;
      let compute_heavy =
        match req.Protocol.kind with
        | Protocol.Flow | Protocol.Atpg | Protocol.Sweep_point -> true
        | Protocol.Validate | Protocol.Health | Protocol.Stats -> false
      in
      if t.pressure = Degraded && compute_heavy then begin
        (* shed at admission: cheap requests (health/stats/validate)
           keep flowing so operators can watch the recovery *)
        t.shed <- t.shed + 1;
        Telemetry.Counter.inc c_degraded;
        write_line t conn
          (Protocol.error_line ~id:req.Protocol.id
             (E.make ~code:E.Degraded ~stage:"server.admission"
                (Printf.sprintf
                   "shedding %s requests under memory pressure (heap \
                    budget %.1f MW); retry after backoff"
                   (Protocol.kind_to_string req.Protocol.kind)
                   t.config.max_heap_mw)))
      end
      else if Queue.length t.queue >= t.config.max_queue then begin
        t.overloaded <- t.overloaded + 1;
        Telemetry.Counter.inc c_overloaded;
        write_line t conn
          (Protocol.error_line ~id:req.Protocol.id
             (E.make ~code:E.Overloaded ~stage:"server.admission"
                (Printf.sprintf
                   "admission queue full (%d queued); retry after backoff"
                   (Queue.length t.queue))))
      end
      else begin
        let req =
          match (req.Protocol.deadline_s, t.config.default_deadline_s) with
          | None, d when d > 0.0 -> { req with Protocol.deadline_s = Some d }
          | _ -> req
        in
        Queue.add
          { q_conn = conn; q_req = req; q_enqueued_at = Unix.gettimeofday () }
          t.queue;
        set_queue_gauge t
      end)

(* a frame past the cap is answered with [validation] and the
   connection is dropped — not merely skipped-to-newline, which would
   leave the buffer regrowing without bound on a newline-less stream *)
let oversize t conn =
  protocol_error t conn
    (E.make ~code:E.Validation ~stage:"server.protocol"
       (Printf.sprintf
          "request line exceeds %d bytes; connection closed (raise \
           --max-request-bytes to ship larger netlists)"
          t.config.max_request_bytes));
  conn.pending <- "";
  close_conn t conn

(* split newly buffered bytes into complete lines, enforcing the
   request-size cap; a torn trailing fragment stays pending until more
   bytes or EOF (where it is silently discarded — the request never
   completed) *)
let feed t conn chunk =
  conn.pending <- conn.pending ^ chunk;
  let continue = ref true in
  while !continue && not conn.closed do
    match String.index_opt conn.pending '\n' with
    | Some i ->
      let line = String.sub conn.pending 0 i in
      conn.pending <-
        String.sub conn.pending (i + 1) (String.length conn.pending - i - 1);
      if String.length line > t.config.max_request_bytes then
        (* a complete line can also blow the cap when it arrives
           whole inside one read *)
        oversize t conn
      else if String.trim line <> "" then admit t conn line
    | None ->
      if String.length conn.pending > t.config.max_request_bytes then
        oversize t conn;
      continue := false
  done

let read_conn t conn =
  t.reads <- t.reads + 1;
  if
    Runner.Fault_inject.fires Runner.Fault_inject.Stall_read
      ~key:(Printf.sprintf "r%d" t.reads)
  then
    (* a slow-loris-shaped delay: ready bytes sit unread briefly; the
       loop must stay responsive for every other connection *)
    Unix.sleepf 0.05;
  if
    Runner.Fault_inject.fires Runner.Fault_inject.Heap_spike
      ~key:(Printf.sprintf "h%d" t.reads)
  then
    (* pin ~32 MB for a few seconds to drive the memory watchdog *)
    t.ballast <-
      (Unix.gettimeofday () +. 3.0, Array.make (4 * 1024 * 1024) 0.0)
      :: t.ballast;
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn t conn
  | n -> feed t conn (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    Telemetry.Counter.inc c_disconnects;
    close_conn t conn
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* ---- request processing ---- *)

let request_counters t =
  Json.Obj
    [
      ("received", Json.Int t.received);
      ("ok", Json.Int t.ok);
      ("error", Json.Int t.errors);
      ("overloaded", Json.Int t.overloaded);
      ("deadline", Json.Int t.deadlines);
      ("degraded", Json.Int t.shed);
    ]

let extra t =
  [ ("queue_depth", Json.Int (Queue.length t.queue));
    ("degraded", Json.Bool (t.pressure = Degraded));
    ("warm_restored", Json.Int t.warm_restored);
    ("requests", request_counters t) ]

let process_one t =
  match Queue.take_opt t.queue with
  | None -> ()
  | Some { q_conn = conn; q_req = req; q_enqueued_at } ->
    set_queue_gauge t;
    let now = Unix.gettimeofday () in
    let waited = now -. q_enqueued_at in
    Telemetry.Histogram.observe h_queue_wait_s waited;
    if conn.closed then
      (* the client is gone: don't burn compute on an answer nobody
         will read *)
      Telemetry.Counter.inc c_abandoned
    else begin
      let deadline_left =
        Option.map (fun d -> d -. waited) req.Protocol.deadline_s
      in
      match deadline_left with
      | Some left when left <= 0.0 ->
        t.deadlines <- t.deadlines + 1;
        Telemetry.Counter.inc c_deadline;
        write_line t conn
          (Protocol.error_line ~id:req.Protocol.id
             (E.make ~code:E.Deadline ~stage:"server.admission"
                (Printf.sprintf
                   "deadline %.3fs expired after %.3fs in the queue"
                   (Option.get req.Protocol.deadline_s) waited)))
      | _ ->
        let sub =
          if req.Protocol.stream then
            Some
              (Events.subscribe (fun ev ->
                   write_line t conn
                     (Protocol.event_line ~id:req.Protocol.id
                        (Events.to_json ev))))
          else None
        in
        Fun.protect
          ~finally:(fun () -> Option.iter Events.unsubscribe sub)
          (fun () ->
            Events.emit "server.request_started"
              [
                ("id", Json.String req.Protocol.id);
                ("kind",
                 Json.String (Protocol.kind_to_string req.Protocol.kind));
                ("queue_wait_s", Json.Float waited);
              ];
            let t0 = Unix.gettimeofday () in
            let result =
              Dispatcher.handle t.dispatcher ~extra:(extra t) ?deadline_left
                req
            in
            let dt = Unix.gettimeofday () -. t0 in
            Telemetry.Histogram.observe h_request_s dt;
            Events.emit "server.request_finished"
              [
                ("id", Json.String req.Protocol.id);
                ("ok",
                 Json.Bool (match result with Ok _ -> true | Error _ -> false));
                ("duration_s", Json.Float dt);
              ];
            match result with
            | Ok value ->
              t.ok <- t.ok + 1;
              Telemetry.Counter.inc c_ok;
              write_line t conn
                (Protocol.result_line ~id:req.Protocol.id
                   ~kind:req.Protocol.kind value)
            | Error err ->
              t.errors <- t.errors + 1;
              (match err.E.code with
              | E.Deadline ->
                t.deadlines <- t.deadlines + 1;
                Telemetry.Counter.inc c_deadline
              | _ -> Telemetry.Counter.inc c_error);
              write_line t conn
                (Protocol.error_line ~id:req.Protocol.id err))
    end

(* ---- memory-pressure watchdog ---- *)

(* Driven by [Gc.quick_stat] (O(1), safe every loop iteration) against
   the [--max-heap-mw] budget. Escalation: over budget → cut the
   registry LRU in half and compact; still over → stop admitting
   compute-heavy requests ([degraded]); back under 0.9× budget →
   recover. The hysteresis band stops the daemon flapping between
   degraded and healthy at the boundary. *)
let check_memory t =
  let now = Unix.gettimeofday () in
  t.ballast <- List.filter (fun (expiry, _) -> expiry > now) t.ballast;
  if t.config.max_heap_mw > 0.0 then begin
    let words = float_of_int (Gc.quick_stat ()).Gc.heap_words in
    if Telemetry.enabled () then Telemetry.Gauge.set g_heap_words words;
    let budget = t.config.max_heap_mw *. 1e6 in
    match t.pressure with
    | Normal ->
      if words > budget then begin
        let registry = Dispatcher.registry t.dispatcher in
        let entries = (Registry.stats registry).Registry.s_entries in
        let evicted = Registry.trim registry ~keep:(entries / 2) in
        Gc.full_major ();
        t.pressure <- Trimmed;
        Events.emit "server.memory_pressure"
          [
            ("action", Json.String "trim");
            ("heap_words", Json.Float words);
            ("budget_words", Json.Float budget);
            ("evicted", Json.Int evicted);
          ];
        log t
          (Json.Obj
             [
               ("event", Json.String "server.memory_pressure");
               ("action", Json.String "trim");
               ("evicted", Json.Int evicted);
             ])
      end
    | Trimmed ->
      if words > budget then begin
        t.pressure <- Degraded;
        if Telemetry.enabled () then Telemetry.Gauge.set g_degraded 1.0;
        Events.emit "server.memory_pressure"
          [
            ("action", Json.String "degrade");
            ("heap_words", Json.Float words);
            ("budget_words", Json.Float budget);
          ];
        log t
          (Json.Obj
             [
               ("event", Json.String "server.memory_pressure");
               ("action", Json.String "degrade");
             ])
      end
      else if words < 0.9 *. budget then t.pressure <- Normal
    | Degraded ->
      if words < 0.9 *. budget then begin
        t.pressure <- Normal;
        if Telemetry.enabled () then Telemetry.Gauge.set g_degraded 0.0;
        Events.emit "server.memory_pressure"
          [ ("action", Json.String "recover"); ("heap_words", Json.Float words) ];
        log t
          (Json.Obj
             [
               ("event", Json.String "server.memory_pressure");
               ("action", Json.String "recover");
             ])
      end
  end

(* ---- warm-registry snapshots ---- *)

let write_snapshot t ~reason =
  match t.config.snapshot_path with
  | None -> ()
  | Some path -> (
    t.last_snapshot <- Unix.gettimeofday ();
    match Registry.snapshot (Dispatcher.registry t.dispatcher) ~path with
    | entries ->
      log t
        (Json.Obj
           [
             ("event", Json.String "server.snapshot_written");
             ("path", Json.String path);
             ("entries", Json.Int entries);
             ("reason", Json.String reason);
           ])
    | exception _ ->
      (* an unwritable snapshot must never take the daemon down; the
         next tick retries *)
      log t
        (Json.Obj
           [
             ("event", Json.String "server.snapshot_failed");
             ("path", Json.String path);
             ("reason", Json.String reason);
           ]))

let snapshot_tick t =
  if
    t.config.snapshot_path <> None
    && t.config.snapshot_every_s > 0.0
    && Unix.gettimeofday () -. t.last_snapshot >= t.config.snapshot_every_s
  then write_snapshot t ~reason:"tick"

(* ---- the loop ---- *)

let accept_ready t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, _ ->
    let conn =
      { fd; oc = Unix.out_channel_of_descr fd; pending = ""; closed = false }
    in
    t.conns <- conn :: t.conns
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()

let final_stats t =
  Json.Obj
    [
      ("event", Json.String "server.drained");
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
      ("requests", request_counters t);
      ("registry", Registry.stats_json (Dispatcher.registry t.dispatcher));
    ]

let create config =
  (* a stale socket file from a dead daemon would make bind fail; a
     live daemon keeps the path connectable, which we do not probe —
     two daemons on one path is an operator error surfaced by bind *)
  (try
     match (Unix.stat config.socket).Unix.st_kind with
     | Unix.S_SOCK -> (
       let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       match Unix.connect probe (Unix.ADDR_UNIX config.socket) with
       | () ->
         Unix.close probe;
         E.raise_error ~code:E.Io ~stage:"server.listen"
           (Printf.sprintf "socket %S is already being served"
              config.socket)
       | exception Unix.Unix_error _ ->
         Unix.close probe;
         Sys.remove config.socket)
     | _ ->
       E.raise_error ~code:E.Io ~stage:"server.listen"
         (Printf.sprintf "%S exists and is not a socket" config.socket)
   with Unix.Unix_error (Unix.ENOENT, _, _) | Sys_error _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX config.socket)
   with Unix.Unix_error (e, _, _) ->
     Unix.close listen_fd;
     E.raise_error ~code:E.Io ~stage:"server.listen"
       (Printf.sprintf "cannot bind %S: %s" config.socket
          (Unix.error_message e)));
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let t =
    {
      config;
      dispatcher =
        Dispatcher.create ~registry_capacity:config.registry_capacity
          ~parallel:config.parallel ~generation:config.generation ();
      listen_fd;
      conns = [];
      queue = Queue.create ();
      stop = false;
      started_at = Unix.gettimeofday ();
      received = 0;
      ok = 0;
      errors = 0;
      overloaded = 0;
      deadlines = 0;
      shed = 0;
      pressure = Normal;
      warm_restored = 0;
      last_snapshot = Unix.gettimeofday ();
      writes = 0;
      reads = 0;
      ballast = [];
    }
  in
  (match config.snapshot_path with
  | Some path when Sys.file_exists path ->
    t.warm_restored <- Registry.restore (Dispatcher.registry t.dispatcher) ~path;
    if t.warm_restored > 0 then
      log t
        (Json.Obj
           [
             ("event", Json.String "server.registry_restored");
             ("path", Json.String path);
             ("entries", Json.Int t.warm_restored);
           ])
  | _ -> ());
  t

let shutdown t =
  (* drain: answer everything already admitted, then hang up *)
  while not (Queue.is_empty t.queue) do
    process_one t
  done;
  write_snapshot t ~reason:"drain";
  let stats = final_stats t in
  Events.emit "server.drained" [ ("requests", request_counters t) ];
  (* push the tail of every --progress stream before the channels go
     away: the drained event above must reach its subscribers *)
  Events.flush_subscribers ();
  log t stats;
  List.iter (fun c -> try close_out_noerr c.oc with _ -> ()) t.conns;
  t.conns <- [];
  (try Unix.close t.listen_fd with _ -> ());
  (try Sys.remove t.config.socket with _ -> ());
  stats

let run ?(config = default_config) () =
  let t = create config in
  (* a client hanging up mid-response must be EPIPE-as-exception (a
     clean per-connection close), never a fatal signal *)
  let old_pipe =
    if Sys.unix then Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) else None
  in
  let request_stop _ = t.stop <- true in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  Flow.set_prepare_capacity config.registry_capacity;
  log t
    (Json.Obj
       [
         ("event", Json.String "server.listening");
         ("socket", Json.String config.socket);
         ("pid", Json.Int (Unix.getpid ()));
         ("generation", Json.Int config.generation);
       ]);
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int;
      Option.iter (Sys.set_signal Sys.sigpipe) old_pipe)
    (fun () ->
      while not t.stop do
        let read_fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
        let timeout = if Queue.is_empty t.queue then 0.2 else 0.0 in
        let ready =
          try
            let r, _, _ = Unix.select read_fds [] [] timeout in
            r
          with Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        if not t.stop then begin
          if List.memq t.listen_fd ready then accept_ready t;
          List.iter
            (fun conn ->
              if (not conn.closed) && List.memq conn.fd ready then
                read_conn t conn)
            t.conns;
          (* one request per iteration keeps accept/read latency
             bounded while a long flow computes *)
          process_one t;
          check_memory t;
          snapshot_tick t
        end
      done;
      shutdown t)
