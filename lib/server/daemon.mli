(** The daemon loop: a single-threaded [select] server on a Unix-domain
    socket, speaking the line-delimited JSON {!Protocol}.

    Request lifecycle (the admission-control matrix is in DESIGN.md
    §11): a complete line is parsed and validated (failures are
    answered immediately as structured [parse]/[usage] errors, the
    connection stays open); a valid request enters the bounded
    admission queue — or is refused with code [overloaded] when the
    queue is full; at dequeue, a request whose deadline already
    expired while queued is answered with code [deadline]; otherwise
    it is dispatched (optionally streaming telemetry-bus events as
    ["event"] lines) and answered. One request is processed per loop
    iteration, so accepts and reads stay responsive while a flow
    computes.

    SIGTERM/SIGINT stop accepting, drain every admitted request,
    answer it, emit a final stats line (to [config.log] and the
    ["server.drained"] bus event), close all connections and unlink
    the socket. Client disconnects — mid-request, mid-response, EPIPE
    — close that connection only; SIGPIPE is ignored for the lifetime
    of {!run}.

    Telemetry: counters [server.requests.{received,ok,error,
    overloaded,deadline,abandoned}], [server.client_disconnects],
    [server.protocol_errors]; histograms [server.request_s],
    [server.queue_wait_s]; gauge [server.queue_depth] — beside the
    {!Registry} metrics. *)

type config = {
  socket : string;  (** path; an unserved stale file is replaced *)
  registry_capacity : int;
      (** warm machines kept resident (also bounds the
          {!Scanpower.Flow.prepare_cached} memo) *)
  max_queue : int;  (** admission bound; beyond it → [overloaded] *)
  max_request_bytes : int;
      (** request-frame cap in bytes; past it the request is answered
          with [validation] and the connection is dropped, so a
          newline-less stream cannot grow the buffer without bound *)
  default_deadline_s : float;
      (** applied to requests that carry none; [<= 0] = none *)
  parallel : Runner.strategy;
      (** isolated-request execution: fork vs. worker domain — see
          {!Dispatcher.create} *)
  log : out_channel option;
      (** operational NDJSON log (listening / drained lines) *)
  snapshot_path : string option;
      (** warm-registry snapshot file: restored at startup (corrupt or
          missing → cold start), written atomically on the SIGTERM
          drain and every [snapshot_every_s] *)
  snapshot_every_s : float;  (** periodic snapshot interval; [<= 0] = off *)
  max_heap_mw : float;
      (** heap budget in mega-words for the memory-pressure watchdog;
          [<= 0] = off. Over budget: trim the registry LRU and
          compact; still over: answer [flow]/[atpg]/[sweep-point] with
          [degraded]/9 while [health]/[stats]/[validate] keep flowing;
          under 0.9× budget: recover. *)
  generation : int;
      (** supervisor restart generation, echoed in [health]/[stats]
          and folded into the [Worker_kill] chaos roll key *)
}

val default_config : config
(** {!Protocol.default_socket}, capacity 32, queue 64,
    {!Protocol.max_line_default}, no default deadline,
    [parallel = Auto], no log, no snapshot, no heap budget,
    generation 0. *)

val run : ?config:config -> unit -> Telemetry.Json.t
(** Serve until SIGTERM/SIGINT, then drain and return the final stats
    line. Raises {!Scanpower_errors.Error} (code [Io], stage
    ["server.listen"]) when the socket path cannot be bound — e.g. a
    live daemon already serves it. *)
