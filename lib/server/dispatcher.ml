module Json = Telemetry.Json
module E = Scanpower_errors
module Flow = Scanpower.Flow
module Sweep = Scanpower.Sweep

(* Idempotency: replayed requests (same "idem" key) return the stored
   Ok response instead of executing again. Bounded FIFO — dedup is a
   correctness aid for reconnect windows measured in seconds, not a
   durable result store. *)
let idem_capacity = 1024

type idem_entry = { stored : Json.t option; executions : int }

type t = {
  registry : Registry.t;
  parallel : Runner.strategy;
  generation : int;
  started_at : float;
  idem_table : (string, idem_entry) Hashtbl.t;
  idem_order : string Queue.t;
  mutable idem_replays : int;
  mutable served : int;
  mutable forked : int;
  mutable domain_runs : int;
  mutable fork_fallbacks : int;
}

let create ?(registry_capacity = 32) ?(parallel = Runner.Auto)
    ?(generation = 0) () =
  {
    registry = Registry.create ~capacity:registry_capacity ();
    parallel;
    generation;
    started_at = Unix.gettimeofday ();
    idem_table = Hashtbl.create 64;
    idem_order = Queue.create ();
    idem_replays = 0;
    served = 0;
    forked = 0;
    domain_runs = 0;
    fork_fallbacks = 0;
  }

let registry t = t.registry

let generation t = t.generation

let idem_record t key entry =
  if not (Hashtbl.mem t.idem_table key) then begin
    Queue.push key t.idem_order;
    while Queue.length t.idem_order > idem_capacity do
      Hashtbl.remove t.idem_table (Queue.pop t.idem_order)
    done
  end;
  Hashtbl.replace t.idem_table key entry

(* ---- circuit resolution ---- *)

(* [Bench_parser] raises structured Parse/Validation errors for inline
   text; built-in names fail as Usage listing the valid names, exactly
   like the CLI. *)
let resolve_circuit (spec : Protocol.circuit_spec) =
  match spec with
  | Protocol.Named n -> (
    match Circuits.find n with
    | Ok c -> c
    | Error msg ->
      E.raise_error ~code:E.Usage ~stage:"server.dispatch"
        (msg ^ "; or ship the netlist inline under \"bench\""))
  | Protocol.Inline { name; bench } ->
    Netlist.Bench_parser.parse_string ~name bench

let engine_of = function
  | Some "scalar" -> Scan.Scan_sim.Scalar
  | _ -> Scan.Scan_sim.Packed

let require_circuit (req : Protocol.request) =
  match req.Protocol.circuit with
  | Some spec -> resolve_circuit spec
  | None ->
    (* parse_request enforces this; defensive for programmatic use *)
    E.raise_error ~code:E.Usage ~stage:"server.dispatch"
      (Printf.sprintf "%S needs a circuit"
         (Protocol.kind_to_string req.Protocol.kind))

(* ---- request bodies ---- *)

(* Identical computation to the one-shot [scanpower power] CLI:
   prepare (default ATPG config) + evaluate at the request seed. The
   registry replaces the prepare on a warm hit — legal because
   [prepare] is deterministic in (netlist text, ATPG config), which is
   exactly what {!Flow.prepare_key} digests, and [evaluate] never
   mutates a [prepared]. Bit-identity is pinned by a golden test. *)
let flow_value t (req : Protocol.request) =
  let c = require_circuit req in
  let key = Flow.prepare_key c in
  let prepared, hit =
    Registry.find_or_prepare t.registry ~key
      ~name:(Netlist.Circuit.name c)
      (fun () -> Flow.prepare c)
  in
  let engine = engine_of req.Protocol.engine in
  let comparison = Flow.evaluate ~engine ~seed:req.Protocol.seed prepared in
  Json.Obj
    [
      ("circuit", Json.String (Netlist.Circuit.name c));
      ("seed", Json.Int req.Protocol.seed);
      ("engine",
       Json.String
         (match engine with Scan.Scan_sim.Packed -> "packed" | _ -> "scalar"));
      ("registry_hit", Json.Bool hit);
      ("registry_key", Json.String key);
      ("comparison", Sweep.comparison_to_json comparison);
    ]

let atpg_value t (req : Protocol.request) =
  let c = require_circuit req in
  let config =
    { Atpg.Pattern_gen.default_config with
      Atpg.Pattern_gen.seed = req.Protocol.seed }
  in
  let key = Flow.prepare_key ~atpg_config:config c in
  let prepared, hit =
    Registry.find_or_prepare t.registry ~key
      ~name:(Netlist.Circuit.name c)
      (fun () -> Flow.prepare ~atpg_config:config c)
  in
  let s = Flow.atpg_summary_of prepared.Flow.atpg in
  Json.Obj
    [
      ("circuit", Json.String (Netlist.Circuit.name c));
      ("seed", Json.Int req.Protocol.seed);
      ("registry_hit", Json.Bool hit);
      ("n_vectors", Json.Int (List.length prepared.Flow.vectors));
      ("total_faults", Json.Int s.Flow.total_faults);
      ("detected", Json.Int s.Flow.detected);
      ("untestable", Json.Int s.Flow.untestable);
      ("aborted", Json.Int s.Flow.aborted);
      ("skipped", Json.Int s.Flow.skipped);
      ("coverage", Json.Float s.Flow.coverage);
      ("status", Json.String (Flow.atpg_status s));
    ]

let diagnostic_json (d : Netlist.Validate.diagnostic) =
  Json.Obj
    [
      ("severity",
       Json.String
         (match d.Netlist.Validate.severity with
         | Netlist.Validate.Error -> "error"
         | Netlist.Validate.Warning -> "warning"));
      ("check", Json.String d.Netlist.Validate.check);
      ("net", Json.String d.Netlist.Validate.net);
      ("line", Json.Int d.Netlist.Validate.line);
      ("message", Json.String d.Netlist.Validate.message);
    ]

(* validate never raises on bad netlist text: the diagnostics ARE the
   answer. Inline text goes through the non-raising [lint] (syntax +
   semantic); a built-in name is lint-clean by construction so only
   the circuit-level checks apply. *)
let validate_value (req : Protocol.request) =
  let name, diags =
    match req.Protocol.circuit with
    | Some (Protocol.Inline { name; bench }) ->
      (name, Netlist.Bench_parser.lint bench)
    | Some (Protocol.Named _) | None ->
      let c = require_circuit req in
      (Netlist.Circuit.name c, Netlist.Validate.circuit c)
  in
  let errors = List.length (Netlist.Validate.errors diags) in
  Json.Obj
    [
      ("circuit", Json.String name);
      ("ok", Json.Bool (errors = 0));
      ("errors", Json.Int errors);
      ("diagnostics", Json.List (List.map diagnostic_json diags));
    ]

(* One sweep point through the real [Sweep] machinery (sequential
   runner, in-process), so job identity — and with it the chaos
   injector's per-site keying and the Atpg_abort cache bypass — is
   exactly the CLI's. The in-process path also keeps the
   [Flow.prepare_cached] memo warm across requests. *)
let sweep_point_value (req : Protocol.request) =
  let c = require_circuit req in
  let points = Sweep.points ~seeds:[ req.Protocol.seed ] [ c ] in
  let report = Sweep.run ~jobs:1 ~capture_telemetry:false points in
  match report.Sweep.results with
  | [ jr ] -> (
    match jr.Sweep.comparison with
    | Ok comparison ->
      Json.Obj
        [
          ("circuit", Json.String jr.Sweep.circuit);
          ("seed", Json.Int jr.Sweep.seed);
          ("from_cache", Json.Bool jr.Sweep.from_cache);
          ("attempts", Json.Int jr.Sweep.attempts);
          ("comparison", Sweep.comparison_to_json comparison);
        ]
    | Error msg ->
      E.raise_error ~circuit:jr.Sweep.circuit ~code:E.Runtime
        ~stage:"server.sweep_point" msg)
  | _ ->
    E.raise_error ~code:E.Runtime ~stage:"server.sweep_point"
      "sweep returned an unexpected result count"

let health_value t ~extra =
  Json.Obj
    ([
       ("status", Json.String "ok");
       ("pid", Json.Int (Unix.getpid ()));
       ("generation", Json.Int t.generation);
       ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
       ("served", Json.Int t.served);
       ("registry_entries", Json.Int (Registry.stats t.registry).Registry.s_entries);
     ]
    @ extra)

let stats_value t ~extra =
  let p = Flow.prepare_stats () in
  Json.Obj
    ([
       ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
       ("served", Json.Int t.served);
       ("generation", Json.Int t.generation);
       ("idem",
        Json.Obj
          [
            ("keys", Json.Int (Hashtbl.length t.idem_table));
            ("replays", Json.Int t.idem_replays);
          ]);
       ("parallel",
        Json.Obj
          [
            ("mode", Json.String (Runner.strategy_to_string t.parallel));
            ("forked", Json.Int t.forked);
            ("domain", Json.Int t.domain_runs);
            ("fork_fallbacks", Json.Int t.fork_fallbacks);
          ]);
       ("registry", Registry.stats_json t.registry);
       ("prepare_registry",
        Json.Obj
          [
            ("entries", Json.Int p.Flow.p_entries);
            ("hits", Json.Int p.Flow.p_hits);
            ("misses", Json.Int p.Flow.p_misses);
            ("evictions", Json.Int p.Flow.p_evictions);
          ]);
     ]
    @ extra)

(* ---- isolation ---- *)

(* Fork isolation: one job through the runner pool under this resident
   parent. The child inherits the warm registry copy-on-write (warm
   requests stay warm) and any crash — a segfault on a hostile
   netlist, an injected Child_crash — is contained as a structured
   Runtime error instead of taking the daemon down. Structured errors
   raised inside the child survive the pipe via an ok/error envelope:
   [Job_error] would otherwise flatten them to a string. *)
let run_forked ~id ~timeout_s compute =
  let job =
    {
      Runner.id;
      cache_key = None;
      run =
        (fun ~attempt:_ ->
          match compute () with
          | v -> Json.Obj [ ("ok", Json.Bool true); ("value", v) ]
          | exception exn ->
            let e = E.of_exn ~stage:"server.dispatch" exn in
            Json.Obj [ ("ok", Json.Bool false); ("error", E.to_json e) ]);
    }
  in
  let config =
    { Runner.default_config with
      Runner.jobs = 2;
      retries = 0;
      capture_telemetry = false;
      timeout_s = (match timeout_s with Some s -> s | None -> 0.0);
    }
  in
  match Runner.run ~config [ job ] with
  | [ { Runner.outcome = Runner.Done { value; _ }; _ } ], _ -> (
    match (Json.member "ok" value, Json.member "value" value,
           Json.member "error" value)
    with
    | Some (Json.Bool true), Some v, _ -> Ok v
    | Some (Json.Bool false), _, Some err -> (
      match E.of_json err with
      | Ok e -> Error e
      | Error msg ->
        Error (E.make ~code:E.Runtime ~stage:"server.dispatch" msg))
    | _ ->
      Error
        (E.make ~code:E.Runtime ~stage:"server.dispatch"
           "forked worker returned a malformed envelope"))
  | [ { Runner.outcome = Runner.Failed { last; _ }; _ } ], _ ->
    let e =
      match last with
      | Runner.Timed_out ->
        E.make ~code:E.Deadline ~stage:"server.dispatch"
          "request deadline expired in the isolated worker"
      | Runner.Crashed msg ->
        E.make ~code:E.Runtime ~stage:"server.dispatch"
          ("isolated worker crashed: " ^ msg)
      | Runner.Job_error msg ->
        E.make ~code:E.Runtime ~stage:"server.dispatch" msg
      | Runner.Interrupted | Runner.Deadline_exceeded ->
        E.make ~code:E.Deadline ~stage:"server.dispatch"
          "request cut short by shutdown"
    in
    Error e
  | _ ->
    Error
      (E.make ~code:E.Runtime ~stage:"server.dispatch"
         "runner returned an unexpected result count")

(* Domain isolation: the request computes on a spawned worker domain
   and the daemon joins it. Cheaper than a fork (no pipe, no JSON
   round-trip of the result, no copy-on-write teardown) and — unlike a
   fork, whose registry warm-ups die with the child — any machine the
   request warms stays resident in the daemon. The join means only one
   domain mutates the registry at a time, and structured errors cross
   back as values, not serialised envelopes. What it cannot give is a
   kill switch: a deadline cannot interrupt a running domain, and a
   segfault is not contained — which is why [Auto] below reserves this
   path for small trusted jobs with no deadline. *)
let run_in_domain compute =
  Par.Domain_pool.note_domain_spawn ();
  let d =
    Domain.spawn (fun () ->
        match compute () with
        | v -> Ok v
        | exception exn -> Error (E.of_exn ~stage:"server.dispatch" exn))
  in
  Domain.join d

(* A named circuit at most this many gates is a "small job": its flow
   runs in milliseconds, so the fork tax dominates the work and domain
   isolation wins. Above it (s5378, s9234, ...) the work dominates and
   fork isolation is cheap insurance. *)
let small_job_gate_limit = 2048

type execution = Exec_inline | Exec_domain | Exec_forked

(* Fork keeps every capability domains lack: a killable worker for
   deadlines, chaos-site containment, and crash isolation for inline
   (untrusted) netlist text. [Auto] only picks a domain when none of
   those are in play and the job is small.

   One process-wide ratchet sits above all of that: OCaml 5 forbids
   [Unix.fork] in any process that has ever spawned a domain. So the
   first domain execution permanently commits the daemon to domains —
   a later fork would die at the syscall, which is strictly worse
   isolation than running the request on a domain. Such forced
   re-routes are tallied in [fork_fallbacks] and visible in stats. *)
let choose_execution t ~deadline_left (req : Protocol.request) =
  if
    not
      (req.Protocol.isolation = Protocol.Fork_isolation
      && Protocol.needs_circuit req.Protocol.kind)
  then Exec_inline
  else
    let wanted =
      match t.parallel with
      | Runner.Processes -> Exec_forked
      | Runner.Domains -> Exec_domain
      | Runner.Auto -> (
        if deadline_left <> None || Runner.Fault_inject.active () then
          Exec_forked
        else
          match req.Protocol.circuit with
          | Some (Protocol.Named n) -> (
            match Circuits.find n with
            | Ok c when Netlist.Circuit.gate_count c <= small_job_gate_limit
              ->
              Exec_domain
            | Ok _ | Error _ -> Exec_forked)
          | Some (Protocol.Inline _) | None -> Exec_forked)
    in
    match wanted with
    | Exec_forked when Par.Domain_pool.fork_unavailable () ->
      t.fork_fallbacks <- t.fork_fallbacks + 1;
      Exec_domain
    | e -> e

(* ---- entry point ---- *)

let compute t ~extra (req : Protocol.request) =
  match req.Protocol.kind with
  | Protocol.Flow -> flow_value t req
  | Protocol.Atpg -> atpg_value t req
  | Protocol.Validate -> validate_value req
  | Protocol.Sweep_point -> sweep_point_value req
  | Protocol.Health -> health_value t ~extra
  | Protocol.Stats -> stats_value t ~extra

(* [idem_executions] rides inside the response value so a client (and
   the chaos test) can assert zero duplicate execution after a replay:
   the stored response is returned verbatim, counter and all. *)
let with_executions value n =
  match value with
  | Json.Obj fields -> Json.Obj (fields @ [ ("idem_executions", Json.Int n) ])
  | other -> other

let execute t ~extra ~deadline_left (req : Protocol.request) =
  let circuit_label =
    match req.Protocol.circuit with
    | Some (Protocol.Named n) -> Some n
    | Some (Protocol.Inline { name; _ }) -> Some name
    | None -> None
  in
  match choose_execution t ~deadline_left req with
  | Exec_forked ->
    t.forked <- t.forked + 1;
    run_forked ~id:req.Protocol.id ~timeout_s:deadline_left (fun () ->
        compute t ~extra req)
  | Exec_domain ->
    t.domain_runs <- t.domain_runs + 1;
    run_in_domain (fun () -> compute t ~extra req)
  | Exec_inline -> (
    try Ok (compute t ~extra req)
    with exn ->
      Error (E.of_exn ~stage:"server.dispatch" ?circuit:circuit_label exn))

let handle t ?(extra = []) ?deadline_left (req : Protocol.request) =
  (* Mid-request SIGKILL chaos: the roll key includes the supervisor
     generation, so a spec that kills generation N lets the restarted
     generation N+1 serve the replay (Fault_inject.fires is pure in
     the key, so tests pick such seeds deterministically). *)
  if
    Runner.Fault_inject.fires Runner.Fault_inject.Worker_kill
      ~key:(Printf.sprintf "%s#gen%d" req.Protocol.id t.generation)
  then Unix.kill (Unix.getpid ()) Sys.sigkill;
  let result =
    match req.Protocol.idem with
    | None -> execute t ~extra ~deadline_left req
    | Some key -> (
      match Hashtbl.find_opt t.idem_table key with
      | Some { stored = Some value; _ } ->
        t.idem_replays <- t.idem_replays + 1;
        Ok value
      | prev ->
        let executions =
          (match prev with Some e -> e.executions | None -> 0) + 1
        in
        (match execute t ~extra ~deadline_left req with
        | Ok value ->
          let value = with_executions value executions in
          idem_record t key { stored = Some value; executions };
          Ok value
        | Error _ as err ->
          (* errors are not stored: a replay after a failure should
             re-execute, and the counter keeps the history honest *)
          idem_record t key { stored = None; executions };
          err))
  in
  t.served <- t.served + 1;
  result
