(** Request execution: one {!Protocol.request} in, one JSON value or
    one structured error out. The daemon loop owns admission and
    framing; this module owns the semantics of each request kind and
    the warm {!Registry} they share.

    Bit-identity contract: a [flow] request computes exactly what the
    one-shot [scanpower power] CLI computes for the same (circuit,
    seed, engine) — the registry only elides the deterministic
    prepare — and a [sweep-point] request goes through the real
    {!Scanpower.Sweep} machinery so even the chaos injector's per-job
    keying matches the CLI. Both are pinned by golden tests. *)

type t

val create :
  ?registry_capacity:int ->
  ?parallel:Runner.strategy ->
  ?generation:int ->
  unit ->
  t
(** Fresh dispatcher with an empty registry (default capacity 32).

    [parallel] (default [Auto]) decides how a {!Protocol.Fork_isolation}
    request executes: [Processes] always forks a killable worker (the
    historical behaviour); [Domains] runs it on a spawned worker domain
    — no fork/pipe cost and registry warm-ups survive the request, but
    a deadline cannot interrupt it and a segfault is not contained;
    [Auto] picks a domain only for small named circuits
    ([gate_count <= 2048]) with no deadline and no active fault
    injection, and forks everything else.

    The first domain execution is a one-way commitment: OCaml 5
    permanently forbids [Unix.fork] in a process once any domain has
    been spawned, so from then on requests that would have forked are
    re-routed to a domain instead (counted as ["fork_fallbacks"]).
    The choice tally is exposed under ["parallel"] in the [stats]
    value.

    [generation] (default 0) is the supervisor restart generation:
    echoed in [health]/[stats] values and folded into the
    [Worker_kill] fault-injection roll key, so a chaos spec that kills
    generation N deterministically spares the restarted N+1. *)

val registry : t -> Registry.t

val generation : t -> int

val handle :
  t ->
  ?extra:(string * Telemetry.Json.t) list ->
  ?deadline_left:float ->
  Protocol.request ->
  (Telemetry.Json.t, Scanpower_errors.t) result
(** Execute one request. [extra] fields are appended to [health] and
    [stats] values (the daemon adds queue depth and request
    counters). [deadline_left] is the remaining per-request budget —
    enforced as a hard worker timeout under {!Protocol.Fork_isolation},
    advisory otherwise. Never raises: every failure, including a
    crashed isolated worker, comes back as a structured error.

    Requests carrying an idempotency key ([idem]) are deduped: the
    first Ok response is stored (bounded FIFO, 1024 keys) and returned
    verbatim — [idem_executions] field included — to any replay, so a
    client retrying after a torn connection never double-executes.
    Errors are never stored; a replay after a failure re-executes. *)
