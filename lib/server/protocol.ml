module Json = Telemetry.Json
module E = Scanpower_errors

let max_line_default = 4 * 1024 * 1024

let default_socket () =
  Filename.concat (Filename.get_temp_dir_name ()) "scanpower.sock"

type kind = Flow | Atpg | Validate | Sweep_point | Health | Stats

let kinds =
  [ Flow; Atpg; Validate; Sweep_point; Health; Stats ]

let kind_to_string = function
  | Flow -> "flow"
  | Atpg -> "atpg"
  | Validate -> "validate"
  | Sweep_point -> "sweep-point"
  | Health -> "health"
  | Stats -> "stats"

let kind_of_string s =
  List.find_opt (fun k -> kind_to_string k = s) kinds

type circuit_spec =
  | Named of string
  | Inline of { name : string; bench : string }

type isolation = Inline_isolation | Fork_isolation

type request = {
  id : string;
  kind : kind;
  circuit : circuit_spec option;
  seed : int;
  engine : string option;
  deadline_s : float option;
  stream : bool;
  isolation : isolation;
  idem : string option;
}

let needs_circuit = function
  | Flow | Atpg | Validate | Sweep_point -> true
  | Health | Stats -> false

(* ---- parsing ---- *)

let usage ?token msg = E.make ?token ~code:E.Usage ~stage:"server.protocol" msg

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let opt_string obj k =
  match Json.member k obj with
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (usage (Printf.sprintf "field %S must be a string" k))
  | None -> Ok None

let opt_int obj k =
  match Json.member k obj with
  | Some (Json.Int n) -> Ok (Some n)
  | Some _ -> Error (usage (Printf.sprintf "field %S must be an integer" k))
  | None -> Ok None

let opt_number obj k =
  match Json.member k obj with
  | Some (Json.Float f) -> Ok (Some f)
  | Some (Json.Int n) -> Ok (Some (float_of_int n))
  | Some _ -> Error (usage (Printf.sprintf "field %S must be a number" k))
  | None -> Ok None

let opt_bool obj k =
  match Json.member k obj with
  | Some (Json.Bool b) -> Ok (Some b)
  | Some _ -> Error (usage (Printf.sprintf "field %S must be a boolean" k))
  | None -> Ok None

(* [id] is extracted first and as leniently as possible so that even a
   structurally broken request gets its error echoed back under the
   right id — a client multiplexing requests must never mis-attribute
   a failure. *)
let request_id json =
  match Json.member "id" json with
  | Some (Json.String s) -> Some s
  | Some (Json.Int n) -> Some (string_of_int n)
  | _ -> None

let parse_request json =
  match json with
  | Json.Obj _ ->
    let* id =
      match request_id json with
      | Some id -> Ok id
      | None -> (
        match Json.member "id" json with
        | None -> Error (usage "missing field \"id\"")
        | Some _ -> Error (usage "field \"id\" must be a string"))
    in
    let* kind_s =
      match Json.member "kind" json with
      | Some (Json.String s) -> Ok s
      | Some _ -> Error (usage "field \"kind\" must be a string")
      | None -> Error (usage "missing field \"kind\"")
    in
    let* kind =
      match kind_of_string kind_s with
      | Some k -> Ok k
      | None ->
        Error
          (usage ~token:kind_s
             (Printf.sprintf "unknown request kind %S (expected one of %s)"
                kind_s
                (String.concat ", "
                   (List.map (fun k -> kind_to_string k) kinds))))
    in
    let* named = opt_string json "circuit" in
    let* bench = opt_string json "bench" in
    let* name = opt_string json "name" in
    let* circuit =
      match (bench, named) with
      | Some bench, _ ->
        let name = match name with Some n -> n | None -> "inline" in
        Ok (Some (Inline { name; bench }))
      | None, Some n -> Ok (Some (Named n))
      | None, None ->
        if needs_circuit kind then
          Error
            (usage
               (Printf.sprintf
                  "%S needs a circuit: pass \"circuit\" (a benchmark name) \
                   or \"bench\" (inline netlist text)"
                  kind_s))
        else Ok None
    in
    let* seed = opt_int json "seed" in
    let seed = match seed with Some s -> s | None -> 42 in
    let* engine = opt_string json "engine" in
    let* () =
      match engine with
      | None | Some "packed" | Some "scalar" -> Ok ()
      | Some e ->
        Error
          (usage ~token:e "field \"engine\" must be \"packed\" or \"scalar\"")
    in
    let* deadline_s = opt_number json "deadline_s" in
    let* () =
      match deadline_s with
      | Some d when d <= 0.0 -> Error (usage "\"deadline_s\" must be positive")
      | _ -> Ok ()
    in
    let* stream = opt_bool json "stream" in
    let stream = match stream with Some b -> b | None -> false in
    let* isolation_s = opt_string json "isolation" in
    let* isolation =
      match isolation_s with
      | None | Some "inline" -> Ok Inline_isolation
      | Some "fork" -> Ok Fork_isolation
      | Some i ->
        Error
          (usage ~token:i "field \"isolation\" must be \"inline\" or \"fork\"")
    in
    let* idem = opt_string json "idem" in
    let* () =
      match idem with
      | Some "" -> Error (usage "field \"idem\" must be non-empty")
      | _ -> Ok ()
    in
    Ok { id; kind; circuit; seed; engine; deadline_s; stream; isolation; idem }
  | _ -> Error (usage "request must be a JSON object")

(* ---- response lines ---- *)

(* an id is echoed whenever one could be recovered; [Json.Null]
   otherwise, so clients can still see the error *)
let id_field = function
  | Some id -> ("id", Json.String id)
  | None -> ("id", Json.Null)

let result_line ~id ~kind value =
  Json.Obj
    [
      ("id", Json.String id);
      ("type", Json.String "result");
      ("kind", Json.String (kind_to_string kind));
      ("value", value);
    ]

let error_line ?id err =
  Json.Obj
    [ id_field id; ("type", Json.String "error"); ("error", E.to_json err) ]

let event_line ~id event_json =
  Json.Obj
    [ ("id", Json.String id); ("type", Json.String "event");
      ("event", event_json) ]

(* ---- request serialization (the client side) ---- *)

let request_to_json r =
  let opt k v rest = match v with Some x -> (k, x) :: rest | None -> rest in
  let circuit_fields rest =
    match r.circuit with
    | None -> rest
    | Some (Named n) -> ("circuit", Json.String n) :: rest
    | Some (Inline { name; bench }) ->
      ("name", Json.String name) :: ("bench", Json.String bench) :: rest
  in
  Json.Obj
    (("id", Json.String r.id)
    :: ("kind", Json.String (kind_to_string r.kind))
    :: circuit_fields
         (("seed", Json.Int r.seed)
         :: opt "engine"
              (Option.map (fun e -> Json.String e) r.engine)
              (opt "deadline_s"
                 (Option.map (fun d -> Json.Float d) r.deadline_s)
                 (("stream", Json.Bool r.stream)
                 ::
                 (match r.isolation with
                 | Inline_isolation -> []
                 | Fork_isolation -> [ ("isolation", Json.String "fork") ])
                 @ opt "idem"
                     (Option.map (fun i -> Json.String i) r.idem)
                     []))))

let make ?circuit ?bench ?(name = "inline") ?(seed = 42) ?engine ?deadline_s
    ?(stream = false) ?(isolation = Inline_isolation) ?idem ~id kind =
  let circuit =
    match (bench, circuit) with
    | Some bench, _ -> Some (Inline { name; bench })
    | None, Some c -> Some (Named c)
    | None, None -> None
  in
  { id; kind; circuit; seed; engine; deadline_s; stream; isolation; idem }

(* ---- raw-line entry point (the fuzzer's surface) ---- *)

(* Must never raise, whatever the bytes: the daemon calls this on
   every frame an untrusted client sends. *)
let request_of_line line =
  match Json.of_string line with
  | Error msg ->
    Error
      (E.make ~code:E.Parse ~stage:"server.protocol"
         (Printf.sprintf "request is not valid JSON: %s" msg))
  | Ok json -> parse_request json
