(** Wire protocol for the scan-power daemon: line-delimited JSON over
    a Unix-domain socket.

    Every request is one JSON object on one line; every reply is one
    or more lines, each an object tagged with the request's [id] and a
    ["type"] of ["result"], ["error"] or ["event"]. Errors embed
    {!Scanpower_errors.to_json} verbatim under ["error"], so a client
    can re-materialize the structured error with
    {!Scanpower_errors.of_json} and map it to the documented exit
    codes. See DESIGN.md §11 for the full schema. *)

val max_line_default : int
(** Default cap on one request line (4 MiB — comfortably above the
    largest ISCAS89 netlist inlined as ["bench"] text). *)

val default_socket : unit -> string
(** [$TMPDIR/scanpower.sock]. *)

type kind = Flow | Atpg | Validate | Sweep_point | Health | Stats

val kind_to_string : kind -> string
(** ["flow"], ["atpg"], ["validate"], ["sweep-point"], ["health"],
    ["stats"]. *)

val kind_of_string : string -> kind option

type circuit_spec =
  | Named of string  (** a built-in benchmark name, resolved server-side *)
  | Inline of { name : string; bench : string }
      (** netlist text shipped in the request — the multi-tenant path *)

type isolation =
  | Inline_isolation
      (** run in the daemon process: fastest, warms the shared registry *)
  | Fork_isolation
      (** run in a forked worker via {!Runner}: crash isolation and an
          enforced compute timeout, at fork cost; the worker inherits
          the warm registry copy-on-write but cannot warm it *)

type request = {
  id : string;  (** echoed on every response line *)
  kind : kind;
  circuit : circuit_spec option;  (** required by all but health/stats *)
  seed : int;  (** evaluation seed (flow/sweep-point) or ATPG seed (atpg) *)
  engine : string option;  (** ["packed"] (default) or ["scalar"] *)
  deadline_s : float option;
      (** budget from admission; expiry yields code [deadline] *)
  stream : bool;  (** forward telemetry-bus events as ["event"] lines *)
  isolation : isolation;
  idem : string option;
      (** idempotency key: the dispatcher caches the Ok response under
          this key, so a client replaying after a torn connection gets
          the stored result instead of a second execution *)
}

val needs_circuit : kind -> bool

val request_id : Telemetry.Json.t -> string option
(** Best-effort id extraction from an arbitrary value, so even a
    structurally broken request gets its error echoed under the right
    id. *)

val parse_request :
  Telemetry.Json.t -> (request, Scanpower_errors.t) result
(** Strict field validation; every failure is code [Usage] with stage
    ["server.protocol"]. *)

val request_of_line : string -> (request, Scanpower_errors.t) result
(** Parse one raw frame: JSON decode ([Parse] on failure) then
    {!parse_request}. Total — never raises, whatever the bytes; this
    is the surface the protocol fuzzer hammers. *)

val result_line : id:string -> kind:kind -> Telemetry.Json.t -> Telemetry.Json.t
val error_line : ?id:string -> Scanpower_errors.t -> Telemetry.Json.t
(** [id] omitted (rendered as JSON [null]) when none could be
    recovered from the request. *)

val event_line : id:string -> Telemetry.Json.t -> Telemetry.Json.t

val request_to_json : request -> Telemetry.Json.t
(** Wire form; [parse_request (request_to_json r) = Ok r]. *)

val make :
  ?circuit:string ->
  ?bench:string ->
  ?name:string ->
  ?seed:int ->
  ?engine:string ->
  ?deadline_s:float ->
  ?stream:bool ->
  ?isolation:isolation ->
  ?idem:string ->
  id:string ->
  kind ->
  request
(** Client-side constructor. [bench] (inline text) wins over [circuit]
    (a name); [name] labels inline text (default ["inline"]). *)
