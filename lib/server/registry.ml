module Json = Telemetry.Json

(* Global counters: one daemon per process, and the metrics snapshot
   is the delivery vehicle for hit/miss/eviction visibility. *)
let c_hits = Telemetry.Counter.make "server.registry.hit"
let c_misses = Telemetry.Counter.make "server.registry.miss"
let c_evictions = Telemetry.Counter.make "server.registry.eviction"
let g_entries = Telemetry.Gauge.make "server.registry.entries"

type entry = {
  key : string;
  circuit_name : string;
  prepared : Scanpower.Flow.prepared;
  mutable entry_hits : int;
  mutable last_used : int;
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  s_capacity : int;
  s_entries : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

let create ?(capacity = 32) () =
  if capacity < 1 then invalid_arg "Registry.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let publish t =
  if Telemetry.enabled () then
    Telemetry.Gauge.set g_entries (float_of_int (Hashtbl.length t.table))

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best <= e.last_used -> acc
        | _ -> Some (key, e.last_used))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1;
    Telemetry.Counter.inc c_evictions

let find_or_prepare t ~key ~name build =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.table key with
  | Some e ->
    e.last_used <- t.tick;
    e.entry_hits <- e.entry_hits + 1;
    t.hits <- t.hits + 1;
    Telemetry.Counter.inc c_hits;
    (e.prepared, true)
  | None ->
    t.misses <- t.misses + 1;
    Telemetry.Counter.inc c_misses;
    (* build before inserting: a failed prepare (validation error)
       must not leave a half-entry resident *)
    let prepared = build () in
    let e =
      { key; circuit_name = name; prepared; entry_hits = 0;
        last_used = t.tick }
    in
    Hashtbl.replace t.table key e;
    while Hashtbl.length t.table > t.capacity do
      evict_lru t
    done;
    publish t;
    (prepared, false)

let trim t ~keep =
  let keep = max 0 keep in
  let evicted = ref 0 in
  while Hashtbl.length t.table > keep do
    evict_lru t;
    incr evicted
  done;
  if !evicted > 0 then publish t;
  !evicted

(* Snapshot format: a text header (magic line, hex digest of the
   payload, payload byte length) followed by the raw Marshal blob of
   the entry list. The digest makes a truncated or clobbered file a
   detected cold start instead of a Marshal segfault; the magic pins
   the format version so an old snapshot read by a new binary is
   likewise just cold. [Flow.prepared] is pure data (no closures), so
   Marshal round-trips it. *)
let snapshot_magic = "scanpower-registry-snapshot/1"

let snapshot t ~path =
  let entries =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
    |> List.sort (fun a b -> compare a.last_used b.last_used)
    |> List.map (fun e -> (e.key, e.circuit_name, e.prepared, e.entry_hits))
  in
  let payload =
    Marshal.to_string
      (entries
        : (string * string * Scanpower.Flow.prepared * int) list)
      []
  in
  let digest = Digest.to_hex (Digest.string payload) in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s\n%s\n%d\n" snapshot_magic digest
        (String.length payload);
      output_string oc payload;
      flush oc);
  Unix.rename tmp path;
  List.length entries

let restore t ~path =
  (* Never raises: any defect — missing file, bad magic, short read,
     digest mismatch, malformed Marshal — is a silent cold start. *)
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        if input_line ic <> snapshot_magic then 0
        else
          let digest = input_line ic in
          let len = int_of_string (input_line ic) in
          if len < 0 || len > 1_000_000_000 then 0
          else begin
            let payload = really_input_string ic len in
            if Digest.to_hex (Digest.string payload) <> digest then 0
            else begin
              let entries =
                (Marshal.from_string payload 0
                  : (string * string * Scanpower.Flow.prepared * int) list)
              in
              let restored = ref 0 in
              (* oldest-first insertion keeps the snapshot's LRU order;
                 overflow past capacity evicts the stalest as usual *)
              List.iter
                (fun (key, circuit_name, prepared, entry_hits) ->
                  t.tick <- t.tick + 1;
                  Hashtbl.replace t.table key
                    { key; circuit_name; prepared; entry_hits;
                      last_used = t.tick };
                  incr restored)
                entries;
              ignore (trim t ~keep:t.capacity);
              publish t;
              !restored
            end
          end)
  with _ -> 0

let stats t =
  {
    s_capacity = t.capacity;
    s_entries = Hashtbl.length t.table;
    s_hits = t.hits;
    s_misses = t.misses;
    s_evictions = t.evictions;
  }

let stats_json t =
  let s = stats t in
  let residents =
    Hashtbl.fold
      (fun _ e acc ->
        Json.Obj
          [
            ("key", Json.String e.key);
            ("circuit", Json.String e.circuit_name);
            ("hits", Json.Int e.entry_hits);
          ]
        :: acc)
      t.table []
  in
  Json.Obj
    [
      ("capacity", Json.Int s.s_capacity);
      ("entries", Json.Int s.s_entries);
      ("hits", Json.Int s.s_hits);
      ("misses", Json.Int s.s_misses);
      ("evictions", Json.Int s.s_evictions);
      ("resident", Json.List residents);
    ]
