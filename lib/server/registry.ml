module Json = Telemetry.Json

(* Global counters: one daemon per process, and the metrics snapshot
   is the delivery vehicle for hit/miss/eviction visibility. *)
let c_hits = Telemetry.Counter.make "server.registry.hit"
let c_misses = Telemetry.Counter.make "server.registry.miss"
let c_evictions = Telemetry.Counter.make "server.registry.eviction"
let g_entries = Telemetry.Gauge.make "server.registry.entries"

type entry = {
  key : string;
  circuit_name : string;
  prepared : Scanpower.Flow.prepared;
  mutable entry_hits : int;
  mutable last_used : int;
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  s_capacity : int;
  s_entries : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

let create ?(capacity = 32) () =
  if capacity < 1 then invalid_arg "Registry.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let publish t =
  if Telemetry.enabled () then
    Telemetry.Gauge.set g_entries (float_of_int (Hashtbl.length t.table))

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best <= e.last_used -> acc
        | _ -> Some (key, e.last_used))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1;
    Telemetry.Counter.inc c_evictions

let find_or_prepare t ~key ~name build =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.table key with
  | Some e ->
    e.last_used <- t.tick;
    e.entry_hits <- e.entry_hits + 1;
    t.hits <- t.hits + 1;
    Telemetry.Counter.inc c_hits;
    (e.prepared, true)
  | None ->
    t.misses <- t.misses + 1;
    Telemetry.Counter.inc c_misses;
    (* build before inserting: a failed prepare (validation error)
       must not leave a half-entry resident *)
    let prepared = build () in
    let e =
      { key; circuit_name = name; prepared; entry_hits = 0;
        last_used = t.tick }
    in
    Hashtbl.replace t.table key e;
    while Hashtbl.length t.table > t.capacity do
      evict_lru t
    done;
    publish t;
    (prepared, false)

let stats t =
  {
    s_capacity = t.capacity;
    s_entries = Hashtbl.length t.table;
    s_hits = t.hits;
    s_misses = t.misses;
    s_evictions = t.evictions;
  }

let stats_json t =
  let s = stats t in
  let residents =
    Hashtbl.fold
      (fun _ e acc ->
        Json.Obj
          [
            ("key", Json.String e.key);
            ("circuit", Json.String e.circuit_name);
            ("hits", Json.Int e.entry_hits);
          ]
        :: acc)
      t.table []
  in
  Json.Obj
    [
      ("capacity", Json.Int s.s_capacity);
      ("entries", Json.Int s.s_entries);
      ("hits", Json.Int s.s_hits);
      ("misses", Json.Int s.s_misses);
      ("evictions", Json.Int s.s_evictions);
      ("resident", Json.List residents);
    ]
