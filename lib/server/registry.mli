(** The warm machine registry: compiled (techmapped) circuits plus
    their persistent ATPG outcome ({!Scanpower.Flow.prepared}), keyed
    by {!Scanpower.Flow.prepare_key} — the digest of the netlist text
    and the full ATPG configuration — with LRU eviction at a fixed
    capacity. This is what turns a one-shot pipeline into a serving
    layer: the expensive prepare (techmap + CPT fault-sim + PODEM)
    runs once per distinct (netlist, config) and every later request
    for it pays only {!Scanpower.Flow.evaluate}.

    Hits, misses and evictions are mirrored into the telemetry
    counters [server.registry.{hit,miss,eviction}] and the gauge
    [server.registry.entries], so the metrics snapshot shows the warm
    working set directly. *)

type t

type stats = {
  s_capacity : int;
  s_entries : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

val create : ?capacity:int -> unit -> t
(** Default capacity 32 prepared circuits. Raises [Invalid_argument]
    when [capacity < 1]. *)

val find_or_prepare :
  t ->
  key:string ->
  name:string ->
  (unit -> Scanpower.Flow.prepared) ->
  Scanpower.Flow.prepared * bool
(** Returns the resident machine and [true] on a hit; otherwise runs
    [build], inserts the result, evicts least-recently-used entries
    beyond capacity and returns [..., false]. A [build] that raises
    (e.g. a validation error) inserts nothing. *)

val trim : t -> keep:int -> int
(** Evict least-recently-used entries until at most [keep] remain;
    returns how many were evicted. The memory-pressure watchdog's
    first relief valve. *)

val snapshot : t -> path:string -> int
(** Atomically write every resident entry (Marshal blob guarded by a
    magic line and payload digest) to [path] via a temp-file rename,
    so a reader never sees a torn snapshot. Returns the entry count.
    Raises on I/O errors (unwritable directory). *)

val restore : t -> path:string -> int
(** Load a {!snapshot} back, preserving LRU order; returns how many
    entries were restored. Never raises: a missing, truncated,
    corrupted or version-mismatched file is a silent cold start
    (returns 0). Restored entries count as warm — a later
    [find_or_prepare] on a restored key is a hit. *)

val stats : t -> stats

val stats_json : t -> Telemetry.Json.t
(** [stats] plus one record per resident entry (key, circuit,
    per-entry hits) for the [stats] request and the final drain
    line. *)
