module Json = Telemetry.Json
module E = Scanpower_errors
module Events = Telemetry.Events

let c_restarts = Telemetry.Counter.make "server.supervisor.restarts"

type config = {
  daemon : Daemon.config;
  restart_budget : int;
  restart_refill_s : float;
}

let default_config =
  { daemon = Daemon.default_config; restart_budget = 5; restart_refill_s = 30.0 }

let log config json =
  match config.daemon.Daemon.log with
  | Some oc -> (try Events.write_json_line oc json with _ -> ())
  | None -> ()

let status_fields = function
  | Unix.WEXITED n -> [ ("exited", Json.Int n) ]
  | Unix.WSIGNALED s -> [ ("signaled", Json.Int s) ]
  | Unix.WSTOPPED s -> [ ("stopped", Json.Int s) ]

(* The monitored child: reset inherited handlers (the parent's forward
   SIGTERM to a pid that does not exist on this side of the fork), run
   the daemon, flush every buffered sink, and _exit so the parent's
   at_exit machinery never runs twice. *)
let child_main config ~generation =
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigint Sys.Signal_default;
  let code =
    try
      let daemon_config = { config.daemon with Daemon.generation } in
      let (_stats : Json.t) = Daemon.run ~config:daemon_config () in
      0
    with
    | E.Error e ->
      prerr_endline (E.to_string e);
      E.exit_code e.E.code
    | exn ->
      prerr_endline (Printexc.to_string exn);
      4
  in
  Events.flush_subscribers ();
  (try flush stdout with _ -> ());
  (try flush stderr with _ -> ());
  Unix._exit code

let rec wait_child pid =
  try snd (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.EINTR, _, _) -> wait_child pid

let run ?(config = default_config) () =
  if config.restart_budget < 1 then
    invalid_arg "Supervisor.run: restart_budget must be >= 1";
  if Par.Domain_pool.fork_unavailable () then
    E.raise_error ~code:E.Runtime ~stage:"server.supervisor"
      "cannot supervise: this process has already spawned a domain, so \
       fork is permanently unavailable (OCaml 5 ratchet)";
  (* token bucket: a crash spends one token; [restart_refill_s] of
     uptime earns one back, capped at the budget. A crash loop drains
     it in seconds and exits cleanly instead of storming. *)
  let tokens = ref (float_of_int config.restart_budget) in
  let last_refill = ref (Unix.gettimeofday ()) in
  let refill () =
    let now = Unix.gettimeofday () in
    if config.restart_refill_s > 0.0 then
      tokens :=
        min
          (float_of_int config.restart_budget)
          (!tokens +. ((now -. !last_refill) /. config.restart_refill_s));
    last_refill := now
  in
  let stop = ref false in
  let child_pid = ref None in
  let forward signal _ =
    stop := true;
    match !child_pid with
    | Some pid -> ( try Unix.kill pid signal with _ -> ())
    | None -> ()
  in
  let old_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (forward Sys.sigterm))
  in
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (forward Sys.sigint))
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int)
    (fun () ->
      let generation = ref 0 in
      let finished = ref false in
      while not !finished do
        incr generation;
        match Unix.fork () with
        | 0 -> child_main config ~generation:!generation
        | pid ->
          child_pid := Some pid;
          log config
            (Json.Obj
               [
                 ("event", Json.String "supervisor.child_started");
                 ("pid", Json.Int pid);
                 ("generation", Json.Int !generation);
               ]);
          let status = wait_child pid in
          child_pid := None;
          (match status with
          | Unix.WEXITED 0 ->
            (* the daemon drained and exited on its own terms *)
            finished := true
          | status when !stop ->
            (* we asked it to die; however it went down, we are done *)
            log config
              (Json.Obj
                 (("event", Json.String "supervisor.stopped")
                 :: status_fields status));
            finished := true
          | status ->
            refill ();
            if !tokens < 1.0 then begin
              log config
                (Json.Obj
                   (("event", Json.String "supervisor.budget_exhausted")
                   :: ("generation", Json.Int !generation)
                   :: status_fields status));
              E.raise_error ~code:E.Runtime ~stage:"server.supervisor"
                (Printf.sprintf
                   "restart budget exhausted after %d generations; \
                    refusing to restart-storm"
                   !generation)
            end;
            tokens := !tokens -. 1.0;
            Telemetry.Counter.inc c_restarts;
            log config
              (Json.Obj
                 (("event", Json.String "supervisor.restart")
                 :: ("generation", Json.Int !generation)
                 :: ("tokens_left", Json.Float !tokens)
                 :: status_fields status));
            (* let the dead child's socket file settle; the next
               generation's bind path probes and replaces it *)
            Unix.sleepf 0.05)
      done)
