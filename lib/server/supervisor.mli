(** Crash-only supervision for the daemon: the accept/dispatch loop
    runs in a forked, monitored child, and the parent's only job is to
    watch it die and decide whether to restart it.

    A child that exits 0 (a clean SIGTERM drain) ends supervision. Any
    other death — a crash, an injected [Worker_kill] SIGKILL, an OOM
    kill — spends one token from a restart budget and forks the next
    generation, which re-binds the socket (the stale-socket probe in
    {!Daemon} replaces the dead generation's file) and restores the
    warm registry from the snapshot when one is configured, so clients
    only see a brief connect retry. The token bucket refills with
    uptime; a crash loop drains it in seconds and {!run} then raises a
    [runtime] error (exit 4) instead of restart-storming.

    SIGTERM/SIGINT to the supervisor are forwarded to the live child,
    whose drain writes the final snapshot and flushes telemetry
    subscribers before it exits.

    The generation number is passed to each child
    ({!Daemon.config.generation}): it is echoed in [health]/[stats]
    values — how a chaos test observes the restart — and folded into
    the [Worker_kill] fault-injection roll key so a spec that kills
    generation N deterministically spares N+1.

    The supervisor parent never spawns domains (OCaml 5 permanently
    forbids [fork] afterwards); {!run} refuses to start if this
    process already has. *)

type config = {
  daemon : Daemon.config;  (** per-generation daemon configuration *)
  restart_budget : int;  (** token-bucket capacity; must be [>= 1] *)
  restart_refill_s : float;
      (** seconds of uptime that earn one token back; [<= 0] = no refill *)
}

val default_config : config
(** {!Daemon.default_config}, budget 5, refill 30 s. *)

val run : ?config:config -> unit -> unit
(** Supervise until the child drains cleanly. Raises
    {!Scanpower_errors.Error} with code [Runtime] when the restart
    budget is exhausted or when fork is unavailable, and
    [Invalid_argument] when [restart_budget < 1]. *)
