open Netlist

type t = {
  comp : Compiled.t;
  circuit : Circuit.t;
  values : bool array;
  toggles : int array;
  mutable total : int;
  (* nodes toggled by the last change set, as a reused stack *)
  changed : int array;
  mutable n_changed : int;
  (* level-bucketed pending queue: one exact-capacity int stack per
     level, so scheduling an event is two stores — no cons cells *)
  bucket : int array array;
  bucket_len : int array;
  pending : bool array;
  opcode : int array;
  levels : int array;
  fanout_off : int array;
  fanout : int array;
}

let create c =
  let comp = Compiled.of_circuit c in
  let n = Circuit.node_count c in
  let depth = Compiled.max_level comp in
  let pop = Compiled.level_population comp in
  {
    comp;
    circuit = c;
    values = Array.make n false;
    toggles = Array.make n 0;
    total = 0;
    changed = Array.make n 0;
    n_changed = 0;
    bucket = Array.init (depth + 1) (fun l -> Array.make pop.(l) 0);
    bucket_len = Array.make (depth + 1) 0;
    pending = Array.make n false;
    opcode = Compiled.opcode comp;
    levels = Compiled.levels comp;
    fanout_off = Compiled.fanout_off comp;
    fanout = Compiled.fanout comp;
  }

let circuit t = t.circuit
let compiled t = t.comp
let values t = t.values
let toggle_counts t = t.toggles
let total_toggles t = t.total

let reset_counts t =
  Array.fill t.toggles 0 (Array.length t.toggles) 0;
  t.total <- 0

let init t sources =
  Array.iter
    (fun id ->
      if t.opcode.(id) <= Compiled.op_dff then t.values.(id) <- sources id
      else t.values.(id) <- Compiled.eval_bool t.comp t.values id)
    (Compiled.topo t.comp);
  reset_counts t

(* Flip-flops read combinational nodes through their D fanin, so they
   appear in fanout lists; they must not be re-evaluated by the
   combinational event loop (their value only changes at a capture). *)
let schedule t id =
  if (not t.pending.(id)) && t.opcode.(id) > Compiled.op_dff then begin
    t.pending.(id) <- true;
    let lvl = t.levels.(id) in
    t.bucket.(lvl).(t.bucket_len.(lvl)) <- id;
    t.bucket_len.(lvl) <- t.bucket_len.(lvl) + 1
  end

let record_toggle t id =
  t.toggles.(id) <- t.toggles.(id) + 1;
  t.total <- t.total + 1;
  t.changed.(t.n_changed) <- id;
  t.n_changed <- t.n_changed + 1

(* Most-recently-toggled first: the order the change list had when it
   was a consed list, kept so float accumulation downstream (incremental
   leakage) reproduces the reference run bit for bit. *)
let iter_last_changes t f =
  for i = t.n_changed - 1 downto 0 do
    f t.changed.(i)
  done

let touch t id =
  let lo = t.fanout_off.(id) and hi = t.fanout_off.(id + 1) in
  for i = lo to hi - 1 do
    schedule t t.fanout.(i)
  done

let set_sources t changes =
  t.n_changed <- 0;
  let caused = ref 0 in
  List.iter
    (fun (id, v) ->
      if t.opcode.(id) > Compiled.op_dff then
        invalid_arg "Event_sim.set_sources: not a source node";
      if t.values.(id) <> v then begin
        t.values.(id) <- v;
        record_toggle t id;
        incr caused;
        touch t id
      end)
    changes;
  (* Drain buckets in level order; a node is evaluated at most once per
     change set because levels only increase along fanout edges. Each
     bucket drains newest-first (the consed-list order of the original
     implementation) so downstream float accumulation is reproduced
     exactly. *)
  for lvl = 1 to Array.length t.bucket - 1 do
    let len = t.bucket_len.(lvl) in
    t.bucket_len.(lvl) <- 0;
    let b = t.bucket.(lvl) in
    for i = len - 1 downto 0 do
      let id = b.(i) in
      t.pending.(id) <- false;
      let v = Compiled.eval_bool t.comp t.values id in
      if v <> t.values.(id) then begin
        t.values.(id) <- v;
        record_toggle t id;
        incr caused;
        touch t id
      end
    done
  done;
  !caused
