open Netlist

type t = {
  circuit : Circuit.t;
  values : bool array;
  toggles : int array;
  mutable total : int;
  mutable changed : int list; (* nodes toggled by the last change set *)
  (* level-bucketed pending queue *)
  buckets : int list array;
  pending : bool array;
}

let create c =
  let n = Circuit.node_count c in
  {
    circuit = c;
    values = Array.make n false;
    toggles = Array.make n 0;
    total = 0;
    changed = [];
    buckets = Array.make (Circuit.depth c + 1) [];
    pending = Array.make n false;
  }

let circuit t = t.circuit
let values t = t.values
let toggle_counts t = t.toggles
let total_toggles t = t.total

let reset_counts t =
  Array.fill t.toggles 0 (Array.length t.toggles) 0;
  t.total <- 0

let eval_node t nd =
  let vs = Array.map (fun f -> t.values.(f)) nd.Circuit.fanins in
  Gate.eval_bool nd.Circuit.kind vs

let init t sources =
  let c = t.circuit in
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      if Gate.is_source nd.kind then t.values.(id) <- sources id
      else t.values.(id) <- eval_node t nd)
    (Circuit.topo_order c);
  reset_counts t

(* Flip-flops read combinational nodes through their D fanin, so they
   appear in fanout lists; they must not be re-evaluated by the
   combinational event loop (their value only changes at a capture). *)
let schedule t id =
  if
    (not t.pending.(id))
    && not (Gate.is_source (Circuit.node t.circuit id).Circuit.kind)
  then begin
    t.pending.(id) <- true;
    let lvl = Circuit.level t.circuit id in
    t.buckets.(lvl) <- id :: t.buckets.(lvl)
  end

let record_toggle t id =
  t.toggles.(id) <- t.toggles.(id) + 1;
  t.total <- t.total + 1;
  t.changed <- id :: t.changed

let last_changes t = t.changed

let set_sources t changes =
  let c = t.circuit in
  t.changed <- [];
  let caused = ref 0 in
  let touch id =
    Array.iter (fun succ -> schedule t succ) (Circuit.node c id).Circuit.fanouts
  in
  List.iter
    (fun (id, v) ->
      let nd = Circuit.node c id in
      if not (Gate.is_source nd.kind) then
        invalid_arg "Event_sim.set_sources: not a source node";
      if t.values.(id) <> v then begin
        t.values.(id) <- v;
        record_toggle t id;
        incr caused;
        touch id
      end)
    changes;
  (* Drain buckets in level order; a node is evaluated at most once per
     change set because levels only increase along fanout edges. *)
  for lvl = 1 to Array.length t.buckets - 1 do
    let ids = t.buckets.(lvl) in
    t.buckets.(lvl) <- [];
    List.iter
      (fun id ->
        t.pending.(id) <- false;
        let nd = Circuit.node c id in
        let v = eval_node t nd in
        if v <> t.values.(id) then begin
          t.values.(id) <- v;
          record_toggle t id;
          incr caused;
          touch id
        end)
      ids
  done;
  !caused
