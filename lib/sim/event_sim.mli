(** Event-driven two-valued simulator with per-node toggle counting.

    This is the workhorse of the scan-power measurement: the scan
    simulator applies one source change set per shift/capture cycle and
    the accumulated per-node toggle counts feed the switching-activity
    term of Eq. (1). Events propagate level by level, so a change that
    gets blocked (by a controlling side-input) costs nothing further —
    exactly the effect the paper's transition-blocking vector exploits. *)

open Netlist

type t

val create : Circuit.t -> t
(** Compiles the circuit (see {!Netlist.Compiled}) — structural edits
    to [c] after [create] are not observed by this simulator. *)

val circuit : t -> Circuit.t

val compiled : t -> Compiled.t
(** The flat form this simulator runs on. *)

val values : t -> bool array
(** Current value of every node (aliased, do not mutate). *)

val init : t -> (int -> bool) -> unit
(** Set every source node (position-independent: takes node ids) and
    propagate fully, without counting toggles. Resets toggle counts. *)

val set_sources : t -> (int * bool) list -> int
(** Apply the given (source node id, value) changes and propagate
    events; counts every node toggle (including the sources') into the
    per-node counters and returns the number of toggles caused.
    @raise Invalid_argument if a node is not a source. *)

val iter_last_changes : t -> (int -> unit) -> unit
(** Iterate the node ids toggled by the most recent [set_sources] call
    (any order, no allocation); lets power accounting update
    incrementally. *)

val toggle_counts : t -> int array
(** Accumulated toggles per node id since the last [init]/[reset_counts]
    (aliased, do not mutate). *)

val total_toggles : t -> int

val reset_counts : t -> unit
