open Netlist

type t = {
  comp : Compiled.t;
  words : int64 array;
  diffs : int64 array;
  last : int64 array; (* 0L or 1L: final-lane value of the previous frame *)
  toggles : int array;
  mutable total : int;
  lane_toggles : int array;
}

let create comp =
  let n = Compiled.node_count comp in
  {
    comp;
    words = Array.make n 0L;
    diffs = Array.make n 0L;
    last = Array.make n 0L;
    toggles = Array.make n 0;
    total = 0;
    lane_toggles = Array.make 64 0;
  }

let compiled t = t.comp
let words t = t.words
let diffs t = t.diffs
let lane_toggles t = t.lane_toggles
let toggles t = t.toggles
let total_toggles t = t.total
let final_value t id = t.last.(id) <> 0L

let popcount (x : int64) =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    add
      (logand x 0x3333333333333333L)
      (logand (shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let h_step = Telemetry.Histogram.make "sim.packed.step_s"

let step_untimed t ~count ~record =
  Compiled.eval_words t.comp t.words;
  if record then Array.fill t.lane_toggles 0 64 0;
  let mask =
    if count = 64 then Int64.minus_one
    else Int64.sub (Int64.shift_left 1L count) 1L
  in
  let n = Array.length t.words in
  for id = 0 to n - 1 do
    let w = t.words.(id) in
    let d =
      Int64.logand
        (Int64.logxor w (Int64.logor (Int64.shift_left w 1) t.last.(id)))
        mask
    in
    t.diffs.(id) <- d;
    if record && d <> 0L then begin
      let p = popcount d in
      t.toggles.(id) <- t.toggles.(id) + p;
      t.total <- t.total + p;
      (* distribute onto lanes, scanning 32-lane native-int halves so
         nothing boxes in the loop *)
      let lt = t.lane_toggles in
      let r = ref (Int64.to_int (Int64.logand d 0xFFFFFFFFL)) and lane = ref 0 in
      while !r <> 0 do
        if !r land 1 = 1 then lt.(!lane) <- lt.(!lane) + 1;
        r := !r lsr 1;
        incr lane
      done;
      r := Int64.to_int (Int64.shift_right_logical d 32);
      lane := 32;
      while !r <> 0 do
        if !r land 1 = 1 then lt.(!lane) <- lt.(!lane) + 1;
        r := !r lsr 1;
        incr lane
      done
    end;
    t.last.(id) <- Int64.logand (Int64.shift_right_logical w (count - 1)) 1L
  done

let step t ~count ~record =
  if count < 1 || count > 64 then invalid_arg "Packed_sim.step: bad lane count";
  if not (Telemetry.enabled ()) then step_untimed t ~count ~record
  else begin
    let t0 = Telemetry.now () in
    step_untimed t ~count ~record;
    Telemetry.Histogram.observe h_step (Telemetry.now () -. t0)
  end
