open Netlist

type t = {
  comp : Compiled.t;
  width : int;
  words : int64 array; (* node id's lane words at [id*width .. id*width+width-1] *)
  diffs : int64 array; (* same interleaved layout as [words] *)
  last : int64 array; (* 0L or 1L: final-lane value of the previous frame *)
  toggles : int array;
  mutable total : int;
  lane_toggles : int array; (* 64*width *)
}

let max_width = 8
let g_width = Telemetry.Gauge.make "sim.packed.width"

(* All scratch is sized once here, per machine and per width — the hot
   [step] never allocates. *)
let create ?(width = 1) comp =
  if width < 1 || width > max_width then
    invalid_arg "Packed_sim.create: width must be 1..8";
  let n = Compiled.node_count comp in
  Telemetry.Gauge.set g_width (float_of_int width);
  {
    comp;
    width;
    words = Array.make (n * width) 0L;
    diffs = Array.make (n * width) 0L;
    last = Array.make n 0L;
    toggles = Array.make n 0;
    total = 0;
    lane_toggles = Array.make (64 * width) 0;
  }

let compiled t = t.comp
let width t = t.width
let lanes t = 64 * t.width
let words t = t.words
let diffs t = t.diffs
let lane_toggles t = t.lane_toggles
let toggles t = t.toggles
let total_toggles t = t.total
let final_value t id = t.last.(id) <> 0L

let popcount (x : int64) =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    add
      (logand x 0x3333333333333333L)
      (logand (shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let h_step = Telemetry.Histogram.make "sim.packed.step_s"

let step_untimed t ~count ~record =
  let width = t.width in
  if width = 1 then Compiled.eval_words t.comp t.words
  else Compiled.eval_words_wide t.comp ~width t.words;
  if record then Array.fill t.lane_toggles 0 (64 * width) 0;
  (* lanes fill words low-to-high: word w carries lanes w*64..w*64+63 *)
  let nw = (count + 63) / 64 in
  let rem = count - ((nw - 1) * 64) in
  let last_mask =
    if rem = 64 then Int64.minus_one
    else Int64.sub (Int64.shift_left 1L rem) 1L
  in
  let n = Compiled.node_count t.comp in
  for id = 0 to n - 1 do
    let base = id * width in
    for w = 0 to nw - 1 do
      let x = t.words.(base + w) in
      (* lane 0 of word w diffs against the final lane of word w-1
         (the previous frame's final lane for w = 0) *)
      let cin =
        if w = 0 then t.last.(id)
        else Int64.shift_right_logical t.words.(base + w - 1) 63
      in
      let mask = if w = nw - 1 then last_mask else Int64.minus_one in
      let d =
        Int64.logand
          (Int64.logxor x (Int64.logor (Int64.shift_left x 1) cin))
          mask
      in
      t.diffs.(base + w) <- d;
      if record && d <> 0L then begin
        let p = popcount d in
        t.toggles.(id) <- t.toggles.(id) + p;
        t.total <- t.total + p;
        (* distribute onto lanes, scanning 32-lane native-int halves so
           nothing boxes in the loop *)
        let lt = t.lane_toggles in
        let r = ref (Int64.to_int (Int64.logand d 0xFFFFFFFFL))
        and lane = ref (w * 64) in
        while !r <> 0 do
          if !r land 1 = 1 then lt.(!lane) <- lt.(!lane) + 1;
          r := !r lsr 1;
          incr lane
        done;
        r := Int64.to_int (Int64.shift_right_logical d 32);
        lane := (w * 64) + 32;
        while !r <> 0 do
          if !r land 1 = 1 then lt.(!lane) <- lt.(!lane) + 1;
          r := !r lsr 1;
          incr lane
        done
      end
    done;
    for w = nw to width - 1 do
      t.diffs.(base + w) <- 0L
    done;
    t.last.(id) <-
      Int64.logand
        (Int64.shift_right_logical t.words.(base + nw - 1) (rem - 1))
        1L
  done

let step t ~count ~record =
  if count < 1 || count > 64 * t.width then
    invalid_arg "Packed_sim.step: bad lane count";
  if not (Telemetry.enabled ()) then step_untimed t ~count ~record
  else begin
    let t0 = Telemetry.now () in
    step_untimed t ~count ~record;
    Telemetry.Histogram.observe h_step (Telemetry.now () -. t0)
  end
