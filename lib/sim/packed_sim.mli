(** W×64-wide bit-parallel simulation frames with popcount toggle
    accounting.

    [width] [int64] words per node carry up to [64*width] consecutive
    simulation cycles. Words are interleaved per node — node [id]'s
    lane words live at [id*width .. id*width + width - 1], so one
    gate's whole batch is contiguous and the CSR fanin indices are
    fetched once per gate instead of once per word (the cache-blocking
    that makes W=4/W=8 pay). Lane [l] = bit [l mod 64] of word
    [l / 64]. The driver writes the source words of a frame, calls
    {!step}, and the kernel evaluates the whole combinational core
    once for all lanes, then counts per-node and per-lane toggles from
    [popcount (prev lxor cur)] — including the lane-0 boundary against
    the final lane of the previous frame, and each word's lane-0
    boundary against the previous word's lane 63.

    This is the engine under the packed scan-shift measurement in
    {!Scan.Scan_sim}: during shift the chain is a pure shift register,
    so every lane's pseudo-input values are known in advance and
    [64*width] shift cycles cost one combinational sweep. Toggle
    counts are bit-identical to replaying the same cycles one by one
    through {!Event_sim}, and identical across widths (both count
    settled-state Hamming distance between consecutive cycles). *)

open Netlist

type t

val max_width : int
(** Widest supported batch: 8 words = 512 lanes per frame. *)

val create : ?width:int -> Compiled.t -> t
(** [width] words per node, 1..8 (default 1 — the original 64-lane
    layout, byte-for-byte). All scratch ([words]/[diffs]/[last]/lane
    tallies) is preallocated here per width; {!step} never allocates.
    Sets the [sim.packed.width] telemetry gauge. *)

val compiled : t -> Compiled.t

val width : t -> int

val lanes : t -> int
(** [64 * width]: lanes per frame. *)

val words : t -> int64 array
(** Node-indexed lane words (aliased), interleaved: node [id] word [w]
    at [id*width + w]. Before each {!step} the driver writes the
    source entries; {!step} overwrites every non-source entry. *)

val step : t -> count:int -> record:bool -> unit
(** Evaluate one frame of [count] lanes (1..[64*width]). With
    [record], add per-node toggle counts (against the previous frame's
    final lane) into {!toggles} / {!total_toggles} and tally per-lane
    sums into {!lane_toggles}. Without it (initial settle), only the
    frame boundary state advances. Lanes at index [count] and above
    are ignored. *)

val diffs : t -> int64 array
(** Per-node toggle mask of the last frame (aliased, same layout as
    {!words}): lane bit set iff the node's value at that lane differs
    from the lane before it (lane 0 diffing against the previous
    frame). Valid after {!step}, also when [record] was false. *)

val lane_toggles : t -> int array
(** Length [64*width]; entry [l] = total toggles in lane [l] of the
    last recorded frame (aliased; cleared by every recording
    {!step}). *)

val toggles : t -> int array
(** Accumulated per-node toggle counts (aliased). *)

val total_toggles : t -> int

val final_value : t -> int -> bool
(** Node value in the final lane of the last frame — the "current"
    settled state at a frame boundary. *)

val popcount : int64 -> int
(** Number of set bits (branch-free SWAR; no hardware popcount
    dependency). *)
