(** 64-wide bit-parallel simulation frames with popcount toggle
    accounting.

    One [int64] word per node carries 64 consecutive simulation cycles
    (lane [l] = bit [l]). The driver writes the source words of a
    frame, calls {!step}, and the kernel evaluates the whole
    combinational core once for all lanes, then counts per-node and
    per-lane toggles from [popcount (prev lxor cur)] — including the
    lane-0 boundary against the final lane of the previous frame.

    This is the engine under the packed scan-shift measurement in
    {!Scan.Scan_sim}: during shift the chain is a pure shift register,
    so every lane's pseudo-input values are known in advance and 64
    shift cycles cost one combinational sweep. Toggle counts are
    bit-identical to replaying the same cycles one by one through
    {!Event_sim} (both count settled-state Hamming distance between
    consecutive cycles). *)

open Netlist

type t

val create : Compiled.t -> t

val compiled : t -> Compiled.t

val words : t -> int64 array
(** Node-indexed lane words (aliased). Before each {!step} the driver
    writes the source entries; {!step} overwrites every non-source
    entry. *)

val step : t -> count:int -> record:bool -> unit
(** Evaluate one frame of [count] lanes (1..64). With [record], add
    per-node toggle counts (against the previous frame's final lane)
    into {!toggles} / {!total_toggles} and tally per-lane sums into
    {!lane_toggles}. Without it (initial settle), only the frame
    boundary state advances. Lanes at index [count] and above are
    ignored. *)

val diffs : t -> int64 array
(** Per-node toggle mask of the last frame (aliased): bit [l] set iff
    the node's value at lane [l] differs from lane [l-1] (lane 0
    diffing against the previous frame). Valid after {!step}, also
    when [record] was false. *)

val lane_toggles : t -> int array
(** Length 64; entry [l] = total toggles in lane [l] of the last
    recorded frame (aliased; cleared by every recording {!step}). *)

val toggles : t -> int array
(** Accumulated per-node toggle counts (aliased). *)

val total_toggles : t -> int

val final_value : t -> int -> bool
(** Node value in the final lane of the last frame — the "current"
    settled state at a frame boundary. *)

val popcount : int64 -> int
(** Number of set bits (SWAR; no hardware popcount dependency). *)
