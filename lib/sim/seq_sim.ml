open Netlist

type t = {
  circuit : Circuit.t;
  mutable present : bool array;
}

let create ?init_state c =
  let n = Array.length (Circuit.dffs c) in
  let present =
    match init_state with
    | None -> Array.make n false
    | Some s ->
      if Array.length s <> n then
        invalid_arg "Seq_sim.create: state length mismatch";
      Array.copy s
  in
  { circuit = c; present }

let state t = Array.copy t.present

let set_state t s =
  if Array.length s <> Array.length t.present then
    invalid_arg "Seq_sim.set_state: state length mismatch";
  t.present <- Array.copy s

let eval t pi_vector =
  let to_l b = Logic.of_bool b in
  let values =
    Ternary_sim.eval t.circuit
      ~inputs:(fun i -> to_l pi_vector.(i))
      ~state:(fun i -> to_l t.present.(i))
  in
  let force v =
    match Logic.to_bool v with
    | Some b -> b
    | None -> assert false (* two-valued inputs cannot produce X *)
  in
  let outs = Array.map force (Ternary_sim.outputs_of t.circuit values) in
  let next = Array.map force (Ternary_sim.next_state_of t.circuit values) in
  (outs, next)

let step t pi_vector =
  let outs, next = eval t pi_vector in
  t.present <- next;
  outs

let outputs_only t pi_vector = fst (eval t pi_vector)

let run t vectors = List.map (step t) vectors
