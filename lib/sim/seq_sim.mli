(** Cycle-based two-valued sequential simulation: apply a primary-input
    vector, read outputs, clock the flip-flops. Used for functional
    equivalence checks (techmap) and test-response computation. *)

open Netlist

type t

val create : ?init_state:bool array -> Circuit.t -> t
(** Flip-flops start at [init_state] (default all-zero).
    @raise Invalid_argument on state length mismatch. *)

val state : t -> bool array
(** Present state in [Circuit.dffs] order (copy). *)

val set_state : t -> bool array -> unit

val step : t -> bool array -> bool array
(** [step t pi_vector] applies the vector, returns the primary-output
    values and clocks the captured next state into the flip-flops. *)

val outputs_only : t -> bool array -> bool array
(** Combinational evaluation of the outputs for a vector without
    clocking the state. *)

val run : t -> bool array list -> bool array list
(** [step] over a vector sequence, collecting output responses. *)
