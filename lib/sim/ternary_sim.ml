open Netlist

type values = Logic.t array

let make_values c v = Array.make (Circuit.node_count c) v

(* Tail-recursive folds over the fanin index array: the hot loop of
   every three-valued evaluation allocates nothing (the old
   [Array.map] built a fresh fanin-value array per gate). Arities were
   validated at circuit construction. *)

let rec fold_and (values : values) (fanins : int array) i n acc =
  if i >= n then acc
  else fold_and values fanins (i + 1) n (Logic.( &&& ) acc values.(fanins.(i)))

let rec fold_or (values : values) (fanins : int array) i n acc =
  if i >= n then acc
  else fold_or values fanins (i + 1) n (Logic.( ||| ) acc values.(fanins.(i)))

let rec fold_xor (values : values) (fanins : int array) i n acc =
  if i >= n then acc
  else fold_xor values fanins (i + 1) n (Logic.xor acc values.(fanins.(i)))

let eval_node c (values : values) id =
  let nd = Circuit.node c id in
  let fanins = nd.fanins in
  let n = Array.length fanins in
  match nd.kind with
  | Gate.Input | Gate.Dff -> invalid_arg "Ternary_sim.eval_node: source node"
  | Gate.Output | Gate.Buf -> values.(fanins.(0))
  | Gate.Not -> Logic.lnot values.(fanins.(0))
  | Gate.And -> fold_and values fanins 0 n Logic.One
  | Gate.Nand -> Logic.lnot (fold_and values fanins 0 n Logic.One)
  | Gate.Or -> fold_or values fanins 0 n Logic.Zero
  | Gate.Nor -> Logic.lnot (fold_or values fanins 0 n Logic.Zero)
  | Gate.Xor -> fold_xor values fanins 0 n Logic.Zero
  | Gate.Xnor -> Logic.lnot (fold_xor values fanins 0 n Logic.Zero)

let propagate c values =
  Array.iter
    (fun id ->
      if not (Gate.is_source (Circuit.node c id).kind) then
        values.(id) <- eval_node c values id)
    (Circuit.topo_order c)

let eval c ~inputs ~state =
  let values = make_values c Logic.X in
  Array.iteri (fun pos id -> values.(id) <- inputs pos) (Circuit.inputs c);
  Array.iteri (fun pos id -> values.(id) <- state pos) (Circuit.dffs c);
  propagate c values;
  values

let eval_vector c pi_values ff_values =
  if Array.length pi_values <> Array.length (Circuit.inputs c) then
    invalid_arg "Ternary_sim.eval_vector: wrong number of input values";
  if Array.length ff_values <> Array.length (Circuit.dffs c) then
    invalid_arg "Ternary_sim.eval_vector: wrong number of state values";
  eval c ~inputs:(fun i -> pi_values.(i)) ~state:(fun i -> ff_values.(i))

let outputs_of c values =
  Array.map (fun id -> values.((Circuit.node c id).fanins.(0))) (Circuit.outputs c)

let next_state_of c values =
  Array.map (fun id -> values.((Circuit.node c id).fanins.(0))) (Circuit.dffs c)
