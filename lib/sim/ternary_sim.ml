open Netlist

type values = Logic.t array

let make_values c v = Array.make (Circuit.node_count c) v

let propagate c values =
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      if not (Gate.is_source nd.kind) then begin
        let vs = Array.map (fun f -> values.(f)) nd.fanins in
        values.(id) <- Gate.eval nd.kind vs
      end)
    (Circuit.topo_order c)

let eval c ~inputs ~state =
  let values = make_values c Logic.X in
  Array.iteri (fun pos id -> values.(id) <- inputs pos) (Circuit.inputs c);
  Array.iteri (fun pos id -> values.(id) <- state pos) (Circuit.dffs c);
  propagate c values;
  values

let eval_vector c pi_values ff_values =
  if Array.length pi_values <> Array.length (Circuit.inputs c) then
    invalid_arg "Ternary_sim.eval_vector: wrong number of input values";
  if Array.length ff_values <> Array.length (Circuit.dffs c) then
    invalid_arg "Ternary_sim.eval_vector: wrong number of state values";
  eval c ~inputs:(fun i -> pi_values.(i)) ~state:(fun i -> ff_values.(i))

let outputs_of c values =
  Array.map (fun id -> values.((Circuit.node c id).fanins.(0))) (Circuit.outputs c)

let next_state_of c values =
  Array.map (fun id -> values.((Circuit.node c id).fanins.(0))) (Circuit.dffs c)
