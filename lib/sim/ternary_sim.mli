(** Levelised three-valued (0/1/X) simulation of the combinational
    core. Values are dense arrays indexed by node id; flip-flop nodes
    carry their present-state value and primary inputs their applied
    value. *)

open Netlist

type values = Logic.t array

val make_values : Circuit.t -> Logic.t -> values
(** Fresh value array filled with the given constant. *)

val propagate : Circuit.t -> values -> unit
(** Evaluate every non-source node in topological order, in place.
    Source (Input/Dff) entries are read, never written. *)

val eval :
  Circuit.t -> inputs:(int -> Logic.t) -> state:(int -> Logic.t) -> values
(** Build a value array from the given primary-input and flip-flop
    assignment functions (indexed by position within
    [Circuit.inputs]/[Circuit.dffs]) and propagate. *)

val eval_vector : Circuit.t -> Logic.t array -> Logic.t array -> values
(** [eval_vector c pi_values ff_values]: positional variant of {!eval}.
    @raise Invalid_argument on length mismatch. *)

val outputs_of : Circuit.t -> values -> Logic.t array
(** Primary-output values in [Circuit.outputs] order. *)

val next_state_of : Circuit.t -> values -> Logic.t array
(** Values captured by each flip-flop (its D fanin), in
    [Circuit.dffs] order. *)
