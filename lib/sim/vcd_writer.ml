open Netlist

type t = {
  circuit : Circuit.t;
  timescale : string;
  codes : string array; (* per node id *)
  current : bool option array;
  mutable last_time : int;
  changes : Buffer.t;
}

(* VCD identifier codes: printable ASCII 33..126, little-endian base-94. *)
let code_of_index i =
  let buf = Buffer.create 2 in
  let rec go i =
    Buffer.add_char buf (Char.chr (33 + (i mod 94)));
    if i >= 94 then go ((i / 94) - 1)
  in
  go i;
  Buffer.contents buf

let create ?(timescale = "1ns") c =
  let n = Circuit.node_count c in
  {
    circuit = c;
    timescale;
    codes = Array.init n code_of_index;
    current = Array.make n None;
    last_time = -1;
    changes = Buffer.create 4096;
  }

let sample t ~time values =
  if Array.length values <> Circuit.node_count t.circuit then
    invalid_arg "Vcd_writer.sample: wrong array length";
  if time < t.last_time then invalid_arg "Vcd_writer.sample: time went backwards";
  let header_emitted = ref false in
  Array.iteri
    (fun id v ->
      if t.current.(id) <> Some v then begin
        if not !header_emitted then begin
          Buffer.add_string t.changes (Printf.sprintf "#%d\n" time);
          header_emitted := true
        end;
        Buffer.add_string t.changes
          (Printf.sprintf "%c%s\n" (if v then '1' else '0') t.codes.(id));
        t.current.(id) <- Some v
      end)
    values;
  t.last_time <- time

(* VCD identifiers may not contain whitespace; netlist names are safe
   except for '$', which VCD tolerates, so names pass through. *)
let to_string t =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "$date scanpower $end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" t.timescale);
  Buffer.add_string buf
    (Printf.sprintf "$scope module %s $end\n" (Circuit.name t.circuit));
  Array.iter
    (fun nd ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s $end\n" t.codes.(nd.Circuit.id)
           nd.Circuit.name))
    (Circuit.nodes t.circuit);
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  Buffer.add_buffer buf t.changes;
  Buffer.contents buf

let to_file t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
