(** Value-change-dump (IEEE 1364 VCD) recording of a simulation run,
    viewable in GTKWave & co. Drive it manually around any simulator:
    snapshot the node values after each cycle and only the changes are
    emitted. *)

open Netlist

type t

val create : ?timescale:string -> Circuit.t -> t
(** Fresh recorder with all values unknown; default timescale "1ns". *)

val sample : t -> time:int -> bool array -> unit
(** Record the node values (indexed by node id) at [time]; times must
    be non-decreasing.
    @raise Invalid_argument on a stale time or wrong array length. *)

val to_string : t -> string
(** Render header + change stream. *)

val to_file : t -> string -> unit
