open Netlist

let clk_to_q = 35.0

type t = {
  circuit : Circuit.t;
  loads : float array;
  delays : float array;
  arrivals : float array;
  requireds : float array;
  crit : float;
}

let is_endpoint nd =
  match nd.Circuit.kind with
  | Gate.Output | Gate.Dff -> true
  | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
  | Gate.Nor | Gate.Xor | Gate.Xnor ->
    false

let node_delay c loads id =
  let nd = Circuit.node c id in
  match nd.Circuit.kind with
  | Gate.Input | Gate.Dff | Gate.Output -> 0.0
  | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
  | Gate.Xor | Gate.Xnor ->
    (match Techmap.Mapper.cell_of_node c id with
    | Some cell -> Techlib.Cell.delay cell ~load:loads.(id)
    | None -> invalid_arg "Sta: circuit is not mapped")

let launch nd =
  match nd.Circuit.kind with
  | Gate.Dff -> clk_to_q
  | Gate.Input -> 0.0
  | Gate.Output | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
  | Gate.Nor | Gate.Xor | Gate.Xnor ->
    0.0

(* Forward pass with per-source extra launch penalties. *)
let arrivals_with c loads ~penalty =
  let n = Circuit.node_count c in
  let arr = Array.make n 0.0 in
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      if Gate.is_source nd.kind then arr.(id) <- launch nd +. penalty id
      else begin
        let best = ref 0.0 in
        (* a flip-flop D pin ends a path: the Dff node's own arrival is
           its launch, handled above, so only non-source nodes fold
           their fanins *)
        Array.iter (fun f -> best := Float.max !best arr.(f)) nd.fanins;
        arr.(id) <- !best +. node_delay c loads id
      end)
    (Circuit.topo_order c);
  arr

(* The arrival at an endpoint: output markers carry their fanin arrival
   (zero own delay); a flip-flop's data arrival is its D fanin's. *)
let endpoint_arrival c arr id =
  let nd = Circuit.node c id in
  match nd.Circuit.kind with
  | Gate.Output -> arr.(id)
  | Gate.Dff -> if Array.length nd.fanins > 0 then arr.(nd.fanins.(0)) else 0.0
  | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
  | Gate.Nor | Gate.Xor | Gate.Xnor ->
    arr.(id)

let max_endpoint_arrival c arr =
  let crit = ref 0.0 in
  Array.iter
    (fun nd ->
      if is_endpoint nd then
        crit := Float.max !crit (endpoint_arrival c arr nd.Circuit.id))
    (Circuit.nodes c);
  !crit

let analyze c =
  let loads = Techmap.Loads.all c in
  let n = Circuit.node_count c in
  let delays = Array.init n (node_delay c loads) in
  let arrivals = arrivals_with c loads ~penalty:(fun _ -> 0.0) in
  let crit = max_endpoint_arrival c arrivals in
  (* Backward pass: required(n) = min over combinational readers of
     (required(reader) - delay(reader)); endpoints require [crit]. *)
  let requireds = Array.make n infinity in
  let topo = Circuit.topo_order c in
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Output | Gate.Dff ->
        Array.iter
          (fun f -> requireds.(f) <- Float.min requireds.(f) crit)
          nd.Circuit.fanins
      | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
      | Gate.Nor | Gate.Xor | Gate.Xnor ->
        ())
    (Circuit.nodes c);
  for i = Array.length topo - 1 downto 0 do
    let id = topo.(i) in
    let nd = Circuit.node c id in
    if not (Gate.is_source nd.kind) && nd.kind <> Gate.Output then
      Array.iter
        (fun f ->
          requireds.(f) <- Float.min requireds.(f) (requireds.(id) -. delays.(id)))
        nd.fanins
  done;
  (* nodes driving nothing that times (e.g. dangling gates) never
     constrain anything: give them the full period *)
  Array.iteri
    (fun id r -> if r = infinity then requireds.(id) <- crit)
    requireds;
  { circuit = c; loads; delays; arrivals; requireds; crit }

let circuit t = t.circuit
let arrival t id = t.arrivals.(id)
let required t id = t.requireds.(id)
let slack t id = t.requireds.(id) -. t.arrivals.(id)
let critical_delay t = t.crit
let gate_delay t id = t.delays.(id)
let load t id = t.loads.(id)

let critical_endpoints t =
  let c = t.circuit in
  let eps = 1e-9 in
  Array.to_list (Circuit.nodes c)
  |> List.filter_map (fun nd ->
         if
           is_endpoint nd
           && endpoint_arrival c t.arrivals nd.Circuit.id >= t.crit -. eps
         then Some nd.Circuit.id
         else None)

let critical_path t =
  let c = t.circuit in
  let eps = 1e-9 in
  (* walk back from a critical endpoint through the latest fanin *)
  let start =
    match critical_endpoints t with
    | [] -> None
    | id :: _ -> Some id
  in
  match start with
  | None -> []
  | Some ep ->
    let rec back id acc =
      let nd = Circuit.node c id in
      let acc = id :: acc in
      if Gate.is_source nd.kind || Array.length nd.fanins = 0 then acc
      else begin
        let target = t.arrivals.(id) -. t.delays.(id) in
        let pick = ref nd.fanins.(0) in
        Array.iter
          (fun f ->
            if Float.abs (t.arrivals.(f) -. target) < eps then pick := f)
          nd.fanins;
        back !pick acc
      end
    in
    (* for a Dff endpoint the path ends at its D fanin *)
    let nd = Circuit.node c ep in
    (match nd.Circuit.kind with
    | Gate.Dff -> back nd.fanins.(0) [ ep ]
    | Gate.Output | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand
    | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
      back ep [])

let delay_with_penalty c ~penalties =
  let loads = Techmap.Loads.all c in
  List.iter
    (fun (id, _) ->
      if not (Gate.is_source (Circuit.node c id).Circuit.kind) then
        invalid_arg "Sta.delay_with_penalty: not a source node")
    penalties;
  let penalty id =
    List.fold_left
      (fun acc (pid, p) -> if pid = id then acc +. p else acc)
      0.0 penalties
  in
  let arr = arrivals_with c loads ~penalty in
  max_endpoint_arrival c arr

let fits_without_slowdown t ~source ~penalty =
  let nd = Circuit.node t.circuit source in
  if not (Gate.is_source nd.Circuit.kind) then
    invalid_arg "Sta.fits_without_slowdown: not a source node";
  if Array.length nd.Circuit.fanouts = 0 then true
  else penalty <= slack t source +. 1e-9
