(** Static timing analysis of a mapped circuit.

    Linear delay model: gate delay = intrinsic + drive resistance x
    capacitive load ({!Techlib.Cell}, {!Techmap.Loads}); sources launch
    at the flip-flop clock-to-Q (primary inputs at 0). Timing ends at
    primary outputs and flip-flop D pins.

    AddMUX (Section 4 of the paper) needs to know whether adding a
    multiplexer after a scan cell stretches the critical path. The
    paper re-runs the full analysis per candidate; [fits_without_mux] /
    [slack] give the O(1) equivalent (penalty <= slack), and
    [delay_with_penalty] re-runs the naive analysis so tests can prove
    the two agree. *)

open Netlist

type t

val clk_to_q : float
(** Flip-flop clock-to-output delay, ps. *)

val analyze : Circuit.t -> t
(** @raise Invalid_argument if the circuit contains gates without a
    library cell (run {!Techmap.Mapper.map} first). *)

val circuit : t -> Circuit.t

val arrival : t -> int -> float
(** Arrival time at the node output, ps. *)

val required : t -> int -> float
(** Latest tolerable arrival such that the critical delay holds. *)

val slack : t -> int -> float

val critical_delay : t -> float
(** Maximum arrival over all timing endpoints, ps. *)

val gate_delay : t -> int -> float
(** Delay assigned to the node (0 for sources and output markers). *)

val load : t -> int -> float

val critical_path : t -> int list
(** One maximal path as node ids, source first. *)

val critical_endpoints : t -> int list
(** Endpoints (output markers / flip-flops) whose arrival equals the
    critical delay. *)

val delay_with_penalty : Circuit.t -> penalties:(int * float) list -> float
(** Full re-analysis with extra arrival penalties added at the given
    source nodes; the naive method AddMUX uses in the paper.
    @raise Invalid_argument if a penalised node is not a source. *)

val fits_without_slowdown : t -> source:int -> penalty:float -> bool
(** Incremental equivalent: true iff delaying [source]'s launch by
    [penalty] keeps the critical delay unchanged (slack test, with the
    convention that an unloaded source always fits). *)
