open Netlist

type event = {
  time : float;
  seq : int; (* FIFO tie-break for equal times *)
  target : int;
}

type t = {
  timing : Analysis.t;
  circuit : Circuit.t;
  values : bool array;
  transitions : int array;
  mutable total : int;
  queue : event Util.Heap.t;
  mutable seq : int;
}

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create timing =
  let c = Analysis.circuit timing in
  let n = Circuit.node_count c in
  {
    timing;
    circuit = c;
    values = Array.make n false;
    transitions = Array.make n 0;
    total = 0;
    queue = Util.Heap.create compare_event;
    seq = 0;
  }

let circuit t = t.circuit
let values t = t.values
let transitions t = t.transitions
let total_transitions t = t.total

let reset_counts t =
  Array.fill t.transitions 0 (Array.length t.transitions) 0;
  t.total <- 0

let eval_node t id =
  let nd = Circuit.node t.circuit id in
  Gate.eval_bool nd.kind (Array.map (fun f -> t.values.(f)) nd.fanins)

let init t sources =
  Array.iter
    (fun id ->
      let nd = Circuit.node t.circuit id in
      if Gate.is_source nd.kind then t.values.(id) <- sources id
      else t.values.(id) <- eval_node t nd.id)
    (Circuit.topo_order t.circuit);
  Util.Heap.clear t.queue;
  reset_counts t

let schedule t ~time target =
  t.seq <- t.seq + 1;
  Util.Heap.push t.queue { time; seq = t.seq; target }

let record t id =
  t.transitions.(id) <- t.transitions.(id) + 1;
  t.total <- t.total + 1

(* Transport-delay semantics: when an input of a gate changes at time
   T, the gate re-evaluates at time T + delay(gate); if the recomputed
   value differs from its current output, the output changes (counting
   a transition) and its readers are notified in turn. A later
   cancelling change simply produces another event — that pulse pair
   is exactly the glitch being counted. *)
let apply t changes =
  let caused = ref 0 in
  let change id v =
    if t.values.(id) <> v then begin
      t.values.(id) <- v;
      record t id;
      incr caused;
      Array.iter
        (fun succ ->
          let snd_ = Circuit.node t.circuit succ in
          if not (Gate.is_source snd_.Circuit.kind) then
            schedule t ~time:(Analysis.gate_delay t.timing succ) succ)
        (Circuit.node t.circuit id).Circuit.fanouts
    end
  in
  List.iter
    (fun (id, v) ->
      if not (Gate.is_source (Circuit.node t.circuit id).Circuit.kind) then
        invalid_arg "Glitch_sim.apply: not a source node";
      change id v)
    changes;
  (* drain: events carry absolute re-evaluation times relative to the
     change-set origin *)
  let rec drain () =
    if not (Util.Heap.is_empty t.queue) then begin
      let ev = Util.Heap.pop t.queue in
      let v = eval_node t ev.target in
      if t.values.(ev.target) <> v then begin
        t.values.(ev.target) <- v;
        record t ev.target;
        incr caused;
        Array.iter
          (fun succ ->
            let snd_ = Circuit.node t.circuit succ in
            if not (Gate.is_source snd_.Circuit.kind) then
              schedule t
                ~time:(ev.time +. Analysis.gate_delay t.timing succ)
                succ)
          (Circuit.node t.circuit ev.target).Circuit.fanouts
      end;
      drain ()
    end
  in
  drain ();
  !caused
