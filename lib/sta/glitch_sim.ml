open Netlist

type event = {
  time : float;
  seq : int; (* FIFO tie-break for equal times *)
  target : int;
}

type t = {
  timing : Analysis.t;
  circuit : Circuit.t;
  comp : Compiled.t;
  values : bool array;
  transitions : int array;
  mutable total : int;
  queue : event Util.Heap.t;
  mutable seq : int;
}

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create timing =
  let c = Analysis.circuit timing in
  let n = Circuit.node_count c in
  {
    timing;
    circuit = c;
    comp = Compiled.of_circuit c;
    values = Array.make n false;
    transitions = Array.make n 0;
    total = 0;
    queue = Util.Heap.create compare_event;
    seq = 0;
  }

let circuit t = t.circuit
let values t = t.values
let transitions t = t.transitions
let total_transitions t = t.total

let reset_counts t =
  Array.fill t.transitions 0 (Array.length t.transitions) 0;
  t.total <- 0

(* Allocation-free re-evaluation through the compiled CSR form (the
   old path built a fresh fanin-value array per event). *)
let eval_node t id = Compiled.eval_bool t.comp t.values id

let init t sources =
  Array.iter
    (fun id ->
      if Compiled.is_source t.comp id then t.values.(id) <- sources id
      else t.values.(id) <- eval_node t id)
    (Compiled.topo t.comp);
  Util.Heap.clear t.queue;
  reset_counts t

let schedule t ~time target =
  t.seq <- t.seq + 1;
  Util.Heap.push t.queue { time; seq = t.seq; target }

let record t id =
  t.transitions.(id) <- t.transitions.(id) + 1;
  t.total <- t.total + 1

(* Transport-delay semantics: when an input of a gate changes at time
   T, the gate re-evaluates at time T + delay(gate); if the recomputed
   value differs from its current output, the output changes (counting
   a transition) and its readers are notified in turn. A later
   cancelling change simply produces another event — that pulse pair
   is exactly the glitch being counted. *)
let apply t changes =
  let caused = ref 0 in
  let fanout_off = Compiled.fanout_off t.comp in
  let fanout = Compiled.fanout t.comp in
  let notify id base_time =
    for i = fanout_off.(id) to fanout_off.(id + 1) - 1 do
      let succ = fanout.(i) in
      if not (Compiled.is_source t.comp succ) then
        schedule t ~time:(base_time +. Analysis.gate_delay t.timing succ) succ
    done
  in
  let change id v =
    if t.values.(id) <> v then begin
      t.values.(id) <- v;
      record t id;
      incr caused;
      notify id 0.0
    end
  in
  List.iter
    (fun (id, v) ->
      if not (Compiled.is_source t.comp id) then
        invalid_arg "Glitch_sim.apply: not a source node";
      change id v)
    changes;
  (* drain: events carry absolute re-evaluation times relative to the
     change-set origin *)
  let rec drain () =
    if not (Util.Heap.is_empty t.queue) then begin
      let ev = Util.Heap.pop t.queue in
      let v = eval_node t ev.target in
      if t.values.(ev.target) <> v then begin
        t.values.(ev.target) <- v;
        record t ev.target;
        incr caused;
        notify ev.target ev.time
      end;
      drain ()
    end
  in
  drain ();
  !caused
