(** Delay-annotated (transport-delay) event simulation.

    The power measurements in {!Scan.Scan_sim} use zero-delay
    semantics: one settled value per node per cycle, so hazards /
    glitches are invisible. This simulator replays source change sets
    through the {!Analysis} gate delays with transport-delay semantics,
    counting every transient transition — an upper bound on the real
    (inertially filtered) activity. Comparing its counts with the
    zero-delay counts quantifies how much the Eq. (1) figures
    under-estimate (the "glitch factor"), which is an ablation the
    bench harness reports. Final values always agree with the
    zero-delay simulator (the circuit is combinational between
    sources). *)

open Netlist

type t

val create : Analysis.t -> t
(** The timing analysis supplies the circuit and per-gate delays. *)

val circuit : t -> Circuit.t

val init : t -> (int -> bool) -> unit
(** Settle every source at its value; resets counters (the settling
    itself is not counted). *)

val apply : t -> (int * bool) list -> int
(** Apply one source change set and simulate to quiescence; returns
    the number of transitions caused (including glitches) and adds
    them to the per-node counters.
    @raise Invalid_argument if a node is not a source. *)

val values : t -> bool array

val transitions : t -> int array
(** Accumulated per-node transition counts (aliased). *)

val total_transitions : t -> int

val reset_counts : t -> unit
