open Netlist

type path = {
  nodes : int list;
  arrival_ps : float;
  endpoint : int;
  slack_ps : float;
}

let endpoint_arrival t c id =
  let nd = Circuit.node c id in
  match nd.Circuit.kind with
  | Gate.Dff -> Analysis.arrival t nd.Circuit.fanins.(0)
  | Gate.Output | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand
  | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
    Analysis.arrival t id

(* Walk back from [start] through the latest-arriving fanins. *)
let trace_back t c start =
  let eps = 1e-9 in
  let rec back id acc =
    let nd = Circuit.node c id in
    let acc = id :: acc in
    if Gate.is_source nd.Circuit.kind || Array.length nd.Circuit.fanins = 0 then
      acc
    else begin
      let target = Analysis.arrival t id -. Analysis.gate_delay t id in
      let pick = ref nd.Circuit.fanins.(0) in
      Array.iter
        (fun f -> if Float.abs (Analysis.arrival t f -. target) < eps then pick := f)
        nd.Circuit.fanins;
      back !pick acc
    end
  in
  back start []

let top_paths ?(count = 5) t =
  let c = Analysis.circuit t in
  let endpoints =
    Array.to_list (Circuit.outputs c) @ Array.to_list (Circuit.dffs c)
  in
  let scored =
    List.filter_map
      (fun ep ->
        let nd = Circuit.node c ep in
        if Array.length nd.Circuit.fanins = 0 then None
        else Some (ep, endpoint_arrival t c ep))
      endpoints
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  List.map
    (fun (ep, arrival) ->
      let nd = Circuit.node c ep in
      let start =
        match nd.Circuit.kind with
        | Gate.Dff -> nd.Circuit.fanins.(0)
        | Gate.Output | Gate.Input | Gate.Buf | Gate.Not | Gate.And
        | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
          ep
      in
      {
        nodes = trace_back t c start;
        arrival_ps = arrival;
        endpoint = ep;
        slack_ps = Analysis.critical_delay t -. arrival;
      })
    (take count scored)

let slack_histogram ?(bins = 10) t =
  let c = Analysis.circuit t in
  let slacks =
    Array.to_list (Circuit.nodes c)
    |> List.filter_map (fun nd ->
           if Gate.is_logic nd.Circuit.kind then Some (Analysis.slack t nd.Circuit.id)
           else None)
  in
  match slacks with
  | [] -> []
  | first :: _ ->
    let lo = List.fold_left Float.min first slacks in
    let hi = List.fold_left Float.max first slacks in
    let span = Float.max (hi -. lo) 1e-9 in
    let width = span /. float_of_int bins in
    let counts = Array.make bins 0 in
    List.iter
      (fun s ->
        let b = min (bins - 1) (int_of_float ((s -. lo) /. width)) in
        counts.(b) <- counts.(b) + 1)
      slacks;
    List.init bins (fun b ->
        (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width),
         counts.(b)))

let pp_path c fmt p =
  let names =
    List.map (fun id -> (Circuit.node c id).Circuit.name) p.nodes
  in
  Format.fprintf fmt "%.1f ps (slack %.1f) -> %s : %s" p.arrival_ps p.slack_ps
    (Circuit.node c p.endpoint).Circuit.name
    (String.concat " -> " names)

let pp_report ?count c fmt t =
  Format.fprintf fmt "critical delay: %.1f ps@." (Analysis.critical_delay t);
  List.iteri
    (fun i p -> Format.fprintf fmt "  #%d %a@." (i + 1) (pp_path c) p)
    (top_paths ?count t);
  Format.fprintf fmt "slack histogram (logic nodes):@.";
  List.iter
    (fun (lo, hi, n) ->
      Format.fprintf fmt "  [%7.1f, %7.1f) %5d %s@." lo hi n
        (String.make (min 60 n) '#'))
    (slack_histogram t)
