(** Timing reports on top of {!Analysis}: top-K critical paths and a slack
    histogram, in the style of a signoff tool's [report_timing]. *)

open Netlist

type path = {
  nodes : int list;  (** source first *)
  arrival_ps : float;  (** data arrival at the endpoint *)
  endpoint : int;  (** output marker or flip-flop node id *)
  slack_ps : float;
}

val top_paths : ?count:int -> Analysis.t -> path list
(** The [count] (default 5) worst paths, one per distinct endpoint,
    sorted by decreasing arrival. *)

val slack_histogram : ?bins:int -> Analysis.t -> (float * float * int) list
(** [(lo, hi, population)] buckets over the slack range of all logic
    nodes; default 10 bins. *)

val pp_path : Circuit.t -> Format.formatter -> path -> unit

val pp_report : ?count:int -> Circuit.t -> Format.formatter -> Analysis.t -> unit
(** Critical delay, top paths with per-stage names, and the slack
    histogram. *)
