(* Umbrella module of the [sta] library: the timing analysis itself,
   the reporting layer, and the delay-annotated glitch simulator. *)

include Analysis
module Path_report = Path_report
module Glitch_sim = Glitch_sim
