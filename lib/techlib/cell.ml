type t =
  | Inv
  | Nand of int
  | Nor of int

let equal (a : t) (b : t) = a = b

let max_fanin = 4

let all =
  [ Inv; Nand 2; Nand 3; Nand 4; Nor 2; Nor 3; Nor 4 ]

let name = function
  | Inv -> "INV"
  | Nand k -> Printf.sprintf "NAND%d" k
  | Nor k -> Printf.sprintf "NOR%d" k

let fanin = function
  | Inv -> 1
  | Nand k | Nor k -> k

let check k cell =
  if k < 2 || k > max_fanin then None else Some cell

let of_gate kind ~fanin =
  match kind with
  | Netlist.Gate.Not -> if fanin = 1 then Some Inv else None
  | Netlist.Gate.Nand -> check fanin (Nand fanin)
  | Netlist.Gate.Nor -> check fanin (Nor fanin)
  | Netlist.Gate.Input | Netlist.Gate.Dff | Netlist.Gate.Output
  | Netlist.Gate.Buf | Netlist.Gate.And | Netlist.Gate.Or | Netlist.Gate.Xor
  | Netlist.Gate.Xnor ->
    None

(* Representative 45 nm values. Series stacks grow pin size with fanin
   (inputs are widened to keep drive), NOR pays for the slow series
   PMOS pull-up. *)
let input_cap = function
  | Inv -> 1.2
  | Nand k -> 1.2 +. (0.3 *. float_of_int k)
  | Nor k -> 1.3 +. (0.35 *. float_of_int k)

let internal_cap = function
  | Inv -> 0.3
  | Nand k -> 0.25 *. float_of_int (k - 1)
  | Nor k -> 0.3 *. float_of_int (k - 1)

let drive_res = function
  | Inv -> 8.0
  | Nand k -> 8.0 +. (1.5 *. float_of_int k)
  | Nor k -> 9.0 +. (2.5 *. float_of_int k)

let intrinsic_delay = function
  | Inv -> 12.0
  | Nand k -> 12.0 +. (4.0 *. float_of_int k)
  | Nor k -> 13.0 +. (5.0 *. float_of_int k)

let delay cell ~load = intrinsic_delay cell +. (drive_res cell *. load)

let dff_d_cap = 2.0
let output_load_cap = 2.5
let wire_cap_per_fanout = 0.4

(* A transmission-gate MUX2 after the scan cell: one multiplexer
   intrinsic delay plus the extra loading it presents. *)
let mux2_delay_penalty = 24.0
let mux2_area = 1.9

let area = function
  | Inv -> 0.6
  | Nand k -> 0.45 *. float_of_int k
  | Nor k -> 0.5 *. float_of_int k

let pp fmt c = Format.pp_print_string fmt (name c)
