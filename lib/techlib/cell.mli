(** Standard-cell library: the paper maps every circuit onto NAND, NOR
    and inverter cells. Pin capacitances, drive resistance and
    intrinsic delay feed the dynamic-power model (Eq. (1)) and the
    static timing analysis; leakage comes from {!Leakage_table}.

    Electrical units: capacitance in fF, resistance in kOhm, delay in
    ps (kOhm x fF = ps), so delays compose linearly. *)

type t =
  | Inv
  | Nand of int  (** fanin 2..4 *)
  | Nor of int  (** fanin 2..4 *)

val equal : t -> t -> bool

val all : t list
(** Every cell of the library, INV first. *)

val name : t -> string

val fanin : t -> int

val of_gate : Netlist.Gate.kind -> fanin:int -> t option
(** The library cell implementing a mapped gate; [None] for kinds not
    in the library (the techmap guarantees they never appear). *)

val max_fanin : int
(** Largest supported gate fanin (4); the techmap decomposes wider
    gates into trees. *)

val input_cap : t -> float
(** Capacitance of one input pin, fF. *)

val internal_cap : t -> float
(** Lumped internal-node capacitance switched together with the
    output (the C_ij term of Eq. (1)), fF. *)

val drive_res : t -> float
(** Equivalent output drive resistance, kOhm. *)

val intrinsic_delay : t -> float
(** Zero-load delay, ps. *)

val delay : t -> load:float -> float
(** [intrinsic + drive_res * load], ps. *)

val dff_d_cap : float
(** Load presented by a flip-flop D pin, fF. *)

val output_load_cap : float
(** Load presented by a primary output / pad, fF. *)

val wire_cap_per_fanout : float
(** Estimated interconnect capacitance per fanout branch, fF. *)

val mux2_delay_penalty : float
(** Extra delay inserted on a pseudo-input when AddMUX places a
    2-to-1 multiplexer after the scan cell, ps (intrinsic mux delay
    plus its input-pin loading of the scan cell output). *)

val mux2_area : float
(** Area of the inserted multiplexer, um^2 (reported as overhead). *)

val area : t -> float
(** Cell area, um^2. *)

val pp : Format.formatter -> t -> unit
