let vdd = 0.9

let paper_nand2_na = [| 78.0; 264.0; 73.0; 408.0 |]

let n_states cell = 1 lsl Cell.fanin cell

let bit state i = state land (1 lsl i) <> 0

(* Channel potential of device [i] in a series stack: midpoint of its
   source and drain node voltages (node.(i) is the voltage above
   device i; below device 0 sits the near rail at 0). *)
let channel_midpoint nodes i top =
  let below = if i = 0 then 0.0 else nodes.(i - 1) in
  let above = if i = Array.length nodes then top else nodes.(i) in
  0.5 *. (below +. above)

(* Leakage (A) of a cell whose series network is the [series] device
   polarity and whose parallel network is [parallel]. For NAND:
   series = NMOS pull-down to ground, parallel = PMOS pull-up; the
   computation for NOR is the exact mirror, so both share this code in
   source-referred coordinates where the series stack starts at 0 and
   ends at [vdd]. [on i] says whether series device i conducts. *)
let series_parallel_leakage ~series ~parallel ~k ~on =
  let devices =
    List.init k (fun i -> { Transistor.dev = series; gate_on = on i })
  in
  let all_on = List.for_all (fun d -> d.Transistor.gate_on) devices in
  if all_on then begin
    (* Series network conducting: the output sits at the parallel
       network's rail complement, every parallel device is off with the
       full supply across it, and every series gate shows the full
       oxide field. *)
    let sub =
      float_of_int k
      *. Transistor.subthreshold_current parallel ~vgs:0.0 ~vds:vdd ~vsb:0.0
    in
    let tun =
      float_of_int k *. Transistor.gate_tunneling_current series ~vox:vdd
    in
    sub +. tun
  end
  else begin
    let i_stack = Transistor.stack_current devices ~v_rail:vdd in
    let nodes = Transistor.stack_node_voltages devices ~v_rail:vdd in
    let tun_series = ref 0.0 in
    for i = 0 to k - 1 do
      if on i then begin
        let mid = channel_midpoint nodes i vdd in
        tun_series :=
          !tun_series
          +. Transistor.gate_tunneling_current series ~vox:(vdd -. mid)
      end
    done;
    (* Parallel devices whose gate keeps them conducting tie the output
       to the far rail and tunnel across the full oxide drop. *)
    let tun_parallel = ref 0.0 in
    for i = 0 to k - 1 do
      if not (on i) then
        tun_parallel :=
          !tun_parallel +. Transistor.gate_tunneling_current parallel ~vox:vdd
    done;
    i_stack +. !tun_series +. !tun_parallel
  end

let raw_cell_leakage cell state =
  let nand_like ~k ~on =
    series_parallel_leakage ~series:Transistor.default_nmos
      ~parallel:Transistor.default_pmos ~k ~on
  in
  let nor_like ~k ~on =
    series_parallel_leakage ~series:Transistor.default_pmos
      ~parallel:Transistor.default_nmos ~k ~on
  in
  match cell with
  | Cell.Inv ->
    if bit state 0 then
      (* output low: PMOS off across the rail, NMOS gate fully biased *)
      Transistor.subthreshold_current Transistor.default_pmos ~vgs:0.0
        ~vds:vdd ~vsb:0.0
      +. Transistor.gate_tunneling_current Transistor.default_nmos ~vox:vdd
    else
      Transistor.subthreshold_current Transistor.default_nmos ~vgs:0.0
        ~vds:vdd ~vsb:0.0
      +. Transistor.gate_tunneling_current Transistor.default_pmos ~vox:vdd
  | Cell.Nand k -> nand_like ~k ~on:(fun i -> bit state i)
  | Cell.Nor k ->
    (* mirror: PMOS series stack conducts when the input is 0 *)
    nor_like ~k ~on:(fun i -> not (bit state i))

let raw_leakage_na cell ~state =
  if state < 0 || state >= n_states cell then
    invalid_arg "Leakage_table: state out of range";
  raw_cell_leakage cell state *. 1e9

(* Calibration: one global scale factor brings the model's NAND2 total
   onto the paper's Figure 2 total; the NAND2 row itself is then pinned
   to the exact published values. Computed eagerly at module init —
   it is four transistor-stack evaluations, and a [lazy] here would be
   forced concurrently from worker domains (a racy [Lazy.force] raises
   in OCaml 5). *)
let nand2_raw_total =
  let t = ref 0.0 in
  for s = 0 to 3 do
    t := !t +. raw_cell_leakage (Cell.Nand 2) s
  done;
  !t *. 1e9

let calibration_scale =
  let paper_total = Array.fold_left ( +. ) 0.0 paper_nand2_na in
  paper_total /. nand2_raw_total

(* The memo must be readable from any domain without locking — the
   scalar power path calls [leakage_na] per gate per cycle. A
   persistent map behind an [Atomic] gives lock-free reads of an
   immutable snapshot; a cold cell is built outside the CAS loop (two
   racing domains both build, one insert wins, both return a correct
   table). *)
module Cell_map = Map.Make (struct
  type t = Cell.t

  let compare = compare
end)

let table_cache : float array Cell_map.t Atomic.t = Atomic.make Cell_map.empty

let rec table cell =
  match Cell_map.find_opt cell (Atomic.get table_cache) with
  | Some t -> t
  | None ->
    let n = n_states cell in
    let t =
      Array.init n (fun s ->
          match cell with
          | Cell.Nand 2 -> paper_nand2_na.(s)
          | Cell.Inv | Cell.Nand _ | Cell.Nor _ ->
            raw_cell_leakage cell s *. 1e9 *. calibration_scale)
    in
    let cur = Atomic.get table_cache in
    (match Cell_map.find_opt cell cur with
    | Some t -> t
    | None ->
      if Atomic.compare_and_set table_cache cur (Cell_map.add cell t cur) then
        t
      else table cell)

let leakage_na cell ~state =
  if state < 0 || state >= n_states cell then
    invalid_arg "Leakage_table: state out of range";
  (table cell).(state)

let leakage_power_nw cell ~state = leakage_na cell ~state *. vdd

let state_of_values values =
  let s = ref 0 in
  Array.iteri (fun i v -> if v then s := !s lor (1 lsl i)) values;
  !s

let state_of_string str =
  let s = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> s := !s lor (1 lsl i)
      | '0' -> ()
      | _ -> invalid_arg "Leakage_table.state_of_string")
    str;
  !s

let string_of_state cell state =
  String.init (Cell.fanin cell) (fun i -> if bit state i then '1' else '0')

let extreme_state cmp cell =
  let t = table cell in
  let best = ref 0 in
  for s = 1 to Array.length t - 1 do
    if cmp t.(s) t.(!best) then best := s
  done;
  !best

let min_leakage_state cell = extreme_state ( < ) cell
let max_leakage_state cell = extreme_state ( > ) cell

let pp_table fmt cell =
  Format.fprintf fmt "%s:@." (Cell.name cell);
  let t = table cell in
  Array.iteri
    (fun s v ->
      Format.fprintf fmt "  %s -> %7.1f nA@." (string_of_state cell s) v)
    t
