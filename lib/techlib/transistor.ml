type polarity =
  | Nmos
  | Pmos

type params = {
  polarity : polarity;
  w : float;
  l_eff : float;
  vt0 : float;
  n_swing : float;
  delta_body : float;
  eta_dibl : float;
  mu0_cox : float;
  t_ox : float;
  phi_ox : float;
  jg_a : float;
  jg_b : float;
  r_on : float;
}

let thermal_voltage = 0.02585

let default_nmos =
  {
    polarity = Nmos;
    w = 90e-9;
    l_eff = 45e-9;
    vt0 = 0.30;
    n_swing = 1.5;
    delta_body = 0.18;
    eta_dibl = 0.2;
    mu0_cox = 3.2e-4;
    t_ox = 1.2e-9;
    phi_ox = 3.1;
    jg_a = 6.0e5;
    jg_b = 6.9e10;
    r_on = 2.2e3;
  }

let default_pmos =
  {
    polarity = Pmos;
    w = 180e-9;
    l_eff = 45e-9;
    vt0 = 0.29;
    n_swing = 1.5;
    delta_body = 0.18;
    eta_dibl = 0.18;
    mu0_cox = 1.3e-4;
    t_ox = 1.2e-9;
    phi_ox = 4.5;
    (* hole tunnelling: larger barrier, roughly an order of magnitude
       weaker than electron tunnelling at the same field *)
    jg_a = 5.0e4;
    jg_b = 9.6e10;
    r_on = 3.8e3;
  }

(* Eq. (2)-(3). All voltages source-referred and positive for the
   conducting-channel convention; callers map PMOS onto this. *)
let subthreshold_current p ~vgs ~vds ~vsb =
  let vt = thermal_voltage in
  let a = p.mu0_cox *. (p.w /. p.l_eff) *. vt *. vt *. Float.exp 1.8 in
  let vth_eff = p.vt0 +. (p.delta_body *. vsb) -. (p.eta_dibl *. vds) in
  let expo = (vgs -. vth_eff) /. (p.n_swing *. vt) in
  (* clamp to avoid overflow for strongly-on devices *)
  let expo = Float.min expo 60.0 in
  a *. Float.exp expo *. (1.0 -. Float.exp (-.vds /. vt))

(* Eq. (4): direct-tunnelling current density times gate area. *)
let gate_tunneling_current p ~vox =
  if vox <= 0.0 then 0.0
  else begin
    let ratio = Float.min (vox /. p.phi_ox) 0.999 in
    let field = vox /. p.t_ox in
    let j =
      p.jg_a *. field *. field
      *. Float.exp (-.p.jg_b *. (1.0 -. ((1.0 -. ratio) ** 1.5)) /. field)
    in
    j *. p.w *. p.l_eff
  end

type stack_device = {
  dev : params;
  gate_on : bool;
}

(* Conducting devices sitting above the topmost off device pass the far
   rail down weakly (an NMOS passing a high, symmetrically a PMOS
   passing a low) and each drops about one threshold; conducting
   devices below the topmost off device are tied to the near rail and
   drop only their ohmic I*R. The per-device role is fixed by the
   on/off pattern, not by the current, so the bisection stays
   monotone. *)
type role =
  | Off
  | On_strong
  | On_weak_pass

let roles devices =
  let arr = Array.of_list devices in
  let n = Array.length arr in
  let topmost_off = ref (-1) in
  for i = 0 to n - 1 do
    if not arr.(i).gate_on then topmost_off := i
  done;
  let top = !topmost_off in
  Array.mapi
    (fun i d ->
      if not d.gate_on then Off
      else if top >= 0 && i > top then On_weak_pass
      else On_strong)
    arr

(* Voltage an off device needs across drain-source to carry current
   [i] when its source sits at [vs]; monotone in vds. *)
let off_vds_for_current p ~vs ~headroom ~i =
  let current vds = subthreshold_current p ~vgs:(-.vs) ~vds ~vsb:vs in
  if headroom <= 0.0 then 0.0
  else if current headroom <= i then headroom
  else begin
    let lo = ref 0.0 and hi = ref headroom in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if current mid < i then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

(* Walk the stack from the grounded end, returning the voltage reached
   at the top when every device carries current [i] (increasing in i)
   along with every internal node voltage. *)
let walk devices rls ~v_rail ~i =
  let arr = Array.of_list devices in
  let n = Array.length arr in
  let voltages = Array.make n 0.0 in
  let vs = ref 0.0 in
  for idx = 0 to n - 1 do
    let d = arr.(idx) in
    let drop =
      match rls.(idx) with
      | On_strong -> Float.min (i *. d.dev.r_on) (v_rail -. !vs)
      | On_weak_pass -> Float.min d.dev.vt0 (v_rail -. !vs)
      | Off -> off_vds_for_current d.dev ~vs:!vs ~headroom:(v_rail -. !vs) ~i
    in
    vs := !vs +. drop;
    voltages.(idx) <- !vs
  done;
  (!vs, voltages)

let solve_stack devices ~v_rail =
  if devices = [] then invalid_arg "Transistor.stack_current: empty stack";
  if List.for_all (fun d -> d.gate_on) devices then begin
    (* fully conducting: series resistors across the rail *)
    let r = List.fold_left (fun acc d -> acc +. d.dev.r_on) 0.0 devices in
    let i = v_rail /. r in
    let voltages = Array.make (List.length devices) 0.0 in
    let vs = ref 0.0 in
    List.iteri
      (fun idx d ->
        vs := !vs +. (i *. d.dev.r_on);
        voltages.(idx) <- !vs)
      devices;
    (i, voltages)
  end
  else begin
    let rls = roles devices in
    (* upper bound: weakest single off device with the full rail *)
    let i_hi =
      List.fold_left
        (fun acc d ->
          if d.gate_on then acc
          else
            Float.min acc
              (subthreshold_current d.dev ~vgs:0.0 ~vds:v_rail ~vsb:0.0))
        infinity devices
    in
    let lo = ref 0.0 and hi = ref (Float.max i_hi 1e-18) in
    for _ = 1 to 80 do
      let mid = 0.5 *. (!lo +. !hi) in
      let top, _ = walk devices rls ~v_rail ~i:mid in
      if top < v_rail then lo := mid else hi := mid
    done;
    let i = 0.5 *. (!lo +. !hi) in
    let _, voltages = walk devices rls ~v_rail ~i in
    (i, voltages)
  end

let stack_current devices ~v_rail = fst (solve_stack devices ~v_rail)

let stack_node_voltages devices ~v_rail =
  let _, voltages = solve_stack devices ~v_rail in
  let n = Array.length voltages in
  if n <= 1 then [||] else Array.sub voltages 0 (n - 1)
