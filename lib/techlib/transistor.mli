(** Analytic leakage model of a 45 nm MOS transistor.

    This module replaces the paper's HSPICE/BSIM4 characterisation runs.
    It implements the two equations the paper quotes: the BSIM
    subthreshold current (Eq. (2)-(3)) and the Schuegraf-Hu direct
    tunnelling gate current (Eq. (4)), plus a numeric solver for the
    common current of a series transistor stack (the "stack effect"),
    which HSPICE resolves implicitly. Units: volts, amperes, metres. *)

type polarity =
  | Nmos
  | Pmos

type params = {
  polarity : polarity;
  w : float;  (** channel width, m *)
  l_eff : float;  (** effective channel length, m *)
  vt0 : float;  (** zero-bias threshold voltage magnitude, V *)
  n_swing : float;  (** subthreshold swing coefficient n *)
  delta_body : float;  (** body-effect coefficient (linearised), 1/V *)
  eta_dibl : float;  (** DIBL coefficient, V/V *)
  mu0_cox : float;  (** mobility x oxide cap per area, A/V^2 *)
  t_ox : float;  (** oxide thickness, m *)
  phi_ox : float;  (** tunnelling barrier height, V *)
  jg_a : float;  (** tunnelling pre-factor A of Eq. (4) *)
  jg_b : float;  (** tunnelling exponent factor B of Eq. (4) *)
  r_on : float;  (** on-resistance used for conducting devices, ohm *)
}

val default_nmos : params
(** Representative 45 nm NMOS. *)

val default_pmos : params
(** Representative 45 nm PMOS (weaker tunnelling: hole barrier). *)

val thermal_voltage : float
(** kT/q at 300 K, V. *)

val subthreshold_current : params -> vgs:float -> vds:float -> vsb:float -> float
(** Eq. (2): current in amperes through an off (or weakly-on) device.
    Magnitudes are used for PMOS, so callers always pass the
    source-referred positive-channel convention. *)

val gate_tunneling_current : params -> vox:float -> float
(** Eq. (4) integrated over the gate area: amperes for oxide drop
    [vox] >= 0 (returns 0 for [vox] <= 0). *)

(** A device inside a series (pull-down / pull-up) stack. *)
type stack_device = {
  dev : params;
  gate_on : bool;  (** whether the gate turns the channel on *)
}

val stack_current : stack_device list -> v_rail:float -> float
(** [stack_current devices ~v_rail] solves for the common subthreshold
    current of a series stack whose far end sits at [v_rail] and whose
    near end is at 0 (source-referred), ordered from the grounded
    device upward. Uses nested bisection on the stack current and
    intermediate node voltages; this is the stack-effect computation
    HSPICE performs implicitly.
    @raise Invalid_argument on an empty stack. *)

val stack_node_voltages : stack_device list -> v_rail:float -> float array
(** Intermediate node voltages (length [n-1]) found by the same solve,
    from the grounded end upward; used for gate-tunnelling [vox]
    estimation. *)
