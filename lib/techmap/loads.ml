open Netlist

let node_load c id =
  let nd = Circuit.node c id in
  match nd.Circuit.kind with
  | Gate.Output -> 0.0
  | Gate.Input | Gate.Dff | Gate.Buf | Gate.Not | Gate.And | Gate.Nand
  | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
    let pin_cap acc succ =
      let s = Circuit.node c succ in
      match s.Circuit.kind with
      | Gate.Dff -> acc +. Techlib.Cell.dff_d_cap
      | Gate.Output -> acc +. Techlib.Cell.output_load_cap
      | Gate.Input -> acc
      | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        (match Mapper.cell_of_node c succ with
        | Some cell -> acc +. Techlib.Cell.input_cap cell
        | None -> acc)
    in
    let pins = Array.fold_left pin_cap 0.0 nd.Circuit.fanouts in
    pins
    +. (Techlib.Cell.wire_cap_per_fanout
        *. float_of_int (Array.length nd.Circuit.fanouts))

let all c = Array.init (Circuit.node_count c) (node_load c)
