(** Capacitive load seen by every node output of a mapped circuit:
    fanout input-pin capacitances (library cells, flip-flop D pins,
    primary-output pads) plus estimated wiring. Shared by the static
    timing analysis and the dynamic-power model. Unit: fF. *)

open Netlist

val node_load : Circuit.t -> int -> float
(** @raise Invalid_argument if a fanout gate has no library cell. *)

val all : Circuit.t -> float array
(** [node_load] for every node id (Output markers get 0). *)
