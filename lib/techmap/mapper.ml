open Netlist

let max_fanin = Techlib.Cell.max_fanin

let is_mapped c =
  Array.for_all
    (fun nd ->
      (not (Gate.is_logic nd.Circuit.kind))
      || Techlib.Cell.of_gate nd.Circuit.kind
           ~fanin:(Array.length nd.Circuit.fanins)
         <> None)
    (Circuit.nodes c)

let cell_of_node c id =
  let nd = Circuit.node c id in
  if not (Gate.is_logic nd.kind) then None
  else
    match Techlib.Cell.of_gate nd.kind ~fanin:(Array.length nd.fanins) with
    | Some cell -> Some cell
    | None ->
      invalid_arg
        (Printf.sprintf "Techmap.cell_of_node: %s %S has no library cell"
           (Gate.to_string nd.kind) nd.name)

(* Fresh-name generator for gates introduced by the mapping. *)
type namer = {
  mutable counter : int;
  prefix : string;
}

let fresh nm =
  nm.counter <- nm.counter + 1;
  Printf.sprintf "%s%d" nm.prefix nm.counter

(* Split a list into chunks of at most [n] elements. *)
let rec chunks n = function
  | [] -> []
  | xs ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let chunk, rest = take n [] xs in
    chunk :: chunks n rest

let m_mapped = Telemetry.Counter.make "techmap.circuits_mapped"

let map c =
  Telemetry.Counter.inc m_mapped;
  let b = Circuit.Builder.create ~name:(Circuit.name c) () in
  let nm = { counter = 0; prefix = "m$" } in
  let mk_inv x = Circuit.Builder.add_gate b Gate.Not (fresh nm) [ x ] in
  (* NAND of arbitrary width: wide inputs are first collapsed through
     AND subtrees (NAND+INV), keeping every physical gate within the
     library's fanin limit. *)
  let rec mk_nand xs =
    match xs with
    | [] -> invalid_arg "Techmap.mk_nand: no inputs"
    | [ x ] -> mk_inv x
    | xs when List.length xs <= max_fanin ->
      Circuit.Builder.add_gate b Gate.Nand (fresh nm) xs
    | xs ->
      let groups = chunks max_fanin xs in
      mk_nand (List.map mk_and groups)
  and mk_and xs =
    match xs with
    | [ x ] -> x
    | xs -> mk_inv (mk_nand xs)
  in
  let rec mk_nor xs =
    match xs with
    | [] -> invalid_arg "Techmap.mk_nor: no inputs"
    | [ x ] -> mk_inv x
    | xs when List.length xs <= max_fanin ->
      Circuit.Builder.add_gate b Gate.Nor (fresh nm) xs
    | xs ->
      let groups = chunks max_fanin xs in
      mk_nor (List.map mk_or groups)
  and mk_or xs =
    match xs with
    | [ x ] -> x
    | xs -> mk_inv (mk_nor xs)
  in
  (* XOR a b = NAND(NAND(a,t), NAND(b,t)) with t = NAND(a,b). *)
  let mk_xor2 a b1 =
    let t = mk_nand [ a; b1 ] in
    mk_nand [ mk_nand [ a; t ]; mk_nand [ b1; t ] ]
  in
  let mk_xor xs =
    match xs with
    | [] -> invalid_arg "Techmap.mk_xor: no inputs"
    | x :: rest -> List.fold_left mk_xor2 x rest
  in
  let mapped = Array.make (Circuit.node_count c) (-1) in
  let resolve id = mapped.(id) in
  let dff_pending = ref [] in
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      let new_id =
        match nd.kind with
        | Gate.Input -> Circuit.Builder.add_input b nd.name
        | Gate.Dff ->
          let nid = Circuit.Builder.declare_dff b nd.name in
          dff_pending := (nid, nd.fanins.(0)) :: !dff_pending;
          nid
        | Gate.Output -> -2 (* deferred below, after all gates exist *)
        | Gate.Buf -> resolve nd.fanins.(0)
        | Gate.Not -> mk_inv (resolve nd.fanins.(0))
        | Gate.And ->
          mk_inv (mk_nand (Array.to_list (Array.map resolve nd.fanins)))
        | Gate.Nand -> mk_nand (Array.to_list (Array.map resolve nd.fanins))
        | Gate.Or ->
          mk_inv (mk_nor (Array.to_list (Array.map resolve nd.fanins)))
        | Gate.Nor -> mk_nor (Array.to_list (Array.map resolve nd.fanins))
        | Gate.Xor -> mk_xor (Array.to_list (Array.map resolve nd.fanins))
        | Gate.Xnor ->
          mk_inv (mk_xor (Array.to_list (Array.map resolve nd.fanins)))
      in
      mapped.(id) <- new_id)
    (Circuit.topo_order c);
  List.iter
    (fun (nid, d) -> Circuit.Builder.connect_dff b nid ~d:(resolve d))
    !dff_pending;
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      ignore (Circuit.Builder.add_output b nd.name (resolve nd.fanins.(0))))
    (Circuit.outputs c);
  Circuit.Builder.build b
