(** Technology mapping onto the paper's cell library.

    The paper maps every benchmark onto a library containing only NAND
    gates, NOR gates and inverters before measuring power. [map]
    rewrites an arbitrary netlist into that form:

    - AND/OR become NAND/NOR followed by an inverter,
    - XOR/XNOR expand into NAND2 networks,
    - gates wider than {!Techlib.Cell.max_fanin} decompose into trees,
    - buffers are dissolved into wires.

    The result computes the same outputs and next-state functions
    (checked by the test suite via random co-simulation). *)

open Netlist

val map : Circuit.t -> Circuit.t

val is_mapped : Circuit.t -> bool
(** True when every logic gate of the circuit is implementable by a
    library cell ({!Techlib.Cell.of_gate} succeeds). *)

val cell_of_node : Circuit.t -> int -> Techlib.Cell.t option
(** Library cell of a node; [None] for Input/Dff/Output markers.
    @raise Invalid_argument on a logic gate with no library cell
    (i.e. when the circuit is not mapped). *)
