(* A tiny synchronous event bus. Emitters fire named records with
   structured fields; subscribers (a progress-file writer, a future
   daemon's client feed) receive them in subscription order on the
   emitting thread. With no subscribers [emit] is one list test, so
   instrumented code can emit unconditionally. *)

type event = { ts : float; name : string; fields : (string * Json.t) list }

type subscription = int

type sub = { fn : event -> unit; flush : (unit -> unit) option }

let next_id = ref 0
let subscribers : (int * sub) list ref = ref []

let subscribe ?flush fn =
  incr next_id;
  let id = !next_id in
  subscribers := !subscribers @ [ (id, { fn; flush }) ];
  id

let unsubscribe id =
  subscribers := List.filter (fun (i, _) -> i <> id) !subscribers

let has_subscribers () = !subscribers <> []

let emit name fields =
  match !subscribers with
  | [] -> ()
  | subs ->
    let ev = { ts = Unix.gettimeofday (); name; fields } in
    (* a broken subscriber (closed pipe, full disk) must not abort the
       run it is observing *)
    List.iter (fun (_, s) -> try s.fn ev with _ -> ()) subs

(* Called on orderly shutdown paths (SIGTERM drain, supervisor child
   exit) so buffered sinks push their tail before the process goes
   away; a sink that fails to flush is as harmless as one that fails
   to write. *)
let flush_subscribers () =
  List.iter
    (fun (_, s) ->
      match s.flush with Some f -> ( try f () with _ -> ()) | None -> ())
    !subscribers

let to_json ev =
  Json.Obj
    (("ts", Json.Float ev.ts) :: ("event", Json.String ev.name) :: ev.fields)

(* The single NDJSON emission point: [sweep --progress] files and the
   serving daemon's response/event stream both go through here, so
   framing (one compact object, one '\n', flushed — never a partial
   line visible to a tailing reader) is fixed in exactly one place. *)
let write_json_line oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n';
  flush oc

let line_writer oc ev = write_json_line oc (to_json ev)
