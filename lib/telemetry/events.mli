(** Synchronous pub/sub for live progress records.

    The sweep runner emits one event per job transition (started,
    finished, retried, cache hit); a subscriber renders them — e.g.
    {!line_writer} turns each into one JSON line for [--progress].
    With no subscribers, {!emit} costs a single list test, so emitting
    code needs no gating of its own. Subscriber exceptions are
    swallowed: a closed pipe must not abort the run it observes. *)

type event = {
  ts : float;  (** [Unix.gettimeofday] at emission *)
  name : string;
  fields : (string * Json.t) list;
}

type subscription

val subscribe : ?flush:(unit -> unit) -> (event -> unit) -> subscription
(** Callbacks run synchronously on the emitting thread, in
    subscription order. [flush], when given, is invoked by
    {!flush_subscribers} on orderly shutdown so a buffered sink can
    push its tail before the process exits. *)

val unsubscribe : subscription -> unit
val has_subscribers : unit -> bool

val flush_subscribers : unit -> unit
(** Run every subscriber's [flush] callback (exceptions swallowed,
    like event delivery). Shutdown paths — the daemon's SIGTERM drain,
    a supervised child about to [_exit] — call this so the final
    progress events are never lost from a [--progress] stream. *)

val emit : string -> (string * Json.t) list -> unit

val to_json : event -> Json.t
(** [{"ts":..., "event":name, ...fields}]. *)

val write_json_line : out_channel -> Json.t -> unit
(** The one NDJSON framing point shared by [sweep --progress] and the
    serving daemon's response stream: one compact JSON value, one
    ['\n'], flushed, so a tailing reader never observes a torn line. *)

val line_writer : out_channel -> event -> unit
(** [to_json] through {!write_json_line} — NDJSON suitable for
    tailing. *)
