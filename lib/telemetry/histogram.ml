(* Log-bucketed histograms. Buckets are geometric with ratio
   2^(1/4) (~19% per bucket) starting at [lo]; that resolution is far
   below the run-to-run noise of anything we time, so percentiles read
   from bucket midpoints are as trustworthy as exact ones, while
   [observe] stays allocation-free: one compare, one [log], one array
   increment. The same shape works for counts (PODEM backtracks per
   fault) because only ratios matter, not the unit. *)

let lo = 1e-9
let gamma = Float.pow 2.0 0.25
let log_gamma = Float.log gamma
let n_buckets = 200

(* Mirrors the global telemetry switch; [Telemetry.enable]/[disable]
   drive it (this module cannot see [Telemetry.on] without a cycle). *)
let enabled = ref false
let set_enabled b = enabled := b

type t = {
  name : string;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let make name =
  match Hashtbl.find_opt registry name with
  | Some h -> h
  | None ->
    let h =
      {
        name;
        count = 0;
        sum = 0.0;
        min_v = infinity;
        max_v = neg_infinity;
        buckets = Array.make n_buckets 0;
      }
    in
    Hashtbl.add registry name h;
    h

let bucket_of v =
  if not (v > lo) then 0
  else
    let i = int_of_float (Float.ceil (Float.log (v /. lo) /. log_gamma)) in
    if i >= n_buckets then n_buckets - 1 else if i < 0 then 0 else i

(* geometric midpoint of bucket [i]'s range *)
let midpoint i =
  if i = 0 then lo else lo *. Float.pow gamma (float_of_int i -. 0.5)

let observe h v =
  if !enabled && Float.is_finite v then begin
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v;
    let b = h.buckets in
    let i = bucket_of v in
    b.(i) <- b.(i) + 1
  end

let name h = h.name
let count h = h.count

type snapshot = {
  s_name : string;
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* Smallest observed value v such that at least [q]·count observations
   are <= v, estimated by the bucket midpoint and clamped to the exact
   observed range (which rescues the two degenerate buckets: underflow
   at [lo] and overflow at the top). *)
let percentile h q =
  if h.count = 0 then Float.nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let rec walk i seen =
      if i >= n_buckets then midpoint (n_buckets - 1)
      else
        let seen = seen + h.buckets.(i) in
        if seen >= rank then midpoint i else walk (i + 1) seen
    in
    Float.min h.max_v (Float.max h.min_v (walk 0 0))
  end

let snapshot h =
  {
    s_name = h.name;
    s_count = h.count;
    s_sum = h.sum;
    s_min = (if h.count = 0 then Float.nan else h.min_v);
    s_max = (if h.count = 0 then Float.nan else h.max_v);
    p50 = percentile h 0.50;
    p90 = percentile h 0.90;
    p99 = percentile h 0.99;
  }

let snapshot_to_json s =
  Json.Obj
    [
      ("count", Json.Int s.s_count);
      ("sum", Json.Float s.s_sum);
      ("min", Json.Float s.s_min);
      ("max", Json.Float s.s_max);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p99", Json.Float s.p99);
    ]

let find name = Option.map snapshot (Hashtbl.find_opt registry name)

let all () =
  Hashtbl.fold
    (fun _ h acc -> if h.count > 0 then snapshot h :: acc else acc)
    registry []
  |> List.sort (fun a b -> String.compare a.s_name b.s_name)

let reset h =
  h.count <- 0;
  h.sum <- 0.0;
  h.min_v <- infinity;
  h.max_v <- neg_infinity;
  Array.fill h.buckets 0 n_buckets 0

let reset_all () = Hashtbl.iter (fun _ h -> reset h) registry
