(** Log-bucketed histograms for latency/size distributions.

    Geometric buckets (ratio [2^(1/4)], ~19% wide) from 1 ns up;
    [observe] is allocation-free and dropped entirely while telemetry
    is disabled, so hot kernels can record per-pattern timings without
    steering the flow. Handles are registered process-wide by name,
    like {!Telemetry.Counter}. *)

type t

val make : string -> t
(** Idempotent by name: [make] on an existing name returns the
    existing handle. *)

val observe : t -> float -> unit
(** Record one value (seconds, counts — any non-negative unit).
    Dropped while telemetry is disabled; non-finite values are
    ignored. *)

val name : t -> string
val count : t -> int

type snapshot = {
  s_name : string;
  s_count : int;
  s_sum : float;
  s_min : float;  (** nan when empty *)
  s_max : float;  (** nan when empty *)
  p50 : float;  (** bucket-midpoint estimate, clamped to [min,max] *)
  p90 : float;
  p99 : float;
}

val snapshot : t -> snapshot
val snapshot_to_json : snapshot -> Json.t
(** Object with [count], [sum], [min], [max], [p50], [p90], [p99]
    (non-finite floats serialize as [null]). *)

val percentile : t -> float -> float
(** [percentile h q] for [q] in [0,1]; nan when empty. *)

val find : string -> snapshot option
val all : unit -> snapshot list
(** Snapshots of every histogram with at least one observation,
    sorted by name. *)

val reset : t -> unit
val reset_all : unit -> unit

val set_enabled : bool -> unit
(** Internal: mirrors the global telemetry switch. Driven by
    [Telemetry.enable]/[disable]; do not call directly. *)
