type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    (* 17 significant digits: shortest form guaranteed to re-parse to
       the same IEEE-754 double *)
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    (* keep floats recognisable as floats on re-parse *)
    if String.for_all (fun c -> c <> '.' && c <> 'e' && c <> 'E') s then
      Buffer.add_string buf ".0"
  end

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        add buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  add buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let expect st ch =
  match peek st with
  | Some c when c = ch -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" ch)

let literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
        let hex = String.sub st.src st.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail st "invalid \\u escape"
        in
        st.pos <- st.pos + 4;
        (* re-encode as UTF-8 (codes below 0x80 stay plain bytes) *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> fail st "invalid escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  if String.for_all (fun c -> c <> '.' && c <> 'e' && c <> 'E') s then
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail st "invalid integer"
  else
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st "invalid number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let pair () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec items acc =
        let kv = pair () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (items [])
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos = String.length s then Ok v
    else Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> compare x y = 0
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
         x y
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None
