(** Minimal self-contained JSON tree: just enough to emit the metrics
    snapshot and JSON-lines trace, and to parse them back so exported
    data can be verified without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. Always valid JSON: non-finite floats
    (which JSON cannot represent) are emitted as [null]; finite floats
    are printed with 17 significant digits so they re-parse to the same
    IEEE value. *)

val of_string : string -> (t, string) result
(** Strict parser for the subset [to_string] emits plus the usual JSON
    liberties (whitespace, nested containers, string escapes including
    [\uXXXX]). Numbers without [.], [e] or [E] parse as [Int]. *)

val equal : t -> t -> bool
(** Structural equality; [Float] payloads compare by total order so
    that [equal x (parse (print x))] holds even through [nan]. *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks up [key]; [None] on anything else. *)
