module Json = Json
module Histogram = Histogram
module Events = Events
module Trace_export = Trace_export

(* ------------------------------------------------------------------ *)
(* global switch, level, trace sink                                    *)
(* ------------------------------------------------------------------ *)

let on = ref false

let enable () =
  on := true;
  Histogram.set_enabled true

let disable () =
  on := false;
  Histogram.set_enabled false

let enabled () = !on

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other ->
    Error
      (Printf.sprintf "unknown log level %S (expected debug|info|warn|error)"
         other)

let threshold = ref Info
let set_level l = threshold := l
let level () = !threshold

let trace_chan : out_channel option ref = ref None

let close_trace () =
  match !trace_chan with
  | None -> ()
  | Some oc ->
    close_out oc;
    trace_chan := None

let set_trace_file path =
  close_trace ();
  trace_chan := Some (open_out path)

let now () = Unix.gettimeofday ()

(* One JSON object per line; every record carries its wall-clock
   timestamp and record type. *)
let trace_event typ fields =
  match !trace_chan with
  | None -> ()
  | Some oc ->
    let record =
      Json.Obj (("ts", Json.Float (now ())) :: ("type", Json.String typ) :: fields)
    in
    output_string oc (Json.to_string record);
    output_char oc '\n';
    flush oc

(* ------------------------------------------------------------------ *)
(* structured logging                                                  *)
(* ------------------------------------------------------------------ *)

module Log = struct
  let field_to_text (k, v) =
    let s =
      match v with
      | Json.String s -> s
      | other -> Json.to_string other
    in
    Printf.sprintf " %s=%s" k s

  let log lvl ?(fields = []) msg =
    if !on && severity lvl >= severity !threshold then begin
      Printf.eprintf "[%-5s] %s%s\n%!" (level_to_string lvl) msg
        (String.concat "" (List.map field_to_text fields));
      trace_event "log"
        [
          ("level", Json.String (level_to_string lvl));
          ("msg", Json.String msg);
          ("fields", Json.Obj fields);
        ]
    end

  let debug ?fields msg = log Debug ?fields msg
  let info ?fields msg = log Info ?fields msg
  let warn ?fields msg = log Warn ?fields msg
  let error ?fields msg = log Error ?fields msg
end

(* ------------------------------------------------------------------ *)
(* spans                                                               *)
(* ------------------------------------------------------------------ *)

module Span = struct
  (* The GC fields hold [Gc.quick_stat] values at entry while the span
     is open and are rewritten to deltas when it closes (except
     [top_heap_words], which stays the absolute peak — a process-wide
     high-water mark has no meaningful per-span delta). *)
  type t = {
    name : string;
    fields : (string * Json.t) list;
    start : float;
    mutable stop : float;
    mutable children_rev : t list;
    mutable minor_words : float;
    mutable promoted_words : float;
    mutable major_words : float;
    mutable minor_collections : int;
    mutable major_collections : int;
    mutable top_heap_words : int;
  }

  (* innermost open span first *)
  let stack : t list ref = ref []
  let roots_rev : t list ref = ref []

  let clear () =
    stack := [];
    roots_rev := []

  let duration_s s = s.stop -. s.start
  let children s = List.rev s.children_rev
  let roots () = List.rev !roots_rev

  let finish sp =
    let t = now () in
    let st = Gc.quick_stat () in
    let close s =
      if Float.is_nan s.stop then begin
        s.stop <- t;
        s.minor_words <- st.Gc.minor_words -. s.minor_words;
        s.promoted_words <- st.Gc.promoted_words -. s.promoted_words;
        s.major_words <- st.Gc.major_words -. s.major_words;
        s.minor_collections <- st.Gc.minor_collections - s.minor_collections;
        s.major_collections <- st.Gc.major_collections - s.major_collections;
        s.top_heap_words <- st.Gc.top_heap_words
      end
    in
    close sp;
    (* pop up to and including [sp]; anything above it was left open by
       an exception path that bypassed its own [finish] ([with_] cannot
       leak — its Fun.protect always closes — but a direct user of the
       span API can). Close strays here too so every span_start in the
       trace gets its span_end and the tree stays well-formed. *)
    let rec pop = function
      | [] -> []
      | s :: rest ->
        if s == sp then rest
        else begin
          close s;
          sp.children_rev <- s :: sp.children_rev;
          trace_event "span_end"
            [
              ("name", Json.String s.name);
              ("duration_s", Json.Float (duration_s s));
              ("abandoned", Json.Bool true);
            ];
          pop rest
        end
    in
    stack := pop !stack;
    (match !stack with
    | parent :: _ -> parent.children_rev <- sp :: parent.children_rev
    | [] -> roots_rev := sp :: !roots_rev);
    trace_event "span_end"
      [
        ("name", Json.String sp.name);
        ("duration_s", Json.Float (duration_s sp));
        ("depth", Json.Int (List.length !stack));
      ]

  (* The span stack is a plain global: concurrent pushes from worker
     domains would corrupt the tree (and misattribute GC deltas), so
     span recording is main-domain-only. Worker-domain work is timed
     by counters/histograms instead, whose word-sized races only lose
     the odd increment. *)
  let with_ ?(fields = []) ~name fn =
    if (not !on) || not (Domain.is_main_domain ()) then fn ()
    else begin
      let st = Gc.quick_stat () in
      let sp =
        {
          name;
          fields;
          start = now ();
          stop = nan;
          children_rev = [];
          minor_words = st.Gc.minor_words;
          promoted_words = st.Gc.promoted_words;
          major_words = st.Gc.major_words;
          minor_collections = st.Gc.minor_collections;
          major_collections = st.Gc.major_collections;
          top_heap_words = st.Gc.top_heap_words;
        }
      in
      trace_event "span_start"
        [ ("name", Json.String name); ("depth", Json.Int (List.length !stack)) ];
      stack := sp :: !stack;
      Fun.protect ~finally:(fun () -> finish sp) fn
    end

  let find name =
    let rec search s = if s.name = name then Some s else first (children s)
    and first = function
      | [] -> None
      | s :: rest -> (match search s with Some _ as hit -> hit | None -> first rest)
    in
    first (roots ())

  let gc_to_json s =
    Json.Obj
      [
        ("minor_words", Json.Float s.minor_words);
        ("promoted_words", Json.Float s.promoted_words);
        ("major_words", Json.Float s.major_words);
        ("minor_collections", Json.Int s.minor_collections);
        ("major_collections", Json.Int s.major_collections);
        ("top_heap_words", Json.Int s.top_heap_words);
      ]

  let rec to_json s =
    Json.Obj
      ([
         ("name", Json.String s.name);
         ("start_s", Json.Float s.start);
         ("duration_s", Json.Float (duration_s s));
         ("gc", gc_to_json s);
       ]
      @ (if s.fields = [] then [] else [ ("fields", Json.Obj s.fields) ])
      @
      match children s with
      | [] -> []
      | kids -> [ ("children", Json.List (List.map to_json kids)) ])

  let pp_tree fmt root =
    let total = Float.max 1e-12 (duration_s root) in
    let rec pp prefix is_last s =
      let connector =
        if prefix = "" then "" else if is_last then "`- " else "|- "
      in
      Format.fprintf fmt "%s%s%-*s %9.2f ms %6.1f%%@." prefix connector
        (max 1 (32 - String.length prefix - String.length connector))
        s.name
        (duration_s s *. 1e3)
        (100.0 *. duration_s s /. total);
      let kids = children s in
      let n = List.length kids in
      List.iteri
        (fun i kid ->
          let child_prefix =
            if prefix = "" then "  "
            else prefix ^ (if is_last then "   " else "|  ")
          in
          pp child_prefix (i = n - 1) kid)
        kids
    in
    pp "" true root

  (* Flat per-stage table: spans aggregated by name over the whole
     tree (inclusive times, like the tree view), sorted by time
     descending with the name as deterministic tie-break. The column
     order is part of the CLI contract — a golden test pins it. *)
  let profile_header =
    Printf.sprintf "%-32s %12s %6s %12s %12s %8s %8s" "stage" "ms" "%"
      "minor-mw" "major-mw" "gc-min" "gc-maj"

  let pp_profile ?(top = max_int) fmt root =
    let tbl : (string, float * float * float * int * int) Hashtbl.t =
      Hashtbl.create 32
    in
    let rec add s =
      let d, mw, jw, mc, jc =
        match Hashtbl.find_opt tbl s.name with
        | Some acc -> acc
        | None -> (0.0, 0.0, 0.0, 0, 0)
      in
      Hashtbl.replace tbl s.name
        ( d +. duration_s s,
          mw +. s.minor_words,
          jw +. s.major_words,
          mc + s.minor_collections,
          jc + s.major_collections );
      List.iter add (children s)
    in
    add root;
    let rows = Hashtbl.fold (fun name acc l -> (name, acc) :: l) tbl [] in
    let rows =
      List.sort
        (fun (na, (da, _, _, _, _)) (nb, (db, _, _, _, _)) ->
          match compare db da with 0 -> String.compare na nb | c -> c)
        rows
    in
    let total = Float.max 1e-12 (duration_s root) in
    Format.fprintf fmt "%s@." profile_header;
    List.iteri
      (fun i (name, (d, mw, jw, mc, jc)) ->
        if i < top then
          Format.fprintf fmt "%-32s %12.2f %6.1f %12.3f %12.3f %8d %8d@." name
            (d *. 1e3)
            (100.0 *. d /. total)
            (mw /. 1e6) (jw /. 1e6) mc jc)
      rows
end

(* ------------------------------------------------------------------ *)
(* counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { name : string; mutable value : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { name; value = 0 } in
      Hashtbl.add registry name c;
      c

  let inc c = if !on then c.value <- c.value + 1
  let add c n = if !on then c.value <- c.value + n
  let get c = c.value
  let find name = Option.map get (Hashtbl.find_opt registry name)
  let reset_all () = Hashtbl.iter (fun _ c -> c.value <- 0) registry

  let all () =
    Hashtbl.fold (fun name c acc -> (name, c.value) :: acc) registry []
    |> List.sort compare
end

module Gauge = struct
  type t = { name : string; mutable value : float; mutable set_ : bool }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name =
    match Hashtbl.find_opt registry name with
    | Some g -> g
    | None ->
      let g = { name; value = 0.0; set_ = false } in
      Hashtbl.add registry name g;
      g

  let set g v =
    if !on then begin
      g.value <- v;
      g.set_ <- true
    end

  let observe_max g v =
    if !on && ((not g.set_) || v > g.value) then begin
      g.value <- v;
      g.set_ <- true
    end

  let get g = if g.set_ then Some g.value else None
  let find name = Option.bind (Hashtbl.find_opt registry name) get

  let reset_all () =
    Hashtbl.iter
      (fun _ g ->
        g.value <- 0.0;
        g.set_ <- false)
      registry

  let all () =
    Hashtbl.fold
      (fun name g acc -> if g.set_ then (name, g.value) :: acc else acc)
      registry []
    |> List.sort compare
end

let reset () =
  Counter.reset_all ();
  Gauge.reset_all ();
  Histogram.reset_all ();
  Span.clear ()

(* ------------------------------------------------------------------ *)
(* snapshot exporters                                                  *)
(* ------------------------------------------------------------------ *)

let metrics_snapshot () =
  Json.Obj
    [
      ("schema", Json.String "scanpower.telemetry/1");
      ("pid", Json.Int (Unix.getpid ()));
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Counter.all ())) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (Gauge.all ())) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun s -> (s.Histogram.s_name, Histogram.snapshot_to_json s))
             (Histogram.all ())) );
      ("spans", Json.List (List.map Span.to_json (Span.roots ())));
    ]

let write_metrics path =
  let oc = open_out path in
  output_string oc (Json.to_string (metrics_snapshot ()));
  output_char oc '\n';
  close_out oc

let chrome_trace () =
  let self = Printf.sprintf "scanpower (pid %d)" (Unix.getpid ()) in
  Trace_export.chrome_of_snapshots
    ((self, metrics_snapshot ()) :: Trace_export.registered ())

let write_chrome path =
  let oc = open_out path in
  output_string oc (Json.to_string (chrome_trace ()));
  output_char oc '\n';
  close_out oc
