(** Zero-dependency observability for the scan-power flow: a levelled
    structured logger, hierarchical wall-clock spans with GC/allocation
    attribution, a process-wide counter/gauge/histogram registry, a
    subscriber event bus, and exporters (human-readable text on
    stderr, JSON-lines trace, Chrome/Perfetto trace, single-shot JSON
    metrics snapshot).

    Everything is {e off by default}: with telemetry disabled every
    entry point reduces to a single flag test, so instrumented hot
    kernels (PODEM, fault simulation, the scan simulator) pay
    essentially nothing and paper-reproduction numbers are
    bit-identical with telemetry on or off — the instrumentation only
    observes, it never steers. *)

module Json = Json
module Histogram = Histogram
module Events = Events
module Trace_export = Trace_export

(** {1 Global switch and log level} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

type level = Debug | Info | Warn | Error

val set_level : level -> unit
val level : unit -> level

val level_of_string : string -> (level, string) result
val level_to_string : level -> string

val reset : unit -> unit
(** Clear all counters, gauges, histograms and recorded spans (the
    trace file, if any, stays open; {!Trace_export}'s registry is
    separate). Call between independent runs so each run's snapshot
    stands alone. *)

val now : unit -> float
(** [Unix.gettimeofday], exported so instrumented code in libraries
    that do not otherwise link [unix] can take timestamps. *)

(** {1 Structured logging} *)

module Log : sig
  val debug : ?fields:(string * Json.t) list -> string -> unit
  val info : ?fields:(string * Json.t) list -> string -> unit
  val warn : ?fields:(string * Json.t) list -> string -> unit
  val error : ?fields:(string * Json.t) list -> string -> unit
  (** Emitted to stderr as [\[level\] msg key=value ...] and to the
      JSON-lines trace (when one is set) when telemetry is enabled and
      the message level is at or above the threshold. *)
end

(** {1 Hierarchical spans} *)

module Span : sig
  (** The GC fields hold [Gc.quick_stat] readings at entry while the
      span is open; {!with_} rewrites them to entry-to-exit deltas when
      it closes (inclusive of children, like the wall-clock time).
      [top_heap_words] stays the absolute process peak at close. *)
  type t = {
    name : string;
    fields : (string * Json.t) list;
    start : float;  (** [Unix.gettimeofday] at entry *)
    mutable stop : float;
    mutable children_rev : t list;
    mutable minor_words : float;
    mutable promoted_words : float;
    mutable major_words : float;
    mutable minor_collections : int;
    mutable major_collections : int;
    mutable top_heap_words : int;
  }

  val with_ : ?fields:(string * Json.t) list -> name:string -> (unit -> 'a) -> 'a
  (** Run the function inside a named span. Spans nest through a parent
      stack: a span opened while another is running becomes its child,
      so [Flow.run_benchmark] yields a phase tree. When telemetry is
      disabled this is exactly [fn ()]. The body runs under
      [Fun.protect], so an exception (e.g. [Scanpower_errors.Error]
      aborting a stage) still closes the span — and every descendant
      left open — keeping the JSON-lines trace well-formed. *)

  val duration_s : t -> float
  val children : t -> t list  (** in execution order *)

  val roots : unit -> t list
  (** Completed top-level spans, in completion order. *)

  val find : string -> t option
  (** First completed span with this name, searching every root tree
      depth-first. *)

  val to_json : t -> Json.t
  (** Includes ["start_s"] (absolute) and a ["gc"] object with the
      allocation deltas, consumed by {!Trace_export}. *)

  val pp_tree : Format.formatter -> t -> unit
  (** Render the span tree with per-phase durations and percentage of
      the tree's root. *)

  val pp_profile : ?top:int -> Format.formatter -> t -> unit
  (** Flat per-stage table, spans aggregated by name: columns [stage],
      [ms], [%], [minor-mw], [major-mw] (mega-words allocated),
      [gc-min], [gc-maj] (collections), in exactly that order, sorted
      by time descending (name as tie-break). [top] limits the row
      count. *)
end

(** {1 Counters and gauges}

    Handles are created once (typically at module initialisation) and
    registered process-wide by name; [make] on an existing name returns
    the existing handle. Increments are dropped while telemetry is
    disabled. (Histograms follow the same contract — see
    {!Histogram}.) *)

module Counter : sig
  type t

  val make : string -> t
  val inc : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val find : string -> int option
  val all : unit -> (string * int) list  (** sorted by name *)
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit

  val observe_max : t -> float -> unit
  (** Keep the running maximum. *)

  val get : t -> float option
  (** [None] until first set. *)

  val find : string -> float option
  val all : unit -> (string * float) list  (** sorted by name; set gauges only *)
end

(** {1 Exporters} *)

val set_trace_file : string -> unit
(** Open (truncate) a JSON-lines trace: one object per log message,
    span start and span end. Implies nothing about [enable]. *)

val close_trace : unit -> unit

val metrics_snapshot : unit -> Json.t
(** Single-shot snapshot: the pid, every registered counter, every set
    gauge, every non-empty histogram (count/sum/min/max/p50/p90/p99)
    and the completed span trees, as one JSON object (schema
    ["scanpower.telemetry/1"]). Suitable for a [BENCH_*.json]
    trajectory file. *)

val write_metrics : string -> unit
(** [metrics_snapshot] pretty-printed compactly to a file. *)

val chrome_trace : unit -> Json.t
(** Trace Event JSON of this process's snapshot plus every worker
    snapshot registered with {!Trace_export.register} — the parent's
    span tree and each child's on its own pid track. *)

val write_chrome : string -> unit
(** {!chrome_trace} to a file, loadable in ui.perfetto.dev. *)
