(** Zero-dependency observability for the scan-power flow: a levelled
    structured logger, hierarchical wall-clock spans, a process-wide
    counter/gauge registry, and exporters (human-readable text on
    stderr, JSON-lines trace, single-shot JSON metrics snapshot).

    Everything is {e off by default}: with telemetry disabled every
    entry point reduces to a single flag test, so instrumented hot
    kernels (PODEM, fault simulation, the scan simulator) pay
    essentially nothing and paper-reproduction numbers are
    bit-identical with telemetry on or off — the instrumentation only
    observes, it never steers. *)

module Json = Json

(** {1 Global switch and log level} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

type level = Debug | Info | Warn | Error

val set_level : level -> unit
val level : unit -> level

val level_of_string : string -> (level, string) result
val level_to_string : level -> string

val reset : unit -> unit
(** Clear all counters, gauges and recorded spans (the trace file, if
    any, stays open). Call between independent runs so each run's
    snapshot stands alone. *)

(** {1 Structured logging} *)

module Log : sig
  val debug : ?fields:(string * Json.t) list -> string -> unit
  val info : ?fields:(string * Json.t) list -> string -> unit
  val warn : ?fields:(string * Json.t) list -> string -> unit
  val error : ?fields:(string * Json.t) list -> string -> unit
  (** Emitted to stderr as [\[level\] msg key=value ...] and to the
      JSON-lines trace (when one is set) when telemetry is enabled and
      the message level is at or above the threshold. *)
end

(** {1 Hierarchical spans} *)

module Span : sig
  type t = {
    name : string;
    fields : (string * Json.t) list;
    start : float;  (** [Unix.gettimeofday] at entry *)
    mutable stop : float;
    mutable children_rev : t list;
  }

  val with_ : ?fields:(string * Json.t) list -> name:string -> (unit -> 'a) -> 'a
  (** Run the function inside a named span. Spans nest through a parent
      stack: a span opened while another is running becomes its child,
      so [Flow.run_benchmark] yields a phase tree. When telemetry is
      disabled this is exactly [fn ()]. Exceptions still close the
      span. *)

  val duration_s : t -> float
  val children : t -> t list  (** in execution order *)

  val roots : unit -> t list
  (** Completed top-level spans, in completion order. *)

  val find : string -> t option
  (** First completed span with this name, searching every root tree
      depth-first. *)

  val to_json : t -> Json.t
  val pp_tree : Format.formatter -> t -> unit
  (** Render the span tree with per-phase durations and percentage of
      the tree's root. *)
end

(** {1 Counters and gauges}

    Handles are created once (typically at module initialisation) and
    registered process-wide by name; [make] on an existing name returns
    the existing handle. Increments are dropped while telemetry is
    disabled. *)

module Counter : sig
  type t

  val make : string -> t
  val inc : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val find : string -> int option
  val all : unit -> (string * int) list  (** sorted by name *)
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit

  val observe_max : t -> float -> unit
  (** Keep the running maximum. *)

  val get : t -> float option
  (** [None] until first set. *)

  val find : string -> float option
  val all : unit -> (string * float) list  (** sorted by name; set gauges only *)
end

(** {1 Exporters} *)

val set_trace_file : string -> unit
(** Open (truncate) a JSON-lines trace: one object per log message,
    span start and span end. Implies nothing about [enable]. *)

val close_trace : unit -> unit

val metrics_snapshot : unit -> Json.t
(** Single-shot snapshot: every registered counter, every set gauge and
    the completed span trees, as one JSON object (schema
    ["scanpower.telemetry/1"]). Suitable for a [BENCH_*.json]
    trajectory file. *)

val write_metrics : string -> unit
(** [metrics_snapshot] pretty-printed compactly to a file. *)
