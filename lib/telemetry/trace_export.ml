(* Chrome/Perfetto Trace Event export.

   A trace is assembled from one or more telemetry metrics snapshots
   (the JSON produced by [Telemetry.metrics_snapshot]): the current
   process contributes its own, and the fork+pipe job pool registers
   each worker's snapshot as it arrives over the result pipe. Every
   snapshot carries the pid it was taken in, so worker span trees are
   re-parented onto their own process track — ui.perfetto.dev then
   shows the pool as parallel lanes under the parent.

   Format: the JSON Object Format of the Trace Event spec — an object
   with a "traceEvents" array of "X" (complete) events carrying
   ts/dur in microseconds, plus one "M" process_name metadata record
   per snapshot. *)

let number ?(default = 0.0) = function
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> default

let registered_rev : (string * Json.t) list ref = ref []

let register ~label snapshot =
  registered_rev := (label, snapshot) :: !registered_rev

let registered () = List.rev !registered_rev
let clear () = registered_rev := []

(* one "X" event per span, depth-first; [tid] encodes nothing (each
   process is single-threaded) but is required by the format *)
let rec span_events ~pid acc span =
  let name =
    match Json.member "name" span with
    | Some (Json.String s) -> s
    | _ -> "?"
  in
  let ts = number (Json.member "start_s" span) *. 1e6 in
  let dur = number (Json.member "duration_s" span) *. 1e6 in
  let args =
    (match Json.member "fields" span with
    | Some (Json.Obj kvs) -> kvs
    | _ -> [])
    @
    match Json.member "gc" span with
    | Some (Json.Obj _ as gc) -> [ ("gc", gc) ]
    | _ -> []
  in
  let ev =
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String "span");
         ("ph", Json.String "X");
         ("ts", Json.Float ts);
         ("dur", Json.Float dur);
         ("pid", Json.Int pid);
         ("tid", Json.Int 1);
       ]
      @ if args = [] then [] else [ ("args", Json.Obj args) ])
  in
  let acc = ev :: acc in
  match Json.member "children" span with
  | Some (Json.List kids) -> List.fold_left (span_events ~pid) acc kids
  | _ -> acc

let snapshot_events idx (label, snapshot) =
  let pid =
    match Json.member "pid" snapshot with
    | Some (Json.Int p) -> p
    (* legacy snapshot without a pid: a synthetic track id that cannot
       collide with a real one *)
    | _ -> -(idx + 1)
  in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String label) ]);
      ]
  in
  let spans =
    match Json.member "spans" snapshot with
    | Some (Json.List spans) -> spans
    | _ -> []
  in
  meta :: List.rev (List.fold_left (span_events ~pid) [] spans)

let chrome_of_snapshots snapshots =
  Json.Obj
    [
      ( "traceEvents",
        Json.List (List.concat (List.mapi snapshot_events snapshots)) );
      ("displayTimeUnit", Json.String "ms");
    ]
