(** Chrome/Perfetto Trace Event export of telemetry snapshots.

    Converts [Telemetry.metrics_snapshot] JSON (span trees with
    absolute start times and GC deltas) into the Trace Event JSON
    Object Format: a ["traceEvents"] array of complete ("X") events
    with ts/dur in microseconds, one process track per snapshot (pid
    taken from the snapshot, so spans shipped back from forked workers
    land on their own lane), loadable in ui.perfetto.dev or
    chrome://tracing. *)

val register : label:string -> Json.t -> unit
(** Add a worker's metrics snapshot to the process-wide registry; the
    job pool calls this as each child's snapshot arrives over the
    result pipe. [label] names the process track. *)

val registered : unit -> (string * Json.t) list
(** In registration order. *)

val clear : unit -> unit

val chrome_of_snapshots : (string * Json.t) list -> Json.t
(** [(label, metrics snapshot)] pairs, one process track each.
    Snapshots without a ["pid"] field get a synthetic negative pid. *)
