type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ?(capacity = 64) compare =
  { compare; data = [||]; size = 0 }
  |> fun h ->
  ignore capacity;
  h

let length h = h.size
let is_empty h = h.size = 0

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.compare h.data.(i) h.data.(parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.compare h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.compare h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  if h.size = Array.length h.data then begin
    let cap = max 16 (2 * h.size) in
    let bigger = Array.make cap x in
    Array.blit h.data 0 bigger 0 h.size;
    h.data <- bigger
  end;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then raise Not_found else h.data.(0)

let pop h =
  if h.size = 0 then raise Not_found;
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h 0
  end;
  top

let clear h = h.size <- 0
