(** Mutable binary min-heap on a caller-supplied priority. *)

type 'a t

val create : ?capacity:int -> ('a -> 'a -> int) -> 'a t
(** [create compare]: smaller elements pop first. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Remove and return the minimum.
    @raise Not_found on an empty heap. *)

val peek : 'a t -> 'a
(** @raise Not_found on an empty heap. *)

val clear : 'a t -> unit
