type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.mul (Int64.of_int (seed + 1)) golden }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  if n = 1 then 0
  else begin
    let r = Int64.shift_right_logical (next_int64 t) 1 in
    Int64.to_int (Int64.rem r (Int64.of_int n))
  end

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool_array t n = Array.init n (fun _ -> bool t)

let split t = { state = next_int64 t }
