(** Small deterministic pseudo-random generator (SplitMix64).

    Every stochastic component of the tool (circuit generation, random
    pattern generation, input-vector-control sampling) takes an
    explicit seed and goes through this module, so whole-flow runs are
    reproducible bit-for-bit. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val next_int64 : t -> int64

val bits : t -> int
(** 30 uniformly random bits (non-negative int). *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].
    @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool_array : t -> int -> bool array

val split : t -> t
(** Independent child generator (for parallel sub-streams). *)
