(* ATPG substrate: fault universe and collapsing, PODEM correctness
   (every generated test really detects its fault), fault simulation
   against the five-valued oracle, compaction invariants, and the full
   generation flow. *)

open Netlist

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

let s27m = lazy (mapped "s27")

let check_fault_universe () =
  let c = Lazy.force s27m in
  let faults = Atpg.Fault.all_faults c in
  (* every stem gets both polarities *)
  let stems =
    List.filter
      (fun f ->
        match f.Atpg.Fault.site with
        | Atpg.Fault.Output_line _ -> true
        | Atpg.Fault.Input_pin _ -> false)
      faults
  in
  let n_stem_lines =
    Array.length (Circuit.inputs c)
    + Array.length (Circuit.dffs c)
    + Circuit.gate_count c
  in
  Alcotest.(check int) "stem faults" (2 * n_stem_lines) (List.length stems);
  (* branch faults only on multi-fanout drivers *)
  List.iter
    (fun f ->
      match f.Atpg.Fault.site with
      | Atpg.Fault.Input_pin (gid, pin) ->
        let driver = Circuit.node c (Circuit.node c gid).Circuit.fanins.(pin) in
        Alcotest.(check bool) "driver has fanout > 1" true
          (Array.length driver.Circuit.fanouts > 1)
      | Atpg.Fault.Output_line _ -> ())
    faults

let check_collapsing_drops_controlling_pin_faults () =
  let c = Lazy.force s27m in
  let collapsed = Atpg.Fault.collapsed_faults c in
  List.iter
    (fun f ->
      match f.Atpg.Fault.site with
      | Atpg.Fault.Input_pin (gid, _) ->
        let nd = Circuit.node c gid in
        (match Gate.controlling_value nd.Circuit.kind with
        | Some cv ->
          Alcotest.(check bool) "pin fault is non-controlling polarity" false
            (Logic.equal (Logic.of_bool f.Atpg.Fault.stuck) cv)
        | None -> ())
      | Atpg.Fault.Output_line _ -> ())
    collapsed;
  Alcotest.(check bool) "collapsing shrinks" true
    (List.length collapsed < List.length (Atpg.Fault.all_faults c))

let check_fault_to_string () =
  let c = Lazy.force s27m in
  let stem = { Atpg.Fault.site = Atpg.Fault.Output_line (Circuit.find c "G0"); stuck = false } in
  Alcotest.(check string) "stem" "G0 s-a-0" (Atpg.Fault.to_string c stem)

(* PODEM soundness: every Test result must actually detect the fault
   (checked by independent five-valued simulation with random X-fill). *)
let check_podem_tests_detect () =
  let c = Lazy.force s27m in
  let rng = Util.Rng.create 17 in
  let faults = Atpg.Fault.collapsed_faults c in
  let tested = ref 0 in
  List.iter
    (fun f ->
      match Atpg.Podem.generate c f with
      | Atpg.Podem.Test cube ->
        incr tested;
        let filled = Atpg.Compaction.fill_random rng cube in
        Alcotest.(check bool)
          (Printf.sprintf "detects %s" (Atpg.Fault.to_string c f))
          true
          (Atpg.Podem.detects c f filled)
      | Atpg.Podem.Untestable | Atpg.Podem.Aborted -> ())
    faults;
  Alcotest.(check bool) "generated many tests" true (!tested > 20)

let check_podem_finds_most_s27_faults () =
  let c = Lazy.force s27m in
  let faults = Atpg.Fault.collapsed_faults c in
  let outcomes = List.map (fun f -> Atpg.Podem.generate c f) faults in
  let tests =
    List.length (List.filter (function Atpg.Podem.Test _ -> true | _ -> false) outcomes)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d testable" tests (List.length faults))
    true
    (float_of_int tests > 0.8 *. float_of_int (List.length faults))

let check_fault_sim_agrees_with_podem_detects () =
  let c = Lazy.force s27m in
  let faults = Atpg.Fault.collapsed_faults c in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:9 ~count:37 c in
  let detected, undetected = Atpg.Fault_simulation.split c ~faults ~vectors in
  (* the bit-parallel simulator and the five-valued simulator must
     agree fault by fault *)
  let oracle f = List.exists (fun v -> Atpg.Podem.detects c f v) vectors in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "detected %s" (Atpg.Fault.to_string c f))
        true (oracle f))
    detected;
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "undetected %s" (Atpg.Fault.to_string c f))
        false (oracle f))
    undetected

let check_effective_subset_preserves_coverage () =
  let c = Lazy.force s27m in
  let faults = Atpg.Fault.collapsed_faults c in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:2 ~count:100 c in
  let full = Atpg.Fault_simulation.coverage c ~faults ~vectors in
  let subset = Atpg.Fault_simulation.effective_subset c ~faults ~vectors in
  let sub_cov = Atpg.Fault_simulation.coverage c ~faults ~vectors:subset in
  Alcotest.check (Alcotest.float 1e-9) "coverage preserved" full sub_cov;
  Alcotest.(check bool) "subset smaller" true
    (List.length subset <= List.length vectors)

let check_empty_inputs () =
  let c = Lazy.force s27m in
  let faults = Atpg.Fault.collapsed_faults c in
  let detected, undet = Atpg.Fault_simulation.split c ~faults ~vectors:[] in
  Alcotest.(check int) "nothing detected" 0 (List.length detected);
  Alcotest.(check int) "all remain" (List.length faults) (List.length undet);
  Alcotest.(check int) "empty subset" 0
    (List.length (Atpg.Fault_simulation.effective_subset c ~faults ~vectors:[]))

let cube_gen n =
  QCheck.Gen.(array_size (pure n) (oneofl [ Logic.Zero; Logic.One; Logic.X ]))

let prop_merge_preserves_cares =
  QCheck.Test.make ~name:"cube merge preserves care bits" ~count:200
    (QCheck.make QCheck.Gen.(pair (cube_gen 12) (cube_gen 12)))
    (fun (a, b) ->
      if Atpg.Compaction.compatible a b then begin
        let m = Atpg.Compaction.merge a b in
        let covers x =
          Array.for_all (fun ok -> ok)
            (Array.mapi
               (fun i v -> Logic.equal v Logic.X || Logic.equal m.(i) v)
               x)
        in
        covers a && covers b
      end
      else true)

let prop_merge_cubes_sound =
  QCheck.Test.make ~name:"merge_cubes output covers every input cube" ~count:50
    (QCheck.make QCheck.Gen.(list_size (int_range 1 12) (cube_gen 8)))
    (fun cubes ->
      let merged = Atpg.Compaction.merge_cubes cubes in
      List.length merged <= List.length cubes
      && List.for_all
           (fun cube ->
             List.exists
               (fun m ->
                 Array.for_all (fun ok -> ok)
                   (Array.mapi
                      (fun i v ->
                        Logic.equal v Logic.X || Logic.equal m.(i) v)
                      cube))
               merged)
           cubes)

let check_incompatible_merge_raises () =
  Alcotest.check_raises "incompatible"
    (Invalid_argument "Compaction.merge: incompatible") (fun () ->
      ignore (Atpg.Compaction.merge [| Logic.Zero |] [| Logic.One |]))

let check_fill () =
  let rng = Util.Rng.create 4 in
  let cube = [| Logic.Zero; Logic.X; Logic.One |] in
  let filled = Atpg.Compaction.fill_random rng cube in
  Alcotest.(check bool) "cares preserved" true
    ((not filled.(0)) && filled.(2));
  let zeros = Atpg.Compaction.fill_constant false cube in
  Alcotest.(check (array bool)) "constant fill" [| false; false; true |] zeros

let check_full_generation_flow () =
  let c = Lazy.force s27m in
  let outcome = Atpg.Pattern_gen.generate c in
  Alcotest.(check bool) "good coverage" true (outcome.Atpg.Pattern_gen.coverage > 0.85);
  Alcotest.(check bool) "produces vectors" true
    (outcome.Atpg.Pattern_gen.vectors <> []);
  (* announced coverage must be reproducible by independent fault sim *)
  let faults = Atpg.Fault.collapsed_faults c in
  let indep =
    Atpg.Fault_simulation.coverage c ~faults
      ~vectors:outcome.Atpg.Pattern_gen.vectors
  in
  let testable =
    float_of_int (outcome.Atpg.Pattern_gen.total_faults - outcome.Atpg.Pattern_gen.untestable)
  in
  let announced =
    float_of_int outcome.Atpg.Pattern_gen.detected /. float_of_int outcome.Atpg.Pattern_gen.total_faults
  in
  ignore testable;
  Alcotest.(check bool)
    (Printf.sprintf "independent %.2f >= announced-over-total %.2f" indep announced)
    true
    (indep +. 1e-9 >= announced)

let check_generation_deterministic () =
  let c = Lazy.force s27m in
  let o1 = Atpg.Pattern_gen.generate c in
  let o2 = Atpg.Pattern_gen.generate c in
  Alcotest.(check bool) "same vectors" true
    (o1.Atpg.Pattern_gen.vectors = o2.Atpg.Pattern_gen.vectors)

let suite =
  [
    Alcotest.test_case "fault universe" `Quick check_fault_universe;
    Alcotest.test_case "collapsing" `Quick check_collapsing_drops_controlling_pin_faults;
    Alcotest.test_case "fault printing" `Quick check_fault_to_string;
    Alcotest.test_case "podem tests detect" `Quick check_podem_tests_detect;
    Alcotest.test_case "podem finds most faults" `Quick check_podem_finds_most_s27_faults;
    Alcotest.test_case "fault sim agrees with oracle" `Quick
      check_fault_sim_agrees_with_podem_detects;
    Alcotest.test_case "effective subset preserves coverage" `Quick
      check_effective_subset_preserves_coverage;
    Alcotest.test_case "empty inputs" `Quick check_empty_inputs;
    QCheck_alcotest.to_alcotest prop_merge_preserves_cares;
    QCheck_alcotest.to_alcotest prop_merge_cubes_sound;
    Alcotest.test_case "incompatible merge raises" `Quick check_incompatible_merge_raises;
    Alcotest.test_case "cube filling" `Quick check_fill;
    Alcotest.test_case "full generation flow" `Quick check_full_generation_flow;
    Alcotest.test_case "generation deterministic" `Quick check_generation_deterministic;
  ]
