(* ROBDD engine and the symbolic circuit analyses built on it. *)

open Netlist

let mgr () = Bdd.manager ()

let check_constants () =
  let m = mgr () in
  Alcotest.(check bool) "0 const" true (Bdd.is_const (Bdd.zero m) = Some false);
  Alcotest.(check bool) "1 const" true (Bdd.is_const (Bdd.one m) = Some true);
  Alcotest.(check bool) "var not const" true (Bdd.is_const (Bdd.var m 0) = None)

let check_hash_consing () =
  let m = mgr () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  Alcotest.(check bool) "same var same node" true (Bdd.equal a (Bdd.var m 0));
  Alcotest.(check bool) "and commutes to same node" true
    (Bdd.equal (Bdd.band m a b) (Bdd.band m b a));
  Alcotest.(check bool) "double negation" true
    (Bdd.equal a (Bdd.bnot m (Bdd.bnot m a)))

let check_boolean_identities () =
  let m = mgr () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  (* De Morgan *)
  Alcotest.(check bool) "de morgan" true
    (Bdd.equal (Bdd.bnot m (Bdd.band m a b)) (Bdd.bor m (Bdd.bnot m a) (Bdd.bnot m b)));
  (* distribution *)
  Alcotest.(check bool) "distribution" true
    (Bdd.equal
       (Bdd.band m a (Bdd.bor m b c))
       (Bdd.bor m (Bdd.band m a b) (Bdd.band m a c)));
  (* xor via and/or *)
  Alcotest.(check bool) "xor expansion" true
    (Bdd.equal (Bdd.bxor m a b)
       (Bdd.bor m
          (Bdd.band m a (Bdd.bnot m b))
          (Bdd.band m (Bdd.bnot m a) b)));
  Alcotest.(check bool) "a xor a = 0" true
    (Bdd.equal (Bdd.bxor m a a) (Bdd.zero m))

let check_eval_agrees () =
  let m = mgr () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  let f = Bdd.bor m (Bdd.band m a b) (Bdd.bxor m b c) in
  for mask = 0 to 7 do
    let assignment i = mask land (1 lsl i) <> 0 in
    let expect =
      (assignment 0 && assignment 1) || assignment 1 <> assignment 2
    in
    Alcotest.(check bool) (Printf.sprintf "mask %d" mask) expect
      (Bdd.eval f assignment)
  done

let check_restrict_and_exists () =
  let m = mgr () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let f = Bdd.band m a b in
  Alcotest.(check bool) "restrict a=1" true
    (Bdd.equal (Bdd.restrict m f 0 true) b);
  Alcotest.(check bool) "restrict a=0" true
    (Bdd.equal (Bdd.restrict m f 0 false) (Bdd.zero m));
  Alcotest.(check bool) "exists a" true (Bdd.equal (Bdd.exists m f 0) b)

let check_sat_count () =
  let m = mgr () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  Alcotest.check (Alcotest.float 1e-9) "and" 1.0
    (Bdd.sat_count m (Bdd.band m a b) ~n_vars:2);
  Alcotest.check (Alcotest.float 1e-9) "or" 3.0
    (Bdd.sat_count m (Bdd.bor m a b) ~n_vars:2);
  Alcotest.check (Alcotest.float 1e-9) "xor over 3 vars" 4.0
    (Bdd.sat_count m (Bdd.bxor m a b) ~n_vars:3)

let check_probability () =
  let m = mgr () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let p = function 0 -> 0.9 | _ -> 0.5 in
  Alcotest.check (Alcotest.float 1e-9) "and" (0.9 *. 0.5)
    (Bdd.probability m (Bdd.band m a b) ~p);
  Alcotest.check (Alcotest.float 1e-9) "not a" 0.1
    (Bdd.probability m (Bdd.bnot m a) ~p)

let check_any_sat () =
  let m = mgr () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  Alcotest.(check bool) "zero unsat" true (Bdd.any_sat (Bdd.zero m) = None);
  let f = Bdd.band m (Bdd.bnot m a) b in
  (match Bdd.any_sat f with
  | None -> Alcotest.fail "satisfiable"
  | Some assignment ->
    let value i = List.assoc_opt i assignment = Some true in
    Alcotest.(check bool) "assignment satisfies" true (Bdd.eval f value))

let check_size () =
  let m = mgr () in
  let a = Bdd.var m 0 in
  Alcotest.(check int) "var size" 1 (Bdd.size a);
  Alcotest.(check int) "const size" 0 (Bdd.size (Bdd.zero m))

(* property: BDD semantics equals direct evaluation of random formulas *)
let prop_random_formula_semantics =
  let build_formula m rng depth =
    let rec go depth =
      if depth = 0 then
        let v = Util.Rng.int rng 5 in
        ((fun env -> env v), Bdd.var m v)
      else begin
        match Util.Rng.int rng 4 with
        | 0 ->
          let f, bf = go (depth - 1) in
          ((fun env -> not (f env)), Bdd.bnot m bf)
        | 1 ->
          let f, bf = go (depth - 1) and g, bg = go (depth - 1) in
          ((fun env -> f env && g env), Bdd.band m bf bg)
        | 2 ->
          let f, bf = go (depth - 1) and g, bg = go (depth - 1) in
          ((fun env -> f env || g env), Bdd.bor m bf bg)
        | _ ->
          let f, bf = go (depth - 1) and g, bg = go (depth - 1) in
          ((fun env -> f env <> g env), Bdd.bxor m bf bg)
      end
    in
    go depth
  in
  QCheck.Test.make ~name:"BDD equals direct evaluation" ~count:60
    (QCheck.make QCheck.Gen.(pair (int_range 0 10_000) (int_range 1 5)))
    (fun (seed, depth) ->
      let m = Bdd.manager () in
      let rng = Util.Rng.create seed in
      let f, bf = build_formula m rng depth in
      let ok = ref true in
      for mask = 0 to 31 do
        let env i = mask land (1 lsl i) <> 0 in
        if f env <> Bdd.eval bf env then ok := false
      done;
      !ok)

(* ---------- circuit-level ---------- *)

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

let check_circuit_functions () =
  let c = mapped "s27" in
  let sym = Bdd.Circuit_bdd.build c in
  (* BDD evaluation of each output equals logic simulation for random
     source assignments *)
  let rng = Util.Rng.create 3 in
  for _ = 1 to 50 do
    let srcs = Util.Rng.bool_array rng (Array.length (Circuit.sources c)) in
    let values =
      Sim.Ternary_sim.eval c
        ~inputs:(fun i -> Logic.of_bool srcs.(i))
        ~state:(fun i ->
          Logic.of_bool srcs.(Array.length (Circuit.inputs c) + i))
    in
    Array.iter
      (fun nd ->
        if Gate.is_logic nd.Circuit.kind then begin
          let expect =
            match Logic.to_bool values.(nd.Circuit.id) with
            | Some b -> b
            | None -> Alcotest.fail "two-valued inputs"
          in
          Alcotest.(check bool) nd.Circuit.name expect
            (Bdd.eval
               (Bdd.Circuit_bdd.node_function sym nd.Circuit.id)
               (fun i -> srcs.(i)))
        end)
      (Circuit.nodes c)
  done

let check_exact_probabilities_vs_sampling () =
  let c = mapped "s27" in
  let sym = Bdd.Circuit_bdd.build c in
  let exact = Bdd.Circuit_bdd.probabilities sym () in
  (* exhaustive check over all 2^7 source assignments *)
  let n_src = Array.length (Circuit.sources c) in
  let counts = Array.make (Circuit.node_count c) 0 in
  for mask = 0 to (1 lsl n_src) - 1 do
    let srcs = Array.init n_src (fun i -> mask land (1 lsl i) <> 0) in
    let values =
      Sim.Ternary_sim.eval c
        ~inputs:(fun i -> Logic.of_bool srcs.(i))
        ~state:(fun i ->
          Logic.of_bool srcs.(Array.length (Circuit.inputs c) + i))
    in
    Array.iteri
      (fun id v -> if Logic.equal v Logic.One then counts.(id) <- counts.(id) + 1)
      values
  done;
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then
        Alcotest.check (Alcotest.float 1e-9)
          (Printf.sprintf "probability of %s" nd.Circuit.name)
          (float_of_int counts.(nd.Circuit.id) /. float_of_int (1 lsl n_src))
          exact.(nd.Circuit.id))
    (Circuit.nodes c)

let check_exact_leakage_vs_exhaustive () =
  let c = mapped "s27" in
  let sym = Bdd.Circuit_bdd.build c in
  let exact = Bdd.Circuit_bdd.exact_expected_leakage_uw sym () in
  let n_src = Array.length (Circuit.sources c) in
  let total = ref 0.0 in
  let values = Array.make (Circuit.node_count c) false in
  for mask = 0 to (1 lsl n_src) - 1 do
    Array.iteri
      (fun i id -> values.(id) <- mask land (1 lsl i) <> 0)
      (Circuit.sources c);
    Array.iter
      (fun id ->
        let nd = Circuit.node c id in
        if not (Gate.is_source nd.kind) then
          values.(id) <-
            Gate.eval_bool nd.kind (Array.map (fun f -> values.(f)) nd.fanins))
      (Circuit.topo_order c);
    total := !total +. Power.Leakage.total_leakage_uw c values
  done;
  Alcotest.check (Alcotest.float 1e-6) "matches exhaustive average"
    (!total /. float_of_int (1 lsl n_src))
    exact

let check_equivalence_mapper () =
  let c = Circuits.s27 () in
  let c' = Techmap.Mapper.map c in
  Alcotest.(check bool) "s27 = mapped s27" true (Bdd.Circuit_bdd.equivalent c c')

let check_equivalence_reorder () =
  let c = mapped "s382" in
  let c' = Circuit.copy c in
  let values = Sim.Ternary_sim.make_values c Logic.X in
  Sim.Ternary_sim.propagate c values;
  let _ = Scanpower.Input_reorder.optimize c' ~values in
  Alcotest.(check bool) "reordered circuit equivalent" true
    (Bdd.Circuit_bdd.equivalent c c')

let check_equivalence_detects_difference () =
  (* NAND(a,b) is not AND(a,b) *)
  let build kind =
    let b = Circuit.Builder.create () in
    let a = Circuit.Builder.add_input b "a" in
    let b2 = Circuit.Builder.add_input b "b" in
    let g = Circuit.Builder.add_gate b kind "g" [ a; b2 ] in
    let _ = Circuit.Builder.add_output b "po" g in
    Circuit.Builder.build b
  in
  Alcotest.(check bool) "detects" false
    (Bdd.Circuit_bdd.equivalent (build Gate.Nand) (build Gate.And))

let check_interface_mismatch_rejected () =
  let c1 = mapped "s27" and c2 = mapped "s344" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Bdd.Circuit_bdd.equivalent c1 c2);
       false
     with Invalid_argument _ -> true)

let check_observability_independence_error () =
  (* the analytic observability engine assumes independence; on s27 the
     exact probabilities quantify the error, which must be modest *)
  let c = mapped "s27" in
  let sym = Bdd.Circuit_bdd.build c in
  let exact = Bdd.Circuit_bdd.probabilities sym () in
  let obs = Power.Observability.compute c in
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then begin
        let err =
          Float.abs
            (exact.(nd.Circuit.id)
            -. Power.Observability.probability obs nd.Circuit.id)
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s error %.3f < 0.25" nd.Circuit.name err)
          true (err < 0.25)
      end)
    (Circuit.nodes c)

let suite =
  [
    Alcotest.test_case "constants" `Quick check_constants;
    Alcotest.test_case "hash consing" `Quick check_hash_consing;
    Alcotest.test_case "boolean identities" `Quick check_boolean_identities;
    Alcotest.test_case "eval agrees" `Quick check_eval_agrees;
    Alcotest.test_case "restrict and exists" `Quick check_restrict_and_exists;
    Alcotest.test_case "sat count" `Quick check_sat_count;
    Alcotest.test_case "probability" `Quick check_probability;
    Alcotest.test_case "any_sat" `Quick check_any_sat;
    Alcotest.test_case "size" `Quick check_size;
    QCheck_alcotest.to_alcotest prop_random_formula_semantics;
    Alcotest.test_case "circuit functions" `Quick check_circuit_functions;
    Alcotest.test_case "exact probabilities" `Quick
      check_exact_probabilities_vs_sampling;
    Alcotest.test_case "exact leakage" `Quick check_exact_leakage_vs_exhaustive;
    Alcotest.test_case "mapper equivalence" `Quick check_equivalence_mapper;
    Alcotest.test_case "reorder equivalence" `Quick check_equivalence_reorder;
    Alcotest.test_case "detects inequivalence" `Quick
      check_equivalence_detects_difference;
    Alcotest.test_case "interface mismatch" `Quick check_interface_mismatch_rejected;
    Alcotest.test_case "independence error bounded" `Quick
      check_observability_independence_error;
  ]
