(* The bench-diff regression gate: metric classification by suffix,
   per-class thresholds, exact-count drift, missing-metric handling and
   file loading. *)

module D = Scanpower.Bench_diff
module E = Scanpower_errors

let mk ?(fast = true) circuits = { D.fast; circuits }

let base_metrics =
  [
    ("nodes", D.I 195);
    ("faults", D.I 547);
    ("compile_s", D.F 0.010);
    ("packed_shift_s", D.F 0.002);
    ("packed_speedup", D.F 4.0);
    ("fault_sim_events_s", D.F 1.0e6);
  ]

let with_metric name v =
  List.map (fun (k, x) -> if k = name then (k, v) else (k, x)) base_metrics

let kind_name = function
  | D.Count -> "count"
  | D.Time -> "time"
  | D.Rate -> "rate"
  | D.Config -> "config"

let check_kind_classification () =
  let check name expected =
    Alcotest.(check string) name (kind_name expected)
      (kind_name (D.kind_of_metric name))
  in
  check "nodes" D.Count;
  check "total_toggles" D.Count;
  check "compile_s" D.Time;
  check "fault_sim_cpt_s" D.Time;
  check "fault_sim_pattern_p99_s" D.Time;
  check "fault_sim_d2_s" D.Time;
  check "packed_shift_w8_s" D.Time;
  check "packed_speedup" D.Rate;
  check "packed_w4_speedup" D.Rate;
  check "fault_sim_par_d2_speedup" D.Rate;
  (* the [_events_s] suffix wins over the bare [_s] time suffix *)
  check "fault_sim_events_s" D.Rate;
  (* the ppsfp additions follow the suffix convention *)
  check "fault_sim_ppsfp_s" D.Time;
  check "fault_sim_ppsfp_speedup" D.Rate;
  check "ppsfp_faults_detected" D.Count;
  (* gate-bearing rate pinned by literal name, independent of suffix *)
  check "serve_warm_speedup" D.Rate;
  (* run configuration, compared but never gating *)
  check "packed_width" D.Config;
  check "domains" D.Config;
  check "packed_auto_width" D.Config

let check_identical_is_clean () =
  let f = mk [ ("s344", base_metrics) ] in
  let r = D.diff f f in
  Alcotest.(check bool) "no regression" false (D.has_regression r);
  Alcotest.(check int) "all metrics compared" (List.length base_metrics)
    r.D.compared;
  Alcotest.(check (list string)) "no missing metrics" []
    (List.map snd r.D.only_old_metrics)

let check_2x_slowdown_regresses () =
  let slow = with_metric "compile_s" (D.F 0.020) in
  let r = D.diff (mk [ ("s344", base_metrics) ]) (mk [ ("s344", slow) ]) in
  Alcotest.(check bool) "2x slowdown trips the default threshold" true
    (D.has_regression r);
  match r.D.regressions with
  | [ f ] ->
    Alcotest.(check string) "the right metric" "compile_s" f.D.f_metric;
    Alcotest.(check bool) "classified as time" true (f.D.f_kind = D.Time);
    (match f.D.f_delta_pct with
    | Some d -> Alcotest.(check (float 1e-6)) "delta" 100.0 d
    | None -> Alcotest.fail "delta missing")
  | l -> Alcotest.failf "expected exactly one regression, got %d" (List.length l)

let check_noise_within_threshold_passes () =
  (* +40% is inside the default 50% window *)
  let noisy = with_metric "compile_s" (D.F 0.014) in
  let r = D.diff (mk [ ("s344", base_metrics) ]) (mk [ ("s344", noisy) ]) in
  Alcotest.(check bool) "within threshold" false (D.has_regression r)

let check_wider_threshold_passes_2x () =
  let slow = with_metric "compile_s" (D.F 0.020) in
  let r =
    D.diff ~time_threshold:5.0
      (mk [ ("s344", base_metrics) ])
      (mk [ ("s344", slow) ])
  in
  Alcotest.(check bool) "explicit CI threshold absorbs 2x" false
    (D.has_regression r)

let check_count_drift_regresses () =
  let drift = with_metric "faults" (D.I 548) in
  let r = D.diff (mk [ ("s344", base_metrics) ]) (mk [ ("s344", drift) ]) in
  Alcotest.(check bool) "any count drift regresses" true (D.has_regression r);
  match r.D.regressions with
  | [ f ] -> Alcotest.(check bool) "classified as count" true (f.D.f_kind = D.Count)
  | _ -> Alcotest.fail "expected exactly one regression"

let check_rate_drop_regresses () =
  let slow = with_metric "packed_speedup" (D.F 1.0) in
  let r = D.diff (mk [ ("s344", base_metrics) ]) (mk [ ("s344", slow) ]) in
  Alcotest.(check bool) "-75% rate drop regresses" true (D.has_regression r);
  (* but a rate *gain* never does *)
  let fast = with_metric "packed_speedup" (D.F 40.0) in
  let r' = D.diff (mk [ ("s344", base_metrics) ]) (mk [ ("s344", fast) ]) in
  Alcotest.(check bool) "rate gain is clean" false (D.has_regression r')

let check_missing_metric_regresses () =
  let missing = List.remove_assoc "compile_s" base_metrics in
  let r = D.diff (mk [ ("s344", base_metrics) ]) (mk [ ("s344", missing) ]) in
  Alcotest.(check bool) "baseline metric disappeared" true (D.has_regression r);
  Alcotest.(check (list string)) "reported by name" [ "compile_s" ]
    (List.map snd r.D.only_old_metrics)

let check_additions_are_clean () =
  (* a baseline that predates newly added bench fields / circuits *)
  let extra = ("fault_sim_pattern_p50_s", D.F 1e-6) :: base_metrics in
  let r =
    D.diff
      (mk [ ("s344", base_metrics) ])
      (mk [ ("s344", extra); ("s9234", base_metrics) ])
  in
  Alcotest.(check bool) "additions pass" false (D.has_regression r);
  Alcotest.(check (list string)) "new circuit noted" [ "s9234" ]
    r.D.only_new_circuits

let write_temp text =
  let path = Filename.temp_file "bench_diff" ".json" in
  Out_channel.with_open_bin path (fun oc -> output_string oc text);
  path

let check_config_change_is_clean () =
  (* a deliberate re-run at a different width/fan-out must not gate *)
  let old_m = ("packed_width", D.I 8) :: ("domains", D.I 4) :: base_metrics in
  let new_m = ("packed_width", D.I 4) :: ("domains", D.I 2) :: base_metrics in
  let r = D.diff (mk [ ("s344", old_m) ]) (mk [ ("s344", new_m) ]) in
  Alcotest.(check bool) "config drift never regresses" false
    (D.has_regression r);
  Alcotest.(check int) "still compared" (List.length new_m) r.D.compared

let check_schema_bump_pairs () =
  (* a /1 baseline gates a /2 file: shared metrics pair, /2 additions
     pass *)
  let p1 =
    write_temp
      "{\"schema\":\"scanpower.bench_kernels/1\",\"fast\":true,\
       \"circuits\":{\"s344\":{\"nodes\":195,\"compile_s\":1.0e-04}}}"
  in
  let p2 =
    write_temp
      "{\"schema\":\"scanpower.bench_kernels/2\",\"fast\":true,\
       \"circuits\":{\"s344\":{\"nodes\":195,\"compile_s\":1.1e-04,\
       \"packed_width\":8,\"domains\":4,\"packed_shift_w4_s\":2.0e-03}}}"
  in
  let old_f = D.load p1 and new_f = D.load p2 in
  Sys.remove p1;
  Sys.remove p2;
  let r = D.diff old_f new_f in
  Alcotest.(check bool) "schema bump alone is clean" false
    (D.has_regression r);
  Alcotest.(check int) "shared metrics paired" 2 r.D.compared;
  (* a /2 baseline gates a /3 file the same way: the ppsfp and scale
     additions pass as new metrics, shared ones still pair *)
  let p2' =
    write_temp
      "{\"schema\":\"scanpower.bench_kernels/2\",\"fast\":true,\
       \"circuits\":{\"s344\":{\"nodes\":195,\"compile_s\":1.0e-04}}}"
  in
  let p3 =
    write_temp
      "{\"schema\":\"scanpower.bench_kernels/3\",\"fast\":true,\
       \"circuits\":{\"s344\":{\"nodes\":195,\"compile_s\":1.1e-04,\
       \"fault_sim_ppsfp_s\":3.0e-03,\"fault_sim_ppsfp_speedup\":12.0}}}"
  in
  let old_f' = D.load p2' and new_f' = D.load p3 in
  Sys.remove p2';
  Sys.remove p3;
  let r' = D.diff old_f' new_f' in
  Alcotest.(check bool) "/2 baseline gates /3 cleanly" false
    (D.has_regression r');
  Alcotest.(check int) "/2-/3 shared metrics paired" 2 r'.D.compared

(* the serve stage's amortisation contract: a serve_warm_speedup drop
   beyond the rate threshold must gate, through the literal-name pin,
   not the suffix convention *)
let check_serve_warm_speedup_gates () =
  let old_f = mk [ ("serve", [ ("serve_warm_speedup", D.F 10.0) ]) ] in
  let ok = mk [ ("serve", [ ("serve_warm_speedup", D.F 9.0) ]) ] in
  let bad = mk [ ("serve", [ ("serve_warm_speedup", D.F 2.0) ]) ] in
  Alcotest.(check bool) "within threshold passes" false
    (D.has_regression (D.diff old_f ok));
  Alcotest.(check bool) "collapse regresses" true
    (D.has_regression (D.diff old_f bad))

let check_fast_mismatch_flagged () =
  let r =
    D.diff
      (mk ~fast:true [ ("s344", base_metrics) ])
      (mk ~fast:false [ ("s344", base_metrics) ])
  in
  Alcotest.(check bool) "fast mismatch noted" true r.D.fast_mismatch;
  Alcotest.(check bool) "but identical numbers still pass" false
    (D.has_regression r)

let check_load_real_shape () =
  let path =
    write_temp
      "{\"schema\":\"scanpower.bench_kernels/1\",\"fast\":true,\
       \"circuits\":{\"s344\":{\"nodes\":195,\"compile_s\":3.7e-05,\
       \"skipped\":null}}}"
  in
  let f = D.load path in
  Sys.remove path;
  Alcotest.(check bool) "fast flag" true f.D.fast;
  match f.D.circuits with
  | [ ("s344", ms) ] ->
    Alcotest.(check bool) "int metric" true (List.assoc "nodes" ms = D.I 195);
    Alcotest.(check bool) "float metric" true
      (match List.assoc "compile_s" ms with D.F _ -> true | _ -> false);
    Alcotest.(check bool) "null metric skipped" true
      (not (List.mem_assoc "skipped" ms))
  | _ -> Alcotest.fail "wrong circuit list"

let check_load_rejects_bad_input () =
  let reject text expected_code =
    let path = write_temp text in
    (match D.load path with
    | exception E.Error e ->
      Alcotest.(check string) "error class" expected_code
        (E.code_to_string e.E.code)
    | _ -> Alcotest.failf "accepted bad input: %s" text);
    Sys.remove path
  in
  reject "{\"schema\":\"something_else/9\",\"circuits\":{}}" "parse";
  reject "{\"circuits\":{}}" "parse";
  reject "not json at all" "parse";
  match D.load "/nonexistent/bench.json" with
  | exception E.Error e ->
    Alcotest.(check string) "missing file is io" "io" (E.code_to_string e.E.code)
  | _ -> Alcotest.fail "accepted missing file"

let check_regression_exit_code () =
  Alcotest.(check int) "regression maps to exit 6" 6
    (E.exit_code E.Regression);
  Alcotest.(check string) "and its tag" "regression"
    (E.code_to_string E.Regression)

let check_committed_baseline_loads () =
  (* the repo's own gate baseline must stay loadable and self-identical *)
  if Sys.file_exists "BENCH_kernels.json" then begin
    let f = D.load "BENCH_kernels.json" in
    let r = D.diff f f in
    Alcotest.(check bool) "self-diff is clean" false (D.has_regression r);
    Alcotest.(check bool) "baseline has circuits" true (f.D.circuits <> [])
  end

let suite =
  [
    Alcotest.test_case "kind classification" `Quick check_kind_classification;
    Alcotest.test_case "identical is clean" `Quick check_identical_is_clean;
    Alcotest.test_case "2x slowdown regresses" `Quick
      check_2x_slowdown_regresses;
    Alcotest.test_case "noise within threshold passes" `Quick
      check_noise_within_threshold_passes;
    Alcotest.test_case "wider threshold passes 2x" `Quick
      check_wider_threshold_passes_2x;
    Alcotest.test_case "count drift regresses" `Quick
      check_count_drift_regresses;
    Alcotest.test_case "rate drop regresses" `Quick check_rate_drop_regresses;
    Alcotest.test_case "missing metric regresses" `Quick
      check_missing_metric_regresses;
    Alcotest.test_case "additions are clean" `Quick check_additions_are_clean;
    Alcotest.test_case "config change is clean" `Quick
      check_config_change_is_clean;
    Alcotest.test_case "schema bump pairs metrics" `Quick
      check_schema_bump_pairs;
    Alcotest.test_case "serve_warm_speedup gates as a rate" `Quick
      check_serve_warm_speedup_gates;
    Alcotest.test_case "fast mismatch flagged" `Quick
      check_fast_mismatch_flagged;
    Alcotest.test_case "load real shape" `Quick check_load_real_shape;
    Alcotest.test_case "load rejects bad input" `Quick
      check_load_rejects_bad_input;
    Alcotest.test_case "regression exit code" `Quick
      check_regression_exit_code;
    Alcotest.test_case "committed baseline loads" `Quick
      check_committed_baseline_loads;
  ]
