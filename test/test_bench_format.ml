(* ISCAS89 .bench parser and writer. *)

open Netlist

let check_parse_s27 () =
  let c = Bench_parser.parse_string ~name:"s27" Circuits.s27_bench_text in
  let s = Circuit.stats c in
  Alcotest.(check int) "inputs" 4 s.Circuit.n_inputs;
  Alcotest.(check int) "outputs" 1 s.Circuit.n_outputs;
  Alcotest.(check int) "dffs" 3 s.Circuit.n_dffs;
  Alcotest.(check int) "gates" 10 s.Circuit.n_gates

let check_comments_and_blank_lines () =
  let text = "# header\n\nINPUT(a)\n  # indented comment\nOUTPUT(a)\n" in
  let c = Bench_parser.parse_string text in
  Alcotest.(check int) "one input" 1 (Array.length (Circuit.inputs c))

let check_case_insensitive_keywords () =
  let text = "input(a)\ninput(b)\noutput(y)\ny = nand(a, b)\n" in
  let c = Bench_parser.parse_string text in
  Alcotest.(check int) "gate parsed" 1 (Circuit.gate_count c)

let check_forward_references () =
  (* y uses z before z is defined *)
  let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(a)\n" in
  let c = Bench_parser.parse_string text in
  Alcotest.(check int) "two gates" 2 (Circuit.gate_count c)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  needle = "" || go 0

module E = Scanpower_errors

let expect_error ?(substring = "") text () =
  match Bench_parser.parse_string text with
  | exception E.Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S contains %S" e.E.message substring)
      true
      (contains ~needle:substring e.E.message);
    e
  | _ -> Alcotest.fail "expected Scanpower_errors.Error"

let expect_parse_error ?substring text () = ignore (expect_error ?substring text ())

let check_undefined_signal =
  expect_parse_error ~substring:"undefined" "INPUT(a)\ny = NOT(zz)\nOUTPUT(y)\n"

let check_double_definition =
  expect_parse_error ~substring:"driven again" "INPUT(a)\na = NOT(a)\nOUTPUT(a)\n"

let check_unknown_gate =
  expect_parse_error ~substring:"unknown gate" "INPUT(a)\ny = FOO(a)\nOUTPUT(y)\n"

let check_bad_arity =
  expect_parse_error ~substring:"input(s)" "INPUT(a)\ny = NAND(a)\nOUTPUT(y)\n"

(* ---- structured-error satellites: location + token + exit class ---- *)

let check_truncated_file_location () =
  let e = expect_error ~substring:"truncated" "INPUT(a)\nOUTPUT(y)\ny = NAND(a\n" () in
  Alcotest.(check string) "code" "parse" (E.code_to_string e.E.code);
  Alcotest.(check int) "exit code" 3 (E.exit_code e.E.code);
  (match e.E.loc with
  | Some l -> Alcotest.(check int) "line" 3 l.E.line
  | None -> Alcotest.fail "expected a location");
  Alcotest.(check (option string)) "token" (Some "NAND(a") e.E.token

let check_bad_arity_location () =
  let e = expect_error "INPUT(a)\ny = NAND(a)\nOUTPUT(y)\n" () in
  Alcotest.(check string) "code" "validation" (E.code_to_string e.E.code);
  (match e.E.loc with
  | Some l -> Alcotest.(check int) "line" 2 l.E.line
  | None -> Alcotest.fail "expected a location");
  Alcotest.(check (option string)) "token names the net" (Some "y") e.E.token

let check_unknown_gate_token () =
  let e = expect_error "INPUT(a)\ny = FOO(a)\nOUTPUT(y)\n" () in
  Alcotest.(check (option string)) "token" (Some "y") e.E.token;
  Alcotest.(check bool)
    "message names the opcode" true
    (contains ~needle:"FOO" e.E.message)

let check_self_loop_rejected () =
  let e = expect_error ~substring:"combinational loop"
      "INPUT(a)\ny = NAND(a, y)\nOUTPUT(y)\n" ()
  in
  Alcotest.(check bool)
    "cycle names the net" true
    (contains ~needle:"y -> y" e.E.message)

let check_all_diagnostics_reported () =
  (* two independent problems in one file: the single raised error must
     carry both, not just the first *)
  let e =
    expect_error "INPUT(a)\ny = NAND(a)\nz = FOO(a)\nOUTPUT(y)\nOUTPUT(z)\n" ()
  in
  Alcotest.(check bool) "arity reported" true (contains ~needle:"NAND" e.E.message);
  Alcotest.(check bool) "opcode reported" true (contains ~needle:"FOO" e.E.message)

let check_parse_file_missing () =
  match Bench_parser.parse_file "/nonexistent/no_such.bench" with
  | exception E.Error e ->
    Alcotest.(check string) "code" "io" (E.code_to_string e.E.code);
    Alcotest.(check int) "exit code" 4 (E.exit_code e.E.code)
  | _ -> Alcotest.fail "expected an io error"

let check_lint_does_not_raise () =
  let diags = Bench_parser.lint "INPUT(a\ny = NAND(a)\nz = z2\n" in
  Alcotest.(check bool) "several diagnostics" true (List.length diags >= 2);
  Alcotest.(check bool)
    "has a syntax diagnostic" true
    (List.exists (fun d -> d.Validate.check = "syntax") diags)

let check_roundtrip () =
  let c = Circuits.s27 () in
  let text = Bench_writer.to_string c in
  let c' = Bench_parser.parse_string ~name:"s27" text in
  let s = Circuit.stats c and s' = Circuit.stats c' in
  Alcotest.(check bool) "same stats" true (s = s');
  (* functional equivalence on a few vectors *)
  let sim = Sim.Seq_sim.create c and sim' = Sim.Seq_sim.create c' in
  let rng = Util.Rng.create 5 in
  for _ = 1 to 20 do
    let v = Util.Rng.bool_array rng 4 in
    Alcotest.(check (array bool))
      "outputs equal"
      (Sim.Seq_sim.step sim v)
      (Sim.Seq_sim.step sim' v)
  done

(* Node-by-node circuit equality up to node numbering: same source /
   output name sets, and for every node the same kind and the same
   fanin names in the same order. *)
let check_structurally_equal c c' =
  let name_of cc id = (Circuit.node cc id).Circuit.name in
  let names cc ids = Array.to_list ids |> List.map (name_of cc) in
  Alcotest.(check (list string))
    "inputs" (names c (Circuit.inputs c)) (names c' (Circuit.inputs c'));
  Alcotest.(check (list string))
    "outputs" (names c (Circuit.outputs c)) (names c' (Circuit.outputs c'));
  Alcotest.(check (list string))
    "dffs" (names c (Circuit.dffs c)) (names c' (Circuit.dffs c'));
  Array.iter
    (fun nd ->
      let id' = Circuit.find c' nd.Circuit.name in
      let nd' = Circuit.node c' id' in
      Alcotest.(check bool)
        (nd.Circuit.name ^ " same kind")
        true
        (Gate.equal_kind nd.Circuit.kind nd'.Circuit.kind);
      Alcotest.(check (list string))
        (nd.Circuit.name ^ " same fanins")
        (Array.to_list nd.Circuit.fanins |> List.map (name_of c))
        (Array.to_list nd'.Circuit.fanins |> List.map (name_of c')))
    (Circuit.nodes c)

(* the satellite round-trip: the embedded s27 text itself, through the
   writer and back, must reproduce the circuit node for node *)
let check_roundtrip_structural () =
  let c = Bench_parser.parse_string ~name:"s27" Circuits.s27_bench_text in
  let c' = Bench_parser.parse_string ~name:"s27" (Bench_writer.to_string c) in
  check_structurally_equal c c'

let check_truncated_line =
  expect_parse_error "INPUT(a)\nOUTPUT(y)\ny = NAND(a\n"

let check_roundtrip_generated () =
  let c =
    Circuits.generate
      { Circuits.name = "rt"; n_pi = 5; n_po = 3; n_ff = 4; n_gates = 40; seed = 7 }
  in
  let c' = Bench_parser.parse_string (Bench_writer.to_string c) in
  Alcotest.(check int) "gates" (Circuit.gate_count c) (Circuit.gate_count c');
  Alcotest.(check int)
    "dffs"
    (Array.length (Circuit.dffs c))
    (Array.length (Circuit.dffs c'))

let suite =
  [
    Alcotest.test_case "parse s27" `Quick check_parse_s27;
    Alcotest.test_case "comments and blanks" `Quick check_comments_and_blank_lines;
    Alcotest.test_case "case-insensitive keywords" `Quick
      check_case_insensitive_keywords;
    Alcotest.test_case "forward references" `Quick check_forward_references;
    Alcotest.test_case "undefined signal" `Quick check_undefined_signal;
    Alcotest.test_case "double definition" `Quick check_double_definition;
    Alcotest.test_case "unknown gate" `Quick check_unknown_gate;
    Alcotest.test_case "bad arity" `Quick check_bad_arity;
    Alcotest.test_case "writer/parser roundtrip (s27)" `Quick check_roundtrip;
    Alcotest.test_case "writer/parser roundtrip (structural)" `Quick
      check_roundtrip_structural;
    Alcotest.test_case "truncated line rejected" `Quick check_truncated_line;
    Alcotest.test_case "writer/parser roundtrip (generated)" `Quick
      check_roundtrip_generated;
    Alcotest.test_case "truncated file: line/col/token" `Quick
      check_truncated_file_location;
    Alcotest.test_case "bad arity: location + token" `Quick
      check_bad_arity_location;
    Alcotest.test_case "unknown gate: token" `Quick check_unknown_gate_token;
    Alcotest.test_case "self-loop rejected with cycle" `Quick
      check_self_loop_rejected;
    Alcotest.test_case "all diagnostics in one error" `Quick
      check_all_diagnostics_reported;
    Alcotest.test_case "missing file is an io error" `Quick
      check_parse_file_missing;
    Alcotest.test_case "lint collects without raising" `Quick
      check_lint_does_not_raise;
  ]
