(* ISCAS89 .bench parser and writer. *)

open Netlist

let check_parse_s27 () =
  let c = Bench_parser.parse_string ~name:"s27" Circuits.s27_bench_text in
  let s = Circuit.stats c in
  Alcotest.(check int) "inputs" 4 s.Circuit.n_inputs;
  Alcotest.(check int) "outputs" 1 s.Circuit.n_outputs;
  Alcotest.(check int) "dffs" 3 s.Circuit.n_dffs;
  Alcotest.(check int) "gates" 10 s.Circuit.n_gates

let check_comments_and_blank_lines () =
  let text = "# header\n\nINPUT(a)\n  # indented comment\nOUTPUT(a)\n" in
  let c = Bench_parser.parse_string text in
  Alcotest.(check int) "one input" 1 (Array.length (Circuit.inputs c))

let check_case_insensitive_keywords () =
  let text = "input(a)\ninput(b)\noutput(y)\ny = nand(a, b)\n" in
  let c = Bench_parser.parse_string text in
  Alcotest.(check int) "gate parsed" 1 (Circuit.gate_count c)

let check_forward_references () =
  (* y uses z before z is defined *)
  let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(a)\n" in
  let c = Bench_parser.parse_string text in
  Alcotest.(check int) "two gates" 2 (Circuit.gate_count c)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  needle = "" || go 0

let expect_parse_error ?(substring = "") text () =
  match Bench_parser.parse_string text with
  | exception Bench_parser.Parse_error (_, msg) ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S contains %S" msg substring)
      true
      (contains ~needle:substring msg)
  | _ -> Alcotest.fail "expected Parse_error"

let check_undefined_signal =
  expect_parse_error ~substring:"undefined" "INPUT(a)\ny = NOT(zz)\nOUTPUT(y)\n"

let check_double_definition =
  expect_parse_error ~substring:"twice" "INPUT(a)\na = NOT(a)\n"

let check_unknown_gate =
  expect_parse_error ~substring:"unknown gate" "INPUT(a)\ny = FOO(a)\n"

let check_bad_arity =
  expect_parse_error "INPUT(a)\ny = NAND(a)\nOUTPUT(y)\n"

let check_roundtrip () =
  let c = Circuits.s27 () in
  let text = Bench_writer.to_string c in
  let c' = Bench_parser.parse_string ~name:"s27" text in
  let s = Circuit.stats c and s' = Circuit.stats c' in
  Alcotest.(check bool) "same stats" true (s = s');
  (* functional equivalence on a few vectors *)
  let sim = Sim.Seq_sim.create c and sim' = Sim.Seq_sim.create c' in
  let rng = Util.Rng.create 5 in
  for _ = 1 to 20 do
    let v = Util.Rng.bool_array rng 4 in
    Alcotest.(check (array bool))
      "outputs equal"
      (Sim.Seq_sim.step sim v)
      (Sim.Seq_sim.step sim' v)
  done

(* Node-by-node circuit equality up to node numbering: same source /
   output name sets, and for every node the same kind and the same
   fanin names in the same order. *)
let check_structurally_equal c c' =
  let name_of cc id = (Circuit.node cc id).Circuit.name in
  let names cc ids = Array.to_list ids |> List.map (name_of cc) in
  Alcotest.(check (list string))
    "inputs" (names c (Circuit.inputs c)) (names c' (Circuit.inputs c'));
  Alcotest.(check (list string))
    "outputs" (names c (Circuit.outputs c)) (names c' (Circuit.outputs c'));
  Alcotest.(check (list string))
    "dffs" (names c (Circuit.dffs c)) (names c' (Circuit.dffs c'));
  Array.iter
    (fun nd ->
      let id' = Circuit.find c' nd.Circuit.name in
      let nd' = Circuit.node c' id' in
      Alcotest.(check bool)
        (nd.Circuit.name ^ " same kind")
        true
        (Gate.equal_kind nd.Circuit.kind nd'.Circuit.kind);
      Alcotest.(check (list string))
        (nd.Circuit.name ^ " same fanins")
        (Array.to_list nd.Circuit.fanins |> List.map (name_of c))
        (Array.to_list nd'.Circuit.fanins |> List.map (name_of c')))
    (Circuit.nodes c)

(* the satellite round-trip: the embedded s27 text itself, through the
   writer and back, must reproduce the circuit node for node *)
let check_roundtrip_structural () =
  let c = Bench_parser.parse_string ~name:"s27" Circuits.s27_bench_text in
  let c' = Bench_parser.parse_string ~name:"s27" (Bench_writer.to_string c) in
  check_structurally_equal c c'

let check_truncated_line =
  expect_parse_error "INPUT(a)\nOUTPUT(y)\ny = NAND(a\n"

let check_roundtrip_generated () =
  let c =
    Circuits.generate
      { Circuits.name = "rt"; n_pi = 5; n_po = 3; n_ff = 4; n_gates = 40; seed = 7 }
  in
  let c' = Bench_parser.parse_string (Bench_writer.to_string c) in
  Alcotest.(check int) "gates" (Circuit.gate_count c) (Circuit.gate_count c');
  Alcotest.(check int)
    "dffs"
    (Array.length (Circuit.dffs c))
    (Array.length (Circuit.dffs c'))

let suite =
  [
    Alcotest.test_case "parse s27" `Quick check_parse_s27;
    Alcotest.test_case "comments and blanks" `Quick check_comments_and_blank_lines;
    Alcotest.test_case "case-insensitive keywords" `Quick
      check_case_insensitive_keywords;
    Alcotest.test_case "forward references" `Quick check_forward_references;
    Alcotest.test_case "undefined signal" `Quick check_undefined_signal;
    Alcotest.test_case "double definition" `Quick check_double_definition;
    Alcotest.test_case "unknown gate" `Quick check_unknown_gate;
    Alcotest.test_case "bad arity" `Quick check_bad_arity;
    Alcotest.test_case "writer/parser roundtrip (s27)" `Quick check_roundtrip;
    Alcotest.test_case "writer/parser roundtrip (structural)" `Quick
      check_roundtrip_structural;
    Alcotest.test_case "truncated line rejected" `Quick check_truncated_line;
    Alcotest.test_case "writer/parser roundtrip (generated)" `Quick
      check_roundtrip_generated;
  ]
