(* Chaos suite: deterministic fault injection driving every recovery
   path in the runner stack. The headline guarantee: a sweep that
   suffers injected crashes, exits, hangs and truncated pipe writes
   still completes and is bit-identical to a clean run, with the
   recovery counters proving the faults actually fired. *)

module Json = Telemetry.Json
module Sweep = Scanpower.Sweep
module FI = Runner.Fault_inject

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scanpower-chaos-test-%d-%d" (Unix.getpid ()) !counter)

let small ?(gates = 30) name seed =
  Circuits.generate
    { Circuits.name; n_pi = 5; n_po = 3; n_ff = 4; n_gates = gates; seed }

let rec count_corrupt dir =
  Array.fold_left
    (fun n entry ->
      let p = Filename.concat dir entry in
      if Sys.is_directory p then n + count_corrupt p
      else if Filename.check_suffix p ".corrupt" then n + 1
      else n)
    0 (Sys.readdir dir)

(* ------------------------------------------------------------------ *)
(* the headline: chaos sweep is bit-identical to a clean sweep         *)
(* ------------------------------------------------------------------ *)

(* the seed is part of the contract: the same spec replays the same
   faults, so this test either always passes or always fails *)
let default_chaos =
  {
    FI.seed = 20250805;
    rates =
      [
        (FI.Child_crash, 0.2); (FI.Child_exit, 0.1); (FI.Child_hang, 0.05);
        (FI.Truncated_write, 0.15);
      ];
  }

(* Honour the CI chaos job's SCANPOWER_FAULT_INJECT, except that an
   injected ATPG abort legitimately changes results and would break
   bit-identity — that site has its own test below. *)
let chaos_spec () =
  let spec =
    match Sys.getenv_opt "SCANPOWER_FAULT_INJECT" with
    | Some s when String.trim s <> "" -> (
      match FI.of_spec s with Ok t -> t | Error _ -> default_chaos)
    | _ -> default_chaos
  in
  let spec =
    { spec with
      FI.rates = List.filter (fun (s, _) -> s <> FI.Atpg_abort) spec.FI.rates }
  in
  if List.for_all (fun (_, r) -> r = 0.0) spec.FI.rates then default_chaos
  else spec

let check_chaos_sweep_bit_identical () =
  let circuits =
    List.init 12 (fun i -> small (Printf.sprintf "chaos%02d" i) (100 + i))
  in
  let points = Sweep.points circuits in
  let clean = Sweep.run ~jobs:2 points in
  let spec = chaos_spec () in
  let chaos =
    FI.with_spec (Some spec) (fun () ->
        (* poison detection off: injected faults legitimately repeat *)
        Sweep.run ~jobs:3 ~timeout_s:2.5 ~retries:10 ~poison_threshold:0
          points)
  in
  Alcotest.(check bool) "chaos batch completes" true (Sweep.all_ok chaos);
  List.iter2
    (fun (a : Sweep.job_result) (b : Sweep.job_result) ->
      match (a.Sweep.comparison, b.Sweep.comparison) with
      | Ok x, Ok y ->
        Alcotest.(check int)
          (a.Sweep.circuit ^ " bit-identical to the clean run")
          0 (compare x y)
      | _ -> Alcotest.fail (a.Sweep.circuit ^ ": expected two Ok results"))
    clean.Sweep.results chaos.Sweep.results;
  let s = chaos.Sweep.stats in
  Alcotest.(check bool) "recovery counters nonzero" true
    (s.Runner.crashes + s.Runner.timeouts + s.Runner.retries > 0)

(* ------------------------------------------------------------------ *)
(* corrupt cache entries are quarantined and recomputed                *)
(* ------------------------------------------------------------------ *)

let check_corrupt_cache_quarantined () =
  let dir = tmp_dir () in
  let circuits =
    List.init 3 (fun i -> small ~gates:25 (Printf.sprintf "cc%d" i) (200 + i))
  in
  let points = Sweep.points circuits in
  let corrupt = { FI.seed = 9; rates = [ (FI.Corrupt_cache, 1.0) ] } in
  let r1 =
    FI.with_spec (Some corrupt) (fun () ->
        Sweep.run ~capture_telemetry:false
          ~cache:(Runner.Cache.create ~dir ())
          points)
  in
  Alcotest.(check bool) "run with corrupting stores still ok" true
    (Sweep.all_ok r1);
  Alcotest.(check int) "everything computed" 3 r1.Sweep.stats.Runner.computed;
  (* every stored entry was truncated: the clean run must quarantine
     them all and recompute — never crash, never serve garbage *)
  let r2 =
    Sweep.run ~capture_telemetry:false
      ~cache:(Runner.Cache.create ~dir ())
      points
  in
  Alcotest.(check int) "all recomputed" 3 r2.Sweep.stats.Runner.computed;
  Alcotest.(check int) "no poisoned hits" 0 r2.Sweep.stats.Runner.cache_hits;
  List.iter2
    (fun (a : Sweep.job_result) (b : Sweep.job_result) ->
      Alcotest.(check bool) "identical after recovery" true
        (compare a.Sweep.comparison b.Sweep.comparison = 0))
    r1.Sweep.results r2.Sweep.results;
  Alcotest.(check int) "evidence preserved as .corrupt files" 3
    (count_corrupt dir);
  (* the entries rewritten by the clean run now hit *)
  let r3 =
    Sweep.run ~capture_telemetry:false
      ~cache:(Runner.Cache.create ~dir ())
      points
  in
  Alcotest.(check int) "cache repaired" 3 r3.Sweep.stats.Runner.cache_hits;
  Alcotest.(check int) "nothing recomputed" 0 r3.Sweep.stats.Runner.computed

(* ------------------------------------------------------------------ *)
(* poison detection                                                    *)
(* ------------------------------------------------------------------ *)

let check_poison_quarantine () =
  let boom =
    {
      Runner.id = "boom"; cache_key = None;
      run = (fun ~attempt:_ -> failwith "same crash every time");
    }
  in
  let cfg = { Runner.default_config with retries = 10; poison_threshold = 3 } in
  let results, stats = Runner.run ~config:cfg [ boom ] in
  (match results with
  | [ { Runner.outcome = Runner.Failed { attempts; last = Runner.Job_error _; quarantined }; _ } ] ->
    Alcotest.(check int) "cut off at the threshold, not after 11 attempts" 3
      attempts;
    Alcotest.(check bool) "quarantined" true quarantined
  | _ -> Alcotest.fail "expected one quarantined failure");
  Alcotest.(check int) "stats.quarantined" 1 stats.Runner.quarantined;
  Alcotest.(check int) "two retries before the quarantine" 2
    stats.Runner.retries

let check_varied_failures_not_poisoned () =
  (* different message each attempt: not a poison streak, so the job
     runs to retry exhaustion without quarantine *)
  let flaky =
    {
      Runner.id = "flaky"; cache_key = None;
      run =
        (fun ~attempt -> failwith (Printf.sprintf "different message %d" attempt));
    }
  in
  let cfg = { Runner.default_config with retries = 4; poison_threshold = 3 } in
  let results, stats = Runner.run ~config:cfg [ flaky ] in
  (match results with
  | [ { Runner.outcome = Runner.Failed { attempts = 5; quarantined = false; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "expected plain retry exhaustion, no quarantine");
  Alcotest.(check int) "no quarantine" 0 stats.Runner.quarantined

(* ------------------------------------------------------------------ *)
(* backoff: exponential, capped, deterministic jitter                  *)
(* ------------------------------------------------------------------ *)

let check_backoff_deterministic () =
  let cfg =
    { Runner.default_config with backoff_s = 0.1; backoff_max_s = 1.0 }
  in
  let d1 = Runner.retry_delay_s cfg ~id:"j" ~attempt:1 in
  Alcotest.(check (float 0.0)) "same inputs, same delay" d1
    (Runner.retry_delay_s cfg ~id:"j" ~attempt:1);
  Alcotest.(check bool) "jitter stays within [base/2, base)" true
    (d1 >= 0.05 && d1 < 0.1);
  let d5 = Runner.retry_delay_s cfg ~id:"j" ~attempt:5 in
  Alcotest.(check bool) "capped by backoff_max_s" true
    (d5 >= 0.5 && d5 <= 1.0);
  Alcotest.(check bool) "different jobs are desynchronized" true
    (Runner.retry_delay_s cfg ~id:"k" ~attempt:1 <> d1);
  Alcotest.(check (float 0.0)) "no backoff when disabled" 0.0
    (Runner.retry_delay_s Runner.default_config ~id:"j" ~attempt:3)

(* ------------------------------------------------------------------ *)
(* whole-batch deadline                                                *)
(* ------------------------------------------------------------------ *)

let check_deadline_partial () =
  let slow i =
    {
      Runner.id = Printf.sprintf "slow%d" i; cache_key = None;
      run =
        (fun ~attempt:_ ->
          Unix.sleepf 0.15;
          Json.Int i);
    }
  in
  let cfg = { Runner.default_config with retries = 0; deadline_s = 0.2 } in
  let results, stats = Runner.run ~config:cfg (List.init 5 slow) in
  let done_, cut =
    List.partition
      (fun r -> match r.Runner.outcome with Runner.Done _ -> true | _ -> false)
      results
  in
  Alcotest.(check bool) "some work finished before the deadline" true
    (List.length done_ >= 1);
  Alcotest.(check bool) "the deadline cut the rest" true (List.length cut >= 1);
  List.iter
    (fun r ->
      match r.Runner.outcome with
      | Runner.Failed { last = Runner.Deadline_exceeded; _ } -> ()
      | _ -> Alcotest.fail "unfinished jobs must fail with Deadline_exceeded")
    cut;
  Alcotest.(check int) "failures counted" (List.length cut) stats.Runner.failed

(* ------------------------------------------------------------------ *)
(* SIGINT: reap children, return a partial report                      *)
(* ------------------------------------------------------------------ *)

let check_sigint_partial_report () =
  let quick =
    { Runner.id = "quick"; cache_key = None;
      run = (fun ~attempt:_ -> Json.String "done") }
  in
  (* a worker that interrupts its own pool: after it fires, every
     unfinished job must come back Interrupted, not hang for 30 s *)
  let killer =
    {
      Runner.id = "killer"; cache_key = None;
      run =
        (fun ~attempt:_ ->
          Unix.sleepf 0.3;
          Unix.kill (Unix.getppid ()) Sys.sigint;
          Unix.sleepf 30.0;
          Json.Null);
    }
  in
  let sleeper i =
    {
      Runner.id = Printf.sprintf "sleeper%d" i; cache_key = None;
      run =
        (fun ~attempt:_ ->
          Unix.sleepf 30.0;
          Json.Int i);
    }
  in
  let cfg =
    { Runner.default_config with jobs = 2; retries = 0; handle_signals = true }
  in
  let t0 = Unix.gettimeofday () in
  let results, stats =
    Runner.run ~config:cfg (quick :: killer :: List.init 2 sleeper)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "partial report, not a 30 s hang" true (elapsed < 10.0);
  Alcotest.(check bool) "interrupted flag set" true stats.Runner.interrupted;
  (match (List.hd results).Runner.outcome with
  | Runner.Done _ -> ()
  | _ -> Alcotest.fail "the finished job must survive in the partial report");
  let cut =
    List.filter
      (fun r ->
        match r.Runner.outcome with
        | Runner.Failed { last = Runner.Interrupted; _ } -> true
        | _ -> false)
      results
  in
  Alcotest.(check int) "everything unfinished is Interrupted" 3
    (List.length cut)

(* ------------------------------------------------------------------ *)
(* SIGKILL + --resume: only unfinished jobs are recomputed             *)
(* ------------------------------------------------------------------ *)

let check_kill_and_resume () =
  let dir = tmp_dir () in
  Unix.mkdir dir 0o755;
  let journal = Filename.concat dir "sweep.journal" in
  let circuits =
    List.init 10 (fun i -> small ~gates:45 (Printf.sprintf "kr%d" i) (300 + i))
  in
  let points = Sweep.points circuits in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try ignore (Sweep.run ~jobs:2 ~journal_path:journal points)
     with _ -> ());
    Unix._exit 0
  end;
  Unix.sleepf 0.6;
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid);
  (* whatever the child checkpointed before dying is the contract:
     the resumed run replays exactly that and computes only the rest *)
  let journaled =
    let j =
      Runner.Journal.open_ ~path:journal ~meta:(Sweep.journal_meta points)
        ~resume:true
    in
    let n = Runner.Journal.completed j in
    Runner.Journal.close j;
    n
  in
  Telemetry.reset ();
  Telemetry.enable ();
  let r = Sweep.run ~jobs:2 ~journal_path:journal ~resume:true points in
  let computed_counter = Telemetry.Counter.find "runner.jobs.computed" in
  Telemetry.disable ();
  Alcotest.(check bool) "resumed batch completes" true (Sweep.all_ok r);
  Alcotest.(check int) "checkpointed jobs served from the journal" journaled
    r.Sweep.stats.Runner.journal_hits;
  Alcotest.(check int) "only unfinished jobs recomputed"
    (List.length points - journaled)
    r.Sweep.stats.Runner.computed;
  Alcotest.(check (option int)) "runner.jobs.computed agrees"
    (Some (List.length points - journaled))
    computed_counter

(* ------------------------------------------------------------------ *)
(* forced ATPG aborts: classified, reported, never cached              *)
(* ------------------------------------------------------------------ *)

let check_atpg_abort_degrades_gracefully () =
  let c = small ~gates:60 "abort" 77 in
  let cfg =
    { Atpg.Pattern_gen.default_config with
      Atpg.Pattern_gen.backtrack_limit = 0 }
  in
  let cmp = Scanpower.Flow.run_benchmark ~atpg_config:cfg c in
  let a = cmp.Scanpower.Flow.atpg in
  Alcotest.(check bool) "some faults aborted" true
    (a.Scanpower.Flow.aborted > 0);
  Alcotest.(check string) "status classifies the abort" "aborted_faults"
    (Scanpower.Flow.atpg_status a);
  Alcotest.(check bool) "flow still produced power numbers" true
    (cmp.Scanpower.Flow.traditional.Scanpower.Flow.dynamic_per_hz_uw > 0.0)

let check_atpg_abort_injection_bypasses_cache () =
  let dir = tmp_dir () in
  let circuits = [ small ~gates:60 "ab0" 400; small ~gates:60 "ab1" 401 ] in
  let points = Sweep.points circuits in
  let spec = { FI.seed = 3; rates = [ (FI.Atpg_abort, 1.0) ] } in
  let r1 =
    FI.with_spec (Some spec) (fun () ->
        Sweep.run ~capture_telemetry:false
          ~cache:(Runner.Cache.create ~dir ())
          points)
  in
  Alcotest.(check bool) "degraded batch completes" true (Sweep.all_ok r1);
  List.iter
    (fun (jr : Sweep.job_result) ->
      match jr.Sweep.comparison with
      | Ok c ->
        Alcotest.(check bool) (jr.Sweep.circuit ^ " reports the abort") true
          (c.Scanpower.Flow.atpg.Scanpower.Flow.aborted > 0)
      | Error e -> Alcotest.fail e)
    r1.Sweep.results;
  (* degraded results must never land in the content-addressed cache:
     a later clean run recomputes everything from scratch *)
  let r2 =
    Sweep.run ~capture_telemetry:false
      ~cache:(Runner.Cache.create ~dir ())
      points
  in
  Alcotest.(check int) "clean run recomputes everything" 2
    r2.Sweep.stats.Runner.computed;
  Alcotest.(check int) "no degraded entries served" 0
    r2.Sweep.stats.Runner.cache_hits;
  (* the default backtrack limit may still legitimately abort a few
     stubborn faults; the invariant is that the clean run aborts
     strictly fewer than the limit-0 degraded run did *)
  List.iter2
    (fun (degraded : Sweep.job_result) (clean : Sweep.job_result) ->
      match (degraded.Sweep.comparison, clean.Sweep.comparison) with
      | Ok d, Ok c ->
        Alcotest.(check bool)
          (clean.Sweep.circuit ^ " clean ATPG aborts fewer faults")
          true
          (c.Scanpower.Flow.atpg.Scanpower.Flow.aborted
          < d.Scanpower.Flow.atpg.Scanpower.Flow.aborted)
      | _ -> Alcotest.fail "expected Ok results on both runs")
    r1.Sweep.results r2.Sweep.results

(* ------------------------------------------------------------------ *)
(* the journal itself                                                  *)
(* ------------------------------------------------------------------ *)

let check_journal_roundtrip () =
  let dir = tmp_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "j.journal" in
  let meta = Json.Obj [ ("batch", Json.String "t1") ] in
  let j = Runner.Journal.open_ ~path ~meta ~resume:false in
  Runner.Journal.record_done j ~key:"a" (Json.Int 1);
  Runner.Journal.record_failed j ~key:"b" "boom";
  Runner.Journal.record_done j ~key:"b" (Json.Int 2);
  Runner.Journal.close j;
  let j2 = Runner.Journal.open_ ~path ~meta ~resume:true in
  (match Runner.Journal.find j2 "a" with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "a must replay");
  (match Runner.Journal.find j2 "b" with
  | Some (Json.Int 2) -> ()
  | _ -> Alcotest.fail "b's failure must be superseded by its later success");
  Alcotest.(check int) "completed" 2 (Runner.Journal.completed j2);
  Runner.Journal.close j2;
  (* a torn trailing line (SIGKILL mid-append) must not lose the
     records before it *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"key\":\"c\",\"status\":\"ok\",\"blo";
  close_out oc;
  let j3 = Runner.Journal.open_ ~path ~meta ~resume:true in
  Alcotest.(check int) "torn tail ignored" 2 (Runner.Journal.completed j3);
  Alcotest.(check bool) "torn record absent" true
    (Runner.Journal.find j3 "c" = None);
  Runner.Journal.close j3;
  (* a journal written for a different batch must start over, never
     serve answers for the wrong inputs *)
  let other = Json.Obj [ ("batch", Json.String "t2") ] in
  let j4 = Runner.Journal.open_ ~path ~meta:other ~resume:true in
  Alcotest.(check int) "foreign journal discarded" 0
    (Runner.Journal.completed j4);
  Runner.Journal.close j4

let check_journal_meta_binds_batch () =
  let c1 = small "jm1" 500 and c2 = small "jm2" 501 in
  let m1 = Sweep.journal_meta (Sweep.points [ c1 ]) in
  let m2 = Sweep.journal_meta (Sweep.points [ c2 ]) in
  let m12 = Sweep.journal_meta (Sweep.points [ c1; c2 ]) in
  Alcotest.(check bool) "different circuits, different meta" true (m1 <> m2);
  Alcotest.(check bool) "different point sets, different meta" true
    (m1 <> m12 && m2 <> m12);
  Alcotest.(check bool) "meta is stable" true
    (m1 = Sweep.journal_meta (Sweep.points [ c1 ]))

(* ------------------------------------------------------------------ *)
(* the daemon under fault injection: bit-identical to one-shot         *)
(* ------------------------------------------------------------------ *)

(* A live daemon whose ATPG aborts on every machine (rate 1.0, so the
   fault deterministically fires) must return exactly what the
   one-shot path returns under the same injection: the degraded result
   is still a correct, reproducible result. Circuits are shipped
   inline over the wire, and the reference side parses the same
   serialized text, so both sides work from identical netlists. *)
let check_daemon_chaos_bit_identical () =
  let module P = Scanpower_server.Protocol in
  let module C = Scanpower_server.Client in
  let spec = { FI.seed = 77; rates = [ (FI.Atpg_abort, 1.0) ] } in
  let benches =
    List.init 3 (fun i ->
        let c = small (Printf.sprintf "dchaos%d" i) (300 + i) in
        (Netlist.Circuit.name c, Netlist.Bench_writer.to_string c))
  in
  let parsed =
    List.map (fun (name, text) -> Netlist.Bench_parser.parse_string ~name text)
      benches
  in
  let sweep_cmps inject =
    let run () =
      Sweep.run ~jobs:1 ~capture_telemetry:false
        (Sweep.points ~seeds:[ 3 ] parsed)
    in
    let report =
      if inject then FI.with_spec (Some spec) run else run ()
    in
    List.map
      (fun (jr : Sweep.job_result) ->
        match jr.Sweep.comparison with
        | Ok c -> Sweep.comparison_to_json c
        | Error m -> Alcotest.fail m)
      report.Sweep.results
  in
  let direct = sweep_cmps true in
  (* the injection must actually bite: an aborted ATPG produces a
     different (degraded) result than a clean run *)
  let clean = sweep_cmps false in
  Alcotest.(check bool) "injected abort changes the result" false
    (Json.equal (List.hd direct) (List.hd clean));
  (* the daemon inherits the armed injector at fork time *)
  let pid, socket =
    FI.with_spec (Some spec) (fun () -> Test_server.start_daemon ())
  in
  Fun.protect
    ~finally:(fun () -> ignore (Test_server.stop_daemon pid))
    (fun () ->
      Test_server.with_client socket (fun client ->
          List.iteri
            (fun i ((name, text), reference) ->
              let req =
                P.make
                  ~id:(Printf.sprintf "dc%d" i)
                  ~bench:text ~name ~seed:3 P.Sweep_point
              in
              match C.rpc client req with
              | Error e -> Alcotest.fail (Scanpower_errors.to_string e)
              | Ok v -> (
                match Json.member "comparison" v with
                | Some cmp ->
                  Alcotest.(check bool)
                    (name ^ " daemon ≡ one-shot under injection")
                    true (Json.equal reference cmp)
                | None -> Alcotest.fail "sweep-point value lacks a comparison"))
            (List.combine benches direct)))

let suite =
  [
    Alcotest.test_case "chaos sweep bit-identical to clean" `Quick
      check_chaos_sweep_bit_identical;
    Alcotest.test_case "daemon under injection bit-identical to one-shot"
      `Quick check_daemon_chaos_bit_identical;
    Alcotest.test_case "corrupt cache quarantined and recomputed" `Quick
      check_corrupt_cache_quarantined;
    Alcotest.test_case "poison quarantine" `Quick check_poison_quarantine;
    Alcotest.test_case "varied failures are not poison" `Quick
      check_varied_failures_not_poisoned;
    Alcotest.test_case "backoff deterministic, capped, jittered" `Quick
      check_backoff_deterministic;
    Alcotest.test_case "deadline yields a partial report" `Quick
      check_deadline_partial;
    Alcotest.test_case "sigint reaps and reports partial" `Quick
      check_sigint_partial_report;
    Alcotest.test_case "sigkill then --resume recomputes only the rest" `Quick
      check_kill_and_resume;
    Alcotest.test_case "forced atpg abort degrades gracefully" `Quick
      check_atpg_abort_degrades_gracefully;
    Alcotest.test_case "injected atpg abort bypasses the cache" `Quick
      check_atpg_abort_injection_bypasses_cache;
    Alcotest.test_case "journal roundtrip, torn tail, foreign meta" `Quick
      check_journal_roundtrip;
    Alcotest.test_case "journal meta binds the batch" `Quick
      check_journal_meta_binds_batch;
  ]
