(* Netlist IR: builder validation, topology, levels, fanout wiring,
   permutation, copy semantics. *)

open Netlist

(* a -> NAND(a,b) -> NOT -> po, with a DFF fed back *)
let small () =
  let b = Circuit.Builder.create ~name:"small" () in
  let a = Circuit.Builder.add_input b "a" in
  let bb = Circuit.Builder.add_input b "b" in
  let ff = Circuit.Builder.declare_dff b "ff" in
  let g1 = Circuit.Builder.add_gate b Gate.Nand "g1" [ a; bb ] in
  let g2 = Circuit.Builder.add_gate b Gate.Nor "g2" [ g1; ff ] in
  let g3 = Circuit.Builder.add_gate b Gate.Not "g3" [ g2 ] in
  Circuit.Builder.connect_dff b ff ~d:g3;
  let _ = Circuit.Builder.add_output b "po" g3 in
  Circuit.Builder.build b

let check_counts () =
  let c = small () in
  let s = Circuit.stats c in
  Alcotest.(check int) "inputs" 2 s.Circuit.n_inputs;
  Alcotest.(check int) "outputs" 1 s.Circuit.n_outputs;
  Alcotest.(check int) "dffs" 1 s.Circuit.n_dffs;
  Alcotest.(check int) "gates" 3 s.Circuit.n_gates;
  (* the primary-output marker adds one virtual level *)
  Alcotest.(check int) "depth" 4 s.Circuit.max_level

let check_sources_order () =
  let c = small () in
  let srcs = Circuit.sources c in
  Alcotest.(check int) "count" 3 (Array.length srcs);
  Alcotest.(check string) "pi first" "a" (Circuit.node c srcs.(0)).Circuit.name;
  Alcotest.(check string) "dff last" "ff" (Circuit.node c srcs.(2)).Circuit.name

let check_topo_respects_fanins () =
  let c = small () in
  let pos = Array.make (Circuit.node_count c) (-1) in
  Array.iteri (fun i id -> pos.(id) <- i) (Circuit.topo_order c);
  Array.iter
    (fun nd ->
      if not (Gate.is_source nd.Circuit.kind) then
        Array.iter
          (fun f ->
            Alcotest.(check bool)
              (Printf.sprintf "fanin %d before node %d" f nd.Circuit.id)
              true
              (pos.(f) < pos.(nd.Circuit.id)))
          nd.Circuit.fanins)
    (Circuit.nodes c)

let check_fanouts_are_inverse_of_fanins () =
  let c = small () in
  Array.iter
    (fun nd ->
      Array.iter
        (fun f ->
          let driver = Circuit.node c f in
          Alcotest.(check bool) "fanout contains reader" true
            (Array.exists (fun s -> s = nd.Circuit.id) driver.Circuit.fanouts))
        nd.Circuit.fanins)
    (Circuit.nodes c)

let check_find () =
  let c = small () in
  Alcotest.(check string) "find g2" "g2"
    (Circuit.node c (Circuit.find c "g2")).Circuit.name;
  Alcotest.(check bool) "find_opt missing" true
    (Circuit.find_opt c "nope" = None)

let check_levels () =
  let c = small () in
  Alcotest.(check int) "source level" 0 (Circuit.level c (Circuit.find c "a"));
  Alcotest.(check int) "g1 level" 1 (Circuit.level c (Circuit.find c "g1"));
  Alcotest.(check int) "g2 level" 2 (Circuit.level c (Circuit.find c "g2"));
  Alcotest.(check int) "g3 level" 3 (Circuit.level c (Circuit.find c "g3"))

let check_dangling_dff_rejected () =
  let b = Circuit.Builder.create () in
  let _ = Circuit.Builder.add_input b "a" in
  let _ = Circuit.Builder.declare_dff b "ff" in
  Alcotest.check_raises "dangling"
    (Invalid_argument "Circuit.Builder.build: dangling DFF \"ff\"") (fun () ->
      ignore (Circuit.Builder.build b))

let check_duplicate_name_rejected () =
  let b = Circuit.Builder.create () in
  let _ = Circuit.Builder.add_input b "a" in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Circuit.Builder: duplicate name \"a\"") (fun () ->
      ignore (Circuit.Builder.add_input b "a"))

let check_cycle_rejected () =
  (* combinational loop g1 -> g2 -> g1 through forward references *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  (* gate ids are assigned sequentially: g1 = 1, g2 = 2 *)
  let g1 = Circuit.Builder.add_gate b Gate.Nand "g1" [ a; 2 ] in
  let _ = Circuit.Builder.add_gate b Gate.Nand "g2" [ a; g1 ] in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Circuit.Builder.build: combinational cycle") (fun () ->
      ignore (Circuit.Builder.build b))

let check_sequential_feedback_allowed () =
  (* feedback through a DFF is fine: ff -> g -> ff *)
  let b = Circuit.Builder.create () in
  let ff = Circuit.Builder.declare_dff b "ff" in
  let g = Circuit.Builder.add_gate b Gate.Not "g" [ ff ] in
  Circuit.Builder.connect_dff b ff ~d:g;
  let _ = Circuit.Builder.add_input b "unused_pi" in
  let _ = Circuit.Builder.add_output b "po" g in
  let c = Circuit.Builder.build b in
  Alcotest.(check int) "built" 4 (Circuit.node_count c)

let check_permute_fanins () =
  let c = small () in
  let g1 = Circuit.find c "g1" in
  let before = Array.copy (Circuit.node c g1).Circuit.fanins in
  Circuit.permute_fanins c g1 [| 1; 0 |];
  let after = (Circuit.node c g1).Circuit.fanins in
  Alcotest.(check int) "swapped 0" before.(1) after.(0);
  Alcotest.(check int) "swapped 1" before.(0) after.(1)

let check_permute_rejects_asymmetric () =
  let c = small () in
  let g3 = Circuit.find c "g3" in
  Alcotest.check_raises "not gate"
    (Invalid_argument "Circuit.permute_fanins: gate is not symmetric")
    (fun () -> Circuit.permute_fanins c g3 [| 0 |])

let check_permute_rejects_non_permutation () =
  let c = small () in
  let g1 = Circuit.find c "g1" in
  Alcotest.check_raises "dup index"
    (Invalid_argument "Circuit.permute_fanins: not a permutation") (fun () ->
      Circuit.permute_fanins c g1 [| 0; 0 |])

let check_copy_isolation () =
  let c = small () in
  let c' = Circuit.copy c in
  let g1 = Circuit.find c "g1" in
  let orig = Array.copy (Circuit.node c g1).Circuit.fanins in
  Circuit.permute_fanins c' g1 [| 1; 0 |];
  Alcotest.(check bool) "original untouched" true
    ((Circuit.node c g1).Circuit.fanins = orig);
  Alcotest.(check bool) "copy changed" true
    ((Circuit.node c' g1).Circuit.fanins <> orig)

(* Property: generated circuits always topo-sort and their levels are
   consistent. *)
let prop_generated_well_formed =
  QCheck.Test.make ~name:"generated circuits well-formed" ~count:20
    (QCheck.make
       QCheck.Gen.(
         quad (int_range 2 8) (int_range 1 6) (int_range 0 10) (int_range 10 120)))
    (fun (n_pi, n_po, n_ff, n_gates) ->
      let c =
        Circuits.generate
          { Circuits.name = "prop"; n_pi; n_po; n_ff; n_gates; seed = n_gates }
      in
      let ok = ref true in
      let pos = Array.make (Circuit.node_count c) (-1) in
      Array.iteri (fun i id -> pos.(id) <- i) (Circuit.topo_order c);
      Array.iter
        (fun nd ->
          if not (Gate.is_source nd.Circuit.kind) then begin
            Array.iter
              (fun f -> if pos.(f) >= pos.(nd.Circuit.id) then ok := false)
              nd.Circuit.fanins;
            let lvl = Circuit.level c nd.Circuit.id in
            Array.iter
              (fun f -> if Circuit.level c f >= lvl then ok := false)
              nd.Circuit.fanins
          end)
        (Circuit.nodes c);
      !ok)

let suite =
  [
    Alcotest.test_case "counts" `Quick check_counts;
    Alcotest.test_case "sources order" `Quick check_sources_order;
    Alcotest.test_case "topological order" `Quick check_topo_respects_fanins;
    Alcotest.test_case "fanout wiring" `Quick check_fanouts_are_inverse_of_fanins;
    Alcotest.test_case "find by name" `Quick check_find;
    Alcotest.test_case "levels" `Quick check_levels;
    Alcotest.test_case "dangling DFF rejected" `Quick check_dangling_dff_rejected;
    Alcotest.test_case "duplicate name rejected" `Quick check_duplicate_name_rejected;
    Alcotest.test_case "combinational cycle rejected" `Quick check_cycle_rejected;
    Alcotest.test_case "sequential feedback allowed" `Quick
      check_sequential_feedback_allowed;
    Alcotest.test_case "permute fanins" `Quick check_permute_fanins;
    Alcotest.test_case "permute rejects asymmetric" `Quick
      check_permute_rejects_asymmetric;
    Alcotest.test_case "permute rejects non-permutation" `Quick
      check_permute_rejects_non_permutation;
    Alcotest.test_case "copy isolation" `Quick check_copy_isolation;
    QCheck_alcotest.to_alcotest prop_generated_well_formed;
  ]
