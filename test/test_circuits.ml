(* Benchmark registry and the ISCAS89-profile circuit generator. *)

open Netlist

let check_registry () =
  Alcotest.(check int) "15 benchmarks" 15 (List.length Circuits.names);
  Alcotest.(check bool) "s27 first" true (List.hd Circuits.names = "s27");
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "scale profile %s registered" p.Circuits.name)
        true
        (List.mem p.Circuits.name Circuits.names))
    Circuits.scale_profiles;
  List.iter
    (fun name ->
      let c = Circuits.by_name name in
      Alcotest.(check string) "name matches" name (Circuit.name c))
    Circuits.names;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Circuits.by_name "s9999"))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  needle = "" || go 0

let check_find () =
  (match Circuits.find "s382" with
  | Ok c -> Alcotest.(check string) "found" "s382" (Circuit.name c)
  | Error e -> Alcotest.fail e);
  match Circuits.find "s9999" with
  | Ok _ -> Alcotest.fail "s9999 should not resolve"
  | Error msg ->
    (* the error must name the offender and list every valid choice *)
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "error mentions %s" needle)
          true
          (contains ~needle msg))
      ("s9999" :: Circuits.names)

let check_profiles_respected () =
  List.iter
    (fun p ->
      let c = Circuits.generate p in
      let s = Circuit.stats c in
      Alcotest.(check int) (p.Circuits.name ^ " inputs") p.Circuits.n_pi
        s.Circuit.n_inputs;
      Alcotest.(check int) (p.Circuits.name ^ " outputs") p.Circuits.n_po
        s.Circuit.n_outputs;
      Alcotest.(check int) (p.Circuits.name ^ " dffs") p.Circuits.n_ff
        s.Circuit.n_dffs;
      Alcotest.(check int) (p.Circuits.name ^ " gates") p.Circuits.n_gates
        s.Circuit.n_gates)
    Circuits.table1_profiles

let check_generator_deterministic () =
  let p = List.hd Circuits.table1_profiles in
  let c1 = Circuits.generate p and c2 = Circuits.generate p in
  Alcotest.(check string) "identical netlists" (Bench_writer.to_string c1)
    (Bench_writer.to_string c2)

let check_seed_changes_structure () =
  let p = List.hd Circuits.table1_profiles in
  let c1 = Circuits.generate p in
  let c2 = Circuits.generate { p with Circuits.seed = p.Circuits.seed + 1 } in
  Alcotest.(check bool) "different netlists" true
    (Bench_writer.to_string c1 <> Bench_writer.to_string c2)

let check_generated_are_mapped () =
  List.iter
    (fun p ->
      Alcotest.(check bool) (p.Circuits.name ^ " mapped") true
        (Techmap.Mapper.is_mapped (Circuits.generate p)))
    Circuits.table1_profiles

let check_no_dangling_logic () =
  List.iter
    (fun p ->
      let c = Circuits.generate p in
      Array.iter
        (fun nd ->
          if Gate.is_logic nd.Circuit.kind then
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s drives something" p.Circuits.name
                 nd.Circuit.name)
              true
              (Array.length nd.Circuit.fanouts > 0))
        (Circuit.nodes c))
    Circuits.table1_profiles

let check_depth_realistic () =
  List.iter
    (fun p ->
      let c = Circuits.generate p in
      let depth = Circuit.depth c in
      Alcotest.(check bool)
        (Printf.sprintf "%s depth %d in [8, 80]" p.Circuits.name depth)
        true
        (depth >= 8 && depth <= 80))
    Circuits.table1_profiles

let check_sequential_feedback_exists () =
  (* the generated machines must actually be sequential: some flip-flop
     must transitively depend on a flip-flop output *)
  let p = List.hd Circuits.table1_profiles in
  let c = Circuits.generate p in
  let depends_on_state = Array.make (Circuit.node_count c) false in
  Array.iter (fun id -> depends_on_state.(id) <- true) (Circuit.dffs c);
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      if not (Gate.is_source nd.Circuit.kind) then
        depends_on_state.(id) <-
          Array.exists (fun f -> depends_on_state.(f)) nd.Circuit.fanins)
    (Circuit.topo_order c);
  Alcotest.(check bool) "feedback" true
    (Array.exists
       (fun id -> depends_on_state.((Circuit.node c id).Circuit.fanins.(0)))
       (Circuit.dffs c))

let check_malformed_profile_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Circuits.generate
            { Circuits.name = "bad"; n_pi = 0; n_po = 1; n_ff = 0; n_gates = 5;
              seed = 1 });
       false
     with Invalid_argument _ -> true)

let check_s27_is_genuine () =
  (* spot-check the embedded netlist against the published structure *)
  let c = Circuits.s27 () in
  let kind name = (Circuit.node c (Circuit.find c name)).Circuit.kind in
  Alcotest.(check bool) "G10 NOR" true (Gate.equal_kind (kind "G10") Gate.Nor);
  Alcotest.(check bool) "G13 NAND" true (Gate.equal_kind (kind "G13") Gate.Nand);
  Alcotest.(check bool) "G8 AND" true (Gate.equal_kind (kind "G8") Gate.And);
  Alcotest.(check bool) "G17 NOT" true (Gate.equal_kind (kind "G17") Gate.Not);
  (* the three state elements *)
  Alcotest.(check (list string)) "flip-flops" [ "G5"; "G6"; "G7" ]
    (Array.to_list (Circuit.dffs c)
    |> List.map (fun id -> (Circuit.node c id).Circuit.name))

let suite =
  [
    Alcotest.test_case "registry" `Quick check_registry;
    Alcotest.test_case "find lists valid names" `Quick check_find;
    Alcotest.test_case "profiles respected" `Quick check_profiles_respected;
    Alcotest.test_case "generator deterministic" `Quick check_generator_deterministic;
    Alcotest.test_case "seed changes structure" `Quick check_seed_changes_structure;
    Alcotest.test_case "generated are mapped" `Quick check_generated_are_mapped;
    Alcotest.test_case "no dangling logic" `Quick check_no_dangling_logic;
    Alcotest.test_case "depth realistic" `Quick check_depth_realistic;
    Alcotest.test_case "sequential feedback" `Quick check_sequential_feedback_exists;
    Alcotest.test_case "malformed profile rejected" `Quick
      check_malformed_profile_rejected;
    Alcotest.test_case "s27 is genuine" `Quick check_s27_is_genuine;
  ]
