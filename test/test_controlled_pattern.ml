(* FindControlledInputPattern: transition suppression, its measurable
   effect on scan power, and directedness options. *)

open Netlist

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

let find_with_direction c dir =
  let mux = Scanpower.Mux_insertion.select c in
  Scanpower.Controlled_pattern.find ~direction:dir c
    ~muxable:mux.Scanpower.Mux_insertion.muxable

let leak_directed c =
  find_with_direction c
    (Scanpower.Justify.Leakage_directed (Power.Observability.compute c))

let check_terminates_and_blocks () =
  let c = mapped "s344" in
  let r = leak_directed c in
  Alcotest.(check bool) "blocked some gates" true
    (r.Scanpower.Controlled_pattern.blocked_gates > 0);
  Alcotest.(check bool) "bookkeeping consistent" true
    (r.Scanpower.Controlled_pattern.blocked_gates >= 0
    && r.Scanpower.Controlled_pattern.failed_gates >= 0)

let check_controlled_set () =
  let c = mapped "s344" in
  let mux = Scanpower.Mux_insertion.select c in
  let r = leak_directed c in
  let expected =
    Array.to_list (Circuit.inputs c) @ mux.Scanpower.Mux_insertion.muxable
  in
  Alcotest.(check (list int)) "pis + muxable"
    (List.sort compare expected)
    (List.sort compare r.Scanpower.Controlled_pattern.controlled)

let check_assignment_covers_controlled () =
  let c = mapped "s344" in
  let r = leak_directed c in
  Alcotest.(check int) "one entry per controlled input"
    (List.length r.Scanpower.Controlled_pattern.controlled)
    (List.length r.Scanpower.Controlled_pattern.assignment);
  (* non-controlled pseudo-inputs must remain X *)
  let mux = Scanpower.Mux_insertion.select c in
  Array.iter
    (fun dff ->
      if not (List.mem dff mux.Scanpower.Mux_insertion.muxable) then
        Alcotest.(check bool) "non-muxed stays X" true
          (Logic.equal r.Scanpower.Controlled_pattern.values.(dff) Logic.X))
    (Circuit.dffs c)

let check_values_follow_from_assignment () =
  (* the returned value array must be exactly the propagation of the
     controlled-input assignment *)
  let c = mapped "s382" in
  let r = leak_directed c in
  let fresh = Sim.Ternary_sim.make_values c Logic.X in
  List.iter
    (fun (id, v) -> fresh.(id) <- v)
    r.Scanpower.Controlled_pattern.assignment;
  Sim.Ternary_sim.propagate c fresh;
  Array.iteri
    (fun id v ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d" id)
        true
        (Logic.equal v r.Scanpower.Controlled_pattern.values.(id)))
    fresh

let residual_tn direction c =
  (find_with_direction c direction).Scanpower.Controlled_pattern
    .residual_transition_nodes

let check_blocking_reduces_transitions_strictly () =
  (* a hand-made circuit where the blockable gate guards a long chain:
     blocking it must shrink the transition set to the seed alone *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  let ff = Circuit.Builder.declare_dff b "ff" in
  let g = Circuit.Builder.add_gate b Gate.Nand "g" [ ff; a ] in
  let n1 = Circuit.Builder.add_gate b Gate.Not "n1" [ g ] in
  let n2 = Circuit.Builder.add_gate b Gate.Not "n2" [ n1 ] in
  Circuit.Builder.connect_dff b ff ~d:n2;
  let _ = Circuit.Builder.add_output b "po" n2 in
  let c = Circuit.Builder.build b in
  let r =
    Scanpower.Controlled_pattern.find ~direction:Scanpower.Justify.Structural c
      ~muxable:[]
  in
  Alcotest.(check int) "one gate blocked" 1 r.Scanpower.Controlled_pattern.blocked_gates;
  Alcotest.(check int) "only the seed still toggles" 1
    r.Scanpower.Controlled_pattern.residual_transition_nodes

let check_blocking_reduces_transitions () =
  (* compared against doing nothing (all controlled inputs X), the
     found pattern never increases the transition-node count *)
  let c = mapped "s382" in
  let mux = Scanpower.Mux_insertion.select c in
  let muxable = mux.Scanpower.Mux_insertion.muxable in
  let muxed = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace muxed id ()) muxable;
  let seeds =
    Array.to_list (Circuit.dffs c)
    |> List.filter (fun id -> not (Hashtbl.mem muxed id))
  in
  let values = Sim.Ternary_sim.make_values c Logic.X in
  Sim.Ternary_sim.propagate c values;
  let unblocked =
    Scanpower.Tns.compute c ~values ~seeds
      ~failed:(Array.make (Circuit.node_count c) false)
  in
  let baseline = Scanpower.Tns.transition_count unblocked in
  let r = leak_directed c in
  Alcotest.(check bool)
    (Printf.sprintf "residual %d <= unblocked %d"
       r.Scanpower.Controlled_pattern.residual_transition_nodes baseline)
    true
    (r.Scanpower.Controlled_pattern.residual_transition_nodes <= baseline)

let check_structural_direction_also_works () =
  let c = mapped "s344" in
  let r = find_with_direction c Scanpower.Justify.Structural in
  Alcotest.(check bool) "blocks gates" true
    (r.Scanpower.Controlled_pattern.blocked_gates > 0)

let check_no_muxable_still_works () =
  (* the C-algorithm configuration: primary inputs only *)
  let c = mapped "s344" in
  let r =
    Scanpower.Controlled_pattern.find ~direction:Scanpower.Justify.Structural c
      ~muxable:[]
  in
  Alcotest.(check int) "controlled = PIs"
    (Array.length (Circuit.inputs c))
    (List.length r.Scanpower.Controlled_pattern.controlled)

let check_deterministic () =
  let c = mapped "s344" in
  let r1 = leak_directed c and r2 = leak_directed c in
  Alcotest.(check bool) "same assignment" true
    (r1.Scanpower.Controlled_pattern.assignment
    = r2.Scanpower.Controlled_pattern.assignment)

let suite =
  [
    Alcotest.test_case "terminates and blocks" `Quick check_terminates_and_blocks;
    Alcotest.test_case "controlled set" `Quick check_controlled_set;
    Alcotest.test_case "assignment covers controlled" `Quick
      check_assignment_covers_controlled;
    Alcotest.test_case "values follow from assignment" `Quick
      check_values_follow_from_assignment;
    Alcotest.test_case "blocking reduces transitions" `Quick
      check_blocking_reduces_transitions;
    Alcotest.test_case "blocking reduces transitions strictly" `Quick
      check_blocking_reduces_transitions_strictly;
    Alcotest.test_case "structural direction works" `Quick
      check_structural_direction_also_works;
    Alcotest.test_case "PI-only configuration" `Quick check_no_muxable_still_works;
    Alcotest.test_case "deterministic" `Quick check_deterministic;
  ]
