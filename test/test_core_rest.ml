(* C-algorithm baseline, IVC don't-care fill, gate input reordering,
   and the end-to-end flow / Table I reporting. *)

open Netlist

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

(* ---------- C-algorithm ---------- *)

let check_c_algorithm_fully_specified () =
  let c = mapped "s344" in
  let r = Scanpower.C_algorithm.find c in
  Alcotest.(check int) "one bit per PI"
    (Array.length (Circuit.inputs c))
    (Array.length r.Scanpower.C_algorithm.pi_pattern);
  Alcotest.(check bool) "blocks gates" true (r.Scanpower.C_algorithm.blocked_gates > 0)

let check_c_algorithm_deterministic () =
  let c = mapped "s344" in
  let r1 = Scanpower.C_algorithm.find c and r2 = Scanpower.C_algorithm.find c in
  Alcotest.(check (array bool)) "same pattern" r1.Scanpower.C_algorithm.pi_pattern
    r2.Scanpower.C_algorithm.pi_pattern

let check_c_algorithm_reduces_shift_power () =
  let c = mapped "s382" in
  let chain = Scan.Scan_chain.natural c in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:12 ~count:30 c in
  let trad = Scan.Scan_sim.measure c chain Scan.Scan_sim.traditional ~vectors in
  let r = Scanpower.C_algorithm.find c in
  let policy =
    { Scan.Scan_sim.pi_during_shift = Some r.Scanpower.C_algorithm.pi_pattern;
      forced_pseudo = []; hold_previous_capture = false }
  in
  let ic = Scan.Scan_sim.measure c chain policy ~vectors in
  Alcotest.(check bool)
    (Printf.sprintf "IC %.3e <= trad %.3e"
       ic.Scan.Scan_sim.dynamic.Power.Switching.dynamic_per_hz_uw
       trad.Scan.Scan_sim.dynamic.Power.Switching.dynamic_per_hz_uw)
    true
    (ic.Scan.Scan_sim.dynamic.Power.Switching.dynamic_per_hz_uw
    <= trad.Scan.Scan_sim.dynamic.Power.Switching.dynamic_per_hz_uw)

(* ---------- IVC ---------- *)

let check_ivc_fills_every_controlled_input () =
  let c = mapped "s344" in
  let mux = Scanpower.Mux_insertion.select c in
  let cp =
    Scanpower.Controlled_pattern.find
      ~direction:(Scanpower.Justify.Leakage_directed (Power.Observability.compute c))
      c ~muxable:mux.Scanpower.Mux_insertion.muxable
  in
  let filled =
    Scanpower.Ivc.fill ~seed:3 c ~values:cp.Scanpower.Controlled_pattern.values
      ~controlled:cp.Scanpower.Controlled_pattern.controlled
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) "definite" false
        (Logic.equal filled.Scanpower.Ivc.values.(id) Logic.X))
    cp.Scanpower.Controlled_pattern.controlled;
  (* pre-existing cares survive *)
  List.iter
    (fun (id, v) ->
      if not (Logic.equal v Logic.X) then
        Alcotest.(check bool) "care preserved" true
          (Logic.equal filled.Scanpower.Ivc.values.(id) v))
    cp.Scanpower.Controlled_pattern.assignment

let check_ivc_picks_low_leakage () =
  (* with a single free input on an inverter, IVC must pick the state
     with the lower table leakage *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  let i1 = Circuit.Builder.add_gate b Gate.Not "i1" [ a ] in
  let _ = Circuit.Builder.add_output b "po" i1 in
  let c = Circuit.Builder.build b in
  let values = Sim.Ternary_sim.make_values c Logic.X in
  Sim.Ternary_sim.propagate c values;
  let filled = Scanpower.Ivc.fill ~candidates:8 ~seed:1 c ~values ~controlled:[ a ] in
  let t0 = Techlib.Leakage_table.leakage_na Techlib.Cell.Inv ~state:0 in
  let t1 = Techlib.Leakage_table.leakage_na Techlib.Cell.Inv ~state:1 in
  let expected = if t0 < t1 then Logic.Zero else Logic.One in
  Alcotest.(check bool) "picked the cheaper state" true
    (Logic.equal filled.Scanpower.Ivc.values.(Circuit.find c "a") expected)

let check_ivc_deterministic () =
  let c = mapped "s344" in
  let values = Sim.Ternary_sim.make_values c Logic.X in
  Sim.Ternary_sim.propagate c values;
  let controlled = Array.to_list (Circuit.inputs c) in
  let f1 = Scanpower.Ivc.fill ~seed:9 c ~values ~controlled in
  let f2 = Scanpower.Ivc.fill ~seed:9 c ~values ~controlled in
  Alcotest.(check bool) "same values" true
    (f1.Scanpower.Ivc.values = f2.Scanpower.Ivc.values);
  Alcotest.check (Alcotest.float 1e-12) "same score"
    f1.Scanpower.Ivc.expected_leakage_uw f2.Scanpower.Ivc.expected_leakage_uw

(* ---------- input reordering ---------- *)

let check_expected_cell_leakage () =
  let cell = Techlib.Cell.Nand 2 in
  let t s = Techlib.Leakage_table.leakage_na cell ~state:(Techlib.Leakage_table.state_of_string s) in
  (* definite values: exact table lookup *)
  Alcotest.check (Alcotest.float 1e-9) "definite"
    (t "10")
    (Scanpower.Input_reorder.expected_cell_leakage_na cell [| Logic.One; Logic.Zero |]);
  (* one X: average of the two possibilities *)
  Alcotest.check (Alcotest.float 1e-9) "half-half"
    ((t "10" +. t "11") /. 2.0)
    (Scanpower.Input_reorder.expected_cell_leakage_na cell [| Logic.One; Logic.X |])

let reorder_gadget () =
  (* NAND2 with pins (1, 0): the "10" state at 264 nA; swapping pins
     gives "01" at 73 nA *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  let b2 = Circuit.Builder.add_input b "b" in
  let g = Circuit.Builder.add_gate b Gate.Nand "g" [ a; b2 ] in
  let _ = Circuit.Builder.add_output b "po" g in
  Circuit.Builder.build b

let check_reorder_swaps_hot_nand () =
  let c = reorder_gadget () in
  let values = Sim.Ternary_sim.make_values c Logic.X in
  values.(Circuit.find c "a") <- Logic.One;
  values.(Circuit.find c "b") <- Logic.Zero;
  Sim.Ternary_sim.propagate c values;
  let before = (Circuit.node c (Circuit.find c "g")).Circuit.fanins in
  let before = Array.copy before in
  let r = Scanpower.Input_reorder.optimize c ~values in
  Alcotest.(check int) "one gate reordered" 1 r.Scanpower.Input_reorder.gates_reordered;
  Alcotest.check (Alcotest.float 1e-9) "gain = 264 - 73" (264.0 -. 73.0)
    r.Scanpower.Input_reorder.expected_gain_na;
  let after = (Circuit.node c (Circuit.find c "g")).Circuit.fanins in
  Alcotest.(check bool) "pins swapped" true
    (after.(0) = before.(1) && after.(1) = before.(0))

let check_reorder_leaves_optimal_alone () =
  let c = reorder_gadget () in
  let values = Sim.Ternary_sim.make_values c Logic.X in
  values.(Circuit.find c "a") <- Logic.Zero;
  values.(Circuit.find c "b") <- Logic.One;
  (* already the cheap "01" *)
  Sim.Ternary_sim.propagate c values;
  let r = Scanpower.Input_reorder.optimize c ~values in
  Alcotest.(check int) "nothing to do" 0 r.Scanpower.Input_reorder.gates_reordered

let check_reorder_preserves_function () =
  let c = mapped "s382" in
  let reference = Circuit.copy c in
  let values = Sim.Ternary_sim.make_values c Logic.X in
  let rng = Util.Rng.create 21 in
  Array.iter
    (fun id -> values.(id) <- Logic.of_bool (Util.Rng.bool rng))
    (Circuit.sources c);
  Sim.Ternary_sim.propagate c values;
  let _ = Scanpower.Input_reorder.optimize c ~values in
  (* symmetric-pin permutation cannot change any function *)
  let n_pi = Array.length (Circuit.inputs c) in
  let sim = Sim.Seq_sim.create c and sim' = Sim.Seq_sim.create reference in
  for _ = 1 to 40 do
    let v = Util.Rng.bool_array rng n_pi in
    Alcotest.(check (array bool)) "same outputs" (Sim.Seq_sim.step sim' v)
      (Sim.Seq_sim.step sim v)
  done

let check_reorder_never_increases_expected_leakage () =
  let c = mapped "s344" in
  let values = Sim.Ternary_sim.make_values c Logic.X in
  let rng = Util.Rng.create 5 in
  Array.iter
    (fun id -> if Util.Rng.bool rng then values.(id) <- Logic.of_bool (Util.Rng.bool rng))
    (Circuit.sources c);
  Sim.Ternary_sim.propagate c values;
  let total_expected cc =
    let acc = ref 0.0 in
    Array.iter
      (fun nd ->
        if Gate.is_logic nd.Circuit.kind then
          match Techlib.Cell.of_gate nd.Circuit.kind ~fanin:(Array.length nd.Circuit.fanins) with
          | Some cell ->
            acc :=
              !acc
              +. Scanpower.Input_reorder.expected_cell_leakage_na cell
                   (Array.map (fun f -> values.(f)) nd.Circuit.fanins)
          | None -> ())
      (Circuit.nodes cc);
    !acc
  in
  let before = total_expected c in
  let r = Scanpower.Input_reorder.optimize c ~values in
  let after = total_expected c in
  Alcotest.(check bool) "non-increasing" true (after <= before +. 1e-6);
  Alcotest.check (Alcotest.float 1e-6) "gain accounted" (before -. after)
    r.Scanpower.Input_reorder.expected_gain_na

(* ---------- flow & report ---------- *)

let flow_cmp =
  lazy (Scanpower.Flow.run_benchmark (Circuits.s27 ()))

let check_flow_structure () =
  let cmp = Lazy.force flow_cmp in
  Alcotest.(check string) "name" "s27" cmp.Scanpower.Flow.name;
  Alcotest.(check int) "dffs" 3 cmp.Scanpower.Flow.n_dffs;
  Alcotest.(check bool) "vectors" true (cmp.Scanpower.Flow.n_vectors > 0);
  Alcotest.(check bool) "muxable in range" true
    (cmp.Scanpower.Flow.n_muxable >= 0 && cmp.Scanpower.Flow.n_muxable <= 3)

let check_flow_power_sane () =
  let cmp = Lazy.force flow_cmp in
  let all =
    [ cmp.Scanpower.Flow.traditional; cmp.Scanpower.Flow.input_control;
      cmp.Scanpower.Flow.proposed ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "dynamic positive" true (r.Scanpower.Flow.dynamic_per_hz_uw > 0.0);
      Alcotest.(check bool) "static positive" true (r.Scanpower.Flow.static_uw > 0.0);
      Alcotest.(check bool) "peak >= avg" true
        (r.Scanpower.Flow.peak_static_uw >= r.Scanpower.Flow.static_uw -. 1e-9))
    all

let check_flow_proposed_wins_static () =
  let cmp = Lazy.force flow_cmp in
  Alcotest.(check bool) "proposed static below traditional" true
    (cmp.Scanpower.Flow.proposed.Scanpower.Flow.static_uw
    < cmp.Scanpower.Flow.traditional.Scanpower.Flow.static_uw)

let check_flow_deterministic () =
  let c1 = Scanpower.Flow.run_benchmark (Circuits.s27 ()) in
  let c2 = Scanpower.Flow.run_benchmark (Circuits.s27 ()) in
  Alcotest.(check bool) "identical comparisons" true (c1 = c2)

let check_improvement_formula () =
  Alcotest.check (Alcotest.float 1e-9) "50%" 50.0 (Scanpower.Flow.improvement 2.0 1.0);
  Alcotest.check (Alcotest.float 1e-9) "negative" (-50.0)
    (Scanpower.Flow.improvement 2.0 3.0);
  Alcotest.(check bool) "zero base, nonzero x is undefined" true
    (Float.is_nan (Scanpower.Flow.improvement 0.0 1.0));
  Alcotest.check (Alcotest.float 1e-9) "zero base, zero x is no change" 0.0
    (Scanpower.Flow.improvement 0.0 0.0)

let check_report_row () =
  let cmp = Lazy.force flow_cmp in
  let row = Scanpower.Report.of_comparison cmp in
  Alcotest.(check string) "name" "s27" row.Scanpower.Report.name;
  Alcotest.check (Alcotest.float 1e-12) "traditional dynamic copied"
    cmp.Scanpower.Flow.traditional.Scanpower.Flow.dynamic_per_hz_uw
    row.Scanpower.Report.trad_dyn

let check_paper_table () =
  Alcotest.(check int) "twelve rows" 12 (List.length Scanpower.Report.paper_table1);
  (match Scanpower.Report.paper_row "s344" with
  | None -> Alcotest.fail "s344 in Table I"
  | Some r ->
    Alcotest.check (Alcotest.float 1e-12) "s344 trad static" 27.99
      r.Scanpower.Report.trad_static;
    Alcotest.check (Alcotest.float 0.3) "s344 dyn improvement ~44.8%" 44.82
      (Scanpower.Report.dyn_improvement_vs_traditional r));
  Alcotest.(check bool) "unknown row" true (Scanpower.Report.paper_row "s00" = None)

let check_paper_improvements_recomputed () =
  (* our improvement columns recompute the paper's published percentage
     columns from its absolute columns (within rounding) *)
  List.iter
    (fun (name, dyn, stat) ->
      match Scanpower.Report.paper_row name with
      | None -> Alcotest.fail name
      | Some r ->
        Alcotest.check (Alcotest.float 0.6)
          (name ^ " dyn")
          dyn
          (Scanpower.Report.dyn_improvement_vs_traditional r);
        Alcotest.check (Alcotest.float 0.6)
          (name ^ " static")
          stat
          (Scanpower.Report.static_improvement_vs_traditional r))
    [ ("s344", 44.82, 14.65); ("s444", 69.44, 17.00); ("s1238", 18.64, 20.70) ]

let suite =
  [
    Alcotest.test_case "c-algorithm fully specified" `Quick
      check_c_algorithm_fully_specified;
    Alcotest.test_case "c-algorithm deterministic" `Quick check_c_algorithm_deterministic;
    Alcotest.test_case "c-algorithm reduces shift power" `Quick
      check_c_algorithm_reduces_shift_power;
    Alcotest.test_case "ivc fills controlled inputs" `Quick
      check_ivc_fills_every_controlled_input;
    Alcotest.test_case "ivc picks low leakage" `Quick check_ivc_picks_low_leakage;
    Alcotest.test_case "ivc deterministic" `Quick check_ivc_deterministic;
    Alcotest.test_case "expected cell leakage" `Quick check_expected_cell_leakage;
    Alcotest.test_case "reorder swaps hot nand" `Quick check_reorder_swaps_hot_nand;
    Alcotest.test_case "reorder leaves optimal alone" `Quick
      check_reorder_leaves_optimal_alone;
    Alcotest.test_case "reorder preserves function" `Quick check_reorder_preserves_function;
    Alcotest.test_case "reorder never increases leakage" `Quick
      check_reorder_never_increases_expected_leakage;
    Alcotest.test_case "flow structure" `Quick check_flow_structure;
    Alcotest.test_case "flow power sane" `Quick check_flow_power_sane;
    Alcotest.test_case "flow proposed wins static" `Quick check_flow_proposed_wins_static;
    Alcotest.test_case "flow deterministic" `Slow check_flow_deterministic;
    Alcotest.test_case "improvement formula" `Quick check_improvement_formula;
    Alcotest.test_case "report row" `Quick check_report_row;
    Alcotest.test_case "paper table" `Quick check_paper_table;
    Alcotest.test_case "paper improvements recomputed" `Quick
      check_paper_improvements_recomputed;
  ]
