(* The D-algorithm engine, and its fault-by-fault cross-validation
   against PODEM (this exact check exposed a D-frontier bug in the
   PODEM engine during development: for input-pin faults the D lives
   only on the faulted branch, invisible on the stem value). *)

open Netlist

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

let check_sound_tests name () =
  let c = mapped name in
  let rng = Util.Rng.create 5 in
  let tested = ref 0 in
  List.iter
    (fun f ->
      match Atpg.D_algorithm.generate c f with
      | Atpg.D_algorithm.Test cube ->
        incr tested;
        let filled = Atpg.Compaction.fill_random rng cube in
        Alcotest.(check bool)
          (Printf.sprintf "detects %s" (Atpg.Fault.to_string c f))
          true
          (Atpg.Podem.detects c f filled)
      | Atpg.D_algorithm.Untestable | Atpg.D_algorithm.Aborted -> ())
    (Atpg.Fault.collapsed_faults c);
  Alcotest.(check bool) "found tests" true (!tested > 20)

let agreement name () =
  let c = mapped name in
  List.iter
    (fun f ->
      let p = Atpg.Podem.generate c f in
      let d = Atpg.D_algorithm.generate c f in
      match p, d with
      | Atpg.Podem.Aborted, _ | _, Atpg.D_algorithm.Aborted -> ()
      | Atpg.Podem.Test _, Atpg.D_algorithm.Test _
      | Atpg.Podem.Untestable, Atpg.D_algorithm.Untestable ->
        ()
      | Atpg.Podem.Test _, Atpg.D_algorithm.Untestable ->
        Alcotest.failf "%s: PODEM found a test, D-algorithm claims untestable"
          (Atpg.Fault.to_string c f)
      | Atpg.Podem.Untestable, Atpg.D_algorithm.Test _ ->
        Alcotest.failf "%s: D-algorithm found a test, PODEM claims untestable"
          (Atpg.Fault.to_string c f))
    (Atpg.Fault.collapsed_faults c)

let check_known_untestable () =
  (* redundant logic: g = OR(a, NOT a) is constantly 1, so g s-a-1 is
     untestable; both engines must prove it *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  let na = Circuit.Builder.add_gate b Gate.Not "na" [ a ] in
  let g = Circuit.Builder.add_gate b Gate.Or "g" [ a; na ] in
  let h = Circuit.Builder.add_gate b Gate.Not "h" [ g ] in
  let _ = Circuit.Builder.add_output b "po" h in
  let c = Circuit.Builder.build b in
  let fault = { Atpg.Fault.site = Atpg.Fault.Output_line g; stuck = true } in
  Alcotest.(check bool) "podem proves untestable" true
    (Atpg.Podem.generate c fault = Atpg.Podem.Untestable);
  Alcotest.(check bool) "d-algorithm proves untestable" true
    (Atpg.D_algorithm.generate c fault = Atpg.D_algorithm.Untestable)

let check_simple_test_found () =
  (* g stuck-at-0 on an AND output: test = all inputs 1 *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  let a2 = Circuit.Builder.add_input b "b" in
  let g = Circuit.Builder.add_gate b Gate.And "g" [ a; a2 ] in
  let _ = Circuit.Builder.add_output b "po" g in
  let c = Circuit.Builder.build b in
  let fault = { Atpg.Fault.site = Atpg.Fault.Output_line g; stuck = false } in
  match Atpg.D_algorithm.generate c fault with
  | Atpg.D_algorithm.Test cube ->
    Alcotest.(check bool) "a=1" true (Logic.equal cube.(0) Logic.One);
    Alcotest.(check bool) "b=1" true (Logic.equal cube.(1) Logic.One)
  | Atpg.D_algorithm.Untestable | Atpg.D_algorithm.Aborted ->
    Alcotest.fail "testable fault"

let suite =
  [
    Alcotest.test_case "simple test found" `Quick check_simple_test_found;
    Alcotest.test_case "known untestable proven" `Quick check_known_untestable;
    Alcotest.test_case "sound on s27" `Quick (check_sound_tests "s27");
    Alcotest.test_case "agrees with PODEM on s27" `Quick (agreement "s27");
    Alcotest.test_case "sound on s344" `Slow (check_sound_tests "s344");
    Alcotest.test_case "agrees with PODEM on s344" `Slow (agreement "s344");
  ]
