(* The structured error taxonomy: exit-code mapping, rendering, JSON
   shape and legacy-exception wrapping. *)

module E = Scanpower_errors
module Json = Telemetry.Json

let all_codes =
  [ E.Usage; E.Parse; E.Validation; E.Io; E.Runtime; E.Partial; E.Regression;
    E.Overloaded; E.Deadline; E.Degraded ]

let check_exit_codes () =
  Alcotest.(check int) "usage" 2 (E.exit_code E.Usage);
  Alcotest.(check int) "parse" 3 (E.exit_code E.Parse);
  Alcotest.(check int) "validation" 3 (E.exit_code E.Validation);
  Alcotest.(check int) "io" 4 (E.exit_code E.Io);
  Alcotest.(check int) "runtime" 4 (E.exit_code E.Runtime);
  Alcotest.(check int) "partial" 5 (E.exit_code E.Partial);
  Alcotest.(check int) "regression" 6 (E.exit_code E.Regression);
  Alcotest.(check int) "overloaded" 7 (E.exit_code E.Overloaded);
  Alcotest.(check int) "deadline" 8 (E.exit_code E.Deadline);
  Alcotest.(check int) "degraded" 9 (E.exit_code E.Degraded);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (E.code_to_string c ^ " reserves 0, 1 and cmdliner's 124")
        true
        (let n = E.exit_code c in
         n >= 2 && n <= 9))
    all_codes

let check_code_of_string () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (E.code_to_string c ^ " round-trips")
        true
        (E.code_of_string (E.code_to_string c) = Some c))
    all_codes;
  Alcotest.(check bool) "unknown tag is None" true
    (E.code_of_string "catastrophe" = None)

let check_to_string () =
  let t =
    E.make ~circuit:"s27"
      ~loc:{ E.file = Some "x.bench"; line = 3; column = 5 }
      ~token:"NND" ~code:E.Validation ~stage:"bench_parser" "unknown gate"
  in
  let s = E.to_string t in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" s needle)
        true
        (let n = String.length needle and h = String.length s in
         let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
         go 0))
    [ "validation"; "bench_parser"; "s27"; "x.bench:3:5"; "NND"; "unknown gate" ]

let member_string obj k =
  match Json.member k obj with Some (Json.String s) -> Some s | _ -> None

let check_to_json () =
  let t =
    E.make ~circuit:"s27"
      ~loc:{ E.file = Some "x.bench"; line = 3; column = 5 }
      ~token:"NND" ~code:E.Parse ~stage:"bench_parser" "boom"
  in
  let j = E.to_json t in
  Alcotest.(check (option string)) "code" (Some "parse") (member_string j "code");
  Alcotest.(check (option string)) "stage" (Some "bench_parser")
    (member_string j "stage");
  Alcotest.(check (option string)) "circuit" (Some "s27")
    (member_string j "circuit");
  Alcotest.(check (option string)) "file" (Some "x.bench")
    (member_string j "file");
  Alcotest.(check (option string)) "token" (Some "NND") (member_string j "token");
  (match Json.member "line" j with
  | Some (Json.Int 3) -> ()
  | _ -> Alcotest.fail "line field");
  (* minimal error: the optional fields must be absent, not null *)
  let j' = E.to_json (E.make ~code:E.Runtime ~stage:"flow" "x") in
  Alcotest.(check (option string)) "no circuit" None (member_string j' "circuit");
  Alcotest.(check bool) "no line" true (Json.member "line" j' = None);
  (* and the rendering must survive the JSON printer/parser *)
  match Json.of_string (Json.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("error JSON must parse: " ^ e)

let check_of_exn () =
  let wrap e = E.of_exn ~stage:"cli" ~circuit:"c1" e in
  let io = wrap (Sys_error "disk on fire") in
  Alcotest.(check string) "sys_error is io" "io" (E.code_to_string io.E.code);
  let rt = wrap (Failure "bug") in
  Alcotest.(check string) "failure is runtime" "runtime"
    (E.code_to_string rt.E.code);
  let inv = wrap (Invalid_argument "bad") in
  Alcotest.(check string) "invalid_argument is runtime" "runtime"
    (E.code_to_string inv.E.code);
  (* a structured error passes through, gaining the circuit only if it
     had none *)
  let orig = E.make ~code:E.Validation ~stage:"flow.prepare" "msg" in
  let through = wrap (E.Error orig) in
  Alcotest.(check string) "code preserved" "validation"
    (E.code_to_string through.E.code);
  Alcotest.(check string) "stage preserved" "flow.prepare" through.E.stage;
  Alcotest.(check (option string)) "circuit filled in" (Some "c1")
    through.E.circuit;
  let named = E.make ~circuit:"orig" ~code:E.Parse ~stage:"p" "m" in
  Alcotest.(check (option string)) "existing circuit kept" (Some "orig")
    (wrap (E.Error named)).E.circuit

(* ---- of_json: exact inverse of to_json ---- *)

let check_of_json_inverse () =
  let t =
    E.make ~circuit:"s27"
      ~loc:{ E.file = Some "x.bench"; line = 3; column = 5 }
      ~token:"NND" ~code:E.Parse ~stage:"bench_parser" "boom"
  in
  (match E.of_json (E.to_json t) with
  | Ok t' -> Alcotest.(check bool) "full error round-trips" true (t = t')
  | Error m -> Alcotest.fail m);
  let minimal = E.make ~code:E.Overloaded ~stage:"server.admission" "full" in
  (match E.of_json (E.to_json minimal) with
  | Ok t' -> Alcotest.(check bool) "minimal error round-trips" true (minimal = t')
  | Error m -> Alcotest.fail m);
  (* the retryable shed-under-pressure code crosses the wire intact *)
  let degraded = E.make ~code:E.Degraded ~stage:"server.admission" "shed" in
  (match E.of_json (E.to_json degraded) with
  | Ok t' ->
    Alcotest.(check bool) "degraded round-trips" true (degraded = t');
    Alcotest.(check int) "degraded exits 9" 9 (E.exit_code t'.E.code)
  | Error m -> Alcotest.fail m);
  (* strictness: unknown codes and missing fields must not decode *)
  let reject label j =
    match E.of_json j with
    | Ok _ -> Alcotest.fail (label ^ " must be rejected")
    | Error _ -> ()
  in
  reject "unknown code"
    (Json.Obj
       [ ("code", Json.String "catastrophe"); ("stage", Json.String "x");
         ("message", Json.String "m") ]);
  reject "missing message"
    (Json.Obj [ ("code", Json.String "io"); ("stage", Json.String "x") ]);
  reject "line without column"
    (Json.Obj
       [ ("code", Json.String "io"); ("stage", Json.String "x");
         ("message", Json.String "m"); ("line", Json.Int 3) ]);
  reject "non-object" (Json.String "io")

(* every structured error — any code, any combination of the optional
   fields — survives to_json/of_json bit-identically *)
let error_gen =
  let open QCheck.Gen in
  let code = oneofl [ E.Usage; E.Parse; E.Validation; E.Io; E.Runtime;
                      E.Partial; E.Regression; E.Overloaded; E.Deadline;
                      E.Degraded ] in
  let short = string_size ~gen:printable (int_range 0 12) in
  let opt g = oneof [ return None; map Option.some g ] in
  let loc =
    opt
      (map3
         (fun file line column -> { E.file; line; column })
         (opt short) (int_range 0 500) (int_range 0 80))
  in
  map (fun ((code, stage, message), (circuit, loc, token)) ->
      E.make ?circuit ?loc ?token ~code ~stage message)
    (pair (triple code short short) (triple (opt short) loc (opt short)))

let prop_error_json_roundtrip =
  QCheck.Test.make ~name:"of_json inverts to_json" ~count:500
    (QCheck.make error_gen) (fun t ->
      match E.of_json (E.to_json t) with
      | Ok t' -> t = t'
      | Error m -> QCheck.Test.fail_report m)

let check_errorf_and_raise () =
  match E.errorf ~code:E.Usage ~stage:"cli" "unknown circuit %S" "zz9" with
  | exception E.Error e ->
    Alcotest.(check string) "formatted" "unknown circuit \"zz9\"" e.E.message;
    Alcotest.(check string) "usage" "usage" (E.code_to_string e.E.code)
  | _ -> Alcotest.fail "errorf must raise"

(* The flow's input validation: warnings (a dangling gate) are logged
   but must never fail the run — the Builder already makes error-level
   circuit diagnostics unconstructible, so the raise path is covered at
   the parser level in test_bench_format. *)
let check_flow_validation_warns_but_proceeds () =
  let b = Netlist.Circuit.Builder.create ~name:"dangling" () in
  let a = Netlist.Circuit.Builder.add_input b "a" in
  let bb = Netlist.Circuit.Builder.add_input b "b" in
  let g = Netlist.Circuit.Builder.add_gate b Netlist.Gate.Nand "g" [ a; bb ] in
  ignore (Netlist.Circuit.Builder.add_gate b Netlist.Gate.Not "dead" [ g ]);
  ignore (Netlist.Circuit.Builder.add_output b "po" g);
  let c = Netlist.Circuit.Builder.build b in
  let diags = Netlist.Validate.circuit c in
  Alcotest.(check bool) "dangling gate warned" true
    (List.exists
       (fun d ->
         d.Netlist.Validate.check = "dangling"
         && d.Netlist.Validate.severity = Netlist.Validate.Warning)
       diags);
  Alcotest.(check int) "no errors" 0
    (List.length (Netlist.Validate.errors diags));
  let p = Scanpower.Flow.prepare c in
  Alcotest.(check bool) "flow still runs" true
    (p.Scanpower.Flow.atpg.Atpg.Pattern_gen.total_faults > 0)

let suite =
  [
    Alcotest.test_case "exit codes" `Quick check_exit_codes;
    Alcotest.test_case "code_of_string round-trips" `Quick check_code_of_string;
    Alcotest.test_case "to_string" `Quick check_to_string;
    Alcotest.test_case "to_json" `Quick check_to_json;
    Alcotest.test_case "of_json inverse + strictness" `Quick
      check_of_json_inverse;
    QCheck_alcotest.to_alcotest prop_error_json_roundtrip;
    Alcotest.test_case "of_exn wrapping" `Quick check_of_exn;
    Alcotest.test_case "errorf raises formatted" `Quick check_errorf_and_raise;
    Alcotest.test_case "flow validation warns but proceeds" `Quick
      check_flow_validation_warns_but_proceeds;
  ]
