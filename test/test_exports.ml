(* Exporters (Graphviz, Verilog), timing reports, peak-power analysis,
   and the enhanced-scan reference structure. *)

open Netlist

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  needle = "" || go 0

(* ---------- dot ---------- *)

let check_dot_structure () =
  let c = Circuits.s27 () in
  let dot = Dot_writer.to_string c in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph" dot);
  (* one node statement per circuit node *)
  Array.iter
    (fun nd ->
      Alcotest.(check bool)
        (Printf.sprintf "node %s present" nd.Circuit.name)
        true
        (contains ~needle:(Printf.sprintf "n%d [label=\"%s" nd.Circuit.id nd.Circuit.name) dot))
    (Circuit.nodes c);
  (* sequential edges dashed *)
  Alcotest.(check bool) "dashed D edge" true (contains ~needle:"style=dashed" dot)

let check_dot_highlight () =
  let c = Circuits.s27 () in
  let id = Circuit.find c "G11" in
  let dot = Dot_writer.to_string ~highlight:[ id ] c in
  Alcotest.(check bool) "red highlight" true (contains ~needle:"color=red" dot)

(* ---------- verilog ---------- *)

let check_verilog_structure () =
  let c = mapped "s27" in
  let v = Verilog_writer.to_string c in
  Alcotest.(check bool) "module" true (contains ~needle:"module s27" v);
  Alcotest.(check bool) "endmodule" true (contains ~needle:"endmodule" v);
  Alcotest.(check bool) "clocked dffs" true
    (contains ~needle:"always @(posedge clk)" v);
  (* every PI is an input *)
  Array.iter
    (fun id ->
      let nm = (Circuit.node c id).Circuit.name in
      Alcotest.(check bool) (nm ^ " declared input") true
        (contains ~needle:(Printf.sprintf "input %s;" nm) v))
    (Circuit.inputs c);
  (* no dollar signs survive sanitisation *)
  Alcotest.(check bool) "no $ in identifiers" false (String.contains v '$')

let check_verilog_gate_count () =
  let c = mapped "s27" in
  let v = Verilog_writer.to_string c in
  let count needle =
    let rec go i acc =
      if i + String.length needle > String.length v then acc
      else if String.sub v i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one primitive per gate" (Circuit.gate_count c)
    (count "  nand g" + count "  nor g" + count "  not g" + count "  buf g"
    + count "  and g" + count "  or g" + count "  xor g" + count "  xnor g")

(* ---------- path report ---------- *)

let check_top_paths () =
  let c = mapped "s344" in
  let t = Sta.analyze c in
  let paths = Sta.Path_report.top_paths ~count:5 t in
  Alcotest.(check int) "five paths" 5 (List.length paths);
  (match paths with
  | first :: _ ->
    Alcotest.check (Alcotest.float 1e-6) "worst path = critical delay"
      (Sta.critical_delay t) first.Sta.Path_report.arrival_ps;
    Alcotest.check (Alcotest.float 1e-6) "zero slack" 0.0
      first.Sta.Path_report.slack_ps
  | [] -> Alcotest.fail "no paths");
  (* arrivals are sorted decreasing and paths are connected *)
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "sorted" true
        (a.Sta.Path_report.arrival_ps >= b.Sta.Path_report.arrival_ps);
      check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted paths;
  List.iter
    (fun p ->
      let rec connected = function
        | a :: (b :: _ as rest) ->
          let nb = Circuit.node c b in
          Alcotest.(check bool) "edge exists" true
            (Array.exists (fun f -> f = a) nb.Circuit.fanins);
          connected rest
        | [ _ ] | [] -> ()
      in
      connected p.Sta.Path_report.nodes)
    paths

let check_slack_histogram () =
  let c = mapped "s344" in
  let t = Sta.analyze c in
  let hist = Sta.Path_report.slack_histogram ~bins:8 t in
  Alcotest.(check int) "eight bins" 8 (List.length hist);
  let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 hist in
  Alcotest.(check int) "covers all logic nodes" (Circuit.gate_count c) total;
  List.iter
    (fun (lo, hi, _) -> Alcotest.(check bool) "ordered bounds" true (lo < hi))
    hist

(* ---------- peak power ---------- *)

let check_peak_of_series () =
  let p = Power.Peak.of_series ~window:2 [| 1.0; 5.0; 3.0; 1.0 |] in
  Alcotest.check (Alcotest.float 1e-9) "max" 5.0 p.Power.Peak.maximum;
  Alcotest.(check int) "max cycle" 1 p.Power.Peak.max_cycle;
  Alcotest.check (Alcotest.float 1e-9) "mean" 2.5 p.Power.Peak.mean;
  Alcotest.check (Alcotest.float 1e-9) "window max = (5+3)/2" 4.0
    p.Power.Peak.window_mean_max;
  Alcotest.(check int) "cycles" 4 p.Power.Peak.cycles

let check_peak_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Peak.of_series: empty series")
    (fun () -> ignore (Power.Peak.of_series [||]))

let check_peak_from_scan_sim () =
  let c = mapped "s382" in
  let chain = Scan.Scan_chain.natural c in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:3 ~count:20 c in
  let m = Scan.Scan_sim.measure c chain Scan.Scan_sim.traditional ~vectors in
  Alcotest.(check int) "one sample per cycle" m.Scan.Scan_sim.cycles
    (Array.length m.Scan.Scan_sim.per_cycle_toggles);
  Alcotest.(check int) "samples sum to the toggle total"
    m.Scan.Scan_sim.total_toggles
    (Array.fold_left ( + ) 0 m.Scan.Scan_sim.per_cycle_toggles);
  let p = Power.Peak.of_toggle_series m.Scan.Scan_sim.per_cycle_toggles in
  Alcotest.(check bool) "peak above mean" true
    (p.Power.Peak.maximum >= p.Power.Peak.mean)

(* ---------- enhanced scan ---------- *)

let check_enhanced_scan_silences_shift () =
  let c = mapped "s382" in
  let chain = Scan.Scan_chain.natural c in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:5 ~count:20 c in
  let trad = Scan.Scan_sim.measure c chain Scan.Scan_sim.traditional ~vectors in
  let enh = Scan.Scan_sim.measure c chain Scan.Scan_sim.enhanced_scan ~vectors in
  Alcotest.(check bool)
    (Printf.sprintf "enhanced %d << traditional %d" enh.Scan.Scan_sim.total_toggles
       trad.Scan.Scan_sim.total_toggles)
    true
    (enh.Scan.Scan_sim.total_toggles < trad.Scan.Scan_sim.total_toggles / 2)

let check_enhanced_scan_preserves_responses () =
  let c = mapped "s27" in
  let chain = Scan.Scan_chain.natural c in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:6 ~count:20 c in
  Alcotest.(check bool) "same responses" true
    (Scan.Scan_sim.responses c chain Scan.Scan_sim.enhanced_scan ~vectors
    = Scan.Scan_sim.responses c chain Scan.Scan_sim.traditional ~vectors)

let check_flow_includes_enhanced () =
  let cmp = Scanpower.Flow.run_benchmark (Circuits.s27 ()) in
  Alcotest.(check bool) "enhanced static positive" true
    (cmp.Scanpower.Flow.enhanced_scan.Scanpower.Flow.static_uw > 0.0);
  Alcotest.(check bool) "enhanced dynamic below traditional" true
    (cmp.Scanpower.Flow.enhanced_scan.Scanpower.Flow.dynamic_per_hz_uw
    < cmp.Scanpower.Flow.traditional.Scanpower.Flow.dynamic_per_hz_uw)

(* ---------- VCD ---------- *)

let vcd_contains ~needle hay = contains ~needle hay

let check_vcd_output () =
  let c = mapped "s27" in
  let vcd = Sim.Vcd_writer.create c in
  let sim = Sim.Event_sim.create c in
  Sim.Event_sim.init sim (fun _ -> false);
  Sim.Vcd_writer.sample vcd ~time:0 (Sim.Event_sim.values sim);
  let g0 = Circuit.find c "G0" in
  ignore (Sim.Event_sim.set_sources sim [ (g0, true) ]);
  Sim.Vcd_writer.sample vcd ~time:10 (Sim.Event_sim.values sim);
  (* unchanged sample emits nothing new *)
  Sim.Vcd_writer.sample vcd ~time:20 (Sim.Event_sim.values sim);
  let text = Sim.Vcd_writer.to_string vcd in
  Alcotest.(check bool) "header" true (vcd_contains ~needle:"$enddefinitions" text);
  Alcotest.(check bool) "var per node" true (vcd_contains ~needle:"$var wire 1" text);
  Alcotest.(check bool) "time 0" true (vcd_contains ~needle:"#0" text);
  Alcotest.(check bool) "time 10" true (vcd_contains ~needle:"#10" text);
  Alcotest.(check bool) "no empty time 20" false (vcd_contains ~needle:"#20" text)

let check_vcd_time_monotonic () =
  let c = mapped "s27" in
  let vcd = Sim.Vcd_writer.create c in
  let zeros = Array.make (Circuit.node_count c) false in
  Sim.Vcd_writer.sample vcd ~time:5 zeros;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Vcd_writer.sample: time went backwards") (fun () ->
      Sim.Vcd_writer.sample vcd ~time:4 zeros)

let check_vcd_codes_unique () =
  let c = Techmap.Mapper.map (Circuits.by_name "s1196") in
  let vcd = Sim.Vcd_writer.create c in
  ignore vcd;
  (* uniqueness is structural: the base-94 encoding is injective; check
     a window of indices directly through a fresh recorder's header *)
  let text = Sim.Vcd_writer.to_string (Sim.Vcd_writer.create c) in
  let ids = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match String.split_on_char ' ' line with
         | [ "$var"; "wire"; "1"; code; _name; "$end" ] -> ids := code :: !ids
         | _ -> ());
  let sorted = List.sort_uniq compare !ids in
  Alcotest.(check int) "codes unique" (List.length !ids) (List.length sorted)

let suite =
  [
    Alcotest.test_case "dot structure" `Quick check_dot_structure;
    Alcotest.test_case "dot highlight" `Quick check_dot_highlight;
    Alcotest.test_case "verilog structure" `Quick check_verilog_structure;
    Alcotest.test_case "verilog gate count" `Quick check_verilog_gate_count;
    Alcotest.test_case "top paths" `Quick check_top_paths;
    Alcotest.test_case "slack histogram" `Quick check_slack_histogram;
    Alcotest.test_case "peak of series" `Quick check_peak_of_series;
    Alcotest.test_case "peak validation" `Quick check_peak_validation;
    Alcotest.test_case "peak from scan sim" `Quick check_peak_from_scan_sim;
    Alcotest.test_case "enhanced scan silences shift" `Quick
      check_enhanced_scan_silences_shift;
    Alcotest.test_case "enhanced scan preserves responses" `Quick
      check_enhanced_scan_preserves_responses;
    Alcotest.test_case "flow includes enhanced" `Quick check_flow_includes_enhanced;
    Alcotest.test_case "vcd output" `Quick check_vcd_output;
    Alcotest.test_case "vcd time monotonic" `Quick check_vcd_time_monotonic;
    Alcotest.test_case "vcd codes unique" `Quick check_vcd_codes_unique;
  ]

